module cfaopc

go 1.22
