// End-to-end integration tests: the full artifact pipeline a user of the
// command-line tools exercises — layout authoring, file round-trips, both
// CFAOPC methods, shot-list round-trips, evaluation, and MRC — wired
// through the public package APIs on a small tile.
package cfaopc_test

import (
	"bytes"
	"testing"

	"cfaopc/internal/core"
	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/ilt"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
)

// smallCase builds a 512 nm two-bar layout and its simulator at 4 nm/px.
func smallCase(t *testing.T) (*layout.Layout, *litho.Simulator) {
	t.Helper()
	l := &layout.Layout{
		Name:   "it-case",
		TileNM: 512,
		Rects: []layout.Rect{
			{X: 150, Y: 120, W: 72, H: 260},
			{X: 290, Y: 120, W: 72, H: 260},
		},
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := optics.Default()
	cfg.TileNM = float64(l.TileNM)
	sim, err := litho.New(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	sim.KOpt = 5
	return l, sim
}

func TestEndToEndCircleOpt(t *testing.T) {
	l, sim := smallCase(t)

	// Layout file round-trip.
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := layout.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	target := parsed.Rasterize(sim.N)

	// Optimize with the paper's method.
	coCfg := core.DefaultConfig(sim.DX)
	coCfg.Iterations = 25
	res := (&core.CircleOpt{Cfg: coCfg, InitIterations: 8}).Optimize(sim, target)
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}

	// Shot list CSV round-trip preserves every shot.
	var csv bytes.Buffer
	if err := fracture.WriteShotsCSV(&csv, res.Shots, sim.DX); err != nil {
		t.Fatal(err)
	}
	back, err := fracture.ReadShotsCSV(bytes.NewReader(csv.Bytes()), sim.DX)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Shots) {
		t.Fatalf("CSV roundtrip lost shots: %d → %d", len(res.Shots), len(back))
	}
	for i := range back {
		if d := back[i].X - res.Shots[i].X; d > 0.1 || d < -0.1 {
			t.Fatalf("shot %d X drifted: %v vs %v", i, back[i].X, res.Shots[i].X)
		}
	}

	// Rebuilding the mask from the round-tripped shots gives the same
	// print and metrics the optimizer reported.
	mask := geom.RasterizeCircles(sim.N, sim.N, back)
	if mask.SqDiff(res.Mask) != 0 {
		t.Fatal("mask from round-tripped shots differs")
	}
	r := sim.Simulate(mask)
	rep := metrics.Evaluate(parsed, r.ZNom, r.ZMax, r.ZMin, len(back))
	if rep.Shots != len(back) {
		t.Fatal("report shot count mismatch")
	}
	if rep.L2 <= 0 {
		t.Fatal("suspiciously perfect L2; evaluation path broken?")
	}
	// Print must beat the empty mask decisively.
	empty := sim.Simulate(mask.Clone().Scale(0))
	repEmpty := metrics.Evaluate(parsed, empty.ZNom, empty.ZMax, empty.ZMin, 0)
	if rep.L2 >= repEmpty.L2/2 {
		t.Fatalf("optimized L2 %v not far below empty-mask %v", rep.L2, repEmpty.L2)
	}

	// MRC: radii legal, spacing clean or at least analyzable.
	if v := metrics.CheckCircleMRC(back, sim.DX, 12, 76); len(v) != 0 {
		t.Fatalf("MRC radius violations: %+v", v)
	}
}

func TestEndToEndBaselinePlusCircleRule(t *testing.T) {
	l, sim := smallCase(t)
	target := l.Rasterize(sim.N)

	iltCfg := ilt.DefaultConfig()
	iltCfg.Iterations = 20
	pixel := (&ilt.MultiLevel{Cfg: iltCfg}).Optimize(sim, target)

	// The traditional and circular fracturing paths on the same mask.
	rects := fracture.RectShots(pixel, 2)
	ruleCfg := fracture.DefaultCircleRuleConfig(sim.DX)
	circles := fracture.CircleRule(pixel, ruleCfg)
	if len(circles) == 0 || len(rects) == 0 {
		t.Fatal("fracturing produced no shots")
	}
	if len(circles) >= len(rects) {
		t.Fatalf("circles (%d) not fewer than rects (%d)", len(circles), len(rects))
	}

	// Rect shots must tile exactly the Manhattanized mask.
	man := fracture.Manhattanize(pixel, 2)
	painted := geom.RasterizeRects(sim.N, sim.N, rects)
	if man.SqDiff(painted) != 0 {
		t.Fatal("rect shots do not reproduce the Manhattanized mask")
	}

	// The circular mask still prints the target better than no OPC at all
	// printing nothing (sanity floor).
	circMask := geom.RasterizeCircles(sim.N, sim.N, circles)
	r := sim.Simulate(circMask)
	rep := metrics.Evaluate(l, r.ZNom, r.ZMax, r.ZMin, len(circles))
	if rep.L2 >= float64(l.Area()) {
		t.Fatalf("circular mask print worse than printing nothing: %v", rep.L2)
	}
}

func TestEndToEndWriteBlurRobustness(t *testing.T) {
	// The motivation of the circular writer: shot decompositions should
	// survive the e-beam's short-range blur. Check the circular mask's
	// print is stable under a 12 nm blur.
	l, sim := smallCase(t)
	target := l.Rasterize(sim.N)
	coCfg := core.DefaultConfig(sim.DX)
	coCfg.Iterations = 20
	res := (&core.CircleOpt{Cfg: coCfg, InitIterations: 6}).Optimize(sim, target)

	sharp := sim.Simulate(res.Mask)
	blurred := sim.Simulate(litho.BlurMask(res.Mask, 12/sim.DX))
	moved := 0
	for i := range sharp.ZNom.Data {
		if (sharp.ZNom.Data[i] > 0.5) != (blurred.ZNom.Data[i] > 0.5) {
			moved++
		}
	}
	if moved > int(target.Sum())/4 {
		t.Fatalf("print unstable under write blur: %d px moved", moved)
	}
}
