// Package cfaopc's root benchmarks regenerate every table and figure of
// the paper's evaluation section, one testing.B target per exhibit. They
// run a reduced configuration (fewer iterations, a case subset) so that
// `go test -bench=.` completes in minutes; `cmd/paperbench` runs the full
// recorded configuration.
package cfaopc_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"cfaopc/internal/bench"
	"cfaopc/internal/core"
	"cfaopc/internal/flow"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
	"cfaopc/internal/wcache"
)

// benchOptions is the reduced configuration shared by all exhibits.
func benchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.Cases = []int{1, 4, 10} // small / medium representative subset
	o.BaselineIters = 20
	o.CircleOptIters = 25
	o.InitIters = 8
	o.KOpt = 4
	return o
}

var (
	runnerOnce sync.Once
	runner     *bench.Runner
	runnerErr  error
)

// sharedRunner memoizes one Runner across benchmarks so pixel baselines
// are optimized once and reused, exactly as the harness does.
func sharedRunner(b *testing.B) *bench.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner, runnerErr = bench.NewRunner(benchOptions())
	})
	if runnerErr != nil {
		b.Fatal(runnerErr)
	}
	return runner
}

// BenchmarkTable1 regenerates Table 1: each pixel baseline raw (VSB
// rectangle fracturing) vs +CircleRule, averaged metrics.
func BenchmarkTable1(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.Table1()
		if len(t.Rows) != 6 {
			b.Fatalf("Table1 rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkTable2 regenerates Table 2: per-case printability/complexity
// for the three CircleRule pipelines and CircleOpt.
func BenchmarkTable2(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.Table2()
		if len(t.Rows) != len(r.Suite)+1 {
			b.Fatalf("Table2 rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkTable3 regenerates Table 3: the sparsity-regularizer ablation.
func BenchmarkTable3(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.Table3()
		if len(t.Rows) != 2 {
			b.Fatalf("Table3 rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1: rectangular vs circular
// fracturing shot counts on curvilinear masks.
func BenchmarkFigure1(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.Figure1()
		if len(t.Rows) != 3 {
			b.Fatalf("Figure1 rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: the target/mask/printed triptych
// renders for a CircleOpt case.
func BenchmarkFigure6(b *testing.B) {
	r := sharedRunner(b)
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		files, err := r.RenderCase(0, dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(files) != 3 {
			b.Fatalf("rendered %d files", len(files))
		}
	}
}

// BenchmarkAblationSTE measures what the straight-through estimator buys
// over continuous relaxation with final rounding (DESIGN.md design-choice
// ablation).
func BenchmarkAblationSTE(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.AblationSTE()
		if len(t.Rows) != 2 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkAblationCoverageRepair measures the coverage-repair extension
// to Algorithm 1 on wide regions.
func BenchmarkAblationCoverageRepair(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.AblationCoverageRepair()
		if len(t.Rows) != 2 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkExtensionDose compares the dose-modulated DoseOpt extension
// against CircleOpt (the future-work experiment described in DESIGN.md).
func BenchmarkExtensionDose(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.ExtensionDose()
		if len(t.Rows) != 2 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkExtensionCompaction measures union-preserving shot compaction
// across every method's shot lists.
func BenchmarkExtensionCompaction(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.ExtensionCompaction()
		if len(t.Rows) != 4 {
			b.Fatalf("rows = %d", len(t.Rows))
		}
		if i == 0 {
			b.Log("\n" + t.Format())
		}
	}
}

// BenchmarkFlowRun measures the tiled full-chip flow at increasing
// tile-worker counts on a 2×2-core random layout with work in every
// quadrant. The stitched output is bit-identical at every count, so the
// sub-benchmarks differ only in wall time; the perf trajectory lands in
// BENCH_*.json alongside the exhibit benchmarks.
func BenchmarkFlowRun(b *testing.B) {
	l := layout.GenerateRandom(7, layout.RandomConfig{Features: 8})
	cfg := flow.Config{
		GridN:   256, // 8 nm/px over the 2048 nm chip
		CorePx:  128, // 2×2 cores
		HaloPx:  32,
		Optics:  optics.Default(),
		KOpt:    4,
		Workers: 1, // per-kernel parallelism off: isolate tile scaling
		Optimize: func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
			coCfg := core.DefaultConfig(sim.DX)
			coCfg.Iterations = 15
			res := (&core.CircleOpt{Cfg: coCfg, InitIterations: 6}).Optimize(sim, target)
			return res.Mask, res.Shots
		},
	}
	// Warm the kernel cache outside the timed loops.
	if _, err := flow.Run(l, cfg); err != nil {
		b.Fatal(err)
	}
	sweep := []int{1, 2, runtime.GOMAXPROCS(0)}
	var baseShots []geom.Circle
	for _, tw := range sweep {
		b.Run(fmt.Sprintf("tileworkers=%d", tw), func(b *testing.B) {
			cfg.TileWorkers = tw
			for i := 0; i < b.N; i++ {
				res, err := flow.Run(l, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Shots) == 0 {
					b.Fatal("no shots")
				}
				if baseShots == nil {
					baseShots = res.Shots
				} else if len(res.Shots) != len(baseShots) {
					b.Fatalf("shot count drifted: %d vs %d", len(res.Shots), len(baseShots))
				}
			}
		})
	}
}

// BenchmarkFlowCached measures the window dedup cache on the 8×8
// repeated-cell array, where every cell window is pixel-identical:
// uncached optimizes all 64 windows, cold starts an empty cache
// (optimize one, serve 63 by content hash), warm reruns against the
// populated cache and optimizes nothing. The cold/warm gap is the
// figure recorded in BENCH_flow.json.
func BenchmarkFlowCached(b *testing.B) {
	l := layout.GenerateArray(8, 8, layout.ArrayConfig{})
	mkCfg := func(c *wcache.Cache) flow.Config {
		return flow.Config{
			GridN:   256,
			CorePx:  32, // one core per array cell
			HaloPx:  8,  // stays inside the motif margin: windows dedup
			Optics:  optics.Default(),
			KOpt:    4,
			Workers: 1,
			Optimize: func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
				coCfg := core.DefaultConfig(sim.DX)
				coCfg.Iterations = 15
				res := (&core.CircleOpt{Cfg: coCfg, InitIterations: 6}).Optimize(sim, target)
				return res.Mask, res.Shots
			},
			Cache: c,
		}
	}
	// Warm the kernel cache (and pin the uncached shot list) outside the
	// timed loops.
	ref, err := flow.Run(l, mkCfg(nil))
	if err != nil {
		b.Fatal(err)
	}
	check := func(b *testing.B, res *flow.Result, wantHits int) {
		b.Helper()
		if res.CacheHits != wantHits {
			b.Fatalf("cache hits = %d, want %d", res.CacheHits, wantHits)
		}
		if len(res.Shots) != len(ref.Shots) {
			b.Fatalf("shot count drifted: %d vs %d", len(res.Shots), len(ref.Shots))
		}
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := flow.Run(l, mkCfg(nil))
			if err != nil {
				b.Fatal(err)
			}
			check(b, res, 0)
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := wcache.New(wcache.Config{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := flow.Run(l, mkCfg(c))
			if err != nil {
				b.Fatal(err)
			}
			check(b, res, 63)
		}
	})
	b.Run("warm", func(b *testing.B) {
		c, err := wcache.New(wcache.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := flow.Run(l, mkCfg(c)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := flow.Run(l, mkCfg(c))
			if err != nil {
				b.Fatal(err)
			}
			check(b, res, 64)
		}
	})
}

// BenchmarkFigure7 regenerates Figure 7: the sample-distance ablation
// series for shot count, L2+PVB and EPE.
func BenchmarkFigure7(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		shot, quality, epe := r.Figure7()
		if len(shot.Series) != 3 || len(quality.Series) != 2 || len(epe.Series) != 2 {
			b.Fatal("figure series missing")
		}
		if i == 0 {
			b.Log("\n" + shot.Format() + quality.Format() + epe.Format())
		}
	}
}
