package cfaopc_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the command-line tools and drives the full
// artifact flow a user would: generate layouts, optimize one, and re-score
// the emitted shot list.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	genlayout := build("genlayout")
	cfaopc := build("cfaopc")
	evalmask := build("evalmask")

	work := t.TempDir()
	run := func(name string, args ...string) string {
		cmd := exec.Command(name, args...)
		cmd.Dir = work
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(name), args, err, out)
		}
		return string(out)
	}

	// 1. Generate the suite (with GDS copies).
	out := run(genlayout, "-out", "layouts", "-gds")
	if !strings.Contains(out, "case10.glp") {
		t.Fatalf("genlayout output missing case10:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(work, "layouts", "case4.gds")); err != nil {
		t.Fatalf("GDS file missing: %v", err)
	}

	// 2. Optimize case 4 from its GLP file with a fast configuration.
	out = run(cfaopc, "-layout", "layouts/case4.glp", "-grid", "128",
		"-iters", "10", "-out", "out")
	if !strings.Contains(out, "shots") {
		t.Fatalf("cfaopc output unexpected:\n%s", out)
	}
	shotCSV := filepath.Join(work, "out", "case4_shots.csv")
	if _, err := os.Stat(shotCSV); err != nil {
		t.Fatalf("shot list missing: %v", err)
	}

	// 3. Re-score the shot list with evalmask; metrics must be reported.
	out = run(evalmask, "-layout", "layouts/case4.glp", "-shots",
		"out/case4_shots.csv", "-grid", "128")
	if !strings.Contains(out, "L2") || !strings.Contains(out, "shots") {
		t.Fatalf("evalmask output unexpected:\n%s", out)
	}

	// 4. GDS input path: optimizing from the GDS copy must agree on the
	// target (same layout, same shot-count ballpark).
	out = run(cfaopc, "-layout", "layouts/case4.gds", "-grid", "128",
		"-iters", "10", "-out", "out2", "-method", "develset")
	if !strings.Contains(out, "shots") {
		t.Fatalf("cfaopc GDS run unexpected:\n%s", out)
	}

	// 5. Tiled full-chip path: halo windows optimized by concurrent tile
	// workers; the per-window stats and stitched metrics must print.
	out = run(cfaopc, "-layout", "layouts/case4.glp", "-grid", "128",
		"-iters", "8", "-tile-core", "64", "-tile-halo", "16",
		"-tile-workers", "4", "-out", "out3")
	if !strings.Contains(out, "flow: 4 windows") || !strings.Contains(out, "shots") {
		t.Fatalf("cfaopc tiled run unexpected:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(work, "out3", "case4_shots.csv")); err != nil {
		t.Fatalf("tiled shot list missing: %v", err)
	}
}
