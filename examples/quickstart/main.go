// Quickstart: optimize a single contact-bar target with CircleOpt and
// print the shot list and quality metrics.
//
//	go run ./examples/quickstart
//
// Everything runs on a small 512 nm tile (128×128 px, 4 nm/px) so the
// whole pipeline — kernel synthesis, stage-1 pixel ILT, circle-level
// optimization, evaluation — finishes in a few seconds on a laptop.
package main

import (
	"fmt"
	"log"

	"cfaopc/internal/core"
	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
)

func main() {
	// 1. Imaging condition: ArF immersion with annular illumination on a
	//    small tile. Kernels are computed from first principles.
	cfg := optics.Default()
	cfg.TileNM = 512
	const n = 128 // 4 nm/px
	sim, err := litho.New(cfg, n)
	if err != nil {
		log.Fatal(err)
	}
	sim.KOpt = 5 // truncated kernel set inside the optimization loop

	// 2. Target: an 80×240 nm vertical bar with a 60 nm neighbor.
	target := grid.NewReal(n, n)
	bar := func(x0, y0, wNM, hNM int) {
		for y := y0; y < y0+hNM/4; y++ {
			for x := x0; x < x0+wNM/4; x++ {
				target.Set(x, y, 1)
			}
		}
	}
	bar(40, 34, 80, 240)
	bar(70, 34, 60, 240)

	// 3. CircleOpt: stage-1 MOSAIC init, then circle-level ILT with the
	//    paper's hyper-parameters (α=8, γ=3, step 0.1, R ∈ [12, 76] nm).
	coCfg := core.DefaultConfig(sim.DX)
	coCfg.Iterations = 40
	e := &core.CircleOpt{Cfg: coCfg, InitIterations: 10}
	res := e.Optimize(sim, target)

	// 4. Evaluate at the three process corners with the full kernel set.
	simRes := sim.Simulate(res.Mask)
	l2px := 0
	for i := range target.Data {
		if (simRes.ZNom.Data[i] > 0.5) != (target.Data[i] > 0.5) {
			l2px++
		}
	}
	pvbPx := 0
	for i := range simRes.ZMax.Data {
		if (simRes.ZMax.Data[i] > 0.5) != (simRes.ZMin.Data[i] > 0.5) {
			pvbPx++
		}
	}
	fmt.Printf("CircleOpt finished: %d shots\n", len(res.Shots))
	fmt.Printf("  L2  = %.0f nm² (%d px)\n", float64(l2px)*sim.DX*sim.DX, l2px)
	fmt.Printf("  PVB = %.0f nm² (%d px)\n", float64(pvbPx)*sim.DX*sim.DX, pvbPx)
	fmt.Printf("  loss %.0f → %.0f over %d iterations\n",
		res.LossHistory[0], res.LossHistory[len(res.LossHistory)-1], len(res.LossHistory))

	// 5. The shot list is the manufacturable artifact: one circle = one
	//    e-beam flash. MRC is a per-shot radius check.
	for i, s := range res.Shots {
		fmt.Printf("  shot %2d: center (%4.0f, %4.0f) nm, radius %3.0f nm\n",
			i, s.X*sim.DX, s.Y*sim.DX, s.R*sim.DX)
		if i == 7 && len(res.Shots) > 9 {
			fmt.Printf("  … %d more\n", len(res.Shots)-8)
			break
		}
	}
	if v := metrics.CheckCircleMRC(res.Shots, sim.DX, 12, 76); len(v) == 0 {
		fmt.Println("MRC: clean")
	} else {
		fmt.Printf("MRC: %d violations\n", len(v))
	}
}
