// Full-chip style flow: tile a layout larger than one simulation window
// into overlapping halo windows, run CircleOpt independently per window,
// and stitch the shot lists — the deployment pattern that scales CFAOPC
// beyond a single 2048 nm clip.
//
//	go run ./examples/fullchip
package main

import (
	"fmt"
	"log"
	"time"

	"cfaopc/internal/core"
	"cfaopc/internal/flow"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
)

func main() {
	// A 2048 nm "chip" holding four feature groups, one per quadrant.
	l := &layout.Layout{
		Name:   "chip",
		TileNM: 2048,
		Rects: []layout.Rect{
			{X: 300, Y: 260, W: 80, H: 400},
			{X: 460, Y: 260, W: 80, H: 400},
			{X: 1400, Y: 300, W: 320, H: 80},
			{X: 1400, Y: 460, W: 240, H: 80},
			{X: 320, Y: 1400, W: 72, H: 320},
			{X: 1350, Y: 1350, W: 300, H: 300},
		},
	}
	if err := l.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := flow.Config{
		GridN:       256, // 8 nm/px across the chip
		CorePx:      128, // four cores
		HaloPx:      32,  // 256 nm optical context
		Optics:      optics.Default(),
		KOpt:        4,
		TileWorkers: -1,   // one window per core; shots identical at any count
		KeepMask:    true, // the full-chip scoring below needs the dense mask
		Optimize: func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
			coCfg := core.DefaultConfig(sim.DX)
			coCfg.Iterations = 30
			res := (&core.CircleOpt{Cfg: coCfg, InitIterations: 10}).Optimize(sim, target)
			return res.Mask, res.Shots
		},
	}
	res, err := flow.Run(l, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized %d windows → %d total shots (peak flow memory ≈ %.1f MB)\n",
		res.Tiles, len(res.Shots), float64(res.PeakBytes)/(1<<20))
	for _, ts := range res.TileStats {
		fmt.Printf("  tile %d core(%3d,%3d): occupied=%-5v shots %3d  wall %s (raster %s)\n",
			ts.Index, ts.CX, ts.CY, ts.Occupied, ts.Shots, ts.Wall.Round(time.Millisecond),
			ts.RasterWall.Round(time.Microsecond))
	}

	// Score the stitched result with a full-chip simulation.
	oCfg := optics.Default()
	oCfg.TileNM = float64(l.TileNM)
	sim, err := litho.New(oCfg, cfg.GridN)
	if err != nil {
		log.Fatal(err)
	}
	r := sim.Simulate(res.Mask)
	rep := metrics.Evaluate(l, r.ZNom, r.ZMax, r.ZMin, len(res.Shots))
	fmt.Printf("full-chip metrics: L2 %.0f nm², PVB %.0f nm², EPE %d, shots %d\n",
		rep.L2, rep.PVB, rep.EPE, rep.Shots)
	if v := metrics.CheckCircleMRC(res.Shots, sim.DX, 12, 76); len(v) == 0 {
		fmt.Println("MRC radii: clean")
	} else {
		fmt.Printf("MRC radii: %d violations\n", len(v))
	}
	if v := metrics.CheckCircleSpacing(res.Shots, sim.DX, 40); len(v) == 0 {
		fmt.Println("MRC spacing: clean")
	} else {
		fmt.Printf("MRC spacing: %d narrow gaps (e.g. %s)\n", len(v), v[0].Reason)
	}
}
