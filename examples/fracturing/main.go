// Fracturing comparison: optimize a curvilinear mask with a pixel-level
// ILT engine, then fracture it both ways — VSB rectangles (Manhattanize +
// minimum rectangle partition) and CircleRule circles — and compare shot
// counts and reconstruction fidelity. This is Figure 1 of the paper as a
// runnable program.
//
//	go run ./examples/fracturing
package main

import (
	"fmt"
	"log"

	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/ilt"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

func main() {
	cfg := optics.Default()
	cfg.TileNM = 512
	const n = 128
	sim, err := litho.New(cfg, n)
	if err != nil {
		log.Fatal(err)
	}
	sim.KOpt = 5

	// An L-shaped target produces a properly curvilinear ILT mask.
	target := grid.NewReal(n, n)
	for y := 30; y < 95; y++ {
		for x := 40; x < 58; x++ {
			target.Set(x, y, 1)
		}
	}
	for y := 77; y < 95; y++ {
		for x := 58; x < 95; x++ {
			target.Set(x, y, 1)
		}
	}

	iltCfg := ilt.DefaultConfig()
	iltCfg.Iterations = 30
	mask := (&ilt.MultiLevel{Cfg: iltCfg}).Optimize(sim, target)
	fmt.Printf("curvilinear mask: %.0f px of %d²\n", mask.Sum(), n)

	// Traditional path: Manhattanize on an 8 nm grid, then fracture into
	// the *minimum* number of rectangles (concave-chord matching).
	block := int(8/sim.DX + 0.5)
	if block < 1 {
		block = 1
	}
	rects := fracture.RectShots(mask, block)
	fmt.Printf("VSB fracturing:     %4d rectangle shots\n", len(rects))

	// Circular writer path: Algorithm 1 with the paper's parameters.
	ruleCfg := fracture.DefaultCircleRuleConfig(sim.DX)
	circles := fracture.CircleRule(mask, ruleCfg)
	fmt.Printf("Circular fracturing: %4d circle shots (%.1fx fewer)\n",
		len(circles), float64(len(rects))/float64(len(circles)))

	// Reconstruction fidelity of the circular mask vs the original.
	rec := geom.RasterizeCircles(n, n, circles)
	inter, union := 0, 0
	for i := range mask.Data {
		a := mask.Data[i] > 0.5
		b := rec.Data[i] > 0.5
		if a && b {
			inter++
		}
		if a || b {
			union++
		}
	}
	fmt.Printf("circle-mask IoU vs original: %.2f\n", float64(inter)/float64(union))

	// And the print quality of both masks.
	for _, m := range []struct {
		name string
		g    *grid.Real
	}{{"original", mask}, {"circled ", rec}} {
		r := sim.Simulate(m.g)
		diff := 0
		for i := range target.Data {
			if (r.ZNom.Data[i] > 0.5) != (target.Data[i] > 0.5) {
				diff++
			}
		}
		fmt.Printf("print L2 with %s mask: %.0f nm²\n", m.name, float64(diff)*sim.DX*sim.DX)
	}
}
