// Custom lithography models: build SOCS kernel sets for different
// illumination settings from first principles and study how the process
// window of one mask changes — the substrate the paper takes from the
// ICCAD-2013 contest kit, exercised directly.
//
//	go run ./examples/customlitho
package main

import (
	"fmt"
	"log"

	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
	"cfaopc/internal/sraf"
)

func main() {
	const n = 128
	target := grid.NewReal(n, n)
	for y := 34; y < 94; y++ {
		for x := 54; x < 74; x++ { // 80 nm bar on a 512 nm tile
			target.Set(x, y, 1)
		}
	}

	conditions := []struct {
		name string
		mod  func(*optics.Config)
	}{
		{"annular 0.5-0.8 (default)", func(c *optics.Config) {}},
		{"annular 0.7-0.9 (high sigma)", func(c *optics.Config) { c.SigmaIn, c.SigmaOut = 0.7, 0.9 }},
		{"conventional 0-0.6", func(c *optics.Config) { c.SigmaIn, c.SigmaOut = 0, 0.6 }},
		{"NA 1.20 (lower resolution)", func(c *optics.Config) { c.NA = 1.20 }},
		{"50 nm defocus corner", func(c *optics.Config) { c.DefocusNM = 50 }},
	}

	fmt.Println("process-window analysis of the same 80 nm bar mask:")
	fmt.Printf("%-30s %10s %10s %10s\n", "condition", "L2(nm²)", "PVB(nm²)", "kernels")
	for _, cond := range conditions {
		cfg := optics.Default()
		cfg.TileNM = 512
		cond.mod(&cfg)
		sim, err := litho.New(cfg, n)
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Simulate(target) // print the target as its own mask
		l2, pvb := 0, 0
		for i := range target.Data {
			if (res.ZNom.Data[i] > 0.5) != (target.Data[i] > 0.5) {
				l2++
			}
			if (res.ZMax.Data[i] > 0.5) != (res.ZMin.Data[i] > 0.5) {
				pvb++
			}
		}
		dx2 := sim.DX * sim.DX
		fmt.Printf("%-30s %10.0f %10.0f %10d\n",
			cond.name, float64(l2)*dx2, float64(pvb)*dx2, len(sim.Focus.Kernels))
	}

	// Rule-based scattering bars: the classic OPC assist for isolated
	// features. Compare the isolated bar's process-variation band with and
	// without SRAFs (the bars are sub-resolution: they must not print).
	iso := &layout.Layout{
		Name:   "iso",
		TileNM: 2048,
		Rects:  []layout.Rect{{X: 960, Y: 700, W: 90, H: 640}},
	}
	withBars := sraf.WithSRAFs(iso, sraf.DefaultRules())
	fmt.Printf("\nrule-based SRAFs on an isolated 90 nm bar (%d bars inserted):\n",
		len(withBars.Rects)-len(iso.Rects))
	simCfg := optics.Default()
	isoSim, err := litho.New(simCfg, 256)
	if err != nil {
		log.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		l    *layout.Layout
	}{{"bare mask", iso}, {"with SRAFs", withBars}} {
		mask := variant.l.Rasterize(256)
		res := isoSim.Simulate(mask)
		pvb := 0
		for i := range res.ZMax.Data {
			if (res.ZMax.Data[i] > 0.5) != (res.ZMin.Data[i] > 0.5) {
				pvb++
			}
		}
		// Count printed pixels more than ~40 nm away from the drawn bar:
		// SRAFs are sub-resolution and must not print.
		stray := 0
		for y := 0; y < 256; y++ {
			for x := 0; x < 256; x++ {
				if res.ZNom.At(x, y) <= 0.5 {
					continue
				}
				xNM := (float64(x) + 0.5) * isoSim.DX
				yNM := (float64(y) + 0.5) * isoSim.DX
				t := iso.Rects[0]
				if xNM < float64(t.X)-40 || xNM > float64(t.X+t.W)+40 ||
					yNM < float64(t.Y)-40 || yNM > float64(t.Y+t.H)+40 {
					stray++
				}
			}
		}
		dx2 := isoSim.DX * isoSim.DX
		fmt.Printf("  %-12s PVB %6.0f nm², stray printed px: %d\n",
			variant.name, float64(pvb)*dx2, stray)
	}

	// The kernel spectra themselves are inspectable: show the energy
	// distribution of the default condition's top kernels.
	cfg := optics.Default()
	cfg.TileNM = 512
	set, err := optics.CachedKernels(cfg, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSOCS eigenvalue spectrum (relative):")
	for i, k := range set.Kernels {
		if i >= 8 {
			fmt.Printf("  … %d more kernels\n", len(set.Kernels)-8)
			break
		}
		bar := ""
		for j := 0; j < int(40*k.Weight/set.Kernels[0].Weight); j++ {
			bar += "#"
		}
		fmt.Printf("  λ%-2d %-40s %.4f\n", i, bar, k.Weight/set.Kernels[0].Weight)
	}
}
