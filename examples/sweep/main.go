// Sample-distance sweep: a miniature of the paper's Figure-7 ablation on
// one benchmark case — how the sample distance m trades shot count
// against mask quality for CircleRule vs CircleOpt, and why CircleOpt is
// flatter on both axes.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"cfaopc/internal/bench"
)

func main() {
	o := bench.DefaultOptions()
	o.Cases = []int{10} // the 320×320 square block
	o.BaselineIters = 25
	o.CircleOptIters = 30
	o.InitIters = 8
	r, err := bench.NewRunner(o)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("case10 (%d nm², %.0f nm/px grid)\n", r.Suite[0].Area(), r.Sim.DX)
	fmt.Printf("%6s | %22s | %22s\n", "", "CircleRule(MultiILT)", "CircleOpt")
	fmt.Printf("%6s | %6s %9s %4s | %6s %9s %4s\n",
		"m(nm)", "#Shot", "L2+PVB", "EPE", "#Shot", "L2+PVB", "EPE")
	for _, m := range []float64{16, 24, 32, 40, 48} {
		rule, _ := r.RunCircleRule("MultiILT", 0, m)
		opt, _ := r.RunCircleOpt(0, m, o.Gamma)
		fmt.Printf("%6.0f | %6d %9.0f %4d | %6d %9.0f %4d\n",
			m,
			rule.Shots, rule.L2+rule.PVB, rule.EPE,
			opt.Shots, opt.L2+opt.PVB, opt.EPE)
	}
	fmt.Println("\nCircleOpt re-optimizes circle positions and radii, so its")
	fmt.Println("quality and shot count degrade more slowly as m grows.")
}
