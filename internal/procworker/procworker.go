// Package procworker is the engine-backed tile worker: the glue that
// sits above internal/flow, internal/engine and internal/procpool and
// turns a process into a frame-serving tile worker. It exists as its
// own package (rather than living in flow) because engine construction
// imports the flow — procpool stays a leaf, the flow stays below the
// engine registry, and every binary that wants to be its own worker
// (cmd/cfaopc, cmd/tileworker) just calls Serve.
package procworker

import (
	"context"
	"io"

	"cfaopc/internal/engine"
	"cfaopc/internal/flow"
	"cfaopc/internal/procpool"
)

// Serve runs the tile-worker loop on r/w until the supervisor closes
// the task stream. Each task's optimizer chain is rebuilt from its
// bundle's engine metadata, and the window simulator is cached across
// tasks (every window in a run shares one imaging condition, so a
// healthy worker pays kernel setup once).
func Serve(r io.Reader, w io.Writer) error {
	var cache flow.SimCache
	return procpool.Serve(r, w, func(ctx context.Context, t *procpool.Task, sink procpool.Sink) procpool.Reply {
		b := &t.Bundle
		reply := procpool.Reply{Index: b.Tile.Index}
		if err := b.ValidateTask(); err != nil {
			reply.Err = err.Error()
			return reply
		}
		primary, fallback, err := engine.FromMeta(b.Engines)
		if err != nil {
			reply.Err = "engine: " + err.Error()
			return reply
		}
		sim, err := cache.For(t)
		if err != nil {
			reply.Err = "litho: " + err.Error()
			return reply
		}
		return flow.ServeTask(ctx, sim, t, primary, fallback, sink)
	})
}
