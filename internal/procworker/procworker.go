// Package procworker is the engine-backed tile worker: the glue that
// sits above internal/flow, internal/engine and internal/procpool and
// turns a process into a frame-serving tile worker. It exists as its
// own package (rather than living in flow) because engine construction
// imports the flow — procpool stays a leaf, the flow stays below the
// engine registry, and every binary that wants to be its own worker
// (cmd/cfaopc, cmd/tileworker) just calls Serve or ServeIfWorker.
package procworker

import (
	"context"
	"io"
	"net"
	"os"
	"time"

	"cfaopc/internal/engine"
	"cfaopc/internal/flow"
	"cfaopc/internal/netpool"
	"cfaopc/internal/procpool"
)

// Runner builds the engine-backed task executor one worker session
// uses: each task's optimizer chain is rebuilt from its bundle's engine
// metadata, and the window simulator is cached across tasks (every
// window in a run shares one imaging condition, so a healthy session
// pays kernel setup once). Each call returns an independent executor —
// sessions never share the simulator cache, so concurrent TCP sessions
// stay race-free.
func Runner() procpool.Runner {
	var cache flow.SimCache
	return func(ctx context.Context, t *procpool.Task, sink procpool.Sink) procpool.Reply {
		b := &t.Bundle
		reply := procpool.Reply{Index: b.Tile.Index}
		if err := b.ValidateTask(); err != nil {
			reply.Err = err.Error()
			return reply
		}
		primary, fallback, err := engine.FromMeta(b.Engines)
		if err != nil {
			reply.Err = "engine: " + err.Error()
			return reply
		}
		sim, err := cache.For(t)
		if err != nil {
			reply.Err = "litho: " + err.Error()
			return reply
		}
		return flow.ServeTask(ctx, sim, t, primary, fallback, sink)
	}
}

// Serve runs the pipe-transport worker loop on r/w until the
// supervisor closes the task stream.
func Serve(r io.Reader, w io.Writer) error {
	return procpool.Serve(r, w, Runner())
}

// Listen serves the same worker loop over TCP: every coordinator
// connection is handshaken (protocol version + optional config
// fingerprint pin, under the handshake deadline) and then served its
// own task session. It blocks until the listener closes.
func Listen(ln net.Listener, pin string, handshake time.Duration) error {
	srv := &netpool.Server{Pin: pin, Handshake: handshake, Runner: Runner}
	return srv.Serve(ln)
}

// ServeIfWorker is the re-exec branch every worker-capable binary runs
// first: when the process was spawned as a pipe tile worker
// (procpool.InWorker), it serves frames on stdin/stdout and exits.
// Returns without side effects otherwise.
func ServeIfWorker() {
	if !procpool.InWorker() {
		return
	}
	if err := Serve(os.Stdin, os.Stdout); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}
