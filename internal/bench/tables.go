package bench

import (
	"fmt"
	"strings"

	"cfaopc/internal/metrics"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// avg accumulates metric reports into a mean row.
type avg struct {
	l2, pvb, epe, shots float64
	n                   int
}

func (a *avg) add(r metrics.Report) {
	a.l2 += r.L2
	a.pvb += r.PVB
	a.epe += float64(r.EPE)
	a.shots += float64(r.Shots)
	a.n++
}

func (a *avg) row() []string {
	n := float64(a.n)
	if a.n == 0 {
		n = 1
	}
	return []string{f1(a.l2 / n), f1(a.pvb / n), f1(a.epe / n), f1(a.shots / n)}
}

// Table1 reproduces the paper's Table 1: each SOTA pixel engine evaluated
// raw (VSB rectangle shots) and with CircleRule fracturing; averages over
// the selected cases.
func (r *Runner) Table1() *Table {
	t := &Table{
		Title:  "Table 1: CircleRule vs SOTA pixel-based OPC (averages)",
		Header: []string{"Model", "L2", "PVB", "EPE", "#Shot"},
	}
	for _, name := range Baselines {
		raw, ruled := &avg{}, &avg{}
		for ci := range r.Suite {
			raw.add(r.RunRect(name, ci))
			rep, _ := r.RunCircleRule(name, ci, r.Opt.SampleDistNM)
			ruled.add(rep)
		}
		t.Rows = append(t.Rows, append([]string{name}, raw.row()...))
		t.Rows = append(t.Rows, append([]string{name + "+CircleRule"}, ruled.row()...))
	}
	return t
}

// Table2 reproduces the paper's Table 2: per-case printability and
// complexity for the three CircleRule pipelines and CircleOpt, with an
// average row.
func (r *Runner) Table2() *Table {
	t := &Table{
		Title: "Table 2: Mask printability & complexity (DS=DevelSet+CircleRule, NI=NeuralILT+CircleRule, MI=MultiILT+CircleRule, CO=CircleOpt)",
		Header: []string{"Bench", "Area(nm2)",
			"DS+CR:L2", "PVB", "EPE", "#Shot",
			"NI+CR:L2", "PVB", "EPE", "#Shot",
			"MI+CR:L2", "PVB", "EPE", "#Shot",
			"CO:L2", "PVB", "EPE", "#Shot"},
	}
	avgs := make([]*avg, 4)
	for i := range avgs {
		avgs[i] = &avg{}
	}
	for ci, l := range r.Suite {
		row := []string{l.Name, fmt.Sprintf("%d", l.Area())}
		for bi, name := range Baselines {
			rep, _ := r.RunCircleRule(name, ci, r.Opt.SampleDistNM)
			avgs[bi].add(rep)
			row = append(row, f1(rep.L2), f1(rep.PVB), fmt.Sprintf("%d", rep.EPE), fmt.Sprintf("%d", rep.Shots))
		}
		rep, _ := r.RunCircleOpt(ci, r.Opt.SampleDistNM, r.Opt.Gamma)
		avgs[3].add(rep)
		row = append(row, f1(rep.L2), f1(rep.PVB), fmt.Sprintf("%d", rep.EPE), fmt.Sprintf("%d", rep.Shots))
		t.Rows = append(t.Rows, row)
	}
	avgRow := []string{"Average", ""}
	for _, a := range avgs {
		avgRow = append(avgRow, a.row()...)
	}
	t.Rows = append(t.Rows, avgRow)
	return t
}

// Table3 reproduces the sparsity-regularizer ablation: CircleOpt with and
// without L_s, averaged over the selected cases.
func (r *Runner) Table3() *Table {
	t := &Table{
		Title:  "Table 3: Ablation on the circular sparsity regularizer",
		Header: []string{"Method", "L2", "PVB", "EPE", "#Shot"},
	}
	withOut, with := &avg{}, &avg{}
	for ci := range r.Suite {
		rep0, _ := r.RunCircleOpt(ci, r.Opt.SampleDistNM, 0)
		withOut.add(rep0)
		rep1, _ := r.RunCircleOpt(ci, r.Opt.SampleDistNM, r.Opt.Gamma)
		with.add(rep1)
	}
	t.Rows = append(t.Rows,
		append([]string{"CircleOpt w/o Sparsity"}, withOut.row()...),
		append([]string{"CircleOpt"}, with.row()...))
	return t
}
