package bench

import (
	"fmt"
	"os/exec"
	"time"

	"cfaopc/internal/engine"
	"cfaopc/internal/flow"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// RemoteOptions configures the distributed tile-worker exhibit. The two
// process hooks come from the caller (cmd/paperbench re-executes itself
// for both roles); leaving one nil skips that transport's rows.
type RemoteOptions struct {
	CorePx   int   // core px owned per window
	HaloPx   int   // halo context px around each core
	Iters    int   // CircleOpt stage-2 iterations per window
	Seed     int64 // random full-chip layout seed
	Features int   // bars in the random layout
	Pool     int   // worker subprocess / remote host count

	// WorkerCmd builds one pipe-transport worker subprocess (the
	// -proc-workers rows).
	WorkerCmd func() *exec.Cmd
	// StartHost launches one loopback TCP tile-worker host and returns
	// its dial address (the -remote rows).
	StartHost func() (addr string, stop func(), err error)
}

// DefaultRemoteOptions sizes a 2×2-core sweep over the runner's grid
// with a two-lane pool — enough to show the dispatch overhead without
// drowning the exhibit in optimization time.
func DefaultRemoteOptions(gridN int) RemoteOptions {
	return RemoteOptions{
		CorePx:   gridN / 2,
		HaloPx:   gridN / 16,
		Iters:    12,
		Seed:     7,
		Features: 8,
		Pool:     2,
	}
}

// RemoteTable runs the same tiled layout in-process, through supervised
// worker subprocesses, and across loopback TCP hosts, and reports wall
// time, the overhead each transport pays over the in-process baseline,
// and whether the stitched shot list stayed byte-identical — the
// determinism contract of the distributed flow made observable. All
// variants share one engine-registry optimizer chain, so the workers
// rebuild exactly what the in-process run executes.
func (r *Runner) RemoteTable(o RemoteOptions) (*Table, error) {
	l := layout.GenerateRandom(o.Seed, layout.RandomConfig{Features: o.Features})
	opts := engine.Options{Iters: o.Iters, Gamma: 3, SampleNM: 32}
	optimize, err := engine.For("circleopt", opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Distributed tile workers: %s, grid %d, core %d, halo %d, pool %d",
			l.Name, r.Opt.GridN, o.CorePx, o.HaloPx, o.Pool),
		Header: []string{"transport", "tiles", "shots", "wall", "overhead", "identical"},
	}
	// Warm the kernel cache so the baseline is not charged the one-time
	// SOCS decomposition (workers pay their own; that cost is part of the
	// overhead being measured).
	window := o.CorePx + 2*o.HaloPx
	warmCfg := optics.Default()
	warmCfg.TileNM = float64(window) * float64(l.TileNM) / float64(r.Opt.GridN)
	if _, err := litho.New(warmCfg, window); err != nil {
		return nil, err
	}

	mk := func() flow.Config {
		return flow.Config{
			GridN:       r.Opt.GridN,
			CorePx:      o.CorePx,
			HaloPx:      o.HaloPx,
			Optics:      optics.Default(),
			KOpt:        r.Opt.KOpt,
			Workers:     1,
			TileWorkers: 1,
			Optimize:    optimize,
			Engines:     engine.Meta("circleopt", "", opts),
		}
	}
	type variant struct {
		name string
		cfg  func() (flow.Config, func(), error)
	}
	variants := []variant{
		{name: "in-process", cfg: func() (flow.Config, func(), error) { return mk(), nil, nil }},
	}
	if o.WorkerCmd != nil {
		variants = append(variants, variant{name: "proc", cfg: func() (flow.Config, func(), error) {
			cfg := mk()
			cfg.ProcWorkers = o.Pool
			cfg.WorkerCmd = o.WorkerCmd
			return cfg, nil, nil
		}})
	}
	if o.StartHost != nil {
		variants = append(variants, variant{name: "remote", cfg: func() (flow.Config, func(), error) {
			cfg := mk()
			var stops []func()
			for i := 0; i < o.Pool; i++ {
				addr, stop, err := o.StartHost()
				if err != nil {
					for _, s := range stops {
						s()
					}
					return flow.Config{}, nil, err
				}
				cfg.RemoteHosts = append(cfg.RemoteHosts, addr)
				stops = append(stops, stop)
			}
			return cfg, func() {
				for _, s := range stops {
					s()
				}
			}, nil
		}})
	}

	var base *flow.Result
	var baseWall time.Duration
	for _, v := range variants {
		cfg, cleanup, err := v.cfg()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := flow.Run(l, cfg)
		wall := time.Since(start)
		if cleanup != nil {
			cleanup()
		}
		if err != nil {
			return nil, err
		}
		if res.ProcCrashes+res.Broken+res.RemoteCrashes+res.RemoteBroken > 0 {
			return nil, fmt.Errorf("bench: %s variant degraded (crashes %d/%d, broken %d/%d): exhibit would not measure the healthy path",
				v.name, res.ProcCrashes, res.RemoteCrashes, res.Broken, res.RemoteBroken)
		}
		identical := "baseline"
		if base == nil {
			base, baseWall = res, wall
		} else {
			identical = "yes"
			if !sameShots(base.Shots, res.Shots) {
				identical = "NO"
			}
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%d", res.Tiles),
			fmt.Sprintf("%d", len(res.Shots)),
			wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(wall)/float64(baseWall)),
			identical,
		})
	}
	return t, nil
}
