package bench

import (
	"fmt"
	"time"

	"cfaopc/internal/core"
	"cfaopc/internal/flow"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// FlowOptions configures the tiled full-chip exhibit.
type FlowOptions struct {
	CorePx      int   // core px owned per window
	HaloPx      int   // halo context px around each core
	Iters       int   // CircleOpt stage-2 iterations per window
	InitIters   int   // CircleOpt stage-1 MOSAIC iterations per window
	Seed        int64 // random full-chip layout seed
	Features    int   // bars in the random layout
	TileWorkers []int // worker counts to sweep (first entry is the baseline)
}

// DefaultFlowOptions sizes a 2×2-core sweep over the runner's grid.
func DefaultFlowOptions(gridN int) FlowOptions {
	return FlowOptions{
		CorePx:      gridN / 2,
		HaloPx:      gridN / 16,
		Iters:       20,
		InitIters:   8,
		Seed:        7,
		Features:    8,
		TileWorkers: []int{1, 2, 4},
	}
}

// FlowTable runs the halo-and-stitch flow over a random full-chip layout
// at each tile-worker count and reports per-run wall time, speedup over
// the first (baseline) count, the per-tile occupancy profile, and whether
// the stitched shot list is identical to the baseline — the determinism
// contract made observable.
func (r *Runner) FlowTable(o FlowOptions) (*Table, error) {
	l := layout.GenerateRandom(o.Seed, layout.RandomConfig{Features: o.Features})
	opt := func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		cfg := core.DefaultConfig(sim.DX)
		cfg.Iterations = o.Iters
		res := (&core.CircleOpt{Cfg: cfg, InitIterations: o.InitIters}).Optimize(sim, target)
		return res.Mask, res.Shots
	}
	t := &Table{
		Title:  fmt.Sprintf("Tiled flow: %s, grid %d, core %d, halo %d", l.Name, r.Opt.GridN, o.CorePx, o.HaloPx),
		Header: []string{"tile-workers", "mask", "tiles", "occupied", "shots", "wall", "speedup", "peak-mem", "identical"},
	}
	// Warm the kernel cache so the first swept count is not charged the
	// one-time SOCS decomposition.
	window := o.CorePx + 2*o.HaloPx
	warmCfg := optics.Default()
	warmCfg.TileNM = float64(window) * float64(l.TileNM) / float64(r.Opt.GridN)
	if _, err := litho.New(warmCfg, window); err != nil {
		return nil, err
	}
	var base *flow.Result
	var baseWall time.Duration
	// Each worker count runs streamed (shot list only) and the baseline
	// count additionally runs with the dense mask kept, so the peak-mem
	// column shows the O(window²) vs O(GridN²) gap the streaming path
	// removes.
	type variant struct {
		tw       int
		keepMask bool
	}
	variants := make([]variant, 0, len(o.TileWorkers)+1)
	for _, tw := range o.TileWorkers {
		variants = append(variants, variant{tw: tw})
	}
	if len(o.TileWorkers) > 0 {
		variants = append(variants, variant{tw: o.TileWorkers[0], keepMask: true})
	}
	for _, v := range variants {
		fCfg := flow.Config{
			GridN:  r.Opt.GridN,
			CorePx: o.CorePx,
			HaloPx: o.HaloPx,
			Optics: optics.Default(),
			KOpt:   r.Opt.KOpt,
			// Per-kernel parallelism stays serial so the sweep isolates
			// tile-level scaling.
			Workers:     1,
			TileWorkers: v.tw,
			Optimize:    opt,
			KeepMask:    v.keepMask,
		}
		start := time.Now()
		res, err := flow.Run(l, fCfg)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		occupied := 0
		for _, ts := range res.TileStats {
			if ts.Occupied {
				occupied++
			}
		}
		identical := "baseline"
		if base == nil {
			base, baseWall = res, wall
		} else {
			identical = "yes"
			if !sameShots(base.Shots, res.Shots) {
				identical = "NO"
			}
		}
		maskCol := "streamed"
		if v.keepMask {
			maskCol = "dense"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", v.tw),
			maskCol,
			fmt.Sprintf("%d", res.Tiles),
			fmt.Sprintf("%d", occupied),
			fmt.Sprintf("%d", len(res.Shots)),
			wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(baseWall)/float64(wall)),
			fmtBytes(res.PeakBytes),
			identical,
		})
	}
	return t, nil
}

// fmtBytes renders a byte count as a compact human-readable figure.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// sameShots reports byte-identical shot lists.
func sameShots(a, b []geom.Circle) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
