package bench

import (
	"strconv"
	"testing"
)

func TestExtensionTables(t *testing.T) {
	r := lightRunner(t)

	dose := r.ExtensionDose()
	if len(dose.Rows) != 2 {
		t.Fatalf("dose rows = %d", len(dose.Rows))
	}
	if dose.Rows[0][0] != "CircleOpt" || dose.Rows[1][0] != "DoseOpt" {
		t.Fatalf("dose labels: %v / %v", dose.Rows[0][0], dose.Rows[1][0])
	}

	greedy := r.ExtensionGreedy()
	if len(greedy.Rows) != 2 {
		t.Fatalf("greedy rows = %d", len(greedy.Rows))
	}

	comp := r.ExtensionCompaction()
	if len(comp.Rows) != 4 { // 3 baselines + CircleOpt
		t.Fatalf("compaction rows = %d", len(comp.Rows))
	}
	for _, row := range comp.Rows {
		before, err1 := strconv.ParseFloat(row[1], 64)
		after, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad compaction row %v", row)
		}
		if after > before {
			t.Fatalf("compaction grew shots: %v", row)
		}
	}
}
