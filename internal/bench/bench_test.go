package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lightRunner runs one small case with few iterations; the point of these
// tests is harness correctness, not mask quality.
func lightRunner(t testing.TB) *Runner {
	t.Helper()
	o := DefaultOptions()
	o.Cases = []int{4} // smallest-area case
	o.BaselineIters = 5
	o.CircleOptIters = 6
	o.InitIters = 3
	o.KOpt = 3
	r, err := NewRunner(o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRunnerValidation(t *testing.T) {
	o := DefaultOptions()
	o.GridN = 0
	if _, err := NewRunner(o); err == nil {
		t.Error("expected error for zero grid")
	}
	o = DefaultOptions()
	o.Cases = []int{99}
	if _, err := NewRunner(o); err == nil {
		t.Error("expected error for out-of-range case")
	}
}

func TestRunnerPipelines(t *testing.T) {
	r := lightRunner(t)

	rect := r.RunRect("MultiILT", 0)
	if rect.Shots <= 0 {
		t.Fatal("rect fracturing produced no shots")
	}
	rule, shots := r.RunCircleRule("MultiILT", 0, 32)
	if rule.Shots != len(shots) || rule.Shots == 0 {
		t.Fatalf("CircleRule shots inconsistent: %d vs %d", rule.Shots, len(shots))
	}
	if rule.Shots >= rect.Shots {
		t.Fatalf("circular fracturing (%d) not cheaper than rect (%d)", rule.Shots, rect.Shots)
	}
	opt, res := r.RunCircleOpt(0, 32, 3)
	if opt.Shots != len(res.Shots) {
		t.Fatal("CircleOpt shot count inconsistent")
	}
	// Memoization: a second call must not re-run (same pointer result).
	_, res2 := r.RunCircleOpt(0, 32, 3)
	if res != res2 {
		t.Fatal("CircleOpt result not memoized")
	}
}

func TestTableFormatting(t *testing.T) {
	r := lightRunner(t)
	t1 := r.Table1()
	if len(t1.Rows) != 6 { // 3 baselines × (raw + CircleRule)
		t.Fatalf("Table1 has %d rows", len(t1.Rows))
	}
	text := t1.Format()
	for _, want := range []string{"DevelSet", "MultiILT+CircleRule", "#Shot"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table1 text missing %q:\n%s", want, text)
		}
	}

	t2 := r.Table2()
	if len(t2.Rows) != 2 { // 1 case + average
		t.Fatalf("Table2 has %d rows", len(t2.Rows))
	}
	if t2.Rows[0][0] != "case4" || t2.Rows[1][0] != "Average" {
		t.Fatalf("Table2 row labels: %v, %v", t2.Rows[0][0], t2.Rows[1][0])
	}

	t3 := r.Table3()
	if len(t3.Rows) != 2 {
		t.Fatalf("Table3 has %d rows", len(t3.Rows))
	}
	if !strings.Contains(t3.Format(), "w/o Sparsity") {
		t.Error("Table3 missing ablation row")
	}
}

func TestFigure7Shapes(t *testing.T) {
	r := lightRunner(t)
	shot, quality, epe := r.Figure7()
	if len(shot.Series) != 3 || len(quality.Series) != 2 || len(epe.Series) != 2 {
		t.Fatalf("series counts: %d/%d/%d", len(shot.Series), len(quality.Series), len(epe.Series))
	}
	for _, s := range shot.Series {
		if len(s.X) != len(Figure7SampleDistances) {
			t.Fatalf("series %s has %d points", s.Label, len(s.X))
		}
	}
	// Shot count must not increase with sample distance for CircleRule.
	rule := shot.Series[0]
	for i := 1; i < len(rule.Y); i++ {
		if rule.Y[i] > rule.Y[i-1]+1e-9 {
			t.Errorf("CircleRule shots increased with m: %v", rule.Y)
		}
	}
	if !strings.Contains(shot.Format(), "CircleOpt") {
		t.Error("figure text missing series label")
	}
}

func TestFigure1Table(t *testing.T) {
	r := lightRunner(t)
	f1 := r.Figure1()
	if len(f1.Rows) != 3 {
		t.Fatalf("Figure1 has %d rows", len(f1.Rows))
	}
	if !strings.Contains(f1.Format(), "Reduction") {
		t.Error("Figure1 missing header")
	}
}

func TestRenderCaseWritesPNGs(t *testing.T) {
	r := lightRunner(t)
	dir := t.TempDir()
	files, err := r.RenderCase(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("rendered %d files", len(files))
	}
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
		if filepath.Ext(f) != ".png" {
			t.Fatalf("unexpected extension %s", f)
		}
	}
}
