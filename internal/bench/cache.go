package bench

import (
	"fmt"
	"time"

	"cfaopc/internal/core"
	"cfaopc/internal/flow"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
	"cfaopc/internal/wcache"
)

// CacheOptions configures the window-dedup cache exhibit.
type CacheOptions struct {
	Rows, Cols int    // repeated-cell array dimensions
	CorePx     int    // core px owned per window (must equal the cell pitch)
	HaloPx     int    // halo context px (must stay under the motif margin)
	Iters      int    // CircleOpt stage-2 iterations per window
	InitIters  int    // CircleOpt stage-1 MOSAIC iterations per window
	DiskDir    string // directory for the disk-tier variants
}

// DefaultCacheOptions sizes an 8×8 repeated-cell sweep over the runner's
// grid: the core pitch matches the cell pitch and the halo stays inside
// the motif margin, so every cell window is pixel-identical — the
// geometry the dedup cache is built for.
func DefaultCacheOptions(gridN int) CacheOptions {
	return CacheOptions{
		Rows: 8, Cols: 8,
		CorePx:    gridN / 8,
		HaloPx:    gridN / 32,
		Iters:     20,
		InitIters: 8,
	}
}

// CacheTable runs the tiled flow over the repeated-cell array once
// uncached, then cold and warm through the memory and disk cache tiers,
// and reports computed-vs-served window counts, wall time, the speedup
// over the uncached baseline, and warm-vs-cold — with the byte-identical
// contract checked on every variant. The warm disk row uses a fresh
// cache over the same directory, the cross-process persistence story.
func (r *Runner) CacheTable(o CacheOptions) (*Table, error) {
	l := layout.GenerateArray(o.Rows, o.Cols, layout.ArrayConfig{})
	opt := func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		cfg := core.DefaultConfig(sim.DX)
		cfg.Iterations = o.Iters
		res := (&core.CircleOpt{Cfg: cfg, InitIterations: o.InitIters}).Optimize(sim, target)
		return res.Mask, res.Shots
	}
	t := &Table{
		Title: fmt.Sprintf("Window dedup cache: %s, grid %d, core %d, halo %d",
			l.Name, r.Opt.GridN, o.CorePx, o.HaloPx),
		Header: []string{"variant", "tiles", "computed", "hits", "disk-hits", "wall", "speedup", "vs-cold", "identical"},
	}
	// Warm the kernel cache so the uncached baseline is not charged the
	// one-time SOCS decomposition.
	window := o.CorePx + 2*o.HaloPx
	warmCfg := optics.Default()
	warmCfg.TileNM = float64(window) * float64(l.TileNM) / float64(r.Opt.GridN)
	if _, err := litho.New(warmCfg, window); err != nil {
		return nil, err
	}

	run := func(c *wcache.Cache) (*flow.Result, time.Duration, error) {
		fCfg := flow.Config{
			GridN:       r.Opt.GridN,
			CorePx:      o.CorePx,
			HaloPx:      o.HaloPx,
			Optics:      optics.Default(),
			KOpt:        r.Opt.KOpt,
			Workers:     1,
			TileWorkers: 1,
			Optimize:    opt,
			Cache:       c,
		}
		start := time.Now()
		res, err := flow.Run(l, fCfg)
		return res, time.Since(start), err
	}

	type variant struct {
		name string
		mk   func() (*wcache.Cache, error)
		warm bool // reuse the previous variant's cache state
	}
	memCache, err := wcache.New(wcache.Config{})
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{name: "uncached"},
		{name: "mem cold", mk: func() (*wcache.Cache, error) { return memCache, nil }},
		{name: "mem warm", mk: func() (*wcache.Cache, error) { return memCache, nil }, warm: true},
	}
	if o.DiskDir != "" {
		variants = append(variants,
			variant{name: "disk cold", mk: func() (*wcache.Cache, error) {
				return wcache.New(wcache.Config{Dir: o.DiskDir})
			}},
			// A fresh cache over the same directory: nothing in memory,
			// every window served from the persistent tier.
			variant{name: "disk warm", mk: func() (*wcache.Cache, error) {
				return wcache.New(wcache.Config{Dir: o.DiskDir})
			}, warm: true},
		)
	}

	var base *flow.Result
	var baseWall, coldWall time.Duration
	for _, v := range variants {
		var c *wcache.Cache
		if v.mk != nil {
			var err error
			if c, err = v.mk(); err != nil {
				return nil, err
			}
		}
		res, wall, err := run(c)
		if err != nil {
			return nil, err
		}
		identical := "baseline"
		if base == nil {
			base, baseWall = res, wall
		} else {
			identical = "yes"
			if !sameShots(base.Shots, res.Shots) {
				identical = "NO"
			}
		}
		if !v.warm {
			coldWall = wall
		}
		vsCold := "-"
		if v.warm {
			vsCold = fmt.Sprintf("%.2fx", float64(coldWall)/float64(wall))
		}
		var diskHits int64
		if c != nil {
			diskHits = c.Stats().DiskHits
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%d", res.Tiles),
			fmt.Sprintf("%d", res.Tiles-res.CacheHits), // optimized in full, not served

			fmt.Sprintf("%d", res.CacheHits),
			fmt.Sprintf("%d", diskHits),
			wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(baseWall)/float64(wall)),
			vsCold,
			identical,
		})
	}
	return t, nil
}
