package bench

import (
	"fmt"

	"cfaopc/internal/core"
	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/metrics"
)

// The ablation benches probe the design choices DESIGN.md calls out beyond
// the paper's own Table 3 / Figure 7 studies: the straight-through
// estimator, the coverage-repair extension to Algorithm 1, the circular
// window steepness α, and the kernel truncation used inside optimization.

// runCircleOptVariant executes CircleOpt with a config mutator on every
// selected case and returns the averaged report.
func (r *Runner) runCircleOptVariant(mutate func(*core.Config)) metrics.Report {
	acc := &avg{}
	for ci := range r.Suite {
		cfg := core.DefaultConfig(r.Sim.DX)
		cfg.Iterations = r.Opt.CircleOptIters
		cfg.Gamma = r.Opt.Gamma / r.Sim.DX
		mutate(&cfg)
		e := &core.CircleOpt{
			Cfg:            cfg,
			InitIterations: r.Opt.InitIters,
			RuleCfg:        r.ruleConfig(r.Opt.SampleDistNM),
		}
		res := e.Optimize(r.Sim, r.Targets[ci])
		acc.add(r.EvaluateMask(ci, res.Mask, len(res.Shots)))
	}
	n := float64(acc.n)
	return metrics.Report{
		L2:    acc.l2 / n,
		PVB:   acc.pvb / n,
		EPE:   int(acc.epe/n + 0.5),
		Shots: int(acc.shots/n + 0.5),
	}
}

func reportRow(name string, rep metrics.Report) []string {
	return []string{name, f1(rep.L2), f1(rep.PVB), fmt.Sprintf("%d", rep.EPE), fmt.Sprintf("%d", rep.Shots)}
}

// AblationSTE compares CircleOpt optimizing through the straight-through
// estimator against optimizing the continuous relaxation and quantizing
// only at the end. Without STE the optimizer never sees the integer grid
// it must land on, so the final rounding step degrades the mask it tuned.
func (r *Runner) AblationSTE() *Table {
	t := &Table{
		Title:  "Ablation: straight-through estimator in CircleOpt",
		Header: []string{"Variant", "L2", "PVB", "EPE", "#Shot"},
	}
	with := r.runCircleOptVariant(func(c *core.Config) {})
	without := r.runCircleOptVariant(func(c *core.Config) { c.DisableSTE = true })
	t.Rows = append(t.Rows,
		reportRow("CircleOpt (STE)", with),
		reportRow("CircleOpt (continuous, round at end)", without))
	return t
}

// AblationAlpha sweeps the circular window steepness α. Small α blurs the
// circle boundary (gradients reach far but the rendered mask is soft);
// large α approaches a hard disk whose boundary band is too thin to pass
// useful gradients.
func (r *Runner) AblationAlpha(alphas []float64) *Table {
	t := &Table{
		Title:  "Ablation: circular window steepness α",
		Header: []string{"alpha", "L2", "PVB", "EPE", "#Shot"},
	}
	for _, a := range alphas {
		alpha := a
		rep := r.runCircleOptVariant(func(c *core.Config) { c.Alpha = alpha })
		t.Rows = append(t.Rows, reportRow(fmt.Sprintf("%g", alpha), rep))
	}
	return t
}

// AblationCoverageRepair measures the coverage-repair extension to
// Algorithm 1 (DESIGN.md §4): with thinning-collapsed skeletons, wide
// regions are under-covered unless repaired.
func (r *Runner) AblationCoverageRepair() *Table {
	t := &Table{
		Title:  "Ablation: CircleRule coverage repair (on MultiILT masks)",
		Header: []string{"Variant", "L2", "PVB", "EPE", "#Shot"},
	}
	run := func(disable bool) metrics.Report {
		acc := &avg{}
		for ci := range r.Suite {
			mask := r.PixelMask("MultiILT", ci)
			cfg := r.ruleConfig(r.Opt.SampleDistNM)
			cfg.DisableRepair = disable
			shots := fracture.CircleRule(mask, cfg)
			rec := geom.RasterizeCircles(r.Sim.N, r.Sim.N, shots)
			acc.add(r.EvaluateMask(ci, rec, len(shots)))
		}
		n := float64(acc.n)
		return metrics.Report{L2: acc.l2 / n, PVB: acc.pvb / n,
			EPE: int(acc.epe/n + 0.5), Shots: int(acc.shots/n + 0.5)}
	}
	t.Rows = append(t.Rows,
		reportRow("CircleRule (with repair)", run(false)),
		reportRow("CircleRule (skeleton only)", run(true)))
	return t
}

// AblationKernels sweeps the number of SOCS kernels used inside the
// optimization loop (evaluation always uses all of them): the speed /
// gradient-fidelity trade-off every ILT implementation makes.
func (r *Runner) AblationKernels(ks []int) *Table {
	t := &Table{
		Title:  "Ablation: SOCS kernels used during optimization",
		Header: []string{"K_opt", "L2", "PVB", "EPE", "#Shot"},
	}
	orig := r.Sim.KOpt
	defer func() { r.Sim.KOpt = orig }()
	for _, k := range ks {
		r.Sim.KOpt = k
		rep := r.runCircleOptVariant(func(c *core.Config) {})
		t.Rows = append(t.Rows, reportRow(fmt.Sprintf("%d", k), rep))
	}
	return t
}
