package bench

import "testing"

// The fault exhibit must show the degraded tiles surviving and the
// interrupted-then-resumed run reproducing the faulted reference byte
// for byte.
func TestFaultTable(t *testing.T) {
	r, err := NewRunner(Options{GridN: 128, KOpt: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := FaultOptions{
		CorePx:    64,
		HaloPx:    16,
		Iters:     4,
		InitIters: 3,
		Seed:      7,
		Features:  4,
		Retries:   1,
	}
	tab, err := r.FaultTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tab.Header))
		}
	}
	// Row 0: faulted reference — one retried tile, one fallback tile.
	if tab.Rows[0][2] != "1" || tab.Rows[0][3] != "1" {
		t.Fatalf("faulted reference row: %v", tab.Rows[0])
	}
	// Row 1: resumed run must replay tiles and match the reference.
	if tab.Rows[1][5] == "0" {
		t.Fatalf("resumed run replayed no tiles: %v", tab.Rows[1])
	}
	if tab.Rows[1][8] != "yes" {
		t.Fatalf("resumed run not identical to faulted reference: %v", tab.Rows[1])
	}
	// Row 2: clean run — no faults, not expected to match the degraded one.
	if tab.Rows[2][2] != "0" || tab.Rows[2][3] != "0" || tab.Rows[2][4] != "0" {
		t.Fatalf("clean row reports faults: %v", tab.Rows[2])
	}
}
