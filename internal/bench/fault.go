package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cfaopc/internal/core"
	"cfaopc/internal/flow"
	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// FaultOptions configures the fault-tolerance exhibit.
type FaultOptions struct {
	CorePx    int   // core px owned per window
	HaloPx    int   // halo context px around each core
	Iters     int   // CircleOpt stage-2 iterations per window
	InitIters int   // CircleOpt stage-1 MOSAIC iterations per window
	Seed      int64 // random full-chip layout seed
	Features  int   // bars in the random layout
	Retries   int   // extra attempts before degrading
}

// DefaultFaultOptions mirrors DefaultFlowOptions' 2×2-core chip.
func DefaultFaultOptions(gridN int) FaultOptions {
	return FaultOptions{
		CorePx:    gridN / 2,
		HaloPx:    gridN / 16,
		Iters:     20,
		InitIters: 8,
		Seed:      7,
		Features:  8,
		Retries:   1,
	}
}

// FaultTable makes the fault envelope observable: the same full-chip run
// executed clean, under deterministic injected faults (a panicking tile
// that recovers on retry, a NaN tile that degrades to rule-based
// fracturing), and interrupted-then-resumed from a checkpoint journal.
// The "identical" column compares each run's stitched shot list against
// the faulted reference — the resumed run must match it byte for byte.
func (r *Runner) FaultTable(o FaultOptions) (*Table, error) {
	l := layout.GenerateRandom(o.Seed, layout.RandomConfig{Features: o.Features})
	opt := func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		cfg := core.DefaultConfig(sim.DX)
		cfg.Iterations = o.Iters
		res := (&core.CircleOpt{Cfg: cfg, InitIterations: o.InitIters}).Optimize(sim, target)
		return res.Mask, res.Shots
	}
	rule := func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		shots := fracture.CircleRule(target, fracture.DefaultCircleRuleConfig(sim.DX))
		return geom.RasterizeCircles(target.W, target.H, shots), shots
	}
	plan := flow.FaultPlan{
		0: {{Panic: true}},            // recovers on retry
		3: {{NaN: true}, {NaN: true}}, // exhausts retries, degrades to the rule engine
	}
	mkCfg := func(faulted bool) flow.Config {
		cfg := flow.Config{
			GridN:       r.Opt.GridN,
			CorePx:      o.CorePx,
			HaloPx:      o.HaloPx,
			Optics:      optics.Default(),
			KOpt:        r.Opt.KOpt,
			Workers:     1,
			TileWorkers: 1, // serial keeps the interruption point deterministic
			TileRetries: o.Retries,
			Fallback:    rule,
			Optimize:    opt,
		}
		if faulted {
			cfg.Optimize = flow.InjectFaults(opt, plan)
		}
		return cfg
	}

	t := &Table{
		Title:  fmt.Sprintf("Fault tolerance: %s, grid %d, core %d, halo %d, retries %d", l.Name, r.Opt.GridN, o.CorePx, o.HaloPx, o.Retries),
		Header: []string{"scenario", "tiles", "retried", "fallback", "empty", "resumed", "shots", "wall", "identical"},
	}
	var ref *flow.Result
	row := func(name string, res *flow.Result, wall time.Duration) {
		identical := "reference"
		if ref == nil {
			ref = res
		} else if sameShots(ref.Shots, res.Shots) {
			identical = "yes"
		} else {
			identical = "NO"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", res.Tiles),
			fmt.Sprintf("%d", res.Retried),
			fmt.Sprintf("%d", res.Fallbacks),
			fmt.Sprintf("%d", res.Empty),
			fmt.Sprintf("%d", res.Resumed),
			fmt.Sprintf("%d", len(res.Shots)),
			wall.Round(time.Millisecond).String(),
			identical,
		})
	}

	// Faulted reference: retries and degradation, no interruption.
	start := time.Now()
	res, err := flow.Run(l, mkCfg(true))
	if err != nil {
		return nil, err
	}
	row("faults", res, time.Since(start))

	// Interrupted + resumed: cancel as the last tile starts, then rerun
	// against the journal.
	dir, err := os.MkdirTemp("", "cfaopc-fault")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "run.ckpt")
	lastTile := res.Tiles - 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := mkCfg(true)
	cfg.CheckpointPath = ckpt
	faultedOpt := cfg.Optimize
	cfg.Optimize = func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		if info, ok := flow.TileInfoFrom(sim.Ctx); ok && info.Index == lastTile {
			cancel()
			<-sim.Ctx.Done()
			return grid.NewReal(target.W, target.H), nil
		}
		return faultedOpt(sim, target)
	}
	start = time.Now()
	if _, err := flow.RunContext(ctx, l, cfg); !errors.Is(err, context.Canceled) {
		return nil, fmt.Errorf("bench: interrupted run: %v", err)
	}
	cfg = mkCfg(true)
	cfg.CheckpointPath = ckpt
	res, err = flow.Run(l, cfg)
	if err != nil {
		return nil, err
	}
	row("faults, interrupted+resumed", res, time.Since(start))

	// Clean run for scale: what the faults cost in shots and wall time.
	start = time.Now()
	res, err = flow.Run(l, mkCfg(false))
	if err != nil {
		return nil, err
	}
	row("clean", res, time.Since(start))
	return t, nil
}
