package bench

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_suite.json from the current pipeline")

// goldenCase pins one suite case's metric quadruple.
type goldenCase struct {
	Name  string  `json:"name"`
	L2    float64 `json:"l2_nm2"`
	PVB   float64 `json:"pvb_nm2"`
	EPE   int     `json:"epe"`
	Shots int     `json:"shots"`
}

const goldenPath = "testdata/golden_suite.json"

// runGoldenSuite fractures each suite target with CircleRule (the paper's
// Algorithm 1, no iterative optimization — fully deterministic) and scores
// the reconstructed circular mask at the three process corners.
func runGoldenSuite(t *testing.T) []goldenCase {
	t.Helper()
	r, err := NewRunner(Options{GridN: 128, KOpt: 3, SampleDistNM: 32})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]goldenCase, 0, len(r.Suite))
	for ci, l := range r.Suite {
		shots := fracture.CircleRule(r.Targets[ci], r.ruleConfig(r.Opt.SampleDistNM))
		rec := geom.RasterizeCircles(r.Sim.N, r.Sim.N, shots)
		rep := r.EvaluateMask(ci, rec, len(shots))
		out = append(out, goldenCase{Name: l.Name, L2: rep.L2, PVB: rep.PVB, EPE: rep.EPE, Shots: rep.Shots})
	}
	return out
}

// TestGoldenSuiteCircleRule is the end-to-end regression pin: rasterize →
// CircleRule fracture → circle reconstruction → three-corner simulation →
// L2/PVB/EPE/shot metrics over the full ten-case suite, compared against
// testdata/golden_suite.json. Any change to the rasterizer, the fracturer,
// the optics stack or the metrics shows up here as a diff against the
// recorded numbers. Regenerate deliberately with:
//
//	go test ./internal/bench -run TestGoldenSuiteCircleRule -update
//
// Skipped under -short (it simulates ten chips), so the race CI job stays
// fast; the coverage job runs it in full.
func TestGoldenSuiteCircleRule(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite simulates ten chips; skipped in -short")
	}
	got := runGoldenSuite(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d cases, golden file has %d", len(got), len(want))
	}
	// L2/PVB are pixel counts × dx² — exact in float64 — but a relative
	// tolerance keeps the pin robust to benign float reassociation if the
	// simulation's reduction order ever changes platform to platform.
	const relTol = 1e-6
	closeEnough := func(a, b float64) bool {
		return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
	}
	for i, g := range got {
		w := want[i]
		if g.Name != w.Name {
			t.Errorf("case %d name %q, golden %q", i, g.Name, w.Name)
			continue
		}
		if !closeEnough(g.L2, w.L2) || !closeEnough(g.PVB, w.PVB) || g.EPE != w.EPE || g.Shots != w.Shots {
			t.Errorf("case %q: L2 %.1f PVB %.1f EPE %d shots %d, golden L2 %.1f PVB %.1f EPE %d shots %d",
				g.Name, g.L2, g.PVB, g.EPE, g.Shots, w.L2, w.PVB, w.EPE, w.Shots)
		}
	}
}
