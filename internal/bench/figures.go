package bench

import (
	"fmt"
	"strings"
)

// Series is one line of a figure: label plus (x, y) points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a plotted experiment rendered as text series.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure's series as aligned columns.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (x: %s, y: %s)\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-24s", s.Label)
		for i := range s.X {
			fmt.Fprintf(&b, "  (%g, %.1f)", s.X[i], s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure7SampleDistances are the paper's swept m values (nm).
var Figure7SampleDistances = []float64{28, 32, 36}

// Figure7 reproduces the sample-distance ablation: average #Shot (a),
// L2+PVB (b) and EPE (c) for CircleRule (on MultiILT masks, the strongest
// pixel baseline, as in the paper) and CircleOpt, plus the constant
// MultiILT VSB shot-count line of panel (a).
func (r *Runner) Figure7() (shotFig, qualityFig, epeFig *Figure) {
	shotFig = &Figure{Title: "Figure 7a: shot count vs sample distance", XLabel: "m (nm)", YLabel: "#Shot"}
	qualityFig = &Figure{Title: "Figure 7b: L2+PVB vs sample distance", XLabel: "m (nm)", YLabel: "L2+PVB (nm2)"}
	epeFig = &Figure{Title: "Figure 7c: EPE vs sample distance", XLabel: "m (nm)", YLabel: "EPE"}

	ruleShots := Series{Label: "CircleRule"}
	optShots := Series{Label: "CircleOpt"}
	multiShots := Series{Label: "MultiILT (rect)"}
	ruleQ := Series{Label: "CircleRule"}
	optQ := Series{Label: "CircleOpt"}
	ruleE := Series{Label: "CircleRule"}
	optE := Series{Label: "CircleOpt"}

	// MultiILT's rectangle shot count is independent of m.
	multiAvg := 0.0
	for ci := range r.Suite {
		multiAvg += float64(r.RunRect("MultiILT", ci).Shots)
	}
	multiAvg /= float64(len(r.Suite))

	for _, m := range Figure7SampleDistances {
		rule, opt := &avg{}, &avg{}
		for ci := range r.Suite {
			rep, _ := r.RunCircleRule("MultiILT", ci, m)
			rule.add(rep)
			repO, _ := r.RunCircleOpt(ci, m, r.Opt.Gamma)
			opt.add(repO)
		}
		n := float64(rule.n)
		ruleShots.X = append(ruleShots.X, m)
		ruleShots.Y = append(ruleShots.Y, rule.shots/n)
		optShots.X = append(optShots.X, m)
		optShots.Y = append(optShots.Y, opt.shots/n)
		multiShots.X = append(multiShots.X, m)
		multiShots.Y = append(multiShots.Y, multiAvg)
		ruleQ.X = append(ruleQ.X, m)
		ruleQ.Y = append(ruleQ.Y, (rule.l2+rule.pvb)/n)
		optQ.X = append(optQ.X, m)
		optQ.Y = append(optQ.Y, (opt.l2+opt.pvb)/n)
		ruleE.X = append(ruleE.X, m)
		ruleE.Y = append(ruleE.Y, rule.epe/n)
		optE.X = append(optE.X, m)
		optE.Y = append(optE.Y, opt.epe/n)
	}
	shotFig.Series = []Series{ruleShots, optShots, multiShots}
	qualityFig.Series = []Series{ruleQ, optQ}
	epeFig.Series = []Series{ruleE, optE}
	return shotFig, qualityFig, epeFig
}

// Figure1 reproduces the fracturing comparison of Figure 1: rectangle vs
// circular shot counts for each baseline's curvilinear mask, averaged over
// the selected cases.
func (r *Runner) Figure1() *Table {
	t := &Table{
		Title:  "Figure 1: rectangular vs circular fracturing (average shots)",
		Header: []string{"Mask source", "Rect shots", "Circle shots", "Reduction"},
	}
	for _, name := range Baselines {
		rectN, circN := 0.0, 0.0
		for ci := range r.Suite {
			rectN += float64(r.RunRect(name, ci).Shots)
			rep, _ := r.RunCircleRule(name, ci, r.Opt.SampleDistNM)
			circN += float64(rep.Shots)
		}
		n := float64(len(r.Suite))
		red := "n/a"
		if circN > 0 {
			red = fmt.Sprintf("%.1fx", rectN/circN)
		}
		t.Rows = append(t.Rows, []string{name, f1(rectN / n), f1(circN / n), red})
	}
	return t
}
