package bench

import (
	"fmt"

	"cfaopc/internal/core"
	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
)

// The extension experiments exercise the features this library adds beyond
// the paper: dose-modulated circular writing, greedy set-cover fracturing,
// and union-preserving shot compaction.

// ExtensionDose compares CircleOpt's binary-activation shots against
// DoseOpt's dose-modulated shots on the selected cases.
func (r *Runner) ExtensionDose() *Table {
	t := &Table{
		Title:  "Extension: dose-modulated circular writing (DoseOpt) vs CircleOpt",
		Header: []string{"Method", "L2", "PVB", "EPE", "#Shot"},
	}
	co, do := &avg{}, &avg{}
	for ci := range r.Suite {
		rep, _ := r.RunCircleOpt(ci, r.Opt.SampleDistNM, r.Opt.Gamma)
		co.add(rep)

		cfg := core.DefaultConfig(r.Sim.DX)
		cfg.Iterations = r.Opt.CircleOptIters
		cfg.Gamma = r.Opt.Gamma / r.Sim.DX
		e := &core.DoseOpt{
			Cfg:            cfg,
			InitIterations: r.Opt.InitIters,
			RuleCfg:        r.ruleConfig(r.Opt.SampleDistNM),
		}
		res := e.Optimize(r.Sim, r.Targets[ci])
		do.add(r.EvaluateMask(ci, res.Mask, len(res.Shots)))
	}
	t.Rows = append(t.Rows,
		append([]string{"CircleOpt"}, co.row()...),
		append([]string{"DoseOpt"}, do.row()...))
	return t
}

// ExtensionGreedy compares Algorithm 1 against greedy set-cover
// fracturing on the strongest baseline's masks.
func (r *Runner) ExtensionGreedy() *Table {
	t := &Table{
		Title:  "Extension: greedy set-cover fracturing vs CircleRule (MultiILT masks)",
		Header: []string{"Fracturer", "L2", "PVB", "EPE", "#Shot"},
	}
	rule, greedy := &avg{}, &avg{}
	for ci := range r.Suite {
		mask := r.PixelMask("MultiILT", ci)
		rep, _ := r.RunCircleRule("MultiILT", ci, r.Opt.SampleDistNM)
		rule.add(rep)

		rc := r.ruleConfig(r.Opt.SampleDistNM)
		shots := fracture.GreedyCircles(mask, fracture.GreedyCircleConfig{
			RMin: rc.RMin, RMax: rc.RMax, CoverThreshold: rc.CoverThreshold,
		})
		rec := geom.RasterizeCircles(r.Sim.N, r.Sim.N, shots)
		greedy.add(r.EvaluateMask(ci, rec, len(shots)))
	}
	t.Rows = append(t.Rows,
		append([]string{"CircleRule"}, rule.row()...),
		append([]string{"GreedyCircles"}, greedy.row()...))
	return t
}

// ExtensionCompaction measures union-preserving shot compaction on every
// method's shot list: removed shots are free write time since the printed
// mask is bit-identical.
func (r *Runner) ExtensionCompaction() *Table {
	t := &Table{
		Title:  "Extension: union-preserving shot compaction",
		Header: []string{"Shot source", "#Shot", "compacted", "saved"},
	}
	addRow := func(name string, totalBefore, totalAfter int) {
		n := float64(len(r.Suite))
		saved := "0%"
		if totalBefore > 0 {
			saved = fmt.Sprintf("%.1f%%", 100*float64(totalBefore-totalAfter)/float64(totalBefore))
		}
		t.Rows = append(t.Rows, []string{name,
			f1(float64(totalBefore) / n), f1(float64(totalAfter) / n), saved})
	}
	for _, name := range Baselines {
		before, after := 0, 0
		for ci := range r.Suite {
			_, shots := r.RunCircleRule(name, ci, r.Opt.SampleDistNM)
			before += len(shots)
			after += len(fracture.CompactShots(r.Sim.N, r.Sim.N, shots))
		}
		addRow(name+"+CircleRule", before, after)
	}
	before, after := 0, 0
	for ci := range r.Suite {
		_, res := r.RunCircleOpt(ci, r.Opt.SampleDistNM, r.Opt.Gamma)
		before += len(res.Shots)
		after += len(fracture.CompactShots(r.Sim.N, r.Sim.N, res.Shots))
	}
	addRow("CircleOpt", before, after)
	return t
}
