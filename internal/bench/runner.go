// Package bench is the experiment harness: it runs every OPC method over
// the benchmark suite and regenerates each table and figure of the paper's
// evaluation section (Tables 1–3, Figures 1, 6 and 7) as formatted text
// and PNG renders.
package bench

import (
	"fmt"

	"cfaopc/internal/core"
	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/ilt"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
)

// Baseline names (the paper's column order).
var Baselines = []string{"DevelSet", "NeuralILT", "MultiILT"}

// Options configures a harness run.
type Options struct {
	GridN          int     // simulation grid (pixels per side of the 2048 nm tile)
	Cases          []int   // 1-based case subset; nil = all ten
	BaselineIters  int     // pixel-engine iterations
	CircleOptIters int     // CircleOpt stage-2 iterations
	InitIters      int     // CircleOpt stage-1 (MOSAIC) iterations
	KOpt           int     // kernels used during optimization (all at eval)
	SampleDistNM   float64 // CircleRule/CircleOpt sample distance m
	Gamma          float64 // CircleOpt sparsity weight
	RectBlockNM    float64 // Manhattanization grid for VSB shot counting
	Workers        int     // litho parallelism (0/1 serial, <0 = all cores)
}

// DefaultOptions returns the settings used for the recorded experiments:
// a 256² grid (8 nm/px) over all ten cases with the paper's
// hyper-parameters.
func DefaultOptions() Options {
	return Options{
		GridN:          256,
		BaselineIters:  40,
		CircleOptIters: 60,
		InitIters:      24,
		KOpt:           5,
		SampleDistNM:   32,
		Gamma:          3,
		RectBlockNM:    0, // finest: Manhattanize at 1 px
	}
}

// Runner executes methods over the suite, memoizing the expensive pixel
// masks so Tables 1 and 2 and Figure 7 share work.
type Runner struct {
	Opt     Options
	Sim     *litho.Simulator
	Suite   []*layout.Layout
	Targets []*grid.Real

	pixelMasks     map[string]*grid.Real
	circleOptCache map[string]*core.Result
}

// NewRunner builds the simulator and rasterizes the benchmark suite.
func NewRunner(o Options) (*Runner, error) {
	if o.GridN <= 0 {
		return nil, fmt.Errorf("bench: invalid grid size %d", o.GridN)
	}
	cfg := optics.Default()
	sim, err := litho.New(cfg, o.GridN)
	if err != nil {
		return nil, err
	}
	sim.KOpt = o.KOpt
	sim.Workers = o.Workers
	all := layout.GenerateSuite()
	var suite []*layout.Layout
	if len(o.Cases) == 0 {
		suite = all
	} else {
		for _, id := range o.Cases {
			if id < 1 || id > len(all) {
				return nil, fmt.Errorf("bench: case %d out of range", id)
			}
			suite = append(suite, all[id-1])
		}
	}
	r := &Runner{
		Opt:            o,
		Sim:            sim,
		Suite:          suite,
		pixelMasks:     map[string]*grid.Real{},
		circleOptCache: map[string]*core.Result{},
	}
	for _, l := range suite {
		r.Targets = append(r.Targets, l.Rasterize(o.GridN))
	}
	return r, nil
}

// engine instantiates a named baseline.
func (r *Runner) engine(name string) ilt.Engine {
	cfg := ilt.DefaultConfig()
	cfg.Iterations = r.Opt.BaselineIters
	// Mask-rule cleanup: drop features smaller than ~24×24 nm regardless
	// of grid resolution (speckles that would never survive MRC).
	cfg.MinFeaturePx = maxInt(2, int(576/(r.Sim.DX*r.Sim.DX)))
	switch name {
	case "DevelSet":
		return &ilt.LevelSet{Cfg: cfg}
	case "NeuralILT":
		return &ilt.CycleILT{Cfg: cfg}
	case "MultiILT":
		cfg.BackgroundBias = -0.5 // SRAF-friendly
		return &ilt.MultiLevel{Cfg: cfg, CoarseIterations: r.Opt.BaselineIters / 2}
	default:
		panic(fmt.Sprintf("bench: unknown engine %q", name))
	}
}

// PixelMask returns (computing once) the binary mask of a baseline engine
// on case index ci (0-based within the selected subset).
func (r *Runner) PixelMask(name string, ci int) *grid.Real {
	key := fmt.Sprintf("%s/%d", name, ci)
	if m, ok := r.pixelMasks[key]; ok {
		return m
	}
	m := r.engine(name).Optimize(r.Sim, r.Targets[ci])
	r.pixelMasks[key] = m
	return m
}

// ruleConfig returns the CircleRule settings for sample distance mNM.
func (r *Runner) ruleConfig(mNM float64) fracture.CircleRuleConfig {
	cfg := fracture.DefaultCircleRuleConfig(r.Sim.DX)
	cfg.SampleDist = maxInt(1, int(mNM/r.Sim.DX+0.5))
	return cfg
}

// EvaluateMask scores a binary mask against case ci at the three process
// corners.
func (r *Runner) EvaluateMask(ci int, mask *grid.Real, shots int) metrics.Report {
	res := r.Sim.Simulate(mask)
	return metrics.Evaluate(r.Suite[ci], res.ZNom, res.ZMax, res.ZMin, shots)
}

// RunRect evaluates a baseline's raw pixel mask with VSB rectangle shots
// (the unprimed rows of Table 1).
func (r *Runner) RunRect(name string, ci int) metrics.Report {
	mask := r.PixelMask(name, ci)
	block := 1 // RectBlockNM ≤ 0 means the finest grid the mask has
	if r.Opt.RectBlockNM > 0 {
		block = maxInt(1, int(r.Opt.RectBlockNM/r.Sim.DX+0.5))
	}
	rects := fracture.RectShots(mask, block)
	return r.EvaluateMask(ci, mask, len(rects))
}

// RunCircleRule fractures a baseline's mask with Algorithm 1 at sample
// distance mNM and evaluates the reconstructed circular mask.
func (r *Runner) RunCircleRule(name string, ci int, mNM float64) (metrics.Report, []geom.Circle) {
	mask := r.PixelMask(name, ci)
	shots := fracture.CircleRule(mask, r.ruleConfig(mNM))
	rec := geom.RasterizeCircles(r.Sim.N, r.Sim.N, shots)
	return r.EvaluateMask(ci, rec, len(shots)), shots
}

// RunCircleOpt executes the optimization-based method on case ci with
// sample distance mNM and sparsity weight gamma (in the paper's 1 nm/px
// scale; rescaled by 1/dx internally), memoized.
func (r *Runner) RunCircleOpt(ci int, mNM, gamma float64) (metrics.Report, *core.Result) {
	key := fmt.Sprintf("%d/%g/%g", ci, mNM, gamma)
	if res, ok := r.circleOptCache[key]; ok {
		return r.EvaluateMask(ci, res.Mask, len(res.Shots)), res
	}
	cfg := core.DefaultConfig(r.Sim.DX)
	cfg.Iterations = r.Opt.CircleOptIters
	cfg.Gamma = gamma / r.Sim.DX
	e := &core.CircleOpt{
		Cfg:            cfg,
		InitIterations: r.Opt.InitIters,
		RuleCfg:        r.ruleConfig(mNM),
	}
	res := e.Optimize(r.Sim, r.Targets[ci])
	r.circleOptCache[key] = res
	return r.EvaluateMask(ci, res.Mask, len(res.Shots)), res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
