package bench

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"

	"cfaopc/internal/grid"
)

// GridPNG writes a grid as an 8-bit grayscale PNG, mapping [0, max] to
// [black, white]. Values above max saturate.
func GridPNG(g *grid.Real, path string) error {
	max := g.MaxAbs()
	if max == 0 {
		max = 1
	}
	img := image.NewGray(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := g.At(x, y) / max
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			img.SetGray(x, y, color.Gray{Y: uint8(v * 255)})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return png.Encode(f, img)
}

// RenderCase writes the Figure-6 style triptych (target, optimized mask,
// printed image) for case ci of a CircleOpt run into dir, returning the
// written file paths.
func (r *Runner) RenderCase(ci int, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	_, res := r.RunCircleOpt(ci, r.Opt.SampleDistNM, r.Opt.Gamma)
	sim := r.Sim.Simulate(res.Mask)
	name := r.Suite[ci].Name
	files := []struct {
		g    *grid.Real
		path string
	}{
		{r.Targets[ci], filepath.Join(dir, fmt.Sprintf("%s_target.png", name))},
		{res.Mask, filepath.Join(dir, fmt.Sprintf("%s_mask.png", name))},
		{sim.ZNom, filepath.Join(dir, fmt.Sprintf("%s_printed.png", name))},
	}
	var out []string
	for _, f := range files {
		if err := GridPNG(f.g, f.path); err != nil {
			return nil, err
		}
		out = append(out, f.path)
	}
	return out, nil
}
