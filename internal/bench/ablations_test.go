package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationTables(t *testing.T) {
	r := lightRunner(t)

	ste := r.AblationSTE()
	if len(ste.Rows) != 2 {
		t.Fatalf("STE ablation rows = %d", len(ste.Rows))
	}
	if !strings.Contains(ste.Format(), "continuous") {
		t.Error("STE ablation missing variant label")
	}

	repair := r.AblationCoverageRepair()
	if len(repair.Rows) != 2 {
		t.Fatalf("repair ablation rows = %d", len(repair.Rows))
	}
	// Skeleton-only shot count must not exceed with-repair.
	withShots, _ := strconv.Atoi(repair.Rows[0][4])
	skelShots, _ := strconv.Atoi(repair.Rows[1][4])
	if skelShots > withShots {
		t.Fatalf("skeleton-only produced more shots (%d) than with repair (%d)", skelShots, withShots)
	}

	alpha := r.AblationAlpha([]float64{4, 8})
	if len(alpha.Rows) != 2 {
		t.Fatalf("alpha ablation rows = %d", len(alpha.Rows))
	}

	kern := r.AblationKernels([]int{2, 4})
	if len(kern.Rows) != 2 {
		t.Fatalf("kernel ablation rows = %d", len(kern.Rows))
	}
	// KOpt must be restored after the sweep.
	if r.Sim.KOpt != r.Opt.KOpt {
		t.Fatalf("KOpt not restored: %d", r.Sim.KOpt)
	}
}
