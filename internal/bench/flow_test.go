package bench

import (
	"strings"
	"testing"
)

// The flow exhibit must sweep every worker count plus a dense-mask
// contrast row, keep the stitched shot list identical across them, and
// report a non-empty tile profile with the peak-memory column filled.
func TestFlowTable(t *testing.T) {
	r, err := NewRunner(Options{GridN: 128, KOpt: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := FlowOptions{
		CorePx:      64,
		HaloPx:      16,
		Iters:       4,
		InitIters:   3,
		Seed:        7,
		Features:    4,
		TileWorkers: []int{1, 4},
	}
	tab, err := r.FlowTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // two streamed sweeps + one dense-mask contrast
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	const (
		colMask      = 1
		colTiles     = 2
		colPeak      = 7
		colIdentical = 8
	)
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tab.Header))
		}
		if row[colTiles] != "4" { // 128 grid / 64 core → 2×2 tiles
			t.Fatalf("row %d tiles = %s, want 4", i, row[colTiles])
		}
		if row[colPeak] == "" || row[colPeak] == "0 B" {
			t.Fatalf("row %d peak-mem column empty: %q", i, row[colPeak])
		}
	}
	if tab.Rows[0][colIdentical] != "baseline" {
		t.Fatalf("first row identical column = %q", tab.Rows[0][colIdentical])
	}
	for _, i := range []int{1, 2} {
		if tab.Rows[i][colIdentical] != "yes" {
			t.Fatalf("row %d not identical to baseline: %q", i, tab.Rows[i][colIdentical])
		}
	}
	if tab.Rows[0][colMask] != "streamed" || tab.Rows[2][colMask] != "dense" {
		t.Fatalf("mask columns = %q, %q", tab.Rows[0][colMask], tab.Rows[2][colMask])
	}
	if !strings.Contains(tab.Format(), "peak-mem") {
		t.Fatal("formatted table missing peak-mem header")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{8 << 10, "8.0 KB"},
		{3 << 20, "3.00 MB"},
		{5 << 30, "5.00 GB"},
	}
	for _, c := range cases {
		if got := fmtBytes(c.in); got != c.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
