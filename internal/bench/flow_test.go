package bench

import (
	"strings"
	"testing"
)

// The flow exhibit must sweep every worker count, keep the stitched shot
// list identical across them, and report a non-empty tile profile.
func TestFlowTable(t *testing.T) {
	r, err := NewRunner(Options{GridN: 128, KOpt: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := FlowOptions{
		CorePx:      64,
		HaloPx:      16,
		Iters:       4,
		InitIters:   3,
		Seed:        7,
		Features:    4,
		TileWorkers: []int{1, 4},
	}
	tab, err := r.FlowTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tab.Header))
		}
		if row[1] != "4" { // 128 grid / 64 core → 2×2 tiles
			t.Fatalf("row %d tiles = %s, want 4", i, row[1])
		}
	}
	if tab.Rows[0][6] != "baseline" {
		t.Fatalf("first row identical column = %q", tab.Rows[0][6])
	}
	if tab.Rows[1][6] != "yes" {
		t.Fatalf("tile-workers=4 run not identical to baseline: %q", tab.Rows[1][6])
	}
	if !strings.Contains(tab.Format(), "tile-workers") {
		t.Fatal("formatted table missing header")
	}
}
