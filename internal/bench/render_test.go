package bench

import (
	"os"
	"path/filepath"
	"testing"

	"cfaopc/internal/grid"
)

func TestGridPNGWritesFile(t *testing.T) {
	g := grid.NewReal(8, 8)
	g.Set(3, 3, 2.0)
	g.Set(4, 4, -1.0)
	path := filepath.Join(t.TempDir(), "x.png")
	if err := GridPNG(g, path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("png missing or empty: %v", err)
	}
}

func TestGridPNGZeroGrid(t *testing.T) {
	// All-zero grids must not divide by zero.
	path := filepath.Join(t.TempDir(), "zero.png")
	if err := GridPNG(grid.NewReal(4, 4), path); err != nil {
		t.Fatal(err)
	}
}

func TestGridPNGBadPath(t *testing.T) {
	g := grid.NewReal(4, 4)
	if err := GridPNG(g, filepath.Join(t.TempDir(), "missing", "x.png")); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxxx", "y"}, {"z", "wwwwwwww"}},
	}
	out := tab.Format()
	lines := splitLines(out)
	if len(lines) < 4 {
		t.Fatalf("format lines: %d", len(lines))
	}
	// All data rows should be at least as wide as the widest cell content.
	for _, l := range lines[2:] {
		if len(l) > 0 && len(l) < len("xxxxxx") {
			t.Fatalf("row %q too narrow", l)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func TestFigureFormat(t *testing.T) {
	f := &Figure{
		Title:  "fig",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{{Label: "s1", X: []float64{1, 2}, Y: []float64{3.5, 4.5}}},
	}
	out := f.Format()
	for _, want := range []string{"fig", "s1", "(1, 3.5)", "(2, 4.5)"} {
		if !contains(out, want) {
			t.Fatalf("figure text missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
