package iox

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// OpKind discriminates recorded filesystem mutations.
type OpKind int

const (
	OpMkdir OpKind = iota
	OpCreate
	OpWrite
	OpTruncate
	OpSync
	OpSyncDir
	OpRename
	OpRemove
)

func (k OpKind) String() string {
	switch k {
	case OpMkdir:
		return "mkdir"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpSync:
		return "sync"
	case OpSyncDir:
		return "syncdir"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one recorded mutation. Paths are relative to the Recorder's
// root, so a prefix can be materialized anywhere.
type Op struct {
	Kind  OpKind
	Path  string
	Path2 string // rename destination
	Off   int64  // write offset
	Data  []byte // write payload (copied)
	Size  int64  // truncate size
}

// Recorder passes every operation through to the inner FS while
// journaling each mutation under root, in the global order it reached
// the filesystem. The op log is the input to Materialize: replaying
// ops[:n] into a scratch directory reconstructs the exact on-disk bytes
// a crash after the n-th mutation would have left behind, which is what
// lets a test re-run recovery at every write boundary of a real run.
//
// Operations outside root are passed through unrecorded (reads,
// unrelated temp files); Materialize therefore only reconstructs the
// persistence tree under root.
type Recorder struct {
	inner FS
	root  string

	mu  sync.Mutex
	ops []Op
}

// NewRecorder records mutations under root (which must exist) on top of
// inner (nil = the real filesystem).
func NewRecorder(inner FS, root string) *Recorder {
	return &Recorder{inner: OrOS(inner), root: filepath.Clean(root)}
}

// Ops snapshots the op log.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops...)
}

// rel maps path into the recorded namespace; ok is false for paths
// outside root.
func (r *Recorder) rel(path string) (string, bool) {
	rel, err := filepath.Rel(r.root, filepath.Clean(path))
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", false
	}
	return rel, true
}

func (r *Recorder) record(op Op) {
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
}

func (r *Recorder) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	inner, err := r.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	rel, ok := r.rel(path)
	if !ok {
		return inner, nil
	}
	if flag&os.O_TRUNC != 0 {
		r.record(Op{Kind: OpCreate, Path: rel})
	} else if flag&os.O_CREATE != 0 {
		// O_CREATE without O_TRUNC only mutates when the file is new;
		// creating an empty file is idempotent either way.
		if st, serr := inner.Stat(); serr == nil && st.Size() == 0 {
			r.record(Op{Kind: OpCreate, Path: rel})
		}
	}
	f := &recordFile{File: inner, rec: r, rel: rel}
	if flag&os.O_APPEND != 0 {
		if st, serr := inner.Stat(); serr == nil {
			f.pos = st.Size()
		}
	}
	return f, nil
}

func (r *Recorder) Open(path string) (File, error) { return r.inner.Open(path) }

func (r *Recorder) Create(path string) (File, error) {
	return r.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (r *Recorder) ReadFile(path string) ([]byte, error) { return r.inner.ReadFile(path) }

func (r *Recorder) WriteFile(path string, data []byte, perm os.FileMode) error {
	if err := r.inner.WriteFile(path, data, perm); err != nil {
		return err
	}
	if rel, ok := r.rel(path); ok {
		r.record(Op{Kind: OpCreate, Path: rel})
		r.record(Op{Kind: OpWrite, Path: rel, Off: 0, Data: append([]byte(nil), data...)})
	}
	return nil
}

func (r *Recorder) Rename(oldpath, newpath string) error {
	if err := r.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	o, ok1 := r.rel(oldpath)
	n, ok2 := r.rel(newpath)
	if ok1 && ok2 {
		r.record(Op{Kind: OpRename, Path: o, Path2: n})
	}
	return nil
}

func (r *Recorder) Remove(path string) error {
	if err := r.inner.Remove(path); err != nil {
		return err
	}
	if rel, ok := r.rel(path); ok {
		r.record(Op{Kind: OpRemove, Path: rel})
	}
	return nil
}

func (r *Recorder) MkdirAll(path string, perm os.FileMode) error {
	if err := r.inner.MkdirAll(path, perm); err != nil {
		return err
	}
	if rel, ok := r.rel(path); ok {
		r.record(Op{Kind: OpMkdir, Path: rel})
	}
	return nil
}

func (r *Recorder) SyncDir(dir string) error {
	if err := r.inner.SyncDir(dir); err != nil {
		return err
	}
	if rel, ok := r.rel(dir); ok {
		r.record(Op{Kind: OpSyncDir, Path: rel})
	}
	return nil
}

// recordFile tracks the write position so each recorded write carries
// its file offset (journals seek once after replay-truncate, then
// append; sequential writers never seek).
type recordFile struct {
	File
	rec *Recorder
	rel string
	pos int64
}

func (f *recordFile) Seek(offset int64, whence int) (int64, error) {
	n, err := f.File.Seek(offset, whence)
	if err == nil {
		f.pos = n
	}
	return n, err
}

func (f *recordFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	f.pos += int64(n)
	return n, err
}

func (f *recordFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	if n > 0 {
		f.rec.record(Op{Kind: OpWrite, Path: f.rel, Off: f.pos, Data: append([]byte(nil), p[:n]...)})
		f.pos += int64(n)
	}
	return n, err
}

func (f *recordFile) Truncate(size int64) error {
	if err := f.File.Truncate(size); err != nil {
		return err
	}
	f.rec.record(Op{Kind: OpTruncate, Path: f.rel, Size: size})
	return nil
}

func (f *recordFile) Sync() error {
	if err := f.File.Sync(); err != nil {
		return err
	}
	f.rec.record(Op{Kind: OpSync, Path: f.rel})
	return nil
}

// Materialize replays ops[:n] into dir, reconstructing the on-disk
// state a crash immediately after the n-th mutation would leave. Sync
// ops replay as no-ops: the model is "everything written so far is on
// disk", the most adversarial prefix a crash can expose given ordered
// writes.
func Materialize(dir string, ops []Op, n int) error {
	return materialize(dir, ops, n, -1)
}

// MaterializeTorn replays ops[:n] but cuts the n-th op — which must be
// a write — to its first keep bytes, reconstructing a crash in the
// middle of that write (the torn-tail case every journal reader must
// tolerate).
func MaterializeTorn(dir string, ops []Op, n int, keep int) error {
	if n < 1 || n > len(ops) || ops[n-1].Kind != OpWrite {
		return fmt.Errorf("iox: op %d is not a write", n)
	}
	return materialize(dir, ops, n, keep)
}

func materialize(dir string, ops []Op, n int, tornKeep int) error {
	if n < 0 || n > len(ops) {
		return fmt.Errorf("iox: prefix %d outside op log of %d", n, len(ops))
	}
	for i := 0; i < n; i++ {
		op := ops[i]
		path := filepath.Join(dir, op.Path)
		switch op.Kind {
		case OpMkdir:
			if err := os.MkdirAll(path, 0o755); err != nil {
				return err
			}
		case OpCreate:
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return err
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		case OpWrite:
			data := op.Data
			if i == n-1 && tornKeep >= 0 {
				if tornKeep > len(data) {
					tornKeep = len(data)
				}
				data = data[:tornKeep]
			}
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return err
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
			if err != nil {
				return err
			}
			if _, err := f.WriteAt(data, op.Off); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		case OpTruncate:
			if err := os.Truncate(path, op.Size); err != nil {
				return err
			}
		case OpSync, OpSyncDir:
			// Already modeled: every prior write is considered durable.
		case OpRename:
			if err := os.Rename(path, filepath.Join(dir, op.Path2)); err != nil {
				return err
			}
		case OpRemove:
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return err
			}
		default:
			return fmt.Errorf("iox: unknown op kind %v", op.Kind)
		}
	}
	return nil
}

// WriteBoundaries returns the op-log indices n for which ops[n-1] is a
// mutation of file bytes (write, truncate, rename, remove) — the
// prefixes worth crash-testing. Pure metadata ops (mkdir, sync) change
// nothing Materialize hasn't already applied.
func WriteBoundaries(ops []Op) []int {
	var out []int
	for i, op := range ops {
		switch op.Kind {
		case OpWrite, OpTruncate, OpRename, OpRemove, OpCreate:
			out = append(out, i+1)
		}
	}
	return out
}
