// Package iox is the storage seam under every persistence layer:
// checkpoint journals, wcache disk entries, quarantine bundles, the
// daemon's jobs.log and per-job event journals, and the streamed mask /
// shot artifact writers all perform their filesystem mutations through
// the FS interface instead of calling the os package directly.
//
// The point is fault realism. Production mask-writer OPC runs for hours
// against disks that fill up, controllers that return EIO, and machines
// that lose power mid-rename — and every durability claim the system
// makes ("byte-identical resume", "any seq a client saw replays
// exactly") is only as good as its behavior at those boundaries. With
// one seam, three implementations cover the whole test space:
//
//   - OSFS: the real filesystem (the zero-cost default everywhere).
//   - FaultFS: deterministic injected faults — ENOSPC after a byte
//     budget, EIO on the K-th fsync, torn short writes, failed renames —
//     so each layer's degradation policy is testable without root or a
//     loopback filesystem.
//   - Recorder: an op log of every mutation, from which Materialize
//     reconstructs the on-disk state at any write boundary — the
//     "crash at every prefix" simulator behind TestCrashConsistency.
//
// AtomicWrite is the shared temp+fsync+rename+parent-fsync helper: a
// rename is only crash-durable once the parent directory's entry is
// synced, a step the wcache and quarantine writers used to skip.
package iox

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the subset of *os.File the persistence layers use. Implement
// it to interpose on writes, syncs, and truncation.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the mutation surface of a filesystem. Read helpers are included
// because fault injectors and recorders must see the same namespace
// they mutate (a renamed-away file must stop resolving).
type FS interface {
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Open(path string) (File, error)
	Create(path string) (File, error)
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(path string) error
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making previously renamed or
	// created entries crash-durable. Filesystems that cannot sync
	// directories report success; the data was already durable or never
	// can be, and neither is the caller's fault.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}
func (OSFS) Open(path string) (File, error)            { return os.Open(path) }
func (OSFS) Create(path string) (File, error)          { return os.Create(path) }
func (OSFS) ReadFile(path string) ([]byte, error)      { return os.ReadFile(path) }
func (OSFS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(path string) error                  { return os.Remove(path) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.EISDIR)) {
		return nil
	}
	return err
}

// OrOS returns fsys, or the real filesystem when fsys is nil — the
// idiom every Config.FS consumer uses to make nil mean "no seam".
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OSFS{}
	}
	return fsys
}

// AtomicWrite replaces path with data so that a crash at any instant
// leaves either the old content or the new — never a torn mix — and the
// replacement survives power loss: temp file, write, fsync, rename,
// then fsync of the parent directory (without which the rename itself
// may not be durable). On error the temp file is removed best-effort.
func AtomicWrite(fsys FS, path string, data []byte, perm os.FileMode) error {
	fsys = OrOS(fsys)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// IsNotExist reports whether err means the file does not exist,
// unwrapping injected and recorded errors like the os version unwraps
// PathErrors.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
