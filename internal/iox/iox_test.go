package iox

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSFSRoundtrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OSFS{}
	path := filepath.Join(dir, "sub", "a.bin")
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open(path); !IsNotExist(err) {
		t.Fatalf("want not-exist after rename, got %v", err)
	}
	if err := fsys.Remove(filepath.Join(dir, "b.bin")); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.dat")
	if err := AtomicWrite(nil, path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWrite(OSFS{}, path, []byte("version-two"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "version-two" {
		t.Fatalf("got %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestAtomicWriteFaultLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.dat")
	if err := AtomicWrite(nil, path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, plan := range []Plan{
		{WriteBudget: 1},
		{FailSyncAt: 1},
		{FailRenameAt: 1},
	} {
		ff := NewFaultFS(nil, plan)
		err := AtomicWrite(ff, path, []byte("newnewnew"), 0o644)
		if err == nil {
			t.Fatalf("plan %+v: want error", plan)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if string(got) != "old" {
			t.Fatalf("plan %+v: destination corrupted to %q", plan, got)
		}
		if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
			t.Fatalf("plan %+v: temp file left behind", plan)
		}
		if ff.Stats().Injected == 0 {
			t.Fatalf("plan %+v: fault not injected", plan)
		}
	}
}

func TestPlanForKind(t *testing.T) {
	for _, kind := range []string{"enospc", "eio-sync", "torn", "rename"} {
		if _, err := PlanForKind(kind); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := PlanForKind("bogus"); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestFaultENOSPCShortWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, Plan{WriteBudget: 10})
	f, err := ff.Create(filepath.Join(dir, "j"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("123456")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if n != 4 {
		t.Fatalf("short write should land remaining budget 4, got %d", n)
	}
	f.Close()
	got, _ := os.ReadFile(filepath.Join(dir, "j"))
	if string(got) != "123456abcd" {
		t.Fatalf("on-disk %q", got)
	}
	// The budget stays exhausted: later writes land zero bytes.
	f2, _ := ff.Create(filepath.Join(dir, "k"))
	n, err = f2.Write([]byte("zz"))
	if n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-exhaustion write: n=%d err=%v", n, err)
	}
	f2.Close()
}

func TestFaultSyncStaysBroken(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, Plan{FailSyncAt: 2})
	f, err := ff.Create(filepath.Join(dir, "j"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("second sync: want EIO, got %v", err)
	}
	// fsyncgate: retrying fsync on the same fd must NOT succeed.
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("retried sync must stay broken, got %v", err)
	}
	if err := ff.SyncDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("dir sync after failure: %v", err)
	}
}

func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, Plan{TornWriteAt: 2})
	f, _ := ff.Create(filepath.Join(dir, "j"))
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbbbb"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if n != 3 {
		t.Fatalf("torn write should land half (3), got %d", n)
	}
	f.Close()
	got, _ := os.ReadFile(filepath.Join(dir, "j"))
	if string(got) != "aaaabbb" {
		t.Fatalf("on-disk %q", got)
	}
}

func TestFaultRename(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, Plan{FailRenameAt: 1})
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst")
	if err := ff.Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("source must be untouched: %v", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("destination must not exist: %v", err)
	}
	if err := ff.Rename(src, dst); err != nil {
		t.Fatalf("second rename should pass: %v", err)
	}
}

func TestFaultPathSubstrFilter(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, Plan{WriteBudget: 1, PathSubstr: "cache"})
	// Non-matching path: unlimited writes.
	f, _ := ff.Create(filepath.Join(dir, "journal.log"))
	if _, err := f.Write(bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatalf("non-matching path must not fault: %v", err)
	}
	f.Close()
	// Matching path: budget applies.
	g, _ := ff.Create(filepath.Join(dir, "cache-entry"))
	if _, err := g.Write([]byte("yy")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("matching path: want ENOSPC, got %v", err)
	}
	g.Close()
	st := ff.Stats()
	if st.Writes != 1 || st.Injected != 1 {
		t.Fatalf("counters must only advance on matching paths: %+v", st)
	}
}

func TestFaultWriteFile(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, Plan{WriteBudget: 3})
	path := filepath.Join(dir, "f")
	err := ff.WriteFile(path, []byte("abcdef"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "abc" {
		t.Fatalf("short WriteFile should land budget prefix, got %q", got)
	}
}

func TestRecorderMaterializeEquivalence(t *testing.T) {
	live := t.TempDir()
	rec := NewRecorder(nil, live)

	// Exercise every op kind the persistence layers use.
	if err := rec.MkdirAll(filepath.Join(live, "d"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := rec.OpenFile(filepath.Join(live, "d", "j.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"rec-one|", "rec-two|", "rec-three|"} {
		if _, err := f.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Truncate(16); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := rec.WriteFile(filepath.Join(live, "meta.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWrite(rec, filepath.Join(live, "d", "atom"), []byte("atomic!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := rec.Remove(filepath.Join(live, "meta.json")); err != nil {
		t.Fatal(err)
	}
	// Out-of-root traffic must not be recorded.
	other := t.TempDir()
	if err := rec.WriteFile(filepath.Join(other, "x"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	ops := rec.Ops()
	for _, op := range ops {
		if filepath.IsAbs(op.Path) {
			t.Fatalf("recorded absolute path %q", op.Path)
		}
	}

	// Full replay reproduces the live tree byte for byte.
	scratch := t.TempDir()
	if err := Materialize(scratch, ops, len(ops)); err != nil {
		t.Fatal(err)
	}
	assertTreesEqual(t, live, scratch)

	// Every prefix materializes without error into a fresh dir.
	for n := 0; n <= len(ops); n++ {
		dir := t.TempDir()
		if err := Materialize(dir, ops, n); err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
	}

	// Torn variant of a write op leaves a strict prefix of its payload.
	wb := WriteBoundaries(ops)
	if len(wb) == 0 {
		t.Fatal("no write boundaries recorded")
	}
	var lastWrite int
	for _, n := range wb {
		if ops[n-1].Kind == OpWrite {
			lastWrite = n
		}
	}
	if lastWrite == 0 {
		t.Fatal("no OpWrite boundary")
	}
	tornDir := t.TempDir()
	keep := len(ops[lastWrite-1].Data) / 2
	if err := MaterializeTorn(tornDir, ops, lastWrite, keep); err != nil {
		t.Fatal(err)
	}
	full := t.TempDir()
	if err := Materialize(full, ops, lastWrite); err != nil {
		t.Fatal(err)
	}
	tornBytes, _ := os.ReadFile(filepath.Join(tornDir, ops[lastWrite-1].Path))
	fullBytes, _ := os.ReadFile(filepath.Join(full, ops[lastWrite-1].Path))
	wantLen := len(fullBytes) - (len(ops[lastWrite-1].Data) - keep)
	if len(tornBytes) != wantLen || !bytes.Equal(tornBytes, fullBytes[:wantLen]) {
		t.Fatalf("torn file is not the expected prefix: torn=%d full=%d want=%d", len(tornBytes), len(fullBytes), wantLen)
	}
	if err := MaterializeTorn(t.TempDir(), ops, 1, 0); ops[0].Kind != OpWrite && err == nil {
		t.Fatal("MaterializeTorn must reject non-write ops")
	}
}

func TestRecorderAppendMode(t *testing.T) {
	live := t.TempDir()
	rec := NewRecorder(nil, live)
	path := filepath.Join(live, "log")
	f, err := rec.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("aaa"))
	f.Close()
	// Reopen in append mode: position must resume at EOF.
	f, err = rec.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("bbb"))
	f.Close()

	scratch := t.TempDir()
	ops := rec.Ops()
	if err := Materialize(scratch, ops, len(ops)); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(filepath.Join(scratch, "log"))
	if string(got) != "aaabbb" {
		t.Fatalf("append replay produced %q", got)
	}
}

func assertTreesEqual(t *testing.T, a, b string) {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.Walk(a, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(a, p)
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	err = filepath.Walk(b, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(b, p)
		want, ok := files[rel]
		if !ok {
			t.Errorf("extra file %s in replay", rel)
			return nil
		}
		got, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		if !bytes.Equal(got, want) {
			t.Errorf("file %s differs: live %d bytes, replay %d bytes", rel, len(want), len(got))
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(files) {
		t.Errorf("replay has %d files, live has %d", seen, len(files))
	}
}
