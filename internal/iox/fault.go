package iox

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Plan scripts deterministic storage faults. Counters are global across
// the FaultFS (not per file): "the 3rd write anywhere fails" is
// reproducible under serial tests, which is where these plans run.
// Zero values disable each fault.
type Plan struct {
	// WriteBudget, when > 0, is the total number of payload bytes
	// writable through the FS before ENOSPC. The write that crosses the
	// budget is short — the remaining budget lands on disk, the rest
	// does not — matching how a full filesystem tears an append.
	WriteBudget int64
	// FailSyncAt, when > 0, fails the N-th Sync (file or directory,
	// 1-based) with EIO. Later Syncs on the same handle also fail:
	// after a failed fsync the kernel may have dropped the dirty pages,
	// so "retry fsync and trust it" is exactly the fsyncgate bug this
	// injector exists to catch.
	FailSyncAt int
	// TornWriteAt, when > 0, cuts the N-th write short: half the
	// payload is written, then EIO. The torn tail is on disk.
	TornWriteAt int
	// FailRenameAt, when > 0, fails the N-th Rename with EIO, leaving
	// both source and destination untouched.
	FailRenameAt int
	// PathSubstr, when non-empty, restricts every fault to operations
	// whose path contains the substring; other paths pass through
	// untouched (and do not advance the counters).
	PathSubstr string
}

// PlanForKind maps the storage-fault matrix's IOFAULT kinds to
// canonical plans. Tests tune the returned fields when the defaults do
// not land on an interesting boundary for their workload.
func PlanForKind(kind string) (Plan, error) {
	switch kind {
	case "enospc":
		return Plan{WriteBudget: 4096}, nil
	case "eio-sync":
		return Plan{FailSyncAt: 2}, nil
	case "torn":
		return Plan{TornWriteAt: 3}, nil
	case "rename":
		return Plan{FailRenameAt: 1}, nil
	default:
		return Plan{}, fmt.Errorf("iox: unknown fault kind %q (want enospc|eio-sync|torn|rename)", kind)
	}
}

// FaultStats counts what a FaultFS saw and did.
type FaultStats struct {
	Writes   int   // write calls on faultable paths
	Bytes    int64 // payload bytes accepted
	Syncs    int   // sync calls (file + dir) on faultable paths
	Renames  int   // renames on faultable paths
	Injected int   // faults actually fired
}

// FaultFS wraps an FS with the Plan's deterministic faults. Safe for
// concurrent use; the counters are globally ordered under one lock.
type FaultFS struct {
	inner FS
	plan  Plan

	mu    sync.Mutex
	stats FaultStats
}

// NewFaultFS wraps inner (nil = the real filesystem) with plan.
func NewFaultFS(inner FS, plan Plan) *FaultFS {
	return &FaultFS{inner: OrOS(inner), plan: plan}
}

// Stats snapshots the fault counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *FaultFS) faultable(path string) bool {
	return f.plan.PathSubstr == "" || strings.Contains(path, f.plan.PathSubstr)
}

func errENOSPC(path string) error {
	return &os.PathError{Op: "write", Path: path, Err: syscall.ENOSPC}
}
func errEIO(op, path string) error {
	return &os.PathError{Op: op, Path: path, Err: syscall.EIO}
}

// admitWrite decides how much of an n-byte write at path proceeds and
// which error (if any) follows it.
func (f *FaultFS) admitWrite(path string, n int) (allow int, err error) {
	if !f.faultable(path) {
		return n, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Writes++
	if f.plan.TornWriteAt > 0 && f.stats.Writes == f.plan.TornWriteAt {
		f.stats.Injected++
		allow = n / 2
		f.stats.Bytes += int64(allow)
		return allow, errEIO("write", path)
	}
	if f.plan.WriteBudget > 0 {
		remaining := f.plan.WriteBudget - f.stats.Bytes
		if remaining < int64(n) {
			if remaining < 0 {
				remaining = 0
			}
			f.stats.Injected++
			f.stats.Bytes += remaining
			return int(remaining), errENOSPC(path)
		}
	}
	f.stats.Bytes += int64(n)
	return n, nil
}

// admitSync decides whether a sync on path succeeds.
func (f *FaultFS) admitSync(path string) error {
	if !f.faultable(path) {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Syncs++
	// From the N-th sync on, every sync fails: a device that errored an
	// fsync does not quietly heal, and the post-failure behavior (does
	// the caller trust a later fsync on the same fd?) is the fsyncgate
	// bug class under test.
	if f.plan.FailSyncAt > 0 && f.stats.Syncs >= f.plan.FailSyncAt {
		f.stats.Injected++
		return errEIO("fsync", path)
	}
	return nil
}

func (f *FaultFS) admitRename(path string) error {
	if !f.faultable(path) {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Renames++
	if f.plan.FailRenameAt > 0 && f.stats.Renames == f.plan.FailRenameAt {
		f.stats.Injected++
		return errEIO("rename", path)
	}
	return nil
}

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f, path: path}, nil
}

func (f *FaultFS) Open(path string) (File, error) { return f.inner.Open(path) }

func (f *FaultFS) Create(path string) (File, error) {
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f, path: path}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }

func (f *FaultFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	allow, ferr := f.admitWrite(path, len(data))
	if err := f.inner.WriteFile(path, data[:allow], perm); err != nil {
		return err
	}
	return ferr
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.admitRename(newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error                  { return f.inner.Remove(path) }
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.admitSync(dir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile interposes the plan on one handle's writes and syncs.
type faultFile struct {
	File
	fs   *FaultFS
	path string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	allow, ferr := ff.fs.admitWrite(ff.path, len(p))
	n, werr := ff.File.Write(p[:allow])
	if werr != nil {
		return n, werr
	}
	if ferr != nil {
		return n, ferr
	}
	return len(p), nil
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.admitSync(ff.path); err != nil {
		return err
	}
	return ff.File.Sync()
}
