package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, path string, header []byte) (*Journal, [][]byte) {
	t.Helper()
	j, recs, err := Open(path, header)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fingerprint-v1")
	j, recs := open(t, path, hdr)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := [][]byte{[]byte("tile-0"), []byte("tile-7"), {}, []byte("tile-3")}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := open(t, path, hdr)
	defer j2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestAppendAfterResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("h")
	j, _ := open(t, path, hdr)
	j.Append([]byte("a"))
	j.Close()

	j, recs := open(t, path, hdr)
	if len(recs) != 1 {
		t.Fatalf("replayed %d", len(recs))
	}
	j.Append([]byte("b"))
	j.Close()

	j, recs = open(t, path, hdr)
	defer j.Close()
	if len(recs) != 2 || string(recs[0]) != "a" || string(recs[1]) != "b" {
		t.Fatalf("replayed %q", recs)
	}
}

func TestHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := open(t, path, []byte("config-A"))
	j.Append([]byte("tile"))
	j.Close()
	if _, _, err := Open(path, []byte("config-B")); !errors.Is(err, ErrHeaderMismatch) {
		t.Fatalf("err = %v, want ErrHeaderMismatch", err)
	}
}

// TestTornTail cuts the file at every possible byte boundary inside the
// final record and verifies the journal always reopens with exactly the
// records before it, then accepts new appends.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.ckpt")
	hdr := []byte("h")
	j, _ := open(t, base, hdr)
	j.Append([]byte("first-record"))
	j.Close()
	whole, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	intactLen := len(whole)

	j, _ = open(t, base, hdr)
	j.Append([]byte("the-torn-one"))
	j.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	for cut := intactLen + 1; cut < len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.ckpt", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs := open(t, path, hdr)
		if len(recs) != 1 || string(recs[0]) != "first-record" {
			t.Fatalf("cut %d: replayed %q", cut, recs)
		}
		if err := j.Append([]byte("after-resume")); err != nil {
			t.Fatal(err)
		}
		j.Close()
		j, recs = open(t, path, hdr)
		if len(recs) != 2 || string(recs[1]) != "after-resume" {
			t.Fatalf("cut %d after append: replayed %q", cut, recs)
		}
		j.Close()
	}
}

// TestTornHeader covers a process that died between the magic and the
// header record: the journal restarts cleanly.
func TestTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, magic, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := open(t, path, []byte("h"))
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from header-only journal", len(recs))
	}
	j.Append([]byte("x"))
	j.Close()
	j, recs = open(t, path, []byte("h"))
	defer j.Close()
	if len(recs) != 1 || string(recs[0]) != "x" {
		t.Fatalf("replayed %q", recs)
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, []byte("h")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestMidFileCorruption flips a byte inside an interior record; that is
// disk rot, not a torn write, and must be reported, not skipped.
func TestMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("h")
	j, _ := open(t, path, hdr)
	j.Append([]byte("record-one"))
	j.Append([]byte("record-two"))
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of record-one: magic + header record (8+1) +
	// record header (8) puts record-one's payload at this offset.
	off := len(magic) + 8 + len(hdr) + 8
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, hdr); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("h")
	j, _ := open(t, path, hdr)
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	j, recs := open(t, path, hdr)
	defer j.Close()
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[string(r)] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d distinct records", len(seen))
	}
}
