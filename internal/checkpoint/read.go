package checkpoint

import (
	"errors"
	"fmt"

	"cfaopc/internal/iox"
)

// Read is ReadFS on the real filesystem.
func Read(path string, header []byte) ([][]byte, error) {
	return ReadFS(nil, path, header)
}

// ReadFS replays the journal at path without taking the append handle:
// the file is opened read-only, never truncated, and never locked, so
// an observer (an SSE reconnect replaying a finished job's event log, a
// daemon scanning job state it does not own yet) can read a journal
// that another handle is still appending to. The caller's header is
// verified like Open's; valid payloads are returned in append order.
//
// Torn tails are tolerated exactly as in Open — a record cut short by a
// crash (or by racing an in-flight append) simply ends the replay — but
// unlike Open the tail is left in place: repairing the file is the
// appender's job. Mid-file corruption is still an error, and a journal
// that never got its header (the creator died at birth) reads as empty.
func ReadFS(fsys iox.FS, path string, header []byte) ([][]byte, error) {
	fsys = iox.OrOS(fsys)
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gotHeader, payloads, _, err := replay(f)
	if errors.Is(err, errNoHeader) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if !bytesEqual(gotHeader, header) {
		return nil, fmt.Errorf("%w (path %s)", ErrHeaderMismatch, path)
	}
	return payloads, nil
}
