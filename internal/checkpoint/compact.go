package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"

	"cfaopc/internal/iox"
)

// CompactStats reports what a Compact pass did.
type CompactStats struct {
	Kept        int   // records surviving into the compacted journal
	Dropped     int   // superseded records removed
	BytesBefore int64 // journal size before, including magic and header
	BytesAfter  int64
}

// Compact is CompactFS on the real filesystem.
func Compact(path string, header []byte, keyOf func(payload []byte) (string, error)) (CompactStats, error) {
	return CompactFS(nil, path, header, keyOf)
}

// CompactFS rewrites the journal at path keeping only the LAST record
// for each key, in first-appearance order of the surviving keys. keyOf
// maps a record payload to its supersession key (e.g. the tile index,
// so a tile's completion record supersedes its partial-progress
// snapshots); a keyOf error aborts the pass with the original journal
// untouched.
//
// Replay semantics are last-record-wins per key, so resuming from the
// compacted journal is byte-identical to resuming from the original.
// The rewrite goes through a temp file + fsync + rename + parent-dir
// fsync, so a crash at any instant leaves either the original journal
// or the durable compacted one; a torn tail on the input is dropped
// exactly as Open would drop it.
func CompactFS(fsys iox.FS, path string, header []byte, keyOf func(payload []byte) (string, error)) (CompactStats, error) {
	fsys = iox.OrOS(fsys)
	var stats CompactStats
	f, err := fsys.Open(path)
	if err != nil {
		return stats, err
	}
	gotHeader, payloads, validOff, err := replay(f)
	f.Close()
	if err != nil {
		return stats, err
	}
	if !bytesEqual(gotHeader, header) {
		return stats, fmt.Errorf("%w (path %s)", ErrHeaderMismatch, path)
	}
	stats.BytesBefore = validOff

	// Last record per key wins; survivors keep the order in which their
	// key first appeared, which preserves the original append order for
	// the common no-duplicates case.
	last := make(map[string]int, len(payloads))
	var order []string
	keys := make([]string, len(payloads))
	for i, p := range payloads {
		k, kerr := keyOf(p)
		if kerr != nil {
			return stats, kerr
		}
		keys[i] = k
		if _, seen := last[k]; !seen {
			order = append(order, k)
		}
		last[k] = i
	}

	tmp := path + ".compact.tmp"
	out, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return stats, err
	}
	cleanup := func() { out.Close(); fsys.Remove(tmp) }
	if _, err := out.Write(magic); err != nil {
		cleanup()
		return stats, err
	}
	j := &Journal{f: out}
	if err := j.Append(header); err != nil {
		cleanup()
		return stats, err
	}
	for _, k := range order {
		if err := j.Append(payloads[last[k]]); err != nil {
			cleanup()
			return stats, err
		}
	}
	if err := out.Sync(); err != nil {
		cleanup()
		return stats, err
	}
	st, err := out.Stat()
	if err != nil {
		cleanup()
		return stats, err
	}
	if err := out.Close(); err != nil {
		fsys.Remove(tmp)
		return stats, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return stats, err
	}
	// The rename replaced a directory entry; without syncing the parent
	// a crash can resurrect the pre-compaction journal with the temp
	// file gone — still correct, but the compaction silently lost.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return stats, err
	}
	stats.Kept = len(order)
	stats.Dropped = len(payloads) - len(order)
	stats.BytesAfter = st.Size()
	return stats, nil
}
