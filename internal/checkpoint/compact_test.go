package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// firstByteKey treats a payload's first byte as its supersession key —
// enough structure to exercise last-wins semantics without gob.
func firstByteKey(p []byte) (string, error) {
	if len(p) == 0 {
		return "", fmt.Errorf("empty payload")
	}
	return string(p[:1]), nil
}

func TestCompactDropsSuperseded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fp")
	j, _ := open(t, path, hdr)
	appends := [][]byte{
		[]byte("a-partial-1"),
		[]byte("b-partial-1"),
		[]byte("a-partial-2"),
		[]byte("c-done"),
		[]byte("a-done"), // supersedes both a-partials
	}
	for _, p := range appends {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	before, _ := os.Stat(path)

	stats, err := Compact(path, hdr, firstByteKey)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != 3 || stats.Dropped != 2 {
		t.Fatalf("stats = %+v, want kept 3 dropped 2", stats)
	}
	if stats.BytesBefore != before.Size() || stats.BytesAfter >= stats.BytesBefore {
		t.Fatalf("byte accounting %+v (file was %d)", stats, before.Size())
	}

	// Replay order: first appearance of each surviving key, last record
	// per key — exactly what Open's last-wins replay would compute.
	j2, recs := open(t, path, hdr)
	defer j2.Close()
	want := [][]byte{[]byte("a-done"), []byte("b-partial-1"), []byte("c-done")}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestCompactIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fp")
	j, _ := open(t, path, hdr)
	j.Append([]byte("a1"))
	j.Append([]byte("b1"))
	j.Append([]byte("a2"))
	j.Close()

	if _, err := Compact(path, hdr, firstByteKey); err != nil {
		t.Fatal(err)
	}
	first, _ := os.ReadFile(path)
	stats, err := Compact(path, hdr, firstByteKey)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := os.ReadFile(path)
	if stats.Dropped != 0 || !bytes.Equal(first, second) {
		t.Fatalf("second compaction changed the journal (stats %+v)", stats)
	}
}

func TestCompactHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := open(t, path, []byte("fp-A"))
	j.Append([]byte("a"))
	j.Close()
	if _, err := Compact(path, []byte("fp-B"), firstByteKey); !errors.Is(err, ErrHeaderMismatch) {
		t.Fatalf("err = %v, want ErrHeaderMismatch", err)
	}
	// The failed compaction must leave the journal readable and intact.
	j2, recs := open(t, path, []byte("fp-A"))
	j2.Close()
	if len(recs) != 1 || string(recs[0]) != "a" {
		t.Fatalf("failed compact damaged the journal: %q", recs)
	}
}

func TestCompactKeyErrorLeavesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fp")
	j, _ := open(t, path, hdr)
	j.Append([]byte("a"))
	j.Append([]byte{}) // firstByteKey rejects this
	j.Close()
	orig, _ := os.ReadFile(path)

	if _, err := Compact(path, hdr, firstByteKey); err == nil || !strings.Contains(err.Error(), "empty payload") {
		t.Fatalf("err = %v, want keyOf failure", err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(orig, after) {
		t.Fatal("aborted compaction mutated the journal")
	}
	if entries, _ := os.ReadDir(filepath.Dir(path)); len(entries) != 1 {
		t.Fatalf("temp file left behind: %v", entries)
	}
}

func TestCompactDropsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fp")
	j, _ := open(t, path, hdr)
	j.Append([]byte("a"))
	j.Close()
	// Simulate a crash mid-append: a dangling half-record at the tail.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0, 0, 0, 9, 1, 2})
	f.Close()

	stats, err := Compact(path, hdr, firstByteKey)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	j2, recs := open(t, path, hdr)
	defer j2.Close()
	if len(recs) != 1 || string(recs[0]) != "a" {
		t.Fatalf("post-compact replay = %q", recs)
	}
}

func TestCompactMissingJournal(t *testing.T) {
	if _, err := Compact(filepath.Join(t.TempDir(), "absent.ckpt"), []byte("fp"), firstByteKey); err == nil {
		t.Fatal("compacted a journal that does not exist")
	}
}

func TestCompactTmpPathBlocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fp")
	j, _ := open(t, path, hdr)
	j.Append([]byte("a"))
	j.Close()
	orig, _ := os.ReadFile(path)
	// A directory squatting on the temp path: the rewrite must fail
	// cleanly and leave the journal untouched.
	if err := os.Mkdir(path+".compact.tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(path, hdr, firstByteKey); err == nil {
		t.Fatal("compaction succeeded with its temp path blocked")
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(orig, after) {
		t.Fatal("failed compaction mutated the journal")
	}
}

func TestSyncFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fp")
	j, _ := open(t, path, hdr)
	defer j.Close()
	if err := j.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	// Synced bytes are visible to an independent reader immediately.
	j2, recs := open(t, path, hdr)
	j2.Close()
	if len(recs) != 1 || string(recs[0]) != "a" {
		t.Fatalf("post-sync replay = %q", recs)
	}
}
