// Package checkpoint implements the append-only journal the tiled flow
// uses for crash recovery: each completed tile is written as one
// length-prefixed, CRC32-guarded record, so a run that dies at tile
// 9,999 of 10,000 resumes from the journal instead of restarting from
// zero.
//
// The format is deliberately dumb — built for torn tails, not queries:
//
//	magic "CFCKPT1\n"
//	header record   (opaque fingerprint bytes supplied by the caller)
//	tile record *   (opaque payload bytes, typically a gob blob)
//
// where every record is
//
//	uint32 BE payload length | uint32 BE CRC32(IEEE, payload) | payload
//
// A process killed mid-append leaves a short or corrupt final record;
// Open tolerates exactly that failure mode: it replays every valid
// record, truncates the file back to the last valid boundary, and
// appends from there. Any earlier corruption (a bad CRC followed by
// more data) is reported as an error rather than silently skipped —
// mid-file damage is disk rot, not a torn write.
//
// The header fingerprint binds a journal to one (layout, tiling
// config) pair: Open fails with ErrHeaderMismatch when the stored
// fingerprint differs from the caller's, so a stale journal can never
// leak tiles into a different run.
//
// A Journal that sees a write or sync error poisons itself: every
// later Append/Sync returns ErrPoisoned wrapping the original cause.
// In particular a failed fsync is never retried on the same fd — after
// fsync reports failure the kernel may already have dropped the dirty
// pages, so a succeeding retry proves nothing (the fsyncgate bug
// class). Callers decide the policy: the flow degrades the run to
// un-resumable-but-correct, the daemon fails the job before any
// subscriber observes the event.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"cfaopc/internal/iox"
)

var magic = []byte("CFCKPT1\n")

// ErrHeaderMismatch means the journal on disk was written for a
// different run (layout or tiling config changed). The caller should
// delete or relocate the file.
var ErrHeaderMismatch = errors.New("checkpoint: journal header does not match this run")

// ErrPoisoned means an earlier Append or Sync on this journal failed;
// the journal refuses further writes because durability can no longer
// be promised on this fd. Unwrap for the original storage error.
var ErrPoisoned = errors.New("checkpoint: journal poisoned by earlier write error")

// MaxRecordBytes bounds one record's payload; it exists so a corrupt
// length prefix cannot demand an absurd allocation during replay.
const MaxRecordBytes = 64 << 20

// Journal is an open checkpoint file positioned for appends. Append is
// safe for concurrent use; the worker pool writes records as tiles
// complete, in whatever order they finish.
type Journal struct {
	mu       sync.Mutex
	f        iox.File
	size     int64 // bytes through the last attempted append
	poisoned error // first write/sync failure; sticky
}

// Open opens (or creates) the journal at path on the real filesystem.
func Open(path string, header []byte) (*Journal, [][]byte, error) {
	return OpenFS(nil, path, header)
}

// OpenFS is Open through an explicit filesystem seam (nil = the real
// filesystem). The caller's header fingerprint is written to a fresh
// journal and verified against an existing one. Valid tile payloads
// already on disk are returned in append order; a torn final record is
// discarded and the file is truncated to the last valid boundary so
// subsequent appends start clean.
func OpenFS(fsys iox.FS, path string, header []byte) (*Journal, [][]byte, error) {
	fsys = iox.OrOS(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if st.Size() == 0 {
		return startFresh(f, header)
	}

	gotHeader, payloads, validOff, err := replay(f)
	if errors.Is(err, errNoHeader) {
		// The creating process died between writing the magic and the
		// header record; nothing was journaled, so restart the file.
		if terr := f.Truncate(0); terr != nil {
			f.Close()
			return nil, nil, terr
		}
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			f.Close()
			return nil, nil, serr
		}
		return startFresh(f, header)
	}
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if !bytesEqual(gotHeader, header) {
		f.Close()
		return nil, nil, fmt.Errorf("%w (path %s)", ErrHeaderMismatch, path)
	}
	// Drop the torn tail (if any) and position for appends.
	if err := f.Truncate(validOff); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(validOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, size: validOff}, payloads, nil
}

// startFresh writes magic + header record to an empty file.
func startFresh(f iox.File, header []byte) (*Journal, [][]byte, error) {
	if _, err := f.Write(magic); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f, size: int64(len(magic))}
	if err := j.Append(header); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, nil, nil
}

// replay reads magic, the header record and every tile record, stopping
// at the first torn (truncated) record. It returns the header payload,
// the tile payloads in file order, and the offset just past the last
// valid record. A record that is fully present but fails its CRC while
// more records follow is mid-file corruption and is returned as an
// error.
func replay(f iox.File) (header []byte, payloads [][]byte, validOff int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, 0, err
	}
	m := make([]byte, len(magic))
	n, err := io.ReadFull(f, m)
	if err != nil && bytesEqual(m[:n], magic[:n]) {
		// The whole file is a strict prefix of the magic: a crash tore
		// the very first write, so the journal never finished being
		// born. Report it like a torn header and let Open restart the
		// file — this is a birth crash, not foreign data.
		return nil, nil, 0, errNoHeader
	}
	if err != nil || !bytesEqual(m, magic) {
		return nil, nil, 0, fmt.Errorf("checkpoint: not a journal (bad magic)")
	}
	off := int64(len(magic))
	first := true
	for {
		payload, n, rerr := readRecord(f)
		if rerr == io.EOF {
			break // clean end of journal
		}
		if rerr != nil {
			if errors.Is(rerr, errTorn) {
				// Torn tail: everything before it stands. A torn
				// *header* means the journal never finished being born;
				// Open restarts such a file.
				if first {
					return nil, nil, 0, errNoHeader
				}
				break
			}
			return nil, nil, 0, rerr
		}
		if first {
			header = payload
			first = false
		} else {
			payloads = append(payloads, payload)
		}
		off += n
	}
	if first {
		return nil, nil, 0, errNoHeader
	}
	return header, payloads, off, nil
}

// errNoHeader marks a journal whose header record never made it to disk.
var errNoHeader = errors.New("checkpoint: journal has no valid header")

// errTorn marks a record that ends before its declared length or fails
// its CRC at the end of the file — the signature of a write cut short.
var errTorn = errors.New("checkpoint: torn record")

// readRecord decodes one record at the current offset. io.EOF at a
// record boundary is a clean end. A short header/payload is torn. A CRC
// mismatch is torn when it is the final record, corruption otherwise.
func readRecord(f iox.File) (payload []byte, n int64, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, errTorn
	}
	ln := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	if ln > MaxRecordBytes {
		return nil, 0, fmt.Errorf("checkpoint: record length %d exceeds limit", ln)
	}
	payload = make([]byte, ln)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, 0, errTorn
	}
	if crc32.ChecksumIEEE(payload) != want {
		// Distinguish "last record damaged" (torn) from mid-file rot:
		// peek one byte ahead.
		var b [1]byte
		if _, err := f.Read(b[:]); err == io.EOF {
			return nil, 0, errTorn
		}
		return nil, 0, fmt.Errorf("checkpoint: mid-journal CRC mismatch")
	}
	return payload, 8 + int64(ln), nil
}

// Append writes one payload as a length-prefixed, CRC-guarded record.
// Safe for concurrent use. The write is buffered by the OS, not
// fsynced; call Sync for a durability barrier. A write error poisons
// the journal: this and all later Appends fail, and the on-disk tail
// is whatever prefix landed (a torn record the next Open truncates).
func (j *Journal) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("checkpoint: payload %d bytes exceeds record limit", len(payload))
	}
	rec := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.poisoned != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, j.poisoned)
	}
	n, err := j.f.Write(rec)
	j.size += int64(n)
	if err != nil {
		j.poisoned = err
		return err
	}
	return nil
}

// Sync flushes appended records to stable storage. A sync error poisons
// the journal — the failed fsync is never retried on this fd, because
// the kernel may have dropped the dirty pages it reported on and a
// later success would be a false durability claim.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.poisoned != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, j.poisoned)
	}
	if err := j.f.Sync(); err != nil {
		j.poisoned = err
		return err
	}
	return nil
}

// Size returns the journal's byte size through the last attempted
// append (magic and header included).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Err returns the first write/sync failure that poisoned the journal,
// or nil while the journal is healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.poisoned
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
