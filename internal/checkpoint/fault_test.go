package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"cfaopc/internal/iox"
)

// TestAppendErrorPoisons: once a write fails, the journal refuses all
// further traffic with ErrPoisoned, and the torn tail it left behind is
// truncated away by the next Open — every record accepted before the
// fault replays intact.
func TestAppendErrorPoisons(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.ckpt")
	header := []byte("hdr-v1")

	// Budget admits magic+header+two records, then tears the third.
	rec := func(i int) []byte { return []byte(fmt.Sprintf("record-%d-payload", i)) }
	full := int64(len(magic)) + int64(8+len(header))
	for i := 0; i < 2; i++ {
		full += int64(8 + len(rec(i)))
	}
	ff := iox.NewFaultFS(nil, iox.Plan{WriteBudget: full + 5})

	j, prior, err := OpenFS(ff, path, header)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(prior))
	}
	for i := 0; i < 2; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	err = j.Append(rec(2))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if j.Err() == nil {
		t.Fatal("journal must report its poison cause")
	}
	// Poisoned: later appends and syncs fail with ErrPoisoned, not a
	// retried write.
	if err := j.Append(rec(3)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison: want ErrPoisoned, got %v", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync after poison: want ErrPoisoned, got %v", err)
	}
	j.Close()

	// Recovery: the torn third record is dropped, the two durable ones
	// replay, and the journal appends cleanly again.
	j2, payloads, err := Open(path, header)
	if err != nil {
		t.Fatalf("reopen after ENOSPC: %v", err)
	}
	defer j2.Close()
	if len(payloads) != 2 {
		t.Fatalf("want 2 recovered records, got %d", len(payloads))
	}
	for i, p := range payloads {
		if string(p) != string(rec(i)) {
			t.Fatalf("record %d corrupted: %q", i, p)
		}
	}
	if err := j2.Append(rec(2)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := j2.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncErrorPoisons: fsyncgate. A failed fsync must not be retried
// on the same fd; the journal poisons instead.
func TestSyncErrorPoisons(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.ckpt")
	header := []byte("hdr-v1")
	ff := iox.NewFaultFS(nil, iox.Plan{FailSyncAt: 1})

	j, _, err := OpenFS(ff, path, header)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append([]byte("r0")); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync retry must hit poison, got %v", err)
	}
	if err := j.Append([]byte("r1")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after sync failure must hit poison, got %v", err)
	}
	if got := ff.Stats().Syncs; got != 1 {
		t.Fatalf("exactly one fsync must reach the device, got %d", got)
	}
}

// TestJournalSize tracks byte growth for the daemon's storage health.
func TestJournalSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.ckpt")
	header := []byte("h")
	j, _, err := Open(path, header)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != st.Size() {
		t.Fatalf("Size()=%d, on disk %d", j.Size(), st.Size())
	}
	// Reopen resumes the count from the valid offset.
	j2, _, err := Open(path, header)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Size() != st.Size() {
		t.Fatalf("reopened Size()=%d, on disk %d", j2.Size(), st.Size())
	}
}

// TestCompactRenameFault: a failed rename aborts compaction with the
// original journal fully intact and no temp litter.
func TestCompactRenameFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.ckpt")
	header := []byte("h")
	j, _, err := Open(path, header)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append([]byte(fmt.Sprintf("k%d", i%2))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	ff := iox.NewFaultFS(nil, iox.Plan{FailRenameAt: 1})
	keyOf := func(p []byte) (string, error) { return string(p), nil }
	if _, err := CompactFS(ff, path, header, keyOf); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO from rename, got %v", err)
	}
	if _, err := os.Stat(path + ".compact.tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	payloads, err := Read(path, header)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 4 {
		t.Fatalf("original journal damaged: %d records", len(payloads))
	}
	// And with a clean filesystem the same compaction succeeds.
	stats, err := Compact(path, header, keyOf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != 2 || stats.Dropped != 2 {
		t.Fatalf("compact stats %+v", stats)
	}
}

// TestStorageFaultMatrix drives the journal under the CI storage-fault
// matrix (IOFAULT=enospc|eio-sync|torn|rename). Whatever the fault, the
// invariant is one of: the append/sync reports a typed error and the
// journal poisons, or the op succeeds — and reopening the file always
// yields a clean prefix of the accepted records.
func TestStorageFaultMatrix(t *testing.T) {
	kind := os.Getenv("IOFAULT")
	if kind == "" {
		t.Skip("IOFAULT not set; run via the storage-fault matrix")
	}
	plan, err := iox.PlanForKind(kind)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "j.ckpt")
	header := []byte("matrix-hdr")
	ff := iox.NewFaultFS(nil, plan)

	j, _, err := OpenFS(ff, path, header)
	if err != nil {
		// A plan can fault journal creation itself (e.g. rename has no
		// effect here, but enospc with a tiny budget could); that is a
		// clean typed failure, not corruption.
		t.Logf("open failed cleanly under %s: %v", kind, err)
		return
	}
	var accepted [][]byte
	for i := 0; i < 50; i++ {
		payload := []byte(fmt.Sprintf("tile-%03d-0123456789abcdef0123456789abcdef", i))
		if err := j.Append(payload); err != nil {
			break
		}
		if err := j.Sync(); err != nil {
			// Durability of this record is unknown — drop it from the
			// expectation; recovery may or may not include it.
			break
		}
		accepted = append(accepted, payload)
	}
	j.Close()

	// Rename faults target Compact, exercised separately below; the
	// journal itself never renames.
	j2, payloads, err := Open(path, header)
	if err != nil {
		t.Fatalf("recovery open failed under %s: %v", kind, err)
	}
	if len(payloads) < len(accepted) {
		t.Fatalf("lost synced records: recovered %d < accepted %d", len(payloads), len(accepted))
	}
	for i, p := range payloads[:len(accepted)] {
		if string(p) != string(accepted[i]) {
			t.Fatalf("record %d corrupted under %s", i, kind)
		}
	}
	if err := j2.Append([]byte("post-recovery")); err != nil {
		t.Fatalf("journal wedged after recovery: %v", err)
	}
	j2.Close()

	if kind == "rename" {
		keyOf := func(p []byte) (string, error) { return string(p), nil }
		ff2 := iox.NewFaultFS(nil, plan)
		if _, err := CompactFS(ff2, path, header, keyOf); err == nil {
			t.Fatal("rename fault should abort compaction")
		}
		if _, err := Read(path, header); err != nil {
			t.Fatalf("journal damaged by aborted compaction: %v", err)
		}
	}
}

// TestTornMagicRestartsJournal: a crash that tears the very first
// write leaves a strict prefix of the magic on disk. That is a birth
// crash, not foreign data: Open restarts the file and Read sees it as
// empty.
func TestTornMagicRestartsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	header := []byte("hdr-v1")
	if err := os.WriteFile(path, []byte("CFCK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if payloads, err := Read(path, header); err != nil || len(payloads) != 0 {
		t.Fatalf("Read on torn magic: %v, %d payloads", err, len(payloads))
	}
	j, payloads, err := Open(path, header)
	if err != nil {
		t.Fatalf("Open refused a torn-magic birth crash: %v", err)
	}
	if len(payloads) != 0 {
		t.Fatalf("torn-magic journal replayed %d payloads", len(payloads))
	}
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got, err := Read(path, header)
	if err != nil || len(got) != 1 || string(got[0]) != "first" {
		t.Fatalf("restarted journal did not round-trip: %v, %q", err, got)
	}
	// Genuinely foreign data is still refused.
	bad := filepath.Join(t.TempDir(), "foreign.ckpt")
	if err := os.WriteFile(bad, []byte("GIF89a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(bad, header); err == nil {
		t.Fatal("Open accepted foreign data")
	}
}
