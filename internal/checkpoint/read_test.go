package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestReadReplaysWithoutDisturbing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("read-h")
	j, _ := open(t, path, hdr)
	want := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Read while the append handle is still open: the observer contract.
	recs, err := Read(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("read %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
	// The appender must still work after an interleaved Read.
	if err := j.Append([]byte("dddd")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if recs, err = Read(path, hdr); err != nil || len(recs) != 4 {
		t.Fatalf("after close: %d records, err %v", len(recs), err)
	}
}

func TestReadHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, _ := open(t, path, []byte("fp-A"))
	j.Append([]byte("x"))
	j.Close()
	if _, err := Read(path, []byte("fp-B")); !errors.Is(err, ErrHeaderMismatch) {
		t.Fatalf("err = %v, want ErrHeaderMismatch", err)
	}
}

func TestReadTornTailLeftInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("h")
	j, _ := open(t, path, hdr)
	j.Append([]byte("committed"))
	j.Append([]byte("doomed-record"))
	j.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: Read must drop it but NOT shrink the file —
	// repair belongs to the appender (Open), not the observer.
	if err := os.Truncate(path, st.Size()-4); err != nil {
		t.Fatal(err)
	}
	torn, _ := os.Stat(path)
	recs, err := Read(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "committed" {
		t.Fatalf("records = %q, want [committed]", recs)
	}
	after, _ := os.Stat(path)
	if after.Size() != torn.Size() {
		t.Fatalf("Read changed the file size: %d -> %d", torn.Size(), after.Size())
	}
}

func TestReadHeaderlessJournalIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	// Magic only — the creator died before the header record landed.
	if err := os.WriteFile(path, []byte("CFCKPT1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path, []byte("h"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs = %v, err = %v; want empty, nil", recs, err)
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "absent"), []byte("h")); err == nil {
		t.Fatal("missing file read as success")
	}
}
