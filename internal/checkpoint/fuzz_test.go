package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// TestHeaderBitFlip covers in-place corruption of the *header* record —
// distinct from the torn-tail cases, which model a crash mid-append.
// A flipped header followed by tile records is mid-journal rot and must
// be an error, never a silent "fresh journal": silently restarting
// would discard every journaled tile.
func TestHeaderBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fingerprint-bound-to-run")
	j, _ := open(t, path, hdr)
	j.Append([]byte("tile-0"))
	j.Append([]byte("tile-1"))
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the header record's payload (magic is 8 bytes,
	// then the 8-byte record frame, then the fingerprint itself).
	flip := append([]byte(nil), data...)
	flip[len(magic)+8+3] ^= 0x40
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, hdr); err == nil {
		t.Fatal("bit-flipped header accepted")
	} else if _, serr := os.Stat(path); serr != nil {
		t.Fatal("rejecting a corrupt header deleted the journal")
	}

	// Flipping the frame's CRC field instead of the payload must fail
	// identically — the record no longer checks out.
	flip = append([]byte(nil), data...)
	flip[len(magic)+5] ^= 0x01
	os.WriteFile(path, flip, 0o644)
	if _, _, err := Open(path, hdr); err == nil {
		t.Fatal("header with corrupt CRC accepted")
	}
}

// TestHeaderOnlyBitFlipRestarts documents the boundary: a journal whose
// header is damaged but which holds NO tile records is indistinguishable
// from a torn birth, so Open restarts it. Nothing is lost — there was
// nothing to lose.
func TestHeaderOnlyBitFlipRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := []byte("fp")
	j, _ := open(t, path, hdr)
	j.Close()
	data, _ := os.ReadFile(path)
	flip := append([]byte(nil), data...)
	flip[len(flip)-1] ^= 0xff
	os.WriteFile(path, flip, 0o644)

	j2, recs := open(t, path, hdr)
	defer j2.Close()
	if len(recs) != 0 {
		t.Fatalf("restarted journal replayed %d records", len(recs))
	}
}

// FuzzCheckpointRecord throws arbitrary bytes at the record-framing
// reader via a journal whose tail is attacker-controlled, checking the
// parser never panics, never fabricates records, and keeps its
// torn-vs-corrupt classification consistent with a re-opened file.
func FuzzCheckpointRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5})
	// A valid record for the cross-breeding corpus.
	valid := make([]byte, 8+4)
	binary.BigEndian.PutUint32(valid[0:4], 4)
	binary.BigEndian.PutUint32(valid[4:8], crc32.ChecksumIEEE([]byte("tile")))
	copy(valid[8:], "tile")
	f.Add(valid)

	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "run.ckpt")
		hdr := []byte("fp")
		j, _, err := Open(path, hdr)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append([]byte("anchor")); err != nil {
			t.Fatal(err)
		}
		j.Close()
		fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(tail)
		fh.Close()

		j2, recs, err := Open(path, hdr)
		if err != nil {
			// Mid-journal corruption is a legitimate rejection; losing the
			// anchor record silently is not.
			return
		}
		if len(recs) < 1 || !bytes.Equal(recs[0], []byte("anchor")) {
			t.Fatalf("anchor record lost: %q", recs)
		}
		for _, r := range recs[1:] {
			// Any extra record must be a valid frame actually present in
			// the fuzzed tail (CRC already proved integrity; bound size).
			if len(r) > len(tail) {
				t.Fatalf("fabricated %d-byte record from %d-byte tail", len(r), len(tail))
			}
		}
		// Open truncated to a valid boundary, so appending and re-opening
		// must round-trip.
		if err := j2.Append([]byte("post")); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		j3, recs3, err := Open(path, hdr)
		if err != nil {
			t.Fatalf("journal unusable after truncate+append: %v", err)
		}
		defer j3.Close()
		if len(recs3) != len(recs)+1 || !bytes.Equal(recs3[len(recs3)-1], []byte("post")) {
			t.Fatalf("post-truncate append lost: %d vs %d records", len(recs3), len(recs)+1)
		}
	})
}
