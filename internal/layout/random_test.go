package layout

import (
	"testing"
	"testing/quick"
)

func TestGenerateRandomValidAndDeterministic(t *testing.T) {
	a := GenerateRandom(7, RandomConfig{})
	b := GenerateRandom(7, RandomConfig{})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Rects) == 0 {
		t.Fatal("no features placed")
	}
	if len(a.Rects) != len(b.Rects) {
		t.Fatal("not deterministic")
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatal("rects differ across runs")
		}
	}
	c := GenerateRandom(8, RandomConfig{})
	same := len(a.Rects) == len(c.Rects)
	if same {
		for i := range a.Rects {
			if a.Rects[i] != c.Rects[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical layouts")
	}
}

// Property: any seed yields a valid layout respecting spacing and margins.
func TestGenerateRandomProperty(t *testing.T) {
	cfg := RandomConfig{Features: 6, SpacingNM: 100, MarginNM: 300}
	f := func(seed int64) bool {
		l := GenerateRandom(seed, cfg)
		if l.Validate() != nil {
			return false
		}
		for i, r := range l.Rects {
			if r.X < 300 || r.Y < 300 || r.X+r.W > l.TileNM-300 || r.Y+r.H > l.TileNM-300 {
				return false
			}
			for j := i + 1; j < len(l.Rects); j++ {
				o := l.Rects[j]
				// Gap of at least SpacingNM in at least one axis.
				xGap := maxOf(o.X-(r.X+r.W), r.X-(o.X+o.W))
				yGap := maxOf(o.Y-(r.Y+r.H), r.Y-(o.Y+o.H))
				if xGap < 100 && yGap < 100 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestGenerateRandomCrowdedTileDegradesGracefully(t *testing.T) {
	// Ask for far more features than fit: must not hang or panic.
	cfg := RandomConfig{Features: 200, TileNM: 1024, MarginNM: 200, SpacingNM: 150}
	l := GenerateRandom(3, cfg)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l.Rects) >= 200 {
		t.Fatal("impossibly dense placement")
	}
}
