package layout

import (
	"math/rand"
	"testing"
)

// occupancy by brute force: rasterize the window and count.
func countWindow(ix *WindowIndex, x0, y0, w, h int) int {
	m, _ := ix.Window(x0, y0, w, h)
	n := 0
	for _, v := range m.Data {
		if v > 0.5 {
			n++
		}
	}
	return n
}

func TestOccupancyMatchesWindowRaster(t *testing.T) {
	const n = 256
	for seed := int64(0); seed < 4; seed++ {
		l := GenerateRandom(seed, RandomConfig{})
		ix := NewWindowIndex(l, n)
		rng := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < 200; i++ {
			w := 1 + rng.Intn(160)
			h := 1 + rng.Intn(160)
			x0 := rng.Intn(n+80) - 40
			y0 := rng.Intn(n+80) - 40
			got := ix.Occupancy(x0, y0, w, h)
			want := countWindow(ix, x0, y0, w, h)
			if got != want {
				t.Fatalf("seed %d window (%d,%d %dx%d): Occupancy=%d, raster count=%d",
					seed, x0, y0, w, h, got, want)
			}
			if (got == 0) != !mustOccupied(ix, x0, y0, w, h) {
				t.Fatalf("seed %d window (%d,%d %dx%d): occupancy %d disagrees with Window occupied flag",
					seed, x0, y0, w, h, got)
			}
		}
	}
}

func mustOccupied(ix *WindowIndex, x0, y0, w, h int) bool {
	_, occ := ix.Window(x0, y0, w, h)
	return occ
}

func TestOccupancyFullyOffGrid(t *testing.T) {
	l := GenerateRandom(1, RandomConfig{})
	ix := NewWindowIndex(l, 128)
	if got := ix.Occupancy(-64, -64, 32, 32); got != 0 {
		t.Fatalf("off-grid window occupancy = %d, want 0", got)
	}
	if got := ix.Occupancy(0, 4096, 32, 32); got != 0 {
		t.Fatalf("below-grid window occupancy = %d, want 0", got)
	}
}

func TestWindowSpansTranslationInvariance(t *testing.T) {
	// In an aligned array every cell window must produce byte-identical
	// canonical spans — the property the dedup cache key rests on.
	const n = 256
	l := GenerateArray(8, 8, ArrayConfig{TileNM: 1024})
	ix := NewWindowIndex(l, n)
	const core, halo = 32, 8
	win := core + 2*halo
	var ref []Span
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			s := ix.WindowSpans(c*core-halo, r*core-halo, win, win)
			if len(s) == 0 {
				t.Fatalf("cell (%d,%d): no spans", r, c)
			}
			if ref == nil {
				ref = s
				continue
			}
			if len(s) != len(ref) {
				t.Fatalf("cell (%d,%d): %d spans, reference has %d", r, c, len(s), len(ref))
			}
			for i := range s {
				if s[i] != ref[i] {
					t.Fatalf("cell (%d,%d) span %d = %+v, reference %+v", r, c, i, s[i], ref[i])
				}
			}
		}
	}
}

func TestWindowSpansCanonicalForm(t *testing.T) {
	// A rect spanning several index row-buckets must appear exactly once,
	// and spans must come out sorted and clipped to the window ∩ grid.
	l := &Layout{Name: "tall", TileNM: 256, Rects: []Rect{
		{X: 10, Y: 0, W: 20, H: 250}, // crosses multiple 64-row buckets at n=256
		{X: 100, Y: 40, W: 30, H: 30},
	}}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	ix := NewWindowIndex(l, 256)
	spans := ix.WindowSpans(0, 0, 256, 256)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (bucket dedup failed): %+v", len(spans), spans)
	}
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Y0 > b.Y0 || (a.Y0 == b.Y0 && a.X0 > b.X0) {
			t.Fatalf("spans not sorted: %+v before %+v", a, b)
		}
	}
	// Window overhanging the grid: spans clip to the window box.
	for _, s := range ix.WindowSpans(-16, -16, 300, 300) {
		if s.X0 < 0 || s.Y0 < 0 || s.X1 > 300 || s.Y1 > 300 || s.X0 >= s.X1 || s.Y0 >= s.Y1 {
			t.Fatalf("span %+v escapes window-local box", s)
		}
	}
	if got := ix.WindowSpans(0, 1000, 32, 32); got != nil {
		t.Fatalf("off-grid spans = %+v, want nil", got)
	}
}
