// Package layout provides target-pattern handling: a small text format for
// rectilinear layouts (GLP-style), center-sample rasterization onto
// simulation grids, and a deterministic generator that synthesizes an
// ICCAD-2013-like benchmark suite whose per-case polygon areas match the
// paper's Table 2 exactly.
package layout

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"cfaopc/internal/grid"
)

// Rect is an axis-aligned rectangle in integer nanometers: [X, X+W) ×
// [Y, Y+H) with the origin at the tile's top-left corner.
type Rect struct{ X, Y, W, H int }

// Area returns the rectangle area in nm².
func (r Rect) Area() int { return r.W * r.H }

// Layout is one target tile: a set of foreground rectangles. Rectangles
// may touch (to build L/T shapes) but are assumed not to overlap, so Area
// is their sum.
type Layout struct {
	Name   string
	TileNM int
	Rects  []Rect
}

// Area returns the total polygon area in nm².
func (l *Layout) Area() int {
	a := 0
	for _, r := range l.Rects {
		a += r.Area()
	}
	return a
}

// Validate checks rectangles are positive-sized, inside the tile, and
// mutually non-overlapping.
func (l *Layout) Validate() error {
	if l.TileNM <= 0 {
		return fmt.Errorf("layout %q: non-positive tile size %d", l.Name, l.TileNM)
	}
	for i, r := range l.Rects {
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("layout %q: rect %d has non-positive size", l.Name, i)
		}
		if r.X < 0 || r.Y < 0 || r.X+r.W > l.TileNM || r.Y+r.H > l.TileNM {
			return fmt.Errorf("layout %q: rect %d out of tile bounds", l.Name, i)
		}
		for j := i + 1; j < len(l.Rects); j++ {
			s := l.Rects[j]
			if r.X < s.X+s.W && s.X < r.X+r.W && r.Y < s.Y+s.H && s.Y < r.Y+r.H {
				return fmt.Errorf("layout %q: rects %d and %d overlap", l.Name, i, j)
			}
		}
	}
	return nil
}

// Rasterize samples the layout onto an n×n grid covering the full tile:
// a pixel is foreground when its center lies inside a rectangle (centers
// at (i+0.5)·dx ∈ [X, X+W)). At 1 nm/px this reproduces the polygon area
// exactly. RasterizeWindow produces any sub-window of this grid without
// allocating it.
func (l *Layout) Rasterize(n int) *grid.Real {
	if n <= 0 {
		panic(fmt.Sprintf("layout: invalid grid size %d", n))
	}
	m := grid.NewReal(n, n)
	for _, r := range l.Rects {
		s, ok := l.span(r, n)
		if !ok {
			continue
		}
		fillSpan(m, s, 0, 0)
	}
	return m
}

// ceilDiv returns the smallest integer i with (i+0.5)·dx ≥ v, i.e. the
// first pixel whose center is at or beyond coordinate v.
func ceilDiv(v, dx float64) float64 {
	i := (v/dx - 0.5)
	n := float64(int(i))
	for n < i {
		n++
	}
	return n
}

// Write emits the layout in the text format read by Parse:
//
//	# optional comments
//	NAME case1
//	TILE 2048
//	RECT x y w h
func (l *Layout) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# cfaopc layout, area=%d nm2\n", l.Area())
	if l.Name != "" {
		fmt.Fprintf(bw, "NAME %s\n", l.Name)
	}
	fmt.Fprintf(bw, "TILE %d\n", l.TileNM)
	for _, r := range l.Rects {
		fmt.Fprintf(bw, "RECT %d %d %d %d\n", r.X, r.Y, r.W, r.H)
	}
	return bw.Flush()
}

// Parse reads the layout text format produced by Write. Unknown directives
// are an error; blank lines and # comments are skipped.
func Parse(r io.Reader) (*Layout, error) {
	l := &Layout{TileNM: 2048}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "NAME":
			if len(fields) != 2 {
				return nil, fmt.Errorf("layout: line %d: NAME needs one argument", lineNo)
			}
			l.Name = fields[1]
		case "TILE":
			if len(fields) != 2 {
				return nil, fmt.Errorf("layout: line %d: TILE needs one argument", lineNo)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &l.TileNM); err != nil {
				return nil, fmt.Errorf("layout: line %d: bad TILE value %q", lineNo, fields[1])
			}
		case "RECT":
			if len(fields) != 5 {
				return nil, fmt.Errorf("layout: line %d: RECT needs four arguments", lineNo)
			}
			var rc Rect
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d %d",
				&rc.X, &rc.Y, &rc.W, &rc.H); err != nil {
				return nil, fmt.Errorf("layout: line %d: bad RECT values", lineNo)
			}
			l.Rects = append(l.Rects, rc)
		default:
			return nil, fmt.Errorf("layout: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
