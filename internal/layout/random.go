package layout

import (
	"fmt"
	"math/rand"
)

// RandomConfig controls the randomized layout generator, the stress-test
// companion to the fixed benchmark suite.
type RandomConfig struct {
	TileNM     int   // tile edge (default 2048)
	Features   int   // bars to place (default 8)
	WidthsNM   []int // candidate bar widths (default 60–120)
	MinLenNM   int   // bar length lower bound (default 200)
	MaxLenNM   int   // bar length upper bound (default 700)
	SpacingNM  int   // minimum clearance between features (default 80)
	MarginNM   int   // keep-out from the tile border (default 256)
	MaxRetries int   // placement attempts per feature (default 64)
}

func (c *RandomConfig) fillDefaults() {
	if c.TileNM == 0 {
		c.TileNM = 2048
	}
	if c.Features == 0 {
		c.Features = 8
	}
	if len(c.WidthsNM) == 0 {
		c.WidthsNM = []int{60, 80, 100, 120}
	}
	if c.MinLenNM == 0 {
		c.MinLenNM = 200
	}
	if c.MaxLenNM == 0 {
		c.MaxLenNM = 700
	}
	if c.SpacingNM == 0 {
		c.SpacingNM = 80
	}
	if c.MarginNM == 0 {
		c.MarginNM = 256
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 64
	}
}

// GenerateRandom produces a random but always-valid layout: bars (both
// orientations) rejection-sampled until they respect spacing and margins.
// The same seed always yields the same layout. Fewer than cfg.Features
// bars may be placed when the tile is too crowded; the result is still
// valid.
func GenerateRandom(seed int64, cfg RandomConfig) *Layout {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(seed))
	l := &Layout{Name: fmt.Sprintf("rand%d", seed), TileNM: cfg.TileNM}
	clearance := cfg.SpacingNM
	fits := func(c Rect) bool {
		if c.X < cfg.MarginNM || c.Y < cfg.MarginNM ||
			c.X+c.W > cfg.TileNM-cfg.MarginNM || c.Y+c.H > cfg.TileNM-cfg.MarginNM {
			return false
		}
		for _, o := range l.Rects {
			if c.X < o.X+o.W+clearance && o.X < c.X+c.W+clearance &&
				c.Y < o.Y+o.H+clearance && o.Y < c.Y+c.H+clearance {
				return false
			}
		}
		return true
	}
	span := cfg.TileNM - 2*cfg.MarginNM
	for f := 0; f < cfg.Features; f++ {
		for try := 0; try < cfg.MaxRetries; try++ {
			w := cfg.WidthsNM[rng.Intn(len(cfg.WidthsNM))]
			length := cfg.MinLenNM + rng.Intn(cfg.MaxLenNM-cfg.MinLenNM+1)
			r := Rect{
				X: cfg.MarginNM + rng.Intn(span),
				Y: cfg.MarginNM + rng.Intn(span),
			}
			if rng.Intn(2) == 0 {
				r.W, r.H = w, length // vertical bar
			} else {
				r.W, r.H = length, w // horizontal bar
			}
			if fits(r) {
				l.Rects = append(l.Rects, r)
				break
			}
		}
	}
	if err := l.Validate(); err != nil {
		panic(fmt.Sprintf("layout: random generator produced invalid layout: %v", err))
	}
	return l
}
