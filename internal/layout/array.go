package layout

import "fmt"

// ArrayConfig controls the repeated-cell layout generator, the dedup
// stress companion to the fixed suite: an R×C array of pixel-identical
// cells is the best case for the window cache, and the margins below
// are chosen so every cell window really is pixel-identical.
type ArrayConfig struct {
	TileNM   int // tile edge (default 2048)
	PitchXNM int // horizontal cell pitch (default TileNM/cols)
	PitchYNM int // vertical cell pitch (default TileNM/rows)
	// CellRects is the motif repeated at every cell, in cell-local nm
	// coordinates within [0, PitchX) × [0, PitchY). The default is a
	// two-bar motif inset by a quarter pitch on every side, so a window
	// whose halo stays under that margin sees nothing of the neighbor
	// cells and all cell windows hash identically.
	CellRects []Rect
}

func (c *ArrayConfig) fillDefaults(rows, cols int) {
	if c.TileNM == 0 {
		c.TileNM = 2048
	}
	if c.PitchXNM == 0 {
		c.PitchXNM = c.TileNM / cols
	}
	if c.PitchYNM == 0 {
		c.PitchYNM = c.TileNM / rows
	}
	if len(c.CellRects) == 0 {
		p := c.PitchXNM
		if c.PitchYNM < p {
			p = c.PitchYNM
		}
		m := p / 4 // margin: keeps halos ≤ m blind to neighbors
		c.CellRects = []Rect{
			{X: m, Y: m, W: p / 2, H: p / 8},
			{X: m, Y: p / 2, W: p / 8, H: p / 4},
		}
	}
}

// GenerateArray produces a rows×cols array of one repeated cell — the
// memory-array / std-cell-row regularity real masks have and the window
// dedup cache exploits. Cells are placed at (col·PitchX, row·PitchY);
// cells that would overhang the tile are skipped so the layout always
// validates. Panics on non-positive dimensions or an invalid motif,
// since every caller passes constants.
func GenerateArray(rows, cols int, cfg ArrayConfig) *Layout {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("layout: invalid array %dx%d", rows, cols))
	}
	cfg.fillDefaults(rows, cols)
	l := &Layout{Name: fmt.Sprintf("array%dx%d", rows, cols), TileNM: cfg.TileNM}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ox, oy := c*cfg.PitchXNM, r*cfg.PitchYNM
			for _, cr := range cfg.CellRects {
				rect := Rect{X: ox + cr.X, Y: oy + cr.Y, W: cr.W, H: cr.H}
				if rect.X+rect.W > cfg.TileNM || rect.Y+rect.H > cfg.TileNM {
					continue
				}
				l.Rects = append(l.Rects, rect)
			}
		}
	}
	if err := l.Validate(); err != nil {
		panic(fmt.Sprintf("layout: array generator produced invalid layout: %v", err))
	}
	return l
}
