package layout

import (
	"fmt"
	"math/rand"
)

// PaperAreas lists the per-case polygon areas (nm²) from Table 2 of the
// paper; the synthetic suite reproduces them exactly.
var PaperAreas = []int{
	215344, 169280, 213504, 82560, 281958,
	286234, 229149, 128544, 317581, 102400,
}

// GenerateSuite synthesizes the ten-case benchmark suite. The real
// ICCAD-2013 layouts are proprietary contest data, so each case is a
// deterministic 32nm-node-style metal pattern — vertical bars with optional
// hammer heads in the central region of a 2048 nm tile — whose total
// polygon area equals the corresponding PaperAreas entry. Case 10 is a
// single 320×320 square (the published area is exactly 320²).
func GenerateSuite() []*Layout {
	suite := make([]*Layout, len(PaperAreas))
	for i, area := range PaperAreas {
		suite[i] = generateCase(i+1, area)
	}
	return suite
}

func generateCase(id, area int) *Layout {
	l := &Layout{Name: fmt.Sprintf("case%d", id), TileNM: 2048}
	if area == 102400 { // case10: one 320×320 block, centered
		l.Rects = append(l.Rects, Rect{X: 864, Y: 864, W: 320, H: 320})
		mustValidate(l, area)
		return l
	}

	rng := rand.New(rand.NewSource(int64(1000 + id)))
	nBars := area/60000 + 1
	if nBars < 3 {
		nBars = 3
	}
	if nBars > 5 {
		nBars = 5
	}
	widths := []int{60, 80, 100, 120}

	remaining := area
	for k := 0; k < nBars-1; k++ {
		laneX := 480 + 200*k
		w := widths[rng.Intn(len(widths))]
		barArea := area / nBars
		var headRect *Rect
		y0 := 480 + rng.Intn(100)
		if rng.Float64() < 0.4 {
			// Hammer head: a wider block touching the bar's top.
			hw, hh := w+40, 60
			headRect = &Rect{X: laneX - 20, Y: y0, W: hw, H: hh}
			barArea -= hw * hh
		}
		lenNM := barArea / w
		if lenNM < 150 {
			lenNM = 150
		}
		if lenNM > 900 {
			lenNM = 900
		}
		barY := y0
		if headRect != nil {
			barY = y0 + headRect.H
			l.Rects = append(l.Rects, *headRect)
		}
		bar := Rect{X: laneX, Y: barY, W: w, H: lenNM}
		l.Rects = append(l.Rects, bar)
		remaining -= bar.Area()
		if headRect != nil {
			remaining -= headRect.Area()
		}
	}

	// Final lane absorbs the exact remainder: an 80 nm bar plus, when the
	// remainder is not a multiple of 80, a thin jog strip flush against the
	// bar's bottom edge so the polygon area matches the paper to the nm².
	laneX := 480 + 200*(nBars-1)
	const w = 80
	lenNM := remaining / w
	rem := remaining % w
	y0 := 520
	l.Rects = append(l.Rects, Rect{X: laneX, Y: y0, W: w, H: lenNM})
	if rem > 0 {
		l.Rects = append(l.Rects, Rect{X: laneX, Y: y0 + lenNM, W: rem, H: 1})
	}
	mustValidate(l, area)
	return l
}

func mustValidate(l *Layout, wantArea int) {
	if err := l.Validate(); err != nil {
		panic(fmt.Sprintf("layout: generated suite invalid: %v", err))
	}
	if got := l.Area(); got != wantArea {
		panic(fmt.Sprintf("layout: %s area %d != target %d", l.Name, got, wantArea))
	}
}
