package layout

import (
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
)

// extractRef copies the w×h window at (x0, y0) out of a full raster —
// the reference the streaming rasterizer must match byte for byte (the
// same extraction rule the flow used before it streamed windows).
func extractRef(full *grid.Real, x0, y0, w, h int) (*grid.Real, bool) {
	out := grid.NewReal(w, h)
	occupied := false
	for y := 0; y < h; y++ {
		fy := y0 + y
		if fy < 0 || fy >= full.H {
			continue
		}
		for x := 0; x < w; x++ {
			fx := x0 + x
			if fx < 0 || fx >= full.W {
				continue
			}
			v := full.Data[fy*full.W+fx]
			out.Data[y*w+x] = v
			if v > 0.5 {
				occupied = true
			}
		}
	}
	return out, occupied
}

// checkWindow compares RasterizeWindow and WindowIndex.Window against the
// full-raster extraction for one window.
func checkWindow(t *testing.T, l *Layout, ix *WindowIndex, full *grid.Real, n, x0, y0, w, h int) {
	t.Helper()
	wantGrid, wantOcc := extractRef(full, x0, y0, w, h)
	direct, dOcc := l.RasterizeWindow(n, x0, y0, w, h)
	if dOcc != wantOcc {
		t.Fatalf("RasterizeWindow(%d, %d, %d, %d, %d) occupied = %v, want %v", n, x0, y0, w, h, dOcc, wantOcc)
	}
	if direct.SqDiff(wantGrid) != 0 {
		t.Fatalf("RasterizeWindow(%d, %d, %d, %d, %d) differs from full-raster extraction", n, x0, y0, w, h)
	}
	indexed, iOcc := ix.Window(x0, y0, w, h)
	if iOcc != wantOcc {
		t.Fatalf("WindowIndex.Window(%d, %d, %d, %d) occupied = %v, want %v", x0, y0, w, h, iOcc, wantOcc)
	}
	if indexed.SqDiff(wantGrid) != 0 {
		t.Fatalf("WindowIndex.Window(%d, %d, %d, %d) differs from full-raster extraction", x0, y0, w, h)
	}
}

// TestRasterizeWindowBorderCases is the table-driven suite: interior,
// seam-straddling, negative-origin, overhanging, off-grid and
// whole-grid windows over a layout with sub-pixel rect edges.
func TestRasterizeWindowBorderCases(t *testing.T) {
	l := &Layout{
		Name:   "edges",
		TileNM: 1000, // 1000/64 px → non-integer nm-per-px, exercises ceilDiv
		Rects: []Rect{
			{X: 0, Y: 0, W: 90, H: 70},     // touches the grid origin
			{X: 905, Y: 930, W: 95, H: 70}, // touches the far corner
			{X: 480, Y: 100, W: 40, H: 800},
			{X: 100, Y: 490, W: 380, H: 20}, // abuts the vertical bar: a cross built from touching rects
			{X: 520, Y: 490, W: 380, H: 20},
		},
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	const n = 64
	full := l.Rasterize(n)
	ix := NewWindowIndex(l, n)
	cases := []struct{ x0, y0, w, h int }{
		{0, 0, n, n},      // whole grid
		{10, 10, 16, 16},  // interior
		{-8, -8, 24, 24},  // negative origin halo
		{56, 56, 24, 24},  // overhangs bottom-right
		{-100, 0, 20, 20}, // fully left of grid
		{0, n + 5, 8, 8},  // fully below grid
		{30, -4, 12, 40},  // vertical strip through the cross
		{0, 28, n, 8},     // wide short band over the horizontal bar
		{63, 63, 1, 1},    // single far-corner pixel
		{0, 0, 1, 1},      // single origin pixel
	}
	for _, c := range cases {
		checkWindow(t, l, ix, full, n, c.x0, c.y0, c.w, c.h)
	}
}

// TestRasterizeWindowProperty is the randomized equivalence property:
// for random layouts, grid sizes and window geometries (including
// windows hanging off every edge), RasterizeWindow and the span index
// reproduce the full-raster extraction exactly.
func TestRasterizeWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	grids := []int{17, 64, 128, 257}
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		l := GenerateRandom(int64(trial), RandomConfig{
			TileNM:   1024 + 512*(trial%3),
			Features: 3 + trial%8,
			MarginNM: 64,
		})
		n := grids[trial%len(grids)]
		full := l.Rasterize(n)
		ix := NewWindowIndex(l, n)
		for q := 0; q < 16; q++ {
			w := 1 + rng.Intn(n+20)
			h := 1 + rng.Intn(n+20)
			x0 := rng.Intn(n+2*w) - w
			y0 := rng.Intn(n+2*h) - h
			checkWindow(t, l, ix, full, n, x0, y0, w, h)
		}
	}
}

// TestWindowIndexBytes pins the accounting used by flow.Result.PeakBytes.
func TestWindowIndexBytes(t *testing.T) {
	l := GenerateRandom(3, RandomConfig{Features: 6})
	ix := NewWindowIndex(l, 256)
	if ix.N() != 256 {
		t.Fatalf("N = %d", ix.N())
	}
	if ix.Bytes() <= 0 {
		t.Fatalf("Bytes = %d, want > 0", ix.Bytes())
	}
	empty := NewWindowIndex(&Layout{Name: "empty", TileNM: 2048}, 256)
	if got, _ := empty.Window(0, 0, 64, 64); got.Sum() != 0 {
		t.Fatal("empty layout produced foreground")
	}
}

// FuzzRasterizeWindow drives the equivalence property from fuzzed window
// geometry and layout seeds: whatever the fuzzer picks, the streamed
// window must equal the full-raster extraction.
func FuzzRasterizeWindow(f *testing.F) {
	f.Add(int64(1), 64, 0, 0, 64, 64)        // whole grid
	f.Add(int64(2), 128, -16, -16, 48, 48)   // negative origin
	f.Add(int64(3), 100, 90, 90, 40, 40)     // overhang
	f.Add(int64(4), 33, 5, -7, 1, 90)        // tall sliver, odd grid
	f.Add(int64(5), 256, 1000, 1000, 16, 16) // fully off-grid
	f.Fuzz(func(t *testing.T, seed int64, n, x0, y0, w, h int) {
		if n < 1 || n > 300 || w < 1 || w > 400 || h < 1 || h > 400 {
			return
		}
		if x0 < -2*n || x0 > 2*n || y0 < -2*n || y0 > 2*n {
			return
		}
		l := GenerateRandom(seed, RandomConfig{Features: 4, MarginNM: 64})
		full := l.Rasterize(n)
		wantGrid, wantOcc := extractRef(full, x0, y0, w, h)
		got, occ := l.RasterizeWindow(n, x0, y0, w, h)
		if occ != wantOcc || got.SqDiff(wantGrid) != 0 {
			t.Fatalf("RasterizeWindow(%d, %d, %d, %d, %d) seed %d diverges from full raster", n, x0, y0, w, h, seed)
		}
		ix := NewWindowIndex(l, n)
		got, occ = ix.Window(x0, y0, w, h)
		if occ != wantOcc || got.SqDiff(wantGrid) != 0 {
			t.Fatalf("WindowIndex.Window(%d, %d, %d, %d) seed %d diverges from full raster", x0, y0, w, h, seed)
		}
	})
}
