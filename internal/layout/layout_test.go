package layout

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	good := &Layout{Name: "ok", TileNM: 100, Rects: []Rect{{10, 10, 20, 20}, {40, 10, 20, 20}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	cases := []*Layout{
		{Name: "neg", TileNM: 100, Rects: []Rect{{10, 10, 0, 5}}},
		{Name: "oob", TileNM: 100, Rects: []Rect{{90, 90, 20, 20}}},
		{Name: "overlap", TileNM: 100, Rects: []Rect{{10, 10, 30, 30}, {20, 20, 30, 30}}},
		{Name: "tile", TileNM: 0},
	}
	for _, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %q passed validation", l.Name)
		}
	}
	// Touching rects are allowed (L-shapes).
	touch := &Layout{Name: "touch", TileNM: 100, Rects: []Rect{{10, 10, 20, 20}, {10, 30, 20, 20}}}
	if err := touch.Validate(); err != nil {
		t.Fatalf("touching rects rejected: %v", err)
	}
}

func TestRasterizeExactAtOneNM(t *testing.T) {
	l := &Layout{Name: "t", TileNM: 64, Rects: []Rect{{5, 7, 11, 13}, {30, 30, 8, 8}}}
	m := l.Rasterize(64)
	if got, want := int(m.Sum()), l.Area(); got != want {
		t.Fatalf("raster area %d != polygon area %d", got, want)
	}
	// Check exact placement of one rect.
	if m.At(5, 7) != 1 || m.At(15, 19) != 1 || m.At(16, 7) != 0 || m.At(5, 20) != 0 {
		t.Fatal("raster boundary misplaced")
	}
}

func TestRasterizeCoarse(t *testing.T) {
	l := &Layout{Name: "t", TileNM: 64, Rects: []Rect{{8, 8, 32, 32}}}
	m := l.Rasterize(16) // 4 nm/px
	// 32nm square → 8×8 px = 64 px.
	if got := int(m.Sum()); got != 64 {
		t.Fatalf("coarse raster = %d px, want 64", got)
	}
}

func TestWriteParseRoundtrip(t *testing.T) {
	l := &Layout{Name: "case7", TileNM: 2048, Rects: []Rect{{480, 520, 80, 300}, {680, 500, 100, 250}}}
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != l.Name || got.TileNM != l.TileNM || len(got.Rects) != len(l.Rects) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i := range l.Rects {
		if got.Rects[i] != l.Rects[i] {
			t.Fatalf("rect %d mismatch: %v vs %v", i, got.Rects[i], l.Rects[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":   "FOO 1 2\n",
		"bad rect arity":      "RECT 1 2 3\n",
		"bad rect value":      "RECT a b c d\n",
		"bad tile":            "TILE abc\n",
		"name arity":          "NAME\n",
		"overlapping content": "TILE 100\nRECT 10 10 30 30\nRECT 20 20 30 30\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	text := "# header\n\nNAME x\nTILE 100\n# inner\nRECT 1 1 5 5\n"
	l, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "x" || len(l.Rects) != 1 {
		t.Fatalf("parsed %+v", l)
	}
}

func TestGenerateSuiteAreasMatchPaper(t *testing.T) {
	suite := GenerateSuite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d cases", len(suite))
	}
	for i, l := range suite {
		if err := l.Validate(); err != nil {
			t.Errorf("%s invalid: %v", l.Name, err)
		}
		if got, want := l.Area(), PaperAreas[i]; got != want {
			t.Errorf("%s area %d, want %d", l.Name, got, want)
		}
		if l.TileNM != 2048 {
			t.Errorf("%s tile %d, want 2048", l.Name, l.TileNM)
		}
	}
}

func TestGenerateSuiteDeterministic(t *testing.T) {
	a := GenerateSuite()
	b := GenerateSuite()
	for i := range a {
		if len(a[i].Rects) != len(b[i].Rects) {
			t.Fatalf("case %d not deterministic", i+1)
		}
		for j := range a[i].Rects {
			if a[i].Rects[j] != b[i].Rects[j] {
				t.Fatalf("case %d rect %d differs between runs", i+1, j)
			}
		}
	}
}

func TestGenerateSuiteRasterizesExactAtFullRes(t *testing.T) {
	// At 1 nm/px the raster must reproduce the polygon area exactly.
	for _, l := range GenerateSuite()[:3] {
		m := l.Rasterize(2048)
		if got, want := int(m.Sum()), l.Area(); got != want {
			t.Fatalf("%s raster area %d != %d", l.Name, got, want)
		}
	}
}

func TestSuiteFeaturesInCentralRegion(t *testing.T) {
	for _, l := range GenerateSuite() {
		for _, r := range l.Rects {
			if r.X < 256 || r.Y < 256 || r.X+r.W > 1792 || r.Y+r.H > 1792 {
				t.Errorf("%s rect %+v outside central region", l.Name, r)
			}
		}
	}
}
