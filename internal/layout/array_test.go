package layout

import "testing"

func TestGenerateArrayValidAndDeterministic(t *testing.T) {
	a := GenerateArray(4, 6, ArrayConfig{})
	b := GenerateArray(4, 6, ArrayConfig{})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Name != "array4x6" {
		t.Fatalf("name %q", a.Name)
	}
	if len(a.Rects) != 4*6*2 {
		t.Fatalf("got %d rects, want %d", len(a.Rects), 4*6*2)
	}
	if len(a.Rects) != len(b.Rects) {
		t.Fatalf("non-deterministic rect count")
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatalf("rect %d differs between identical calls", i)
		}
	}
}

func TestGenerateArrayCellsPixelIdentical(t *testing.T) {
	// The whole point of the array mode: every cell window rasterizes to
	// the same bytes, so the dedup cache gets R·C−1 hits.
	const n, rows, cols = 256, 8, 8
	l := GenerateArray(rows, cols, ArrayConfig{TileNM: 1024})
	ix := NewWindowIndex(l, n)
	const core, halo = 32, 8
	win := core + 2*halo
	ref, occ := ix.Window(-halo, -halo, win, win)
	if !occ {
		t.Fatal("reference cell window unoccupied")
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m, occ := ix.Window(c*core-halo, r*core-halo, win, win)
			if !occ {
				t.Fatalf("cell (%d,%d) unoccupied", r, c)
			}
			for i := range m.Data {
				if m.Data[i] != ref.Data[i] {
					t.Fatalf("cell (%d,%d) pixel %d differs from reference", r, c, i)
				}
			}
		}
	}
}

func TestGenerateArraySkipsOverhangingCells(t *testing.T) {
	// A pitch that doesn't divide the tile drops the cells that would
	// overhang instead of producing an invalid layout.
	l := GenerateArray(3, 3, ArrayConfig{TileNM: 1000, PitchXNM: 400, PitchYNM: 400})
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l.Rects) >= 3*3*2 {
		t.Fatalf("expected overhanging cells to be dropped, got %d rects", len(l.Rects))
	}
	if len(l.Rects) == 0 {
		t.Fatal("no rects placed at all")
	}
}
