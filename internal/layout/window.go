package layout

import (
	"fmt"
	"sort"

	"cfaopc/internal/grid"
)

// pxSpan is one rectangle's half-open pixel footprint [X0, X1) × [Y0, Y1)
// on an n×n grid, clipped to the grid, in the same pixel-center
// convention Rasterize uses.
type pxSpan struct{ X0, X1, Y0, Y1 int }

// span computes r's clipped pixel span with exactly the arithmetic
// Rasterize uses, so a window rasterized from spans can never drift from
// the full-grid raster by even one pixel. ok is false when the clipped
// span is empty.
func (l *Layout) span(r Rect, n int) (pxSpan, bool) {
	dx := float64(l.TileNM) / float64(n)
	s := pxSpan{
		X0: int(ceilDiv(float64(r.X), dx)),
		X1: int(ceilDiv(float64(r.X+r.W), dx)),
		Y0: int(ceilDiv(float64(r.Y), dx)),
		Y1: int(ceilDiv(float64(r.Y+r.H), dx)),
	}
	if s.X0 < 0 {
		s.X0 = 0
	}
	if s.Y0 < 0 {
		s.Y0 = 0
	}
	if s.X1 > n {
		s.X1 = n
	}
	if s.Y1 > n {
		s.Y1 = n
	}
	return s, s.X0 < s.X1 && s.Y0 < s.Y1
}

// fillSpan paints the intersection of span s (full-grid pixel
// coordinates) with the w×h window at origin (x0, y0) and reports
// whether any pixel was painted. Painting is idempotent (pixels go to 1),
// so overlapping spans compose safely.
func fillSpan(m *grid.Real, s pxSpan, x0, y0 int) bool {
	cx0, cx1 := s.X0-x0, s.X1-x0
	cy0, cy1 := s.Y0-y0, s.Y1-y0
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx1 > m.W {
		cx1 = m.W
	}
	if cy1 > m.H {
		cy1 = m.H
	}
	if cx0 >= cx1 || cy0 >= cy1 {
		return false
	}
	for y := cy0; y < cy1; y++ {
		row := m.Data[y*m.W : y*m.W+m.W]
		for x := cx0; x < cx1; x++ {
			row[x] = 1
		}
	}
	return true
}

// RasterizeWindow rasterizes only the w×h pixel window at origin
// (x0, y0) of the n×n full-tile grid, directly from the rect geometry —
// no full-grid allocation. The origin may be negative and the window may
// overhang the grid; out-of-grid pixels stay empty. The result is
// byte-identical to extracting the same window out of Rasterize(n), and
// the bool reports whether any foreground pixel landed in the window.
func (l *Layout) RasterizeWindow(n, x0, y0, w, h int) (*grid.Real, bool) {
	if n <= 0 {
		panic(fmt.Sprintf("layout: invalid grid size %d", n))
	}
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("layout: invalid window %dx%d", w, h))
	}
	m := grid.NewReal(w, h)
	occupied := false
	for _, r := range l.Rects {
		s, ok := l.span(r, n)
		if !ok {
			continue
		}
		if fillSpan(m, s, x0, y0) {
			occupied = true
		}
	}
	return m, occupied
}

// indexBandRows is the row-bucket granularity of WindowIndex. Buckets
// much smaller than a typical tile row would only grow the index; much
// larger ones would scan rects far from the window.
const indexBandRows = 64

// WindowIndex accelerates repeated RasterizeWindow queries over one
// layout at a fixed grid size: every rect's pixel span is precomputed
// once and bucketed by horizontal row band, so rasterizing a window
// touches only the rects whose spans can overlap the window's rows —
// O(overlapping rects), not O(all rects). This is what lets the tiled
// flow stream windows instead of holding an O(n²) full-grid raster.
type WindowIndex struct {
	n        int
	bandRows int
	bands    [][]pxSpan
	spans    int // total bucketed span entries, for memory accounting
}

// NewWindowIndex builds the row-bucketed span index for l on an n×n grid.
func NewWindowIndex(l *Layout, n int) *WindowIndex {
	if n <= 0 {
		panic(fmt.Sprintf("layout: invalid grid size %d", n))
	}
	ix := &WindowIndex{n: n, bandRows: indexBandRows}
	nb := (n + ix.bandRows - 1) / ix.bandRows
	ix.bands = make([][]pxSpan, nb)
	for _, r := range l.Rects {
		s, ok := l.span(r, n)
		if !ok {
			continue
		}
		for b := s.Y0 / ix.bandRows; b <= (s.Y1-1)/ix.bandRows; b++ {
			ix.bands[b] = append(ix.bands[b], s)
			ix.spans++
		}
	}
	return ix
}

// N returns the grid size the index was built for.
func (ix *WindowIndex) N() int { return ix.n }

// Bytes estimates the index's resident size, for memory accounting.
func (ix *WindowIndex) Bytes() int64 {
	const spanBytes = 4 * 8 // four ints
	return int64(ix.spans)*spanBytes + int64(len(ix.bands))*24
}

// Occupancy returns the number of foreground pixels the w×h window at
// origin (x0, y0) would contain, without allocating the raster. For a
// validated layout (non-overlapping rects) the count is exact: the
// center-sample convention maps disjoint rects to disjoint pixel spans,
// so summing clipped span areas never double-counts. The occupancy scan
// is what the adaptive tiling plan is computed from, so it must agree
// with Window: occupancy zero if and only if Window reports unoccupied.
func (ix *WindowIndex) Occupancy(x0, y0, w, h int) int {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("layout: invalid window %dx%d", w, h))
	}
	gy0, gy1 := y0, y0+h
	if gy0 < 0 {
		gy0 = 0
	}
	if gy1 > ix.n {
		gy1 = ix.n
	}
	if gy0 >= gy1 {
		return 0
	}
	total := 0
	for b := gy0 / ix.bandRows; b <= (gy1-1)/ix.bandRows; b++ {
		lo, hi := b*ix.bandRows, (b+1)*ix.bandRows
		for _, s := range ix.bands[b] {
			// Clip rows to the bucket (spans repeat across buckets),
			// then to the window, then columns to the window ∩ grid.
			if s.Y0 < lo {
				s.Y0 = lo
			}
			if s.Y1 > hi {
				s.Y1 = hi
			}
			if s.Y0 < y0 {
				s.Y0 = y0
			}
			if s.Y1 > y0+h {
				s.Y1 = y0 + h
			}
			if s.X0 < x0 {
				s.X0 = x0
			}
			if s.X1 > x0+w {
				s.X1 = x0 + w
			}
			if s.X0 < s.X1 && s.Y0 < s.Y1 {
				total += (s.X1 - s.X0) * (s.Y1 - s.Y0)
			}
		}
	}
	return total
}

// Span is one owning rectangle's half-open pixel footprint
// [X0, X1) × [Y0, Y1) translated into window-local coordinates. It is
// the canonical geometry the window dedup cache hashes alongside the
// target raster: two windows over pixel-identical content produce
// identical span lists regardless of where they sit on the full grid.
type Span struct{ X0, X1, Y0, Y1 int }

// WindowSpans returns the canonical window-local footprint of every
// indexed rect that overlaps the w×h window at (x0, y0): clipped to the
// window ∩ grid, translated so the window origin is (0, 0), deduplicated
// (a rect bucketed into several row bands appears once), and sorted by
// (Y0, X0, Y1, X1). The result is independent of the index's internal
// bucket size, so it is a stable cache-key ingredient.
func (ix *WindowIndex) WindowSpans(x0, y0, w, h int) []Span {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("layout: invalid window %dx%d", w, h))
	}
	gy0, gy1 := y0, y0+h
	if gy0 < 0 {
		gy0 = 0
	}
	if gy1 > ix.n {
		gy1 = ix.n
	}
	if gy0 >= gy1 {
		return nil
	}
	seen := make(map[Span]struct{})
	var out []Span
	for b := gy0 / ix.bandRows; b <= (gy1-1)/ix.bandRows; b++ {
		for _, s := range ix.bands[b] {
			// Clip the FULL span (not the bucket-clipped one) to the
			// window so the same rect yields the same Span from every
			// bucket that lists it; the dedup map collapses repeats.
			c := Span{X0: s.X0 - x0, X1: s.X1 - x0, Y0: s.Y0 - y0, Y1: s.Y1 - y0}
			if c.X0 < 0 {
				c.X0 = 0
			}
			if c.Y0 < 0 {
				c.Y0 = 0
			}
			if c.X1 > w {
				c.X1 = w
			}
			if c.Y1 > h {
				c.Y1 = h
			}
			if c.X0 >= c.X1 || c.Y0 >= c.Y1 {
				continue
			}
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.Y1 != b.Y1 {
			return a.Y1 < b.Y1
		}
		return a.X1 < b.X1
	})
	return out
}

// Window rasterizes the w×h window at origin (x0, y0) using the span
// index. Semantics are identical to RasterizeWindow on the indexed
// layout and grid size.
func (ix *WindowIndex) Window(x0, y0, w, h int) (*grid.Real, bool) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("layout: invalid window %dx%d", w, h))
	}
	m := grid.NewReal(w, h)
	occupied := false
	gy0, gy1 := y0, y0+h
	if gy0 < 0 {
		gy0 = 0
	}
	if gy1 > ix.n {
		gy1 = ix.n
	}
	if gy0 >= gy1 {
		return m, false
	}
	for b := gy0 / ix.bandRows; b <= (gy1-1)/ix.bandRows; b++ {
		lo, hi := b*ix.bandRows, (b+1)*ix.bandRows
		for _, s := range ix.bands[b] {
			// Clip the span's rows to this bucket so a span listed in
			// several buckets paints each of its pixels exactly once.
			if s.Y0 < lo {
				s.Y0 = lo
			}
			if s.Y1 > hi {
				s.Y1 = hi
			}
			if fillSpan(m, s, x0, y0) {
				occupied = true
			}
		}
	}
	return m, occupied
}
