package layout

import (
	"fmt"

	"cfaopc/internal/grid"
)

// pxSpan is one rectangle's half-open pixel footprint [X0, X1) × [Y0, Y1)
// on an n×n grid, clipped to the grid, in the same pixel-center
// convention Rasterize uses.
type pxSpan struct{ X0, X1, Y0, Y1 int }

// span computes r's clipped pixel span with exactly the arithmetic
// Rasterize uses, so a window rasterized from spans can never drift from
// the full-grid raster by even one pixel. ok is false when the clipped
// span is empty.
func (l *Layout) span(r Rect, n int) (pxSpan, bool) {
	dx := float64(l.TileNM) / float64(n)
	s := pxSpan{
		X0: int(ceilDiv(float64(r.X), dx)),
		X1: int(ceilDiv(float64(r.X+r.W), dx)),
		Y0: int(ceilDiv(float64(r.Y), dx)),
		Y1: int(ceilDiv(float64(r.Y+r.H), dx)),
	}
	if s.X0 < 0 {
		s.X0 = 0
	}
	if s.Y0 < 0 {
		s.Y0 = 0
	}
	if s.X1 > n {
		s.X1 = n
	}
	if s.Y1 > n {
		s.Y1 = n
	}
	return s, s.X0 < s.X1 && s.Y0 < s.Y1
}

// fillSpan paints the intersection of span s (full-grid pixel
// coordinates) with the w×h window at origin (x0, y0) and reports
// whether any pixel was painted. Painting is idempotent (pixels go to 1),
// so overlapping spans compose safely.
func fillSpan(m *grid.Real, s pxSpan, x0, y0 int) bool {
	cx0, cx1 := s.X0-x0, s.X1-x0
	cy0, cy1 := s.Y0-y0, s.Y1-y0
	if cx0 < 0 {
		cx0 = 0
	}
	if cy0 < 0 {
		cy0 = 0
	}
	if cx1 > m.W {
		cx1 = m.W
	}
	if cy1 > m.H {
		cy1 = m.H
	}
	if cx0 >= cx1 || cy0 >= cy1 {
		return false
	}
	for y := cy0; y < cy1; y++ {
		row := m.Data[y*m.W : y*m.W+m.W]
		for x := cx0; x < cx1; x++ {
			row[x] = 1
		}
	}
	return true
}

// RasterizeWindow rasterizes only the w×h pixel window at origin
// (x0, y0) of the n×n full-tile grid, directly from the rect geometry —
// no full-grid allocation. The origin may be negative and the window may
// overhang the grid; out-of-grid pixels stay empty. The result is
// byte-identical to extracting the same window out of Rasterize(n), and
// the bool reports whether any foreground pixel landed in the window.
func (l *Layout) RasterizeWindow(n, x0, y0, w, h int) (*grid.Real, bool) {
	if n <= 0 {
		panic(fmt.Sprintf("layout: invalid grid size %d", n))
	}
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("layout: invalid window %dx%d", w, h))
	}
	m := grid.NewReal(w, h)
	occupied := false
	for _, r := range l.Rects {
		s, ok := l.span(r, n)
		if !ok {
			continue
		}
		if fillSpan(m, s, x0, y0) {
			occupied = true
		}
	}
	return m, occupied
}

// indexBandRows is the row-bucket granularity of WindowIndex. Buckets
// much smaller than a typical tile row would only grow the index; much
// larger ones would scan rects far from the window.
const indexBandRows = 64

// WindowIndex accelerates repeated RasterizeWindow queries over one
// layout at a fixed grid size: every rect's pixel span is precomputed
// once and bucketed by horizontal row band, so rasterizing a window
// touches only the rects whose spans can overlap the window's rows —
// O(overlapping rects), not O(all rects). This is what lets the tiled
// flow stream windows instead of holding an O(n²) full-grid raster.
type WindowIndex struct {
	n        int
	bandRows int
	bands    [][]pxSpan
	spans    int // total bucketed span entries, for memory accounting
}

// NewWindowIndex builds the row-bucketed span index for l on an n×n grid.
func NewWindowIndex(l *Layout, n int) *WindowIndex {
	if n <= 0 {
		panic(fmt.Sprintf("layout: invalid grid size %d", n))
	}
	ix := &WindowIndex{n: n, bandRows: indexBandRows}
	nb := (n + ix.bandRows - 1) / ix.bandRows
	ix.bands = make([][]pxSpan, nb)
	for _, r := range l.Rects {
		s, ok := l.span(r, n)
		if !ok {
			continue
		}
		for b := s.Y0 / ix.bandRows; b <= (s.Y1-1)/ix.bandRows; b++ {
			ix.bands[b] = append(ix.bands[b], s)
			ix.spans++
		}
	}
	return ix
}

// N returns the grid size the index was built for.
func (ix *WindowIndex) N() int { return ix.n }

// Bytes estimates the index's resident size, for memory accounting.
func (ix *WindowIndex) Bytes() int64 {
	const spanBytes = 4 * 8 // four ints
	return int64(ix.spans)*spanBytes + int64(len(ix.bands))*24
}

// Window rasterizes the w×h window at origin (x0, y0) using the span
// index. Semantics are identical to RasterizeWindow on the indexed
// layout and grid size.
func (ix *WindowIndex) Window(x0, y0, w, h int) (*grid.Real, bool) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("layout: invalid window %dx%d", w, h))
	}
	m := grid.NewReal(w, h)
	occupied := false
	gy0, gy1 := y0, y0+h
	if gy0 < 0 {
		gy0 = 0
	}
	if gy1 > ix.n {
		gy1 = ix.n
	}
	if gy0 >= gy1 {
		return m, false
	}
	for b := gy0 / ix.bandRows; b <= (gy1-1)/ix.bandRows; b++ {
		lo, hi := b*ix.bandRows, (b+1)*ix.bandRows
		for _, s := range ix.bands[b] {
			// Clip the span's rows to this bucket so a span listed in
			// several buckets paints each of its pixels exactly once.
			if s.Y0 < lo {
				s.Y0 = lo
			}
			if s.Y1 > hi {
				s.Y1 = hi
			}
			if fillSpan(m, s, x0, y0) {
				occupied = true
			}
		}
	}
	return m, occupied
}
