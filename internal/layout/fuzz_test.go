package layout

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse ensures the layout parser never panics and that anything it
// accepts survives a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("NAME x\nTILE 100\nRECT 1 1 5 5\n")
	f.Add("# comment\n\nTILE 2048\n")
	f.Add("RECT 0 0 0 0\n")
	f.Add("TILE -5\nRECT 1 1 2 2\n")
	f.Add("NAME \nRECT a b c d\n")
	f.Fuzz(func(t *testing.T, input string) {
		l, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := l.Write(&buf); err != nil {
			t.Fatalf("accepted layout failed to write: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted layout failed: %v", err)
		}
		if back.Area() != l.Area() {
			t.Fatalf("area changed in round trip: %d → %d", l.Area(), back.Area())
		}
	})
}
