package server

import (
	"bufio"
	"context"
	"fmt"

	"cfaopc/internal/engine"
	"cfaopc/internal/flow"
	"cfaopc/internal/fracture"
	"cfaopc/internal/grid"
	"cfaopc/internal/iox"
	"cfaopc/internal/layout"
	"cfaopc/internal/optics"
	"cfaopc/internal/wcache"
)

// RunOpts carries the per-invocation plumbing around a job spec: where
// to persist, where to stream, what to observe. The zero value runs
// the spec with no checkpoint, no mask file, and no observers.
type RunOpts struct {
	// Checkpoint journals completed tiles so an interrupted run
	// resumes byte-identically ("" = no journal).
	Checkpoint string
	// MaskPath streams the stitched mask there as a binary PGM in row
	// bands ("" = no mask file). On a resumed run the file is
	// rewritten from row zero; bands re-emit deterministically, so the
	// final bytes match an uninterrupted run.
	MaskPath string
	// ShotsPath writes the beam-ordered shot list as CSV after the
	// flow completes ("" = no shot file).
	ShotsPath string
	// Events observes the flow's heartbeats and tile completions; it
	// must never block (see flow.EventSink).
	Events flow.EventSink
	// OnBand is called after each mask band is durably flushed to
	// MaskPath, with the band's first row and row count.
	OnBand func(row, rows int)
	// Drain, when closed, stops dispatching new tiles; in-flight tiles
	// finish and checkpoint, and the run returns flow.ErrDrained.
	Drain <-chan struct{}
	// FS is the filesystem seam every artifact write goes through —
	// the flow checkpoint, quarantine bundles, the streamed mask PGM,
	// and the shot CSV. nil means the real filesystem.
	FS iox.FS
	// Cache is a shared window dedup cache for the run (nil = off).
	// Caching changes wall time only, never bytes, so daemon/CLI
	// artifact parity holds with or without it.
	Cache *wcache.Cache
}

// RunSpec executes a normalized job spec through the tiled flow. It is
// the one code path shared by the daemon and the cfaopc -job CLI mode,
// which is what makes "daemon output == direct CLI output" a
// byte-for-byte statement rather than a hope.
func RunSpec(ctx context.Context, l *layout.Layout, spec *JobSpec, o RunOpts) (*flow.Result, error) {
	engOpts := engine.Options{Iters: spec.Iters, Gamma: spec.Gamma, SampleNM: spec.SampleNM}
	optimize, err := engine.For(spec.Method, engOpts)
	if err != nil {
		return nil, err
	}
	dx := float64(l.TileNM) / float64(spec.GridN)
	cfg := flow.Config{
		GridN:       spec.GridN,
		CorePx:      spec.TileCore,
		HaloPx:      spec.TileHalo,
		Optics:      optics.Default(),
		KOpt:        spec.KOpt,
		TileWorkers: spec.TileWorkers,
		Optimize:    optimize,
		TileRetries: 1,
		// MRC radius window (12-76 nm) scaled to window pixels, with
		// the same tolerance band the CLI uses.
		RMinPx:         6 / dx,
		RMaxPx:         152 / dx,
		CheckpointPath: o.Checkpoint,
		FS:             o.FS,
		Cache:          o.Cache,
		PartialEvery:   spec.PartialEvery,
		KeepMask:       false, // the service product is shots + streamed bands
		Events:         o.Events,
		Drain:          o.Drain,
	}
	fbName := ""
	if spec.Fallback != "none" {
		fb, err := engine.For(spec.Fallback, engOpts)
		if err != nil {
			return nil, err
		}
		cfg.Fallback = fb
		fbName = spec.Fallback
	}
	cfg.Engines = engine.Meta(spec.Method, fbName, engOpts)

	var bands *bandFile
	if o.MaskPath != "" {
		bands, err = newBandFile(o.FS, o.MaskPath, spec.GridN, o.OnBand)
		if err != nil {
			return nil, err
		}
		cfg.MaskWriter = bands
	}

	res, err := flow.RunContext(ctx, l, cfg)
	if err != nil {
		if bands != nil {
			bands.abort()
		}
		return res, err
	}
	if bands != nil {
		if err := bands.Close(); err != nil {
			return res, err
		}
	}
	if o.ShotsPath != "" {
		shots := fracture.OrderShots(res.Shots)
		f, err := iox.OrOS(o.FS).Create(o.ShotsPath)
		if err != nil {
			return res, err
		}
		bw := bufio.NewWriter(f)
		if err := fracture.WriteShotsCSV(bw, shots, dx); err != nil {
			f.Close()
			return res, err
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return res, err
		}
		// The shot list is the product; it must be on the platter before
		// the caller records the job done.
		if err := f.Sync(); err != nil {
			f.Close()
			return res, err
		}
		if err := f.Close(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// bandFile streams the stitched mask to disk as a binary PGM (P5), one
// flow band at a time, flushing each band before reporting it so a
// follower reading the file never sees a partially written band it was
// told about. Bands arrive top-to-bottom; Close verifies every row
// landed.
type bandFile struct {
	f      iox.File
	w      *bufio.Writer
	n      int
	next   int // next expected global row
	buf    []byte
	onBand func(row, rows int)
}

func newBandFile(fsys iox.FS, path string, n int, onBand func(row, rows int)) (*bandFile, error) {
	f, err := iox.OrOS(fsys).Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", n, n); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return &bandFile{f: f, w: w, n: n, buf: make([]byte, n), onBand: onBand}, nil
}

func (p *bandFile) WriteBand(y0 int, band *grid.Real) error {
	if y0 != p.next || band.W != p.n {
		return fmt.Errorf("pgm: band at row %d (width %d), expected row %d width %d", y0, band.W, p.next, p.n)
	}
	for y := 0; y < band.H; y++ {
		for x := 0; x < p.n; x++ {
			if band.Data[y*p.n+x] > 0.5 {
				p.buf[x] = 255
			} else {
				p.buf[x] = 0
			}
		}
		if _, err := p.w.Write(p.buf); err != nil {
			return err
		}
	}
	if err := p.w.Flush(); err != nil {
		return err
	}
	p.next += band.H
	if p.onBand != nil {
		p.onBand(y0, band.H)
	}
	return nil
}

func (p *bandFile) Close() error {
	if p.next != p.n {
		p.f.Close()
		return fmt.Errorf("pgm: only %d of %d rows streamed", p.next, p.n)
	}
	if err := p.w.Flush(); err != nil {
		p.f.Close()
		return err
	}
	// Per-band flushes make rows visible to followers; this final fsync
	// makes the finished mask crash-durable before the job is recorded
	// done.
	if err := p.f.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}

// abort releases the file handle after a failed run without enforcing
// the all-rows-landed contract; the partial file is left for the
// resumed run to rewrite from row zero.
func (p *bandFile) abort() { p.f.Close() }
