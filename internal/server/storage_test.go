package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cfaopc/internal/iox"
)

// storageSpecJSON is the daemon job the storage harnesses run:
// tile_workers 1 so the recorder sees a deterministic global write
// order, and small enough that dozens of full runs cost seconds.
const storageSpecJSON = `{"layout":"t.glp","grid":128,"tile_core":64,"iters":2,"kopt":3,"tile_workers":1}`

// fixedNow pins jobRecord timestamps so journal record lengths are
// identical between a reference run and a fault run — which is what
// lets a test place a write budget between two specific records.
func fixedNow() time.Time { return time.Unix(1_700_000_000, 0).UTC() }

func storageManager(t *testing.T, dataDir, layoutRoot string, fsys iox.FS) *Manager {
	t.Helper()
	m, err := NewManager(ManagerConfig{
		DataDir:    dataDir,
		LayoutRoot: layoutRoot,
		FS:         fsys,
		Now:        fixedNow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitTerminal blocks until the job's stream delivers a terminal state
// event or the hub shuts the stream (an event-journal death ends a
// stream without one), then returns the job's status.
func waitTerminal(t *testing.T, m *Manager, id string) JobStatus {
	t.Helper()
	sub, err := m.Subscribe(id, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(id, sub)
	deadline := time.Now().Add(60 * time.Second)
	for {
		evs, _ := sub.drain()
		for _, ev := range evs {
			if ev.Kind == "state" && JobState(ev.State).terminal() {
				st, err := m.Status(id)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
		}
		if sub.isShut() {
			st, err := m.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			if !st.State.terminal() {
				t.Fatalf("stream ended but job %s is %s", id, st.State)
			}
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached a terminal state", id)
		}
		select {
		case <-sub.wait():
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// replaySeqs subscribes from zero, asserts the replayed stream is
// seq-contiguous from 1, and returns it.
func replaySeqs(t *testing.T, m *Manager, id string) []JobEvent {
	t.Helper()
	sub, err := m.Subscribe(id, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(id, sub)
	evs, _ := sub.drain()
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("replay position %d has seq %d: stream not contiguous", i, ev.Seq)
		}
	}
	return evs
}

// TestJobsLogENOSPCFailsCleanly: running out of disk on jobs.log never
// corrupts the daemon. A submit whose queued record cannot be
// journaled is rejected whole (no ghost job, no orphan journal); a job
// whose running record cannot be journaled fails cleanly and — because
// jobs.log still ends at its queued record — resumes to completion on
// a healthy restart.
func TestJobsLogENOSPCFailsCleanly(t *testing.T) {
	lroot := testLayoutRoot(t)
	spec, err := parseSpecString(t, storageSpecJSON)
	if err != nil {
		t.Fatal(err)
	}

	// Size the journal header and the queued record on a clean run.
	refDir := filepath.Join(t.TempDir(), "data")
	mref := storageManager(t, refDir, lroot, nil)
	fi, err := os.Stat(filepath.Join(refDir, "jobs.log"))
	if err != nil {
		t.Fatal(err)
	}
	hdrSize := fi.Size()
	if _, err := mref.Submit(spec); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(filepath.Join(refDir, "jobs.log"))
	if err != nil {
		t.Fatal(err)
	}
	afterQueued := fi.Size()
	mref.Stop()

	t.Run("submit-rejected", func(t *testing.T) {
		dataDir := filepath.Join(t.TempDir(), "data")
		ff := iox.NewFaultFS(nil, iox.Plan{WriteBudget: hdrSize + 4, PathSubstr: "jobs.log"})
		m := storageManager(t, dataDir, lroot, ff)
		if _, err := m.Submit(spec); err == nil {
			t.Fatal("submit succeeded with an unjournalable queued record")
		}
		if n := len(m.List()); n != 0 {
			t.Fatalf("%d ghost jobs after a rejected submit", n)
		}
		if d := m.QueueDepth(); d != 0 {
			t.Fatalf("queue depth %d after a rejected submit", d)
		}
		h := m.StorageHealth()
		if h.JobsLogErr == "" || h.RecordErrs == 0 {
			t.Fatalf("degradation not surfaced: %+v", h)
		}
		// The orphaned event journal was removed with the rejection.
		if _, err := os.Stat(filepath.Join(dataDir, "jobs", "job-0000", "events.log")); !iox.IsNotExist(err) {
			t.Fatalf("orphan events.log after rejected submit: %v", err)
		}
		m.Stop()
		// A healthy restart resurrects nothing: the torn queued record is
		// a dropped tail, not a job.
		m2 := storageManager(t, dataDir, lroot, nil)
		defer m2.Stop()
		if n := len(m2.List()); n != 0 {
			t.Fatalf("restart resurrected %d jobs from a rejected submit", n)
		}
	})

	t.Run("running-record-fails-job", func(t *testing.T) {
		dataDir := filepath.Join(t.TempDir(), "data")
		ff := iox.NewFaultFS(nil, iox.Plan{WriteBudget: afterQueued + 4, PathSubstr: "jobs.log"})
		m := storageManager(t, dataDir, lroot, ff)
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		m.Start()
		fin := waitTerminal(t, m, st.ID)
		if fin.State != JobFailed || !strings.Contains(fin.Error, "job journal") {
			t.Fatalf("job ended %s (%q), want failed with a job journal error", fin.State, fin.Error)
		}
		if h := m.StorageHealth(); h.RecordErrs == 0 || h.JobsLogErr == "" {
			t.Fatalf("degradation not surfaced: %+v", h)
		}
		m.Stop()
		// Healthy restart: jobs.log still ends at the queued record (the
		// torn running record is dropped), so the job requeues and runs
		// to done.
		m2 := storageManager(t, dataDir, lroot, nil)
		defer m2.Stop()
		st2, err := m2.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st2.State != JobQueued {
			t.Fatalf("restart recovered job as %s, want queued", st2.State)
		}
		m2.Start()
		if fin2 := waitTerminal(t, m2, st.ID); fin2.State != JobDone {
			t.Fatalf("resumed job ended %s (%q), want done", fin2.State, fin2.Error)
		}
		replaySeqs(t, m2, st.ID)
	})
}

// TestEventJournalENOSPCFailsJobCleanly: mid-run ENOSPC on the per-job
// event journal ends the job as a clean failure — no subscriber ever
// sees an event that is not on disk, the live stream terminates
// instead of wedging, and a healthy restart drops the torn tail,
// synthesizes the missing terminal event from jobs.log, and replays
// seq-exact.
func TestEventJournalENOSPCFailsJobCleanly(t *testing.T) {
	lroot := testLayoutRoot(t)
	spec, err := parseSpecString(t, storageSpecJSON)
	if err != nil {
		t.Fatal(err)
	}

	// Reference run sizes the full event journal.
	refDir := filepath.Join(t.TempDir(), "data")
	mref := storageManager(t, refDir, lroot, nil)
	stRef, err := mref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	mref.Start()
	if fin := waitTerminal(t, mref, stRef.ID); fin.State != JobDone {
		t.Fatalf("reference job ended %s (%q)", fin.State, fin.Error)
	}
	mref.Stop()
	fi, err := os.Stat(mref.eventPath(stRef.ID))
	if err != nil {
		t.Fatal(err)
	}
	budget := fi.Size() / 2 // lands mid-run, past queued+running, before done

	dataDir := filepath.Join(t.TempDir(), "data")
	ff := iox.NewFaultFS(nil, iox.Plan{WriteBudget: budget, PathSubstr: "events.log"})
	m := storageManager(t, dataDir, lroot, ff)
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	live, err := m.Subscribe(st.ID, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	fin := waitTerminal(t, m, st.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "event journal") {
		t.Fatalf("job ended %s (%q), want failed with an event journal error", fin.State, fin.Error)
	}
	// The live subscriber's stream was shut; everything it saw is
	// contiguous and none of it is a terminal event (which could not be
	// made durable).
	deadline := time.Now().Add(10 * time.Second)
	for !live.isShut() {
		if time.Now().After(deadline) {
			t.Fatal("live stream never shut after the event journal died")
		}
		time.Sleep(10 * time.Millisecond)
	}
	evs, _ := live.drain()
	m.Unsubscribe(st.ID, live)
	if len(evs) == 0 {
		t.Fatal("live subscriber saw nothing; fault fired too early")
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("live stream position %d has seq %d", i, ev.Seq)
		}
		if ev.Kind == "state" && JobState(ev.State).terminal() {
			t.Fatal("a terminal event was visible despite the dead journal")
		}
	}
	if h := m.StorageHealth(); h.EventErrs == 0 {
		t.Fatalf("lost terminal event not counted: %+v", h)
	}
	if ff.Stats().Injected == 0 {
		t.Fatal("fault plan never fired")
	}
	m.Stop()

	// Healthy restart over the same data dir.
	m2 := storageManager(t, dataDir, lroot, nil)
	defer m2.Stop()
	st2, err := m2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobFailed {
		t.Fatalf("restart recovered job as %s, want failed", st2.State)
	}
	evs2 := replaySeqs(t, m2, st.ID)
	last := evs2[len(evs2)-1]
	if last.Kind != "state" || last.State != string(JobFailed) || last.Error == "" {
		t.Fatalf("replay does not end in the failed event: %+v", last)
	}
	// Every seq the live subscriber observed replays with identical
	// content — the fsync-before-fan-out guarantee.
	if len(evs2) < len(evs) {
		t.Fatalf("replay has %d events but a live client saw %d", len(evs2), len(evs))
	}
	for i, ev := range evs {
		if evs2[i] != ev {
			t.Fatalf("seq %d changed across restart:\n live %+v\nreplay %+v", ev.Seq, ev, evs2[i])
		}
	}
	if h := m2.StorageHealth(); h.SynthEvents != 1 {
		t.Fatalf("terminal event not synthesized exactly once: %+v", h)
	}
}

// TestStorageFaultMatrix drives a full daemon job under the CI fault
// matrix (IOFAULT=enospc|eio-sync|torn|rename). Invariant: whatever
// the fault hits, the job ends in a clean terminal state (or the
// submission is cleanly rejected), the daemon never wedges, and a
// healthy restart recovers every job with a seq-exact replay.
func TestStorageFaultMatrix(t *testing.T) {
	kind := os.Getenv("IOFAULT")
	if kind == "" {
		t.Skip("IOFAULT not set; run via the storage-fault matrix")
	}
	plan, err := iox.PlanForKind(kind)
	if err != nil {
		t.Fatal(err)
	}
	lroot := testLayoutRoot(t)
	spec, err := parseSpecString(t, storageSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	ff := iox.NewFaultFS(nil, plan)
	m, err := NewManager(ManagerConfig{DataDir: dataDir, LayoutRoot: lroot, FS: ff, Now: fixedNow})
	if err != nil {
		t.Logf("%s: manager construction cleanly refused: %v", kind, err)
		return
	}
	st, err := m.Submit(spec)
	if err != nil {
		t.Logf("%s: submission cleanly rejected: %v", kind, err)
		if n := len(m.List()); n != 0 {
			t.Fatalf("%d ghost jobs after rejection", n)
		}
		m.Stop()
	} else {
		m.Start()
		fin := waitTerminal(t, m, st.ID)
		if fin.State != JobDone && fin.State != JobFailed {
			t.Fatalf("job ended %s under %s", fin.State, kind)
		}
		t.Logf("%s: job ended %s (%q), faults %+v", kind, fin.State, fin.Error, ff.Stats())
		m.Stop()
	}

	// Healthy restart: recovery must succeed and every surviving job
	// must replay contiguously; an interrupted one must run to done.
	m2 := storageManager(t, dataDir, lroot, nil)
	defer m2.Stop()
	for _, j := range m2.List() {
		replaySeqs(t, m2, j.ID)
		if !j.State.terminal() {
			m2.Start()
			if fin := waitTerminal(t, m2, j.ID); fin.State != JobDone {
				t.Fatalf("recovered job ended %s (%q), want done", fin.State, fin.Error)
			}
			replaySeqs(t, m2, j.ID)
		}
	}
}

// TestCrashConsistencyDaemon is the daemon half of the tentpole
// harness: record every filesystem mutation of a complete daemon job —
// jobs.log, the event journal, the flow checkpoint, the mask and shot
// artifacts — then materialize EVERY write-op prefix (plus torn
// variants) as a crash state and recover a fresh Manager from it.
// Recovery must always construct, every event replay must be
// seq-contiguous, a job recovered as done must have byte-identical
// artifacts, and a job recovered mid-run must resume to the
// byte-identical result.
func TestCrashConsistencyDaemon(t *testing.T) {
	lroot := testLayoutRoot(t)
	spec, err := parseSpecString(t, storageSpecJSON)
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	rec := iox.NewRecorder(nil, root)
	m := storageManager(t, filepath.Join(root, "data"), lroot, rec)
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if fin := waitTerminal(t, m, st.ID); fin.State != JobDone {
		t.Fatalf("recorded job ended %s (%q)", fin.State, fin.Error)
	}
	refEvs := replaySeqs(t, m, st.ID)
	refShots, err := os.ReadFile(m.ShotsPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	refMask, err := os.ReadFile(m.MaskPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	m.Stop()
	ops := rec.Ops()
	if len(ops) < 15 {
		t.Fatalf("recorder captured only %d ops; the daemon is not going through the seam", len(ops))
	}
	if len(refEvs) == 0 || refEvs[len(refEvs)-1].State != string(JobDone) {
		t.Fatal("reference stream does not end in done")
	}

	verify := func(t *testing.T, dir string, runToEnd bool) {
		m2, err := NewManager(ManagerConfig{DataDir: filepath.Join(dir, "data"), LayoutRoot: lroot, Now: fixedNow})
		if err != nil {
			t.Fatalf("recovery failed to construct a manager: %v", err)
		}
		defer m2.Stop()
		jobs := m2.List()
		if len(jobs) == 0 {
			return // crashed before the job became durable: cleanly absent
		}
		j := jobs[0]
		evs := replaySeqs(t, m2, j.ID)
		switch {
		case j.State == JobDone:
			// The done record is durable, so the artifacts — written and
			// fsynced before it — must be complete and byte-identical.
			if last := evs[len(evs)-1]; last.Kind != "state" || last.State != string(JobDone) {
				t.Fatalf("done job's stream ends with %+v", last)
			}
			gotShots, err := os.ReadFile(m2.ShotsPath(j.ID))
			if err != nil || !bytes.Equal(gotShots, refShots) {
				t.Fatalf("done job's shots differ from reference (err=%v)", err)
			}
			gotMask, err := os.ReadFile(m2.MaskPath(j.ID))
			if err != nil || !bytes.Equal(gotMask, refMask) {
				t.Fatalf("done job's mask differs from reference (err=%v)", err)
			}
		case j.State.terminal():
			t.Fatalf("job recovered as %s from a crash of a clean run", j.State)
		case runToEnd:
			m2.Start()
			if fin := waitTerminal(t, m2, j.ID); fin.State != JobDone {
				t.Fatalf("resumed job ended %s (%q)", fin.State, fin.Error)
			}
			replaySeqs(t, m2, j.ID)
			gotShots, err := os.ReadFile(m2.ShotsPath(j.ID))
			if err != nil || !bytes.Equal(gotShots, refShots) {
				t.Fatalf("resumed job's shots differ from reference (err=%v)", err)
			}
			gotMask, err := os.ReadFile(m2.MaskPath(j.ID))
			if err != nil || !bytes.Equal(gotMask, refMask) {
				t.Fatalf("resumed job's mask differs from reference (err=%v)", err)
			}
		}
	}

	stride := 1
	if testing.Short() {
		stride = 3
	}
	// Resuming a run is the expensive part; sample it so the harness
	// replays every crash state but re-runs only ~8 of them.
	runEvery := len(ops) / 8
	if runEvery < 1 {
		runEvery = 1
	}
	for n := 0; n <= len(ops); n += stride {
		n := n
		t.Run(fmt.Sprintf("prefix-%03d", n), func(t *testing.T) {
			dir := t.TempDir()
			if err := iox.Materialize(dir, ops, n); err != nil {
				t.Fatal(err)
			}
			verify(t, dir, n%runEvery == 0)
		})
	}
	// Torn variants: the crash hit mid-write, leaving half the payload.
	for _, n := range iox.WriteBoundaries(ops) {
		if ops[n-1].Kind != iox.OpWrite || len(ops[n-1].Data) < 2 {
			continue
		}
		if n%stride != 0 {
			continue
		}
		n := n
		t.Run(fmt.Sprintf("torn-%03d", n), func(t *testing.T) {
			dir := t.TempDir()
			if err := iox.MaterializeTorn(dir, ops, n, len(ops[n-1].Data)/2); err != nil {
				t.Fatal(err)
			}
			verify(t, dir, false)
		})
	}
}
