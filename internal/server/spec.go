// Package server turns the tiled OPC flow into a long-running service:
// a job manager that admits JSON job specs, schedules them with
// per-tenant fairness on a bounded executor, streams live progress over
// Server-Sent Events, and persists every job through the checkpoint
// journal so a SIGKILLed daemon restarts with byte-identical output.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"cfaopc/internal/engine"
	"cfaopc/internal/gds"
	"cfaopc/internal/layout"
)

// JobSpec is the wire format of one OPC job. Exactly one of Layout
// (a .glp/.gds path relative to the daemon's layout root) or Case (a
// synthetic benchmark case, 1-10) names the target. Zero-valued knobs
// take the documented defaults, so {"case":1} is a complete spec.
//
// A normalized spec is canonical: marshaling it yields the bytes that
// fingerprint the job's event journal, so the same spec always binds
// to the same persistent state.
type JobSpec struct {
	Layout string `json:"layout,omitempty"` // layout file, relative to the layout root
	Case   int    `json:"case,omitempty"`   // synthetic benchmark case 1..10

	Tenant   string `json:"tenant,omitempty"`   // fairness domain (default "default")
	Priority int    `json:"priority,omitempty"` // higher runs first, -100..100

	Method   string `json:"method,omitempty"`   // optimizer (default circleopt)
	Fallback string `json:"fallback,omitempty"` // degraded-tile method (default circlerule, "none" disables)

	GridN    int `json:"grid,omitempty"`      // simulation grid edge (default 256)
	TileCore int `json:"tile_core,omitempty"` // owned px per window (default 128)
	TileHalo int `json:"tile_halo,omitempty"` // context px per side (default 32)

	// DeadlineMS bounds the job's total service time in milliseconds,
	// measured from first admission (the anchor survives restarts: it
	// is the first journaled record's timestamp). 0 means no per-job
	// deadline; the daemon's queue TTL still applies. Expired jobs —
	// queued or running — end in the terminal deadline_exceeded state
	// with checkpoint state preserved for manual resume. The cfaopc
	// -job CLI ignores it: deadlines are a service contract.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	Iters        int     `json:"iters,omitempty"`         // optimizer iterations (default 60)
	Gamma        float64 `json:"gamma,omitempty"`         // CircleOpt sparsity weight (default 3)
	SampleNM     float64 `json:"sample_nm,omitempty"`     // circle sample distance (default 32)
	KOpt         int     `json:"kopt,omitempty"`          // optimization kernels (default 5)
	TileWorkers  int     `json:"tile_workers,omitempty"`  // concurrent windows (default 1)
	PartialEvery int     `json:"partial_every,omitempty"` // mid-tile snapshot interval (default 0)
}

// minWindow is the smallest window edge the service admits. The litho
// simulator rejects tiny grids outright, and windows near that floor
// spend all their area on halo; 48 px keeps every admitted job inside
// the regime the flow is tested in.
const minWindow = 48

// maxGrid bounds the simulation grid a single job may request; it caps
// daemon memory at roughly one window's kernels plus one mask band.
const maxGrid = 8192

var tenantRE = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// ParseSpec decodes a job spec strictly — unknown fields, trailing
// data, and out-of-range knobs are rejected, not ignored — and returns
// the normalized form. A service must not guess what a typo meant.
func ParseSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after the job object")
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Normalize fills zero-valued knobs with their defaults. It is
// idempotent: normalizing a normalized spec changes nothing.
func (s *JobSpec) Normalize() {
	def := engine.Defaults()
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Method == "" {
		s.Method = "circleopt"
	}
	if s.Fallback == "" {
		s.Fallback = "circlerule"
	}
	if s.GridN == 0 {
		s.GridN = 256
	}
	if s.TileCore == 0 {
		s.TileCore = 128
	}
	if s.TileHalo == 0 {
		s.TileHalo = 32
	}
	if s.Iters == 0 {
		s.Iters = def.Iters
	}
	if s.Gamma == 0 {
		s.Gamma = def.Gamma
	}
	if s.SampleNM == 0 {
		s.SampleNM = def.SampleNM
	}
	if s.KOpt == 0 {
		s.KOpt = 5
	}
	if s.TileWorkers == 0 {
		s.TileWorkers = 1
	}
}

// Validate rejects specs the flow would fail on hours later, or that a
// hostile client could use to read outside the layout root. It assumes
// Normalize has run.
func (s *JobSpec) Validate() error {
	switch {
	case s.Layout != "" && s.Case != 0:
		return fmt.Errorf("spec: layout and case are mutually exclusive")
	case s.Layout == "" && s.Case == 0:
		return fmt.Errorf("spec: need layout or case")
	case s.Case != 0 && (s.Case < 1 || s.Case > 10):
		return fmt.Errorf("spec: case %d outside 1..10", s.Case)
	}
	if s.Layout != "" {
		// The layout ref is a relative path under the daemon's layout
		// root, never an escape hatch: absolute paths, "..", and
		// Windows-style drive tricks are all rejected by IsLocal.
		if !filepath.IsLocal(s.Layout) {
			return fmt.Errorf("spec: layout %q escapes the layout root", s.Layout)
		}
		switch strings.ToLower(filepath.Ext(s.Layout)) {
		case ".glp", ".gds":
		default:
			return fmt.Errorf("spec: layout %q: want a .glp or .gds file", s.Layout)
		}
	}
	if !tenantRE.MatchString(s.Tenant) {
		return fmt.Errorf("spec: tenant %q: want [A-Za-z0-9_-]{1,64}", s.Tenant)
	}
	if s.Priority < -100 || s.Priority > 100 {
		return fmt.Errorf("spec: priority %d outside -100..100", s.Priority)
	}
	if !knownMethod(s.Method) {
		return fmt.Errorf("spec: unknown method %q", s.Method)
	}
	if s.Fallback != "none" && !knownMethod(s.Fallback) {
		return fmt.Errorf("spec: unknown fallback %q", s.Fallback)
	}
	if s.GridN < minWindow || s.GridN > maxGrid {
		return fmt.Errorf("spec: grid %d outside %d..%d", s.GridN, minWindow, maxGrid)
	}
	if s.TileCore < 1 || s.TileHalo < 0 {
		return fmt.Errorf("spec: tile core %d / halo %d invalid", s.TileCore, s.TileHalo)
	}
	window := s.TileCore + 2*s.TileHalo
	if window < minWindow {
		return fmt.Errorf("spec: window %d (core %d + 2x halo %d) below the %d px floor", window, s.TileCore, s.TileHalo, minWindow)
	}
	if window > s.GridN {
		return fmt.Errorf("spec: window %d exceeds grid %d", window, s.GridN)
	}
	if s.Iters < 1 || s.Iters > 100000 {
		return fmt.Errorf("spec: iters %d outside 1..100000", s.Iters)
	}
	if !finitePositive(s.Gamma) || s.Gamma > 1000 {
		return fmt.Errorf("spec: gamma %v outside (0, 1000]", s.Gamma)
	}
	if !finitePositive(s.SampleNM) || s.SampleNM > 1e6 {
		return fmt.Errorf("spec: sample_nm %v outside (0, 1e6]", s.SampleNM)
	}
	if s.KOpt < 1 || s.KOpt > 24 {
		return fmt.Errorf("spec: kopt %d outside 1..24", s.KOpt)
	}
	if s.TileWorkers < 1 || s.TileWorkers > 64 {
		return fmt.Errorf("spec: tile_workers %d outside 1..64", s.TileWorkers)
	}
	if s.PartialEvery < 0 || s.PartialEvery > 100000 {
		return fmt.Errorf("spec: partial_every %d outside 0..100000", s.PartialEvery)
	}
	if s.DeadlineMS < 0 || s.DeadlineMS > 86_400_000 {
		return fmt.Errorf("spec: deadline_ms %d outside 0..86400000", s.DeadlineMS)
	}
	return nil
}

// Canonical returns the bytes that identify this spec: the JSON
// marshaling of the normalized form. Struct-field order makes it
// deterministic, so equal specs always produce equal bytes.
func (s *JobSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Every field is a plain number or validated string; Marshal
		// cannot fail on a spec that passed Validate.
		panic("server: marshal of validated spec failed: " + err.Error())
	}
	return b
}

// Equal reports whether two normalized specs describe the same job.
func (s *JobSpec) Equal(o *JobSpec) bool { return bytes.Equal(s.Canonical(), o.Canonical()) }

// ResolveLayout loads the job's target pattern: a synthetic benchmark
// case, or a layout file under root. The traversal check in Validate
// already confined s.Layout to the root; this only reads the file.
func (s *JobSpec) ResolveLayout(root string) (*layout.Layout, error) {
	if s.Case != 0 {
		return layout.GenerateSuite()[s.Case-1], nil
	}
	f, err := os.Open(filepath.Join(root, s.Layout))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(s.Layout), ".gds") {
		return gds.Read(f, -1)
	}
	return layout.Parse(f)
}

func knownMethod(name string) bool {
	for _, n := range engine.Names() {
		if n == name {
			return true
		}
	}
	return false
}

func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}
