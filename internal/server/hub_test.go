package server

import (
	"path/filepath"
	"sync"
	"testing"
)

func testHub(t *testing.T) (*hub, string, *JobSpec) {
	t.Helper()
	spec, err := parseSpecString(t, `{"case":1}`)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.log")
	h, err := newHub(path, "job-0001", spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.close)
	return h, path, spec
}

// TestHubSlowConsumerDropsOldest pins the backpressure contract: a
// consumer that never drains loses its oldest events (counted), keeps
// the newest, and the publisher never blocks.
func TestHubSlowConsumerDropsOldest(t *testing.T) {
	h, _, _ := testHub(t)
	sub := h.subscribe(0, 4)
	defer h.unsubscribe(sub)
	for i := 0; i < 100; i++ {
		h.publish(JobEvent{Kind: "beat", Tile: i})
	}
	evs, dropped := sub.drain()
	if dropped != 96 {
		t.Fatalf("dropped %d, want 96", dropped)
	}
	if len(evs) != 4 {
		t.Fatalf("buffered %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(97 + i); ev.Seq != want {
			t.Fatalf("kept seq %d at %d, want %d (newest survive)", ev.Seq, i, want)
		}
	}
	if evs2, d2 := sub.drain(); len(evs2) != 0 || d2 != 0 {
		t.Fatalf("second drain returned %d events, %d dropped", len(evs2), d2)
	}
}

func TestHubReplaySince(t *testing.T) {
	h, _, _ := testHub(t)
	for i := 0; i < 10; i++ {
		h.publish(JobEvent{Kind: "beat", Tile: i})
	}
	sub := h.subscribe(4, 64)
	defer h.unsubscribe(sub)
	evs, _ := sub.drain()
	if len(evs) != 6 || evs[0].Seq != 5 || evs[5].Seq != 10 {
		t.Fatalf("replay since 4: got %d events, first %d", len(evs), evs[0].Seq)
	}
	h.publish(JobEvent{Kind: "tile", Tile: 0})
	evs, _ = sub.drain()
	if len(evs) != 1 || evs[0].Seq != 11 {
		t.Fatalf("live event after replay: %+v", evs)
	}
}

// TestHubReplayExceedsRingCap: the initial replay must deliver the
// whole backlog even when it is larger than the subscriber's live
// ring.
func TestHubReplayExceedsRingCap(t *testing.T) {
	h, _, _ := testHub(t)
	for i := 0; i < 50; i++ {
		h.publish(JobEvent{Kind: "beat", Tile: i})
	}
	sub := h.subscribe(0, 4)
	defer h.unsubscribe(sub)
	evs, dropped := sub.drain()
	if dropped != 0 || len(evs) != 50 {
		t.Fatalf("replay: %d events, %d dropped; want all 50, none dropped", len(evs), dropped)
	}
}

// TestHubRestartContinuesSeq reopens the journal as a crashed-and-
// restarted daemon would and checks the stream picks up where it
// stopped.
func TestHubRestartContinuesSeq(t *testing.T) {
	spec, err := parseSpecString(t, `{"case":1}`)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.log")
	h1, err := newHub(path, "job-0001", spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h1.publish(JobEvent{Kind: "beat", Tile: i})
	}
	h1.close()

	h2, err := newHub(path, "job-0001", spec)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.close()
	if h2.lastSeq() != 5 {
		t.Fatalf("restarted hub lastSeq %d, want 5", h2.lastSeq())
	}
	ev, err := h2.publish(JobEvent{Kind: "state", State: "running"})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 6 {
		t.Fatalf("first post-restart event seq %d, want 6", ev.Seq)
	}
	sub := h2.subscribe(0, 64)
	defer h2.unsubscribe(sub)
	evs, _ := sub.drain()
	if len(evs) != 6 {
		t.Fatalf("full replay after restart: %d events, want 6", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) {
			t.Fatalf("seq %d at position %d: history not contiguous", e.Seq, i)
		}
	}
}

// TestHubJournalBindsJobIdentity: a journal can never be replayed
// under a different job ID or spec.
func TestHubJournalBindsJobIdentity(t *testing.T) {
	spec, _ := parseSpecString(t, `{"case":1}`)
	other, _ := parseSpecString(t, `{"case":2}`)
	path := filepath.Join(t.TempDir(), "events.log")
	h, err := newHub(path, "job-0001", spec)
	if err != nil {
		t.Fatal(err)
	}
	h.publish(JobEvent{Kind: "state", State: "queued"})
	h.close()
	if _, err := newHub(path, "job-0002", spec); err == nil {
		t.Fatal("journal accepted under a different job ID")
	}
	if _, err := newHub(path, "job-0001", other); err == nil {
		t.Fatal("journal accepted under a different spec")
	}
	if _, err := readHistory(path, "job-0002", spec); err == nil {
		t.Fatal("readHistory accepted a different job ID")
	}
}

func TestHubReadHistoryMatchesHub(t *testing.T) {
	h, path, spec := testHub(t)
	for i := 0; i < 7; i++ {
		h.publish(JobEvent{Kind: "beat", Tile: i, Iter: i})
	}
	h.close()
	evs, err := readHistory(path, "job-0001", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 7 {
		t.Fatalf("readHistory: %d events, want 7", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) || ev.Tile != i {
			t.Fatalf("record %d: %+v", i, ev)
		}
	}
}

// TestHubConcurrentPublishSubscribe races publishers against a
// mid-stream subscriber and checks every consumer still observes a
// gap-free, duplicate-free suffix of the stream. Run under -race this
// is also the locking proof.
func TestHubConcurrentPublishSubscribe(t *testing.T) {
	h, _, _ := testHub(t)
	const publishers, perPublisher = 4, 50
	total := publishers * perPublisher

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				h.publish(JobEvent{Kind: "beat", Tile: p})
			}
		}(p)
	}
	// Subscribe mid-storm with a buffer big enough to never drop.
	sub := h.subscribe(0, total+1)
	defer h.unsubscribe(sub)
	wg.Wait()

	var seen []int64
	evs, dropped := sub.drain()
	if dropped != 0 {
		t.Fatalf("dropped %d with an oversized buffer", dropped)
	}
	for _, ev := range evs {
		seen = append(seen, ev.Seq)
	}
	if len(seen) == 0 {
		t.Fatal("saw no events")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[i-1]+1 {
			t.Fatalf("seq gap or duplicate: %d then %d", seen[i-1], seen[i])
		}
	}
	if seen[len(seen)-1] != int64(total) {
		t.Fatalf("last seq %d, want %d", seen[len(seen)-1], total)
	}
	if h.lastSeq() != int64(total) {
		t.Fatalf("hub lastSeq %d, want %d", h.lastSeq(), total)
	}
}

// TestHubManySubscribersIndependent: each subscriber has its own ring;
// one slow consumer must not affect another.
func TestHubManySubscribersIndependent(t *testing.T) {
	h, _, _ := testHub(t)
	slow := h.subscribe(0, 2)
	fast := h.subscribe(0, 128)
	defer h.unsubscribe(slow)
	defer h.unsubscribe(fast)
	for i := 0; i < 20; i++ {
		h.publish(JobEvent{Kind: "beat", Tile: i})
	}
	fastEvs, fastDropped := fast.drain()
	slowEvs, slowDropped := slow.drain()
	if fastDropped != 0 || len(fastEvs) != 20 {
		t.Fatalf("fast consumer: %d events, %d dropped", len(fastEvs), fastDropped)
	}
	if slowDropped != 18 || len(slowEvs) != 2 {
		t.Fatalf("slow consumer: %d events, %d dropped", len(slowEvs), slowDropped)
	}
}

// TestHubSeqNeverRegresses exercises several close/reopen cycles, the
// pattern of a job resumed across many daemon lives.
func TestHubSeqNeverRegresses(t *testing.T) {
	spec, _ := parseSpecString(t, `{"case":1}`)
	path := filepath.Join(t.TempDir(), "events.log")
	var last int64
	for life := 0; life < 4; life++ {
		h, err := newHub(path, "job-0001", spec)
		if err != nil {
			t.Fatalf("life %d: %v", life, err)
		}
		if h.lastSeq() != last {
			t.Fatalf("life %d starts at seq %d, want %d", life, h.lastSeq(), last)
		}
		for i := 0; i < 3; i++ {
			ev, err := h.publish(JobEvent{Kind: "beat", Tile: life, Iter: i})
			if err != nil {
				t.Fatal(err)
			}
			if ev.Seq != last+1 {
				t.Fatalf("life %d: seq %d, want %d", life, ev.Seq, last+1)
			}
			last = ev.Seq
		}
		h.close()
	}
	evs, err := readHistory(path, "job-0001", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 12 {
		t.Fatalf("final history %d events, want 12", len(evs))
	}
}
