package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"
)

// sseBufCap bounds each SSE subscriber's live buffer. A client that
// falls further behind than this loses its oldest undelivered events —
// visible as a seq gap plus a stream comment — and can reconnect with
// Last-Event-ID for an exact replay. The flow is never throttled by a
// slow reader.
const sseBufCap = 1024

// SSE keepalive cadence and per-write stall budget. The keepalive
// comment serves two jobs: it keeps idle connections alive through
// proxies, and it guarantees a blocked client is *written to* at least
// every sseKeepalive — which is what arms the write deadline. A client
// whose TCP window stays closed past sseWriteTimeout gets its write
// errored by the deadline, ending the handler and freeing the hub ring
// slot instead of pinning it forever. Vars, not consts: the blocked-
// reader test tightens them.
var (
	sseKeepalive    = 15 * time.Second
	sseWriteTimeout = 30 * time.Second
)

// apiError is the structured body every 4xx/5xx JSON error carries.
// 429s also set the Retry-After header (seconds, rounded up) to the
// same value as retry_after_ms.
type apiError struct {
	Error        string `json:"error"`                    // human-readable message
	Reason       string `json:"reason"`                   // machine-readable: bad_spec | queue_full | over_budget | admission_paused | job_exceeds_budget | not_found | not_ready
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"` // when retrying can help
}

// writeAPIError emits the structured error contract. retryAfter <= 0
// omits the hint.
func writeAPIError(w http.ResponseWriter, code int, reason string, err error, retryAfter time.Duration) {
	body := apiError{Error: err.Error(), Reason: reason}
	if retryAfter > 0 {
		body.RetryAfterMS = retryAfter.Milliseconds()
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, code, body)
}

// NewHandler wires the service API around a Manager:
//
//	POST /jobs              submit a JobSpec      -> 201 JobStatus (400 bad spec / over whole budget,
//	                                                 429 queue full / over budget / admissions paused,
//	                                                 all errors as apiError JSON, 429s with Retry-After)
//	GET  /jobs              list jobs             -> 200 []JobStatus
//	GET  /jobs/{id}         job snapshot          -> 200 JobStatus
//	POST /jobs/{id}/cancel  cancel queued/running -> 200 JobStatus
//	GET  /jobs/{id}/events  SSE progress stream (Last-Event-ID or ?last= resumes)
//	GET  /jobs/{id}/mask    the mask PGM, streamed in row bands as they land
//	GET  /jobs/{id}/shots   the shot-list CSV (409 until done)
//	GET  /healthz           liveness + queue, governor, and storage sections
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		spec, err := ParseSpec(r.Body)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, "bad_spec", err, 0)
			return
		}
		st, err := m.Submit(spec)
		var admit *AdmitError
		switch {
		case errors.Is(err, ErrQueueFull):
			// Queue-full prices waiting with the same drain estimate as
			// the governor, so every 429 speaks one Retry-After dialect.
			writeAPIError(w, http.StatusTooManyRequests, "queue_full", err, m.gov.retryAfter())
			return
		case errors.As(err, &admit):
			writeAPIError(w, http.StatusTooManyRequests, admit.Reason, err, admit.RetryAfter)
			return
		case errors.Is(err, ErrJobTooBig):
			// Typed 400: retrying the same spec can never succeed.
			writeAPIError(w, http.StatusBadRequest, "job_exceeds_budget", err, 0)
			return
		case err != nil:
			writeAPIError(w, http.StatusBadRequest, "bad_spec", err, 0)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(m, w, r)
	})
	mux.HandleFunc("GET /jobs/{id}/mask", func(w http.ResponseWriter, r *http.Request) {
		serveMask(m, w, r)
	})
	mux.HandleFunc("GET /jobs/{id}/shots", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, err := m.Status(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if st.State != JobDone {
			http.Error(w, fmt.Sprintf("job %s is %s; shots exist once it is done", id, st.State), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		http.ServeFile(w, r, m.ShotsPath(id))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// "ok" is liveness; "storage" is the degradation snapshot; "queue"
		// is the backlog's size and shape; "governor" is the admission
		// budget and ladder position. A daemon with a dead jobs.log still
		// answers — it just rejects new submissions — and these sections
		// are how an operator tells overload, storage failure, and
		// plain busyness apart.
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":       true,
			"queued":   m.QueueDepth(),
			"queue":    m.QueueHealth(),
			"governor": m.GovernorHealth(),
			"storage":  m.StorageHealth(),
		})
	})
	return mux
}

// serveEvents streams a job's progress as SSE. The client resumes an
// interrupted stream by sending the last seq it saw (the standard
// Last-Event-ID header, or ?last= for hand-rolled clients); the reply
// replays every event after it — exactly, because events are journaled
// before they are visible — then continues live. The stream ends after
// the job's terminal state event.
func serveEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	since := int64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.ParseInt(v, 10, 64)
	} else if v := r.URL.Query().Get("last"); v != "" {
		since, _ = strconv.ParseInt(v, 10, 64)
	}
	sub, err := m.Subscribe(id, since, sseBufCap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer m.Unsubscribe(id, sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	// Every write batch re-arms a write deadline: a subscriber whose
	// reads stall (closed TCP window, dead proxy) errors the write
	// within sseWriteTimeout instead of blocking this handler — and the
	// deferred Unsubscribe frees its hub ring slot. The keepalive tick
	// guarantees a write happens at least every sseKeepalive even on an
	// idle stream, so a stalled client is always detected within
	// sseKeepalive + sseWriteTimeout.
	keep := time.NewTicker(sseKeepalive)
	defer keep.Stop()
	armWrite := func() { rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout)) }

	for {
		evs, dropped := sub.drain()
		if len(evs) > 0 || dropped > 0 {
			armWrite()
		}
		if dropped > 0 {
			fmt.Fprintf(w, ": %d events dropped; reconnect with Last-Event-ID for an exact replay\n\n", dropped)
		}
		terminal := false
		for _, ev := range evs {
			payload, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, payload); err != nil {
				return
			}
			if ev.Kind == "state" && JobState(ev.State).terminal() {
				terminal = true
			}
		}
		if len(evs) > 0 || dropped > 0 {
			if err := rc.Flush(); err != nil {
				return
			}
		}
		if terminal {
			return
		}
		if sub.isShut() {
			// The hub ended the stream without a terminal event — the
			// event journal died, or the daemon is shutting down. End the
			// stream after the drain above; the client polls the job
			// status or reconnects rather than waiting for a seq that
			// will never come.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.wait():
		case <-keep.C:
			armWrite()
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// serveMask streams the job's mask PGM. A finished job's file is
// served whole; a queued or running job is followed live — bytes go
// out as band events report rows durably flushed, so the client sees
// each row band once, in order, while the optimization is still
// running. A job that fails or is canceled ends the stream early with
// fewer rows than the header promises, which is how a PGM reader
// detects the truncation.
func serveMask(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := m.Status(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if st.State == JobFailed || st.State == JobCanceled || st.State == JobDeadline {
		http.Error(w, fmt.Sprintf("job %s is %s; no complete mask", id, st.State), http.StatusConflict)
		return
	}
	if st.State == JobDone {
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		http.ServeFile(w, r, m.MaskPath(id))
		return
	}

	// Follow mode. Only rows announced by band events observed on this
	// subscription are served: bands are flushed to disk before they
	// are announced and arrive strictly top-to-bottom, so "last
	// announced row" is exactly "bytes safe to read". Starting from the
	// live tail (not history) keeps a restarted job's stale band
	// announcements from a previous daemon life out of the accounting.
	sub, err := m.Subscribe(id, maxInt64(0, st.LastSeq), sseBufCap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer m.Unsubscribe(id, sub)

	w.Header().Set("Content-Type", "image/x-portable-graymap")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	headerLen := int64(len(fmt.Sprintf("P5\n%d %d\n255\n", st.Grid, st.Grid)))
	rowBytes := int64(st.Grid)
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var served, limit int64
	done := false
	for {
		evs, _ := sub.drain()
		for _, ev := range evs {
			switch {
			case ev.Kind == "band":
				limit = headerLen + int64(ev.Row+ev.Rows)*rowBytes
			case ev.Kind == "state" && JobState(ev.State).terminal():
				done = true
				if ev.State == string(JobDone) {
					limit = headerLen + rowBytes*int64(st.Grid)
				}
			}
		}
		if limit > served {
			if f == nil {
				if f, err = os.Open(m.MaskPath(id)); err != nil {
					return // the run died before creating the file
				}
			}
			if _, err := io.CopyN(w, f, limit-served); err != nil {
				return
			}
			served = limit
			if err := rc.Flush(); err != nil {
				return
			}
		}
		if done || sub.isShut() {
			// isShut without a terminal event means the stream died with
			// the event journal; the rows served so far are all the rows
			// this follower will ever be told are safe.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.wait():
		case <-time.After(time.Second):
			// Belt-and-braces wake-up so a stream never hangs on a
			// missed doorbell.
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
