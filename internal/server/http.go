package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"
)

// sseBufCap bounds each SSE subscriber's live buffer. A client that
// falls further behind than this loses its oldest undelivered events —
// visible as a seq gap plus a stream comment — and can reconnect with
// Last-Event-ID for an exact replay. The flow is never throttled by a
// slow reader.
const sseBufCap = 1024

// NewHandler wires the service API around a Manager:
//
//	POST /jobs              submit a JobSpec      -> 201 JobStatus (400 bad spec, 429 queue full)
//	GET  /jobs              list jobs             -> 200 []JobStatus
//	GET  /jobs/{id}         job snapshot          -> 200 JobStatus
//	POST /jobs/{id}/cancel  cancel queued/running -> 200 JobStatus
//	GET  /jobs/{id}/events  SSE progress stream (Last-Event-ID or ?last= resumes)
//	GET  /jobs/{id}/mask    the mask PGM, streamed in row bands as they land
//	GET  /jobs/{id}/shots   the shot-list CSV (409 until done)
//	GET  /healthz           liveness + queue depth
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		spec, err := ParseSpec(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := m.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(m, w, r)
	})
	mux.HandleFunc("GET /jobs/{id}/mask", func(w http.ResponseWriter, r *http.Request) {
		serveMask(m, w, r)
	})
	mux.HandleFunc("GET /jobs/{id}/shots", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, err := m.Status(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if st.State != JobDone {
			http.Error(w, fmt.Sprintf("job %s is %s; shots exist once it is done", id, st.State), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		http.ServeFile(w, r, m.ShotsPath(id))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// "ok" is liveness; "storage" is the degradation snapshot. A
		// daemon with a dead jobs.log still answers — it just rejects
		// new submissions — and the storage section is how an operator
		// tells the two apart.
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":      true,
			"queued":  m.QueueDepth(),
			"storage": m.StorageHealth(),
		})
	})
	return mux
}

// serveEvents streams a job's progress as SSE. The client resumes an
// interrupted stream by sending the last seq it saw (the standard
// Last-Event-ID header, or ?last= for hand-rolled clients); the reply
// replays every event after it — exactly, because events are journaled
// before they are visible — then continues live. The stream ends after
// the job's terminal state event.
func serveEvents(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	since := int64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		since, _ = strconv.ParseInt(v, 10, 64)
	} else if v := r.URL.Query().Get("last"); v != "" {
		since, _ = strconv.ParseInt(v, 10, 64)
	}
	sub, err := m.Subscribe(id, since, sseBufCap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer m.Unsubscribe(id, sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	for {
		evs, dropped := sub.drain()
		if dropped > 0 {
			fmt.Fprintf(w, ": %d events dropped; reconnect with Last-Event-ID for an exact replay\n\n", dropped)
		}
		terminal := false
		for _, ev := range evs {
			payload, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, payload)
			if ev.Kind == "state" && JobState(ev.State).terminal() {
				terminal = true
			}
		}
		if len(evs) > 0 || dropped > 0 {
			if err := rc.Flush(); err != nil {
				return
			}
		}
		if terminal {
			return
		}
		if sub.isShut() {
			// The hub ended the stream without a terminal event — the
			// event journal died, or the daemon is shutting down. End the
			// stream after the drain above; the client polls the job
			// status or reconnects rather than waiting for a seq that
			// will never come.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.wait():
		}
	}
}

// serveMask streams the job's mask PGM. A finished job's file is
// served whole; a queued or running job is followed live — bytes go
// out as band events report rows durably flushed, so the client sees
// each row band once, in order, while the optimization is still
// running. A job that fails or is canceled ends the stream early with
// fewer rows than the header promises, which is how a PGM reader
// detects the truncation.
func serveMask(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := m.Status(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if st.State == JobFailed || st.State == JobCanceled {
		http.Error(w, fmt.Sprintf("job %s is %s; no complete mask", id, st.State), http.StatusConflict)
		return
	}
	if st.State == JobDone {
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		http.ServeFile(w, r, m.MaskPath(id))
		return
	}

	// Follow mode. Only rows announced by band events observed on this
	// subscription are served: bands are flushed to disk before they
	// are announced and arrive strictly top-to-bottom, so "last
	// announced row" is exactly "bytes safe to read". Starting from the
	// live tail (not history) keeps a restarted job's stale band
	// announcements from a previous daemon life out of the accounting.
	sub, err := m.Subscribe(id, maxInt64(0, st.LastSeq), sseBufCap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer m.Unsubscribe(id, sub)

	w.Header().Set("Content-Type", "image/x-portable-graymap")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	headerLen := int64(len(fmt.Sprintf("P5\n%d %d\n255\n", st.Grid, st.Grid)))
	rowBytes := int64(st.Grid)
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var served, limit int64
	done := false
	for {
		evs, _ := sub.drain()
		for _, ev := range evs {
			switch {
			case ev.Kind == "band":
				limit = headerLen + int64(ev.Row+ev.Rows)*rowBytes
			case ev.Kind == "state" && JobState(ev.State).terminal():
				done = true
				if ev.State == string(JobDone) {
					limit = headerLen + rowBytes*int64(st.Grid)
				}
			}
		}
		if limit > served {
			if f == nil {
				if f, err = os.Open(m.MaskPath(id)); err != nil {
					return // the run died before creating the file
				}
			}
			if _, err := io.CopyN(w, f, limit-served); err != nil {
				return
			}
			served = limit
			if err := rc.Flush(); err != nil {
				return
			}
		}
		if done || sub.isShut() {
			// isShut without a terminal event means the stream died with
			// the event journal; the rows served so far are all the rows
			// this follower will ever be told are safe.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.wait():
		case <-time.After(time.Second):
			// Belt-and-braces wake-up so a stream never hangs on a
			// missed doorbell.
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
