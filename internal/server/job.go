package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/flow"
	"cfaopc/internal/iox"
	"cfaopc/internal/layout"
	"cfaopc/internal/wcache"
)

// JobState is a job's lifecycle position. Terminal states (done,
// failed, canceled, deadline_exceeded) never change again — not even
// across restarts.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
	// JobDeadline means the job's DeadlineMS or the daemon's queue TTL
	// expired before the job finished. Its flow checkpoint is
	// preserved: resubmitting the same spec against the same data
	// directory resumes from the completed tiles.
	JobDeadline JobState = "deadline_exceeded"
)

func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled || s == JobDeadline
}

// Cancellation causes, threaded through context.Cause so the executor
// can type the terminal state after flow.RunContext unwinds.
var (
	errDeadlineCause = errors.New("job deadline exceeded")
	errWedgeCause    = errors.New("job wedged: no events within the watchdog window")
	errShedCause     = errors.New("job shed under memory pressure")
)

// jobsJournalHeader fingerprints the daemon's job-state journal.
var jobsJournalHeader = []byte("cfaopcd-jobs-v1")

// jobRecord is one job-state journal entry. Recovery merges records
// last-wins per ID: the first record carries the spec, later ones move
// the state machine. A job whose newest record is non-terminal was
// alive when the daemon died and is requeued on restart.
type jobRecord struct {
	ID    string    `json:"id"`
	State JobState  `json:"state"`
	Spec  *JobSpec  `json:"spec,omitempty"` // on the first (queued) record only
	Error string    `json:"error,omitempty"`
	Shots int       `json:"shots,omitempty"` // on the done record
	Time  time.Time `json:"time"`
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Tenant   string   `json:"tenant"`
	Priority int      `json:"priority"`
	Grid     int      `json:"grid"` // simulation grid edge (mask dimensions)
	Error    string   `json:"error,omitempty"`
	Shots    int      `json:"shots,omitempty"`
	LastSeq  int64    `json:"last_seq"` // newest published event seq
	// CostBytes is the governor's admitted peak-memory estimate.
	CostBytes int64 `json:"cost_bytes,omitempty"`
	// DeadlineUnixMS is the absolute wall-clock deadline (per-job
	// DeadlineMS and/or queue TTL, whichever is sooner), 0 when none.
	DeadlineUnixMS int64 `json:"deadline_unix_ms,omitempty"`
}

// job is the manager's in-memory record of one job. The manager lock
// guards every field except lastEv; the hub has its own lock for the
// event stream.
type job struct {
	id       string
	spec     *JobSpec
	state    JobState
	errMsg   string
	shots    int
	hub      *hub
	canceled bool // cancel requested (may still be dispatching)
	wedged   bool // wedge watchdog fired (counted once)
	stopRun  context.CancelCauseFunc
	cost     Cost
	// deadlineAt is the job's absolute deadline (zero = none),
	// anchored at the first journaled record's timestamp so it
	// survives restarts; ttlAt bounds the queue wait the same way.
	deadlineAt time.Time
	ttlAt      time.Time
	// lastEv is the unix-nano timestamp of the job's newest published
	// event, written by the executor's event bridge and read by the
	// wedge watchdog — atomic so beats never take the manager lock.
	lastEv atomic.Int64
}

// dispatchDeadline returns the job's effective dispatch-time deadline:
// the sooner of the per-job deadline and the queue TTL (a job the TTL
// expired on while queued must not start just because dispatch raced
// the sweep). Zero when neither applies.
func (j *job) dispatchDeadline() time.Time {
	d := j.deadlineAt
	if !j.ttlAt.IsZero() && (d.IsZero() || j.ttlAt.Before(d)) {
		d = j.ttlAt
	}
	return d
}

// ManagerConfig configures a Manager. DataDir is required; it holds
// jobs.log plus one directory per job (event journal, flow checkpoint,
// mask, shots).
type ManagerConfig struct {
	DataDir    string
	LayoutRoot string // root for spec layout refs (default ".")
	MaxActive  int    // concurrent running jobs (default 1)
	QueueCap   int    // max queued jobs (default 64)
	Now        func() time.Time
	// FS is the filesystem seam every daemon write goes through —
	// jobs.log, per-job event journals, flow checkpoints, mask and shot
	// artifacts. nil means the real filesystem; tests inject fault or
	// recording filesystems here.
	FS iox.FS

	// Governor sizes the admission budget and pressure watermarks.
	Governor GovernorConfig
	// QueueTTL bounds how long a job may wait in the queue before it
	// ends deadline_exceeded (anchored at first admission, surviving
	// restarts). 0 disables the TTL.
	QueueTTL time.Duration
	// WedgeTimeout is the job-level watchdog: a running job that
	// publishes no event (state, beat, tile, band) for this long is
	// killed as wedged. Distinct from the flow's per-tile stall
	// detector, which only sees iterations inside one engine call —
	// this one catches jobs that stop emitting anything at all.
	// 0 defaults to 2m; <0 disables.
	WedgeTimeout time.Duration
	// MonitorEvery is the governor pulse interval (watermark sample,
	// deadline sweep, wedge scan). 0 disables the background monitor —
	// the daemon turns it on explicitly; tests drive Pulse directly.
	MonitorEvery time.Duration
	// MaxQueueWait is the scheduler's anti-starvation bound: a job
	// queued longer than this preempts every priority. 0 defaults to
	// 5m; <0 disables.
	MaxQueueWait time.Duration
	// Cache is the shared window dedup cache given to every job run
	// (nil = uncached). Under memory pressure the governor shrinks its
	// memory tier and restores it when pressure recedes.
	Cache *wcache.Cache
}

// Manager owns the job table, the scheduler, and the executor pool. It
// recovers existing state from DataDir at construction: terminal jobs
// reload their event history read-only, and every queued or running
// job is requeued in ID order, resuming from its flow checkpoint.
type Manager struct {
	mu         sync.Mutex
	dataDir    string
	layoutRoot string
	maxActive  int
	now        func() time.Time
	fsys       iox.FS
	jobs       map[string]*job
	order      []string // creation order, for List
	nextID     int
	sched      *scheduler
	journal    *checkpoint.Journal // jobs.log
	ctx        context.Context
	cancel     context.CancelFunc
	wg         sync.WaitGroup
	started    bool

	gov          *governor
	queueTTL     time.Duration
	wedgeTimeout time.Duration
	monitorEvery time.Duration
	cache        *wcache.Cache
	// Full-size cache budgets, saved so the shrink rung can restore them.
	cacheEntries0 int
	cacheBytes0   int64
	// runSpec is the executor seam, RunSpec in production. Tests swap
	// in stand-ins (a silent blocker for the wedge watchdog, a slow
	// canceler for shed/deadline paths) without heavy compute.
	runSpec func(ctx context.Context, l *layout.Layout, spec *JobSpec, opts RunOpts) (*flow.Result, error)

	// Storage degradation counters, surfaced by StorageHealth.
	recordErrs  atomic.Int64 // failed jobs.log appends/syncs
	eventErrs   atomic.Int64 // terminal events lost to a dead event journal
	synthEvents int64        // terminal events synthesized during recovery
}

// StorageHealth is the daemon's storage-degradation snapshot, served
// under /healthz. A healthy daemon shows growing byte counts and zero
// everywhere else; any non-empty error or non-zero counter means a
// journal failed and the affected jobs ended (or will end) cleanly
// without it.
type StorageHealth struct {
	// JobsLogBytes is jobs.log's size; JobsLogErr is the poisoning
	// error if an append or fsync on it ever failed (the journal is
	// never retried on the same fd — see internal/checkpoint).
	JobsLogBytes int64  `json:"jobs_log_bytes"`
	JobsLogErr   string `json:"jobs_log_err,omitempty"`
	// EventLogBytes sums the open per-job event journals.
	EventLogBytes int64 `json:"event_log_bytes"`
	// RecordErrs counts failed job-state journal writes; EventErrs
	// counts terminal events that could not be journaled (their jobs'
	// streams ended without one); SynthEvents counts terminal events
	// recovery synthesized for jobs whose journal lost theirs.
	RecordErrs  int64 `json:"record_errs,omitempty"`
	EventErrs   int64 `json:"event_errs,omitempty"`
	SynthEvents int64 `json:"synth_events,omitempty"`
}

// StorageHealth reports the daemon's storage-degradation snapshot.
func (m *Manager) StorageHealth() StorageHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := StorageHealth{
		RecordErrs:  m.recordErrs.Load(),
		EventErrs:   m.eventErrs.Load(),
		SynthEvents: m.synthEvents,
	}
	if m.journal != nil {
		sh.JobsLogBytes = m.journal.Size()
		if err := m.journal.Err(); err != nil {
			sh.JobsLogErr = err.Error()
		}
	}
	for _, j := range m.jobs {
		sh.EventLogBytes += j.hub.journalSize()
	}
	return sh
}

// ErrNoJob is returned for operations on an unknown job ID.
var ErrNoJob = errors.New("server: no such job")

// NewManager opens (or creates) the data directory and rebuilds the
// job table from the job-state journal.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: ManagerConfig.DataDir is required")
	}
	if cfg.LayoutRoot == "" {
		cfg.LayoutRoot = "."
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.WedgeTimeout == 0 {
		cfg.WedgeTimeout = 2 * time.Minute
	}
	if cfg.MaxQueueWait == 0 {
		cfg.MaxQueueWait = 5 * time.Minute
	}
	fsys := iox.OrOS(cfg.FS)
	if err := fsys.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	journal, payloads, err := checkpoint.OpenFS(fsys, filepath.Join(cfg.DataDir, "jobs.log"), jobsJournalHeader)
	if err != nil {
		return nil, fmt.Errorf("server: job journal: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		dataDir:      cfg.DataDir,
		layoutRoot:   cfg.LayoutRoot,
		maxActive:    cfg.MaxActive,
		now:          cfg.Now,
		fsys:         fsys,
		jobs:         map[string]*job{},
		sched:        newScheduler(cfg.QueueCap),
		journal:      journal,
		ctx:          ctx,
		cancel:       cancel,
		gov:          newGovernor(cfg.Governor),
		queueTTL:     cfg.QueueTTL,
		wedgeTimeout: cfg.WedgeTimeout,
		monitorEvery: cfg.MonitorEvery,
		cache:        cfg.Cache,
		runSpec:      RunSpec,
	}
	m.sched.now = cfg.Now
	if cfg.MaxQueueWait > 0 {
		m.sched.maxWait = cfg.MaxQueueWait
	}
	if m.cache != nil {
		m.cacheEntries0, m.cacheBytes0 = m.cache.Limits()
	}
	if err := m.recover(payloads); err != nil {
		journal.Close()
		cancel()
		return nil, err
	}
	return m, nil
}

// recover merges the journal records last-wins, reloads event history,
// and requeues every non-terminal job in ID order.
func (m *Manager) recover(payloads [][]byte) error {
	merged := map[string]*jobRecord{}
	// firstAt keeps each job's first-record timestamp: the admission
	// anchor deadlines and queue TTLs are measured from. Requeue
	// records never move it, so a crash-restart loop cannot extend a
	// job's deadline.
	firstAt := map[string]time.Time{}
	var ids []string
	for i, p := range payloads {
		var rec jobRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return fmt.Errorf("server: job journal record %d: %w", i, err)
		}
		if prev, ok := merged[rec.ID]; ok {
			if rec.Spec == nil {
				rec.Spec = prev.Spec
			}
			merged[rec.ID] = &rec
		} else {
			merged[rec.ID] = &rec
			firstAt[rec.ID] = rec.Time
			ids = append(ids, rec.ID)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := merged[id]
		if rec.Spec == nil {
			return fmt.Errorf("server: job %s has state records but no spec", id)
		}
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n >= m.nextID {
			m.nextID = n + 1
		}
		j := &job{id: id, spec: rec.Spec, state: rec.State, errMsg: rec.Error, shots: rec.Shots}
		if rec.State.terminal() {
			// Finished jobs need no new events: load the history without
			// taking the journal's append handle.
			evs, err := readHistoryFS(m.fsys, m.eventPath(id), id, rec.Spec)
			if err != nil {
				return fmt.Errorf("server: job %s: %w", id, err)
			}
			if n := len(evs); n == 0 || evs[n-1].Kind != "state" || !JobState(evs[n-1].State).terminal() {
				// A crash (or a dead event journal) between the terminal
				// jobRecord and its event left the stream unfinished, which
				// would wedge SSE consumers waiting for the end. Synthesize
				// the terminal event from the authoritative jobRecord. The
				// synthesis is deterministic — same record, same history
				// length, same seq — so every future recovery produces the
				// identical event and Last-Event-ID replays stay exact.
				evs = append(evs, JobEvent{
					Seq: int64(n) + 1, Kind: "state",
					State: string(rec.State), Error: rec.Error, Shots: rec.Shots,
				})
				m.synthEvents++
			}
			j.hub = &hub{history: evs, subs: map[*subscriber]struct{}{}, closed: true}
		} else {
			// The job was queued or mid-run when the daemon died: reopen
			// its event journal so seq numbering continues, tell the
			// stream it is queued again, and requeue it. The flow
			// checkpoint makes the re-run byte-identical.
			h, err := newHubFS(m.fsys, m.eventPath(id), id, rec.Spec)
			if err != nil {
				return fmt.Errorf("server: job %s: %w", id, err)
			}
			j.hub = h
			j.state = JobQueued
			if err := m.appendRecord(jobRecord{ID: id, State: JobQueued, Time: m.now()}); err != nil {
				h.close()
				return fmt.Errorf("server: requeue %s: %w", id, err)
			}
			if _, err := h.publish(JobEvent{Kind: "state", State: string(JobQueued)}); err != nil {
				h.close()
				return fmt.Errorf("server: requeue %s: %w", id, err)
			}
			if err := m.sched.enqueue(id, rec.Spec.Tenant, rec.Spec.Priority); err != nil {
				return fmt.Errorf("server: requeue %s: %w", id, err)
			}
			// Re-anchor deadlines at the first record's time and
			// re-reserve the governor budget. The reservation bypasses
			// admission (force): a job admitted by a previous daemon
			// life must not vanish because the budget shrank.
			m.anchorDeadlines(j, firstAt[id])
			rects := 0
			if l, err := rec.Spec.ResolveLayout(m.layoutRoot); err == nil {
				rects = len(l.Rects)
			}
			j.cost = EstimateCost(rec.Spec, rects)
			m.gov.force(id, j.cost)
		}
		m.jobs[id] = j
		m.order = append(m.order, id)
	}
	return nil
}

// anchorDeadlines derives a job's absolute deadline and queue-TTL
// expiry from its admission time.
func (m *Manager) anchorDeadlines(j *job, admitted time.Time) {
	if j.spec.DeadlineMS > 0 {
		j.deadlineAt = admitted.Add(time.Duration(j.spec.DeadlineMS) * time.Millisecond)
	}
	if m.queueTTL > 0 {
		j.ttlAt = admitted.Add(m.queueTTL)
	}
}

// Start launches the executor pool. Jobs submitted before Start queue
// up; nothing runs until it is called.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	for i := 0; i < m.maxActive; i++ {
		m.wg.Add(1)
		go m.executor()
	}
	if m.monitorEvery > 0 {
		m.wg.Add(1)
		go m.monitor()
	}
}

// monitor drives the governor pulse on a wall-clock ticker. Tests call
// Pulse directly instead (MonitorEvery = 0 leaves this off).
func (m *Manager) monitor() {
	defer m.wg.Done()
	t := time.NewTicker(m.monitorEvery)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
			m.Pulse()
		}
	}
}

// Stop halts the executor pool and waits for it. Running jobs are
// interrupted without a terminal record — their journals still say
// running, so a later Manager requeues and resumes them.
func (m *Manager) Stop() {
	m.cancel()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.hub.close()
	}
	if m.journal != nil {
		m.journal.Close()
		m.journal = nil
	}
}

// Submit validates nothing — the spec must already be normalized and
// valid (ParseSpec's contract) — resolves the layout to fail fast on a
// missing or malformed file, prices the job, admits it against the
// governor's budget, persists it, and queues it. Admission runs before
// the queue-capacity check, so the admit/reject sequence for a given
// submission history is deterministic: cost gate first, queue cap
// second.
func (m *Manager) Submit(spec *JobSpec) (JobStatus, error) {
	l, err := spec.ResolveLayout(m.layoutRoot)
	if err != nil {
		return JobStatus{}, fmt.Errorf("spec: layout: %w", err)
	}
	cost := EstimateCost(spec, len(l.Rects))
	m.mu.Lock()
	defer m.mu.Unlock()
	id := fmt.Sprintf("job-%04d", m.nextID)
	if err := m.gov.admit(id, cost); err != nil {
		return JobStatus{}, err
	}
	if err := m.sched.enqueue(id, spec.Tenant, spec.Priority); err != nil {
		m.gov.release(id)
		return JobStatus{}, err
	}
	if err := m.fsys.MkdirAll(m.jobDir(id), 0o755); err != nil {
		m.sched.cancel(id)
		m.gov.release(id)
		return JobStatus{}, err
	}
	h, err := newHubFS(m.fsys, m.eventPath(id), id, spec)
	if err != nil {
		m.sched.cancel(id)
		m.gov.release(id)
		return JobStatus{}, err
	}
	// Storage before visibility: the queued event and the queued record
	// must both be durable before the job exists anywhere a client can
	// see it. On failure the submission is rejected whole — queue slot
	// released, journal handle closed, the orphaned event journal
	// removed (best-effort) so a future job reusing the ID starts
	// fresh. The event goes first: an events.log with no jobs.log
	// record is an ignorable orphan at recovery, whereas a jobs.log
	// record for a rejected job would resurrect it.
	reject := func(err error) (JobStatus, error) {
		m.sched.cancel(id)
		m.gov.release(id)
		h.close()
		m.fsys.Remove(m.eventPath(id))
		return JobStatus{}, err
	}
	if _, err := h.publish(JobEvent{Kind: "state", State: string(JobQueued)}); err != nil {
		return reject(err)
	}
	admitted := m.now()
	if err := m.appendRecord(jobRecord{ID: id, State: JobQueued, Spec: spec, Time: admitted}); err != nil {
		return reject(fmt.Errorf("job journal: %w", err))
	}
	m.nextID++
	j := &job{id: id, spec: spec, state: JobQueued, hub: h, cost: cost}
	m.anchorDeadlines(j, admitted)
	m.jobs[id] = j
	m.order = append(m.order, id)
	return m.statusLocked(j), nil
}

// Cancel stops a job: a queued job leaves the queue, a running job's
// context is canceled (its completed tiles stay checkpointed). Cancel
// of a terminal job is a harmless no-op.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrNoJob
	}
	if j.state.terminal() {
		return m.statusLocked(j), nil
	}
	j.canceled = true
	if j.state == JobQueued && m.sched.cancel(id) {
		// Still queued: finish it here. A job the scheduler no longer
		// holds is mid-dispatch; the executor sees the flag and
		// finishes it instead.
		m.finishLocked(j, JobCanceled, "", 0)
	} else if j.stopRun != nil {
		j.stopRun(context.Canceled)
	}
	return m.statusLocked(j), nil
}

// Status returns a job's snapshot.
func (m *Manager) Status(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrNoJob
	}
	return m.statusLocked(j), nil
}

// List returns every job in creation order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Subscribe attaches a drop-oldest event consumer to a job's stream,
// replaying everything after sinceSeq first. The caller must call
// Unsubscribe when done.
func (m *Manager) Subscribe(id string, sinceSeq int64, capacity int) (*subscriber, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNoJob
	}
	return j.hub.subscribe(sinceSeq, capacity), nil
}

// Unsubscribe detaches a Subscribe consumer.
func (m *Manager) Unsubscribe(id string, sub *subscriber) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		j.hub.unsubscribe(sub)
	}
}

// MaskPath and ShotsPath locate a job's output artifacts.
func (m *Manager) MaskPath(id string) string  { return filepath.Join(m.jobDir(id), "mask.pgm") }
func (m *Manager) ShotsPath(id string) string { return filepath.Join(m.jobDir(id), "shots.csv") }

// QueueDepth reports the number of queued (not yet dispatched) jobs.
func (m *Manager) QueueDepth() int { return m.sched.depth() }

func (m *Manager) jobDir(id string) string    { return filepath.Join(m.dataDir, "jobs", id) }
func (m *Manager) eventPath(id string) string { return filepath.Join(m.jobDir(id), "events.log") }

// executor is one slot of the run pool: dequeue, run, repeat.
func (m *Manager) executor() {
	defer m.wg.Done()
	for {
		sj, err := m.sched.next(m.ctx)
		if err != nil {
			return
		}
		m.runJob(sj.id)
	}
}

// runJob drives one dispatched job through RunSpec and records the
// outcome. Daemon shutdown mid-run deliberately records nothing: the
// journal still says running, which is exactly what makes the next
// daemon requeue and resume it.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	if j.canceled {
		m.finishLocked(j, JobCanceled, "", 0)
		m.mu.Unlock()
		return
	}
	now := m.now()
	if dl := j.dispatchDeadline(); !dl.IsZero() && !now.Before(dl) {
		// The deadline or queue TTL expired while the job waited;
		// dispatch merely raced the monitor sweep. Same terminal state
		// either way.
		m.finishLocked(j, JobDeadline, deadlineMsg(j, dl), 0)
		m.mu.Unlock()
		return
	}
	ctx, stop := context.WithCancelCause(m.ctx)
	runCtx := ctx
	if !j.deadlineAt.IsZero() {
		var cancelDL context.CancelFunc
		runCtx, cancelDL = context.WithDeadlineCause(ctx, j.deadlineAt, errDeadlineCause)
		defer cancelDL()
	}
	j.state = JobRunning
	j.stopRun = stop
	j.lastEv.Store(now.UnixNano())
	// A job whose state transitions cannot be journaled must not run:
	// fail it cleanly before any work starts. finishLocked's own writes
	// are best-effort against the same (likely poisoned) journals.
	if err := m.appendRecord(jobRecord{ID: id, State: JobRunning, Time: now}); err != nil {
		j.stopRun = nil
		stop(nil)
		m.finishLocked(j, JobFailed, "job journal: "+err.Error(), 0)
		m.mu.Unlock()
		return
	}
	if _, err := j.hub.publish(JobEvent{Kind: "state", State: string(JobRunning)}); err != nil {
		j.stopRun = nil
		stop(nil)
		m.finishLocked(j, JobFailed, err.Error(), 0)
		m.mu.Unlock()
		return
	}
	spec, h := j.spec, j.hub
	m.mu.Unlock()
	defer stop(nil)

	res, err := m.execute(runCtx, j, spec, h)

	// cause is the first cancellation that hit the run — it, not the
	// generic context error the flow returned, types the terminal state.
	cause := context.Cause(runCtx)

	m.mu.Lock()
	defer m.mu.Unlock()
	j.stopRun = nil
	switch {
	case err == nil:
		m.finishLocked(j, JobDone, "", len(res.Shots))
	case j.canceled:
		m.finishLocked(j, JobCanceled, "", 0)
	case errors.Is(cause, errDeadlineCause):
		m.finishLocked(j, JobDeadline, deadlineMsg(j, j.deadlineAt), 0)
	case errors.Is(cause, errWedgeCause):
		m.finishLocked(j, JobFailed, fmt.Sprintf("wedged: no events for %s", m.wedgeTimeout), 0)
	case errors.Is(cause, errShedCause):
		m.finishLocked(j, JobFailed, "shed: canceled under memory pressure (resubmit to resume from checkpoint)", 0)
	case m.ctx.Err() != nil:
		// Shutdown: leave the journal saying running so the job resumes.
		j.state = JobQueued
	default:
		m.finishLocked(j, JobFailed, err.Error(), 0)
	}
}

// deadlineMsg renders the typed deadline_exceeded error string.
func deadlineMsg(j *job, dl time.Time) string {
	if j.spec.DeadlineMS > 0 && (j.ttlAt.IsZero() || !j.deadlineAt.After(dl)) {
		return fmt.Sprintf("deadline %dms exceeded (checkpoint preserved)", j.spec.DeadlineMS)
	}
	return "queue TTL exceeded (checkpoint preserved)"
}

// execute runs the spec with the daemon's plumbing: per-job paths and
// a flow event bridge into the hub. A publish failure anywhere in the
// bridge means the event journal is dead (poisoned — every later
// publish would fail too), so the run is canceled immediately and the
// journal error, not the resulting context cancellation, is returned.
func (m *Manager) execute(ctx context.Context, j *job, spec *JobSpec, h *hub) (*flow.Result, error) {
	id := j.id
	l, err := spec.ResolveLayout(m.layoutRoot)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var evMu sync.Mutex
	var evErr error
	pub := func(ev JobEvent) {
		j.lastEv.Store(m.now().UnixNano()) // feeds the wedge watchdog
		if _, err := h.publish(ev); err != nil {
			evMu.Lock()
			if evErr == nil {
				evErr = err
				cancel()
			}
			evMu.Unlock()
		}
	}
	dir := m.jobDir(id)
	opts := RunOpts{
		FS:         m.fsys,
		Cache:      m.cache,
		Checkpoint: filepath.Join(dir, "flow.ckpt"),
		MaskPath:   m.MaskPath(id),
		ShotsPath:  m.ShotsPath(id),
		Events: func(ev flow.Event) {
			switch ev.Kind {
			case flow.EventBeat:
				pub(JobEvent{Kind: "beat", Tile: ev.Tile, Iter: ev.Iter, Loss: ev.Loss})
			case flow.EventTile:
				pub(JobEvent{
					Kind: "tile", Tile: ev.Tile, Shots: ev.Stat.Shots,
					Resumed: ev.Stat.Resumed, CacheHit: ev.Stat.CacheHit,
					Path: string(ev.Stat.Path),
				})
			}
		},
		OnBand: func(row, rows int) {
			pub(JobEvent{Kind: "band", Row: row, Rows: rows})
		},
	}
	res, err := m.runSpec(ctx, l, spec, opts)
	evMu.Lock()
	ferr := evErr
	evMu.Unlock()
	if ferr != nil {
		return res, ferr
	}
	return res, err
}

// finishLocked moves a job to a terminal state: journal record, final
// state event, event journal released. Callers hold m.mu.
//
// Storage failures here are counted, not fatal — the job is ending
// regardless. The record goes first: the stream must never claim a
// terminal state jobs.log does not have. If the record fails, no
// terminal event is published at all (jobs.log still says running, so
// the next daemon requeues and re-runs the job from its checkpoint)
// and closing the hub ends every subscriber's stream instead. If only
// the event fails, recovery synthesizes it from the durable record.
func (m *Manager) finishLocked(j *job, state JobState, errMsg string, shots int) {
	j.state = state
	j.errMsg = errMsg
	j.shots = shots
	m.gov.release(j.id)
	if state == JobDeadline {
		m.gov.mu.Lock()
		m.gov.expired++
		m.gov.mu.Unlock()
	}
	if err := m.appendRecord(jobRecord{ID: j.id, State: state, Error: errMsg, Shots: shots, Time: m.now()}); err == nil {
		if _, err := j.hub.publish(JobEvent{Kind: "state", State: string(state), Error: errMsg, Shots: shots}); err != nil {
			m.eventErrs.Add(1)
		}
	}
	j.hub.close()
}

// statusLocked snapshots a job. Callers hold m.mu.
func (m *Manager) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID: j.id, State: j.state, Tenant: j.spec.Tenant, Priority: j.spec.Priority,
		Grid: j.spec.GridN, Error: j.errMsg, Shots: j.shots, LastSeq: j.hub.lastSeq(),
		CostBytes: j.cost.PeakBytes,
	}
	if dl := j.dispatchDeadline(); !dl.IsZero() {
		st.DeadlineUnixMS = dl.UnixMilli()
	}
	return st
}

// Pulse runs one governor monitor cycle: sample the heap against the
// watermarks (acting on any ladder transition), expire queued jobs
// whose deadline or TTL passed, and kill wedged runs. The daemon's
// monitor goroutine calls it on a ticker; tests call it directly.
func (m *Manager) Pulse() {
	heap := m.gov.readHeap()
	from, to, changed := m.gov.observe(heap)
	m.mu.Lock()
	defer m.mu.Unlock()
	if changed {
		m.ladderLocked(from, to, heap)
	} else if to == GovShed {
		// Pressure held through another pulse at the top rung: shed
		// one more job per pulse until the heap recedes or no
		// candidates remain.
		m.shedLocked()
	}
	m.sweepDeadlinesLocked()
	m.sweepWedgesLocked()
}

// ladderLocked applies one degradation-ladder transition's side
// effects and announces it on every live job stream (kind "governor",
// journaled like any other event, so replays reproduce it).
func (m *Manager) ladderLocked(from, to GovLevel, heap int64) {
	if m.cache != nil {
		switch {
		case from == GovNormal && to >= GovShrink:
			// First rung: shrink the window cache's memory tier to a
			// quarter so the allocator gets room before anything
			// client-visible happens.
			e, b := m.cacheEntries0/4, m.cacheBytes0/4
			if e < 1 {
				e = 1
			}
			if b < 1 {
				b = 1
			}
			m.cache.Resize(e, b)
		case to == GovNormal && from >= GovShrink:
			m.cache.Resize(m.cacheEntries0, m.cacheBytes0)
		}
	}
	if to == GovShed {
		m.shedLocked()
	}
	ev := JobEvent{Kind: "governor", State: to.String(), From: from.String(), Heap: heap}
	for _, j := range m.jobs {
		if j.state.terminal() {
			continue
		}
		if _, err := j.hub.publish(ev); err != nil {
			m.eventErrs.Add(1)
		}
	}
}

// shedLocked cancels the youngest (highest-ID) running job whose
// admitted cost exceeds its fair share of the budget. Jobs within
// their share are never shed — pressure they did not cause is not
// their fault — so a pulse may shed nothing.
func (m *Manager) shedLocked() {
	share := m.gov.budget / int64(m.maxActive)
	var victim *job
	for _, j := range m.jobs {
		if j.state != JobRunning || j.stopRun == nil || j.cost.PeakBytes <= share {
			continue
		}
		if victim == nil || j.id > victim.id {
			victim = j
		}
	}
	if victim == nil {
		return
	}
	victim.stopRun(errShedCause)
	m.gov.mu.Lock()
	m.gov.sheds++
	m.gov.mu.Unlock()
}

// sweepDeadlinesLocked expires queued jobs whose deadline or queue TTL
// passed. Running jobs are handled by their run context's deadline.
func (m *Manager) sweepDeadlinesLocked() {
	now := m.now()
	for _, j := range m.jobs {
		if j.state != JobQueued {
			continue
		}
		dl := j.dispatchDeadline()
		if dl.IsZero() || now.Before(dl) {
			continue
		}
		if m.sched.cancel(j.id) {
			m.finishLocked(j, JobDeadline, deadlineMsg(j, dl), 0)
		}
		// Not in the queue = mid-dispatch; runJob's own deadline check
		// finishes it.
	}
}

// sweepWedgesLocked kills running jobs that have published nothing for
// longer than the wedge timeout. The flow's per-tile stall detector
// watches iterations inside one engine call; this watchdog watches the
// job's entire event stream, so a run wedged outside any engine
// (deadlocked worker pool, stuck I/O) still dies typed.
func (m *Manager) sweepWedgesLocked() {
	if m.wedgeTimeout <= 0 {
		return
	}
	now := m.now().UnixNano()
	for _, j := range m.jobs {
		if j.state != JobRunning || j.wedged || j.stopRun == nil {
			continue
		}
		last := j.lastEv.Load()
		if last == 0 || now-last < int64(m.wedgeTimeout) {
			continue
		}
		j.wedged = true
		j.stopRun(errWedgeCause)
		m.gov.mu.Lock()
		m.gov.wedges++
		m.gov.mu.Unlock()
	}
}

// GovernorHealth reports the governor's /healthz section.
func (m *Manager) GovernorHealth() GovernorHealth { return m.gov.health() }

// QueueHealth reports the scheduler's /healthz section.
func (m *Manager) QueueHealth() QueueHealth { return m.sched.health() }

// EstimateFor prices a spec exactly as Submit would, resolving the
// layout for its rect count. Exposed for calibration exhibits.
func (m *Manager) EstimateFor(spec *JobSpec) (Cost, error) {
	l, err := spec.ResolveLayout(m.layoutRoot)
	if err != nil {
		return Cost{}, err
	}
	return EstimateCost(spec, len(l.Rects)), nil
}

// appendRecord journals one job-state transition durably, returning
// the append or fsync error; either poisons jobs.log (see
// internal/checkpoint), so after one failure every later call fails
// too. Callers hold m.mu (or are inside NewManager, before the
// manager escapes).
func (m *Manager) appendRecord(rec jobRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		panic("server: marshal jobRecord failed: " + err.Error())
	}
	if m.journal == nil {
		return nil
	}
	if err := m.journal.Append(payload); err != nil {
		m.recordErrs.Add(1)
		return err
	}
	if err := m.journal.Sync(); err != nil {
		m.recordErrs.Add(1)
		return err
	}
	return nil
}
