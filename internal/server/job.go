package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/flow"
	"cfaopc/internal/iox"
)

// JobState is a job's lifecycle position. Terminal states (done,
// failed, canceled) never change again — not even across restarts.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// jobsJournalHeader fingerprints the daemon's job-state journal.
var jobsJournalHeader = []byte("cfaopcd-jobs-v1")

// jobRecord is one job-state journal entry. Recovery merges records
// last-wins per ID: the first record carries the spec, later ones move
// the state machine. A job whose newest record is non-terminal was
// alive when the daemon died and is requeued on restart.
type jobRecord struct {
	ID    string    `json:"id"`
	State JobState  `json:"state"`
	Spec  *JobSpec  `json:"spec,omitempty"` // on the first (queued) record only
	Error string    `json:"error,omitempty"`
	Shots int       `json:"shots,omitempty"` // on the done record
	Time  time.Time `json:"time"`
}

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Tenant   string   `json:"tenant"`
	Priority int      `json:"priority"`
	Grid     int      `json:"grid"` // simulation grid edge (mask dimensions)
	Error    string   `json:"error,omitempty"`
	Shots    int      `json:"shots,omitempty"`
	LastSeq  int64    `json:"last_seq"` // newest published event seq
}

// job is the manager's in-memory record of one job. The manager lock
// guards every field; the hub has its own lock for the event stream.
type job struct {
	id       string
	spec     *JobSpec
	state    JobState
	errMsg   string
	shots    int
	hub      *hub
	canceled bool // cancel requested (may still be dispatching)
	stopRun  context.CancelFunc
}

// ManagerConfig configures a Manager. DataDir is required; it holds
// jobs.log plus one directory per job (event journal, flow checkpoint,
// mask, shots).
type ManagerConfig struct {
	DataDir    string
	LayoutRoot string // root for spec layout refs (default ".")
	MaxActive  int    // concurrent running jobs (default 1)
	QueueCap   int    // max queued jobs (default 64)
	Now        func() time.Time
	// FS is the filesystem seam every daemon write goes through —
	// jobs.log, per-job event journals, flow checkpoints, mask and shot
	// artifacts. nil means the real filesystem; tests inject fault or
	// recording filesystems here.
	FS iox.FS
}

// Manager owns the job table, the scheduler, and the executor pool. It
// recovers existing state from DataDir at construction: terminal jobs
// reload their event history read-only, and every queued or running
// job is requeued in ID order, resuming from its flow checkpoint.
type Manager struct {
	mu         sync.Mutex
	dataDir    string
	layoutRoot string
	maxActive  int
	now        func() time.Time
	fsys       iox.FS
	jobs       map[string]*job
	order      []string // creation order, for List
	nextID     int
	sched      *scheduler
	journal    *checkpoint.Journal // jobs.log
	ctx        context.Context
	cancel     context.CancelFunc
	wg         sync.WaitGroup
	started    bool

	// Storage degradation counters, surfaced by StorageHealth.
	recordErrs  atomic.Int64 // failed jobs.log appends/syncs
	eventErrs   atomic.Int64 // terminal events lost to a dead event journal
	synthEvents int64        // terminal events synthesized during recovery
}

// StorageHealth is the daemon's storage-degradation snapshot, served
// under /healthz. A healthy daemon shows growing byte counts and zero
// everywhere else; any non-empty error or non-zero counter means a
// journal failed and the affected jobs ended (or will end) cleanly
// without it.
type StorageHealth struct {
	// JobsLogBytes is jobs.log's size; JobsLogErr is the poisoning
	// error if an append or fsync on it ever failed (the journal is
	// never retried on the same fd — see internal/checkpoint).
	JobsLogBytes int64  `json:"jobs_log_bytes"`
	JobsLogErr   string `json:"jobs_log_err,omitempty"`
	// EventLogBytes sums the open per-job event journals.
	EventLogBytes int64 `json:"event_log_bytes"`
	// RecordErrs counts failed job-state journal writes; EventErrs
	// counts terminal events that could not be journaled (their jobs'
	// streams ended without one); SynthEvents counts terminal events
	// recovery synthesized for jobs whose journal lost theirs.
	RecordErrs  int64 `json:"record_errs,omitempty"`
	EventErrs   int64 `json:"event_errs,omitempty"`
	SynthEvents int64 `json:"synth_events,omitempty"`
}

// StorageHealth reports the daemon's storage-degradation snapshot.
func (m *Manager) StorageHealth() StorageHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := StorageHealth{
		RecordErrs:  m.recordErrs.Load(),
		EventErrs:   m.eventErrs.Load(),
		SynthEvents: m.synthEvents,
	}
	if m.journal != nil {
		sh.JobsLogBytes = m.journal.Size()
		if err := m.journal.Err(); err != nil {
			sh.JobsLogErr = err.Error()
		}
	}
	for _, j := range m.jobs {
		sh.EventLogBytes += j.hub.journalSize()
	}
	return sh
}

// ErrNoJob is returned for operations on an unknown job ID.
var ErrNoJob = errors.New("server: no such job")

// NewManager opens (or creates) the data directory and rebuilds the
// job table from the job-state journal.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: ManagerConfig.DataDir is required")
	}
	if cfg.LayoutRoot == "" {
		cfg.LayoutRoot = "."
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	fsys := iox.OrOS(cfg.FS)
	if err := fsys.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	journal, payloads, err := checkpoint.OpenFS(fsys, filepath.Join(cfg.DataDir, "jobs.log"), jobsJournalHeader)
	if err != nil {
		return nil, fmt.Errorf("server: job journal: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		dataDir:    cfg.DataDir,
		layoutRoot: cfg.LayoutRoot,
		maxActive:  cfg.MaxActive,
		now:        cfg.Now,
		fsys:       fsys,
		jobs:       map[string]*job{},
		sched:      newScheduler(cfg.QueueCap),
		journal:    journal,
		ctx:        ctx,
		cancel:     cancel,
	}
	m.sched.now = cfg.Now
	if err := m.recover(payloads); err != nil {
		journal.Close()
		cancel()
		return nil, err
	}
	return m, nil
}

// recover merges the journal records last-wins, reloads event history,
// and requeues every non-terminal job in ID order.
func (m *Manager) recover(payloads [][]byte) error {
	merged := map[string]*jobRecord{}
	var ids []string
	for i, p := range payloads {
		var rec jobRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			return fmt.Errorf("server: job journal record %d: %w", i, err)
		}
		if prev, ok := merged[rec.ID]; ok {
			if rec.Spec == nil {
				rec.Spec = prev.Spec
			}
			merged[rec.ID] = &rec
		} else {
			merged[rec.ID] = &rec
			ids = append(ids, rec.ID)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := merged[id]
		if rec.Spec == nil {
			return fmt.Errorf("server: job %s has state records but no spec", id)
		}
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n >= m.nextID {
			m.nextID = n + 1
		}
		j := &job{id: id, spec: rec.Spec, state: rec.State, errMsg: rec.Error, shots: rec.Shots}
		if rec.State.terminal() {
			// Finished jobs need no new events: load the history without
			// taking the journal's append handle.
			evs, err := readHistoryFS(m.fsys, m.eventPath(id), id, rec.Spec)
			if err != nil {
				return fmt.Errorf("server: job %s: %w", id, err)
			}
			if n := len(evs); n == 0 || evs[n-1].Kind != "state" || !JobState(evs[n-1].State).terminal() {
				// A crash (or a dead event journal) between the terminal
				// jobRecord and its event left the stream unfinished, which
				// would wedge SSE consumers waiting for the end. Synthesize
				// the terminal event from the authoritative jobRecord. The
				// synthesis is deterministic — same record, same history
				// length, same seq — so every future recovery produces the
				// identical event and Last-Event-ID replays stay exact.
				evs = append(evs, JobEvent{
					Seq: int64(n) + 1, Kind: "state",
					State: string(rec.State), Error: rec.Error, Shots: rec.Shots,
				})
				m.synthEvents++
			}
			j.hub = &hub{history: evs, subs: map[*subscriber]struct{}{}, closed: true}
		} else {
			// The job was queued or mid-run when the daemon died: reopen
			// its event journal so seq numbering continues, tell the
			// stream it is queued again, and requeue it. The flow
			// checkpoint makes the re-run byte-identical.
			h, err := newHubFS(m.fsys, m.eventPath(id), id, rec.Spec)
			if err != nil {
				return fmt.Errorf("server: job %s: %w", id, err)
			}
			j.hub = h
			j.state = JobQueued
			if err := m.appendRecord(jobRecord{ID: id, State: JobQueued, Time: m.now()}); err != nil {
				h.close()
				return fmt.Errorf("server: requeue %s: %w", id, err)
			}
			if _, err := h.publish(JobEvent{Kind: "state", State: string(JobQueued)}); err != nil {
				h.close()
				return fmt.Errorf("server: requeue %s: %w", id, err)
			}
			if err := m.sched.enqueue(id, rec.Spec.Tenant, rec.Spec.Priority); err != nil {
				return fmt.Errorf("server: requeue %s: %w", id, err)
			}
		}
		m.jobs[id] = j
		m.order = append(m.order, id)
	}
	return nil
}

// Start launches the executor pool. Jobs submitted before Start queue
// up; nothing runs until it is called.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	for i := 0; i < m.maxActive; i++ {
		m.wg.Add(1)
		go m.executor()
	}
}

// Stop halts the executor pool and waits for it. Running jobs are
// interrupted without a terminal record — their journals still say
// running, so a later Manager requeues and resumes them.
func (m *Manager) Stop() {
	m.cancel()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.hub.close()
	}
	if m.journal != nil {
		m.journal.Close()
		m.journal = nil
	}
}

// Submit validates nothing — the spec must already be normalized and
// valid (ParseSpec's contract) — resolves the layout to fail fast on a
// missing or malformed file, persists the job, and queues it.
func (m *Manager) Submit(spec *JobSpec) (JobStatus, error) {
	if _, err := spec.ResolveLayout(m.layoutRoot); err != nil {
		return JobStatus{}, fmt.Errorf("spec: layout: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := fmt.Sprintf("job-%04d", m.nextID)
	if err := m.sched.enqueue(id, spec.Tenant, spec.Priority); err != nil {
		return JobStatus{}, err
	}
	if err := m.fsys.MkdirAll(m.jobDir(id), 0o755); err != nil {
		m.sched.cancel(id)
		return JobStatus{}, err
	}
	h, err := newHubFS(m.fsys, m.eventPath(id), id, spec)
	if err != nil {
		m.sched.cancel(id)
		return JobStatus{}, err
	}
	// Storage before visibility: the queued event and the queued record
	// must both be durable before the job exists anywhere a client can
	// see it. On failure the submission is rejected whole — queue slot
	// released, journal handle closed, the orphaned event journal
	// removed (best-effort) so a future job reusing the ID starts
	// fresh. The event goes first: an events.log with no jobs.log
	// record is an ignorable orphan at recovery, whereas a jobs.log
	// record for a rejected job would resurrect it.
	reject := func(err error) (JobStatus, error) {
		m.sched.cancel(id)
		h.close()
		m.fsys.Remove(m.eventPath(id))
		return JobStatus{}, err
	}
	if _, err := h.publish(JobEvent{Kind: "state", State: string(JobQueued)}); err != nil {
		return reject(err)
	}
	if err := m.appendRecord(jobRecord{ID: id, State: JobQueued, Spec: spec, Time: m.now()}); err != nil {
		return reject(fmt.Errorf("job journal: %w", err))
	}
	m.nextID++
	j := &job{id: id, spec: spec, state: JobQueued, hub: h}
	m.jobs[id] = j
	m.order = append(m.order, id)
	return m.statusLocked(j), nil
}

// Cancel stops a job: a queued job leaves the queue, a running job's
// context is canceled (its completed tiles stay checkpointed). Cancel
// of a terminal job is a harmless no-op.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrNoJob
	}
	if j.state.terminal() {
		return m.statusLocked(j), nil
	}
	j.canceled = true
	if j.state == JobQueued && m.sched.cancel(id) {
		// Still queued: finish it here. A job the scheduler no longer
		// holds is mid-dispatch; the executor sees the flag and
		// finishes it instead.
		m.finishLocked(j, JobCanceled, "", 0)
	} else if j.stopRun != nil {
		j.stopRun()
	}
	return m.statusLocked(j), nil
}

// Status returns a job's snapshot.
func (m *Manager) Status(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, ErrNoJob
	}
	return m.statusLocked(j), nil
}

// List returns every job in creation order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Subscribe attaches a drop-oldest event consumer to a job's stream,
// replaying everything after sinceSeq first. The caller must call
// Unsubscribe when done.
func (m *Manager) Subscribe(id string, sinceSeq int64, capacity int) (*subscriber, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNoJob
	}
	return j.hub.subscribe(sinceSeq, capacity), nil
}

// Unsubscribe detaches a Subscribe consumer.
func (m *Manager) Unsubscribe(id string, sub *subscriber) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		j.hub.unsubscribe(sub)
	}
}

// MaskPath and ShotsPath locate a job's output artifacts.
func (m *Manager) MaskPath(id string) string  { return filepath.Join(m.jobDir(id), "mask.pgm") }
func (m *Manager) ShotsPath(id string) string { return filepath.Join(m.jobDir(id), "shots.csv") }

// QueueDepth reports the number of queued (not yet dispatched) jobs.
func (m *Manager) QueueDepth() int { return m.sched.depth() }

func (m *Manager) jobDir(id string) string    { return filepath.Join(m.dataDir, "jobs", id) }
func (m *Manager) eventPath(id string) string { return filepath.Join(m.jobDir(id), "events.log") }

// executor is one slot of the run pool: dequeue, run, repeat.
func (m *Manager) executor() {
	defer m.wg.Done()
	for {
		sj, err := m.sched.next(m.ctx)
		if err != nil {
			return
		}
		m.runJob(sj.id)
	}
}

// runJob drives one dispatched job through RunSpec and records the
// outcome. Daemon shutdown mid-run deliberately records nothing: the
// journal still says running, which is exactly what makes the next
// daemon requeue and resume it.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	if j.canceled {
		m.finishLocked(j, JobCanceled, "", 0)
		m.mu.Unlock()
		return
	}
	ctx, stop := context.WithCancel(m.ctx)
	j.state = JobRunning
	j.stopRun = stop
	// A job whose state transitions cannot be journaled must not run:
	// fail it cleanly before any work starts. finishLocked's own writes
	// are best-effort against the same (likely poisoned) journals.
	if err := m.appendRecord(jobRecord{ID: id, State: JobRunning, Time: m.now()}); err != nil {
		j.stopRun = nil
		stop()
		m.finishLocked(j, JobFailed, "job journal: "+err.Error(), 0)
		m.mu.Unlock()
		return
	}
	if _, err := j.hub.publish(JobEvent{Kind: "state", State: string(JobRunning)}); err != nil {
		j.stopRun = nil
		stop()
		m.finishLocked(j, JobFailed, err.Error(), 0)
		m.mu.Unlock()
		return
	}
	spec, h := j.spec, j.hub
	m.mu.Unlock()
	defer stop()

	res, err := m.execute(ctx, id, spec, h)

	m.mu.Lock()
	defer m.mu.Unlock()
	j.stopRun = nil
	switch {
	case err == nil:
		m.finishLocked(j, JobDone, "", len(res.Shots))
	case j.canceled:
		m.finishLocked(j, JobCanceled, "", 0)
	case m.ctx.Err() != nil:
		// Shutdown: leave the journal saying running so the job resumes.
		j.state = JobQueued
	default:
		m.finishLocked(j, JobFailed, err.Error(), 0)
	}
}

// execute runs the spec with the daemon's plumbing: per-job paths and
// a flow event bridge into the hub. A publish failure anywhere in the
// bridge means the event journal is dead (poisoned — every later
// publish would fail too), so the run is canceled immediately and the
// journal error, not the resulting context cancellation, is returned.
func (m *Manager) execute(ctx context.Context, id string, spec *JobSpec, h *hub) (*flow.Result, error) {
	l, err := spec.ResolveLayout(m.layoutRoot)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var evMu sync.Mutex
	var evErr error
	pub := func(ev JobEvent) {
		if _, err := h.publish(ev); err != nil {
			evMu.Lock()
			if evErr == nil {
				evErr = err
				cancel()
			}
			evMu.Unlock()
		}
	}
	dir := m.jobDir(id)
	opts := RunOpts{
		FS:         m.fsys,
		Checkpoint: filepath.Join(dir, "flow.ckpt"),
		MaskPath:   m.MaskPath(id),
		ShotsPath:  m.ShotsPath(id),
		Events: func(ev flow.Event) {
			switch ev.Kind {
			case flow.EventBeat:
				pub(JobEvent{Kind: "beat", Tile: ev.Tile, Iter: ev.Iter, Loss: ev.Loss})
			case flow.EventTile:
				pub(JobEvent{
					Kind: "tile", Tile: ev.Tile, Shots: ev.Stat.Shots,
					Resumed: ev.Stat.Resumed, CacheHit: ev.Stat.CacheHit,
					Path: string(ev.Stat.Path),
				})
			}
		},
		OnBand: func(row, rows int) {
			pub(JobEvent{Kind: "band", Row: row, Rows: rows})
		},
	}
	res, err := RunSpec(ctx, l, spec, opts)
	evMu.Lock()
	ferr := evErr
	evMu.Unlock()
	if ferr != nil {
		return res, ferr
	}
	return res, err
}

// finishLocked moves a job to a terminal state: journal record, final
// state event, event journal released. Callers hold m.mu.
//
// Storage failures here are counted, not fatal — the job is ending
// regardless. The record goes first: the stream must never claim a
// terminal state jobs.log does not have. If the record fails, no
// terminal event is published at all (jobs.log still says running, so
// the next daemon requeues and re-runs the job from its checkpoint)
// and closing the hub ends every subscriber's stream instead. If only
// the event fails, recovery synthesizes it from the durable record.
func (m *Manager) finishLocked(j *job, state JobState, errMsg string, shots int) {
	j.state = state
	j.errMsg = errMsg
	j.shots = shots
	if err := m.appendRecord(jobRecord{ID: j.id, State: state, Error: errMsg, Shots: shots, Time: m.now()}); err == nil {
		if _, err := j.hub.publish(JobEvent{Kind: "state", State: string(state), Error: errMsg, Shots: shots}); err != nil {
			m.eventErrs.Add(1)
		}
	}
	j.hub.close()
}

// statusLocked snapshots a job. Callers hold m.mu.
func (m *Manager) statusLocked(j *job) JobStatus {
	return JobStatus{
		ID: j.id, State: j.state, Tenant: j.spec.Tenant, Priority: j.spec.Priority,
		Grid: j.spec.GridN, Error: j.errMsg, Shots: j.shots, LastSeq: j.hub.lastSeq(),
	}
}

// appendRecord journals one job-state transition durably, returning
// the append or fsync error; either poisons jobs.log (see
// internal/checkpoint), so after one failure every later call fails
// too. Callers hold m.mu (or are inside NewManager, before the
// manager escapes).
func (m *Manager) appendRecord(rec jobRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		panic("server: marshal jobRecord failed: " + err.Error())
	}
	if m.journal == nil {
		return nil
	}
	if err := m.journal.Append(payload); err != nil {
		m.recordErrs.Add(1)
		return err
	}
	if err := m.journal.Sync(); err != nil {
		m.recordErrs.Add(1)
		return err
	}
	return nil
}
