package server

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cfaopc/internal/flow"
	"cfaopc/internal/layout"
	"cfaopc/internal/wcache"
)

// specFor builds a normalized, validated spec from a fragment.
func specFor(t *testing.T, mutate func(*JobSpec)) *JobSpec {
	t.Helper()
	s := &JobSpec{Layout: "t.glp", GridN: 128, TileCore: 64, Iters: 2, KOpt: 3}
	if mutate != nil {
		mutate(s)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEstimateCostShape(t *testing.T) {
	small := EstimateCost(specFor(t, nil), 2)
	if small.PeakBytes <= 0 || small.FlowBytes <= 0 || small.Tiles != 4 || small.IterUnits < 1 {
		t.Fatalf("degenerate cost: %+v", small)
	}
	if small.FlowBytes >= small.PeakBytes {
		t.Fatalf("flow bytes %d should be a strict part of peak %d (simulator term missing)", small.FlowBytes, small.PeakBytes)
	}
	// Deterministic: same spec, same rects, same price.
	if again := EstimateCost(specFor(t, nil), 2); again != small {
		t.Fatalf("cost not deterministic: %+v vs %+v", small, again)
	}
	// Monotone in the knobs that dominate memory and work.
	big := EstimateCost(specFor(t, func(s *JobSpec) { s.GridN = 512; s.TileCore = 128; s.TileHalo = 64 }), 2)
	if big.PeakBytes <= small.PeakBytes || big.Tiles <= small.Tiles {
		t.Fatalf("bigger grid should price higher: small %+v big %+v", small, big)
	}
	iters := EstimateCost(specFor(t, func(s *JobSpec) { s.Iters = 200 }), 2)
	if iters.IterUnits <= small.IterUnits {
		t.Fatalf("more iterations should mean more work units: %+v vs %+v", small, iters)
	}
	workers := EstimateCost(specFor(t, func(s *JobSpec) { s.TileWorkers = 4 }), 2)
	if workers.PeakBytes <= small.PeakBytes {
		t.Fatalf("more workers should price higher: %+v vs %+v", small, workers)
	}
}

func TestGovernorAdmission(t *testing.T) {
	g := newGovernor(GovernorConfig{MemBudget: 1000})

	// A job bigger than the whole budget is a typed permanent rejection.
	err := g.admit("job-a", Cost{PeakBytes: 1001, IterUnits: 1})
	if !errors.Is(err, ErrJobTooBig) {
		t.Fatalf("want ErrJobTooBig, got %v", err)
	}

	if err := g.admit("job-b", Cost{PeakBytes: 600, IterUnits: 10}); err != nil {
		t.Fatal(err)
	}
	// Over the remaining budget: retryable, with reason and a hint.
	err = g.admit("job-c", Cost{PeakBytes: 600, IterUnits: 10})
	var admit *AdmitError
	if !errors.As(err, &admit) {
		t.Fatalf("want AdmitError, got %v", err)
	}
	if admit.Reason != "over_budget" {
		t.Fatalf("reason = %q, want over_budget", admit.Reason)
	}
	if admit.RetryAfter < time.Second || admit.RetryAfter > 5*time.Minute {
		t.Fatalf("RetryAfter %v outside clamp", admit.RetryAfter)
	}
	// The same history prices the same retry hint: determinism.
	err2 := g.admit("job-c", Cost{PeakBytes: 600, IterUnits: 10})
	var admit2 *AdmitError
	if !errors.As(err2, &admit2) || admit2.RetryAfter != admit.RetryAfter {
		t.Fatalf("retry hints differ for identical state: %v vs %v", admit, err2)
	}

	// Releasing frees the budget; the same job now fits.
	g.release("job-b")
	if err := g.admit("job-c", Cost{PeakBytes: 600, IterUnits: 10}); err != nil {
		t.Fatalf("admission after release: %v", err)
	}

	// Paused admissions reject everything that fits, with their own
	// reason.
	g.observe(g.heapHigh)
	err = g.admit("job-d", Cost{PeakBytes: 1, IterUnits: 1})
	if !errors.As(err, &admit) || admit.Reason != "admission_paused" {
		t.Fatalf("want admission_paused, got %v", err)
	}

	h := g.health()
	if h.Rejected != 4 || h.Committed != 600 || h.CommittedJobs != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestGovernorLadder(t *testing.T) {
	g := newGovernor(GovernorConfig{MemBudget: 1000, HeapHigh: 800, HeapLow: 600})
	step := func(heap int64, wantFrom, wantTo GovLevel, wantChanged bool) {
		t.Helper()
		from, to, changed := g.observe(heap)
		if from != wantFrom || to != wantTo || changed != wantChanged {
			t.Fatalf("observe(%d) = (%v,%v,%v), want (%v,%v,%v)", heap, from, to, changed, wantFrom, wantTo, wantChanged)
		}
	}
	step(100, GovNormal, GovNormal, false)
	step(600, GovNormal, GovShrink, true)  // low watermark crossed
	step(700, GovShrink, GovShrink, false) // holding
	step(800, GovShrink, GovPause, true)   // high watermark crossed
	step(900, GovPause, GovShed, true)     // pressure held: escalate
	step(900, GovShed, GovShed, false)     // held again: shed rung re-arms
	step(700, GovShed, GovShrink, true)    // receding: back to shrink only
	step(100, GovShrink, GovNormal, true)  // fully recovered
	h := g.health()
	if h.Shrinks != 1 || h.Pauses != 1 || h.Transitions != 5 || h.Level != "normal" {
		t.Fatalf("health after walk = %+v", h)
	}
}

// blockingRun is a runSpec stand-in that publishes nothing and blocks
// until its context dies, propagating the context error like the flow.
func blockingRun(ctx context.Context, _ *layout.Layout, _ *JobSpec, _ RunOpts) (*flow.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// heapScript is a settable fake heap reading for ladder tests.
type heapScript struct {
	mu sync.Mutex
	v  int64
}

func (h *heapScript) set(v int64) { h.mu.Lock(); h.v = v; h.mu.Unlock() }
func (h *heapScript) read() int64 { h.mu.Lock(); defer h.mu.Unlock(); return h.v }

// governedManager builds a Manager with a scripted heap, a fake
// executor, and a tiny budget, for pulse-driven tests.
func governedManager(t *testing.T, heap *heapScript, mutate func(*ManagerConfig)) *Manager {
	t.Helper()
	root := testLayoutRoot(t)
	cfg := ManagerConfig{
		DataDir:    filepath.Join(t.TempDir(), "data"),
		LayoutRoot: root,
		MaxActive:  2,
		QueueCap:   16,
		Governor:   GovernorConfig{MemBudget: 64 << 20, HeapHigh: 48 << 20, HeapLow: 32 << 20, ReadHeap: heap.read},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.runSpec = blockingRun
	t.Cleanup(m.Stop)
	return m
}

func waitJobState(t *testing.T, m *Manager, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s ended %s (%s), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// TestPressureLadderEndToEnd walks the full degradation ladder through
// Manager.Pulse: cache shrink, admission pause, shed of the youngest
// over-budget running job, then recovery — with every transition
// announced on live job streams.
func TestPressureLadderEndToEnd(t *testing.T) {
	heap := &heapScript{}
	cache, err := wcache.New(wcache.Config{MaxEntries: 64, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m := governedManager(t, heap, func(cfg *ManagerConfig) { cfg.Cache = cache })
	m.Start()

	// Two running jobs: one light (within its budget share), one heavy
	// (over the 32 MiB share). The heavy one is the shed candidate.
	light, err := m.Submit(specFor(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := m.Submit(specFor(t, func(s *JobSpec) {
		s.GridN = 512
		s.TileCore = 128
		s.TileHalo = 64
		s.KOpt = 8
		s.TileWorkers = 4
	}))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.CostBytes <= m.gov.budget/2 {
		t.Fatalf("heavy job cost %d not over its %d share; test needs a heavier spec", heavy.CostBytes, m.gov.budget/2)
	}
	waitJobState(t, m, light.ID, JobRunning)
	waitJobState(t, m, heavy.ID, JobRunning)

	// Rung 1: low watermark -> cache shrinks.
	heap.set(33 << 20)
	m.Pulse()
	if e, b := cache.Limits(); e != 64/4 || b != (1<<20)/4 {
		t.Fatalf("cache not shrunk: limits (%d, %d)", e, b)
	}

	// Rung 2: high watermark -> admissions pause.
	heap.set(49 << 20)
	m.Pulse()
	_, err = m.Submit(specFor(t, nil))
	var admit *AdmitError
	if !errors.As(err, &admit) || admit.Reason != "admission_paused" {
		t.Fatalf("submissions should pause under pressure, got %v", err)
	}

	// Rung 3: pressure holds -> the heavy job is shed; the light one
	// keeps running.
	m.Pulse()
	st := waitTerminal(t, m, heavy.ID)
	if st.State != JobFailed || !strings.HasPrefix(st.Error, "shed:") {
		t.Fatalf("heavy job = %s (%q), want failed shed:", st.State, st.Error)
	}
	if ls, _ := m.Status(light.ID); ls.State != JobRunning {
		t.Fatalf("light job was %s; shedding must only hit over-budget jobs", ls.State)
	}

	// Recovery: heap back under the low watermark -> cache restored,
	// admissions open.
	heap.set(1 << 20)
	m.Pulse()
	if e, b := cache.Limits(); e != 64 || b != 1<<20 {
		t.Fatalf("cache not restored: limits (%d, %d)", e, b)
	}
	if _, err := m.Submit(specFor(t, nil)); err != nil {
		t.Fatalf("admissions should reopen after recovery: %v", err)
	}

	h := m.GovernorHealth()
	if h.Sheds != 1 || h.Shrinks != 1 || h.Pauses != 1 {
		t.Fatalf("governor health = %+v", h)
	}

	// The ladder transitions were journaled on the light job's stream.
	sub, err := m.Subscribe(light.ID, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(light.ID, sub)
	evs, _ := sub.drain()
	var levels []string
	for _, ev := range evs {
		if ev.Kind == "governor" {
			levels = append(levels, ev.From+">"+ev.State)
		}
	}
	want := "shrink>pause"
	if len(levels) < 3 || levels[1] != want {
		t.Fatalf("governor events on stream = %v, want normal>shrink, %s, pause>shed, ...", levels, want)
	}
}

func TestWedgeWatchdog(t *testing.T) {
	heap := &heapScript{}
	m := governedManager(t, heap, func(cfg *ManagerConfig) { cfg.WedgeTimeout = 50 * time.Millisecond })
	m.Start()
	st, err := m.Submit(specFor(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, m, st.ID, JobRunning)
	// blockingRun publishes nothing, so lastEv stays at dispatch time.
	time.Sleep(80 * time.Millisecond)
	m.Pulse()
	fin := waitTerminal(t, m, st.ID)
	if fin.State != JobFailed || !strings.HasPrefix(fin.Error, "wedged:") {
		t.Fatalf("job = %s (%q), want failed wedged:", fin.State, fin.Error)
	}
	if h := m.GovernorHealth(); h.Wedges != 1 {
		t.Fatalf("wedges = %d, want 1", h.Wedges)
	}
}

func TestDeadlineQueuedAndTTL(t *testing.T) {
	heap := &heapScript{}
	for _, tc := range []struct {
		name    string
		mutate  func(*ManagerConfig)
		spec    func(*JobSpec)
		wantMsg string
	}{
		{
			name:    "per-job deadline",
			spec:    func(s *JobSpec) { s.DeadlineMS = 20 },
			wantMsg: "deadline 20ms exceeded",
		},
		{
			name:    "queue TTL",
			mutate:  func(cfg *ManagerConfig) { cfg.QueueTTL = 20 * time.Millisecond },
			wantMsg: "queue TTL exceeded",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := governedManager(t, heap, tc.mutate)
			// Not started: the job stays queued until the sweep fires.
			st, err := m.Submit(specFor(t, tc.spec))
			if err != nil {
				t.Fatal(err)
			}
			if st.DeadlineUnixMS == 0 {
				t.Fatal("status should expose the absolute deadline")
			}
			time.Sleep(30 * time.Millisecond)
			m.Pulse()
			fin, err := m.Status(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if fin.State != JobDeadline || !strings.Contains(fin.Error, tc.wantMsg) {
				t.Fatalf("job = %s (%q), want %s with %q", fin.State, fin.Error, JobDeadline, tc.wantMsg)
			}
			if m.QueueDepth() != 0 {
				t.Fatal("expired job still queued")
			}
			if h := m.GovernorHealth(); h.Expired != 1 || h.Committed != 0 {
				t.Fatalf("governor health = %+v, want expired=1 committed=0", h)
			}
			// The terminal event is journaled: a fresh subscriber replays
			// it from seq 0.
			sub, err := m.Subscribe(st.ID, 0, 16)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Unsubscribe(st.ID, sub)
			evs, _ := sub.drain()
			last := evs[len(evs)-1]
			if last.Kind != "state" || last.State != string(JobDeadline) {
				t.Fatalf("last journaled event = %+v, want terminal %s", last, JobDeadline)
			}
		})
	}
}

func TestDeadlineWhileRunning(t *testing.T) {
	heap := &heapScript{}
	m := governedManager(t, heap, nil)
	m.Start()
	st, err := m.Submit(specFor(t, func(s *JobSpec) { s.DeadlineMS = 60 }))
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, m, st.ID, JobRunning)
	// No pulse needed: the run context's deadline fires on its own.
	fin := waitTerminal(t, m, st.ID)
	if fin.State != JobDeadline || !strings.Contains(fin.Error, "deadline 60ms exceeded") {
		t.Fatalf("job = %s (%q), want %s", fin.State, fin.Error, JobDeadline)
	}
}

// TestDeadlineAnchorSurvivesRestart proves the deadline is measured
// from first admission, not from the latest requeue: a manager reopened
// on the same data directory must expire a still-pending job using the
// original anchor.
func TestDeadlineAnchorSurvivesRestart(t *testing.T) {
	heap := &heapScript{}
	root := testLayoutRoot(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	cfg := ManagerConfig{
		DataDir:    dataDir,
		LayoutRoot: root,
		Governor:   GovernorConfig{ReadHeap: heap.read},
	}
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(specFor(t, func(s *JobSpec) { s.DeadlineMS = 50 }))
	if err != nil {
		t.Fatal(err)
	}
	m1.Stop() // never started; the job stays queued in the journal

	time.Sleep(60 * time.Millisecond) // the deadline passes while "down"

	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	st2, err := m2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DeadlineUnixMS != st.DeadlineUnixMS {
		t.Fatalf("deadline moved across restart: %d -> %d", st.DeadlineUnixMS, st2.DeadlineUnixMS)
	}
	if h := m2.GovernorHealth(); h.Committed == 0 {
		t.Fatal("recovered job should re-reserve governor budget")
	}
	m2.Pulse()
	fin, err := m2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDeadline {
		t.Fatalf("recovered job = %s, want %s (anchor from first record)", fin.State, JobDeadline)
	}
	if h := m2.GovernorHealth(); h.Committed != 0 {
		t.Fatalf("expired job still holds %d reserved bytes", h.Committed)
	}
}

// TestEstimateCostCalibration runs a real flow and checks the cost
// model's flow-bytes term against the flow's own measured PeakBytes.
// The bound is loose — the estimate guesses the shot count — but a
// model drifting past 3x in either direction is lying to admission
// control. BENCH_flow.json records the measured ratios as the
// governor_calibration exhibit.
func TestEstimateCostCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("real flow run")
	}
	root := testLayoutRoot(t)
	for _, mutate := range []func(*JobSpec){
		nil,
		func(s *JobSpec) { s.GridN = 256; s.TileCore = 128; s.TileHalo = 32 },
	} {
		spec := specFor(t, mutate)
		l, err := spec.ResolveLayout(root)
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateCost(spec, len(l.Rects))
		res, err := RunSpec(context.Background(), l, spec, RunOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakBytes <= 0 {
			t.Fatal("flow reported no PeakBytes")
		}
		ratio := float64(est.FlowBytes) / float64(res.PeakBytes)
		if ratio < 1.0/3 || ratio > 3 {
			t.Fatalf("grid %d: estimate %d vs actual %d (ratio %.2f) outside [0.33, 3]",
				spec.GridN, est.FlowBytes, res.PeakBytes, ratio)
		}
		t.Logf("grid %d: estimate %d actual %d ratio %.2f", spec.GridN, est.FlowBytes, res.PeakBytes, ratio)
	}
}

// TestMonitorTickerExpiresDeadline exercises the background monitor
// goroutine (MonitorEvery > 0): a queued job past its deadline must be
// expired by the ticker alone, with no manual Pulse.
func TestMonitorTickerExpiresDeadline(t *testing.T) {
	heap := &heapScript{}
	heap.set(1 << 20)
	m := governedManager(t, heap, func(cfg *ManagerConfig) {
		cfg.MaxActive = 1
		cfg.MonitorEvery = 10 * time.Millisecond
	})
	m.Start()

	// The blocker occupies the only slot; the deadlined job queues.
	blocker, err := m.Submit(specFor(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, m, blocker.ID, JobRunning)
	queued, err := m.Submit(specFor(t, func(s *JobSpec) { s.DeadlineMS = 30 }))
	if err != nil {
		t.Fatal(err)
	}

	st := waitTerminal(t, m, queued.ID)
	if st.State != JobDeadline {
		t.Fatalf("queued job ended %s (%s), want deadline_exceeded via the monitor ticker", st.State, st.Error)
	}
	if m.GovernorHealth().Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", m.GovernorHealth().Expired)
	}
}
