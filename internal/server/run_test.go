package server

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/grid"
)

// --- bandFile contract ---

func TestBandFileRejectsOutOfOrderBand(t *testing.T) {
	p := filepath.Join(t.TempDir(), "m.pgm")
	bf, err := newBandFile(nil, p, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.abort()
	if err := bf.WriteBand(4, grid.NewReal(8, 2)); err == nil {
		t.Fatal("accepted a band starting past the next expected row")
	}
	if err := bf.WriteBand(0, grid.NewReal(4, 2)); err == nil {
		t.Fatal("accepted a band narrower than the grid")
	}
}

func TestBandFileCloseRequiresAllRows(t *testing.T) {
	p := filepath.Join(t.TempDir(), "m.pgm")
	bf, err := newBandFile(nil, p, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.WriteBand(0, grid.NewReal(8, 2)); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err == nil || !strings.Contains(err.Error(), "2 of 8 rows") {
		t.Fatalf("Close with missing rows: %v", err)
	}
}

func TestBandFileAbortLeavesPartialFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "m.pgm")
	bf, err := newBandFile(nil, p, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.WriteBand(0, grid.NewReal(4, 1)); err != nil {
		t.Fatal(err)
	}
	bf.abort()
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := len("P5\n4 4\n255\n") + 4; len(b) != want {
		t.Fatalf("partial file is %d bytes, want %d (header + one flushed band)", len(b), want)
	}
}

func TestNewBandFileBadPath(t *testing.T) {
	if _, err := newBandFile(nil, filepath.Join(t.TempDir(), "no", "such", "dir", "m.pgm"), 8, nil); err == nil {
		t.Fatal("created a band file under a nonexistent directory")
	}
}

// --- RunSpec error paths ---

func TestRunSpecRejectsUnknownEngines(t *testing.T) {
	root := testLayoutRoot(t)
	spec, err := parseSpecString(t, fastSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	l, err := spec.ResolveLayout(root)
	if err != nil {
		t.Fatal(err)
	}
	bad := *spec
	bad.Method = "no-such-engine"
	if _, err := RunSpec(context.Background(), l, &bad, RunOpts{}); err == nil {
		t.Fatal("RunSpec accepted an unknown method")
	}
	bad = *spec
	bad.Fallback = "no-such-engine"
	if _, err := RunSpec(context.Background(), l, &bad, RunOpts{}); err == nil {
		t.Fatal("RunSpec accepted an unknown fallback")
	}
}

func TestRunSpecCanceledContextAborts(t *testing.T) {
	root := testLayoutRoot(t)
	spec, err := parseSpecString(t, fastSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	l, err := spec.ResolveLayout(root)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	maskPath := filepath.Join(t.TempDir(), "mask.pgm")
	if _, err := RunSpec(ctx, l, spec, RunOpts{MaskPath: maskPath}); err == nil {
		t.Fatal("RunSpec succeeded with a pre-canceled context")
	}
	// abort() released the handle but kept the partial file for a resume.
	if _, err := os.Stat(maskPath); err != nil {
		t.Fatalf("aborted run removed the mask file: %v", err)
	}
}

// --- spec resolution ---

func TestResolveLayoutVariants(t *testing.T) {
	root := testLayoutRoot(t)
	spec, err := parseSpecString(t, `{"case":1}`)
	if err != nil {
		t.Fatal(err)
	}
	if l, err := spec.ResolveLayout(root); err != nil || l == nil {
		t.Fatalf("case suite: %v", err)
	}
	spec, err = parseSpecString(t, `{"layout":"missing.glp"}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.ResolveLayout(root); err == nil {
		t.Fatal("resolved a nonexistent layout file")
	}
	if err := os.WriteFile(filepath.Join(root, "junk.gds"), []byte("not a gds"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err = parseSpecString(t, `{"layout":"junk.gds"}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.ResolveLayout(root); err == nil {
		t.Fatal("resolved a malformed gds file")
	}
}

// --- manager construction and recovery errors ---

func TestNewManagerRequiresDataDir(t *testing.T) {
	if _, err := NewManager(ManagerConfig{}); err == nil {
		t.Fatal("NewManager accepted an empty DataDir")
	}
}

func TestNewManagerDataDirIsFile(t *testing.T) {
	f := filepath.Join(t.TempDir(), "flat")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(ManagerConfig{DataDir: f}); err == nil {
		t.Fatal("NewManager accepted a plain file as DataDir")
	}
}

func TestNewManagerRejectsCorruptJobRecord(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	j, _, err := checkpoint.Open(filepath.Join(dataDir, "jobs.log"), jobsJournalHeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("not json")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := NewManager(ManagerConfig{DataDir: dataDir}); err == nil {
		t.Fatal("NewManager accepted a corrupt job record")
	}
}

func TestNewManagerRejectsStateWithoutSpec(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	j, _, err := checkpoint.Open(filepath.Join(dataDir, "jobs.log"), jobsJournalHeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte(`{"id":"job-0000","state":"running"}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := NewManager(ManagerConfig{DataDir: dataDir}); err == nil {
		t.Fatal("NewManager accepted a job with state records but no spec")
	}
}

// --- failed jobs over the API ---

// TestHTTPFailedJob drives a job into the failed state (the layout file
// disappears between submit-time validation and execution) and checks
// the stream, status, and artifact endpoints all report it.
func TestHTTPFailedJob(t *testing.T) {
	root := testLayoutRoot(t)
	m, ts := newTestService(t, root, 1, 8, false)
	st, resp := postJob(t, ts.URL, fastSpecJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	if m.QueueDepth() != 1 {
		t.Fatalf("queue depth %d after submit, want 1", m.QueueDepth())
	}
	if err := os.Remove(filepath.Join(root, "t.glp")); err != nil {
		t.Fatal(err)
	}
	m.Start()
	waitState(t, ts.URL, st.ID, JobFailed)
	if got := getStatus(t, ts.URL, st.ID); got.Error == "" {
		t.Fatal("failed job reports no error message")
	}
	for _, ep := range []string{"/mask", "/shots"} {
		r, err := http.Get(ts.URL + "/jobs/" + st.ID + ep)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusConflict {
			t.Fatalf("GET %s on failed job: %s, want 409", ep, r.Status)
		}
	}
	evs := streamEvents(t, ts.URL, st.ID, 0)
	last := evs[len(evs)-1]
	if last.State != string(JobFailed) || last.Error == "" {
		t.Fatalf("final event %+v, want failed with an error", last)
	}
}

func TestMaxInt64(t *testing.T) {
	if maxInt64(3, 7) != 7 || maxInt64(7, 3) != 7 {
		t.Fatal("maxInt64 broken")
	}
}

// manyTileSpecJSON has 64 windows so a cancel or shutdown reliably
// lands between tile completions.
const manyTileSpecJSON = `{"layout":"t.glp","grid":512,"tile_core":64,"iters":2,"kopt":3}`

// waitTile blocks until the job announces a completed tile.
func waitTile(t *testing.T, m *Manager, id string) {
	t.Helper()
	sub, err := m.Subscribe(id, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unsubscribe(id, sub)
	deadline := time.After(120 * time.Second)
	for {
		evs, _ := sub.drain()
		for _, ev := range evs {
			if ev.Kind == "tile" {
				return
			}
			if ev.Kind == "state" && JobState(ev.State).terminal() {
				t.Fatalf("job went %s before any tile completed", ev.State)
			}
		}
		select {
		case <-sub.wait():
		case <-deadline:
			t.Fatal("no tile completed in time")
		}
	}
}

// TestManagerCancelRunningJob interrupts a job mid-run and checks the
// cancel wins over the run error, plus the unknown-ID error paths.
func TestManagerCancelRunningJob(t *testing.T) {
	root := testLayoutRoot(t)
	m, ts := newTestService(t, root, 1, 8, true)
	st, resp := postJob(t, ts.URL, manyTileSpecJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	waitTile(t, m, st.ID)
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts.URL, st.ID, JobCanceled)
	// Cancel of a terminal job is a no-op, not an error.
	if st2, err := m.Cancel(st.ID); err != nil || st2.State != JobCanceled {
		t.Fatalf("re-cancel: %v %v", st2, err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
	if _, err := m.Status("nope"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("status unknown: %v", err)
	}
	if _, err := m.Subscribe("nope", 0, 1); !errors.Is(err, ErrNoJob) {
		t.Fatalf("subscribe unknown: %v", err)
	}
	m.Unsubscribe("nope", nil) // harmless no-op
}

// TestManagerStopMidRunRequeues pins the shutdown contract: a job
// interrupted by Stop gets no terminal record, so the next manager
// finds it queued again.
func TestManagerStopMidRunRequeues(t *testing.T) {
	root := testLayoutRoot(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	m1, err := NewManager(ManagerConfig{DataDir: dataDir, LayoutRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := parseSpecString(t, manyTileSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	waitTile(t, m1, st.ID)
	m1.Stop()

	m2, err := NewManager(ManagerConfig{DataDir: dataDir, LayoutRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	got, err := m2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobQueued {
		t.Fatalf("interrupted job recovered as %s, want queued", got.State)
	}
	if m2.QueueDepth() != 1 {
		t.Fatalf("queue depth %d after recovery, want 1", m2.QueueDepth())
	}
}

// TestNewManagerRejectsForeignEventJournal: recovery must refuse an
// event journal bound to a different job.
func TestNewManagerRejectsForeignEventJournal(t *testing.T) {
	root := testLayoutRoot(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	m1, err := NewManager(ManagerConfig{DataDir: dataDir, LayoutRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := parseSpecString(t, fastSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	m1.Stop()
	// Swap in a journal written under another job's identity.
	path := filepath.Join(dataDir, "jobs", st.ID, "events.log")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	h, err := newHub(path, "job-9999", spec)
	if err != nil {
		t.Fatal(err)
	}
	h.publish(JobEvent{Kind: "state", State: "queued"})
	h.close()
	if _, err := NewManager(ManagerConfig{DataDir: dataDir, LayoutRoot: root}); err == nil {
		t.Fatal("recovery accepted an event journal bound to a different job")
	}
}
