//go:build race

package server

// raceEnabled lets timing-sensitive tests budget for the race
// detector's slowdown (5-10x on compute-heavy paths).
const raceEnabled = true
