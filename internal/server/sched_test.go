package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock is a deterministic scheduler clock: every reading advances
// one second from an arbitrary epoch.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Second)
	return c.t
}

type addStep struct {
	id       string
	tenant   string
	priority int
}

func TestSchedulerOrdering(t *testing.T) {
	cases := []struct {
		name   string
		cap    int
		add    []addStep
		cancel []string
		full   []string // ids whose enqueue must be rejected
		want   []string // pop order of everything admitted
	}{
		{
			name: "priority descends, FIFO within a band",
			cap:  10,
			add: []addStep{
				{"a", "t", 0}, {"b", "t", 5}, {"c", "t", 0}, {"d", "t", -3}, {"e", "t", 5},
			},
			want: []string{"b", "e", "a", "c", "d"},
		},
		{
			name: "flooding tenant interleaves 1:1 with the other",
			cap:  10,
			add: []addStep{
				{"a1", "alice", 0}, {"a2", "alice", 0}, {"a3", "alice", 0},
				{"a4", "alice", 0}, {"a5", "alice", 0},
				{"b1", "bob", 0}, {"b2", "bob", 0},
			},
			want: []string{"a1", "b1", "a2", "b2", "a3", "a4", "a5"},
		},
		{
			name: "high priority preempts the fairness rotation",
			cap:  10,
			add: []addStep{
				{"a1", "alice", 0}, {"a2", "alice", 0},
				{"b1", "bob", 0}, {"urgent", "bob", 9},
			},
			// urgent jumps the whole queue; it also counts as bob's
			// service, so the rotation resumes with alice.
			want: []string{"urgent", "a1", "b1", "a2"},
		},
		{
			name: "three tenants rotate",
			cap:  10,
			add: []addStep{
				{"a1", "a", 0}, {"a2", "a", 0},
				{"b1", "b", 0}, {"b2", "b", 0},
				{"c1", "c", 0}, {"c2", "c", 0},
			},
			want: []string{"a1", "b1", "c1", "a2", "b2", "c2"},
		},
		{
			name: "queue-full rejects beyond the cap",
			cap:  2,
			add:  []addStep{{"a", "t", 0}, {"b", "t", 0}, {"c", "t", 0}, {"d", "u", 9}},
			full: []string{"c", "d"},
			want: []string{"a", "b"},
		},
		{
			name:   "cancel-while-queued removes exactly that job",
			cap:    10,
			add:    []addStep{{"a", "t", 0}, {"b", "t", 0}, {"c", "t", 0}},
			cancel: []string{"b"},
			want:   []string{"a", "c"},
		},
		{
			name:   "cancel frees queue capacity",
			cap:    2,
			add:    []addStep{{"a", "t", 0}, {"b", "t", 0}},
			cancel: []string{"a"},
			want:   []string{"b"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newScheduler(tc.cap)
			s.now = newFakeClock().now
			rejected := map[string]bool{}
			for _, a := range tc.add {
				if err := s.enqueue(a.id, a.tenant, a.priority); err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Fatalf("enqueue %s: %v", a.id, err)
					}
					rejected[a.id] = true
				}
			}
			for _, id := range tc.full {
				if !rejected[id] {
					t.Errorf("enqueue %s should have been rejected", id)
				}
			}
			if len(rejected) != len(tc.full) {
				t.Errorf("rejected %v, want %v", rejected, tc.full)
			}
			for _, id := range tc.cancel {
				if !s.cancel(id) {
					t.Fatalf("cancel %s: not found in queue", id)
				}
			}
			var got []string
			for {
				j := s.pop()
				if j == nil {
					break
				}
				got = append(got, j.id)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("popped %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("pop order %v, want %v", got, tc.want)
				}
			}
			if s.depth() != 0 {
				t.Fatalf("depth %d after draining", s.depth())
			}
		})
	}
}

// TestSchedulerStarvationBound pins the anti-starvation contract: a
// sustained priority-100 flood must not hold a priority-0 job past
// maxWait. The fake clock advances one second per reading, and each
// loop iteration reads it twice (one enqueue, one pop), so the victim
// — queued at t=1s — becomes overdue at pop i where 2i >= maxWait.
// Everything is deterministic, so the full pop order is asserted.
func TestSchedulerStarvationBound(t *testing.T) {
	cases := []struct {
		name    string
		maxWait time.Duration
		tenant  string // flood tenant ("victim" = same tenant as the victim)
		rounds  int    // flood enqueue+pop rounds
		want    []string
	}{
		{
			// Overdue at pop 5 (age 10s): four flood jobs go first on
			// priority, then the bound preempts.
			name: "cross-tenant flood", maxWait: 10 * time.Second,
			tenant: "flood", rounds: 5,
			want: []string{"f1", "f2", "f3", "f4", "victim"},
		},
		{
			// A tighter bound preempts sooner.
			name: "tight bound", maxWait: 6 * time.Second,
			tenant: "flood", rounds: 3,
			want: []string{"f1", "f2", "victim"},
		},
		{
			// The victim sits behind its own tenant's priority-100 heads;
			// the overdue scan must look past tenant queue heads.
			name: "same-tenant flood", maxWait: 10 * time.Second,
			tenant: "victim", rounds: 5,
			want: []string{"f1", "f2", "f3", "f4", "victim"},
		},
		{
			// Bound disabled: the documented starvation — the victim only
			// pops once the flood is drained.
			name: "disabled bound starves", maxWait: 0,
			tenant: "flood", rounds: 5,
			want: []string{"f1", "f2", "f3", "f4", "f5"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newScheduler(64)
			s.now = newFakeClock().now
			s.maxWait = tc.maxWait
			if err := s.enqueue("victim", "victim", 0); err != nil {
				t.Fatal(err)
			}
			var got []string
			for i := 1; i <= tc.rounds; i++ {
				if err := s.enqueue(fmt.Sprintf("f%d", i), tc.tenant, 100); err != nil {
					t.Fatal(err)
				}
				j := s.pop()
				if j == nil {
					t.Fatal("pop returned nil with jobs queued")
				}
				got = append(got, j.id)
				if j.id == "victim" {
					break
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("pop order %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSchedulerFakeClockStampsAdmission(t *testing.T) {
	s := newScheduler(4)
	s.now = newFakeClock().now
	for _, id := range []string{"a", "b", "c"} {
		if err := s.enqueue(id, "t", 0); err != nil {
			t.Fatal(err)
		}
	}
	var prev time.Time
	for i := 0; i < 3; i++ {
		j := s.pop()
		if !j.queuedAt.After(prev) {
			t.Fatalf("job %s queuedAt %v not after %v", j.id, j.queuedAt, prev)
		}
		prev = j.queuedAt
	}
}

func TestSchedulerCancelUnknown(t *testing.T) {
	s := newScheduler(2)
	if s.cancel("ghost") {
		t.Fatal("canceled a job that was never queued")
	}
	s.enqueue("a", "t", 0)
	s.pop()
	if s.cancel("a") {
		t.Fatal("canceled a job already dispatched")
	}
}

func TestSchedulerNextBlocksAndWakes(t *testing.T) {
	s := newScheduler(4)
	got := make(chan string, 1)
	go func() {
		j, err := s.next(context.Background())
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- j.id
	}()
	time.Sleep(20 * time.Millisecond) // let next() block on the doorbell
	if err := s.enqueue("a", "t", 0); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-got:
		if id != "a" {
			t.Fatalf("next returned %q, want a", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("next() never woke after enqueue")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.next(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("next returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("next() ignored context cancellation")
	}
}

// TestSchedulerDoorbellCascades pins the coalescing fix: two executors
// blocked on next() must both be served when two jobs arrive
// back-to-back, even though the doorbell holds only one signal.
func TestSchedulerDoorbellCascades(t *testing.T) {
	s := newScheduler(4)
	got := make(chan string, 2)
	for i := 0; i < 2; i++ {
		go func() {
			j, err := s.next(context.Background())
			if err == nil {
				got <- j.id
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.enqueue("a", "t", 0)
	s.enqueue("b", "t", 0)
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case id := <-got:
			seen[id] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of 2 executors woke; doorbell lost a signal", i)
		}
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("served %v, want both a and b", seen)
	}
}
