package server

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrQueueFull is returned by enqueue when the backlog cap is reached;
// the HTTP layer maps it to 429 so clients back off instead of piling
// unbounded work onto the daemon.
var ErrQueueFull = errors.New("server: job queue full")

// schedJob is the scheduler's view of a queued job: enough to order it,
// nothing about how to run it.
type schedJob struct {
	id       string
	tenant   string
	priority int
	seq      int64     // admission order, the final tie-break
	queuedAt time.Time // stamped from the scheduler clock
}

// scheduler is a bounded priority queue with per-tenant fairness.
//
// Each tenant holds its own queue ordered by (priority desc, admission
// asc). Dequeue considers only the head of each tenant's queue and
// picks the highest priority among heads; ties go to the tenant served
// least recently (then to the lexicographically smaller tenant, so the
// schedule is a pure function of the admission history). A tenant
// flooding the queue with equal-priority jobs therefore interleaves
// 1:1 with everyone else instead of starving them, while a genuinely
// higher-priority job still preempts the rotation.
//
// Priority preemption alone can starve: a sustained priority-100 flood
// would hold a priority-0 job queued forever. maxWait bounds that —
// any job queued longer than maxWait joins the overdue class, which is
// served FIFO (by admission order) ahead of every priority. The wait
// bound is therefore hard: maxWait plus the service time of the
// overdue jobs admitted before it.
type scheduler struct {
	mu       sync.Mutex
	cap      int // max queued jobs across all tenants
	byTenant map[string][]*schedJob
	served   map[string]int64 // tenant -> last service tick
	queued   int
	seq      int64            // admission counter
	tick     int64            // service counter
	now      func() time.Time // injectable for tests
	wake     chan struct{}    // 1-buffered doorbell for blocked next()
	maxWait  time.Duration    // anti-starvation bound (0 = disabled)
}

func newScheduler(capacity int) *scheduler {
	return &scheduler{
		cap:      capacity,
		byTenant: map[string][]*schedJob{},
		served:   map[string]int64{},
		now:      time.Now,
		wake:     make(chan struct{}, 1),
	}
}

// enqueue admits a job or rejects it with ErrQueueFull. Admission
// order within a tenant and priority band is FIFO.
func (s *scheduler) enqueue(id, tenant string, priority int) error {
	s.mu.Lock()
	if s.queued >= s.cap {
		s.mu.Unlock()
		return ErrQueueFull
	}
	s.seq++
	j := &schedJob{id: id, tenant: tenant, priority: priority, seq: s.seq, queuedAt: s.now()}
	q := s.byTenant[tenant]
	at := sort.Search(len(q), func(i int) bool {
		if q[i].priority != j.priority {
			return q[i].priority < j.priority
		}
		return q[i].seq > j.seq
	})
	q = append(q, nil)
	copy(q[at+1:], q[at:])
	q[at] = j
	s.byTenant[tenant] = q
	s.queued++
	s.mu.Unlock()
	s.ring()
	return nil
}

// cancel removes a still-queued job. It reports false when the job is
// not in the queue — already dispatched, finished, or never admitted.
func (s *scheduler) cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for tenant, q := range s.byTenant {
		for i, j := range q {
			if j.id == id {
				s.byTenant[tenant] = append(q[:i:i], q[i+1:]...)
				if len(s.byTenant[tenant]) == 0 {
					delete(s.byTenant, tenant)
				}
				s.queued--
				return true
			}
		}
	}
	return false
}

// next blocks until a job is available or ctx is done, then dequeues
// the job the fairness rule selects.
func (s *scheduler) next(ctx context.Context) (*schedJob, error) {
	for {
		if j := s.pop(); j != nil {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.wake:
		}
	}
}

// pop dequeues the selected job, or returns nil when the queue is
// empty. Overdue jobs (queued past maxWait) preempt the priority rule
// entirely and are served in admission order.
func (s *scheduler) pop() *schedJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bestTenant string
	var best *schedJob
	if s.maxWait > 0 {
		best, bestTenant = s.overdueLocked(s.now())
	}
	if best == nil {
		for tenant, q := range s.byTenant {
			head := q[0]
			if best == nil || better(head, tenant, best, bestTenant, s.served) {
				best, bestTenant = head, tenant
			}
		}
	}
	if best == nil {
		return nil
	}
	s.removeLocked(bestTenant, best)
	s.queued--
	s.tick++
	s.served[bestTenant] = s.tick
	if s.queued > 0 {
		// The doorbell holds one signal, so back-to-back enqueues can
		// coalesce; cascade it forward while work remains queued so
		// every blocked executor eventually drains one job.
		s.ring()
	}
	return best
}

// overdueLocked scans every queued job (not just tenant heads — an
// overdue low-priority job sits behind its own tenant's fresher
// high-priority work) for the oldest admission that has waited past
// maxWait.
func (s *scheduler) overdueLocked(now time.Time) (*schedJob, string) {
	var best *schedJob
	var bestTenant string
	for tenant, q := range s.byTenant {
		for _, j := range q {
			if now.Sub(j.queuedAt) < s.maxWait {
				continue
			}
			if best == nil || j.seq < best.seq {
				best, bestTenant = j, tenant
			}
		}
	}
	return best, bestTenant
}

// removeLocked deletes j from its tenant's queue (j may sit mid-queue
// when the overdue rule selected it).
func (s *scheduler) removeLocked(tenant string, j *schedJob) {
	q := s.byTenant[tenant]
	for i, cand := range q {
		if cand == j {
			q = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(s.byTenant, tenant)
	} else {
		s.byTenant[tenant] = q
	}
}

// better reports whether head-of-queue a (of tenant ta) should be
// served before b (of tenant tb): priority first, then the tenant
// served longest ago, then the stable name order.
func better(a *schedJob, ta string, b *schedJob, tb string, served map[string]int64) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if served[ta] != served[tb] {
		return served[ta] < served[tb]
	}
	return ta < tb
}

// depth reports the number of queued jobs.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// QueueHealth is the scheduler's /healthz section: backlog size and
// shape, and how stale its oldest admission is.
type QueueHealth struct {
	Depth       int            `json:"depth"`
	Cap         int            `json:"cap"`
	Tenants     map[string]int `json:"tenants,omitempty"`       // queued jobs per tenant
	OldestAgeMS int64          `json:"oldest_age_ms,omitempty"` // wait of the oldest queued job
}

// health snapshots the queue for /healthz.
func (s *scheduler) health() QueueHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	qh := QueueHealth{Depth: s.queued, Cap: s.cap}
	if s.queued == 0 {
		return qh
	}
	qh.Tenants = make(map[string]int, len(s.byTenant))
	var oldest *schedJob
	for tenant, q := range s.byTenant {
		qh.Tenants[tenant] = len(q)
		for _, j := range q {
			if oldest == nil || j.seq < oldest.seq {
				oldest = j
			}
		}
	}
	if oldest != nil {
		if age := s.now().Sub(oldest.queuedAt); age > 0 {
			qh.OldestAgeMS = age.Milliseconds()
		}
	}
	return qh
}

// ring wakes one blocked next() without ever blocking the caller.
func (s *scheduler) ring() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}
