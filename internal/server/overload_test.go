package server

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Overload acceptance: the daemon under a tight memory budget with a
// mixed heavy/light burst must stay inside the budget, reject with
// typed deterministic errors, finish every admitted job with artifacts
// byte-identical to the CLI, and expire deadlined jobs into a terminal
// state that replays seq-exactly across a SIGKILL restart.
//
// TestOverloadMatrix is the CI entry point: OVERLOAD=burst|deadline|
// pressure picks one leg so the matrix runs them isolated under -race.

const (
	overloadBudget = 16 << 20 // fits one light + one heavy job, not a third

	// lightSpec ~3.8 MiB peak, heavySpec ~11 MiB peak (window 192,
	// priced by EstimateCost; the test simulates the ledger rather than
	// hardcoding byte counts).
	lightSpec = fastSpecJSON
	heavySpec = `{"layout":"t.glp","grid":256,"tile_core":128,"tile_halo":32,"iters":2,"kopt":5,"tile_workers":2}`
	// giantSpec prices past the whole budget: typed 400, never queued.
	giantSpec = `{"layout":"t.glp","grid":512,"tile_core":128,"tile_halo":64,"kopt":8,"tile_workers":4}`
)

func TestOverloadAcceptance(t *testing.T) {
	t.Run("burst", overloadBurst)
	t.Run("deadline_sigkill", overloadDeadline)
}

func TestOverloadMatrix(t *testing.T) {
	switch leg := os.Getenv("OVERLOAD"); leg {
	case "burst":
		overloadBurst(t)
	case "deadline":
		overloadDeadline(t)
	case "pressure":
		overloadPressure(t)
	default:
		t.Skip("set OVERLOAD=burst|deadline|pressure to run one overload leg")
	}
}

// overloadBurst submits a mixed burst against a budget sized for two
// jobs. The admit/reject split must match a test-side replay of the
// governor ledger exactly, admitted jobs must finish byte-identical to
// the CLI, the heap must stay bounded, and completion must hand the
// budget back.
func overloadBurst(t *testing.T) {
	m, ts := newGovernedService(t, func(cfg *ManagerConfig) {
		cfg.Governor = GovernorConfig{MemBudget: overloadBudget}
		cfg.MaxActive = 1
	}, false) // admissions decided before anything runs: ordering is pure

	burst := []string{lightSpec, heavySpec, lightSpec, lightSpec, heavySpec, lightSpec}

	// Test-side replay of the admission ledger: same costs, same budget,
	// same order -> the server must agree decision for decision.
	var committed int64
	var wantAdmit []bool
	for _, specJSON := range burst {
		spec, err := parseSpecString(t, specJSON)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := m.EstimateFor(spec)
		if err != nil {
			t.Fatal(err)
		}
		fits := committed+cost.PeakBytes <= overloadBudget
		if fits {
			committed += cost.PeakBytes
		}
		wantAdmit = append(wantAdmit, fits)
	}

	var admitted []JobStatus
	for i, specJSON := range burst {
		if wantAdmit[i] {
			st, resp := postJob(t, ts.URL, specJSON)
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("burst[%d]: %s, ledger replay says admit", i, resp.Status)
			}
			admitted = append(admitted, st)
			continue
		}
		resp := postRaw(t, ts.URL, specJSON)
		body := decodeAPIError(t, resp, http.StatusTooManyRequests, "over_budget")
		if body.RetryAfterMS <= 0 {
			t.Fatalf("burst[%d]: reject without a retry hint", i)
		}
	}
	if len(admitted) != 2 {
		t.Fatalf("admitted %d jobs, want 2 (one light + one heavy)", len(admitted))
	}

	// A job bigger than the whole budget is a permanent typed 400.
	decodeAPIError(t, postRaw(t, ts.URL, giantSpec), http.StatusBadRequest, "job_exceeds_budget")

	// Run the admitted jobs for real, watching the live heap: it must
	// stay within a constant factor of the budget the whole way.
	baseline := liveHeapBytes()
	heapBound := baseline + 8*int64(overloadBudget)
	var heapMax int64
	jobWait := 120 * time.Second
	if raceEnabled {
		jobWait *= 4 // the heavy job alone can exceed 120s under the race detector
	}
	m.Start()
	for _, st := range admitted {
		deadline := time.Now().Add(jobWait)
		for {
			if h := liveHeapBytes(); h > heapMax {
				heapMax = h
			}
			cur := getStatus(t, ts.URL, st.ID)
			if cur.State.terminal() {
				if cur.State != JobDone {
					t.Fatalf("admitted job %s ended %s (%s)", st.ID, cur.State, cur.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s after %v", st.ID, cur.State, jobWait)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if heapMax > heapBound {
		t.Fatalf("heap peaked at %d bytes, bound %d (baseline %d + 8x budget)", heapMax, heapBound, baseline)
	}
	gh := m.GovernorHealth()
	if gh.Wedges != 0 {
		t.Fatalf("wedge watchdog fired during a healthy burst: %+v", gh)
	}
	if gh.Committed != 0 || gh.CommittedJobs != 0 {
		t.Fatalf("budget not returned after completion: %+v", gh)
	}

	// The freed budget readmits a job that was just rejected.
	if _, resp := postJob(t, ts.URL, heavySpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("resubmit after release: %s", resp.Status)
	}

	// Byte parity: the governed daemon's artifacts match direct CLI runs.
	cli := buildCLI(t)
	root := m.layoutRoot
	for i, st := range admitted {
		specJSON := []string{lightSpec, heavySpec}[i]
		specPath := filepath.Join(t.TempDir(), "spec.json")
		if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
			t.Fatal(err)
		}
		outDir := t.TempDir()
		cmd := exec.Command(cli, "-job", specPath, "-layout-root", root, "-out", outDir)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("cfaopc -job: %v\n%s", err, out)
		}
		daemonMask := httpGetBytes(t, ts.URL+"/jobs/"+st.ID+"/mask", http.StatusOK)
		cliMask, err := os.ReadFile(filepath.Join(outDir, "mask.pgm"))
		if err != nil {
			t.Fatal(err)
		}
		if string(daemonMask) != string(cliMask) {
			t.Fatalf("job %s: mask diverges from CLI under governance (%d vs %d bytes)",
				st.ID, len(daemonMask), len(cliMask))
		}
		daemonShots := httpGetBytes(t, ts.URL+"/jobs/"+st.ID+"/shots", http.StatusOK)
		cliShots, err := os.ReadFile(filepath.Join(outDir, "shots.csv"))
		if err != nil {
			t.Fatal(err)
		}
		if string(daemonShots) != string(cliShots) {
			t.Fatalf("job %s: shots diverge from CLI under governance", st.ID)
		}
	}
}

// overloadDeadline covers the deadline contract across a crash: a job
// whose deadline expires while the daemon is DOWN must surface as
// deadline_exceeded after restart, with its event journal replaying
// seq-exactly from the client's Last-Event-ID.
func overloadDeadline(t *testing.T) {
	root := testLayoutRoot(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	env := []string{daemonMonitorEnv + "=50ms"}

	// Job 1 occupies the single executor slot; job 2 queues behind it
	// with a 300ms deadline that will pass while the daemon is dead.
	d1 := startDaemon(t, dataDir, root, env...)
	blocker := `{"layout":"t.glp","grid":256,"tile_core":64,"iters":3,"kopt":3,"tenant":"alice"}`
	st1, resp := postJob(t, d1.url, blocker)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit blocker: %s", resp.Status)
	}
	deadlined := `{"layout":"t.glp","grid":128,"tile_core":64,"iters":2,"kopt":3,"tenant":"bob","deadline_ms":300}`
	st2, resp := postJob(t, d1.url, deadlined)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit deadlined: %s", resp.Status)
	}
	if st2.DeadlineUnixMS == 0 {
		t.Fatal("status does not expose the anchored deadline")
	}

	// Remember the last seq a client saw before the crash.
	stream := openStream(t, d1.url, st2.ID, 0)
	ev, ok := stream.next()
	if !ok || ev.State != string(JobQueued) {
		t.Fatalf("first event = %+v, want queued", ev)
	}
	lastSeq := ev.Seq
	d1.kill()
	stream.close()

	// The deadline passes with no daemon alive to observe it.
	time.Sleep(400 * time.Millisecond)

	// Restart: recovery re-anchors the deadline at the job's FIRST
	// journaled record (not the restart), so the monitor expires it.
	d2 := startDaemon(t, dataDir, root, env...)
	st := waitState(t, d2.url, st2.ID, JobDeadline)
	if st.DeadlineUnixMS != st2.DeadlineUnixMS {
		t.Fatalf("deadline anchor moved across restart: %d -> %d", st2.DeadlineUnixMS, st.DeadlineUnixMS)
	}

	// Seq-exact replay: reconnecting with the pre-crash Last-Event-ID
	// yields the missed events in order, ending deadline_exceeded.
	resumed := openStream(t, d2.url, st2.ID, lastSeq)
	want := lastSeq + 1
	for {
		ev, ok := resumed.next()
		if !ok {
			t.Fatal("resumed stream ended before the terminal event")
		}
		if ev.Seq != want {
			t.Fatalf("replay seq %d, want %d", ev.Seq, want)
		}
		want++
		if ev.Kind == "state" && JobState(ev.State).terminal() {
			if ev.State != string(JobDeadline) {
				t.Fatalf("terminal state %s, want deadline_exceeded", ev.State)
			}
			break
		}
	}
	resumed.close()

	// The blocker is unaffected: it resumes from its checkpoint and
	// finishes; its artifacts still exist.
	waitState(t, d2.url, st1.ID, JobDone)
	httpGetBytes(t, d2.url+"/jobs/"+st1.ID+"/mask", http.StatusOK)

	// A third life replays the full deadline history identically.
	d2.kill()
	d3 := startDaemon(t, dataDir, root, env...)
	evs := streamEvents(t, d3.url, st2.ID, 0)
	if len(evs) == 0 {
		t.Fatal("deadline history vanished after the final restart")
	}
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("seq %d at position %d after final restart", ev.Seq, i)
		}
	}
	if last := evs[len(evs)-1]; last.State != string(JobDeadline) {
		t.Fatalf("final event %+v, want deadline_exceeded", last)
	}
}

// overloadPressure walks the degradation ladder over the HTTP surface:
// scripted heap readings must move /healthz through shrink -> pause ->
// shed and back, pausing admissions at the top and reopening on
// recovery.
func overloadPressure(t *testing.T) {
	heap := &heapScript{}
	heap.set(1 << 20)
	m, ts := newGovernedService(t, func(cfg *ManagerConfig) {
		cfg.MaxActive = 2
		cfg.Governor = GovernorConfig{
			MemBudget: 64 << 20,
			HeapHigh:  48 << 20,
			HeapLow:   32 << 20,
			ReadHeap:  heap.read,
		}
	}, false)
	m.runSpec = blockingRun // jobs park on their context; no real compute
	m.Start()

	// A light job survives the whole walk; the heavy one prices over its
	// fair share of the budget (64 MiB / 2 slots) and is the shed victim.
	st, resp := postJob(t, ts.URL, lightSpec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit light: %s", resp.Status)
	}
	heavy, resp := postJob(t, ts.URL, giantSpec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit heavy: %s", resp.Status)
	}
	waitJobState(t, m, st.ID, JobRunning)
	waitJobState(t, m, heavy.ID, JobRunning)

	govLevel := func() string {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Governor GovernorHealth `json:"governor"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Governor.Level
	}

	walk := []struct {
		heap int64
		want string
	}{
		{1 << 20, "normal"},
		{33 << 20, "shrink"},
		{49 << 20, "pause"},
		{49 << 20, "shed"},
		{33 << 20, "shrink"},
		{1 << 20, "normal"},
	}
	for _, step := range walk {
		heap.set(step.heap)
		m.Pulse()
		if got := govLevel(); got != step.want {
			t.Fatalf("heap %d: /healthz level %q, want %q", step.heap, got, step.want)
		}
		if step.want == "pause" || step.want == "shed" {
			resp := postRaw(t, ts.URL, lightSpec)
			decodeAPIError(t, resp, http.StatusTooManyRequests, "admission_paused")
		}
		if step.want == "shed" {
			// The over-share job is canceled with a typed message; the
			// light job rides out the pressure.
			hs := waitTerminal(t, m, heavy.ID)
			if hs.State != JobFailed || !strings.Contains(hs.Error, "shed:") {
				t.Fatalf("shed victim ended %s (%s)", hs.State, hs.Error)
			}
			if cur := getStatus(t, ts.URL, st.ID); cur.State != JobRunning {
				t.Fatalf("light job was %s during shed, want running", cur.State)
			}
		}
	}
	// Recovery reopens admissions.
	if _, resp := postJob(t, ts.URL, lightSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("admission after recovery: %s", resp.Status)
	}
	gh := m.GovernorHealth()
	if gh.Shrinks < 1 || gh.Pauses < 1 || gh.Sheds < 1 {
		t.Fatalf("ladder counters missed a rung: %+v", gh)
	}
}
