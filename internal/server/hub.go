package server

import (
	"encoding/json"
	"fmt"
	"sync"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/iox"
)

// JobEvent is one entry in a job's progress stream, as serialized to
// both the per-job event journal and the SSE wire. Seq is assigned at
// publish, starts at 1, and never repeats or regresses for a given job
// — not even across a daemon crash, because the journal is the
// authoritative history and new events continue after its tail.
type JobEvent struct {
	Seq  int64  `json:"seq"`
	Kind string `json:"kind"` // state | beat | tile | band | governor

	// kind=state: queued|running|done|failed|canceled|deadline_exceeded.
	// kind=governor: the degradation-ladder level just entered
	// (normal|shrink|pause|shed) — every live job's stream carries the
	// transition so subscribers see pressure changes in-band.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"` // kind=state, failed only

	From string `json:"from,omitempty"` // kind=governor: level just left
	Heap int64  `json:"heap,omitempty"` // kind=governor: heap bytes that triggered it

	Tile     int     `json:"tile,omitempty"`      // kind=beat|tile
	Iter     int     `json:"iter,omitempty"`      // kind=beat
	Loss     float64 `json:"loss,omitempty"`      // kind=beat
	Shots    int     `json:"shots,omitempty"`     // kind=tile
	Resumed  bool    `json:"resumed,omitempty"`   // kind=tile: replayed from the flow checkpoint
	CacheHit bool    `json:"cache_hit,omitempty"` // kind=tile: served from the window cache
	Path     string  `json:"path,omitempty"`      // kind=tile: primary|fallback|empty

	Row  int `json:"row,omitempty"`  // kind=band: first mask row of the band
	Rows int `json:"rows,omitempty"` // kind=band: rows in the band
}

// eventJournalHeader fingerprints a job's event journal so a data
// directory can never pair one job's history with another's spec.
func eventJournalHeader(jobID string, spec *JobSpec) []byte {
	return []byte("cfaopcd-events-v1\n" + jobID + "\n" + string(spec.Canonical()))
}

// hub fans one job's event stream out to any number of SSE
// subscribers. Publishing journals the event first — durably — then
// appends it to the in-memory history and offers it to every
// subscriber without blocking: a slow consumer loses its oldest
// buffered events, never the flow's time. Because an event is on disk
// before any client can see it, every Seq a client has observed is
// replayable after a crash, which is what makes Last-Event-ID
// reconnects exact.
type hub struct {
	mu      sync.Mutex
	journal *checkpoint.Journal // nil once closed
	history []JobEvent          // full stream; history[i].Seq == i+1
	subs    map[*subscriber]struct{}
	closed  bool // no further events will ever be published
}

// newHub opens the hub on the real filesystem; see newHubFS.
func newHub(path, jobID string, spec *JobSpec) (*hub, error) {
	return newHubFS(nil, path, jobID, spec)
}

// newHubFS opens (or reopens) the job's event journal and rebuilds the
// in-memory history from it, so seq numbering continues where a killed
// daemon stopped.
func newHubFS(fsys iox.FS, path, jobID string, spec *JobSpec) (*hub, error) {
	journal, payloads, err := checkpoint.OpenFS(fsys, path, eventJournalHeader(jobID, spec))
	if err != nil {
		return nil, fmt.Errorf("event journal: %w", err)
	}
	h := &hub{journal: journal, subs: map[*subscriber]struct{}{}}
	for i, p := range payloads {
		var ev JobEvent
		if err := json.Unmarshal(p, &ev); err != nil {
			journal.Close()
			return nil, fmt.Errorf("event journal record %d: %w", i, err)
		}
		if ev.Seq != int64(len(h.history))+1 {
			journal.Close()
			return nil, fmt.Errorf("event journal record %d: seq %d, want %d", i, ev.Seq, len(h.history)+1)
		}
		h.history = append(h.history, ev)
	}
	return h, nil
}

// readHistory reads on the real filesystem; see readHistoryFS.
func readHistory(path, jobID string, spec *JobSpec) ([]JobEvent, error) {
	return readHistoryFS(nil, path, jobID, spec)
}

// readHistoryFS replays a finished job's event journal without taking
// the append handle — the restart path for jobs that need no new
// events.
func readHistoryFS(fsys iox.FS, path, jobID string, spec *JobSpec) ([]JobEvent, error) {
	payloads, err := checkpoint.ReadFS(fsys, path, eventJournalHeader(jobID, spec))
	if err != nil {
		return nil, err
	}
	evs := make([]JobEvent, 0, len(payloads))
	for i, p := range payloads {
		var ev JobEvent
		if err := json.Unmarshal(p, &ev); err != nil {
			return nil, fmt.Errorf("event journal record %d: %w", i, err)
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// publish assigns the next seq, makes the event durable, and only then
// fans it out. Durability before visibility is absolute: if the append
// or the fsync fails, the event never reaches the history or any
// subscriber and publish returns the error — so every Seq a client has
// ever observed is on disk and replays exactly after a crash. A failed
// journal stays failed (checkpoint poisoning), so the caller must
// treat a publish error as the end of this job's event stream. On a
// closed hub (shutdown racing a late event) the journal write is
// skipped but the in-memory stream stays coherent.
func (h *hub) publish(ev JobEvent) (JobEvent, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ev.Seq = int64(len(h.history)) + 1
	payload, err := json.Marshal(ev)
	if err != nil {
		panic("server: marshal JobEvent failed: " + err.Error())
	}
	if h.journal != nil {
		if err := h.journal.Append(payload); err != nil {
			return JobEvent{}, fmt.Errorf("event journal: %w", err)
		}
		if err := h.journal.Sync(); err != nil {
			return JobEvent{}, fmt.Errorf("event journal: %w", err)
		}
	}
	h.history = append(h.history, ev)
	for sub := range h.subs {
		sub.offer(ev)
	}
	return ev, nil
}

// journalSize reports the event journal's on-disk byte size (0 once
// closed), for storage-health reporting.
// subscriberCount reports the live subscriber count — the SSE layer's
// stalled-client drop test asserts it returns to zero.
func (h *hub) subscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *hub) journalSize() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.journal == nil {
		return 0
	}
	return h.journal.Size()
}

// lastSeq returns the seq of the newest published event (0 if none).
func (h *hub) lastSeq() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(len(h.history))
}

// subscribe registers a consumer whose buffer holds at most capacity
// events, pre-loaded with every event after sinceSeq. Replay and
// registration are atomic under the hub lock, so no event published
// concurrently is missed or doubled. Call h.unsubscribe when done.
func (h *hub) subscribe(sinceSeq int64, capacity int) *subscriber {
	if capacity < 1 {
		capacity = 1
	}
	sub := &subscriber{cap: capacity, notify: make(chan struct{}, 1)}
	h.mu.Lock()
	if sinceSeq < 0 {
		sinceSeq = 0
	}
	if sinceSeq < int64(len(h.history)) {
		// The replay loads directly, bypassing the ring cap: a
		// reconnecting client must get its full backlog, however large;
		// the cap bounds only what accumulates while it consumes.
		sub.buf = append(sub.buf, h.history[sinceSeq:]...)
		sub.notify <- struct{}{}
	}
	if h.closed {
		// The stream already ended; tell the consumer so it drains the
		// replay and stops waiting instead of hanging on a dead doorbell.
		sub.shut()
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub
}

func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
}

// close releases the journal handle and marks the stream ended. The
// history stays readable, so late subscribers to a finished job still
// replay the full stream. Every live subscriber is woken and marked
// shut: if the stream ended without a terminal event (the event
// journal failed before one could be made durable), consumers must not
// wait forever for a seq that will never come.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.journal != nil {
		h.journal.Close()
		h.journal = nil
	}
	h.closed = true
	for sub := range h.subs {
		sub.shut()
	}
}

// subscriber is one consumer's bounded view of the stream: a
// drop-oldest ring plus a doorbell. offer never blocks; a consumer
// that falls more than cap events behind sees a seq gap (and the
// dropped counter) and can reconnect with Last-Event-ID to replay.
type subscriber struct {
	mu      sync.Mutex
	buf     []JobEvent // oldest first, len <= cap
	cap     int
	dropped int64
	closed  bool // the hub ended the stream; nothing further will arrive
	notify  chan struct{}
}

func (s *subscriber) offer(ev JobEvent) {
	s.mu.Lock()
	if len(s.buf) >= s.cap {
		n := copy(s.buf, s.buf[1:])
		s.buf = s.buf[:n]
		s.dropped++
	}
	s.buf = append(s.buf, ev)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// drain removes and returns everything buffered, plus how many events
// were dropped since the previous drain.
func (s *subscriber) drain() (evs []JobEvent, dropped int64) {
	s.mu.Lock()
	evs = append(evs, s.buf...)
	s.buf = s.buf[:0]
	dropped, s.dropped = s.dropped, 0
	s.mu.Unlock()
	return evs, dropped
}

// wait returns a channel that receives after the next offer.
func (s *subscriber) wait() <-chan struct{} { return s.notify }

// shut marks the stream ended and rings the doorbell so a waiting
// consumer re-checks. Buffered events stay drainable; a consumer that
// drains to empty while shut knows no more will ever arrive.
func (s *subscriber) shut() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// isShut reports whether the hub has ended this subscriber's stream.
func (s *subscriber) isShut() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}
