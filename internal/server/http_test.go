package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cfaopc/internal/layout"
)

// testLayoutRoot writes the small two-rect layout the API tests
// optimize and returns its directory.
func testLayoutRoot(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	l := &layout.Layout{
		Name:   "svc",
		TileNM: 1024,
		Rects: []layout.Rect{
			{X: 180, Y: 150, W: 72, H: 260},
			{X: 640, Y: 600, W: 80, H: 240},
		},
	}
	f, err := os.Create(filepath.Join(root, "t.glp"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return root
}

// fastSpecJSON is a job small enough for API tests: 4 windows of
// 128 px, two optimizer iterations each.
const fastSpecJSON = `{"layout":"t.glp","grid":128,"tile_core":64,"iters":2,"kopt":3,"tile_workers":2}`

func newTestService(t *testing.T, root string, maxActive, queueCap int, start bool) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := NewManager(ManagerConfig{
		DataDir:    filepath.Join(t.TempDir(), "data"),
		LayoutRoot: root,
		MaxActive:  maxActive,
		QueueCap:   queueCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if start {
		m.Start()
	}
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		m.Stop()
	})
	return m, ts
}

func postJob(t *testing.T, base, specJSON string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %s", id, resp.Status)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// readSSE consumes an SSE body until the job's terminal state event
// (or EOF) and returns every received event in order.
func readSSE(t *testing.T, body io.Reader) []JobEvent {
	t.Helper()
	var evs []JobEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func streamEvents(t *testing.T, base, id string, lastEventID int64) []JobEvent {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %s", resp.Status)
	}
	return readSSE(t, resp.Body)
}

func TestHTTPSubmitValidation(t *testing.T) {
	root := testLayoutRoot(t)
	_, ts := newTestService(t, root, 1, 2, false)

	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"garbage", `{{{`, http.StatusBadRequest},
		{"unknown field", `{"case":1,"bogus":true}`, http.StatusBadRequest},
		{"traversal layout", `{"layout":"../../etc/passwd.glp"}`, http.StatusBadRequest},
		{"missing layout file", `{"layout":"absent.glp"}`, http.StatusBadRequest},
		{"bad geometry", `{"case":1,"grid":64,"tile_core":4,"tile_halo":4}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, resp := postJob(t, ts.URL, tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantCode)
			}
		})
	}
}

func TestHTTPQueueFull(t *testing.T) {
	root := testLayoutRoot(t)
	// Executor never started: nothing drains, so the cap must hold.
	_, ts := newTestService(t, root, 1, 2, false)
	for i := 0; i < 2; i++ {
		if _, resp := postJob(t, ts.URL, fastSpecJSON); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
	}
	_, resp := postJob(t, ts.URL, fastSpecJSON)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", resp.StatusCode)
	}
	// A canceled job frees its slot.
	httpPost(t, ts.URL+"/jobs/job-0000/cancel")
	if _, resp := postJob(t, ts.URL, fastSpecJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit after cancel: %s", resp.Status)
	}
}

func httpPost(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestHTTPCancelWhileQueued(t *testing.T) {
	root := testLayoutRoot(t)
	_, ts := newTestService(t, root, 1, 4, false)
	st, resp := postJob(t, ts.URL, fastSpecJSON)
	if resp.StatusCode != http.StatusCreated || st.State != JobQueued {
		t.Fatalf("submit: %s, state %s", resp.Status, st.State)
	}
	if resp := httpPost(t, ts.URL+"/jobs/"+st.ID+"/cancel"); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", resp.Status)
	}
	got := getStatus(t, ts.URL, st.ID)
	if got.State != JobCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	// Cancel is idempotent, and the event stream terminates cleanly.
	if resp := httpPost(t, ts.URL+"/jobs/"+st.ID+"/cancel"); resp.StatusCode != http.StatusOK {
		t.Fatalf("second cancel: %s", resp.Status)
	}
	evs := streamEvents(t, ts.URL, st.ID, 0)
	if len(evs) != 2 || evs[0].State != "queued" || evs[1].State != "canceled" {
		t.Fatalf("event stream %+v, want queued then canceled", evs)
	}
	// Cancel of an unknown job 404s.
	if resp := httpPost(t, ts.URL+"/jobs/nope/cancel"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: %s", resp.Status)
	}
}

// TestHTTPJobLifecycle runs one real job end to end over the API and
// checks the stream's shape and the artifacts' integrity.
func TestHTTPJobLifecycle(t *testing.T) {
	root := testLayoutRoot(t)
	_, ts := newTestService(t, root, 1, 4, true)
	st, resp := postJob(t, ts.URL, fastSpecJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}

	// The SSE stream is the synchronization: it ends at the terminal
	// state event.
	evs := streamEvents(t, ts.URL, st.ID, 0)
	if len(evs) == 0 {
		t.Fatal("empty event stream")
	}
	if evs[0].Kind != "state" || evs[0].State != "queued" || evs[0].Seq != 1 {
		t.Fatalf("first event %+v, want state=queued seq=1", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Kind != "state" || last.State != "done" {
		t.Fatalf("last event %+v, want state=done", last)
	}
	var tiles, beats, bandRows int
	sawRunning := false
	for i, ev := range evs {
		if ev.Seq != int64(i+1) {
			t.Fatalf("seq %d at position %d: stream not contiguous", ev.Seq, i)
		}
		switch ev.Kind {
		case "state":
			if ev.State == "running" {
				sawRunning = true
			}
		case "tile":
			tiles++
		case "beat":
			beats++
		case "band":
			bandRows += ev.Rows
		}
	}
	if !sawRunning {
		t.Fatal("no running state event")
	}
	if tiles != 4 {
		t.Fatalf("%d tile events, want 4", tiles)
	}
	if beats == 0 {
		t.Fatal("no heartbeat events from the optimizer")
	}
	if bandRows != 128 {
		t.Fatalf("band events covered %d rows, want 128", bandRows)
	}

	// Reconnect mid-history: replay must start exactly after the seq
	// we claim to have seen.
	cut := int64(len(evs) / 2)
	tail := streamEvents(t, ts.URL, st.ID, cut)
	if len(tail) == 0 || tail[0].Seq != cut+1 {
		t.Fatalf("Last-Event-ID %d replay starts at %d, want %d", cut, tail[0].Seq, cut+1)
	}
	if int64(len(tail)) != int64(len(evs))-cut {
		t.Fatalf("replay returned %d events, want %d", len(tail), int64(len(evs))-cut)
	}

	// Artifacts.
	final := getStatus(t, ts.URL, st.ID)
	if final.State != JobDone || final.Shots == 0 {
		t.Fatalf("final status %+v", final)
	}
	mask := httpGetBytes(t, ts.URL+"/jobs/"+st.ID+"/mask", http.StatusOK)
	wantHeader := fmt.Sprintf("P5\n%d %d\n255\n", 128, 128)
	if !bytes.HasPrefix(mask, []byte(wantHeader)) || len(mask) != len(wantHeader)+128*128 {
		t.Fatalf("mask: %d bytes, header %q", len(mask), mask[:min(16, len(mask))])
	}
	shots := httpGetBytes(t, ts.URL+"/jobs/"+st.ID+"/shots", http.StatusOK)
	if !bytes.HasPrefix(shots, []byte("x_nm,y_nm,r_nm")) {
		t.Fatalf("shots CSV starts %q", shots[:min(32, len(shots))])
	}

	// The list endpoint knows the job.
	resp2, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("job list %+v", list)
	}
}

func httpGetBytes(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: %d, want %d", url, resp.StatusCode, wantCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHTTPMaskFollowStream attaches to the mask endpoint while the job
// is still queued and checks the followed bytes equal the finished
// file: row bands go out live, but only after they are durable.
func TestHTTPMaskFollowStream(t *testing.T) {
	root := testLayoutRoot(t)
	m, ts := newTestService(t, root, 1, 4, true)
	st, resp := postJob(t, ts.URL, fastSpecJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	followed := httpGetBytes(t, ts.URL+"/jobs/"+st.ID+"/mask", http.StatusOK)
	waitState(t, ts.URL, st.ID, JobDone)
	direct, err := os.ReadFile(m.MaskPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(followed, direct) {
		t.Fatalf("followed mask (%d bytes) != final file (%d bytes)", len(followed), len(direct))
	}
	// Shots of an unfinished job are a 409; this one is done.
	httpGetBytes(t, ts.URL+"/jobs/"+st.ID+"/shots", http.StatusOK)
}

func waitState(t *testing.T, base, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// TestManagerRestartResumesQueued closes a manager holding queued jobs
// and reopens the same data directory: both jobs must come back
// queued, run, and produce byte-identical artifacts to a direct
// single-process RunSpec of the same specs.
func TestManagerRestartResumesQueued(t *testing.T) {
	root := testLayoutRoot(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	m1, err := NewManager(ManagerConfig{DataDir: dataDir, LayoutRoot: root, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(strings.NewReader(fastSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	st1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, _ := ParseSpec(strings.NewReader(fastSpecJSON))
	spec2.Method = "circlerule"
	spec2.Normalize()
	st2, err := m1.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	m1.Stop() // never started: jobs are still queued

	m2, err := NewManager(ManagerConfig{DataDir: dataDir, LayoutRoot: root, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	for _, id := range []string{st1.ID, st2.ID} {
		got, err := m2.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != JobQueued {
			t.Fatalf("job %s recovered as %s, want queued", id, got.State)
		}
	}
	m2.Start()
	ts := httptest.NewServer(NewHandler(m2))
	defer ts.Close()
	waitState(t, ts.URL, st1.ID, JobDone)
	waitState(t, ts.URL, st2.ID, JobDone)

	// Byte parity with a direct run of each spec.
	for i, s := range []*JobSpec{spec, spec2} {
		id := []string{st1.ID, st2.ID}[i]
		dir := t.TempDir()
		l, err := s.ResolveLayout(root)
		if err != nil {
			t.Fatal(err)
		}
		_, err = RunSpec(context.Background(), l, s, RunOpts{
			MaskPath:  filepath.Join(dir, "mask.pgm"),
			ShotsPath: filepath.Join(dir, "shots.csv"),
		})
		if err != nil {
			t.Fatal(err)
		}
		compareFiles(t, m2.MaskPath(id), filepath.Join(dir, "mask.pgm"))
		compareFiles(t, m2.ShotsPath(id), filepath.Join(dir, "shots.csv"))
	}
}

func compareFiles(t *testing.T, a, b string) {
	t.Helper()
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("%s (%d bytes) differs from %s (%d bytes)", a, len(ab), b, len(bb))
	}
}
