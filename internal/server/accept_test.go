package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// The acceptance tests run the daemon as a real subprocess so it can
// be SIGKILLed: the test binary re-executes itself with daemonEnv set
// and TestMain branches into a serving loop instead of running tests.
const (
	daemonEnv     = "CFAOPCD_TEST_DAEMON"
	daemonDataEnv = "CFAOPCD_TEST_DATA"
	daemonRootEnv = "CFAOPCD_TEST_ROOT"

	// Overload knobs for the governed acceptance scenarios; unset means
	// the ManagerConfig default (monitor off, budget default, TTL none).
	daemonBudgetEnv  = "CFAOPCD_TEST_BUDGET"    // bytes
	daemonTTLEnv     = "CFAOPCD_TEST_QUEUE_TTL" // duration
	daemonMonitorEnv = "CFAOPCD_TEST_MONITOR"   // duration
)

func TestMain(m *testing.M) {
	if os.Getenv(daemonEnv) == "1" {
		runTestDaemon()
	}
	os.Exit(m.Run())
}

// runTestDaemon is the in-test twin of cmd/cfaopcd: manager, handler,
// addr file. It never returns; the parent SIGKILLs it.
func runTestDaemon() {
	dataDir := os.Getenv(daemonDataEnv)
	cfg := ManagerConfig{
		DataDir:    dataDir,
		LayoutRoot: os.Getenv(daemonRootEnv),
		MaxActive:  1,
		QueueCap:   16,
	}
	if v := os.Getenv(daemonBudgetEnv); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Governor.MemBudget = b
	}
	if v := os.Getenv(daemonTTLEnv); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			log.Fatal(err)
		}
		cfg.QueueTTL = d
	}
	if v := os.Getenv(daemonMonitorEnv); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			log.Fatal(err)
		}
		cfg.MonitorEvery = d
	}
	mgr, err := NewManager(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mgr.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Write-then-rename so the parent never reads a half-written addr.
	tmp := filepath.Join(dataDir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dataDir, "addr")); err != nil {
		log.Fatal(err)
	}
	log.Fatal(http.Serve(ln, NewHandler(mgr)))
}

// daemon is a handle on one daemon subprocess life.
type daemon struct {
	cmd *exec.Cmd
	url string
}

func startDaemon(t *testing.T, dataDir, root string, extraEnv ...string) *daemon {
	t.Helper()
	os.Remove(filepath.Join(dataDir, "addr"))
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		daemonEnv+"=1", daemonDataEnv+"="+dataDir, daemonRootEnv+"="+root)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() { d.kill() })
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(filepath.Join(dataDir, "addr")); err == nil {
			d.url = strings.TrimSpace(string(b))
			return d
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon never published its address")
	return nil
}

// kill SIGKILLs the daemon — no shutdown hooks, no flushing beyond
// what the journals already synced. Reaping the process guarantees the
// next life sees whatever the kernel persisted.
func (d *daemon) kill() {
	if d.cmd.Process != nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// sseStream is an incrementally-read SSE connection.
type sseStream struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func openStream(t *testing.T, base, id string, lastEventID int64) *sseStream {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t.Cleanup(func() { resp.Body.Close() })
	return &sseStream{resp: resp, sc: sc}
}

// next blocks for the next event; ok=false means the stream ended.
func (s *sseStream) next() (JobEvent, bool) {
	for s.sc.Scan() {
		line := s.sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return JobEvent{}, false
		}
		return ev, true
	}
	return JobEvent{}, false
}

func (s *sseStream) close() { s.resp.Body.Close() }

// buildCLI compiles the cfaopc binary once per test run; its -job mode
// is the reference implementation daemon output must match byte for
// byte.
var (
	cliOnce sync.Once
	cliPath string
	cliErr  error
)

func buildCLI(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cfaopc-cli")
		if err != nil {
			cliErr = err
			return
		}
		cliPath = filepath.Join(dir, "cfaopc")
		cmd := exec.Command("go", "build", "-o", cliPath, "./cmd/cfaopc")
		cmd.Dir = "../.." // module root, from internal/server
		if out, err := cmd.CombinedOutput(); err != nil {
			cliErr = fmt.Errorf("go build cfaopc: %v\n%s", err, out)
		}
	})
	if cliErr != nil {
		t.Fatal(cliErr)
	}
	return cliPath
}

// TestServiceAcceptance is the headline contract: two jobs over HTTP,
// the daemon SIGKILLed while the first is mid-run, a restart — and
// both jobs finish with SSE streams that resume seq-exactly and final
// artifacts byte-identical to direct cfaopc -job CLI runs.
func TestServiceAcceptance(t *testing.T) {
	serviceScenario(t, "running")
}

// TestServiceMatrix is the CI kill-phase matrix (SVC_KILL=queued kills
// the daemon before the first tile lands, exercising recovery of jobs
// that never started).
func TestServiceMatrix(t *testing.T) {
	phase := os.Getenv("SVC_KILL")
	if phase == "" {
		t.Skip("set SVC_KILL=queued|running to run the service kill matrix")
	}
	serviceScenario(t, phase)
}

func serviceScenario(t *testing.T, killPhase string) {
	root := testLayoutRoot(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// Job 1 is big enough (16 windows) that a mid-run kill interrupts
	// it; job 2 sits queued behind it (max-active is 1).
	spec1 := `{"layout":"t.glp","grid":256,"tile_core":64,"iters":3,"kopt":3,"tenant":"alice"}`
	spec2 := `{"layout":"t.glp","grid":128,"tile_core":64,"method":"circlerule","tenant":"bob"}`

	d1 := startDaemon(t, dataDir, root)
	st1, resp := postJob(t, d1.url, spec1)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit job1: %s", resp.Status)
	}
	st2, resp := postJob(t, d1.url, spec2)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit job2: %s", resp.Status)
	}

	// Watch job1 until the kill point, remembering the last seq this
	// client saw — the daemon must honor it exactly across the crash.
	var lastSeq int64
	stream := openStream(t, d1.url, st1.ID, 0)
	tilesBeforeKill := 0
	tilesSeen := map[int]bool{}
	for {
		ev, ok := stream.next()
		if !ok {
			t.Fatal("job1 stream ended before the kill point")
		}
		lastSeq = ev.Seq
		if ev.Kind == "tile" {
			tilesBeforeKill++
			tilesSeen[ev.Tile] = true
		}
		if killPhase == "queued" && ev.Kind == "state" && ev.State == "queued" {
			break // kill while everything still waits
		}
		if killPhase == "running" && tilesBeforeKill >= 2 {
			break // kill mid-run with checkpointed tiles behind us
		}
	}
	d1.kill()
	stream.close()

	// Restart on the same state directory. Both jobs must be back —
	// job1 resuming from its checkpoint, job2 still queued — and run
	// to completion.
	d2 := startDaemon(t, dataDir, root)
	resumed := openStream(t, d2.url, st1.ID, lastSeq)
	first := true
	resumedTiles, freshTiles := 0, 0
	for {
		ev, ok := resumed.next()
		if !ok {
			t.Fatal("job1 stream ended without a terminal state after restart")
		}
		if first {
			if ev.Seq != lastSeq+1 {
				t.Fatalf("reconnect replay starts at seq %d, want %d", ev.Seq, lastSeq+1)
			}
			first = false
		}
		if ev.Kind == "tile" {
			if ev.Resumed {
				resumedTiles++
			} else {
				freshTiles++
			}
			tilesSeen[ev.Tile] = true
		}
		if ev.Kind == "state" && JobState(ev.State).terminal() {
			if ev.State != string(JobDone) {
				t.Fatalf("job1 finished %s (%s)", ev.State, ev.Error)
			}
			break
		}
	}
	// Across both stream connections every tile index must have been
	// announced exactly once each life it completed; the union over both
	// lives is the whole 4x4 grid. (A count-based check would break in
	// the benign race where job1 finishes before the kill lands.)
	if len(tilesSeen) != 16 {
		t.Fatalf("saw %d distinct tiles across both lives (%d resumed + %d fresh after restart), want 16",
			len(tilesSeen), resumedTiles, freshTiles)
	}
	if killPhase == "running" && resumedTiles == 0 {
		t.Fatal("a mid-run kill left no checkpointed tiles to resume")
	}

	waitState(t, d2.url, st2.ID, JobDone)

	// Byte-for-byte parity with the direct CLI runs of the same specs.
	cli := buildCLI(t)
	for i, spec := range []string{spec1, spec2} {
		id := []string{st1.ID, st2.ID}[i]
		specPath := filepath.Join(t.TempDir(), "spec.json")
		if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
			t.Fatal(err)
		}
		outDir := t.TempDir()
		cmd := exec.Command(cli, "-job", specPath, "-layout-root", root, "-out", outDir)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("cfaopc -job: %v\n%s", err, out)
		}

		daemonMask := httpGetBytes(t, d2.url+"/jobs/"+id+"/mask", http.StatusOK)
		cliMask, err := os.ReadFile(filepath.Join(outDir, "mask.pgm"))
		if err != nil {
			t.Fatal(err)
		}
		if string(daemonMask) != string(cliMask) {
			t.Fatalf("job %s: daemon mask (%d bytes) != CLI mask (%d bytes)", id, len(daemonMask), len(cliMask))
		}
		daemonShots := httpGetBytes(t, d2.url+"/jobs/"+id+"/shots", http.StatusOK)
		cliShots, err := os.ReadFile(filepath.Join(outDir, "shots.csv"))
		if err != nil {
			t.Fatal(err)
		}
		if string(daemonShots) != string(cliShots) {
			t.Fatalf("job %s: daemon shots != CLI shots:\n%.200s\nvs\n%.200s", id, daemonShots, cliShots)
		}
	}

	// A third daemon life finds only terminal jobs and full histories.
	d2.kill()
	d3 := startDaemon(t, dataDir, root)
	for _, id := range []string{st1.ID, st2.ID} {
		st := getStatus(t, d3.url, id)
		if st.State != JobDone {
			t.Fatalf("job %s is %s after final restart, want done", id, st.State)
		}
		evs := streamEvents(t, d3.url, id, 0)
		if len(evs) == 0 || evs[len(evs)-1].State != string(JobDone) {
			t.Fatalf("job %s history truncated after final restart (%d events)", id, len(evs))
		}
		for i, ev := range evs {
			if ev.Seq != int64(i+1) {
				t.Fatalf("job %s: seq %d at position %d after restart", id, ev.Seq, i)
			}
		}
	}
}
