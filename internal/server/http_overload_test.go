package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// newGovernedService is newTestService with the manager config open
// for overload knobs (budget, TTL, watermarks).
func newGovernedService(t *testing.T, mutate func(*ManagerConfig), start bool) (*Manager, *httptest.Server) {
	t.Helper()
	cfg := ManagerConfig{
		DataDir:    filepath.Join(t.TempDir(), "data"),
		LayoutRoot: testLayoutRoot(t),
		MaxActive:  1,
		QueueCap:   16,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		m.Start()
	}
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		m.Stop()
	})
	return m, ts
}

// postRaw is postJob without the body close, for tests that decode
// structured error bodies.
func postRaw(t *testing.T, base, specJSON string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// decodeAPIError asserts the structured error contract: JSON body with
// reason, and — on 429 — retry_after_ms matching a Retry-After header.
func decodeAPIError(t *testing.T, resp *http.Response, wantCode int, wantReason string) apiError {
	t.Helper()
	if resp.StatusCode != wantCode {
		t.Fatalf("status %d, want %d", resp.StatusCode, wantCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error content-type %q, want JSON", ct)
	}
	var body apiError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body not apiError JSON: %v", err)
	}
	if body.Reason != wantReason {
		t.Fatalf("reason %q, want %q (error: %s)", body.Reason, wantReason, body.Error)
	}
	if wantCode == http.StatusTooManyRequests {
		if body.RetryAfterMS <= 0 {
			t.Fatalf("429 without retry_after_ms: %+v", body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After header")
		}
	}
	return body
}

func TestHTTPStructured429AndBudget400(t *testing.T) {
	_, ts := newGovernedService(t, func(cfg *ManagerConfig) {
		cfg.QueueCap = 1
		// Budget fits exactly one fastSpec job (~3.8 MiB); the second
		// is over_budget, and a huge spec exceeds the whole budget.
		cfg.Governor = GovernorConfig{MemBudget: 6 << 20}
	}, false) // not started: jobs stay queued, decisions are pure admission

	if _, resp := postJob(t, ts.URL, fastSpecJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first job: %s", resp.Status)
	}
	// Second identical job: the budget is spent -> governor 429.
	resp := postRaw(t, ts.URL, fastSpecJSON)
	decodeAPIError(t, resp, http.StatusTooManyRequests, "over_budget")

	// A job bigger than the whole budget can never be admitted: typed 400.
	huge := `{"layout":"t.glp","grid":2048,"tile_core":256,"tile_halo":64,"kopt":12,"tile_workers":8}`
	resp = postRaw(t, ts.URL, huge)
	decodeAPIError(t, resp, http.StatusBadRequest, "job_exceeds_budget")

	// Queue-full also speaks the structured dialect. Fresh service with
	// room in the budget but a one-slot queue.
	_, ts2 := newGovernedService(t, func(cfg *ManagerConfig) { cfg.QueueCap = 1 }, false)
	if _, resp := postJob(t, ts2.URL, fastSpecJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first job: %s", resp.Status)
	}
	resp = postRaw(t, ts2.URL, fastSpecJSON)
	decodeAPIError(t, resp, http.StatusTooManyRequests, "queue_full")

	// Plain bad specs carry the contract too.
	resp = postRaw(t, ts2.URL, `{"grid":1}`)
	decodeAPIError(t, resp, http.StatusBadRequest, "bad_spec")
}

func TestHTTPHealthzSections(t *testing.T) {
	_, ts := newGovernedService(t, func(cfg *ManagerConfig) {
		cfg.Governor = GovernorConfig{MemBudget: 128 << 20}
	}, false)
	if _, resp := postJob(t, ts.URL, fastSpecJSON); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		OK       bool           `json:"ok"`
		Queue    QueueHealth    `json:"queue"`
		Governor GovernorHealth `json:"governor"`
		Storage  StorageHealth  `json:"storage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK {
		t.Fatal("not ok")
	}
	if h.Queue.Depth != 1 || h.Queue.Cap != 16 || h.Queue.Tenants["default"] != 1 {
		t.Fatalf("queue section = %+v", h.Queue)
	}
	if h.Queue.OldestAgeMS < 0 {
		t.Fatalf("oldest age %d negative", h.Queue.OldestAgeMS)
	}
	if h.Governor.Budget != 128<<20 || h.Governor.Committed <= 0 || h.Governor.Level != "normal" {
		t.Fatalf("governor section = %+v", h.Governor)
	}
	if h.Storage.JobsLogBytes <= 0 {
		t.Fatalf("storage section = %+v (PR9 section must survive)", h.Storage)
	}
}

// TestSSEKeepalive asserts an idle stream carries periodic keepalive
// comments, so proxies and clients can tell a quiet job from a dead
// daemon.
func TestSSEKeepalive(t *testing.T) {
	oldKeep := sseKeepalive
	sseKeepalive = 20 * time.Millisecond
	defer func() { sseKeepalive = oldKeep }()

	_, ts := newGovernedService(t, nil, false) // job queues forever
	st, resp := postJob(t, ts.URL, fastSpecJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	stream, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	found := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": keepalive") {
				found <- true
				return
			}
		}
		found <- false
	}()
	select {
	case ok := <-found:
		if !ok {
			t.Fatal("stream ended without a keepalive comment")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no keepalive within 5s on an idle stream")
	}
}

// stallWriter simulates a client whose TCP window never reopens: every
// body write blocks until the armed write deadline expires, then fails
// the way a real net.Conn does.
type stallWriter struct {
	mu       sync.Mutex
	deadline time.Time
	header   http.Header
}

func (w *stallWriter) Header() http.Header { return w.header }
func (w *stallWriter) WriteHeader(int)     {}
func (w *stallWriter) Flush()              {}
func (w *stallWriter) SetWriteDeadline(t time.Time) error {
	w.mu.Lock()
	w.deadline = t
	w.mu.Unlock()
	return nil
}
func (w *stallWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	d := w.deadline
	w.mu.Unlock()
	if d.IsZero() {
		// No deadline armed would mean blocking forever; fail loudly so
		// the test catches a handler that writes without arming.
		return 0, os.ErrDeadlineExceeded
	}
	time.Sleep(time.Until(d))
	return 0, os.ErrDeadlineExceeded
}

// TestSSEStalledClientDropped pins the satellite contract: a subscriber
// that stops reading is disconnected within the write deadline and its
// hub ring slot is freed, instead of pinning the handler forever.
func TestSSEStalledClientDropped(t *testing.T) {
	oldKeep, oldTO := sseKeepalive, sseWriteTimeout
	sseKeepalive, sseWriteTimeout = 10*time.Millisecond, 40*time.Millisecond
	defer func() { sseKeepalive, sseWriteTimeout = oldKeep, oldTO }()

	m, ts := newGovernedService(t, nil, false)
	st, resp := postJob(t, ts.URL, fastSpecJSON)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}

	r := httptest.NewRequest("GET", "/jobs/"+st.ID+"/events", nil)
	r.SetPathValue("id", st.ID)
	w := &stallWriter{header: http.Header{}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		serveEvents(m, w, r)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveEvents still blocked on a stalled client after 5s")
	}
	m.mu.Lock()
	h := m.jobs[st.ID].hub
	m.mu.Unlock()
	if n := h.subscriberCount(); n != 0 {
		t.Fatalf("%d subscribers still pinned after the stalled client was dropped", n)
	}
}
