// Resource governance: the daemon's defense against overload. A
// deterministic cost model (EstimateCost) prices every job spec before
// admission; the Governor gates admissions against a configurable
// memory budget and walks an explicit degradation ladder when measured
// heap pressure says the budget math was optimistic anyway. The ladder
// is deliberately boring — shrink the window cache, pause admissions,
// shed the youngest over-budget running job — because every rung must
// be explainable in a 429 body and recoverable without a restart.
package server

import (
	"errors"
	"fmt"
	"runtime/metrics"
	"sync"
	"time"
)

// Cost is the deterministic resource estimate of one job spec. It is a
// pure function of the spec and the layout's rect count: the same spec
// always prices the same, so admit/reject decisions are reproducible
// from the submission history alone.
type Cost struct {
	// PeakBytes is the total estimated resident bytes while the job
	// runs: FlowBytes plus the per-worker simulator working set
	// (kernel spectra, FFT scratch, adjoint fields).
	PeakBytes int64 `json:"peak_bytes"`
	// FlowBytes mirrors the flow's own Result.PeakBytes accounting
	// (span index + per-worker window targets + in-flight mask band +
	// stitched shot list); it is the calibratable half of the estimate
	// — BENCH_flow.json records estimate-vs-actual ratios.
	FlowBytes int64 `json:"flow_bytes"`
	// Tiles is the uniform-plan window count.
	Tiles int `json:"tiles"`
	// IterUnits is the job's work budget in normalized optimizer
	// iterations (one unit ≈ one iteration over a 128 px window with 5
	// kernels). Retry-After math turns outstanding units into time.
	IterUnits int64 `json:"iter_units"`
}

// estShotsPerTile is the shot-list heuristic: how many core-owned
// shots an occupied window typically contributes. It only prices the
// 24-byte shot records, so even a 4x miss moves the estimate by well
// under the window-buffer term.
const estShotsPerTile = 192

// EstimateCost prices a normalized spec. rects is the resolved
// layout's rectangle count (the only layout-dependent input — Submit
// already resolves the layout to fail fast, so it is free).
//
// The flow half mirrors flow.Result.PeakBytes term by term:
// span-index bytes, one window target per tile worker, one mask band
// in flight, and the stitched shot list. The simulator half prices
// what the flow deliberately does not count — per-worker kernel and
// FFT working sets of roughly (KOpt+4) complex window grids — because
// the daemon's heap carries both.
func EstimateCost(spec *JobSpec, rects int) Cost {
	const (
		f64  = 8  // float64
		c128 = 16 // complex128
	)
	window := spec.TileCore + 2*spec.TileHalo
	cols := (spec.GridN + spec.TileCore - 1) / spec.TileCore
	tiles := cols * cols
	workers := spec.TileWorkers
	if workers < 1 {
		workers = 1
	}
	win2 := int64(window) * int64(window)

	// Span index: one 32-byte span per rect per ~band touched (rects
	// are small vs bands, so 1.5 bands average) plus band headers.
	indexBytes := int64(rects)*48 + int64((spec.GridN+31)/32)*24

	flow := indexBytes
	flow += int64(workers) * win2 * f64                    // window targets
	flow += int64(spec.GridN) * int64(spec.TileCore) * f64 // one mask band
	flow += int64(tiles) * estShotsPerTile * 24            // shot list

	sim := int64(workers) * int64(spec.KOpt+4) * win2 * c128

	// Normalized work: iterations × tiles, scaled by the per-iteration
	// FFT cost relative to the 128 px / 5-kernel reference window.
	units := int64(tiles) * int64(spec.Iters) * (win2*int64(spec.KOpt) + 1) / (128 * 128 * 5)
	if units < 1 {
		units = 1
	}
	return Cost{PeakBytes: flow + sim, FlowBytes: flow, Tiles: tiles, IterUnits: units}
}

// GovLevel is a rung of the degradation ladder. Levels only mean
// something relative to each other: admission and shedding compare
// against the named constants, never the numeric values.
type GovLevel int

const (
	// GovNormal: heap below the low watermark; everything admitted
	// that fits the budget.
	GovNormal GovLevel = iota
	// GovShrink: heap crossed the low watermark; the shared window
	// cache's memory tier is shrunk to give the allocator room.
	GovShrink
	// GovPause: heap crossed the high watermark; admissions pause
	// (429 + Retry-After) until pressure recedes.
	GovPause
	// GovShed: heap stayed over the high watermark through a full
	// monitor interval while paused; the youngest over-budget running
	// job is canceled to force the heap down.
	GovShed
)

func (l GovLevel) String() string {
	switch l {
	case GovShrink:
		return "shrink"
	case GovPause:
		return "pause"
	case GovShed:
		return "shed"
	default:
		return "normal"
	}
}

// ErrJobTooBig rejects a job whose estimated cost exceeds the entire
// budget: no amount of waiting makes it admissible, so it gets a
// typed 400, not a 429.
var ErrJobTooBig = errors.New("server: job cost exceeds the daemon's whole memory budget")

// AdmitError is a retryable admission rejection (429): the queue or
// budget is full now but drains. Reason is machine-readable and goes
// into the structured error body; RetryAfter is the deterministic
// drain estimate behind the Retry-After header.
type AdmitError struct {
	Reason     string // "over_budget" | "admission_paused"
	RetryAfter time.Duration
	msg        string
}

func (e *AdmitError) Error() string { return e.msg }

// nominalUnitNS is the assumed wall time of one normalized iteration
// unit, used only to turn outstanding work into a Retry-After hint.
// Deliberately pessimistic for a single-core host so clients back off
// long enough to matter.
const nominalUnitNS = 25 * int64(time.Millisecond)

// GovernorConfig sizes the governor. Zero values take defaults.
type GovernorConfig struct {
	// MemBudget bounds the summed Cost.PeakBytes of all admitted
	// (queued + running) jobs. Default 2 GiB.
	MemBudget int64
	// HeapHigh / HeapLow are the measured-heap watermarks the ladder
	// walks between. Defaults: HeapHigh = MemBudget, HeapLow = 3/4 of
	// HeapHigh. HeapLow must be below HeapHigh.
	HeapHigh, HeapLow int64
	// ReadHeap returns the live heap reading; nil means
	// runtime/metrics' /memory/classes/heap/objects:bytes. Tests
	// inject scripted readings here.
	ReadHeap func() int64
}

// governor owns admission accounting and the pressure ladder. It has
// its own lock so HTTP-path admission never contends with a running
// monitor pulse holding the manager lock.
type governor struct {
	mu       sync.Mutex
	budget   int64
	heapHigh int64
	heapLow  int64
	readHeap func() int64

	committed map[string]Cost // job id -> admitted cost
	bytes     int64           // sum of committed PeakBytes
	units     int64           // sum of committed IterUnits
	level     GovLevel
	lastHeap  int64

	shrinks     int64 // ladder entries into GovShrink
	pauses      int64 // ladder entries into GovPause
	sheds       int64 // jobs canceled by the shed rung
	wedges      int64 // jobs killed by the wedge watchdog
	expired     int64 // jobs that hit their deadline (queued or running)
	rejected    int64 // admissions refused (over budget / paused / too big)
	transitions int64 // total ladder level changes
}

func newGovernor(cfg GovernorConfig) *governor {
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 2 << 30
	}
	if cfg.HeapHigh <= 0 {
		cfg.HeapHigh = cfg.MemBudget
	}
	if cfg.HeapLow <= 0 {
		cfg.HeapLow = cfg.HeapHigh * 3 / 4
	}
	if cfg.ReadHeap == nil {
		cfg.ReadHeap = liveHeapBytes
	}
	return &governor{
		budget:    cfg.MemBudget,
		heapHigh:  cfg.HeapHigh,
		heapLow:   cfg.HeapLow,
		readHeap:  cfg.ReadHeap,
		committed: map[string]Cost{},
	}
}

// liveHeapBytes reads the live-object heap size from runtime/metrics.
var liveHeapSample = []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}

func liveHeapBytes() int64 {
	s := make([]metrics.Sample, 1)
	copy(s, liveHeapSample)
	metrics.Read(s)
	return int64(s[0].Value.Uint64())
}

// admit reserves cost for job id or rejects it. Rejections are typed:
// ErrJobTooBig can never succeed; *AdmitError carries the reason and
// a deterministic Retry-After derived from the outstanding admitted
// work (outstanding iteration units × the nominal unit time, clamped
// to [1s, 5m]) — a pure function of the admitted set, so the same
// history always produces the same hint.
func (g *governor) admit(id string, c Cost) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c.PeakBytes > g.budget {
		g.rejected++
		return fmt.Errorf("%w: estimated %d bytes, budget %d", ErrJobTooBig, c.PeakBytes, g.budget)
	}
	if g.level >= GovPause {
		g.rejected++
		return &AdmitError{
			Reason:     "admission_paused",
			RetryAfter: g.retryAfterLocked(),
			msg: fmt.Sprintf("server: admissions paused (heap %d over high watermark %d)",
				g.lastHeap, g.heapHigh),
		}
	}
	if g.bytes+c.PeakBytes > g.budget {
		g.rejected++
		return &AdmitError{
			Reason:     "over_budget",
			RetryAfter: g.retryAfterLocked(),
			msg: fmt.Sprintf("server: job needs %d bytes but only %d of the %d budget is free",
				c.PeakBytes, g.budget-g.bytes, g.budget),
		}
	}
	g.reserveLocked(id, c)
	return nil
}

// force reserves without admission checks — the recovery path, where
// jobs were already admitted by a previous daemon life and must not be
// silently dropped just because the budget shrank across a restart.
func (g *governor) force(id string, c Cost) {
	g.mu.Lock()
	g.reserveLocked(id, c)
	g.mu.Unlock()
}

func (g *governor) reserveLocked(id string, c Cost) {
	if old, ok := g.committed[id]; ok {
		g.bytes -= old.PeakBytes
		g.units -= old.IterUnits
	}
	g.committed[id] = c
	g.bytes += c.PeakBytes
	g.units += c.IterUnits
}

// release frees a terminal job's reservation. Unknown ids are a no-op
// (jobs recovered as already-terminal never reserved).
func (g *governor) release(id string) {
	g.mu.Lock()
	if c, ok := g.committed[id]; ok {
		g.bytes -= c.PeakBytes
		g.units -= c.IterUnits
		delete(g.committed, id)
	}
	g.mu.Unlock()
}

func (g *governor) retryAfterLocked() time.Duration {
	d := time.Duration(g.units * nominalUnitNS)
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// retryAfter is the exported drain estimate, shared by the queue-full
// rejection path so every 429 prices waiting the same way.
func (g *governor) retryAfter() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.retryAfterLocked()
}

// observe feeds one heap reading into the ladder and returns the
// transition, if any. Escalation: heap ≥ high goes to GovPause
// immediately and to GovShed one observation later if pressure holds
// (the shed rung re-arms every observation while pressure persists, so
// each pulse at GovShed may shed one more job). De-escalation: below
// high but at/above low settles at GovShrink; below low recovers to
// GovNormal. The caller performs the rung's side effects.
func (g *governor) observe(heap int64) (from, to GovLevel, changed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lastHeap = heap
	from = g.level
	switch {
	case heap >= g.heapHigh:
		if from >= GovPause {
			to = GovShed
		} else {
			to = GovPause
		}
	case heap >= g.heapLow:
		to = GovShrink
	default:
		to = GovNormal
	}
	if to == from {
		// Staying at GovShed while pressure holds still counts as a
		// shed trigger for the caller, but not as a transition.
		return from, to, false
	}
	g.level = to
	g.transitions++
	switch to {
	case GovShrink:
		if from < GovShrink {
			g.shrinks++
		}
	case GovPause:
		g.pauses++
	}
	return from, to, true
}

// GovernorHealth is the governor's /healthz section: budget math,
// ladder position, and the counters that tell an operator which rungs
// have fired since the daemon started.
type GovernorHealth struct {
	Budget        int64  `json:"budget"`         // admission byte budget
	Committed     int64  `json:"committed"`      // reserved bytes (queued + running)
	CommittedJobs int    `json:"committed_jobs"` // jobs holding reservations
	Level         string `json:"level"`          // normal | shrink | pause | shed
	HeapBytes     int64  `json:"heap_bytes"`     // last watermark reading
	HeapHigh      int64  `json:"heap_high"`
	HeapLow       int64  `json:"heap_low"`
	Shrinks       int64  `json:"shrinks,omitempty"`  // cache-shrink rung entries
	Pauses        int64  `json:"pauses,omitempty"`   // admission-pause rung entries
	Sheds         int64  `json:"sheds,omitempty"`    // running jobs shed
	Wedges        int64  `json:"wedges,omitempty"`   // jobs killed by the wedge watchdog
	Expired       int64  `json:"expired,omitempty"`  // jobs ended deadline_exceeded
	Rejected      int64  `json:"rejected,omitempty"` // admissions refused
	Transitions   int64  `json:"transitions,omitempty"`
}

func (g *governor) health() GovernorHealth {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorHealth{
		Budget:        g.budget,
		Committed:     g.bytes,
		CommittedJobs: len(g.committed),
		Level:         g.level.String(),
		HeapBytes:     g.lastHeap,
		HeapHigh:      g.heapHigh,
		HeapLow:       g.heapLow,
		Shrinks:       g.shrinks,
		Pauses:        g.pauses,
		Sheds:         g.sheds,
		Wedges:        g.wedges,
		Expired:       g.expired,
		Rejected:      g.rejected,
		Transitions:   g.transitions,
	}
}
