package server

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func parseSpecString(t *testing.T, s string) (*JobSpec, error) {
	t.Helper()
	return ParseSpec(strings.NewReader(s))
}

func TestParseSpecDefaults(t *testing.T) {
	spec, err := parseSpecString(t, `{"case":1}`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Method != "circleopt" || spec.Fallback != "circlerule" || spec.Tenant != "default" {
		t.Fatalf("defaults not applied: %+v", spec)
	}
	if spec.GridN != 256 || spec.TileCore != 128 || spec.TileHalo != 32 {
		t.Fatalf("geometry defaults not applied: %+v", spec)
	}
	if spec.Iters != 60 || spec.Gamma != 3 || spec.SampleNM != 32 || spec.KOpt != 5 {
		t.Fatalf("engine defaults not applied: %+v", spec)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty object", `{}`, "need layout or case"},
		{"both targets", `{"case":1,"layout":"a.glp"}`, "mutually exclusive"},
		{"case out of range", `{"case":11}`, "outside 1..10"},
		{"unknown field", `{"case":1,"grdi":256}`, "unknown field"},
		{"trailing data", `{"case":1} {"case":2}`, "trailing data"},
		{"absolute layout", `{"layout":"/etc/passwd.glp"}`, "escapes the layout root"},
		{"dotdot layout", `{"layout":"../secret.glp"}`, "escapes the layout root"},
		{"sneaky dotdot layout", `{"layout":"a/../../b.glp"}`, "escapes the layout root"},
		{"wrong extension", `{"layout":"notes.txt"}`, "want a .glp or .gds"},
		{"bad tenant", `{"case":1,"tenant":"a b!"}`, "tenant"},
		{"priority out of range", `{"case":1,"priority":1000}`, "priority"},
		{"unknown method", `{"case":1,"method":"magic"}`, "unknown method"},
		{"unknown fallback", `{"case":1,"fallback":"magic"}`, "unknown fallback"},
		{"grid too small", `{"case":1,"grid":16}`, "grid 16"},
		{"grid too large", `{"case":1,"grid":1000000}`, "grid 1000000"},
		{"window below floor", `{"case":1,"grid":64,"tile_core":8,"tile_halo":8}`, "below the 48 px floor"},
		{"window exceeds grid", `{"case":1,"grid":128,"tile_core":128,"tile_halo":32}`, "exceeds grid"},
		{"negative halo", `{"case":1,"tile_halo":-1}`, "halo -1"},
		{"negative iters", `{"case":1,"iters":-5}`, "iters"},
		{"gamma overflow literal", `{"case":1,"gamma":1e999}`, "spec:"},
		{"negative gamma", `{"case":1,"gamma":-1}`, "gamma"},
		{"nan knob as string", `{"case":1,"gamma":"NaN"}`, "spec:"},
		{"sample out of range", `{"case":1,"sample_nm":1e7}`, "sample_nm"},
		{"kopt out of range", `{"case":1,"kopt":99}`, "kopt"},
		{"tile_workers out of range", `{"case":1,"tile_workers":1000}`, "tile_workers"},
		{"partial_every negative", `{"case":1,"partial_every":-1}`, "partial_every"},
		{"deadline negative", `{"case":1,"deadline_ms":-1}`, "deadline_ms"},
		{"deadline past a day", `{"case":1,"deadline_ms":86400001}`, "deadline_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseSpecString(t, tc.in)
			if err == nil {
				t.Fatalf("spec %s was accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateNonFiniteKnobs covers values JSON cannot spell but a
// caller constructing specs programmatically could still pass.
func TestValidateNonFiniteKnobs(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := &JobSpec{Case: 1, Gamma: bad}
		s.Normalize()
		if s.Validate() == nil {
			t.Fatalf("gamma %v validated", bad)
		}
		s = &JobSpec{Case: 1, SampleNM: bad}
		s.Normalize()
		if s.Validate() == nil {
			t.Fatalf("sample_nm %v validated", bad)
		}
	}
}

func TestSpecDeadlineBoundsAndRoundTrip(t *testing.T) {
	spec, err := parseSpecString(t, `{"case":1,"deadline_ms":1500}`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.DeadlineMS != 1500 {
		t.Fatalf("deadline_ms = %d, want 1500", spec.DeadlineMS)
	}
	again, err := ParseSpec(bytes.NewReader(spec.Canonical()))
	if err != nil {
		t.Fatalf("canonical form rejected: %v", err)
	}
	if again.DeadlineMS != 1500 || !spec.Equal(again) {
		t.Fatalf("deadline_ms lost in canonical round-trip:\n%s", again.Canonical())
	}
	// Zero means "no deadline" and stays out of the canonical bytes.
	spec2, _ := parseSpecString(t, `{"case":1}`)
	if spec2.DeadlineMS != 0 || strings.Contains(string(spec2.Canonical()), "deadline_ms") {
		t.Fatalf("zero deadline should be omitted: %s", spec2.Canonical())
	}
}

func TestSpecCanonicalRoundTrip(t *testing.T) {
	a, err := parseSpecString(t, `{"case":3,"priority":7,"tenant":"alice","iters":2}`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec(bytes.NewReader(a.Canonical()))
	if err != nil {
		t.Fatalf("canonical form rejected: %v", err)
	}
	if !a.Equal(b) {
		t.Fatalf("canonical round-trip changed the spec:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

// FuzzJobSpec hammers the decode/validate path: no input may panic,
// and every accepted spec must satisfy the service invariants — local
// layout refs only, finite knobs, geometry the flow accepts — and
// round-trip through its canonical bytes unchanged.
func FuzzJobSpec(f *testing.F) {
	seeds := []string{
		`{"case":1}`,
		`{"case":10,"grid":512,"tile_core":256,"tile_halo":64}`,
		`{"layout":"a/b.glp","tenant":"alice","priority":-3}`,
		`{"layout":"x.gds","method":"develset","fallback":"none"}`,
		`{"case":1,"gamma":0.5,"sample_nm":16,"iters":1}`,
		`{"case":1,"deadline_ms":30000,"priority":5}`,
		`{"case":1,"deadline_ms":-7}`,
		`{"layout":"../evil.glp"}`,
		`{"layout":"/abs/evil.glp"}`,
		`{"case":1,"grid":1e9}`,
		`{"case":1,"gamma":1e999}`,
		`{"case":1,"unknown":true}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"case":1}{"case":2}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to not panic
		}
		if spec.Layout == "" && spec.Case == 0 {
			t.Fatalf("accepted a spec with no target: %s", data)
		}
		if spec.Layout != "" && !filepath.IsLocal(spec.Layout) {
			t.Fatalf("accepted traversal layout %q", spec.Layout)
		}
		for name, v := range map[string]float64{"gamma": spec.Gamma, "sample_nm": spec.SampleNM} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("accepted non-finite/non-positive %s %v", name, v)
			}
		}
		if spec.DeadlineMS < 0 || spec.DeadlineMS > 86_400_000 {
			t.Fatalf("accepted deadline_ms %d", spec.DeadlineMS)
		}
		window := spec.TileCore + 2*spec.TileHalo
		if window < minWindow || window > spec.GridN || spec.GridN > maxGrid {
			t.Fatalf("accepted geometry grid=%d core=%d halo=%d", spec.GridN, spec.TileCore, spec.TileHalo)
		}
		again, err := ParseSpec(bytes.NewReader(spec.Canonical()))
		if err != nil {
			t.Fatalf("canonical bytes of an accepted spec rejected: %v", err)
		}
		if !spec.Equal(again) {
			t.Fatalf("canonical round-trip not a fixed point:\n%s\n%s", spec.Canonical(), again.Canonical())
		}
	})
}
