// Package quarantine defines the self-contained repro bundle the tiled
// flow writes when a window exhausts every optimizer (primary → retries
// → fallback) and degrades to empty. PR 2's degradation policy keeps
// the run alive but used to discard the evidence; a bundle preserves
// everything needed to replay the failure offline, deterministically,
// on another machine:
//
//   - the window target raster plus the layout rects that produced it,
//   - the flow configuration fingerprint and every tiling/validation
//     knob that shaped the attempts,
//   - engine metadata sufficient to rebuild the exact optimizer chain,
//   - the per-attempt error/path history as recorded live,
//   - the injected fault script, when the failure came from a harness.
//
// On disk a bundle is a gob blob framed exactly like a checkpoint
// record — magic, length, CRC32 — so bit rot is detected, plus a
// human-readable JSON sidecar (raster elided) for quick triage with
// nothing but a pager. cmd/replaytile consumes bundles; this package
// deliberately imports no flow code so the schema stays a leaf both the
// flow and the replay tool can share.
package quarantine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"cfaopc/internal/iox"
	"cfaopc/internal/layout"
	"cfaopc/internal/optics"
)

var magic = []byte("CFQRB1\n")

// FormatVersion is the bundle schema version; Load rejects others.
const FormatVersion = 1

// MaxBundleBytes bounds a bundle payload so a corrupt length prefix
// cannot demand an absurd allocation during Load.
const MaxBundleBytes = 256 << 20

// EngineMeta describes how to rebuild the optimizer chain offline: the
// named primary and fallback engines plus the resolution-independent
// knobs cmd/cfaopc resolves them with. It is copied verbatim from
// flow.Config into every bundle so cmd/replaytile reconstructs the
// exact attempt sequence.
type EngineMeta struct {
	Primary  string  // e.g. "circleopt"
	Fallback string  // e.g. "circlerule"; "" when no fallback was set
	Iters    int     // optimization iterations
	Gamma    float64 // CircleOpt sparsity weight at the paper's 1 nm/px scale
	SampleNM float64 // circle sample distance in nm
}

// Attempt is one optimizer invocation as recorded live by the flow.
type Attempt struct {
	Index    int    // global attempt counter; the fallback is TileRetries+1
	Engine   string // "primary" or "fallback"
	Err      string // failure mode; "" for a success (never in a bundle)
	Iters    int    // heartbeats emitted before the attempt ended
	LastLoss float64
	Stalled  bool // killed by the stall watchdog, not the wall deadline
}

// Fault mirrors flow.Fault without importing it (the flow imports this
// package). A recorded script lets replays re-inject the same
// deterministic failures.
type Fault struct {
	Sleep     time.Duration
	Panic     bool
	NaN       bool
	BadRadius bool
	Stall     bool
	BeatEvery time.Duration
	// Kill scripts process-fatal death: a tile worker subprocess
	// SIGKILLs itself while this tile's dispatch counter is below Kill.
	// It is a no-op in-process, so the same script drives proc-mode
	// crash testing and leaves serial reference runs untouched.
	Kill int
}

// Tile identifies the quarantined window.
type Tile struct {
	Index    int // row-major window index
	CX, CY   int // core origin in full-grid pixels
	OriginX  int // window origin (core minus halo) in full-grid pixels
	OriginY  int
	WindowPx int // window edge in pixels
}

// Bundle is the self-contained repro artifact for one failed tile.
type Bundle struct {
	FormatVersion int
	Fingerprint   string // the flow's (layout, tiling) fingerprint

	LayoutName string
	TileNM     int
	GridN      int
	CorePx     int
	HaloPx     int
	KOpt       int

	TileRetries  int
	TileTimeout  time.Duration
	StallTimeout time.Duration
	RMinPx       float64
	RMaxPx       float64

	// Optics is the window-level imaging condition (TileNM already set
	// to the window's physical size), ready for litho.New.
	Optics  optics.Config
	Engines EngineMeta

	Tile Tile
	// Target is the window target raster, row-major WindowPx². It is
	// elided from the JSON sidecar.
	TargetW, TargetH int
	Target           []float64
	// Rects are the layout rectangles (full-grid nm coordinates) whose
	// span overlaps the window — enough geometry to re-derive Target.
	Rects []layout.Rect

	// Faults is the injected fault script for this tile, when the
	// failure came from a deterministic harness run; empty otherwise.
	Faults []Fault

	Attempts []Attempt
}

// ValidateTask checks the invariants of a bundle used as a live task
// encoding (procpool wire protocol): everything Load relies on except
// the attempt history, which a not-yet-run tile does not have.
func (b *Bundle) ValidateTask() error {
	if b.FormatVersion != FormatVersion {
		return fmt.Errorf("quarantine: bundle format v%d, this build reads v%d", b.FormatVersion, FormatVersion)
	}
	if b.TargetW <= 0 || b.TargetH <= 0 || len(b.Target) != b.TargetW*b.TargetH {
		return fmt.Errorf("quarantine: target raster %dx%d with %d pixels", b.TargetW, b.TargetH, len(b.Target))
	}
	if b.Tile.WindowPx != b.TargetW {
		return fmt.Errorf("quarantine: window %d px but target width %d", b.Tile.WindowPx, b.TargetW)
	}
	return nil
}

// Validate checks the structural invariants Load relies on: a stored
// repro bundle is a task-grade bundle plus a recorded attempt history.
func (b *Bundle) Validate() error {
	if err := b.ValidateTask(); err != nil {
		return err
	}
	if len(b.Attempts) == 0 {
		return fmt.Errorf("quarantine: bundle records no attempts")
	}
	return nil
}

// BaseName is the deterministic file stem for a tile's bundle.
func BaseName(tileIndex int) string { return fmt.Sprintf("tile%04d", tileIndex) }

// Save writes b on the real filesystem; see SaveFS.
func Save(dir string, b *Bundle) (string, error) {
	return SaveFS(nil, dir, b)
}

// SaveFS writes b under dir as <tileNNNN>.qrb (CRC-guarded gob) plus a
// <tileNNNN>.json sidecar, overwriting previous bundles for the same
// tile, and returns the .qrb path. Writes go through a temp file +
// fsync + rename + parent-dir fsync so a crash mid-save never leaves a
// torn bundle behind and a saved bundle survives power loss.
func SaveFS(fsys iox.FS, dir string, b *Bundle) (string, error) {
	fsys = iox.OrOS(fsys)
	if err := b.Validate(); err != nil {
		return "", err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("quarantine: %w", err)
	}
	payload, err := encodeGob(b)
	if err != nil {
		return "", fmt.Errorf("quarantine: encode: %w", err)
	}
	if len(payload) > MaxBundleBytes {
		return "", fmt.Errorf("quarantine: bundle %d bytes exceeds limit", len(payload))
	}
	framed := make([]byte, 0, len(magic)+8+len(payload))
	framed = append(framed, magic...)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	framed = append(framed, hdr[:]...)
	framed = append(framed, payload...)

	base := filepath.Join(dir, BaseName(b.Tile.Index))
	path := base + ".qrb"
	if err := iox.AtomicWrite(fsys, path, framed, 0o644); err != nil {
		return "", fmt.Errorf("quarantine: %w", err)
	}
	side, err := json.MarshalIndent(b.sidecar(), "", "  ")
	if err != nil {
		return "", fmt.Errorf("quarantine: sidecar: %w", err)
	}
	if err := iox.AtomicWrite(fsys, base+".json", append(side, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("quarantine: %w", err)
	}
	return path, nil
}

// Load reads and verifies a bundle written by Save.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+8 || string(data[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("quarantine: %s is not a bundle (bad magic)", path)
	}
	ln := binary.BigEndian.Uint32(data[len(magic) : len(magic)+4])
	want := binary.BigEndian.Uint32(data[len(magic)+4 : len(magic)+8])
	if ln > MaxBundleBytes {
		return nil, fmt.Errorf("quarantine: declared payload %d bytes exceeds limit", ln)
	}
	payload := data[len(magic)+8:]
	if uint32(len(payload)) != ln {
		return nil, fmt.Errorf("quarantine: %s torn: %d payload bytes, header declares %d", path, len(payload), ln)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("quarantine: %s failed its CRC (bit rot or torn write)", path)
	}
	b := new(Bundle)
	if err := decodeGob(payload, b); err != nil {
		return nil, fmt.Errorf("quarantine: decode %s: %w", path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// sidecar is the human-readable JSON view: the whole bundle minus the
// raster, plus a one-number summary of it.
func (b *Bundle) sidecar() any {
	c := *b
	c.Target = nil
	occupied := 0
	for _, v := range b.Target {
		if v > 0.5 {
			occupied++
		}
	}
	return struct {
		*Bundle
		TargetOccupiedPx int
	}{&c, occupied}
}
