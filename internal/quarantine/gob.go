package quarantine

import (
	"bytes"
	"encoding/gob"
)

func encodeGob(b *Bundle) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(payload []byte, b *Bundle) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(b)
}
