package quarantine

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cfaopc/internal/layout"
	"cfaopc/internal/optics"
)

func sampleBundle() *Bundle {
	target := make([]float64, 16*16)
	target[5*16+5] = 1
	o := optics.Default()
	o.TileNM = 256
	return &Bundle{
		FormatVersion: FormatVersion,
		Fingerprint:   "cfaopc-flow-v2 0123456789abcdef",
		LayoutName:    "quad",
		TileNM:        1024,
		GridN:         64,
		CorePx:        8,
		HaloPx:        4,
		KOpt:          4,
		TileRetries:   1,
		TileTimeout:   2 * time.Second,
		StallTimeout:  200 * time.Millisecond,
		RMinPx:        1,
		RMaxPx:        40,
		Optics:        o,
		Engines:       EngineMeta{Primary: "circleopt", Fallback: "circlerule", Iters: 8, Gamma: 3, SampleNM: 32},
		Tile:          Tile{Index: 3, CX: 8, CY: 8, OriginX: 4, OriginY: 4, WindowPx: 16},
		TargetW:       16,
		TargetH:       16,
		Target:        target,
		Rects:         []layout.Rect{{X: 100, Y: 120, W: 40, H: 60}},
		Faults:        []Fault{{NaN: true}, {Panic: true}, {Panic: true}},
		Attempts: []Attempt{
			{Index: 0, Engine: "primary", Err: "invalid output: mask has NaN/Inf pixels", Iters: 3, LastLoss: 12.5},
			{Index: 1, Engine: "primary", Err: "panic: injected fault: tile 3 attempt 1"},
			{Index: 2, Engine: "fallback", Err: "panic: injected fault: tile 3 attempt 2"},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := sampleBundle()
	path, err := Save(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "tile0003.qrb" {
		t.Fatalf("bundle path %s", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tile != b.Tile || got.Engines != b.Engines || got.Fingerprint != b.Fingerprint {
		t.Fatalf("round trip mutated identity: %+v", got)
	}
	if len(got.Attempts) != 3 || got.Attempts[0].Err != b.Attempts[0].Err || !bytesEqFloat(got.Target, b.Target) {
		t.Fatalf("round trip mutated payload")
	}
	if len(got.Faults) != 3 || !got.Faults[1].Panic {
		t.Fatalf("fault script lost: %+v", got.Faults)
	}

	// The JSON sidecar exists, is valid, and elides the raster.
	side, err := os.ReadFile(strings.TrimSuffix(path, ".qrb") + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(side, &m); err != nil {
		t.Fatalf("sidecar not JSON: %v", err)
	}
	if m["Target"] != nil {
		t.Fatal("sidecar embeds the raster")
	}
	if m["TargetOccupiedPx"] != float64(1) {
		t.Fatalf("sidecar occupancy = %v", m["TargetOccupiedPx"])
	}
	if m["Fingerprint"] != b.Fingerprint {
		t.Fatalf("sidecar fingerprint = %v", m["Fingerprint"])
	}
}

func TestSaveDeterministicOverwrite(t *testing.T) {
	dir := t.TempDir()
	b := sampleBundle()
	p1, err := Save(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Save(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || !bytes.Equal(first, second) {
		t.Fatal("re-saving the same bundle is not byte-deterministic")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path, err := Save(dir, sampleBundle())
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0xff
	bad := filepath.Join(dir, "flip.qrb")
	os.WriteFile(bad, flip, 0o644)
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("bit flip: err = %v, want CRC failure", err)
	}

	torn := filepath.Join(dir, "torn.qrb")
	os.WriteFile(torn, data[:len(data)-7], 0o644)
	if _, err := Load(torn); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn: err = %v, want torn", err)
	}

	junk := filepath.Join(dir, "junk.qrb")
	os.WriteFile(junk, []byte("definitely not a bundle"), 0o644)
	if _, err := Load(junk); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("junk: err = %v, want bad magic", err)
	}
}

func TestValidate(t *testing.T) {
	b := sampleBundle()
	b.FormatVersion = 99
	if err := b.Validate(); err == nil {
		t.Fatal("future format version accepted")
	}
	b = sampleBundle()
	b.Target = b.Target[:10]
	if err := b.Validate(); err == nil {
		t.Fatal("short raster accepted")
	}
	b = sampleBundle()
	b.Attempts = nil
	if err := b.Validate(); err == nil {
		t.Fatal("attempt-less bundle accepted")
	}
	b = sampleBundle()
	if _, err := Save(t.TempDir(), b); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
}

func bytesEqFloat(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSaveErrors(t *testing.T) {
	b := sampleBundle()
	b.Attempts = nil
	if _, err := Save(t.TempDir(), b); err == nil {
		t.Fatal("invalid bundle saved")
	}

	// A regular file where the quarantine dir should go: MkdirAll (or
	// the writes beneath it) must fail rather than clobber the file.
	blocked := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Save(blocked, sampleBundle()); err == nil {
		t.Fatal("saved under a regular file")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.qrb")); err == nil {
		t.Fatal("missing bundle loaded")
	}

	// Header that declares a payload beyond the size cap: rejected
	// before any allocation or CRC work.
	huge := append([]byte(nil), magic...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	p := filepath.Join(t.TempDir(), "huge.qrb")
	os.WriteFile(p, huge, 0o644)
	if _, err := Load(p); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized declaration: err = %v", err)
	}

	// A structurally valid frame whose gob payload decodes to a bundle
	// violating its own invariants (window/raster mismatch).
	b := sampleBundle()
	b.Tile.WindowPx = 99
	path := filepath.Join(t.TempDir(), "skew")
	payload, err := encodeGob(b)
	if err != nil {
		t.Fatal(err)
	}
	framed := append([]byte(nil), magic...)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	framed = append(framed, hdr[:]...)
	framed = append(framed, payload...)
	os.WriteFile(path+".qrb", framed, 0o644)
	if _, err := Load(path + ".qrb"); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("invariant-violating bundle: err = %v", err)
	}
}
