package quarantine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Prune enforces a retention budget over the bundles in dir: while
// there are more than maxBundles bundles, or their .qrb bytes exceed
// maxBytes, the oldest bundle (by modification time, name as the
// tie-break) is deleted together with its .json sidecar — bundles only
// ever leave the directory pair-wise. A zero budget is unlimited on
// that axis; with both zero Prune is a no-op. It returns the number of
// bundles removed.
//
// A full-chip run with a pathological region can quarantine thousands
// of tiles; retention keeps the newest evidence (the just-written
// bundle is the newest, so it survives any maxBundles >= 1) without
// letting forensics eat the disk.
func Prune(dir string, maxBundles int, maxBytes int64) (removed int, err error) {
	if maxBundles <= 0 && maxBytes <= 0 {
		return 0, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("quarantine: prune: %w", err)
	}
	type bundleFile struct {
		base  string // path without the .qrb extension
		size  int64
		mtime int64
	}
	var bundles []bundleFile
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".qrb") {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			if os.IsNotExist(ierr) {
				continue // raced with a concurrent prune or save
			}
			return removed, fmt.Errorf("quarantine: prune: %w", ierr)
		}
		bundles = append(bundles, bundleFile{
			base:  filepath.Join(dir, strings.TrimSuffix(e.Name(), ".qrb")),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	sort.Slice(bundles, func(i, j int) bool {
		if bundles[i].mtime != bundles[j].mtime {
			return bundles[i].mtime < bundles[j].mtime
		}
		return bundles[i].base < bundles[j].base
	})
	over := func() bool {
		if maxBundles > 0 && len(bundles)-removed > maxBundles {
			return true
		}
		if maxBytes > 0 && total > maxBytes {
			return true
		}
		return false
	}
	for removed < len(bundles) && over() {
		victim := bundles[removed]
		if rerr := os.Remove(victim.base + ".qrb"); rerr != nil && !os.IsNotExist(rerr) {
			return removed, fmt.Errorf("quarantine: prune: %w", rerr)
		}
		if rerr := os.Remove(victim.base + ".json"); rerr != nil && !os.IsNotExist(rerr) {
			return removed, fmt.Errorf("quarantine: prune: %w", rerr)
		}
		total -= victim.size
		removed++
	}
	return removed, nil
}
