package quarantine

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeBundlePair drops a fake .qrb of size bytes plus its .json
// sidecar, stamped with mtime so retention ordering is deterministic.
func writeBundlePair(t *testing.T, dir, base string, size int, mtime time.Time) {
	t.Helper()
	qrb := filepath.Join(dir, base+".qrb")
	if err := os.WriteFile(qrb, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, base+".json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(qrb, mtime, mtime); err != nil {
		t.Fatal(err)
	}
}

func surviving(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, e := range entries {
		out[e.Name()] = true
	}
	return out
}

func TestPruneCountBudget(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Now().Add(-time.Hour)
	writeBundlePair(t, dir, "tile0000", 100, t0)
	writeBundlePair(t, dir, "tile0001", 100, t0.Add(time.Minute))
	writeBundlePair(t, dir, "tile0002", 100, t0.Add(2*time.Minute))

	removed, err := Prune(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	got := surviving(t, dir)
	if len(got) != 2 || !got["tile0002.qrb"] || !got["tile0002.json"] {
		t.Fatalf("survivors = %v, want newest pair only", got)
	}
}

func TestPruneByteBudget(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Now().Add(-time.Hour)
	writeBundlePair(t, dir, "a", 600, t0)
	writeBundlePair(t, dir, "b", 600, t0.Add(time.Minute))
	writeBundlePair(t, dir, "c", 600, t0.Add(2*time.Minute))

	// 1800 bytes on disk, budget 1300: must drop the oldest one, then
	// the next (1200 <= 1300 stops it after two? 1800-600=1200 <= 1300,
	// so exactly one removal).
	removed, err := Prune(dir, 0, 1300)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	got := surviving(t, dir)
	if got["a.qrb"] || got["a.json"] {
		t.Fatalf("oldest pair survived byte prune: %v", got)
	}
	if !got["b.qrb"] || !got["c.qrb"] {
		t.Fatalf("newer bundles pruned: %v", got)
	}
}

func TestPruneMtimeTieBrokenByName(t *testing.T) {
	dir := t.TempDir()
	same := time.Now().Add(-time.Hour)
	writeBundlePair(t, dir, "tile0003", 10, same)
	writeBundlePair(t, dir, "tile0001", 10, same)
	removed, err := Prune(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	got := surviving(t, dir)
	if !got["tile0003.qrb"] {
		t.Fatalf("name tie-break kept the wrong pair: %v", got)
	}
}

func TestPruneTolerations(t *testing.T) {
	dir := t.TempDir()

	// Zero budgets: no-op even with files present.
	writeBundlePair(t, dir, "x", 10, time.Now())
	if removed, err := Prune(dir, 0, 0); err != nil || removed != 0 {
		t.Fatalf("zero-budget prune: removed %d, err %v", removed, err)
	}

	// Missing sidecar must not fail the prune.
	old := filepath.Join(dir, "orphan.qrb")
	if err := os.WriteFile(old, make([]byte, 10), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(old, past, past); err != nil {
		t.Fatal(err)
	}
	removed, err := Prune(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1 (the sidecar-less orphan)", removed)
	}
	if got := surviving(t, dir); !got["x.qrb"] || got["orphan.qrb"] {
		t.Fatalf("survivors = %v", got)
	}

	// Missing directory: silently nothing to do.
	if removed, err := Prune(filepath.Join(dir, "nope"), 5, 5); err != nil || removed != 0 {
		t.Fatalf("missing dir prune: removed %d, err %v", removed, err)
	}
}
