package gds

import (
	"bytes"
	"strings"
	"testing"

	"cfaopc/internal/layout"
)

// TestReadLimitsRecordCap trips MaxRecords on an otherwise valid stream.
func TestReadLimitsRecordCap(t *testing.T) {
	data := adversarialStream(t, 8, 8) // 8 boundaries × 4 records + framing
	lim := DefaultLimits()
	lim.MaxRecords = 10
	_, err := ReadWithLimits(bytes.NewReader(data), -1, lim)
	if err == nil || !strings.Contains(err.Error(), "records") {
		t.Fatalf("err = %v, want record-cap error", err)
	}
}

// TestReadLimitsVertexCap trips MaxPolyVertices, both via a tightened
// limit and via the default limit on a genuinely oversized boundary.
func TestReadLimitsVertexCap(t *testing.T) {
	data := adversarialStream(t, 1, 64)
	lim := DefaultLimits()
	lim.MaxPolyVertices = 32
	_, err := ReadWithLimits(bytes.NewReader(data), -1, lim)
	if err == nil || !strings.Contains(err.Error(), "vertices") {
		t.Fatalf("err = %v, want vertex-cap error", err)
	}

	big := adversarialStream(t, 1, DefaultLimits().MaxPolyVertices+16)
	if _, err := Read(bytes.NewReader(big), -1); err == nil || !strings.Contains(err.Error(), "vertices") {
		t.Fatalf("default Read err = %v, want vertex-cap error", err)
	}
}

// TestReadLimitsRectCap trips MaxRects during decomposition.
func TestReadLimitsRectCap(t *testing.T) {
	data := adversarialStream(t, 12, 8) // 12 rectangles
	lim := DefaultLimits()
	lim.MaxRects = 4
	_, err := ReadWithLimits(bytes.NewReader(data), -1, lim)
	if err == nil || !strings.Contains(err.Error(), "rectangles") {
		t.Fatalf("err = %v, want rect-cap error", err)
	}
}

// TestReadLimitsAcceptsHonestStreams keeps the caps out of the way of
// real layouts: the adversarial shape below the caps parses to a valid
// layout, and a round-tripped suite layout is untouched by the limits.
func TestReadLimitsAcceptsHonestStreams(t *testing.T) {
	data := adversarialStream(t, 12, 8)
	l, err := Read(bytes.NewReader(data), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Rects) != 12 {
		t.Fatalf("decomposed %d rects, want 12", len(l.Rects))
	}

	var buf bytes.Buffer
	src := &layout.Layout{Name: "honest", TileNM: 2048, Rects: []layout.Rect{
		{X: 100, Y: 100, W: 300, H: 200},
		{X: 600, Y: 700, W: 120, H: 500},
	}}
	if err := Write(&buf, src, 3); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rects) != len(src.Rects) {
		t.Fatalf("round trip %d rects, want %d", len(got.Rects), len(src.Rects))
	}
}
