package gds

import (
	"bytes"
	"testing"

	"cfaopc/internal/layout"
)

// adversarialStream builds a syntactically valid GDSII stream designed
// to inflate reader state: nBoundaries rectangles whose bottom edges are
// subdivided into unit steps so each boundary carries ~nVerts collinear
// vertices. Rectangles are stacked in y, so a stream that survives the
// caps still decomposes into a valid (non-overlapping) layout.
func adversarialStream(tb testing.TB, nBoundaries, nVerts int) []byte {
	var buf bytes.Buffer
	check := func(err error) {
		if err != nil {
			tb.Fatal(err)
		}
	}
	check(writeRecord(&buf, recHEADER, dtInt16, int16Bytes(600)))
	check(writeRecord(&buf, recSTRNAME, dtASCII, asciiBytes("ADVERSARIAL")))
	for b := 0; b < nBoundaries; b++ {
		check(writeRecord(&buf, recBOUNDARY, dtNone, nil))
		check(writeRecord(&buf, recLAYER, dtInt16, int16Bytes(1)))
		steps := nVerts - 4
		if steps < 1 {
			steps = 1
		}
		y0 := int32(200 * b)
		pts := make([]int32, 0, 2*(steps+4))
		for i := 0; i <= steps; i++ { // subdivided bottom edge
			pts = append(pts, int32(2*i), y0)
		}
		xe := int32(2 * steps)
		pts = append(pts, xe, y0+100, 0, y0+100, 0, y0)
		// Emit in XY chunks of ≤ 8191 points (16-bit record length cap).
		for i := 0; i < len(pts); i += 2 * 8191 {
			end := i + 2*8191
			if end > len(pts) {
				end = len(pts)
			}
			check(writeRecord(&buf, recXY, dtInt32, int32Bytes(pts[i:end]...)))
		}
		check(writeRecord(&buf, recENDEL, dtNone, nil))
	}
	check(writeRecord(&buf, recENDLIB, dtNone, nil))
	return buf.Bytes()
}

// FuzzRead ensures the GDSII reader never panics on malformed streams,
// that accepted streams yield valid layouts, and that the resource caps
// bound adversarial-but-well-formed streams under both the default and
// deliberately tiny limits.
func FuzzRead(f *testing.F) {
	// Seed with a genuine stream plus truncations/mutations of it.
	var buf bytes.Buffer
	l := &layout.Layout{Name: "seed", TileNM: 256, Rects: []layout.Rect{{X: 10, Y: 10, W: 30, H: 40}}}
	if err := Write(&buf, l, 1); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:7])
	mutated := append([]byte(nil), full...)
	if len(mutated) > 30 {
		mutated[20] ^= 0xff
		mutated[30] ^= 0x0f
	}
	f.Add(mutated)
	f.Add([]byte{})
	f.Add([]byte{0, 6, 0x00, 0x02, 0, 0})

	// Cap-triggering seeds: one boundary past the default per-boundary
	// vertex cap, and smaller streams that trip the tiny fuzz limits on
	// record count and rectangle count below.
	f.Add(adversarialStream(f, 1, DefaultLimits().MaxPolyVertices+16))
	f.Add(adversarialStream(f, 24, 64)) // > 64 records, > 8 rects under tiny limits

	tiny := Limits{MaxRecords: 64, MaxPolyVertices: 64, MaxRects: 8}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, try := range []func() (*layout.Layout, error){
			func() (*layout.Layout, error) { return Read(bytes.NewReader(data), -1) },
			func() (*layout.Layout, error) { return ReadWithLimits(bytes.NewReader(data), -1, tiny) },
		} {
			got, err := try()
			if err != nil {
				continue
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("accepted stream produced invalid layout: %v", err)
			}
		}
	})
}
