package gds

import (
	"bytes"
	"testing"

	"cfaopc/internal/layout"
)

// FuzzRead ensures the GDSII reader never panics on malformed streams and
// that accepted streams yield valid layouts.
func FuzzRead(f *testing.F) {
	// Seed with a genuine stream plus truncations/mutations of it.
	var buf bytes.Buffer
	l := &layout.Layout{Name: "seed", TileNM: 256, Rects: []layout.Rect{{X: 10, Y: 10, W: 30, H: 40}}}
	if err := Write(&buf, l, 1); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:7])
	mutated := append([]byte(nil), full...)
	if len(mutated) > 30 {
		mutated[20] ^= 0xff
		mutated[30] ^= 0x0f
	}
	f.Add(mutated)
	f.Add([]byte{})
	f.Add([]byte{0, 6, 0x00, 0x02, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data), -1)
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted stream produced invalid layout: %v", err)
		}
	})
}
