package gds

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"cfaopc/internal/layout"
)

func TestReal8RoundTrip(t *testing.T) {
	values := []float64{0, 1, -1, 1e-9, 1e-3, 0.5, 2048, 123456.789, -0.001953125}
	for _, v := range values {
		got := decodeReal8(encodeReal8(v))
		tol := math.Abs(v) * 1e-12
		if tol < 1e-300 {
			tol = 1e-300
		}
		if math.Abs(got-v) > tol {
			t.Errorf("real8 roundtrip %v → %v", v, got)
		}
	}
}

func TestReal8KnownEncoding(t *testing.T) {
	// 1.0 = 1/16 · 16^1 → exponent 65, mantissa 0x10 00 00 00 00 00 00.
	b := encodeReal8(1.0)
	want := [8]byte{0x41, 0x10, 0, 0, 0, 0, 0, 0}
	if b != want {
		t.Fatalf("encode(1.0) = % x, want % x", b, want)
	}
}

func TestReal8SpecialValues(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if b := encodeReal8(v); b != [8]byte{} {
			t.Errorf("encode(%v) should be zero bytes", v)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := &layout.Layout{
		Name:   "case1",
		TileNM: 2048,
		Rects: []layout.Rect{
			{X: 480, Y: 520, W: 80, H: 300},
			{X: 680, Y: 500, W: 120, H: 250},
			{X: 900, Y: 700, W: 60, H: 60},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, l, 10); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "case1" {
		t.Fatalf("name %q", got.Name)
	}
	if got.Area() != l.Area() {
		t.Fatalf("area %d, want %d", got.Area(), l.Area())
	}
	// Rect sets must match (order-independent).
	key := func(r layout.Rect) [4]int { return [4]int{r.X, r.Y, r.W, r.H} }
	want := map[[4]int]bool{}
	for _, r := range l.Rects {
		want[key(r)] = true
	}
	for _, r := range got.Rects {
		if !want[key(r)] {
			t.Fatalf("unexpected rect %+v", r)
		}
	}
	if len(got.Rects) != len(l.Rects) {
		t.Fatalf("rect count %d, want %d", len(got.Rects), len(l.Rects))
	}
}

func TestReadLayerFilter(t *testing.T) {
	l := &layout.Layout{Name: "x", TileNM: 1024, Rects: []layout.Rect{{X: 10, Y: 10, W: 20, H: 20}}}
	var buf bytes.Buffer
	if err := Write(&buf, l, 7); err != nil {
		t.Fatal(err)
	}
	// Wrong layer → no rects → validation fails on empty? Empty layout is
	// valid; just zero rects.
	got, err := Read(bytes.NewReader(buf.Bytes()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rects) != 0 {
		t.Fatalf("layer filter leaked %d rects", len(got.Rects))
	}
	// Any-layer read sees it.
	got, err = Read(bytes.NewReader(buf.Bytes()), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rects) != 1 {
		t.Fatalf("any-layer read found %d rects", len(got.Rects))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{0, 6, 0x10, 0x03, 1, 2}), -1); err == nil {
		t.Fatal("non-HEADER stream accepted")
	}
	if _, err := Read(bytes.NewReader([]byte{0, 3}), -1); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestWriteSuiteThroughGDS(t *testing.T) {
	// The full synthetic suite must survive a GDS round trip area-exactly.
	for _, l := range layout.GenerateSuite()[:4] {
		var buf bytes.Buffer
		if err := Write(&buf, l, 1); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()), 1)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if got.Area() != l.Area() {
			t.Fatalf("%s: area %d → %d", l.Name, l.Area(), got.Area())
		}
	}
}

func TestDecomposeRectilinearLShape(t *testing.T) {
	// Closed L-shaped hexagon.
	poly := []point{{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 30}, {0, 30}, {0, 0}}
	rects, err := decomposeRectilinear(poly)
	if err != nil {
		t.Fatal(err)
	}
	area := 0
	for _, r := range rects {
		area += r.W * r.H
	}
	// L area = 20·10 + 10·20 = 400.
	if area != 400 {
		t.Fatalf("decomposed area %d, want 400", area)
	}
	// No overlaps.
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			a, b := rects[i], rects[j]
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				t.Fatalf("rects %v and %v overlap", a, b)
			}
		}
	}
}

func TestDecomposeRejectsDiagonal(t *testing.T) {
	poly := []point{{0, 0}, {10, 10}, {0, 10}, {0, 0}}
	if _, err := decomposeRectilinear(poly); err == nil {
		t.Fatal("diagonal polygon accepted")
	}
}

// Property: random rectilinear staircase polygons decompose area-exactly.
func TestDecomposeStaircaseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		// Build a staircase: x-monotone rectilinear polygon.
		steps := rng.Intn(4) + 2
		xs := []int32{0}
		for i := 0; i < steps; i++ {
			xs = append(xs, xs[len(xs)-1]+int32(rng.Intn(20)+5))
		}
		heights := make([]int32, steps)
		for i := range heights {
			heights[i] = int32(rng.Intn(30) + 10)
		}
		var poly []point
		poly = append(poly, point{0, 0})
		for i := 0; i < steps; i++ {
			poly = append(poly, point{xs[i], heights[i]}, point{xs[i+1], heights[i]})
		}
		poly = append(poly, point{xs[steps], 0})
		wantArea := int64(0)
		for i := 0; i < steps; i++ {
			wantArea += int64(xs[i+1]-xs[i]) * int64(heights[i])
		}
		rects, err := decomposeRectilinear(poly)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := int64(0)
		for _, r := range rects {
			got += int64(r.W) * int64(r.H)
		}
		if got != wantArea {
			sort.Slice(rects, func(i, j int) bool { return rects[i].X < rects[j].X })
			t.Fatalf("trial %d: area %d, want %d (%v)", trial, got, wantArea, rects)
		}
	}
}
