package gds

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"cfaopc/internal/layout"
)

// record is one decoded GDSII record.
type record struct {
	typ  byte
	dt   byte
	data []byte
}

// writeRecord emits one record with its 4-byte header.
func writeRecord(w io.Writer, typ, dt byte, data []byte) error {
	n := len(data) + 4
	if len(data)%2 != 0 {
		return fmt.Errorf("gds: odd record payload for %s", recName(typ))
	}
	hdr := []byte{byte(n >> 8), byte(n), typ, dt}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func int16Bytes(vs ...int16) []byte {
	out := make([]byte, 2*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

func int32Bytes(vs ...int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func asciiBytes(s string) []byte {
	b := []byte(s)
	if len(b)%2 != 0 {
		b = append(b, 0)
	}
	return b
}

// Write serializes a layout as a GDSII library: one structure named after
// the layout, one BOUNDARY per rectangle on the given layer, database unit
// 1 nm (user unit 1 µm).
func Write(w io.Writer, l *layout.Layout, layer int16) error {
	if err := l.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	now := time.Date(2024, 6, 23, 0, 0, 0, 0, time.UTC) // deterministic stamp
	stamp := int16Bytes(
		int16(now.Year()), int16(now.Month()), int16(now.Day()),
		int16(now.Hour()), int16(now.Minute()), int16(now.Second()),
		int16(now.Year()), int16(now.Month()), int16(now.Day()),
		int16(now.Hour()), int16(now.Minute()), int16(now.Second()),
	)
	if err := writeRecord(bw, recHEADER, dtInt16, int16Bytes(600)); err != nil {
		return err
	}
	if err := writeRecord(bw, recBGNLIB, dtInt16, stamp); err != nil {
		return err
	}
	if err := writeRecord(bw, recLIBNAME, dtASCII, asciiBytes("CFAOPC")); err != nil {
		return err
	}
	// UNITS: user unit = 1e-3 (µm per db unit ratio), db unit = 1e-9 m (1 nm).
	units := append([]byte{}, realBytes(1e-3)...)
	units = append(units, realBytes(1e-9)...)
	if err := writeRecord(bw, recUNITS, dtReal8, units); err != nil {
		return err
	}
	if err := writeRecord(bw, recBGNSTR, dtInt16, stamp); err != nil {
		return err
	}
	name := l.Name
	if name == "" {
		name = "TOP"
	}
	if err := writeRecord(bw, recSTRNAME, dtASCII, asciiBytes(name)); err != nil {
		return err
	}
	for _, r := range l.Rects {
		if err := writeRecord(bw, recBOUNDARY, dtNone, nil); err != nil {
			return err
		}
		if err := writeRecord(bw, recLAYER, dtInt16, int16Bytes(layer)); err != nil {
			return err
		}
		if err := writeRecord(bw, recDATATYPE, dtInt16, int16Bytes(0)); err != nil {
			return err
		}
		x0, y0 := int32(r.X), int32(r.Y)
		x1, y1 := int32(r.X+r.W), int32(r.Y+r.H)
		xy := int32Bytes(x0, y0, x1, y0, x1, y1, x0, y1, x0, y0)
		if err := writeRecord(bw, recXY, dtInt32, xy); err != nil {
			return err
		}
		if err := writeRecord(bw, recENDEL, dtNone, nil); err != nil {
			return err
		}
	}
	if err := writeRecord(bw, recENDSTR, dtNone, nil); err != nil {
		return err
	}
	if err := writeRecord(bw, recENDLIB, dtNone, nil); err != nil {
		return err
	}
	return bw.Flush()
}

func realBytes(v float64) []byte {
	b := encodeReal8(v)
	return b[:]
}

// readRecord decodes the next record; io.EOF at a record boundary means a
// clean end of stream.
func readRecord(r *bufio.Reader) (*record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("gds: truncated record header")
		}
		return nil, err
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	if n < 4 {
		return nil, fmt.Errorf("gds: invalid record length %d", n)
	}
	rec := &record{typ: hdr[2], dt: hdr[3], data: make([]byte, n-4)}
	if _, err := io.ReadFull(r, rec.data); err != nil {
		return nil, fmt.Errorf("gds: truncated %s record", recName(rec.typ))
	}
	return rec, nil
}

// point is a polygon vertex in database units.
type point struct{ x, y int32 }

// Limits bounds the memory Read may commit to one stream. A GDSII file
// is attacker-controllable input (record counts, vertex counts, and the
// rectangle decomposition can all be inflated far beyond the stream's
// own size), so the reader refuses, with an error, rather than growing
// unbounded.
type Limits struct {
	// MaxRecords caps the total records decoded from the stream.
	MaxRecords int
	// MaxPolyVertices caps the vertices accumulated for one BOUNDARY
	// (XY records within a boundary concatenate).
	MaxPolyVertices int
	// MaxRects caps the rectangles produced by decomposing all accepted
	// boundaries — the decomposition of a V-vertex polygon can be
	// superlinear in V, so this is the true memory ceiling.
	MaxRects int
}

// DefaultLimits is sized far beyond any layout this repository handles
// (a full tile suite is a few thousand rectangles) while still bounding
// a hostile stream to tens of megabytes of decoded state.
func DefaultLimits() Limits {
	return Limits{
		MaxRecords:      1 << 20,
		MaxPolyVertices: 1 << 15,
		MaxRects:        1 << 20,
	}
}

// Read parses a GDSII stream and returns the boundaries of the requested
// layer (-1 = any layer) of the first structure, decomposed into
// rectangles. TileNM is set to the bounding extent rounded up; callers can
// override. Resource use is bounded by DefaultLimits; use ReadWithLimits
// to tighten or loosen the caps.
func Read(r io.Reader, layer int16) (*layout.Layout, error) {
	return ReadWithLimits(r, layer, DefaultLimits())
}

// ReadWithLimits is Read under explicit resource caps: exceeding any
// limit returns an error instead of growing without bound.
func ReadWithLimits(r io.Reader, layer int16, lim Limits) (*layout.Layout, error) {
	br := bufio.NewReader(r)
	first, err := readRecord(br)
	if err != nil {
		return nil, err
	}
	if first.typ != recHEADER {
		return nil, fmt.Errorf("gds: stream does not start with HEADER (got %s)", recName(first.typ))
	}
	l := &layout.Layout{}
	records := 1
	maxExtent := 0

	inBoundary := false
	var curLayer int16 = -1
	var curXY []point
	for {
		rec, err := readRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		records++
		if records > lim.MaxRecords {
			return nil, fmt.Errorf("gds: stream exceeds %d records", lim.MaxRecords)
		}
		switch rec.typ {
		case recSTRNAME:
			if l.Name == "" {
				l.Name = trimASCII(rec.data)
			}
		case recBOUNDARY:
			inBoundary = true
			curLayer = -1
			curXY = nil
		case recLAYER:
			if len(rec.data) >= 2 {
				curLayer = int16(binary.BigEndian.Uint16(rec.data))
			}
		case recXY:
			if !inBoundary {
				continue
			}
			if len(rec.data)%8 != 0 {
				return nil, fmt.Errorf("gds: XY payload not a multiple of 8")
			}
			if n := len(curXY) + len(rec.data)/8; n > lim.MaxPolyVertices {
				return nil, fmt.Errorf("gds: boundary exceeds %d vertices", lim.MaxPolyVertices)
			}
			for i := 0; i+8 <= len(rec.data); i += 8 {
				curXY = append(curXY, point{
					x: int32(binary.BigEndian.Uint32(rec.data[i:])),
					y: int32(binary.BigEndian.Uint32(rec.data[i+4:])),
				})
			}
		case recENDEL:
			if inBoundary && (layer < 0 || curLayer == layer) && len(curXY) >= 4 {
				rects, err := decomposeRectilinear(curXY)
				if err != nil {
					return nil, err
				}
				if len(l.Rects)+len(rects) > lim.MaxRects {
					return nil, fmt.Errorf("gds: stream exceeds %d rectangles", lim.MaxRects)
				}
				for _, rc := range rects {
					l.Rects = append(l.Rects, rc)
					if e := rc.X + rc.W; e > maxExtent {
						maxExtent = e
					}
					if e := rc.Y + rc.H; e > maxExtent {
						maxExtent = e
					}
				}
			}
			inBoundary = false
			curXY = nil
		case recENDLIB:
			goto done
		}
	}
done:
	l.TileNM = 2048
	for l.TileNM < maxExtent {
		l.TileNM *= 2
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

func trimASCII(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}

// decomposeRectilinear splits a closed rectilinear polygon into
// non-overlapping rectangles with a vertical band sweep over its x-events.
// The polygon must be axis-aligned (every edge horizontal or vertical);
// the closing vertex may repeat the first.
func decomposeRectilinear(poly []point) ([]layout.Rect, error) {
	if len(poly) > 1 && poly[0] == poly[len(poly)-1] {
		poly = poly[:len(poly)-1]
	}
	if len(poly) < 4 {
		return nil, fmt.Errorf("gds: boundary with %d vertices", len(poly))
	}
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if a.x != b.x && a.y != b.y {
			return nil, fmt.Errorf("gds: non-rectilinear boundary edge (%d,%d)-(%d,%d)", a.x, a.y, b.x, b.y)
		}
	}
	// Collect vertical edges and x-events.
	type vedge struct{ x, y0, y1 int32 } // y0 < y1
	var edges []vedge
	xsSet := map[int32]bool{}
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if a.x == b.x && a.y != b.y {
			y0, y1 := a.y, b.y
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			edges = append(edges, vedge{a.x, y0, y1})
			xsSet[a.x] = true
		}
	}
	xs := make([]int32, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })

	var out []layout.Rect
	// For each x-band, find interior y-intervals by parity of crossing
	// edges that span the band.
	for bi := 0; bi+1 < len(xs); bi++ {
		x0, x1 := xs[bi], xs[bi+1]
		if x0 == x1 {
			continue
		}
		// A point inside the band is interior to the polygon iff a ray cast
		// left crosses an odd number of vertical edges, so the interior
		// y-intervals of the band are the odd-parity regions of the
		// y-boundaries of all vertical edges at x ≤ x0 (even-odd rule;
		// coincident boundaries cancel pairwise).
		type span struct{ y0, y1 int32 }
		var spans []span
		depthChange := map[int32]int{}
		for _, e := range edges {
			if e.x <= x0 {
				depthChange[e.y0]++
				depthChange[e.y1]++
			}
		}
		var ys []int32
		for y := range depthChange {
			ys = append(ys, y)
		}
		sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
		parity := 0
		var openY int32
		for _, y := range ys {
			if depthChange[y]%2 == 1 {
				if parity == 0 {
					openY = y
					parity = 1
				} else {
					spans = append(spans, span{openY, y})
					parity = 0
				}
			}
		}
		for _, s := range spans {
			out = append(out, layout.Rect{
				X: int(x0), Y: int(s.y0),
				W: int(x1 - x0), H: int(s.y1 - s.y0),
			})
		}
	}
	// Merge horizontally adjacent bands with identical y-extent to keep
	// rectangle counts small.
	merged := mergeBands(out)
	return merged, nil
}

// mergeBands coalesces rects that share y-extent and abut in x.
func mergeBands(rects []layout.Rect) []layout.Rect {
	sort.Slice(rects, func(i, j int) bool {
		if rects[i].Y != rects[j].Y {
			return rects[i].Y < rects[j].Y
		}
		if rects[i].H != rects[j].H {
			return rects[i].H < rects[j].H
		}
		return rects[i].X < rects[j].X
	})
	var out []layout.Rect
	for _, r := range rects {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Y == r.Y && last.H == r.H && last.X+last.W == r.X {
				last.W += r.W
				continue
			}
		}
		out = append(out, r)
	}
	return out
}
