// Package gds reads and writes a practical subset of the GDSII stream
// format — the interchange format real mask-data-preparation flows use for
// layouts like the ICCAD-2013 tiles. Supported: HEADER/BGNLIB/LIBNAME/
// UNITS/BGNSTR/STRNAME/ENDSTR/ENDLIB structure records and BOUNDARY
// elements with LAYER/DATATYPE/XY, which covers rectilinear layout tiles.
// Boundaries are decomposed into the rectangle lists the rest of this
// library consumes.
package gds

import (
	"fmt"
	"math"
)

// encodeReal8 converts a float64 to the GDSII 8-byte real: a sign bit,
// a 7-bit excess-64 base-16 exponent, and a 56-bit mantissa in [1/16, 1).
func encodeReal8(v float64) [8]byte {
	var out [8]byte
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return out
	}
	sign := byte(0)
	if v < 0 {
		sign = 0x80
		v = -v
	}
	exp := 0
	// Normalize mantissa into [1/16, 1) with v = mantissa · 16^exp.
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	e := exp + 64
	if e < 0 {
		return out // underflow → zero
	}
	if e > 127 {
		e = 127 // saturate; callers only encode unit scales
	}
	out[0] = sign | byte(e)
	mant := v
	for i := 1; i < 8; i++ {
		mant *= 256
		b := math.Floor(mant)
		out[i] = byte(b)
		mant -= b
	}
	return out
}

// decodeReal8 converts a GDSII 8-byte real back to float64.
func decodeReal8(b [8]byte) float64 {
	sign := 1.0
	if b[0]&0x80 != 0 {
		sign = -1
	}
	exp := int(b[0]&0x7f) - 64
	mant := 0.0
	scale := 1.0
	for i := 1; i < 8; i++ {
		scale /= 256
		mant += float64(b[i]) * scale
	}
	if mant == 0 {
		return 0
	}
	return sign * mant * math.Pow(16, float64(exp))
}

// record type bytes of the GDSII subset.
const (
	recHEADER   = 0x00
	recBGNLIB   = 0x01
	recLIBNAME  = 0x02
	recUNITS    = 0x03
	recENDLIB   = 0x04
	recBGNSTR   = 0x05
	recSTRNAME  = 0x06
	recENDSTR   = 0x07
	recBOUNDARY = 0x08
	recENDEL    = 0x11
	recLAYER    = 0x0d
	recDATATYPE = 0x0e
	recXY       = 0x10
)

// data type bytes.
const (
	dtNone  = 0x00
	dtInt16 = 0x02
	dtInt32 = 0x03
	dtReal8 = 0x05
	dtASCII = 0x06
)

func recName(t byte) string {
	switch t {
	case recHEADER:
		return "HEADER"
	case recBGNLIB:
		return "BGNLIB"
	case recLIBNAME:
		return "LIBNAME"
	case recUNITS:
		return "UNITS"
	case recENDLIB:
		return "ENDLIB"
	case recBGNSTR:
		return "BGNSTR"
	case recSTRNAME:
		return "STRNAME"
	case recENDSTR:
		return "ENDSTR"
	case recBOUNDARY:
		return "BOUNDARY"
	case recENDEL:
		return "ENDEL"
	case recLAYER:
		return "LAYER"
	case recDATATYPE:
		return "DATATYPE"
	case recXY:
		return "XY"
	}
	return fmt.Sprintf("0x%02x", t)
}
