package opt

import (
	"context"
	"time"
)

// Progress is an optimizer heartbeat: the iteration that just finished,
// its loss, and a monotonic timestamp taken at emission. Engines emit
// one heartbeat per iteration through Beat; the tiled flow's stall
// watchdog uses the stamp stream to distinguish an optimizer that is
// merely slow (heartbeats keep arriving) from one that has stalled
// (no heartbeat within the configured window).
type Progress func(iter int, loss float64, at time.Time)

type progressKey struct{}

// WithProgress returns a context carrying cb as the heartbeat receiver.
// The tiled flow attaches this to each attempt's context (published to
// engines via litho.Simulator.Ctx) so iteration loops can report
// liveness without widening the optimizer signatures.
func WithProgress(ctx context.Context, cb Progress) context.Context {
	return context.WithValue(ctx, progressKey{}, cb)
}

// ProgressFrom extracts the heartbeat receiver carried by ctx, or nil
// when none is attached (single-window use, nil context).
func ProgressFrom(ctx context.Context) Progress {
	if ctx == nil {
		return nil
	}
	cb, _ := ctx.Value(progressKey{}).(Progress)
	return cb
}

// Beat emits one heartbeat on the Progress receiver carried by ctx,
// stamped with the current monotonic clock. It is a no-op without a
// receiver, so engines call it unconditionally once per iteration.
func Beat(ctx context.Context, iter int, loss float64) {
	if cb := ProgressFrom(ctx); cb != nil {
		cb(iter, loss, time.Now())
	}
}

// Snapshot is a resumable mid-run optimizer checkpoint: the flat
// parameter vector plus the Adam moment state after Iter iterations.
// The tiled flow journals snapshots of long CircleOpt tiles so a killed
// run restarts a half-finished tile from its last recorded circle
// parameters instead of from scratch; because the Adam moments ride
// along, the resumed iterations replay the uninterrupted trajectory
// exactly.
type Snapshot struct {
	Iter   int     // iterations completed when the snapshot was taken
	Loss   float64 // loss at that iteration
	Params []float64
	OptT   int // Adam step counter
	OptM   []float64
	OptV   []float64
}

// SnapshotSink receives periodic optimizer snapshots. The slices in
// each Snapshot are private copies; the sink may retain them.
type SnapshotSink func(Snapshot)

type snapshotKey struct{}
type resumeKey struct{}

type snapshotCfg struct {
	sink  SnapshotSink
	every int
}

// WithSnapshots returns a context asking snapshot-capable engines to
// call sink every `every` iterations. every <= 0 disables snapshots.
func WithSnapshots(ctx context.Context, sink SnapshotSink, every int) context.Context {
	return context.WithValue(ctx, snapshotKey{}, snapshotCfg{sink: sink, every: every})
}

// SnapshotsFrom extracts the snapshot request carried by ctx; the sink
// is nil (and every 0) when none is attached.
func SnapshotsFrom(ctx context.Context) (SnapshotSink, int) {
	if ctx == nil {
		return nil, 0
	}
	c, _ := ctx.Value(snapshotKey{}).(snapshotCfg)
	if c.every <= 0 {
		return nil, 0
	}
	return c.sink, c.every
}

// WithResume returns a context carrying a snapshot for a
// snapshot-capable engine to warm-start from instead of optimizing from
// scratch. Engines validate the snapshot (parameter count, iteration
// bounds) and silently fall back to a cold start on mismatch.
func WithResume(ctx context.Context, s Snapshot) context.Context {
	return context.WithValue(ctx, resumeKey{}, s)
}

// ResumeFrom extracts the warm-start snapshot carried by ctx.
func ResumeFrom(ctx context.Context) (Snapshot, bool) {
	if ctx == nil {
		return Snapshot{}, false
	}
	s, ok := ctx.Value(resumeKey{}).(Snapshot)
	return s, ok
}
