package opt

import (
	"math"
	"testing"
)

func quadratic(target []float64) func(x []float64) (float64, []float64) {
	return func(x []float64) (float64, []float64) {
		f := 0.0
		g := make([]float64, len(x))
		for i := range x {
			d := x[i] - target[i]
			f += d * d
			g[i] = 2 * d
		}
		return f, g
	}
}

func TestLBFGSQuadratic(t *testing.T) {
	target := []float64{3, -2, 0.5, 10}
	x := make([]float64, 4)
	l := NewLBFGS()
	eval := quadratic(target)
	var f float64
	for i := 0; i < 60; i++ {
		f = l.Step(x, eval)
	}
	if f > 1e-8 {
		t.Fatalf("L-BFGS did not minimize quadratic: f=%v x=%v", f, x)
	}
}

// Rosenbrock is the canonical ill-conditioned test; L-BFGS should reach
// the (1,1) minimum where plain gradient descent crawls.
func TestLBFGSRosenbrock(t *testing.T) {
	eval := func(x []float64) (float64, []float64) {
		a, b := x[0], x[1]
		f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		g := []float64{
			-2*(1-a) - 400*a*(b-a*a),
			200 * (b - a*a),
		}
		return f, g
	}
	x := []float64{-1.2, 1}
	l := NewLBFGS()
	var f float64
	for i := 0; i < 300; i++ {
		f = l.Step(x, eval)
	}
	if f > 1e-6 {
		t.Fatalf("Rosenbrock not minimized: f=%v at %v", f, x)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("converged to %v, want (1,1)", x)
	}
}

func TestLBFGSMonotoneUnderArmijo(t *testing.T) {
	// Each accepted step must not increase the loss.
	eval := quadratic([]float64{5, 5})
	x := []float64{0, 0}
	l := NewLBFGS()
	prev := math.Inf(1)
	for i := 0; i < 40; i++ {
		f := l.Step(x, eval)
		if f > prev+1e-12 {
			t.Fatalf("loss increased: %v → %v at iter %d", prev, f, i)
		}
		prev = f
	}
}

func TestLBFGSZeroGradientStaysPut(t *testing.T) {
	eval := func(x []float64) (float64, []float64) {
		return 7, make([]float64, len(x))
	}
	x := []float64{1, 2}
	l := NewLBFGS()
	f := l.Step(x, eval)
	if f != 7 || x[0] != 1 || x[1] != 2 {
		t.Fatalf("moved on zero gradient: f=%v x=%v", f, x)
	}
}

func TestLBFGSHandlesNaNGradient(t *testing.T) {
	calls := 0
	eval := func(x []float64) (float64, []float64) {
		calls++
		g := []float64{math.NaN(), 2 * x[1]}
		return x[1] * x[1], g
	}
	x := []float64{1, 3}
	l := NewLBFGS()
	for i := 0; i < 30; i++ {
		l.Step(x, eval)
	}
	if math.IsNaN(x[0]) || math.IsNaN(x[1]) {
		t.Fatalf("NaN leaked into parameters: %v", x)
	}
	if math.Abs(x[1]) > 1e-3 {
		t.Fatalf("finite coordinate not minimized: %v", x)
	}
}
