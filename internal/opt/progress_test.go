package opt

import (
	"context"
	"testing"
	"time"
)

func TestBeatNoReceiver(t *testing.T) {
	// Must be a silent no-op on nil and receiver-less contexts.
	Beat(nil, 0, 1.5) //nolint:staticcheck // nil context is the single-window path
	Beat(context.Background(), 0, 1.5)
	if ProgressFrom(nil) != nil || ProgressFrom(context.Background()) != nil {
		t.Fatal("ProgressFrom invented a receiver")
	}
}

func TestBeatDelivery(t *testing.T) {
	var gotIter int
	var gotLoss float64
	var gotAt time.Time
	ctx := WithProgress(context.Background(), func(iter int, loss float64, at time.Time) {
		gotIter, gotLoss, gotAt = iter, loss, at
	})
	before := time.Now()
	Beat(ctx, 7, 3.25)
	if gotIter != 7 || gotLoss != 3.25 {
		t.Fatalf("heartbeat = (%d, %g)", gotIter, gotLoss)
	}
	if gotAt.Before(before) || time.Since(gotAt) > time.Minute {
		t.Fatalf("heartbeat stamp %v not monotonic-recent", gotAt)
	}
}

func TestSnapshotPlumbing(t *testing.T) {
	if sink, every := SnapshotsFrom(context.Background()); sink != nil || every != 0 {
		t.Fatal("bare context carries a snapshot request")
	}
	var got []Snapshot
	ctx := WithSnapshots(context.Background(), func(s Snapshot) { got = append(got, s) }, 5)
	sink, every := SnapshotsFrom(ctx)
	if sink == nil || every != 5 {
		t.Fatalf("sink=%v every=%d", sink, every)
	}
	sink(Snapshot{Iter: 5, Loss: 1})
	if len(got) != 1 || got[0].Iter != 5 {
		t.Fatalf("delivered %+v", got)
	}
	// every <= 0 disables, even with a sink attached.
	if s, e := SnapshotsFrom(WithSnapshots(context.Background(), sink, 0)); s != nil || e != 0 {
		t.Fatal("every=0 did not disable snapshots")
	}
	if _, ok := ResumeFrom(context.Background()); ok {
		t.Fatal("bare context carries a resume snapshot")
	}
	rctx := WithResume(context.Background(), Snapshot{Iter: 9, Params: []float64{1, 2}})
	s, ok := ResumeFrom(rctx)
	if !ok || s.Iter != 9 || len(s.Params) != 2 {
		t.Fatalf("resume snapshot %+v ok=%v", s, ok)
	}
}

// TestAdamStateRoundTrip proves the bit-replay contract snapshots rely
// on: stepping a fresh Adam k times then restoring (params, state) into
// another instance reproduces the remaining steps exactly.
func TestAdamStateRoundTrip(t *testing.T) {
	grad := func(p []float64) []float64 {
		g := make([]float64, len(p))
		for i, v := range p {
			g[i] = 2*v - float64(i) // minimize Σ (v - i/2)²-ish
		}
		return g
	}
	const n, total, cut = 4, 20, 7
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i) + 1
	}
	a := NewAdam(n, 0.05)
	for it := 0; it < total; it++ {
		a.Step(ref, grad(ref))
	}

	// Interrupted run: cut steps, snapshot, restore into a fresh Adam.
	p := make([]float64, n)
	for i := range p {
		p[i] = float64(i) + 1
	}
	b := NewAdam(n, 0.05)
	for it := 0; it < cut; it++ {
		b.Step(p, grad(p))
	}
	st, m, v := b.State()
	if st != cut {
		t.Fatalf("state t = %d, want %d", st, cut)
	}
	c := NewAdam(n, 0.05)
	c.SetState(st, m, v)
	for it := cut; it < total; it++ {
		c.Step(p, grad(p))
	}
	for i := range ref {
		if p[i] != ref[i] {
			t.Fatalf("param %d: resumed %v != uninterrupted %v", i, p[i], ref[i])
		}
	}
}

func TestAdamSetStateMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch accepted")
		}
	}()
	NewAdam(3, 0.1).SetState(1, []float64{0}, []float64{0})
}
