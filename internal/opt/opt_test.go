package opt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClip(t *testing.T) {
	if Clip(5, 0, 3) != 3 || Clip(-1, 0, 3) != 0 || Clip(2, 0, 3) != 2 {
		t.Fatal("Clip wrong")
	}
}

func TestSTERound(t *testing.T) {
	if STERound(2.4, 0, 10) != 2 || STERound(2.6, 0, 10) != 3 {
		t.Fatal("rounding wrong")
	}
	if STERound(12.7, 0, 10) != 10 || STERound(-3, 0, 10) != 0 {
		t.Fatal("clipping wrong")
	}
}

func TestSTEGradIndicator(t *testing.T) {
	if STEGrad(5, 0, 10) != 1 || STEGrad(0, 0, 10) != 1 || STEGrad(10, 0, 10) != 1 {
		t.Fatal("in-bounds gradient should be 1")
	}
	if STEGrad(-0.1, 0, 10) != 0 || STEGrad(10.1, 0, 10) != 0 {
		t.Fatal("out-of-bounds gradient should be 0")
	}
}

// Property: STERound output is always an integer within [lo, hi].
func TestSTERoundProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		y := STERound(x, -5, 7)
		return y >= -5 && y <= 7 && y == math.Round(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// f(p) = Σ (p_i - target_i)².
	target := []float64{3, -2, 0.5}
	params := make([]float64, 3)
	a := NewAdam(3, 0.1)
	grads := make([]float64, 3)
	for iter := 0; iter < 500; iter++ {
		for i := range params {
			grads[i] = 2 * (params[i] - target[i])
		}
		a.Step(params, grads)
	}
	for i := range params {
		if math.Abs(params[i]-target[i]) > 1e-3 {
			t.Fatalf("Adam did not converge: params[%d]=%v want %v", i, params[i], target[i])
		}
	}
}

func TestSGDMinimizesQuadratic(t *testing.T) {
	target := []float64{1, -1}
	params := make([]float64, 2)
	s := NewSGD(2, 0.05, 0.9)
	grads := make([]float64, 2)
	for iter := 0; iter < 400; iter++ {
		for i := range params {
			grads[i] = 2 * (params[i] - target[i])
		}
		s.Step(params, grads)
	}
	for i := range params {
		if math.Abs(params[i]-target[i]) > 1e-3 {
			t.Fatalf("SGD did not converge: params[%d]=%v", i, params[i])
		}
	}
}

func TestOptimizersIgnoreNaNGradients(t *testing.T) {
	params := []float64{1, 1}
	a := NewAdam(2, 0.1)
	a.Step(params, []float64{math.NaN(), math.Inf(1)})
	for i, p := range params {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("Adam produced non-finite param[%d]=%v", i, p)
		}
	}
	s := NewSGD(2, 0.1, 0.5)
	s.Step(params, []float64{math.NaN(), math.Inf(-1)})
	for i, p := range params {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("SGD produced non-finite param[%d]=%v", i, p)
		}
	}
}

func TestStepPanicsOnSizeMismatch(t *testing.T) {
	a := NewAdam(3, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched sizes")
		}
	}()
	a.Step(make([]float64, 2), make([]float64, 2))
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ lr.
	params := []float64{0}
	a := NewAdam(1, 0.1)
	a.Step(params, []float64{123.0})
	if math.Abs(math.Abs(params[0])-0.1) > 1e-6 {
		t.Fatalf("first step magnitude %v, want ≈ 0.1", params[0])
	}
}
