package opt

import "math"

// LBFGS is a limited-memory BFGS optimizer with a backtracking Armijo line
// search — the quasi-Newton alternative to Adam that classic ILT papers
// (MOSAIC's steepest-descent lineage) upgrade to when iteration counts
// matter more than per-step cost. The caller supplies the objective as a
// function returning loss and gradient.
type LBFGS struct {
	// History is the number of (s, y) curvature pairs retained (default 8).
	History int
	// InitialStep scales the very first step before curvature information
	// exists (default 1e-2).
	InitialStep float64
	// C1 is the Armijo sufficient-decrease constant (default 1e-4).
	C1 float64
	// MaxLineSearch bounds the backtracking halvings per step (default 20).
	MaxLineSearch int

	sList, yList [][]float64
	rhoList      []float64
	prevX        []float64
	prevG        []float64
}

// NewLBFGS creates an optimizer with the standard defaults.
func NewLBFGS() *LBFGS {
	return &LBFGS{History: 8, InitialStep: 1e-2, C1: 1e-4, MaxLineSearch: 20}
}

// Step performs one L-BFGS iteration on x in place. eval must return the
// loss and its gradient at the supplied point; it is called once for the
// current point and once per line-search trial. Step returns the new loss
// (or the current one when no progress was possible).
func (l *LBFGS) Step(x []float64, eval func(x []float64) (float64, []float64)) float64 {
	n := len(x)
	f0, g0 := eval(x)
	g := append([]float64(nil), g0...)
	for i, v := range g {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			g[i] = 0
		}
	}

	// Update curvature history from the previous accepted point.
	if l.prevX != nil {
		s := make([]float64, n)
		y := make([]float64, n)
		sy := 0.0
		for i := range x {
			s[i] = x[i] - l.prevX[i]
			y[i] = g[i] - l.prevG[i]
			sy += s[i] * y[i]
		}
		if sy > 1e-12 {
			l.sList = append(l.sList, s)
			l.yList = append(l.yList, y)
			l.rhoList = append(l.rhoList, 1/sy)
			hist := l.History
			if hist <= 0 {
				hist = 8
			}
			if len(l.sList) > hist {
				l.sList = l.sList[1:]
				l.yList = l.yList[1:]
				l.rhoList = l.rhoList[1:]
			}
		}
	}

	// Two-loop recursion for the search direction d = -H·g.
	d := make([]float64, n)
	for i := range d {
		d[i] = -g[i]
	}
	m := len(l.sList)
	alpha := make([]float64, m)
	for k := m - 1; k >= 0; k-- {
		dot := 0.0
		for i := range d {
			dot += l.sList[k][i] * d[i]
		}
		alpha[k] = -l.rhoList[k] * dot // note d holds -q
		for i := range d {
			d[i] += alpha[k] * l.yList[k][i]
		}
	}
	if m > 0 {
		yy, sy := 0.0, 0.0
		k := m - 1
		for i := 0; i < n; i++ {
			yy += l.yList[k][i] * l.yList[k][i]
			sy += l.sList[k][i] * l.yList[k][i]
		}
		if yy > 1e-300 {
			scale := sy / yy
			for i := range d {
				d[i] *= scale
			}
		}
	}
	for k := 0; k < m; k++ {
		dot := 0.0
		for i := range d {
			dot += l.yList[k][i] * d[i]
		}
		beta := l.rhoList[k] * dot
		for i := range d {
			d[i] += (-alpha[k] - beta) * l.sList[k][i]
		}
	}

	// Descent check; fall back to steepest descent when curvature noise
	// flips the direction.
	dg := 0.0
	for i := range d {
		dg += d[i] * g[i]
	}
	if dg >= 0 {
		for i := range d {
			d[i] = -g[i]
		}
		dg = 0
		for i := range d {
			dg += d[i] * g[i]
		}
		if dg == 0 {
			return f0 // zero gradient: converged
		}
	}

	step := 1.0
	if m == 0 {
		// Scale the first step to InitialStep in infinity norm.
		maxD := 0.0
		for _, v := range d {
			if a := math.Abs(v); a > maxD {
				maxD = a
			}
		}
		is := l.InitialStep
		if is <= 0 {
			is = 1e-2
		}
		if maxD > 0 {
			step = is / maxD
		}
	}

	c1 := l.C1
	if c1 <= 0 {
		c1 = 1e-4
	}
	maxLS := l.MaxLineSearch
	if maxLS <= 0 {
		maxLS = 20
	}
	trial := make([]float64, n)
	for ls := 0; ls < maxLS; ls++ {
		for i := range x {
			trial[i] = x[i] + step*d[i]
		}
		fTrial, _ := eval(trial)
		if fTrial <= f0+c1*step*dg {
			l.prevX = append(l.prevX[:0], x...)
			l.prevG = append(l.prevG[:0], g...)
			copy(x, trial)
			return fTrial
		}
		step /= 2
	}
	// Line search failed: stay put but remember the gradient.
	l.prevX = append(l.prevX[:0], x...)
	l.prevG = append(l.prevG[:0], g...)
	return f0
}
