// Package opt contains the first-order optimizers and straight-through
// estimator helpers shared by the pixel- and circle-level ILT engines.
package opt

import "math"

// Clip returns x limited to [lo, hi].
func Clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// STERound is the forward pass of the straight-through estimator of
// Equation (8): Round(Clip(x, lo, hi)).
func STERound(x, lo, hi float64) float64 {
	return math.Round(Clip(x, lo, hi))
}

// STEGrad is the backward pass of the straight-through estimator of
// Equation (9): the indicator 1{lo ≤ x ≤ hi}(x), which passes the
// downstream gradient through unchanged inside the bounds and kills it
// outside.
func STEGrad(x, lo, hi float64) float64 {
	if x >= lo && x <= hi {
		return 1
	}
	return 0
}

// Adam is the Adam optimizer over a flat parameter vector. Gradients that
// are NaN or infinite are treated as zero so a single bad pixel cannot
// poison the moment estimates.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	m, v []float64
}

// NewAdam creates an Adam optimizer for n parameters with the given
// learning rate and standard moment defaults (β₁=0.9, β₂=0.999, ε=1e-8).
func NewAdam(n int, lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make([]float64, n), v: make([]float64, n)}
}

// Step applies one Adam update in place: params -= lr·m̂/(√v̂+ε).
func (a *Adam) Step(params, grads []float64) {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		panic("opt: Adam parameter count mismatch")
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, g := range grads {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			g = 0
		}
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
}

// State exports the optimizer's internal state — the step counter and
// copies of the first and second moment vectors — so a mid-run snapshot
// can be journaled and later restored with SetState. Restoring both the
// parameters and this state makes the remaining iterations replay the
// uninterrupted trajectory bit-for-bit.
func (a *Adam) State() (t int, m, v []float64) {
	return a.t, append([]float64(nil), a.m...), append([]float64(nil), a.v...)
}

// SetState restores a snapshot taken with State. The moment vectors
// must match the optimizer's parameter count.
func (a *Adam) SetState(t int, m, v []float64) {
	if len(m) != len(a.m) || len(v) != len(a.v) {
		panic("opt: Adam state size mismatch")
	}
	a.t = t
	copy(a.m, m)
	copy(a.v, v)
}

// SGD is plain gradient descent with optional momentum, used by the
// level-set engine where Adam's per-parameter scaling distorts the front
// velocity.
type SGD struct {
	LR, Momentum float64

	vel []float64
}

// NewSGD creates an SGD optimizer for n parameters.
func NewSGD(n int, lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make([]float64, n)}
}

// Step applies one SGD update in place.
func (s *SGD) Step(params, grads []float64) {
	if len(params) != len(s.vel) || len(grads) != len(s.vel) {
		panic("opt: SGD parameter count mismatch")
	}
	for i, g := range grads {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			g = 0
		}
		s.vel[i] = s.Momentum*s.vel[i] - s.LR*g
		params[i] += s.vel[i]
	}
}
