// Package replay re-runs a quarantine bundle offline. A bundle is a
// complete description of one failed tile — target raster, optics,
// tiling knobs, engine metadata, injected-fault script, recorded
// attempt history — so Run can reconstruct the exact optimizer chain
// (engine.FromMeta), re-inject the same deterministic faults, walk the
// same primary → retries → fallback ladder (flow.ReplayWindow), and
// compare what happened against what the live run recorded. That
// comparison is the point: "reproduced" means the failure is
// deterministic and debuggable from the bundle alone; a divergence
// means the failure depended on something outside it (machine state,
// data races, wall-clock pressure), which is equally worth knowing.
//
// Options.Fixed swaps the primary engine for a candidate fix and
// reports whether the tile now succeeds — the verify loop for a repair
// developed against a bundle.
package replay

import (
	"context"
	"fmt"

	"cfaopc/internal/engine"
	"cfaopc/internal/flow"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
	"cfaopc/internal/quarantine"
)

// Options tune a replay.
type Options struct {
	// Fixed, when non-empty, replaces the bundle's primary engine with
	// this named method (same knobs), answering "does the fix hold on
	// the captured failure?" instead of "does the failure reproduce?".
	Fixed string
	// Workers sets per-kernel litho parallelism for the replay simulator.
	Workers int
	// NoFaults skips re-injecting the bundle's recorded fault script —
	// useful to check whether the tile fails on its own or only under
	// the harness.
	NoFaults bool
}

// AttemptDiff pairs one recorded attempt with its replayed counterpart.
// Replayed is zero-valued (Engine "") when the replay ended earlier
// than the recording, and vice versa.
type AttemptDiff struct {
	Index    int
	Recorded quarantine.Attempt
	Replayed quarantine.Attempt
	Match    bool // engine and error string agree
}

// Report is the outcome of one bundle replay.
type Report struct {
	Bundle   *quarantine.Bundle
	Stat     flow.TileStat
	Shots    []geom.Circle // window-local shots when the replay succeeded
	Attempts []AttemptDiff

	// Reproduced: the replay degraded to empty through the same
	// attempt-by-attempt failure sequence the live run recorded. Only
	// meaningful without Fixed/NoFaults.
	Reproduced bool
	// PathMatch: the replay ended on the recorded outcome path (always
	// "empty" for a quarantined tile).
	PathMatch bool
	// Fixed: Options.Fixed was set and the tile now succeeds.
	Fixed bool
}

// Run replays b and compares against its recorded history.
func Run(ctx context.Context, b *quarantine.Bundle, o Options) (*Report, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	meta := b.Engines
	if o.Fixed != "" {
		meta.Primary = o.Fixed
	}
	primary, fallback, err := engine.FromMeta(meta)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}

	sim, err := litho.New(b.Optics, b.Tile.WindowPx)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	sim.KOpt = b.KOpt
	sim.Workers = o.Workers

	cfg := flow.Config{
		GridN:        b.GridN,
		CorePx:       b.CorePx,
		HaloPx:       b.HaloPx,
		KOpt:         b.KOpt,
		Workers:      o.Workers,
		Optimize:     primary,
		Fallback:     fallback,
		TileRetries:  b.TileRetries,
		TileTimeout:  b.TileTimeout,
		StallTimeout: b.StallTimeout,
		RMinPx:       b.RMinPx,
		RMaxPx:       b.RMaxPx,
		Engines:      meta,
	}
	if len(b.Faults) > 0 && !o.NoFaults {
		script := make([]flow.Fault, len(b.Faults))
		for i, f := range b.Faults {
			script[i] = flow.Fault{
				Sleep: f.Sleep, BeatEvery: f.BeatEvery, Stall: f.Stall,
				Panic: f.Panic, NaN: f.NaN, BadRadius: f.BadRadius, Kill: f.Kill,
			}
		}
		cfg.Faults = flow.FaultPlan{b.Tile.Index: script}
	}

	target := &grid.Real{W: b.TargetW, H: b.TargetH, Data: append([]float64(nil), b.Target...)}
	shots, stat, outcomes := flow.ReplayWindow(ctx, sim, cfg, b.Tile.Index, b.Tile.CX, b.Tile.CY, target)

	rep := &Report{Bundle: b, Stat: stat, Shots: shots}
	n := len(b.Attempts)
	if len(outcomes) > n {
		n = len(outcomes)
	}
	errsMatch := len(outcomes) == len(b.Attempts)
	for i := 0; i < n; i++ {
		d := AttemptDiff{Index: i}
		if i < len(b.Attempts) {
			d.Recorded = b.Attempts[i]
		}
		if i < len(outcomes) {
			oc := outcomes[i]
			d.Replayed = quarantine.Attempt{
				Index: oc.Attempt, Engine: oc.Engine, Err: oc.Err,
				Iters: oc.Iters, LastLoss: oc.LastLoss, Stalled: oc.Stalled,
			}
		}
		d.Match = i < len(b.Attempts) && i < len(outcomes) &&
			d.Recorded.Engine == d.Replayed.Engine && d.Recorded.Err == d.Replayed.Err
		if !d.Match {
			errsMatch = false
		}
		rep.Attempts = append(rep.Attempts, d)
	}
	rep.PathMatch = stat.Path == flow.PathEmpty
	rep.Reproduced = rep.PathMatch && errsMatch
	rep.Fixed = o.Fixed != "" && (stat.Path == flow.PathPrimary)
	return rep, nil
}
