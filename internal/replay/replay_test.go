package replay

import (
	"context"
	"path/filepath"
	"testing"

	"cfaopc/internal/engine"
	"cfaopc/internal/flow"
	"cfaopc/internal/layout"
	"cfaopc/internal/optics"
	"cfaopc/internal/quarantine"
)

// quarantinedBundle runs a small tiled flow with an always-failing tile
// and returns the bundle the flow wrote for it. Lives here (not in
// package flow) because the full loop — flow writes, engine rebuilds,
// replay re-runs — crosses an import cycle flow's own tests cannot.
func quarantinedBundle(t *testing.T) *quarantine.Bundle {
	t.Helper()
	l := &layout.Layout{
		Name:   "quad",
		TileNM: 1024,
		Rects: []layout.Rect{
			{X: 150, Y: 160, W: 80, H: 220},
			{X: 660, Y: 150, W: 80, H: 220},
			{X: 150, Y: 650, W: 220, H: 80},
			{X: 660, Y: 660, W: 80, H: 220},
		},
	}
	opts := engine.Options{Iters: 8, Gamma: 3, SampleNM: 32}
	primary, err := engine.For("circlerule", opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := flow.Config{
		GridN:         256,
		CorePx:        128,
		HaloPx:        32,
		Optics:        optics.Default(),
		KOpt:          4,
		Optimize:      primary,
		Fallback:      primary,
		TileRetries:   1,
		RMinPx:        1,
		RMaxPx:        40,
		QuarantineDir: filepath.Join(t.TempDir(), "quarantine"),
		Engines:       engine.Meta("circlerule", "circlerule", opts),
		Faults: flow.FaultPlan{
			3: {{Panic: true}, {Panic: true}, {Panic: true}}, // primary ×2 + fallback
		},
	}
	res, err := flow.Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined != 1 || res.TileStats[3].Bundle == "" {
		t.Fatalf("expected tile 3 quarantined: %+v", res.TileStats[3])
	}
	b, err := quarantine.Load(res.TileStats[3].Bundle)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestReplayReproduces(t *testing.T) {
	b := quarantinedBundle(t)
	rep, err := Run(context.Background(), b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reproduced || !rep.PathMatch || rep.Fixed {
		t.Fatalf("report: reproduced=%v pathMatch=%v fixed=%v", rep.Reproduced, rep.PathMatch, rep.Fixed)
	}
	if len(rep.Attempts) != 3 {
		t.Fatalf("attempt diffs: %+v", rep.Attempts)
	}
	for _, d := range rep.Attempts {
		if !d.Match {
			t.Fatalf("attempt %d diverged: recorded (%s) %q, replayed (%s) %q",
				d.Index, d.Recorded.Engine, d.Recorded.Err, d.Replayed.Engine, d.Replayed.Err)
		}
	}
	for i, oc := range rep.Attempts {
		if oc.Replayed.Err == "" || oc.Recorded.Err != b.Attempts[i].Err {
			t.Fatalf("attempt %d error bookkeeping: %+v vs bundle %+v", i, oc, b.Attempts[i])
		}
	}
}

// Without the fault script, the captured tile is healthy — the replay
// must report "not reproduced" rather than inventing a failure.
func TestReplayNoFaultsSucceeds(t *testing.T) {
	b := quarantinedBundle(t)
	rep, err := Run(context.Background(), b, Options{NoFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reproduced || rep.PathMatch {
		t.Fatalf("fault-free replay still failed: %+v", rep.Stat)
	}
	if rep.Stat.Path != flow.PathPrimary || len(rep.Shots) == 0 {
		t.Fatalf("fault-free replay: path %q, %d shots", rep.Stat.Path, len(rep.Shots))
	}
}

// The fix-verification loop: swapping in a candidate primary (with the
// faults disabled, modelling a repaired engine) must report Fixed.
func TestReplayFixedEngine(t *testing.T) {
	b := quarantinedBundle(t)
	rep, err := Run(context.Background(), b, Options{Fixed: "circlerule", NoFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fixed || rep.Reproduced {
		t.Fatalf("report: fixed=%v reproduced=%v stat=%+v", rep.Fixed, rep.Reproduced, rep.Stat)
	}
}

func TestReplayRejectsInvalidBundle(t *testing.T) {
	b := quarantinedBundle(t)
	b.Target = b.Target[:10] // raster no longer matches TargetW×TargetH
	if _, err := Run(context.Background(), b, Options{}); err == nil {
		t.Fatal("truncated bundle accepted")
	}
}

func TestReplayUnknownFixedEngine(t *testing.T) {
	b := quarantinedBundle(t)
	if _, err := Run(context.Background(), b, Options{Fixed: "no-such-engine"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
