package litho

import (
	"math"
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
	"cfaopc/internal/optics"
)

// testSim builds a cheap but physical simulator: 256 nm tile on a 32×32
// grid (8 nm/px) keeps kernel supports tiny.
func testSim(t testing.TB, n int) *Simulator {
	t.Helper()
	cfg := optics.Default()
	cfg.TileNM = 256
	cfg.NumKernels = 6
	s, err := New(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadInputs(t *testing.T) {
	cfg := optics.Default()
	if _, err := New(cfg, 0); err == nil {
		t.Error("expected error for grid size 0")
	}
	// Grid smaller than the kernel support must be rejected.
	if _, err := New(cfg, 8); err == nil {
		t.Error("expected error for grid smaller than kernel support")
	}
	bad := cfg
	bad.NA = -1
	if _, err := New(bad, 64); err == nil {
		t.Error("expected error for invalid optics config")
	}
}

func TestClearAndDarkField(t *testing.T) {
	s := testSim(t, 32)
	clear := grid.NewReal(32, 32)
	clear.Fill(1)
	i := s.Aerial(clear, s.Focus, false, nil)
	for idx, v := range i.Data {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("clear field intensity[%d] = %v, want 1", idx, v)
		}
	}
	dark := grid.NewReal(32, 32)
	i = s.Aerial(dark, s.Focus, false, nil)
	for idx, v := range i.Data {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("dark field intensity[%d] = %v, want 0", idx, v)
		}
	}
}

func TestAerialNonNegativeAndFinite(t *testing.T) {
	s := testSim(t, 32)
	rng := rand.New(rand.NewSource(1))
	m := grid.NewReal(32, 32)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	img := s.Aerial(m, s.Defocus, false, nil)
	for i, v := range img.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("intensity[%d] = %v", i, v)
		}
	}
}

func TestAerialPanicsOnSizeMismatch(t *testing.T) {
	s := testSim(t, 32)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched mask size")
		}
	}()
	s.Aerial(grid.NewReal(16, 16), s.Focus, false, nil)
}

func TestSigmoid(t *testing.T) {
	if v := Sigmoid(0); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %v", v)
	}
	if v := Sigmoid(50); v < 0.999 {
		t.Fatalf("Sigmoid(50) = %v", v)
	}
	if v := Sigmoid(-50); v > 0.001 {
		t.Fatalf("Sigmoid(-50) = %v", v)
	}
	// Symmetry σ(x) + σ(−x) = 1.
	for _, x := range []float64{0.1, 1, 3, 10, 200} {
		if d := Sigmoid(x) + Sigmoid(-x) - 1; math.Abs(d) > 1e-12 {
			t.Fatalf("sigmoid symmetry broken at %v: %v", x, d)
		}
	}
}

func TestResistModels(t *testing.T) {
	i := grid.NewReal(2, 1)
	i.Set(0, 0, Threshold*2)
	i.Set(1, 0, Threshold/2)
	zb := ResistBinary(i, 1.0)
	if zb.At(0, 0) != 1 || zb.At(1, 0) != 0 {
		t.Fatalf("binary resist wrong: %v", zb.Data)
	}
	zs := ResistSigmoid(i, 1.0)
	if zs.At(0, 0) < 0.9 || zs.At(1, 0) > 0.1 {
		t.Fatalf("sigmoid resist wrong: %v", zs.Data)
	}
	// Higher dose can only grow the printed region.
	zhi := ResistBinary(i, 1.3)
	for idx := range zb.Data {
		if zb.Data[idx] == 1 && zhi.Data[idx] == 0 {
			t.Fatal("higher dose shrank printed region")
		}
	}
}

func TestSimulateDoseCornerNesting(t *testing.T) {
	s := testSim(t, 32)
	m := grid.NewReal(32, 32)
	// A 10×10 square feature.
	for y := 11; y < 21; y++ {
		for x := 11; x < 21; x++ {
			m.Set(x, y, 1)
		}
	}
	r := s.Simulate(m)
	if r.ZNom.Sum() == 0 {
		t.Fatal("nominal image printed nothing")
	}
	// Max-dose print must contain the min-dose print (same aerial image).
	for i := range r.ZMax.Data {
		if r.ZMin.Data[i] == 1 && r.ZMax.Data[i] == 0 {
			t.Fatal("min-dose print not contained in max-dose print")
		}
	}
}

// The analytic mask gradient must match central finite differences of the
// loss. This validates the whole adjoint chain: resist sigmoid → aerial
// backward → kernel conjugation.
func TestLossGradMatchesFiniteDifference(t *testing.T) {
	s := testSim(t, 32)
	rng := rand.New(rand.NewSource(42))
	mask := grid.NewReal(32, 32)
	target := grid.NewReal(32, 32)
	for y := 12; y < 20; y++ {
		for x := 12; x < 20; x++ {
			target.Set(x, y, 1)
		}
	}
	for i := range mask.Data {
		mask.Data[i] = 0.3 + 0.4*rng.Float64()
	}

	for _, weights := range [][2]float64{{1, 0}, {0, 1}, {1, 1}} {
		wL2, wPVB := weights[0], weights[1]
		res := s.LossGrad(mask, target, wL2, wPVB)
		if res.GradM.HasNaN() {
			t.Fatal("gradient contains NaN")
		}
		const eps = 1e-5
		for _, px := range [][2]int{{13, 13}, {16, 16}, {5, 5}, {20, 12}} {
			x, y := px[0], px[1]
			orig := mask.At(x, y)
			mask.Set(x, y, orig+eps)
			lp := s.LossGrad(mask, target, wL2, wPVB).Loss
			mask.Set(x, y, orig-eps)
			lm := s.LossGrad(mask, target, wL2, wPVB).Loss
			mask.Set(x, y, orig)
			numeric := (lp - lm) / (2 * eps)
			analytic := res.GradM.At(x, y)
			scale := math.Max(math.Abs(numeric), math.Abs(analytic))
			if scale < 1e-8 {
				continue
			}
			if math.Abs(numeric-analytic) > 1e-3*scale+1e-8 {
				t.Errorf("w=(%g,%g) pixel (%d,%d): analytic %g vs numeric %g",
					wL2, wPVB, x, y, analytic, numeric)
			}
		}
	}
}

func TestLossGradPerfectMaskHasLowLoss(t *testing.T) {
	s := testSim(t, 32)
	target := grid.NewReal(32, 32)
	for y := 8; y < 24; y++ {
		for x := 8; x < 24; x++ {
			target.Set(x, y, 1)
		}
	}
	// The target itself is a reasonable mask for a large feature; loss
	// should be far below the all-empty mask's loss.
	empty := grid.NewReal(32, 32)
	lTarget := s.LossGrad(target, target, 1, 1).Loss
	lEmpty := s.LossGrad(empty, target, 1, 1).Loss
	if lTarget >= lEmpty {
		t.Fatalf("target-as-mask loss %g not better than empty mask %g", lTarget, lEmpty)
	}
}

func TestKOptTruncation(t *testing.T) {
	s := testSim(t, 32)
	m := grid.NewReal(32, 32)
	for y := 10; y < 22; y++ {
		for x := 10; x < 22; x++ {
			m.Set(x, y, 1)
		}
	}
	full := s.Aerial(m, s.Focus, true, nil)
	s.KOpt = 2
	trunc := s.Aerial(m, s.Focus, true, nil)
	// Truncation must change the image (fewer kernels)…
	if full.SqDiff(trunc) == 0 {
		t.Fatal("KOpt truncation had no effect")
	}
	// …but evaluation (optimizing=false) must ignore KOpt.
	evalImg := s.Aerial(m, s.Focus, false, nil)
	if full.SqDiff(evalImg) != 0 {
		t.Fatal("evaluation path affected by KOpt")
	}
}

func BenchmarkLossGrad64(b *testing.B) {
	s := testSim(b, 64)
	s.KOpt = 4
	mask := grid.NewReal(64, 64)
	target := grid.NewReal(64, 64)
	for y := 24; y < 40; y++ {
		for x := 24; x < 40; x++ {
			target.Set(x, y, 1)
			mask.Set(x, y, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LossGrad(mask, target, 1, 1)
	}
}
