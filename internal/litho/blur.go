package litho

import (
	"math"

	"cfaopc/internal/fft"
	"cfaopc/internal/grid"
)

// BlurMask convolves a mask with an isotropic Gaussian of the given sigma
// (in pixels), modeling the short-range e-beam write blur the paper cites
// as a 20–40 nm effect that makes densely fractured rectangular shots
// error-prone. Applying it to a fractured mask before simulation shows how
// robust a shot decomposition is to the writer's point-spread function.
//
// The convolution is evaluated in the frequency domain with the exact
// Gaussian transfer function exp(-2π²σ²f²), so no kernel truncation is
// involved; output values are clamped to [0, 1].
func BlurMask(m *grid.Real, sigmaPx float64) *grid.Real {
	if sigmaPx <= 0 {
		return m.Clone()
	}
	n := m.W
	c := grid.FromReal(m)
	fft.Forward2D(c)
	for ky := 0; ky < m.H; ky++ {
		fy := float64(ky)
		if ky > m.H/2 {
			fy = float64(ky - m.H)
		}
		fy /= float64(m.H)
		for kx := 0; kx < n; kx++ {
			fx := float64(kx)
			if kx > n/2 {
				fx = float64(kx - n)
			}
			fx /= float64(n)
			g := math.Exp(-2 * math.Pi * math.Pi * sigmaPx * sigmaPx * (fx*fx + fy*fy))
			c.Data[ky*n+kx] *= complex(g, 0)
		}
	}
	fft.Inverse2D(c)
	out := grid.NewReal(m.W, m.H)
	for i, v := range c.Data {
		x := real(v)
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		out.Data[i] = x
	}
	return out
}
