package litho

import (
	"testing"

	"cfaopc/internal/grid"
	"cfaopc/internal/optics"
)

func TestMeasureCD(t *testing.T) {
	z := grid.NewReal(16, 4)
	for x := 3; x < 9; x++ {
		z.Set(x, 2, 1)
	}
	z.Set(11, 2, 1) // a detached 1-px blip
	g := Gauge{X1: 0, X2: 15, Y: 2}
	if cd := MeasureCD(z, g); cd != 6 {
		t.Fatalf("CD = %v, want 6 (longest run)", cd)
	}
	if cd := MeasureCD(z, Gauge{X1: 0, X2: 15, Y: 0}); cd != 0 {
		t.Fatalf("empty row CD = %v", cd)
	}
	if cd := MeasureCD(z, Gauge{X1: 0, X2: 15, Y: 99}); cd != 0 {
		t.Fatalf("out-of-range gauge CD = %v", cd)
	}
}

func TestProcessWindowBasics(t *testing.T) {
	cfg := optics.Default()
	cfg.TileNM = 256
	cfg.NumKernels = 6
	const n = 32
	mask := grid.NewReal(n, n)
	for y := 6; y < 26; y++ {
		for x := 12; x < 20; x++ { // 64 nm bar
			mask.Set(x, y, 1)
		}
	}
	pw := PWConfig{
		DefocusNM: []float64{0, 20, 40, 60, 80},
		Doses:     []float64{0.94, 0.97, 1.0, 1.03, 1.06},
		Gauge:     Gauge{X1: 0, X2: n - 1, Y: 16},
	}
	pts, err := ProcessWindow(cfg, n, mask, pw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 25 {
		t.Fatalf("points = %d, want 25", len(pts))
	}
	// The nominal point must be in spec by construction.
	foundNominal := false
	for _, p := range pts {
		if p.DefocusNM == 0 && p.Dose == 1.0 {
			foundNominal = true
			if !p.InSpec {
				t.Fatal("nominal condition out of spec")
			}
			if p.CDnm <= 0 {
				t.Fatal("nominal CD zero")
			}
		}
	}
	if !foundNominal {
		t.Fatal("nominal point missing")
	}
	// CD must not grow with defocus at fixed dose (contrast loss shrinks
	// the printed line for a bright-field bar) — allow equality.
	cdAt := func(z float64) float64 {
		for _, p := range pts {
			if p.DefocusNM == z && p.Dose == 1.0 {
				return p.CDnm
			}
		}
		t.Fatalf("missing point at defocus %v", z)
		return 0
	}
	if cdAt(80) > cdAt(0)+1e-9 {
		t.Fatalf("CD grew with defocus: %v → %v", cdAt(0), cdAt(80))
	}
}

func TestProcessWindowErrors(t *testing.T) {
	cfg := optics.Default()
	cfg.TileNM = 256
	cfg.NumKernels = 4
	mask := grid.NewReal(32, 32) // empty: gauge feature never prints
	_, err := ProcessWindow(cfg, 32, mask, PWConfig{
		DefocusNM: []float64{0},
		Doses:     []float64{1},
		Gauge:     Gauge{X1: 0, X2: 31, Y: 16},
	})
	if err == nil {
		t.Fatal("empty mask accepted")
	}
	if _, err := ProcessWindow(cfg, 32, mask, PWConfig{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestDepthOfFocus(t *testing.T) {
	mk := func(z float64, inSpec bool) PWPoint {
		return PWPoint{DefocusNM: z, Dose: 1, InSpec: inSpec, CDnm: 50}
	}
	// In spec at 0..40, out at 60, in again at 80: DOF = 40 (longest run).
	pts := []PWPoint{mk(0, true), mk(20, true), mk(40, true), mk(60, false), mk(80, true)}
	if dof := DepthOfFocus(pts, 1.0); dof != 40 {
		t.Fatalf("DOF = %v, want 40", dof)
	}
	// Latitude requirement: at z=20 only half the doses pass.
	pts = []PWPoint{
		mk(0, true), mk(0, true),
		mk(20, true), mk(20, false),
		mk(40, true), mk(40, true),
	}
	if dof := DepthOfFocus(pts, 1.0); dof != 0 {
		t.Fatalf("strict-latitude DOF = %v, want 0", dof)
	}
	if dof := DepthOfFocus(pts, 0.5); dof != 40 {
		t.Fatalf("half-latitude DOF = %v, want 40", dof)
	}
	if dof := DepthOfFocus(nil, 0.5); dof != 0 {
		t.Fatalf("empty DOF = %v", dof)
	}
}
