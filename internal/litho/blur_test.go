package litho

import (
	"math"
	"testing"

	"cfaopc/internal/grid"
)

func TestBlurMaskZeroSigmaIsIdentity(t *testing.T) {
	m := grid.NewReal(16, 16)
	m.Set(8, 8, 1)
	b := BlurMask(m, 0)
	if b.SqDiff(m) != 0 {
		t.Fatal("sigma=0 blur changed the mask")
	}
	// And must be a copy, not an alias.
	b.Set(0, 0, 1)
	if m.At(0, 0) != 0 {
		t.Fatal("BlurMask returned an alias")
	}
}

func TestBlurMaskPreservesMass(t *testing.T) {
	m := grid.NewReal(32, 32)
	for y := 12; y < 20; y++ {
		for x := 12; x < 20; x++ {
			m.Set(x, y, 1)
		}
	}
	b := BlurMask(m, 2)
	// A Gaussian preserves total intensity (DC gain 1); clamping removes a
	// negligible amount for well-separated features.
	if math.Abs(b.Sum()-m.Sum()) > 0.01*m.Sum() {
		t.Fatalf("mass changed: %v → %v", m.Sum(), b.Sum())
	}
	// Peak must drop, tails must rise.
	if b.At(15, 15) >= 1 {
		t.Fatal("blur did not reduce the peak")
	}
	if b.At(10, 15) <= 0 {
		t.Fatal("blur did not spread into the tail")
	}
}

func TestBlurMaskRangeClamped(t *testing.T) {
	m := grid.NewReal(16, 16)
	m.Fill(1)
	b := BlurMask(m, 3)
	for i, v := range b.Data {
		if v < 0 || v > 1 {
			t.Fatalf("blurred value out of range at %d: %v", i, v)
		}
		// Blurring a uniform field is the identity.
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("uniform field changed at %d: %v", i, v)
		}
	}
}

func TestBlurDegradesFracturedMaskPrint(t *testing.T) {
	// The paper's motivation: write blur hurts dense rectangular shot
	// decompositions. A blurred mask prints differently from a sharp one.
	s := testSim(t, 32)
	m := grid.NewReal(32, 32)
	for y := 10; y < 22; y++ {
		for x := 13; x < 19; x++ {
			m.Set(x, y, 1)
		}
	}
	sharp := s.Aerial(m, s.Focus, false, nil)
	blurred := s.Aerial(BlurMask(m, 3), s.Focus, false, nil) // 24 nm blur
	if sharp.SqDiff(blurred) < 1e-6 {
		t.Fatal("strong write blur had no effect on the aerial image")
	}
}
