package litho

import (
	"testing"

	"cfaopc/internal/grid"
)

func TestVTRZeroSlopeMatchesConstantThreshold(t *testing.T) {
	s := testSim(t, 32)
	m := grid.NewReal(32, 32)
	for y := 10; y < 22; y++ {
		for x := 13; x < 19; x++ {
			m.Set(x, y, 1)
		}
	}
	i := s.Aerial(m, s.Focus, false, nil)
	vtr := VTRModel{Base: Threshold, Slope: 0, WindowPx: 3}
	a := vtr.Apply(i, 1.0)
	b := ResistBinary(i, 1.0)
	if a.SqDiff(b) != 0 {
		t.Fatal("zero-slope VTR differs from constant threshold")
	}
}

func TestVTRShrinksLowContrastPrints(t *testing.T) {
	// In low-contrast regions the local peak exceeds the point intensity,
	// raising the threshold — the printed region can only shrink relative
	// to the constant-threshold model.
	s := testSim(t, 32)
	m := grid.NewReal(32, 32)
	for y := 8; y < 24; y++ {
		for x := 12; x < 20; x++ {
			m.Set(x, y, 1)
		}
	}
	i := s.Aerial(m, s.Defocus, false, nil)
	vtr := DefaultVTR()
	zv := vtr.Apply(i, 1.0)
	zc := ResistBinary(i, 1.0)
	for idx := range zv.Data {
		if zv.Data[idx] == 1 && zc.Data[idx] == 0 {
			t.Fatal("VTR printed where constant threshold did not")
		}
	}
	if zv.Sum() > zc.Sum() {
		t.Fatal("VTR print larger than constant-threshold print")
	}
}

func TestLocalMax(t *testing.T) {
	g := grid.NewReal(5, 5)
	g.Set(2, 2, 9)
	g.Set(0, 0, 4)
	lm := localMax(g, 1)
	if lm.At(1, 1) != 9 || lm.At(3, 3) != 9 || lm.At(2, 2) != 9 {
		t.Fatalf("3×3 neighbourhood max wrong: %v", lm.Data)
	}
	if lm.At(4, 4) != 0 {
		t.Fatalf("far cell saw the peak: %v", lm.At(4, 4))
	}
	if lm.At(0, 1) != 4 {
		t.Fatalf("corner value not propagated: %v", lm.At(0, 1))
	}
	// r=0 is the identity.
	id := localMax(g, 0)
	if id.SqDiff(g) != 0 {
		t.Fatal("r=0 not identity")
	}
}
