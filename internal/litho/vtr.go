package litho

import (
	"cfaopc/internal/grid"
)

// VTRModel is a variable-threshold resist: instead of the constant
// threshold of Equation (2), the switching threshold at each point depends
// on the local peak intensity — the classical VT/VTR calibration family
// used when a constant threshold mispredicts dense-vs-isolated biases.
//
//	th(x) = Base + Slope · (Ipeak_local(x) − I(x))
//
// where Ipeak_local is the maximum aerial intensity within WindowPx. With
// Slope = 0 this reduces exactly to the constant-threshold model.
type VTRModel struct {
	Base     float64 // constant part of the threshold (use litho.Threshold)
	Slope    float64 // sensitivity to the local contrast (typ. 0.02–0.1)
	WindowPx int     // half-width of the local peak window (typ. 2–4)
}

// DefaultVTR returns a mildly contrast-sensitive model.
func DefaultVTR() VTRModel {
	return VTRModel{Base: Threshold, Slope: 0.05, WindowPx: 3}
}

// Apply maps an aerial image to a binary printed image under the model.
func (m VTRModel) Apply(intensity *grid.Real, dose float64) *grid.Real {
	w, h := intensity.W, intensity.H
	d2 := dose * dose
	peak := localMax(intensity, m.WindowPx)
	z := grid.NewReal(w, h)
	for i, v := range intensity.Data {
		iv := d2 * v
		th := m.Base + m.Slope*(d2*peak.Data[i]-iv)
		if iv > th {
			z.Data[i] = 1
		}
	}
	return z
}

// localMax computes a separable moving-maximum filter with half-width r
// (the van Herk/Gil–Werman two-pass trick is unnecessary at these sizes;
// a direct separable sweep is O(n·r) and r ≤ 4).
func localMax(g *grid.Real, r int) *grid.Real {
	if r <= 0 {
		return g.Clone()
	}
	w, h := g.W, g.H
	tmp := grid.NewReal(w, h)
	for y := 0; y < h; y++ {
		row := g.Data[y*w : (y+1)*w]
		out := tmp.Data[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			best := row[x]
			for d := -r; d <= r; d++ {
				if x+d < 0 || x+d >= w {
					continue
				}
				if row[x+d] > best {
					best = row[x+d]
				}
			}
			out[x] = best
		}
	}
	outG := grid.NewReal(w, h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			best := tmp.Data[y*w+x]
			for d := -r; d <= r; d++ {
				if y+d < 0 || y+d >= h {
					continue
				}
				if v := tmp.Data[(y+d)*w+x]; v > best {
					best = v
				}
			}
			outG.Data[y*w+x] = best
		}
	}
	return outG
}
