package litho

import (
	"math"
	"testing"

	"cfaopc/internal/grid"
)

func TestResistDoseMonotonicity(t *testing.T) {
	// Print area must be non-decreasing in dose for both resist models.
	i := grid.NewReal(16, 16)
	for idx := range i.Data {
		i.Data[idx] = float64(idx) / 255.0
	}
	prevBin, prevSig := -1.0, -1.0
	for _, dose := range []float64{0.9, 0.95, 1.0, 1.05, 1.1} {
		b := ResistBinary(i, dose).Sum()
		s := ResistSigmoid(i, dose).Sum()
		if b < prevBin {
			t.Fatalf("binary print area decreased with dose at %v", dose)
		}
		if s < prevSig {
			t.Fatalf("sigmoid print mass decreased with dose at %v", dose)
		}
		prevBin, prevSig = b, s
	}
}

func TestResistSigmoidApproachesBinary(t *testing.T) {
	// Far from threshold, the sigmoid resist agrees with the hard one.
	i := grid.NewReal(2, 1)
	i.Set(0, 0, Threshold*3)
	i.Set(1, 0, Threshold/3)
	zs := ResistSigmoid(i, 1)
	zb := ResistBinary(i, 1)
	if math.Abs(zs.At(0, 0)-zb.At(0, 0)) > 0.01 || math.Abs(zs.At(1, 0)-zb.At(1, 0)) > 0.01 {
		t.Fatalf("sigmoid %v vs binary %v", zs.Data, zb.Data)
	}
}

func TestSimulateProducesAllCorners(t *testing.T) {
	s := testSim(t, 32)
	m := grid.NewReal(32, 32)
	for y := 8; y < 24; y++ {
		for x := 13; x < 19; x++ {
			m.Set(x, y, 1)
		}
	}
	r := s.Simulate(m)
	if r.INom == nil || r.IDef == nil || r.ZNom == nil || r.ZMax == nil || r.ZMin == nil {
		t.Fatal("corner images missing")
	}
	// The defocused aerial image differs from the nominal one.
	if r.INom.SqDiff(r.IDef) == 0 {
		t.Fatal("defocus image identical to focus image")
	}
	// The outer corner can only print at least as much as the inner one
	// (a ±2% dose swing may move the contour by less than one coarse
	// pixel, so an empty band is legitimate at 8 nm/px).
	if r.ZMax.Sum() < r.ZMin.Sum() {
		t.Fatal("max-dose print smaller than min-dose print")
	}
}
