package litho

import (
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
)

// Parallel kernel execution must be bit-identical to the serial path: the
// reduction order is fixed regardless of worker count.
func TestParallelAerialBitIdentical(t *testing.T) {
	s := testSim(t, 32)
	rng := rand.New(rand.NewSource(77))
	m := grid.NewReal(32, 32)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	s.Workers = 1
	serial := s.Aerial(m, s.Focus, false, nil)
	for _, w := range []int{2, 4, -1} {
		s.Workers = w
		par := s.Aerial(m, s.Focus, false, nil)
		if serial.SqDiff(par) != 0 {
			t.Fatalf("workers=%d: aerial differs from serial", w)
		}
	}
}

func TestParallelLossGradBitIdentical(t *testing.T) {
	s := testSim(t, 32)
	target := grid.NewReal(32, 32)
	mask := grid.NewReal(32, 32)
	for y := 10; y < 22; y++ {
		for x := 13; x < 19; x++ {
			target.Set(x, y, 1)
			mask.Set(x, y, 1)
		}
	}
	s.Workers = 1
	serial := s.LossGrad(mask, target, 1, 1)
	s.Workers = 4
	par := s.LossGrad(mask, target, 1, 1)
	if serial.Loss != par.Loss {
		t.Fatalf("loss differs: %v vs %v", serial.Loss, par.Loss)
	}
	if serial.GradM.SqDiff(par.GradM) != 0 {
		t.Fatal("gradient differs between worker counts")
	}
}

func TestParallelFieldsSaved(t *testing.T) {
	s := testSim(t, 32)
	s.Workers = 3
	m := grid.NewReal(32, 32)
	m.Set(16, 16, 1)
	kc := len(s.Focus.Kernels)
	fields := make([]*grid.Complex, kc)
	s.Aerial(m, s.Focus, false, fields)
	for i, f := range fields {
		if f == nil {
			t.Fatalf("field %d not saved under parallel execution", i)
		}
	}
}
