package litho

import (
	"fmt"
	"math"
	"sort"

	"cfaopc/internal/grid"
	"cfaopc/internal/optics"
)

// Gauge is a critical-dimension measurement site: the printed run length
// along a horizontal cut at row Y between columns X1 and X2 (pixels).
type Gauge struct {
	X1, X2, Y int
}

// MeasureCD returns the printed critical dimension (in pixels) along the
// gauge: the longest contiguous printed run on the cut. Zero means the
// feature failed to print.
func MeasureCD(z *grid.Real, g Gauge) float64 {
	if g.Y < 0 || g.Y >= z.H {
		return 0
	}
	best, cur := 0, 0
	for x := g.X1; x <= g.X2 && x < z.W; x++ {
		if x < 0 {
			continue
		}
		if z.Data[g.Y*z.W+x] > 0.5 {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return float64(best)
}

// PWPoint is one condition of a process-window matrix.
type PWPoint struct {
	DefocusNM float64
	Dose      float64
	CDnm      float64 // measured CD (0 = feature lost)
	InSpec    bool    // CD within ±Tolerance of the nominal CD
}

// PWConfig controls the dose–defocus sweep.
type PWConfig struct {
	DefocusNM []float64 // focus conditions (0 = nominal)
	Doses     []float64 // relative dose values around 1.0
	Gauge     Gauge     // CD measurement site
	Tolerance float64   // allowed relative CD deviation (default 0.10)
}

// ProcessWindow exposes mask under every dose–defocus combination and
// measures the gauge CD at each. The nominal CD is taken at (focus, dose
// 1.0); a point is in spec when its CD deviates by at most Tolerance from
// nominal. Kernel sets per focus condition are computed (and cached)
// through the optics package.
func ProcessWindow(cfg optics.Config, n int, mask *grid.Real, pw PWConfig) ([]PWPoint, error) {
	if len(pw.DefocusNM) == 0 || len(pw.Doses) == 0 {
		return nil, fmt.Errorf("litho: empty process-window sweep")
	}
	tol := pw.Tolerance
	if tol <= 0 {
		tol = 0.10
	}
	dx := cfg.TileNM / float64(n)

	// Nominal CD at perfect focus and unit dose.
	nomCfg := cfg
	nomCfg.DefocusNM = 0
	nomSet, err := optics.CachedKernels(nomCfg, false)
	if err != nil {
		return nil, err
	}
	sim := &Simulator{Cfg: nomCfg, N: n, DX: dx, Focus: nomSet, Defocus: nomSet}
	iNom := sim.Aerial(mask, nomSet, false, nil)
	nomCD := MeasureCD(ResistBinary(iNom, 1.0), pw.Gauge) * dx
	if nomCD == 0 {
		return nil, fmt.Errorf("litho: gauge feature does not print at nominal conditions")
	}

	var out []PWPoint
	for _, z := range pw.DefocusNM {
		zCfg := cfg
		zCfg.DefocusNM = z
		set, err := optics.CachedKernels(zCfg, z != 0)
		if err != nil {
			return nil, err
		}
		img := sim.Aerial(mask, set, false, nil)
		for _, dose := range pw.Doses {
			cd := MeasureCD(ResistBinary(img, dose), pw.Gauge) * dx
			out = append(out, PWPoint{
				DefocusNM: z,
				Dose:      dose,
				CDnm:      cd,
				InSpec:    cd > 0 && math.Abs(cd-nomCD) <= tol*nomCD,
			})
		}
	}
	return out, nil
}

// DepthOfFocus returns the largest contiguous defocus range (in nm,
// symmetric listing not required) over which at least minDoseLatitude of
// the swept dose values stay in spec — the scalar the circular-writer
// paper [7] optimizes ("best depth of focus … with less shot count").
func DepthOfFocus(points []PWPoint, minDoseLatitude float64) float64 {
	byFocus := map[float64][2]int{} // defocus → (inSpec, total)
	for _, p := range points {
		c := byFocus[p.DefocusNM]
		if p.InSpec {
			c[0]++
		}
		c[1]++
		byFocus[p.DefocusNM] = c
	}
	var focuses []float64
	for z := range byFocus {
		focuses = append(focuses, z)
	}
	sort.Float64s(focuses)
	bestLen := 0.0
	runStart := math.NaN()
	for _, z := range focuses {
		c := byFocus[z]
		ok := c[1] > 0 && float64(c[0])/float64(c[1]) >= minDoseLatitude
		if !ok {
			runStart = math.NaN()
			continue
		}
		if math.IsNaN(runStart) {
			runStart = z
		}
		if l := z - runStart; l > bestLen {
			bestLen = l
		}
	}
	return bestLen
}
