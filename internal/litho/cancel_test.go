package litho

import (
	"context"
	"testing"

	"cfaopc/internal/grid"
	"cfaopc/internal/optics"
)

// TestCooperativeCancel pins the Ctx contract: with a canceled context a
// forward/adjoint pass returns (incomplete) without panicking, and with
// Ctx nil or live the results are exactly the uncancelled ones.
func TestCooperativeCancel(t *testing.T) {
	cfg := optics.Default()
	cfg.TileNM = 512
	sim, err := New(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	target := grid.NewReal(128, 128)
	mask := grid.NewReal(128, 128)
	for y := 50; y < 78; y++ {
		for x := 50; x < 78; x++ {
			mask.Set(x, y, 1)
			target.Set(x, y, 1)
		}
	}

	ref := sim.LossGrad(mask, target, 1, 1)

	// A live context must not perturb anything.
	sim.Ctx = context.Background()
	live := sim.LossGrad(mask, target, 1, 1)
	if live.Loss != ref.Loss || live.GradM.SqDiff(ref.GradM) != 0 {
		t.Fatal("live context changed the result")
	}

	// A canceled context abandons the pass: no panic, no NaNs required
	// of the caller — just an output it must discard after checking
	// Ctx.Err(), which is what flow.attemptTile does.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim.Ctx = ctx
	got := sim.LossGrad(mask, target, 1, 1)
	if got == nil || got.GradM == nil {
		t.Fatal("canceled pass returned nil")
	}
	if sim.Ctx.Err() == nil {
		t.Fatal("context error lost")
	}
	// The canceled pass ran zero kernels, so its aerial intensity is
	// all-zero and the "printed" sigmoid sits at σ(-θ·I_th) everywhere —
	// the loss must differ from the completed pass (sanity that the
	// early-out actually fired).
	if got.Loss == ref.Loss {
		t.Fatal("canceled pass produced the completed result")
	}

	// Clearing Ctx restores normal operation on the same simulator.
	sim.Ctx = nil
	again := sim.LossGrad(mask, target, 1, 1)
	if again.Loss != ref.Loss || again.GradM.SqDiff(ref.GradM) != 0 {
		t.Fatal("simulator did not recover after cancellation")
	}
}
