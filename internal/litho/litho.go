// Package litho implements the lithography forward model of Section 2.1 of
// the paper — Hopkins diffraction through a SOCS kernel set followed by a
// constant-threshold resist — together with the adjoint (gradient) path
// that every ILT engine in this repository differentiates through.
//
// The aerial image of a mask M is I = Σ_k λ_k |h_k ⊗ M|², evaluated in the
// frequency domain: each kernel lives as compact spectrum coefficients from
// the optics package, so one forward pass costs one FFT of the mask plus
// one inverse FFT per kernel. Process corners follow the ICCAD-2013
// convention: nominal = in-focus kernels at unit dose, the max/min corners
// share one defocused aerial image scaled by dose² (mask-side dose of
// 1.02/0.98).
package litho

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"cfaopc/internal/fft"
	"cfaopc/internal/grid"
	"cfaopc/internal/optics"
)

// Process constants shared by the whole reproduction.
const (
	// Threshold is the resist intensity threshold (ICCAD-2013 value).
	Threshold = 0.225
	// DoseMax and DoseMin are the mask-side dose corners.
	DoseMax = 1.02
	DoseMin = 0.98
	// ResistSteepness is the sigmoid slope θ_z of the differentiable
	// resist model used during optimization.
	ResistSteepness = 50.0
)

// Simulator binds a kernel pair (focus + defocus) to a pixel grid.
type Simulator struct {
	Cfg     optics.Config // the imaging condition the kernels derive from
	N       int           // grid pixels per side
	DX      float64       // nm per pixel
	Focus   *optics.KernelSet
	Defocus *optics.KernelSet
	// KOpt is the number of kernels used inside optimization loops; the
	// full set is always used by Simulate for evaluation. Zero means all.
	KOpt int
	// Workers bounds the goroutines used for per-kernel convolutions.
	// Zero or one runs serially; negative uses GOMAXPROCS. Results are
	// bit-identical regardless of parallelism: per-kernel fields are
	// computed into private buffers and reduced in kernel order.
	Workers int
	// Ctx, when non-nil, is checked cooperatively between per-kernel
	// convolution batches. Once it is canceled, Aerial and
	// AerialBackward stop early and return incomplete images; any
	// caller that sets Ctx must check Ctx.Err() after a pass and
	// discard the output when it is non-nil. This is how the tiled
	// flow makes SIGINT and per-tile deadlines interrupt a simulation
	// within one kernel convolution instead of one full tile.
	Ctx context.Context

	// scratch recycles N×N complex grids across forward and adjoint
	// passes. Each pass needs one spectrum plus one buffer per worker
	// (~16·N² bytes each); without reuse, concurrent tile-level flows
	// allocate that per kernel per iteration and thrash the GC.
	scratch sync.Pool
}

// getComplex returns a recycled (or fresh) N×N complex scratch grid. The
// contents are stale; callers must overwrite or zero every element.
func (s *Simulator) getComplex() *grid.Complex {
	if c, _ := s.scratch.Get().(*grid.Complex); c != nil {
		return c
	}
	return grid.NewComplex(s.N, s.N)
}

// putComplex returns a scratch grid to the pool.
func (s *Simulator) putComplex(c *grid.Complex) {
	if c != nil {
		s.scratch.Put(c)
	}
}

// canceled reports whether the simulator's context (if any) is done.
// context.Context errors are sticky, so once this returns true every
// later check in the same pass returns true as well.
func (s *Simulator) canceled() bool {
	return s.Ctx != nil && s.Ctx.Err() != nil
}

// workerCount resolves the effective parallelism.
func (s *Simulator) workerCount(jobs int) int {
	w := s.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// New computes (or fetches cached) kernel sets for cfg and binds them to
// an n×n pixel grid.
func New(cfg optics.Config, n int) (*Simulator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("litho: invalid grid size %d", n)
	}
	focus, err := optics.CachedKernels(cfg, false)
	if err != nil {
		return nil, err
	}
	defocus, err := optics.CachedKernels(cfg, true)
	if err != nil {
		return nil, err
	}
	if 2*focus.Kernels[0].Half+1 > n {
		return nil, fmt.Errorf("litho: grid %d too small for kernel support %d", n, 2*focus.Kernels[0].Half+1)
	}
	return &Simulator{Cfg: cfg, N: n, DX: cfg.TileNM / float64(n), Focus: focus, Defocus: defocus}, nil
}

func (s *Simulator) kcount(set *optics.KernelSet, optimizing bool) int {
	k := len(set.Kernels)
	if optimizing && s.KOpt > 0 && s.KOpt < k {
		k = s.KOpt
	}
	return k
}

// applyKernel fills dst with Ĥ_k ⊙ maskF on the kernel's support bins
// (zero elsewhere) and inverse-transforms it into the spatial field.
func (s *Simulator) applyKernel(dst *grid.Complex, k *optics.Kernel, maskF *grid.Complex) {
	n := s.N
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	side := 2*k.Half + 1
	for by := -k.Half; by <= k.Half; by++ {
		iy := (by + n) % n
		row := (by + k.Half) * side
		for bx := -k.Half; bx <= k.Half; bx++ {
			c := k.Coef[row+bx+k.Half]
			if c == 0 {
				continue
			}
			ix := (bx + n) % n
			dst.Data[iy*n+ix] = c * maskF.Data[iy*n+ix]
		}
	}
	fft.Inverse2D(dst)
}

// Aerial computes the aerial intensity image of mask under the given
// kernel set. When fields is non-nil it must have length ≥ the number of
// kernels used; the per-kernel coherent fields are stored there for a
// later adjoint pass. optimizing selects the truncated kernel count.
func (s *Simulator) Aerial(mask *grid.Real, set *optics.KernelSet, optimizing bool, fields []*grid.Complex) *grid.Real {
	if mask.W != s.N || mask.H != s.N {
		panic(fmt.Sprintf("litho: mask %dx%d does not match grid %d", mask.W, mask.H, s.N))
	}
	maskF := s.getComplex()
	for i, v := range mask.Data {
		maskF.Data[i] = complex(v, 0)
	}
	fft.Forward2D(maskF)
	intensity := grid.NewReal(s.N, s.N)
	kc := s.kcount(set, optimizing)
	workers := s.workerCount(kc)

	// Per-kernel fields are computed into private buffers (batched to
	// bound memory) and reduced serially in kernel order so the result is
	// identical at any worker count. Fields handed back to the caller are
	// freshly allocated; internal buffers come from the scratch pool.
	bufs := make([]*grid.Complex, workers)
	for start := 0; start < kc; start += workers {
		if s.canceled() {
			break // abandoned pass: the intensity image stays incomplete
		}
		end := start + workers
		if end > kc {
			end = kc
		}
		var wg sync.WaitGroup
		for ki := start; ki < end; ki++ {
			var dst *grid.Complex
			if fields != nil {
				dst = grid.NewComplex(s.N, s.N)
				fields[ki] = dst
			} else {
				if bufs[ki-start] == nil {
					bufs[ki-start] = s.getComplex()
				}
				dst = bufs[ki-start]
			}
			if workers == 1 {
				s.applyKernel(dst, &set.Kernels[ki], maskF)
				continue
			}
			wg.Add(1)
			go func(ki int, dst *grid.Complex) {
				defer wg.Done()
				s.applyKernel(dst, &set.Kernels[ki], maskF)
			}(ki, dst)
		}
		wg.Wait()
		for ki := start; ki < end; ki++ {
			dst := bufs[ki-start]
			if fields != nil {
				dst = fields[ki]
			}
			w := set.Kernels[ki].Weight
			for i, v := range dst.Data {
				re, im := real(v), imag(v)
				intensity.Data[i] += w * (re*re + im*im)
			}
		}
	}
	s.putComplex(maskF)
	for _, b := range bufs {
		s.putComplex(b)
	}
	return intensity
}

// AerialBackward propagates a gradient dL/dI through the aerial image back
// to the mask: dL/dM = Σ_k λ_k · 2·Re[ IFFT( conj(Ĥ_k) ⊙ FFT(dLdI ⊙
// conj(c_k)) ) ], where c_k are the coherent fields saved by Aerial.
func (s *Simulator) AerialBackward(dLdI *grid.Real, set *optics.KernelSet, optimizing bool, fields []*grid.Complex) *grid.Real {
	n := s.N
	kc := s.kcount(set, optimizing)
	workers := s.workerCount(kc)
	accF := s.getComplex()
	for i := range accF.Data {
		accF.Data[i] = 0
	}

	// dL/dM_j = 2λ·Re[Aᵀ(g ⊙ conj(c_k))]_j = 2λ·Re[Aᴴ(g ⊙ c_k)]_j for
	// real g, where Aᴴ = F⁻¹·conj(Ĥ)·F is the adjoint of the kernel
	// convolution — hence the *unconjugated* field below and the
	// conjugated kernel in the support accumulation. The per-kernel
	// forward FFTs run in parallel batches; the support-bin accumulation
	// stays serial and ordered for determinism.
	bufs := make([]*grid.Complex, workers)
	for i := range bufs {
		bufs[i] = s.getComplex()
	}
	for start := 0; start < kc; start += workers {
		if s.canceled() {
			break // abandoned pass: the gradient stays incomplete
		}
		end := start + workers
		if end > kc {
			end = kc
		}
		var wg sync.WaitGroup
		for ki := start; ki < end; ki++ {
			tmp := bufs[ki-start]
			ck := fields[ki]
			fill := func(tmp, ck *grid.Complex) {
				for i := range tmp.Data {
					tmp.Data[i] = complex(dLdI.Data[i], 0) * ck.Data[i]
				}
				fft.Forward2D(tmp)
			}
			if workers == 1 {
				fill(tmp, ck)
				continue
			}
			wg.Add(1)
			go func(tmp, ck *grid.Complex) {
				defer wg.Done()
				fill(tmp, ck)
			}(tmp, ck)
		}
		wg.Wait()
		for ki := start; ki < end; ki++ {
			k := &set.Kernels[ki]
			tmp := bufs[ki-start]
			side := 2*k.Half + 1
			w := complex(k.Weight, 0)
			for by := -k.Half; by <= k.Half; by++ {
				iy := (by + n) % n
				row := (by + k.Half) * side
				for bx := -k.Half; bx <= k.Half; bx++ {
					c := k.Coef[row+bx+k.Half]
					if c == 0 {
						continue
					}
					ix := (bx + n) % n
					idx := iy*n + ix
					accF.Data[idx] += w * complex(real(c), -imag(c)) * tmp.Data[idx]
				}
			}
		}
	}
	fft.Inverse2D(accF)
	gradM := grid.NewReal(n, n)
	for i, v := range accF.Data {
		gradM.Data[i] = 2 * real(v)
	}
	s.putComplex(accF)
	for _, b := range bufs {
		s.putComplex(b)
	}
	return gradM
}

// Sigmoid is the logistic function used by both resist and mask
// binarization models.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		e := math.Exp(-x)
		return 1 / (1 + e)
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// ResistSigmoid maps an aerial image to a smooth printed image
// σ(θ_z·(dose²·I − I_th)).
func ResistSigmoid(intensity *grid.Real, dose float64) *grid.Real {
	z := grid.NewReal(intensity.W, intensity.H)
	d2 := dose * dose
	for i, v := range intensity.Data {
		z.Data[i] = Sigmoid(ResistSteepness * (d2*v - Threshold))
	}
	return z
}

// ResistBinary maps an aerial image to the hard-threshold printed image of
// Equation (2).
func ResistBinary(intensity *grid.Real, dose float64) *grid.Real {
	z := grid.NewReal(intensity.W, intensity.H)
	d2 := dose * dose
	for i, v := range intensity.Data {
		if d2*v > Threshold {
			z.Data[i] = 1
		}
	}
	return z
}

// Result holds the binary printed images at the three process corners.
type Result struct {
	INom, IDef       *grid.Real // aerial images (focus / defocus)
	ZNom, ZMax, ZMin *grid.Real // printed images: nominal, outer, inner corner
}

// Simulate runs the full-accuracy forward model (all kernels, hard resist)
// at the three process corners.
func (s *Simulator) Simulate(mask *grid.Real) *Result {
	iNom := s.Aerial(mask, s.Focus, false, nil)
	iDef := s.Aerial(mask, s.Defocus, false, nil)
	return &Result{
		INom: iNom,
		IDef: iDef,
		ZNom: ResistBinary(iNom, 1.0),
		ZMax: ResistBinary(iDef, DoseMax),
		ZMin: ResistBinary(iDef, DoseMin),
	}
}

// DiffResult carries the differentiable losses of Equation (6) and their
// gradient with respect to the (continuous) mask.
type DiffResult struct {
	L2    float64    // ‖Z_nom − T‖² with the sigmoid resist, in px²
	PVB   float64    // ‖Z_max − T‖² + ‖Z_min − T‖² surrogate, in px²
	Loss  float64    // wL2·L2 + wPVB·PVB
	GradM *grid.Real // d Loss / d mask
}

// LossGrad evaluates L = wL2·L2 + wPVB·PVB on the truncated kernel set and
// returns the exact gradient with respect to every mask pixel. This is the
// single entry point all pixel- and circle-level ILT engines differentiate
// through.
func (s *Simulator) LossGrad(mask, target *grid.Real, wL2, wPVB float64) *DiffResult {
	n := s.N
	res := &DiffResult{}

	// Nominal corner: focus kernels, unit dose.
	kf := s.kcount(s.Focus, true)
	fieldsF := make([]*grid.Complex, kf)
	iNom := s.Aerial(mask, s.Focus, true, fieldsF)
	zNom := ResistSigmoid(iNom, 1.0)
	dLdINom := grid.NewReal(n, n)
	for i := range zNom.Data {
		d := zNom.Data[i] - target.Data[i]
		res.L2 += d * d
		dLdINom.Data[i] = wL2 * 2 * d * ResistSteepness * zNom.Data[i] * (1 - zNom.Data[i])
	}
	grad := s.AerialBackward(dLdINom, s.Focus, true, fieldsF)

	// Defocus corner: one aerial image serves both dose corners.
	if wPVB != 0 {
		kd := s.kcount(s.Defocus, true)
		fieldsD := make([]*grid.Complex, kd)
		iDef := s.Aerial(mask, s.Defocus, true, fieldsD)
		zMax := ResistSigmoid(iDef, DoseMax)
		zMin := ResistSigmoid(iDef, DoseMin)
		dLdIDef := grid.NewReal(n, n)
		const dMax2 = DoseMax * DoseMax
		const dMin2 = DoseMin * DoseMin
		for i := range zMax.Data {
			dmax := zMax.Data[i] - target.Data[i]
			dmin := zMin.Data[i] - target.Data[i]
			res.PVB += dmax*dmax + dmin*dmin
			dLdIDef.Data[i] = wPVB * 2 * ResistSteepness *
				(dmax*zMax.Data[i]*(1-zMax.Data[i])*dMax2 +
					dmin*zMin.Data[i]*(1-zMin.Data[i])*dMin2)
		}
		gradDef := s.AerialBackward(dLdIDef, s.Defocus, true, fieldsD)
		grad.Add(gradDef)
	}

	res.Loss = wL2*res.L2 + wPVB*res.PVB
	res.GradM = grad
	return res
}
