package geom

import (
	"math"

	"cfaopc/internal/grid"
)

// PtF is a sub-pixel point in pixel coordinates.
type PtF struct{ X, Y float64 }

// Contour is an ordered polyline; Closed contours repeat no point but wrap
// implicitly from the last point to the first.
type Contour struct {
	Points []PtF
	Closed bool
}

// Contours extracts iso-level boundaries of a scalar field using marching
// squares with linear interpolation, returning one polyline per boundary
// loop. For binary masks (level 0.5) these are the sub-pixel feature
// outlines used for perimeter and contour-distance measurements.
func Contours(m *grid.Real, level float64) []Contour {
	w, h := m.W, m.H
	// Segment endpoints are stored on cell-edge keys so loops can be
	// chained exactly without float comparisons: an edge is identified by
	// (x, y, horizontal?) of its cell corner.
	type edge struct {
		x, y int
		horz bool
	}
	pos := map[edge]PtF{}
	adj := map[edge][]edge{}

	val := func(x, y int) float64 { return m.Data[y*w+x] }
	interp := func(a, b float64) float64 {
		if math.Abs(b-a) < 1e-12 {
			return 0.5
		}
		t := (level - a) / (b - a)
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return t
	}

	addSeg := func(e1, e2 edge, p1, p2 PtF) {
		pos[e1] = p1
		pos[e2] = p2
		adj[e1] = append(adj[e1], e2)
		adj[e2] = append(adj[e2], e1)
	}

	for y := 0; y+1 < h; y++ {
		for x := 0; x+1 < w; x++ {
			tl := val(x, y)
			tr := val(x+1, y)
			bl := val(x, y+1)
			br := val(x+1, y+1)
			idx := 0
			if tl > level {
				idx |= 1
			}
			if tr > level {
				idx |= 2
			}
			if br > level {
				idx |= 4
			}
			if bl > level {
				idx |= 8
			}
			if idx == 0 || idx == 15 {
				continue
			}
			// Edge crossing points (cell-local).
			top := edge{x, y, true}
			bottom := edge{x, y + 1, true}
			left := edge{x, y, false}
			right := edge{x + 1, y, false}
			topP := PtF{float64(x) + interp(tl, tr), float64(y)}
			bottomP := PtF{float64(x) + interp(bl, br), float64(y + 1)}
			leftP := PtF{float64(x), float64(y) + interp(tl, bl)}
			rightP := PtF{float64(x + 1), float64(y) + interp(tr, br)}

			switch idx {
			case 1, 14:
				addSeg(top, left, topP, leftP)
			case 2, 13:
				addSeg(top, right, topP, rightP)
			case 3, 12:
				addSeg(left, right, leftP, rightP)
			case 4, 11:
				addSeg(right, bottom, rightP, bottomP)
			case 6, 9:
				addSeg(top, bottom, topP, bottomP)
			case 7, 8:
				addSeg(left, bottom, leftP, bottomP)
			case 5: // saddle: tl+br set — resolve by center average
				if (tl+tr+bl+br)/4 > level {
					addSeg(top, right, topP, rightP)
					addSeg(left, bottom, leftP, bottomP)
				} else {
					addSeg(top, left, topP, leftP)
					addSeg(right, bottom, rightP, bottomP)
				}
			case 10: // saddle: tr+bl set
				if (tl+tr+bl+br)/4 > level {
					addSeg(top, left, topP, leftP)
					addSeg(right, bottom, rightP, bottomP)
				} else {
					addSeg(top, right, topP, rightP)
					addSeg(left, bottom, leftP, bottomP)
				}
			}
		}
	}

	// Chain segments into polylines.
	visited := map[edge]bool{}
	var out []Contour
	for start := range adj {
		if visited[start] {
			continue
		}
		chain := []edge{start}
		visited[start] = true
		cur := start
		for {
			var next *edge
			for _, n := range adj[cur] {
				if !visited[n] {
					nn := n
					next = &nn
					break
				}
			}
			if next == nil {
				break
			}
			visited[*next] = true
			chain = append(chain, *next)
			cur = *next
		}
		// Extend backwards from the start if it was mid-chain.
		cur = start
		for {
			var prev *edge
			for _, n := range adj[cur] {
				if !visited[n] {
					nn := n
					prev = &nn
					break
				}
			}
			if prev == nil {
				break
			}
			visited[*prev] = true
			chain = append([]edge{*prev}, chain...)
			cur = *prev
		}
		pts := make([]PtF, len(chain))
		for i, e := range chain {
			pts[i] = pos[e]
		}
		closed := false
		if len(chain) > 2 {
			last := chain[len(chain)-1]
			for _, n := range adj[last] {
				if n == chain[0] {
					closed = true
					break
				}
			}
		}
		out = append(out, Contour{Points: pts, Closed: closed})
	}
	return out
}

// Perimeter returns the polyline length of a contour (including the
// closing segment for closed contours).
func (c Contour) Perimeter() float64 {
	if len(c.Points) < 2 {
		return 0
	}
	p := 0.0
	for i := 1; i < len(c.Points); i++ {
		p += math.Hypot(c.Points[i].X-c.Points[i-1].X, c.Points[i].Y-c.Points[i-1].Y)
	}
	if c.Closed {
		n := len(c.Points)
		p += math.Hypot(c.Points[0].X-c.Points[n-1].X, c.Points[0].Y-c.Points[n-1].Y)
	}
	return p
}

// DistanceToContours returns the minimum Euclidean distance from p to any
// contour segment (+Inf when there are no contours).
func DistanceToContours(cs []Contour, p PtF) float64 {
	best := math.Inf(1)
	for _, c := range cs {
		n := len(c.Points)
		if n == 0 {
			continue
		}
		if n == 1 {
			d := math.Hypot(p.X-c.Points[0].X, p.Y-c.Points[0].Y)
			if d < best {
				best = d
			}
			continue
		}
		limit := n - 1
		if c.Closed {
			limit = n
		}
		for i := 0; i < limit; i++ {
			a := c.Points[i]
			b := c.Points[(i+1)%n]
			if d := pointSegDist(p, a, b); d < best {
				best = d
			}
		}
	}
	return best
}

func pointSegDist(p, a, b PtF) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	den := abx*abx + aby*aby
	t := 0.0
	if den > 1e-18 {
		t = (apx*abx + apy*aby) / den
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
	}
	dx := p.X - (a.X + t*abx)
	dy := p.Y - (a.Y + t*aby)
	return math.Hypot(dx, dy)
}

// TotalPerimeter sums the perimeter of all contours of a binary mask at
// the 0.5 level — a mask-complexity measure used alongside shot counts.
func TotalPerimeter(m *grid.Real) float64 {
	total := 0.0
	for _, c := range Contours(m, 0.5) {
		total += c.Perimeter()
	}
	return total
}
