// Package geom supplies the raster geometry algorithms the fracturing and
// rule-based packages are built on: connected-component labeling, binary
// morphology, Zhang–Suen skeletonization, exact Euclidean distance
// transforms, and minimum rectangle partition of rectilinear regions via
// concave-chord bipartite matching.
//
// All algorithms operate on binary masks represented as *grid.Real with
// values 0 and 1 (anything > 0.5 counts as foreground).
package geom

import (
	"cfaopc/internal/grid"
)

// Pt is an integer pixel coordinate.
type Pt struct{ X, Y int }

// fg reports whether (x, y) is a foreground pixel, treating out-of-bounds
// as background.
func fg(m *grid.Real, x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H && m.Data[y*m.W+x] > 0.5
}

// Labels holds the result of connected-component labeling: Label[i] is the
// 1-based component id of pixel i (0 for background) and N the number of
// components.
type Labels struct {
	W, H  int
	Label []int32
	N     int
}

// Components labels the foreground of m into connected regions. With
// eightConn true, diagonal neighbours connect (the convention CircleRule
// uses, matching skeleton 8-neighbourhoods); otherwise 4-connectivity.
func Components(m *grid.Real, eightConn bool) *Labels {
	l := &Labels{W: m.W, H: m.H, Label: make([]int32, m.W*m.H)}
	var stack []int
	neigh4 := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	neigh8 := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	neigh := neigh4
	if eightConn {
		neigh = neigh8
	}
	for start := range m.Data {
		if m.Data[start] <= 0.5 || l.Label[start] != 0 {
			continue
		}
		l.N++
		id := int32(l.N)
		stack = append(stack[:0], start)
		l.Label[start] = id
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cx, cy := cur%m.W, cur/m.W
			for _, d := range neigh {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || nx >= m.W || ny < 0 || ny >= m.H {
					continue
				}
				ni := ny*m.W + nx
				if m.Data[ni] > 0.5 && l.Label[ni] == 0 {
					l.Label[ni] = id
					stack = append(stack, ni)
				}
			}
		}
	}
	return l
}

// Region returns the binary mask of one labeled component (1-based id).
func (l *Labels) Region(id int) *grid.Real {
	r := grid.NewReal(l.W, l.H)
	want := int32(id)
	for i, v := range l.Label {
		if v == want {
			r.Data[i] = 1
		}
	}
	return r
}

// Area returns the pixel count of component id.
func (l *Labels) Area(id int) int {
	n := 0
	want := int32(id)
	for _, v := range l.Label {
		if v == want {
			n++
		}
	}
	return n
}

// DiskElement returns the offsets of a discrete disk of the given radius,
// the structuring element used by circle-aware morphology.
func DiskElement(radius int) []Pt {
	var pts []Pt
	r2 := radius * radius
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx*dx+dy*dy <= r2 {
				pts = append(pts, Pt{dx, dy})
			}
		}
	}
	return pts
}

// Dilate returns m dilated by the structuring element.
func Dilate(m *grid.Real, elem []Pt) *grid.Real {
	out := grid.NewReal(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.Data[y*m.W+x] <= 0.5 {
				continue
			}
			for _, d := range elem {
				nx, ny := x+d.X, y+d.Y
				if nx >= 0 && nx < m.W && ny >= 0 && ny < m.H {
					out.Data[ny*m.W+nx] = 1
				}
			}
		}
	}
	return out
}

// Erode returns m eroded by the structuring element (pixels whose whole
// element neighbourhood is foreground; the border acts as background).
func Erode(m *grid.Real, elem []Pt) *grid.Real {
	out := grid.NewReal(m.W, m.H)
	for y := 0; y < m.H; y++ {
	pixel:
		for x := 0; x < m.W; x++ {
			for _, d := range elem {
				if !fg(m, x+d.X, y+d.Y) {
					continue pixel
				}
			}
			out.Data[y*m.W+x] = 1
		}
	}
	return out
}

// Open is erosion followed by dilation (removes speckles thinner than the
// element).
func Open(m *grid.Real, elem []Pt) *grid.Real { return Dilate(Erode(m, elem), elem) }

// Close is dilation followed by erosion (fills gaps thinner than the
// element).
func Close(m *grid.Real, elem []Pt) *grid.Real { return Erode(Dilate(m, elem), elem) }

// RemoveCheckerboards rewrites m in place so that no 2×2 neighbourhood has
// the two-diagonal pattern (non-manifold corners), by filling one cell.
// Rectilinear partition requires manifold region boundaries.
func RemoveCheckerboards(m *grid.Real) {
	for changed := true; changed; {
		changed = false
		for y := 0; y+1 < m.H; y++ {
			for x := 0; x+1 < m.W; x++ {
				a := m.Data[y*m.W+x] > 0.5
				b := m.Data[y*m.W+x+1] > 0.5
				c := m.Data[(y+1)*m.W+x] > 0.5
				d := m.Data[(y+1)*m.W+x+1] > 0.5
				if a == d && b == c && a != b {
					// Fill the top-left background cell of the pair.
					if a {
						m.Data[y*m.W+x+1] = 1
					} else {
						m.Data[y*m.W+x] = 1
					}
					changed = true
				}
			}
		}
	}
}
