package geom_test

import (
	"fmt"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
)

// ExamplePartitionRects shows the minimum rectangle partition on an
// L-shaped region: two rectangles, not three.
func ExamplePartitionRects() {
	m := grid.NewReal(5, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 2; x++ {
			m.Set(x, y, 1)
		}
	}
	for y := 2; y < 4; y++ {
		for x := 2; x < 5; x++ {
			m.Set(x, y, 1)
		}
	}
	rects := geom.PartitionRects(m)
	fmt.Println(len(rects), "rectangles")
	// Output: 2 rectangles
}

// ExampleSkeleton thins a thick bar to its one-pixel medial line.
func ExampleSkeleton() {
	m := grid.NewReal(9, 7)
	for y := 2; y < 5; y++ {
		for x := 1; x < 8; x++ {
			m.Set(x, y, 1)
		}
	}
	s := geom.Skeleton(m)
	fmt.Println("skeleton pixels:", int(s.Sum()))
	// Output: skeleton pixels: 4
}

// ExampleRasterizeCircles unions two overlapping shots into one mask.
func ExampleRasterizeCircles() {
	mask := geom.RasterizeCircles(16, 16, []geom.Circle{
		{X: 6, Y: 8, R: 3},
		{X: 10, Y: 8, R: 3},
	})
	comp := geom.Components(mask, true)
	fmt.Println("features:", comp.N)
	// Output: features: 1
}
