package geom

// MaxBipartiteMatching computes a maximum matching of the bipartite graph
// with nL left and nR right vertices using the Hopcroft–Karp algorithm in
// O(E·√V). adj[l] lists the right vertices adjacent to left vertex l. The
// returned slices map each side to its partner (-1 when unmatched).
func MaxBipartiteMatching(nL, nR int, adj [][]int) (matchL, matchR []int) {
	matchL = make([]int, nL)
	matchR = make([]int, nR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, nL)
	queue := make([]int, 0, nL)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range adj[l] {
				nl := matchR[r]
				if nl == -1 {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range adj[l] {
			nl := matchR[r]
			if nl == -1 || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 {
				dfs(l)
			}
		}
	}
	return matchL, matchR
}

// MinVertexCover derives a minimum vertex cover from a maximum matching via
// König's theorem: run an alternating BFS from the unmatched left vertices
// (unmatched edges left→right, matched edges right→left); the cover is the
// unvisited left vertices plus the visited right vertices. The complement
// of the cover is a maximum independent set.
func MinVertexCover(nL, nR int, adj [][]int, matchL, matchR []int) (coverL, coverR []bool) {
	visitedL := make([]bool, nL)
	visitedR := make([]bool, nR)
	var stack []int
	for l := 0; l < nL; l++ {
		if matchL[l] == -1 {
			visitedL[l] = true
			stack = append(stack, l)
		}
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range adj[l] {
			if visitedR[r] {
				continue
			}
			visitedR[r] = true
			nl := matchR[r]
			if nl != -1 && !visitedL[nl] {
				visitedL[nl] = true
				stack = append(stack, nl)
			}
		}
	}
	coverL = make([]bool, nL)
	coverR = make([]bool, nR)
	for l := 0; l < nL; l++ {
		coverL[l] = !visitedL[l]
	}
	for r := 0; r < nR; r++ {
		coverR[r] = visitedR[r]
	}
	return coverL, coverR
}
