package geom

import (
	"math"

	"cfaopc/internal/grid"
)

// edtInf is the "unreachable" squared distance. It is large enough to lose
// against any real squared distance on practical grids yet finite, which
// keeps the lower-envelope arithmetic well defined (the standard
// Felzenszwalb–Huttenlocher implementation trick).
const edtInf = 1e20

// DistanceTransform returns the exact Euclidean distance from every pixel
// to the nearest foreground pixel of m, using the Felzenszwalb–Huttenlocher
// lower-envelope-of-parabolas algorithm (O(n) per row/column). Foreground
// pixels map to 0; if m has no foreground at all, every pixel maps to +Inf.
func DistanceTransform(m *grid.Real) *grid.Real {
	w, h := m.W, m.H
	d := grid.NewReal(w, h)
	for i, v := range m.Data {
		if v > 0.5 {
			d.Data[i] = 0
		} else {
			d.Data[i] = edtInf
		}
	}
	f := make([]float64, maxInt(w, h))
	out := make([]float64, maxInt(w, h))
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			f[y] = d.Data[y*w+x]
		}
		edt1d(f[:h], out[:h])
		for y := 0; y < h; y++ {
			d.Data[y*w+x] = out[y]
		}
	}
	for y := 0; y < h; y++ {
		copy(f[:w], d.Data[y*w:(y+1)*w])
		edt1d(f[:w], out[:w])
		copy(d.Data[y*w:(y+1)*w], out[:w])
	}
	for i, v := range d.Data {
		if v >= edtInf/2 {
			d.Data[i] = math.Inf(1)
		} else {
			d.Data[i] = math.Sqrt(v)
		}
	}
	return d
}

// SignedDistance returns the signed Euclidean distance field of a binary
// mask: negative inside the foreground, positive outside, with a half-pixel
// offset so the zero level set falls between foreground and background
// pixel centers (the level-set representation used by the DevelSet-style
// engine).
func SignedDistance(m *grid.Real) *grid.Real {
	inv := grid.NewReal(m.W, m.H)
	for i, v := range m.Data {
		if v <= 0.5 {
			inv.Data[i] = 1
		}
	}
	dOut := DistanceTransform(m)  // distance to foreground
	dIn := DistanceTransform(inv) // distance to background
	sd := grid.NewReal(m.W, m.H)
	for i := range sd.Data {
		if m.Data[i] > 0.5 {
			v := dIn.Data[i]
			if math.IsInf(v, 1) {
				v = float64(m.W + m.H) // fully-foreground mask: deep inside
			}
			sd.Data[i] = -v + 0.5
		} else {
			v := dOut.Data[i]
			if math.IsInf(v, 1) {
				v = float64(m.W + m.H) // fully-background mask: far outside
			}
			sd.Data[i] = v - 0.5
		}
	}
	return sd
}

// edt1d computes the 1D squared-distance transform of sampled function f
// into out (Felzenszwalb & Huttenlocher, "Distance Transforms of Sampled
// Functions").
func edt1d(f, out []float64) {
	n := len(f)
	v := make([]int, n)       // parabola locations
	z := make([]float64, n+1) // envelope boundaries
	k := 0
	v[0] = 0
	z[0] = math.Inf(-1)
	z[1] = math.Inf(1)
	for q := 1; q < n; q++ {
		var s float64
		for {
			p := v[k]
			s = ((f[q] + float64(q*q)) - (f[p] + float64(p*p))) / (2 * float64(q-p))
			if s > z[k] {
				break
			}
			k--
			if k < 0 {
				k = 0
				v[0] = q
				z[0] = math.Inf(-1)
				z[1] = math.Inf(1)
				s = math.NaN()
				break
			}
		}
		if !math.IsNaN(s) {
			k++
			v[k] = q
			z[k] = s
			z[k+1] = math.Inf(1)
		}
	}
	k = 0
	for q := 0; q < n; q++ {
		for z[k+1] < float64(q) {
			k++
		}
		dq := float64(q - v[k])
		out[q] = dq*dq + f[v[k]]
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
