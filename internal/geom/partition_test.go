package geom

import (
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
)

func TestMaxBipartiteMatchingKnown(t *testing.T) {
	// Perfect matching on a 3×3 bipartite cycle-ish graph.
	adj := [][]int{{0, 1}, {1, 2}, {0, 2}}
	matchL, matchR := MaxBipartiteMatching(3, 3, adj)
	size := 0
	for l, r := range matchL {
		if r != -1 {
			size++
			if matchR[r] != l {
				t.Fatal("matchL/matchR inconsistent")
			}
		}
	}
	if size != 3 {
		t.Fatalf("matching size %d, want 3", size)
	}
}

func TestMaxBipartiteMatchingStar(t *testing.T) {
	// Many left vertices all adjacent to one right vertex: matching = 1.
	adj := [][]int{{0}, {0}, {0}, {0}}
	matchL, _ := MaxBipartiteMatching(4, 1, adj)
	size := 0
	for _, r := range matchL {
		if r != -1 {
			size++
		}
	}
	if size != 1 {
		t.Fatalf("matching size %d, want 1", size)
	}
}

func TestMinVertexCoverCoversAllEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		nL, nR := rng.Intn(8)+1, rng.Intn(8)+1
		adj := make([][]int, nL)
		edges := 0
		for l := 0; l < nL; l++ {
			for r := 0; r < nR; r++ {
				if rng.Float64() < 0.3 {
					adj[l] = append(adj[l], r)
					edges++
				}
			}
		}
		matchL, matchR := MaxBipartiteMatching(nL, nR, adj)
		coverL, coverR := MinVertexCover(nL, nR, adj, matchL, matchR)
		// Every edge covered.
		for l := 0; l < nL; l++ {
			for _, r := range adj[l] {
				if !coverL[l] && !coverR[r] {
					t.Fatalf("trial %d: edge (%d,%d) uncovered", trial, l, r)
				}
			}
		}
		// König: |cover| == |matching|.
		cov, match := 0, 0
		for _, b := range coverL {
			if b {
				cov++
			}
		}
		for _, b := range coverR {
			if b {
				cov++
			}
		}
		for _, r := range matchL {
			if r != -1 {
				match++
			}
		}
		if cov != match {
			t.Fatalf("trial %d: cover %d != matching %d", trial, cov, match)
		}
	}
}

// checkPartition verifies rects exactly tile the foreground of m (after
// checkerboard cleanup) with no overlaps, and returns the count.
func checkPartition(t *testing.T, m *grid.Real, rects []Rect) int {
	t.Helper()
	clean := m.Binarize(0.5)
	RemoveCheckerboards(clean)
	painted := grid.NewReal(m.W, m.H)
	for _, r := range rects {
		if r.W <= 0 || r.H <= 0 {
			t.Fatalf("degenerate rect %+v", r)
		}
		for y := r.Y; y < r.Y+r.H; y++ {
			for x := r.X; x < r.X+r.W; x++ {
				if painted.At(x, y) != 0 {
					t.Fatalf("rect overlap at (%d,%d)", x, y)
				}
				painted.Set(x, y, 1)
			}
		}
	}
	for i := range clean.Data {
		if clean.Data[i] != painted.Data[i] {
			t.Fatalf("partition does not tile the mask at %d", i)
		}
	}
	return len(rects)
}

func TestPartitionRectangle(t *testing.T) {
	m := mk(
		"....",
		".##.",
		".##.",
		"....",
	)
	rects := PartitionRects(m)
	if n := checkPartition(t, m, rects); n != 1 {
		t.Fatalf("rectangle partitioned into %d pieces", n)
	}
}

func TestPartitionLShape(t *testing.T) {
	m := mk(
		"##...",
		"##...",
		"#####",
		"#####",
	)
	rects := PartitionRects(m)
	if n := checkPartition(t, m, rects); n != 2 {
		t.Fatalf("L-shape needs 2 rects, got %d", n)
	}
}

func TestPartitionPlusShape(t *testing.T) {
	m := mk(
		".###.",
		".###.",
		"#####",
		"#####",
		".###.",
		".###.",
	)
	rects := PartitionRects(m)
	if n := checkPartition(t, m, rects); n != 3 {
		t.Fatalf("plus shape needs 3 rects, got %d", n)
	}
}

func TestPartitionTShape(t *testing.T) {
	m := mk(
		"######",
		"######",
		"..##..",
		"..##..",
	)
	rects := PartitionRects(m)
	if n := checkPartition(t, m, rects); n != 2 {
		t.Fatalf("T-shape needs 2 rects, got %d", n)
	}
}

func TestPartitionWithHole(t *testing.T) {
	m := mk(
		"######",
		"#....#",
		"#....#",
		"######",
	)
	rects := PartitionRects(m)
	// A rectangular ring needs 4 rectangles.
	if n := checkPartition(t, m, rects); n != 4 {
		t.Fatalf("ring needs 4 rects, got %d", n)
	}
}

func TestPartitionStaircaseChordCase(t *testing.T) {
	// Two opposing notches connected by one chord: optimal is 3.
	m := mk(
		"###...",
		"###...",
		"######",
		"######",
		"...###",
		"...###",
	)
	rects := PartitionRects(m)
	if n := checkPartition(t, m, rects); n > 3 {
		t.Fatalf("staircase should need ≤3 rects, got %d", n)
	}
}

func TestPartitionMultipleComponents(t *testing.T) {
	m := mk(
		"##..##",
		"##..##",
		"......",
		"####..",
	)
	rects := PartitionRects(m)
	if n := checkPartition(t, m, rects); n != 3 {
		t.Fatalf("3 disjoint rects should stay 3, got %d", n)
	}
}

func TestPartitionEmpty(t *testing.T) {
	rects := PartitionRects(grid.NewReal(5, 5))
	if len(rects) != 0 {
		t.Fatalf("empty mask produced %d rects", len(rects))
	}
}

func TestDecomposeBands(t *testing.T) {
	m := mk(
		"##...",
		"##...",
		"#####",
	)
	rects := DecomposeBands(m)
	if n := checkPartition(t, m, rects); n != 2 {
		t.Fatalf("band decomposition gave %d rects, want 2", n)
	}
}

// Property: the optimal partition never uses more rectangles than the
// greedy band decomposition, and both tile exactly.
func TestPartitionNotWorseThanBands(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		m := grid.NewReal(24, 24)
		for r := 0; r < rng.Intn(5)+2; r++ {
			x0, y0 := rng.Intn(16), rng.Intn(16)
			w, h := rng.Intn(8)+2, rng.Intn(8)+2
			for y := y0; y < y0+h && y < 24; y++ {
				for x := x0; x < x0+w && x < 24; x++ {
					m.Set(x, y, 1)
				}
			}
		}
		RemoveCheckerboards(m)
		opt := PartitionRects(m)
		bands := DecomposeBands(m)
		nOpt := checkPartition(t, m, opt)
		nBands := checkPartition(t, m, bands)
		if nOpt > nBands {
			t.Fatalf("trial %d: optimal %d > bands %d", trial, nOpt, nBands)
		}
	}
}

func TestRasterizeRectsRoundtrip(t *testing.T) {
	m := mk(
		"##.##",
		"##.##",
		"#####",
	)
	rects := PartitionRects(m)
	back := RasterizeRects(m.W, m.H, rects)
	clean := m.Clone()
	RemoveCheckerboards(clean)
	for i := range clean.Data {
		if clean.Data[i] != back.Data[i] {
			t.Fatalf("rasterize roundtrip mismatch at %d", i)
		}
	}
}
