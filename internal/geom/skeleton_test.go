package geom

import (
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
)

func TestSkeletonSubsetOfShape(t *testing.T) {
	m := mk(
		"........",
		".######.",
		".######.",
		".######.",
		"........",
	)
	s := Skeleton(m)
	for i := range s.Data {
		if s.Data[i] > 0.5 && m.Data[i] <= 0.5 {
			t.Fatal("skeleton pixel outside original shape")
		}
	}
	if s.Sum() == 0 {
		t.Fatal("skeleton is empty")
	}
	if s.Sum() >= m.Sum() {
		t.Fatal("skeleton did not thin the shape")
	}
}

func TestSkeletonOfLineIsLine(t *testing.T) {
	m := mk(
		"..........",
		"..........",
		"##########",
		"..........",
	)
	s := Skeleton(m)
	// A 1px line is already a skeleton; thinning may trim endpoints but
	// must keep most of it on the same row.
	if s.Sum() < 6 {
		t.Fatalf("skeleton of a line lost too much: %v px", s.Sum())
	}
	for x := 0; x < 10; x++ {
		for y := 0; y < 4; y++ {
			if y != 2 && s.At(x, y) > 0.5 {
				t.Fatal("skeleton moved off the medial row")
			}
		}
	}
}

func TestSkeletonOfThickBarIsThin(t *testing.T) {
	m := grid.NewReal(30, 9)
	for y := 2; y < 7; y++ {
		for x := 2; x < 28; x++ {
			m.Set(x, y, 1)
		}
	}
	s := Skeleton(m)
	// Each interior column should hold exactly one skeleton pixel.
	for x := 6; x < 24; x++ {
		cnt := 0
		for y := 0; y < 9; y++ {
			if s.At(x, y) > 0.5 {
				cnt++
			}
		}
		if cnt != 1 {
			t.Fatalf("column %d has %d skeleton pixels, want 1", x, cnt)
		}
	}
}

func TestSkeletonPreservesConnectivity(t *testing.T) {
	// An L-shaped region stays one 8-connected piece after thinning.
	m := mk(
		"#####.....",
		"#####.....",
		"#####.....",
		"##########",
		"##########",
		"##########",
	)
	s := Skeleton(m)
	if n := Components(s, true).N; n != 1 {
		t.Fatalf("skeleton has %d components, want 1", n)
	}
}

func TestSkeletonConnectivityProperty(t *testing.T) {
	// Random blobs built from overlapping rectangles: thinning must never
	// split one 8-connected component into more.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		m := grid.NewReal(40, 40)
		for r := 0; r < 4; r++ {
			x0, y0 := rng.Intn(25)+5, rng.Intn(25)+5
			w, h := rng.Intn(10)+3, rng.Intn(10)+3
			for y := y0; y < y0+h && y < 40; y++ {
				for x := x0; x < x0+w && x < 40; x++ {
					m.Set(x, y, 1)
				}
			}
		}
		before := Components(m, true).N
		s := Skeleton(m)
		after := Components(s, true).N
		if after > before {
			t.Fatalf("trial %d: thinning split components %d → %d", trial, before, after)
		}
		for i := range s.Data {
			if s.Data[i] > 0.5 && m.Data[i] <= 0.5 {
				t.Fatalf("trial %d: skeleton escaped the shape", trial)
			}
		}
	}
}

func TestSkeletonPoints(t *testing.T) {
	m := mk(
		"...",
		".#.",
		"...",
	)
	pts := SkeletonPoints(Skeleton(m))
	if len(pts) != 1 || pts[0] != (Pt{1, 1}) {
		t.Fatalf("points = %v", pts)
	}
}

func TestSkeletonEmptyMask(t *testing.T) {
	s := Skeleton(grid.NewReal(5, 5))
	if s.Sum() != 0 {
		t.Fatal("skeleton of empty mask not empty")
	}
}
