package geom

import (
	"math"
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
)

// bruteDistance is the O(n²) reference.
func bruteDistance(m *grid.Real) *grid.Real {
	d := grid.NewReal(m.W, m.H)
	var seeds []Pt
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.At(x, y) > 0.5 {
				seeds = append(seeds, Pt{x, y})
			}
		}
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			best := math.Inf(1)
			for _, s := range seeds {
				dx, dy := float64(x-s.X), float64(y-s.Y)
				if v := math.Sqrt(dx*dx + dy*dy); v < best {
					best = v
				}
			}
			d.Set(x, y, best)
		}
	}
	return d
}

func TestDistanceTransformSinglePoint(t *testing.T) {
	m := grid.NewReal(7, 7)
	m.Set(3, 3, 1)
	d := DistanceTransform(m)
	if d.At(3, 3) != 0 {
		t.Fatalf("seed distance = %v", d.At(3, 3))
	}
	if math.Abs(d.At(0, 0)-math.Sqrt(18)) > 1e-9 {
		t.Fatalf("corner distance = %v, want √18", d.At(0, 0))
	}
	if math.Abs(d.At(3, 0)-3) > 1e-9 {
		t.Fatalf("axis distance = %v, want 3", d.At(3, 0))
	}
}

func TestDistanceTransformMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		m := grid.NewReal(20, 17)
		for i := range m.Data {
			if rng.Float64() < 0.1 {
				m.Data[i] = 1
			}
		}
		if m.Sum() == 0 {
			m.Set(5, 5, 1)
		}
		want := bruteDistance(m)
		got := DistanceTransform(m)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("trial %d idx %d: got %v want %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestDistanceTransformEmptyMask(t *testing.T) {
	d := DistanceTransform(grid.NewReal(4, 4))
	for i, v := range d.Data {
		if !math.IsInf(v, 1) {
			t.Fatalf("empty mask distance[%d] = %v, want +Inf", i, v)
		}
	}
}

func TestSignedDistanceSignsAndZeroCrossing(t *testing.T) {
	m := grid.NewReal(16, 16)
	for y := 4; y < 12; y++ {
		for x := 4; x < 12; x++ {
			m.Set(x, y, 1)
		}
	}
	sd := SignedDistance(m)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			inside := m.At(x, y) > 0.5
			v := sd.At(x, y)
			if inside && v >= 0 {
				t.Fatalf("inside pixel (%d,%d) has sd %v ≥ 0", x, y, v)
			}
			if !inside && v <= 0 {
				t.Fatalf("outside pixel (%d,%d) has sd %v ≤ 0", x, y, v)
			}
		}
	}
	// Center of the 8×8 square is ~3.5px from the boundary.
	if c := sd.At(7, 7); c > -3 || c < -5 {
		t.Fatalf("center sd = %v, want ≈ -3.5", c)
	}
	// Thresholding the signed distance at 0 recovers the mask.
	for i := range m.Data {
		rec := 0.0
		if sd.Data[i] < 0 {
			rec = 1
		}
		if rec != m.Data[i] {
			t.Fatalf("sd<0 does not recover mask at %d", i)
		}
	}
}

func TestSignedDistanceDegenerateMasks(t *testing.T) {
	full := grid.NewReal(4, 4)
	full.Fill(1)
	sd := SignedDistance(full)
	for i, v := range sd.Data {
		if v >= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("full mask sd[%d] = %v", i, v)
		}
	}
	empty := grid.NewReal(4, 4)
	sd = SignedDistance(empty)
	for i, v := range sd.Data {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("empty mask sd[%d] = %v", i, v)
		}
	}
}

// Property: the distance transform is 1-Lipschitz between 4-neighbours.
func TestDistanceTransformLipschitz(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := grid.NewReal(24, 24)
	for i := range m.Data {
		if rng.Float64() < 0.05 {
			m.Data[i] = 1
		}
	}
	m.Set(0, 0, 1)
	d := DistanceTransform(m)
	for y := 0; y < 24; y++ {
		for x := 0; x+1 < 24; x++ {
			if math.Abs(d.At(x, y)-d.At(x+1, y)) > 1+1e-9 {
				t.Fatalf("Lipschitz violated at (%d,%d)", x, y)
			}
		}
	}
	for y := 0; y+1 < 24; y++ {
		for x := 0; x < 24; x++ {
			if math.Abs(d.At(x, y)-d.At(x, y+1)) > 1+1e-9 {
				t.Fatalf("Lipschitz violated at (%d,%d) vertical", x, y)
			}
		}
	}
}
