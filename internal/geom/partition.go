package geom

import (
	"sort"

	"cfaopc/internal/grid"
)

// Rect is an axis-aligned pixel rectangle: cells [X, X+W) × [Y, Y+H).
type Rect struct{ X, Y, W, H int }

// Area returns the cell count of the rectangle.
func (r Rect) Area() int { return r.W * r.H }

// PartitionRects decomposes the foreground of m into the minimum number of
// non-overlapping axis-aligned rectangles — the classical VSB fracturing
// objective. It implements the optimal algorithm for rectilinear regions
// (with holes): find the concave (reflex) boundary vertices, connect
// co-linear reflex pairs by interior chords, pick a maximum independent set
// of non-crossing chords via Hopcroft–Karp matching and König's theorem,
// draw them as cuts, resolve every remaining reflex vertex with a single
// axis-parallel cut, and read off the resulting rectangles.
//
// Non-manifold (checkerboard) corners are removed first by filling cells,
// so the returned rectangles cover a minimally *augmented* version of m
// when such corners exist; this mirrors mask data prep, which cannot write
// point-touching shapes either.
func PartitionRects(m *grid.Real) []Rect {
	work := m.Binarize(0.5)
	RemoveCheckerboards(work)
	w, h := work.W, work.H

	filled := func(x, y int) bool { return fg(work, x, y) }

	// Reflex lattice vertices: exactly 3 of the 4 incident cells filled.
	type vertex struct{ x, y int }
	var reflex []vertex
	reflexAt := make(map[[2]int]bool)
	for y := 0; y <= h; y++ {
		for x := 0; x <= w; x++ {
			n := 0
			if filled(x-1, y-1) {
				n++
			}
			if filled(x, y-1) {
				n++
			}
			if filled(x-1, y) {
				n++
			}
			if filled(x, y) {
				n++
			}
			if n == 3 {
				reflex = append(reflex, vertex{x, y})
				reflexAt[[2]int{x, y}] = true
			}
		}
	}

	// interiorH reports whether the unit lattice segment (x,y)-(x+1,y) has
	// foreground on both sides; interiorV likewise for (x,y)-(x,y+1).
	interiorH := func(x, y int) bool { return filled(x, y-1) && filled(x, y) }
	interiorV := func(x, y int) bool { return filled(x-1, y) && filled(x, y) }

	// Chords join consecutive co-linear reflex vertices through interior.
	type chord struct{ x1, y1, x2, y2 int }
	var hChords, vChords []chord

	byRow := map[int][]int{}
	for _, v := range reflex {
		byRow[v.y] = append(byRow[v.y], v.x)
	}
	for y, xs := range byRow {
		sort.Ints(xs)
		for i := 0; i+1 < len(xs); i++ {
			x1, x2 := xs[i], xs[i+1]
			ok := true
			for x := x1; x < x2; x++ {
				if !interiorH(x, y) {
					ok = false
					break
				}
			}
			if ok {
				hChords = append(hChords, chord{x1, y, x2, y})
			}
		}
	}
	byCol := map[int][]int{}
	for _, v := range reflex {
		byCol[v.x] = append(byCol[v.x], v.y)
	}
	for x, ys := range byCol {
		sort.Ints(ys)
		for i := 0; i+1 < len(ys); i++ {
			y1, y2 := ys[i], ys[i+1]
			ok := true
			for y := y1; y < y2; y++ {
				if !interiorV(x, y) {
					ok = false
					break
				}
			}
			if ok {
				vChords = append(vChords, chord{x, y1, x, y2})
			}
		}
	}

	// Conflict graph: an H-chord and a V-chord conflict when they share any
	// point (proper crossings and shared endpoints alike).
	adj := make([][]int, len(hChords))
	for i, hc := range hChords {
		for j, vc := range vChords {
			if vc.x1 >= hc.x1 && vc.x1 <= hc.x2 && hc.y1 >= vc.y1 && hc.y1 <= vc.y2 {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchL, matchR := MaxBipartiteMatching(len(hChords), len(vChords), adj)
	coverL, coverR := MinVertexCover(len(hChords), len(vChords), adj, matchL, matchR)

	// Cut walls between cells. vWall[y*(w+1)+x] blocks (x-1,y)|(x,y);
	// hWall[y*w+x] blocks (x,y-1)|(x,y).
	vWall := make([]bool, (w+1)*h)
	hWall := make([]bool, w*(h+1))

	resolved := map[[2]int]bool{}
	drawH := func(c chord) {
		for x := c.x1; x < c.x2; x++ {
			hWall[c.y1*w+x] = true
		}
		resolved[[2]int{c.x1, c.y1}] = true
		resolved[[2]int{c.x2, c.y2}] = true
	}
	drawV := func(c chord) {
		for y := c.y1; y < c.y2; y++ {
			vWall[y*(w+1)+c.x1] = true
		}
		resolved[[2]int{c.x1, c.y1}] = true
		resolved[[2]int{c.x2, c.y2}] = true
	}
	for i, c := range hChords {
		if !coverL[i] { // independent set = complement of the cover
			drawH(c)
		}
	}
	for j, c := range vChords {
		if !coverR[j] {
			drawV(c)
		}
	}

	// onCut reports whether an existing cut passes through lattice point
	// (x, y); boundary detection is separate.
	onCut := func(x, y int) bool {
		if x > 0 && hWall[y*w+x-1] {
			return true
		}
		if x < w && hWall[y*w+x] {
			return true
		}
		if y > 0 && vWall[(y-1)*(w+1)+x] {
			return true
		}
		if y < h && vWall[y*(w+1)+x] {
			return true
		}
		return false
	}

	// Resolve leftover reflex vertices with a single vertical cut into the
	// interior; direction is away from the missing cell.
	for _, v := range reflex {
		if resolved[[2]int{v.x, v.y}] {
			continue
		}
		missingTop := !filled(v.x-1, v.y-1) || !filled(v.x, v.y-1)
		// Collect the segments first, testing termination against walls
		// drawn by *other* cuts only, then commit.
		var segs []int
		if missingTop {
			// Cut downward while the segment below stays interior.
			for y := v.y; y < h && interiorV(v.x, y); y++ {
				segs = append(segs, y*(w+1)+v.x)
				if reflexAt[[2]int{v.x, y + 1}] {
					resolved[[2]int{v.x, y + 1}] = true // the cut passes through it
					break
				}
				if onCut(v.x, y+1) {
					break
				}
			}
		} else {
			for y := v.y; y > 0 && interiorV(v.x, y-1); y-- {
				segs = append(segs, (y-1)*(w+1)+v.x)
				if reflexAt[[2]int{v.x, y - 1}] {
					resolved[[2]int{v.x, y - 1}] = true
					break
				}
				if onCut(v.x, y-1) {
					break
				}
			}
		}
		for _, s := range segs {
			vWall[s] = true
		}
	}

	// Flood-fill cells respecting walls; every region is now a rectangle.
	// A band-decomposition fallback guards against degenerate inputs.
	seen := make([]bool, w*h)
	var rects []Rect
	var stack []int
	for start := range work.Data {
		if work.Data[start] <= 0.5 || seen[start] {
			continue
		}
		stack = append(stack[:0], start)
		seen[start] = true
		minX, minY, maxX, maxY := w, h, -1, -1
		count := 0
		var cells []int
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cells = append(cells, cur)
			count++
			cx, cy := cur%w, cur/w
			if cx < minX {
				minX = cx
			}
			if cy < minY {
				minY = cy
			}
			if cx > maxX {
				maxX = cx
			}
			if cy > maxY {
				maxY = cy
			}
			// Right neighbour unless a vertical wall at lattice x=cx+1.
			if cx+1 < w && !vWall[cy*(w+1)+cx+1] && work.Data[cur+1] > 0.5 && !seen[cur+1] {
				seen[cur+1] = true
				stack = append(stack, cur+1)
			}
			if cx > 0 && !vWall[cy*(w+1)+cx] && work.Data[cur-1] > 0.5 && !seen[cur-1] {
				seen[cur-1] = true
				stack = append(stack, cur-1)
			}
			if cy+1 < h && !hWall[(cy+1)*w+cx] && work.Data[cur+w] > 0.5 && !seen[cur+w] {
				seen[cur+w] = true
				stack = append(stack, cur+w)
			}
			if cy > 0 && !hWall[cy*w+cx] && work.Data[cur-w] > 0.5 && !seen[cur-w] {
				seen[cur-w] = true
				stack = append(stack, cur-w)
			}
		}
		rw, rh := maxX-minX+1, maxY-minY+1
		if count == rw*rh {
			rects = append(rects, Rect{X: minX, Y: minY, W: rw, H: rh})
			continue
		}
		// Degenerate region: band-decompose just these cells.
		sub := grid.NewReal(w, h)
		for _, c := range cells {
			sub.Data[c] = 1
		}
		rects = append(rects, DecomposeBands(sub)...)
	}
	return rects
}

// DecomposeBands decomposes the foreground of m into rectangles by merging
// identical maximal horizontal runs across consecutive rows — the greedy
// baseline fracturer (correct but not minimal).
func DecomposeBands(m *grid.Real) []Rect {
	type run struct{ x1, x2 int } // [x1, x2)
	var rects []Rect
	prev := map[run]int{} // open run → rect index
	for y := 0; y < m.H; y++ {
		cur := map[run]int{}
		x := 0
		for x < m.W {
			if m.Data[y*m.W+x] <= 0.5 {
				x++
				continue
			}
			x1 := x
			for x < m.W && m.Data[y*m.W+x] > 0.5 {
				x++
			}
			r := run{x1, x}
			if idx, ok := prev[r]; ok {
				rects[idx].H++
				cur[r] = idx
			} else {
				rects = append(rects, Rect{X: x1, Y: y, W: x - x1, H: 1})
				cur[r] = len(rects) - 1
			}
		}
		prev = cur
	}
	return rects
}

// RasterizeRects paints rectangles into a fresh w×h binary grid; the
// inverse of a decomposition, used to verify partitions.
func RasterizeRects(w, h int, rects []Rect) *grid.Real {
	m := grid.NewReal(w, h)
	for _, r := range rects {
		for y := r.Y; y < r.Y+r.H; y++ {
			for x := r.X; x < r.X+r.W; x++ {
				if x >= 0 && x < w && y >= 0 && y < h {
					m.Data[y*w+x] = 1
				}
			}
		}
	}
	return m
}
