package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cfaopc/internal/grid"
)

func TestRasterizeCirclesBasics(t *testing.T) {
	m := RasterizeCircles(32, 32, []Circle{{X: 16, Y: 16, R: 5}})
	if m.At(16, 16) != 1 || m.At(16, 20) != 1 {
		t.Fatal("circle interior not painted")
	}
	if m.At(16, 22) != 0 || m.At(0, 0) != 0 {
		t.Fatal("circle exterior painted")
	}
	// Area ≈ πr².
	want := math.Pi * 25
	if got := m.Sum(); math.Abs(got-want) > 0.25*want {
		t.Fatalf("disk area %v, want ≈ %v", got, want)
	}
}

func TestRasterizeCirclesDegenerate(t *testing.T) {
	if m := RasterizeCircles(16, 16, nil); m.Sum() != 0 {
		t.Fatal("no circles should paint nothing")
	}
	// Non-positive radius circles are skipped.
	m := RasterizeCircles(16, 16, []Circle{{X: 8, Y: 8, R: 0}, {X: 8, Y: 8, R: -3}})
	if m.Sum() != 0 {
		t.Fatal("degenerate circles painted pixels")
	}
	// Off-grid circles clip cleanly.
	m = RasterizeCircles(16, 16, []Circle{{X: -5, Y: 8, R: 7}})
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if m.At(x, y) == 1 && x > 2 {
				t.Fatal("clipped circle painted far inside")
			}
		}
	}
}

// Property: the union raster is symmetric under reflecting all circles.
func TestRasterizeSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 33 // odd so reflection is exact about (n-1)/2
		var cs, mirrored []Circle
		for i := 0; i < 5; i++ {
			c := Circle{
				X: float64(rng.Intn(n)),
				Y: float64(rng.Intn(n)),
				R: rng.Float64()*5 + 1,
			}
			cs = append(cs, c)
			mirrored = append(mirrored, Circle{X: float64(n-1) - c.X, Y: c.Y, R: c.R})
		}
		a := RasterizeCircles(n, n, cs)
		b := RasterizeCircles(n, n, mirrored)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if a.At(x, y) != b.At(n-1-x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: cover rate is monotonically non-increasing in the radius once
// the circle fully encloses the region locally (growing only adds outside
// area), and equals ~1 for a circle well inside a large filled region.
func TestCoverRateBehaviour(t *testing.T) {
	m := grid.NewReal(64, 64)
	for y := 16; y < 48; y++ {
		for x := 16; x < 48; x++ {
			m.Set(x, y, 1)
		}
	}
	// Deep inside: rate 1.
	if cr := CoverRate(Circle{X: 32, Y: 32, R: 6}, m); cr < 0.999 {
		t.Fatalf("interior cover rate %v", cr)
	}
	// Monotone decrease for radii beyond the inscribed radius.
	prev := 1.1
	for r := 14.0; r <= 30; r += 2 {
		cr := CoverRate(Circle{X: 32, Y: 32, R: r}, m)
		if cr > prev+1e-9 {
			t.Fatalf("cover rate grew at r=%v: %v > %v", r, cr, prev)
		}
		prev = cr
	}
	// Fully outside: rate 0.
	if cr := CoverRate(Circle{X: 5, Y: 5, R: 3}, m); cr != 0 {
		t.Fatalf("outside cover rate %v", cr)
	}
	// Degenerate radius.
	if cr := CoverRate(Circle{X: 32, Y: 32, R: 0}, m); cr != 0 {
		t.Fatalf("zero-radius cover rate %v", cr)
	}
}

func TestCoverRateOffGridCountsAgainst(t *testing.T) {
	m := grid.NewReal(16, 16)
	m.Fill(1)
	// Circle half off the grid: off-grid area counts as uncovered.
	cr := CoverRate(Circle{X: 0, Y: 8, R: 4}, m)
	if cr > 0.7 {
		t.Fatalf("off-grid circle cover rate %v, want ≈ 0.5", cr)
	}
}
