package geom

import "cfaopc/internal/grid"

// Skeleton thins the binary mask to a one-pixel-wide, 8-connected medial
// skeleton using the Zhang–Suen algorithm. The skeleton is the curve
// CircleRule samples circle centers from: every skeleton pixel keeps at
// least one 8-neighbour while the region stays connected (single isolated
// pixels remain as themselves).
func Skeleton(m *grid.Real) *grid.Real {
	s := m.Binarize(0.5)
	for {
		n0 := skeletonSubpass(s, 0)
		n1 := skeletonSubpass(s, 1)
		if n0+n1 == 0 {
			return s
		}
	}
}

// skeletonSubpass runs one Zhang–Suen sub-iteration (pass 0 removes
// south-east boundary pixels, pass 1 north-west) and returns the number of
// pixels removed.
func skeletonSubpass(s *grid.Real, pass int) int {
	w, h := s.W, s.H
	at := func(x, y int) int {
		if x < 0 || x >= w || y < 0 || y >= h || s.Data[y*w+x] <= 0.5 {
			return 0
		}
		return 1
	}
	var toClear []int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if at(x, y) == 0 {
				continue
			}
			// Neighbours P2..P9 clockwise from north.
			p := [8]int{at(x, y-1), at(x+1, y-1), at(x+1, y), at(x+1, y+1),
				at(x, y+1), at(x-1, y+1), at(x-1, y), at(x-1, y-1)}
			b := 0
			for _, v := range p {
				b += v
			}
			if b < 2 || b > 6 {
				continue
			}
			// A(P1): number of 0→1 transitions in the circular sequence.
			a := 0
			for i := 0; i < 8; i++ {
				if p[i] == 0 && p[(i+1)%8] == 1 {
					a++
				}
			}
			if a != 1 {
				continue
			}
			if pass == 0 {
				if p[0]*p[2]*p[4] != 0 || p[2]*p[4]*p[6] != 0 {
					continue
				}
			} else {
				if p[0]*p[2]*p[6] != 0 || p[0]*p[4]*p[6] != 0 {
					continue
				}
			}
			toClear = append(toClear, y*w+x)
		}
	}
	for _, i := range toClear {
		s.Data[i] = 0
	}
	return len(toClear)
}

// SkeletonPoints returns the foreground pixels of a skeleton mask.
func SkeletonPoints(s *grid.Real) []Pt {
	var pts []Pt
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			if s.Data[y*s.W+x] > 0.5 {
				pts = append(pts, Pt{x, y})
			}
		}
	}
	return pts
}
