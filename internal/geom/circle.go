package geom

import "cfaopc/internal/grid"

// Circle is one circular e-beam shot in pixel coordinates: center (X, Y)
// and radius R, all in pixels (possibly fractional during optimization).
type Circle struct{ X, Y, R float64 }

// RasterizeCircles paints the union of circles onto a fresh w×h binary
// grid: a pixel belongs to the mask when its coordinate lies within R of a
// circle center — the "recover a full mask by unioning all circles"
// operation of the paper.
func RasterizeCircles(w, h int, cs []Circle) *grid.Real {
	m := grid.NewReal(w, h)
	for _, c := range cs {
		r := c.R
		if r <= 0 {
			continue
		}
		x0 := int(c.X - r - 1)
		x1 := int(c.X + r + 1)
		y0 := int(c.Y - r - 1)
		y1 := int(c.Y + r + 1)
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 >= w {
			x1 = w - 1
		}
		if y1 >= h {
			y1 = h - 1
		}
		r2 := r * r
		for y := y0; y <= y1; y++ {
			dy := float64(y) - c.Y
			for x := x0; x <= x1; x++ {
				dx := float64(x) - c.X
				if dx*dx+dy*dy <= r2 {
					m.Data[y*w+x] = 1
				}
			}
		}
	}
	return m
}

// RasterizeCirclesBand paints the union of circles onto an h-row band of
// a w-column grid whose top row is global row y0: band pixel (x, y-y0)
// is set when grid pixel (x, y) lies within R of a circle center. The
// per-pixel predicate is identical to RasterizeCircles, so the vertical
// concatenation of bands reproduces the full-grid mask byte for byte —
// the memory-bounded form the streaming flow emits. Circles whose
// bounding box misses the band are skipped.
func RasterizeCirclesBand(w, h, y0 int, cs []Circle) *grid.Real {
	m := grid.NewReal(w, h)
	for _, c := range cs {
		r := c.R
		if r <= 0 {
			continue
		}
		bx0 := int(c.X - r - 1)
		bx1 := int(c.X + r + 1)
		by0 := int(c.Y - r - 1)
		by1 := int(c.Y + r + 1)
		if bx0 < 0 {
			bx0 = 0
		}
		if bx1 >= w {
			bx1 = w - 1
		}
		if by0 < y0 {
			by0 = y0
		}
		if by1 >= y0+h {
			by1 = y0 + h - 1
		}
		r2 := r * r
		for y := by0; y <= by1; y++ {
			dy := float64(y) - c.Y
			row := m.Data[(y-y0)*w:]
			for x := bx0; x <= bx1; x++ {
				dx := float64(x) - c.X
				if dx*dx+dy*dy <= r2 {
					row[x] = 1
				}
			}
		}
	}
	return m
}

// CoverRate returns |C ∩ A| / |C| — the fraction of the circle's area
// that falls on foreground of region (line 20 of Algorithm 1). Pixels are
// supersampled 2×2 so the rate varies smoothly with the radius even on
// coarse grids, where whole-pixel counting makes the cover-vs-radius curve
// so steppy that radius selection stalls at R_min. Circles with no area on
// the grid return 0.
func CoverRate(c Circle, region *grid.Real) float64 {
	if c.R <= 0 {
		return 0
	}
	total, inside := 0, 0
	x0 := int(c.X - c.R - 1)
	x1 := int(c.X + c.R + 1)
	y0 := int(c.Y - c.R - 1)
	y1 := int(c.Y + c.R + 1)
	r2 := c.R * c.R
	offsets := [4][2]float64{{-0.25, -0.25}, {0.25, -0.25}, {-0.25, 0.25}, {0.25, 0.25}}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, o := range offsets {
				dx := float64(x) + o[0] - c.X
				dy := float64(y) + o[1] - c.Y
				if dx*dx+dy*dy > r2 {
					continue
				}
				total++
				if fg(region, x, y) {
					inside++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(inside) / float64(total)
}
