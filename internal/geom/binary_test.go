package geom

import (
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
)

// mk builds a binary grid from string rows ('#' = foreground).
func mk(rows ...string) *grid.Real {
	h := len(rows)
	w := len(rows[0])
	m := grid.NewReal(w, h)
	for y, r := range rows {
		for x, c := range r {
			if c == '#' {
				m.Set(x, y, 1)
			}
		}
	}
	return m
}

func TestComponentsFourVsEight(t *testing.T) {
	m := mk(
		"#..",
		".#.",
		"..#",
	)
	if l := Components(m, false); l.N != 3 {
		t.Fatalf("4-conn components = %d, want 3", l.N)
	}
	if l := Components(m, true); l.N != 1 {
		t.Fatalf("8-conn components = %d, want 1", l.N)
	}
}

func TestComponentsRegionsAndAreas(t *testing.T) {
	m := mk(
		"##..#",
		"##..#",
		".....",
		"###..",
	)
	l := Components(m, false)
	if l.N != 3 {
		t.Fatalf("components = %d, want 3", l.N)
	}
	total := 0
	for id := 1; id <= l.N; id++ {
		a := l.Area(id)
		total += a
		r := l.Region(id)
		if int(r.Sum()) != a {
			t.Fatalf("region %d area mismatch: %v vs %d", id, r.Sum(), a)
		}
	}
	if total != int(m.Sum()) {
		t.Fatalf("component areas %d do not sum to mask area %v", total, m.Sum())
	}
}

func TestComponentsEmpty(t *testing.T) {
	if l := Components(grid.NewReal(4, 4), true); l.N != 0 {
		t.Fatalf("empty mask has %d components", l.N)
	}
}

func TestDiskElement(t *testing.T) {
	d0 := DiskElement(0)
	if len(d0) != 1 || d0[0] != (Pt{0, 0}) {
		t.Fatalf("disk(0) = %v", d0)
	}
	d1 := DiskElement(1)
	if len(d1) != 5 { // center + 4 axis neighbours
		t.Fatalf("disk(1) has %d points, want 5", len(d1))
	}
	// Disk is symmetric under (x,y) → (-x,-y).
	set := map[Pt]bool{}
	for _, p := range DiskElement(3) {
		set[p] = true
	}
	for p := range set {
		if !set[Pt{-p.X, -p.Y}] {
			t.Fatalf("disk not symmetric at %v", p)
		}
	}
}

func TestDilateErodeBasics(t *testing.T) {
	m := mk(
		".....",
		".....",
		"..#..",
		".....",
		".....",
	)
	d := Dilate(m, DiskElement(1))
	if int(d.Sum()) != 5 {
		t.Fatalf("dilated area = %v, want 5", d.Sum())
	}
	e := Erode(d, DiskElement(1))
	if int(e.Sum()) != 1 || e.At(2, 2) != 1 {
		t.Fatalf("erode(dilate) != original point: %v", e.Data)
	}
}

func TestErodeBorderActsAsBackground(t *testing.T) {
	m := grid.NewReal(3, 3)
	m.Fill(1)
	e := Erode(m, DiskElement(1))
	if int(e.Sum()) != 1 || e.At(1, 1) != 1 {
		t.Fatalf("erosion of full grid should leave center only, got %v", e.Data)
	}
}

func TestOpenRemovesSpeckle(t *testing.T) {
	m := mk(
		"#....",
		".....",
		"..###",
		"..###",
		"..###",
	)
	o := Open(m, DiskElement(1))
	if o.At(0, 0) != 0 {
		t.Fatal("opening kept the speckle")
	}
	if o.At(3, 3) != 1 {
		t.Fatal("opening destroyed the solid block center")
	}
}

func TestCloseFillsGap(t *testing.T) {
	m := mk(
		"##.##",
		"##.##",
		"##.##",
	)
	c := Close(m, DiskElement(1))
	if c.At(2, 1) != 1 {
		t.Fatal("closing did not bridge the 1px gap")
	}
}

// Property: dilation is extensive (m ⊆ dilate(m)), erosion anti-extensive.
func TestMorphologyExtensivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := grid.NewReal(16, 16)
		for i := range m.Data {
			if rng.Float64() < 0.3 {
				m.Data[i] = 1
			}
		}
		d := Dilate(m, DiskElement(2))
		e := Erode(m, DiskElement(2))
		for i := range m.Data {
			if m.Data[i] == 1 && d.Data[i] != 1 {
				t.Fatal("dilation not extensive")
			}
			if e.Data[i] == 1 && m.Data[i] != 1 {
				t.Fatal("erosion not anti-extensive")
			}
		}
	}
}

func TestRemoveCheckerboards(t *testing.T) {
	m := mk(
		"#.",
		".#",
	)
	RemoveCheckerboards(m)
	// No 2×2 checkerboard may remain.
	for y := 0; y+1 < m.H; y++ {
		for x := 0; x+1 < m.W; x++ {
			a := m.At(x, y) > 0.5
			b := m.At(x+1, y) > 0.5
			c := m.At(x, y+1) > 0.5
			d := m.At(x+1, y+1) > 0.5
			if a == d && b == c && a != b {
				t.Fatal("checkerboard pattern remains")
			}
		}
	}
	if m.Sum() < 2 {
		t.Fatal("RemoveCheckerboards deleted foreground instead of filling")
	}
}
