package geom

import (
	"math"
	"testing"

	"cfaopc/internal/grid"
)

func TestContoursOfSquare(t *testing.T) {
	m := grid.NewReal(16, 16)
	for y := 4; y < 12; y++ {
		for x := 4; x < 12; x++ {
			m.Set(x, y, 1)
		}
	}
	cs := Contours(m, 0.5)
	if len(cs) != 1 {
		t.Fatalf("square has %d contours, want 1", len(cs))
	}
	c := cs[0]
	if !c.Closed {
		t.Fatal("square contour not closed")
	}
	// An 8×8 pixel square has boundary length ≈ 4·8 = 32 px at the 0.5
	// level (crossings sit half a pixel outside the filled centers, so
	// allow a generous band).
	p := c.Perimeter()
	if p < 24 || p > 40 {
		t.Fatalf("square perimeter %v, want ≈ 32", p)
	}
	// All contour points must hug the square boundary.
	for _, pt := range c.Points {
		if pt.X < 3 || pt.X > 12 || pt.Y < 3 || pt.Y > 12 {
			t.Fatalf("contour point %v far from the square", pt)
		}
	}
}

func TestContoursEmptyAndFull(t *testing.T) {
	if cs := Contours(grid.NewReal(8, 8), 0.5); len(cs) != 0 {
		t.Fatalf("empty mask produced %d contours", len(cs))
	}
	full := grid.NewReal(8, 8)
	full.Fill(1)
	// A full mask has no interior level crossings between pixel centers.
	if cs := Contours(full, 0.5); len(cs) != 0 {
		t.Fatalf("full mask produced %d contours", len(cs))
	}
}

func TestContoursTwoBlobs(t *testing.T) {
	m := grid.NewReal(20, 10)
	for y := 2; y < 7; y++ {
		for x := 2; x < 7; x++ {
			m.Set(x, y, 1)
		}
		for x := 12; x < 17; x++ {
			m.Set(x, y, 1)
		}
	}
	cs := Contours(m, 0.5)
	if len(cs) != 2 {
		t.Fatalf("two blobs produced %d contours", len(cs))
	}
	for i, c := range cs {
		if !c.Closed {
			t.Fatalf("contour %d not closed", i)
		}
	}
}

func TestContoursRing(t *testing.T) {
	// A ring has an outer and an inner contour.
	m := grid.NewReal(20, 20)
	for y := 3; y < 17; y++ {
		for x := 3; x < 17; x++ {
			m.Set(x, y, 1)
		}
	}
	for y := 7; y < 13; y++ {
		for x := 7; x < 13; x++ {
			m.Set(x, y, 0)
		}
	}
	cs := Contours(m, 0.5)
	if len(cs) != 2 {
		t.Fatalf("ring produced %d contours, want 2", len(cs))
	}
}

func TestDistanceToContours(t *testing.T) {
	m := grid.NewReal(16, 16)
	for y := 4; y < 12; y++ {
		for x := 4; x < 12; x++ {
			m.Set(x, y, 1)
		}
	}
	cs := Contours(m, 0.5)
	// The center of the square is ~4 px from the nearest edge (edges at
	// ~3.5 and ~11.5).
	center := PtF{7.5, 7.5}
	d := DistanceToContours(cs, center)
	if d < 3 || d > 5 {
		t.Fatalf("center distance %v, want ≈ 4", d)
	}
	// A point on the boundary is at ~0 distance.
	edgePt := PtF{3.5, 7.5}
	if d := DistanceToContours(cs, edgePt); d > 0.6 {
		t.Fatalf("edge distance %v, want ≈ 0", d)
	}
	if !math.IsInf(DistanceToContours(nil, center), 1) {
		t.Fatal("no contours should give +Inf")
	}
}

func TestTotalPerimeterScalesWithFeatureCount(t *testing.T) {
	one := grid.NewReal(32, 32)
	for y := 4; y < 10; y++ {
		for x := 4; x < 10; x++ {
			one.Set(x, y, 1)
		}
	}
	two := one.Clone()
	for y := 18; y < 24; y++ {
		for x := 18; x < 24; x++ {
			two.Set(x, y, 1)
		}
	}
	p1 := TotalPerimeter(one)
	p2 := TotalPerimeter(two)
	if math.Abs(p2-2*p1) > 0.05*p2 {
		t.Fatalf("perimeters %v and %v should differ by 2x", p1, p2)
	}
}

func TestContourOfCircleMatchesAnalyticPerimeter(t *testing.T) {
	m := grid.NewReal(64, 64)
	r := 20.0
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			dx, dy := float64(x)-32, float64(y)-32
			if dx*dx+dy*dy <= r*r {
				m.Set(x, y, 1)
			}
		}
	}
	cs := Contours(m, 0.5)
	if len(cs) != 1 {
		t.Fatalf("disk produced %d contours", len(cs))
	}
	got := cs[0].Perimeter()
	want := 2 * math.Pi * r
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("disk perimeter %v, want ≈ %v", got, want)
	}
}
