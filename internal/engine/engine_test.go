package engine

import (
	"strings"
	"testing"
)

func TestForKnownNames(t *testing.T) {
	for _, name := range Names() {
		if _, err := For(name, Defaults()); err != nil {
			t.Errorf("For(%q): %v", name, err)
		}
	}
	if _, err := For("no-such-method", Defaults()); err == nil || !strings.Contains(err.Error(), "no-such-method") {
		t.Fatalf("unknown method: err = %v", err)
	}
}

func TestMetaFromMetaRoundTrip(t *testing.T) {
	m := Meta("CircleOpt", "CircleRule", Defaults())
	if m.Primary != "circleopt" || m.Fallback != "circlerule" {
		t.Fatalf("meta not normalized: %+v", m)
	}
	p, fb, err := FromMeta(m)
	if err != nil || p == nil || fb == nil {
		t.Fatalf("FromMeta: %v (primary %v, fallback %v)", err, p, fb)
	}

	m.Fallback = "none"
	if _, fb, err = FromMeta(m); err != nil || fb != nil {
		t.Fatalf("fallback 'none' should yield nil: %v, %v", fb, err)
	}
	m.Fallback = ""
	if _, fb, err = FromMeta(m); err != nil || fb != nil {
		t.Fatalf("empty fallback should yield nil: %v, %v", fb, err)
	}

	m.Primary = "bogus"
	if _, _, err = FromMeta(m); err == nil {
		t.Fatal("bogus primary accepted")
	}
	m.Primary = "circleopt"
	m.Fallback = "bogus"
	if _, _, err = FromMeta(m); err == nil {
		t.Fatal("bogus fallback accepted")
	}
}
