// Package engine names the optimizer chain. It adapts each named method
// to the flow.Optimizer signature so one dispatch serves the
// single-window path, the tiled flow, and — via quarantine.EngineMeta —
// the offline bundle replay in cmd/replaytile: a bundle records the
// engine names and knobs, and FromMeta rebuilds the exact optimizers a
// failed run was using, on another machine, from nothing but the bundle.
package engine

import (
	"fmt"
	"strings"

	"cfaopc/internal/core"
	"cfaopc/internal/flow"
	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/ilt"
	"cfaopc/internal/litho"
	"cfaopc/internal/quarantine"
)

// Options are the resolution-independent knobs every engine shares;
// resolution-dependent settings derive from the simulator each call
// sees. The zero value is not useful — use Defaults.
type Options struct {
	Iters    int     // optimization iterations
	Gamma    float64 // CircleOpt sparsity weight at the paper's 1 nm/px scale
	SampleNM float64 // circle sample distance in nm
}

// Defaults mirror cmd/cfaopc's flag defaults.
func Defaults() Options { return Options{Iters: 60, Gamma: 3, SampleNM: 32} }

// Names lists the accepted method names.
func Names() []string {
	return []string{"circlerule", "circleopt", "doseopt", "greedy", "develset", "neuralilt", "multiilt"}
}

// Meta records a primary/fallback pair and its knobs for embedding in
// flow.Config (and from there into quarantine bundles). fallback may be
// "" when no fallback is configured.
func Meta(primary, fallback string, o Options) quarantine.EngineMeta {
	return quarantine.EngineMeta{
		Primary:  strings.ToLower(primary),
		Fallback: strings.ToLower(fallback),
		Iters:    o.Iters,
		Gamma:    o.Gamma,
		SampleNM: o.SampleNM,
	}
}

// FromMeta rebuilds the optimizer chain a bundle's run was using. The
// fallback is nil when the meta records none.
func FromMeta(m quarantine.EngineMeta) (primary, fallback flow.Optimizer, err error) {
	o := Options{Iters: m.Iters, Gamma: m.Gamma, SampleNM: m.SampleNM}
	primary, err = For(m.Primary, o)
	if err != nil {
		return nil, nil, err
	}
	if m.Fallback != "" && !strings.EqualFold(m.Fallback, "none") {
		fallback, err = For(m.Fallback, o)
		if err != nil {
			return nil, nil, err
		}
	}
	return primary, fallback, nil
}

// For adapts a named method to the flow.Optimizer signature.
func For(method string, o Options) (flow.Optimizer, error) {
	ruleFor := func(sim *litho.Simulator) fracture.CircleRuleConfig {
		cfg := fracture.DefaultCircleRuleConfig(sim.DX)
		sample := int(o.SampleNM / sim.DX)
		if sample < 1 {
			sample = 1
		}
		cfg.SampleDist = sample
		return cfg
	}
	switch strings.ToLower(method) {
	case "circlerule":
		// No optimization at all: rule-based circle fracturing of the
		// rasterized target. The cheapest engine here, and the default
		// graceful-degradation fallback for the tiled flow.
		return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
			shots := fracture.CircleRule(target, ruleFor(sim))
			return geom.RasterizeCircles(sim.N, sim.N, shots), shots
		}, nil
	case "circleopt":
		return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
			coCfg := core.DefaultConfig(sim.DX)
			coCfg.Iterations = o.Iters
			coCfg.Gamma = o.Gamma / sim.DX // knob is in the paper's 1 nm/px scale
			res := (&core.CircleOpt{Cfg: coCfg, RuleCfg: ruleFor(sim)}).Optimize(sim, target)
			return res.Mask, res.Shots
		}, nil
	case "doseopt":
		return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
			coCfg := core.DefaultConfig(sim.DX)
			coCfg.Iterations = o.Iters
			coCfg.Gamma = o.Gamma / sim.DX
			res := (&core.DoseOpt{Cfg: coCfg, RuleCfg: ruleFor(sim)}).Optimize(sim, target)
			shots := make([]geom.Circle, 0, len(res.Shots))
			for _, ds := range res.Shots {
				shots = append(shots, ds.Circle)
			}
			return res.Mask, shots
		}, nil
	case "greedy":
		return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
			iltCfg := ilt.DefaultConfig()
			iltCfg.Iterations = o.Iters
			pixel := (&ilt.MultiLevel{Cfg: iltCfg}).Optimize(sim, target)
			rule := ruleFor(sim)
			shots := fracture.GreedyCircles(pixel, fracture.GreedyCircleConfig{
				RMin: rule.RMin, RMax: rule.RMax, CoverThreshold: rule.CoverThreshold,
			})
			return geom.RasterizeCircles(sim.N, sim.N, shots), shots
		}, nil
	case "develset", "neuralilt", "multiilt":
		mk := func() ilt.Engine {
			iltCfg := ilt.DefaultConfig()
			iltCfg.Iterations = o.Iters
			switch strings.ToLower(method) {
			case "develset":
				return &ilt.LevelSet{Cfg: iltCfg}
			case "neuralilt":
				return &ilt.CycleILT{Cfg: iltCfg}
			default:
				return &ilt.MultiLevel{Cfg: iltCfg}
			}
		}
		return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
			pixel := mk().Optimize(sim, target)
			shots := fracture.CircleRule(pixel, ruleFor(sim))
			return geom.RasterizeCircles(sim.N, sim.N, shots), shots
		}, nil
	default:
		return nil, fmt.Errorf("unknown method %q (have %s)", method, strings.Join(Names(), " | "))
	}
}
