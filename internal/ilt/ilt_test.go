package ilt

import (
	"math"
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// testSetup builds a 512 nm tile on a 64×64 grid (8 nm/px) with a
// printable two-bar target.
func testSetup(t testing.TB) (*litho.Simulator, *grid.Real) {
	t.Helper()
	cfg := optics.Default()
	cfg.TileNM = 512
	cfg.NumKernels = 8
	sim, err := litho.New(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	sim.KOpt = 4
	target := grid.NewReal(64, 64)
	for y := 14; y < 50; y++ {
		for x := 22; x < 30; x++ { // 64 nm bar
			target.Set(x, y, 1)
		}
		for x := 38; x < 46; x++ {
			target.Set(x, y, 1)
		}
	}
	return sim, target
}

// printL2 is the hard-resist L2 in px² for a candidate mask.
func printL2(sim *litho.Simulator, mask, target *grid.Real) float64 {
	r := sim.Simulate(mask)
	n := 0.0
	for i := range target.Data {
		a := r.ZNom.Data[i] > 0.5
		b := target.Data[i] > 0.5
		if a != b {
			n++
		}
	}
	return n
}

func quickCfg() Config {
	c := DefaultConfig()
	c.Iterations = 20
	return c
}

func TestEnginesImproveOverIdentityMask(t *testing.T) {
	sim, target := testSetup(t)
	base := printL2(sim, target, target) // print the target as-is
	engines := []Engine{
		&Mosaic{Cfg: quickCfg()},
		&CycleILT{Cfg: quickCfg()},
		&LevelSet{Cfg: quickCfg()},
		&MultiLevel{Cfg: quickCfg(), CoarseIterations: 10},
	}
	for _, e := range engines {
		mask := e.Optimize(sim, target)
		// Output must be strictly binary.
		for i, v := range mask.Data {
			if v != 0 && v != 1 {
				t.Fatalf("%s: non-binary mask value %v at %d", e.Name(), v, i)
			}
		}
		got := printL2(sim, mask, target)
		if got > base {
			t.Errorf("%s: optimized print L2 %v worse than identity-mask %v", e.Name(), got, base)
		}
		if mask.Sum() == 0 {
			t.Errorf("%s: produced an empty mask", e.Name())
		}
	}
}

func TestLevelSetProducesNoRemoteSRAFs(t *testing.T) {
	sim, target := testSetup(t)
	e := &LevelSet{Cfg: quickCfg()}
	mask := e.Optimize(sim, target)
	// Every mask pixel must be within 6 px (48 nm) of the target: fronts
	// move, features do not nucleate.
	d := geom.DistanceTransform(target)
	for i, v := range mask.Data {
		if v > 0.5 && d.Data[i] > 6 {
			t.Fatalf("level-set mask has a feature %v px from the target", d.Data[i])
		}
	}
}

func TestCycleILTIgnoresPVB(t *testing.T) {
	// The NeuralILT stand-in must behave identically regardless of WPVB.
	sim, target := testSetup(t)
	a := (&CycleILT{Cfg: quickCfg()}).Optimize(sim, target)
	cfg := quickCfg()
	cfg.WPVB = 99
	b := (&CycleILT{Cfg: cfg}).Optimize(sim, target)
	if a.SqDiff(b) != 0 {
		t.Fatal("CycleILT result depends on WPVB; the L2-only override is broken")
	}
}

func TestCleanMaskRemovesSpecks(t *testing.T) {
	m := grid.NewReal(16, 16)
	m.Set(0, 0, 1) // 1 px speck
	for y := 5; y < 10; y++ {
		for x := 5; x < 10; x++ {
			m.Set(x, y, 1)
		}
	}
	c := CleanMask(m, 4)
	if c.At(0, 0) != 0 {
		t.Fatal("speck survived cleanup")
	}
	if c.At(7, 7) != 1 {
		t.Fatal("solid block removed by cleanup")
	}
	// minPx ≤ 0 keeps everything.
	c2 := CleanMask(m, 0)
	if c2.At(0, 0) != 1 {
		t.Fatal("cleanup with minPx=0 removed pixels")
	}
}

func TestConfigValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero iterations")
		}
	}()
	e := &Mosaic{Cfg: Config{}}
	sim, target := testSetup(t)
	e.Optimize(sim, target)
}

func TestMosaicDeterministic(t *testing.T) {
	sim, target := testSetup(t)
	a := (&Mosaic{Cfg: quickCfg()}).Optimize(sim, target)
	b := (&Mosaic{Cfg: quickCfg()}).Optimize(sim, target)
	if a.SqDiff(b) != 0 {
		t.Fatal("Mosaic not deterministic")
	}
}

func TestEngineNames(t *testing.T) {
	names := map[string]Engine{
		"MOSAIC":    &Mosaic{},
		"DevelSet":  &LevelSet{},
		"NeuralILT": &CycleILT{},
		"MultiILT":  &MultiLevel{},
	}
	for want, e := range names {
		if got := e.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestMultiLevelOddGridFallsBack(t *testing.T) {
	// A grid not divisible by 2 must still optimize (single level).
	cfg := optics.Default()
	cfg.TileNM = 512
	cfg.NumKernels = 6
	sim, err := litho.New(cfg, 63)
	if err != nil {
		t.Fatal(err)
	}
	sim.KOpt = 3
	target := grid.NewReal(63, 63)
	for y := 20; y < 44; y++ {
		for x := 28; x < 36; x++ {
			target.Set(x, y, 1)
		}
	}
	c := quickCfg()
	c.Iterations = 5
	mask := (&MultiLevel{Cfg: c}).Optimize(sim, target)
	if mask.Sum() == 0 {
		t.Fatal("empty mask from odd-grid MultiLevel")
	}
}

func TestMaskFromLatentRange(t *testing.T) {
	p := grid.NewReal(3, 1)
	p.Data[0], p.Data[1], p.Data[2] = -100, 0, 100
	m := maskFromLatent(p, 4)
	if m.Data[0] > 1e-6 || math.Abs(m.Data[1]-0.5) > 1e-12 || m.Data[2] < 1-1e-6 {
		t.Fatalf("maskFromLatent = %v", m.Data)
	}
}
