package ilt

import (
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
)

func TestROIMaskGeometry(t *testing.T) {
	target := grid.NewReal(32, 32)
	target.Set(16, 16, 1)
	roi := roiMask(target, 5)
	// Inside the radius: gate open.
	if roi.At(16, 16) != 1 || roi.At(20, 16) != 1 {
		t.Fatal("ROI closed near the target")
	}
	// Outside: gate shut.
	if roi.At(26, 16) != 0 || roi.At(0, 0) != 0 {
		t.Fatal("ROI open far from the target")
	}
}

func TestMosaicMaskConfinedToROI(t *testing.T) {
	sim, target := testSetup(t)
	cfg := quickCfg()
	cfg.ROIMarginNM = 80 // 10 px at 8 nm/px
	mask := (&Mosaic{Cfg: cfg}).Optimize(sim, target)
	d := geom.DistanceTransform(target)
	for i, v := range mask.Data {
		if v > 0.5 && d.Data[i]*sim.DX > 80+1 {
			t.Fatalf("mask pixel %v nm outside the ROI", d.Data[i]*sim.DX)
		}
	}
}

func TestMosaicROIDisabled(t *testing.T) {
	// Negative margin disables gating; the engine must still run and can
	// in principle place mask anywhere.
	sim, target := testSetup(t)
	cfg := quickCfg()
	cfg.ROIMarginNM = -1
	cfg.Iterations = 5
	mask := (&Mosaic{Cfg: cfg}).Optimize(sim, target)
	if mask.Sum() == 0 {
		t.Fatal("empty mask with ROI disabled")
	}
}

func TestROIDefaultApplied(t *testing.T) {
	// Zero margin means the 120 nm default, not "no ROI".
	sim, target := testSetup(t)
	cfg := quickCfg()
	cfg.ROIMarginNM = 0
	mask := (&Mosaic{Cfg: cfg}).Optimize(sim, target)
	d := geom.DistanceTransform(target)
	for i, v := range mask.Data {
		if v > 0.5 && d.Data[i]*sim.DX > 120+1 {
			t.Fatalf("mask pixel %v nm outside the default ROI", d.Data[i]*sim.DX)
		}
	}
}

func TestMosaicLBFGSOptimizer(t *testing.T) {
	sim, target := testSetup(t)
	cfg := quickCfg()
	cfg.Optimizer = "lbfgs"
	cfg.Iterations = 10
	mask := (&Mosaic{Cfg: cfg}).Optimize(sim, target)
	if mask.Sum() == 0 {
		t.Fatal("L-BFGS Mosaic produced an empty mask")
	}
	// It must beat the empty mask decisively on print fidelity.
	base := printL2(sim, target, target)
	got := printL2(sim, mask, target)
	if got > 2*base {
		t.Fatalf("L-BFGS mask L2 %v vs identity-mask %v", got, base)
	}
}
