// Package ilt implements the pixel-level inverse lithography engines the
// paper builds on and compares against. All engines share the simulator's
// differentiable loss (squared L2 + PVB surrogate, Equation (6)) and differ
// in parameterization and schedule:
//
//   - Mosaic: the classic sigmoid-relaxed gradient ILT of Gao et al. (the
//     paper's stage-1 initializer).
//   - LevelSet: a level-set-parameterized ILT standing in for DevelSet —
//     DevelSet's network amortizes exactly this optimization. Its fronts
//     can move and merge but new features never nucleate far from the
//     pattern, so masks carry no SRAFs, matching the paper's observation.
//   - CycleILT: an L2-only engine standing in for NeuralILT, whose
//     cycle-style loss ignores process windows; this reproduces the
//     published signature of low L2 with elevated PVB.
//   - MultiLevel: a coarse-to-fine engine standing in for MultiILT's
//     multi-level lithography simulation, with an SRAF-friendly
//     initialization; the strongest baseline, as in the paper.
//
// Every Optimize returns a binary mask on the simulator's grid.
package ilt

import (
	"fmt"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
	"cfaopc/internal/opt"
)

// Engine is a pixel-level mask optimizer.
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// Optimize produces a binary mask for target on sim's grid.
	Optimize(sim *litho.Simulator, target *grid.Real) *grid.Real
}

// Config holds the knobs shared by the pixel engines.
type Config struct {
	Iterations    int     // gradient steps
	LearningRate  float64 // Adam step size
	MaskSteepness float64 // θ_m of the sigmoid mask binarization
	WL2, WPVB     float64 // loss weights
	// BackgroundBias is the latent value of non-target pixels at
	// initialization; values nearer zero let SRAFs nucleate.
	BackgroundBias float64
	// MinFeaturePx removes final-mask connected components smaller than
	// this pixel count (mask-rule style cleanup). Zero disables.
	MinFeaturePx int
	// ROIMarginNM freezes mask pixels farther than this distance (nm)
	// from the target: production ILT optimizes only a region of interest
	// around the pattern, and without it Adam's per-parameter scaling
	// amplifies sub-threshold interference ripples across the whole tile
	// into thousands of spurious features. Zero means the 120 nm default;
	// negative disables the ROI entirely.
	ROIMarginNM float64
	// Optimizer selects the first-order machinery for the Mosaic engine:
	// "adam" (default) or "lbfgs" (quasi-Newton with Armijo line search;
	// fewer but costlier iterations — each L-BFGS step evaluates the
	// lithography loss once per line-search trial).
	Optimizer string
}

// roiMask returns a 0/1 gate that is 1 within marginPx of the target.
func roiMask(target *grid.Real, marginPx float64) *grid.Real {
	d := geom.DistanceTransform(target)
	roi := grid.NewReal(target.W, target.H)
	for i, v := range d.Data {
		if v <= marginPx {
			roi.Data[i] = 1
		}
	}
	return roi
}

// roiFor resolves the configured ROI gate for a simulator grid; nil means
// no gating.
func (c Config) roiFor(sim *litho.Simulator, target *grid.Real) *grid.Real {
	margin := c.ROIMarginNM
	if margin == 0 {
		margin = 120
	}
	if margin < 0 {
		return nil
	}
	return roiMask(target, margin/sim.DX)
}

// DefaultConfig returns the shared baseline configuration: 40 iterations
// of Adam at the paper's step size 0.1, θ_m = 4, equal L2/PVB weights.
func DefaultConfig() Config {
	return Config{
		Iterations:     40,
		LearningRate:   0.1,
		MaskSteepness:  4,
		WL2:            1,
		WPVB:           1,
		BackgroundBias: -1,
		MinFeaturePx:   4,
	}
}

func (c Config) validate() {
	if c.Iterations <= 0 || c.LearningRate <= 0 || c.MaskSteepness <= 0 {
		panic(fmt.Sprintf("ilt: invalid config %+v", c))
	}
}

// CleanMask removes connected components smaller than minPx pixels,
// returning a new mask. minPx ≤ 0 returns a copy.
func CleanMask(m *grid.Real, minPx int) *grid.Real {
	out := m.Binarize(0.5)
	if minPx <= 0 {
		return out
	}
	labels := geom.Components(out, true)
	for id := 1; id <= labels.N; id++ {
		if labels.Area(id) < minPx {
			want := int32(id)
			for i, v := range labels.Label {
				if v == want {
					out.Data[i] = 0
				}
			}
		}
	}
	return out
}

// latentInit builds the sigmoid latent field: +1 on target, bias off it.
func latentInit(target *grid.Real, backgroundBias float64) *grid.Real {
	p := grid.NewReal(target.W, target.H)
	for i, v := range target.Data {
		if v > 0.5 {
			p.Data[i] = 1
		} else {
			p.Data[i] = backgroundBias
		}
	}
	return p
}

// maskFromLatent maps the latent field through σ(θ_m·p).
func maskFromLatent(p *grid.Real, steepness float64) *grid.Real {
	m := grid.NewReal(p.W, p.H)
	for i, v := range p.Data {
		m.Data[i] = litho.Sigmoid(steepness * v)
	}
	return m
}

// Mosaic is the sigmoid-relaxed pixel ILT of MOSAIC (Gao et al., DAC'14):
// latent pixels p, mask σ(θ_m·p), Adam on ∇(L2 + PVB).
type Mosaic struct {
	Cfg Config
}

// Name implements Engine.
func (e *Mosaic) Name() string { return "MOSAIC" }

// Optimize implements Engine.
func (e *Mosaic) Optimize(sim *litho.Simulator, target *grid.Real) *grid.Real {
	e.Cfg.validate()
	p := latentInit(target, e.Cfg.BackgroundBias)
	roi := e.Cfg.roiFor(sim, target)

	lossGrad := func(latent []float64) (float64, []float64) {
		lp := &grid.Real{W: p.W, H: p.H, Data: latent}
		m := maskFromLatent(lp, e.Cfg.MaskSteepness)
		res := sim.LossGrad(m, target, e.Cfg.WL2, e.Cfg.WPVB)
		g := make([]float64, len(latent))
		for i := range g {
			mi := m.Data[i]
			g[i] = res.GradM.Data[i] * e.Cfg.MaskSteepness * mi * (1 - mi)
			if roi != nil {
				g[i] *= roi.Data[i]
			}
		}
		return res.Loss, g
	}

	if e.Cfg.Optimizer == "lbfgs" {
		l := opt.NewLBFGS()
		l.InitialStep = e.Cfg.LearningRate
		for it := 0; it < e.Cfg.Iterations; it++ {
			loss := l.Step(p.Data, lossGrad)
			opt.Beat(sim.Ctx, it, loss)
		}
	} else {
		adam := opt.NewAdam(len(p.Data), e.Cfg.LearningRate)
		for it := 0; it < e.Cfg.Iterations; it++ {
			loss, g := lossGrad(p.Data)
			adam.Step(p.Data, g)
			opt.Beat(sim.Ctx, it, loss)
		}
	}
	final := maskFromLatent(p, e.Cfg.MaskSteepness)
	if roi != nil {
		final.Mul(roi)
	}
	return CleanMask(final, e.Cfg.MinFeaturePx)
}

// CycleILT is the NeuralILT stand-in: identical machinery to Mosaic but
// with an L2-only (cycle-style) objective and a tight initialization, so
// the optimizer trades process-window robustness for pattern fidelity.
type CycleILT struct {
	Cfg Config
}

// Name implements Engine.
func (e *CycleILT) Name() string { return "NeuralILT" }

// Optimize implements Engine.
func (e *CycleILT) Optimize(sim *litho.Simulator, target *grid.Real) *grid.Real {
	e.Cfg.validate()
	cfg := e.Cfg
	cfg.WPVB = 0 // the defining trait: no process-window term
	inner := Mosaic{Cfg: cfg}
	return inner.Optimize(sim, target)
}

// LevelSet is the DevelSet stand-in: the mask is the sub-zero level set of
// an evolving signed-distance field φ, softened as σ(−θ_m·φ) for
// differentiation. The field is periodically re-initialized to a true
// signed distance to keep the front well conditioned. Because the sigmoid
// band is narrow, gradients far from the current boundary vanish and no
// SRAFs nucleate — matching the paper's DevelSet+CircleRule shot counts,
// which reflect SRAF-free masks.
type LevelSet struct {
	Cfg Config
	// ReinitEvery re-distances φ every this many iterations (default 10).
	ReinitEvery int
}

// Name implements Engine.
func (e *LevelSet) Name() string { return "DevelSet" }

// Optimize implements Engine.
func (e *LevelSet) Optimize(sim *litho.Simulator, target *grid.Real) *grid.Real {
	e.Cfg.validate()
	reinit := e.ReinitEvery
	if reinit <= 0 {
		reinit = 10
	}
	phi := geom.SignedDistance(target)
	sgd := opt.NewSGD(len(phi.Data), e.Cfg.LearningRate*10, 0.5)
	gradPhi := make([]float64, len(phi.Data))
	steep := e.Cfg.MaskSteepness / 2 // band half-width ≈ 2 px
	for it := 0; it < e.Cfg.Iterations; it++ {
		m := grid.NewReal(phi.W, phi.H)
		for i, v := range phi.Data {
			m.Data[i] = litho.Sigmoid(-steep * v)
		}
		res := sim.LossGrad(m, target, e.Cfg.WL2, e.Cfg.WPVB)
		for i := range gradPhi {
			mi := m.Data[i]
			gradPhi[i] = res.GradM.Data[i] * (-steep) * mi * (1 - mi)
		}
		sgd.Step(phi.Data, gradPhi)
		opt.Beat(sim.Ctx, it, res.Loss)
		if (it+1)%reinit == 0 {
			bin := grid.NewReal(phi.W, phi.H)
			for i, v := range phi.Data {
				if v < 0 {
					bin.Data[i] = 1
				}
			}
			phi = geom.SignedDistance(bin)
		}
	}
	bin := grid.NewReal(phi.W, phi.H)
	for i, v := range phi.Data {
		if v < 0 {
			bin.Data[i] = 1
		}
	}
	return CleanMask(bin, e.Cfg.MinFeaturePx)
}

// MultiLevel is the MultiILT stand-in: the mask is first optimized on a
// half-resolution simulator (cheap, smooth loss landscape), then the
// latent field is upsampled and refined at full resolution. The background
// bias is relaxed so sub-resolution assist features can nucleate, which is
// why this baseline carries the highest shot counts in Table 2.
type MultiLevel struct {
	Cfg Config
	// CoarseIterations runs at half resolution before refinement
	// (default: Iterations).
	CoarseIterations int
}

// Name implements Engine.
func (e *MultiLevel) Name() string { return "MultiILT" }

// Optimize implements Engine.
func (e *MultiLevel) Optimize(sim *litho.Simulator, target *grid.Real) *grid.Real {
	e.Cfg.validate()
	coarseIters := e.CoarseIterations
	if coarseIters <= 0 {
		coarseIters = e.Cfg.Iterations
	}
	p := latentInit(target, e.Cfg.BackgroundBias)

	// Coarse stage at half resolution when the grid allows it.
	if sim.N%2 == 0 {
		if coarseSim, err := litho.New(sim.Cfg, sim.N/2); err == nil {
			coarseSim.KOpt = sim.KOpt
			coarseSim.Workers = sim.Workers
			coarseSim.Ctx = sim.Ctx // cancellation and heartbeats span both stages
			ct := grid.DownsampleBox(target, 2).Binarize(0.5)
			croi := e.Cfg.roiFor(coarseSim, ct)
			cp := latentInit(ct, e.Cfg.BackgroundBias)
			adam := opt.NewAdam(len(cp.Data), e.Cfg.LearningRate)
			gradP := make([]float64, len(cp.Data))
			for it := 0; it < coarseIters; it++ {
				m := maskFromLatent(cp, e.Cfg.MaskSteepness)
				res := coarseSim.LossGrad(m, ct, e.Cfg.WL2, e.Cfg.WPVB)
				for i := range gradP {
					mi := m.Data[i]
					gradP[i] = res.GradM.Data[i] * e.Cfg.MaskSteepness * mi * (1 - mi)
					if croi != nil {
						gradP[i] *= croi.Data[i]
					}
				}
				adam.Step(cp.Data, gradP)
				opt.Beat(sim.Ctx, it, res.Loss)
			}
			p = grid.UpsampleBilinear(cp, 2)
		}
	}

	roi := e.Cfg.roiFor(sim, target)
	adam := opt.NewAdam(len(p.Data), e.Cfg.LearningRate)
	gradP := make([]float64, len(p.Data))
	for it := 0; it < e.Cfg.Iterations; it++ {
		m := maskFromLatent(p, e.Cfg.MaskSteepness)
		res := sim.LossGrad(m, target, e.Cfg.WL2, e.Cfg.WPVB)
		for i := range gradP {
			mi := m.Data[i]
			gradP[i] = res.GradM.Data[i] * e.Cfg.MaskSteepness * mi * (1 - mi)
			if roi != nil {
				gradP[i] *= roi.Data[i]
			}
		}
		adam.Step(p.Data, gradP)
		opt.Beat(sim.Ctx, it, res.Loss)
	}
	final := maskFromLatent(p, e.Cfg.MaskSteepness)
	if roi != nil {
		final.Mul(roi)
	}
	return CleanMask(final, e.Cfg.MinFeaturePx)
}
