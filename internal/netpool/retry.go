// Package netpool promotes the procpool frame protocol from
// stdin/stdout pipes to TCP: a Dialer/Conn pair on the coordinator
// side, a Server wrapping procpool.ServeTasks on the worker side, the
// retry policy both sides of the flow's supervisor share (exponential
// Backoff, per-host circuit Breaker), and a deterministic chaos Proxy —
// the network analog of flow.InjectFaults — for exercising every link
// failure mode on a scripted schedule.
//
// The package deliberately adds no protocol of its own beyond the
// bidirectional Hello handshake: frames on the wire are exactly the
// CRC-guarded gob frames of internal/procpool, so a TCP session and a
// pipe session are interchangeable to both the supervisor and the
// worker loop.
package netpool

import (
	"math/rand"
	"time"
)

// Backoff computes the delay before reconnect/respawn attempt n —
// exponential doubling from Base, capped at Max, plus up to 50% jitter
// so a crash-looping fleet does not retry in lockstep. The zero value
// disables waiting. Not safe for concurrent use when Rng is shared.
type Backoff struct {
	Base time.Duration // delay before the first retry
	Max  time.Duration // cap on the pre-jitter delay (0 = uncapped)
	Rng  *rand.Rand    // jitter source; nil disables jitter (tests)
}

// Next returns the delay for the given consecutive-failure count
// (1 = first failure). Zero or negative counts wait nothing.
func (b Backoff) Next(consecutive int) time.Duration {
	if consecutive <= 0 || b.Base <= 0 {
		return 0
	}
	// Iterative doubling rather than a shift: consecutive grows without
	// bound under a half-open breaker, and base<<(n-1) overflows.
	d := b.Base
	for i := 1; i < consecutive; i++ {
		if b.Max > 0 && d >= b.Max {
			break
		}
		d *= 2
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Rng != nil {
		d += time.Duration(b.Rng.Int63n(int64(d)/2 + 1))
	}
	return d
}

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer is presumed down; callers degrade elsewhere.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and one probe is allowed
	// through; its outcome closes or reopens the breaker.
	BreakerHalfOpen
)

// Breaker is a consecutive-failure circuit breaker: Limit failures in a
// row open it, a Success closes it, and — when Cooldown is positive —
// an elapsed cooldown lets one probe through (half-open). Cooldown <= 0
// makes opening terminal, which is exactly the PR 5 subprocess-slot
// semantics (a slot that breaks stays in-process for the rest of the
// run). Not safe for concurrent use; each supervisor slot owns one.
type Breaker struct {
	Limit    int              // consecutive failures that open the breaker (<=0: never opens)
	Cooldown time.Duration    // open→half-open delay; <=0 makes open terminal
	Now      func() time.Time // clock override for tests; nil = time.Now

	state       BreakerState
	consecutive int
	openedAt    time.Time
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// State reports the breaker's position, resolving an elapsed cooldown
// to half-open.
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.Cooldown > 0 && b.now().Sub(b.openedAt) >= b.Cooldown {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a dispatch may proceed: always when closed,
// once per cooldown when open (the half-open probe), never when the
// breaker is terminally open.
func (b *Breaker) Allow() bool {
	return b.State() != BreakerOpen
}

// Success records a successful dispatch: the failure streak resets and
// the breaker closes (a half-open probe that succeeds heals the host).
func (b *Breaker) Success() {
	b.consecutive = 0
	b.state = BreakerClosed
}

// Failure records a failed dispatch and reports whether this failure
// opened the breaker (a new degradation episode — callers count these).
// A failed half-open probe reopens immediately; in the closed state the
// breaker opens on the Limit-th consecutive failure.
func (b *Breaker) Failure() bool {
	b.consecutive++
	switch b.State() {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		return true
	case BreakerClosed:
		if b.Limit > 0 && b.consecutive >= b.Limit {
			b.state = BreakerOpen
			b.openedAt = b.now()
			return true
		}
	}
	return false
}

// Consecutive is the current failure streak — the Backoff exponent.
func (b *Breaker) Consecutive() int { return b.consecutive }
