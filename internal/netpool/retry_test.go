package netpool

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffGrowth(t *testing.T) {
	// No jitter source: Next is the pure doubling schedule.
	cases := []struct {
		name        string
		b           Backoff
		consecutive int
		want        time.Duration
	}{
		{"zero-failures", Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}, 0, 0},
		{"negative", Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}, -3, 0},
		{"first", Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}, 1, 50 * time.Millisecond},
		{"second", Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}, 2, 100 * time.Millisecond},
		{"fifth", Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}, 5, 800 * time.Millisecond},
		{"capped", Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}, 7, 2 * time.Second},
		{"far-past-cap", Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}, 500, 2 * time.Second},
		{"overflow-guard", Backoff{Base: time.Second, Max: 4 * time.Second}, 200, 4 * time.Second},
		{"uncapped", Backoff{Base: 10 * time.Millisecond}, 4, 80 * time.Millisecond},
		{"disabled", Backoff{}, 3, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.b.Next(tc.consecutive); got != tc.want {
				t.Fatalf("Next(%d) = %s, want %s", tc.consecutive, got, tc.want)
			}
		})
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// With a jitter source, Next(n) lands in [pure, pure + pure/2] —
	// the same bound the PR 5 subprocess slots used. Sample broadly and
	// check variance actually exists (a constant "jitter" defeats the
	// de-lockstep purpose).
	b := Backoff{Base: 40 * time.Millisecond, Max: 2 * time.Second, Rng: rand.New(rand.NewSource(1))}
	for _, consecutive := range []int{1, 2, 3, 6, 9} {
		pure := Backoff{Base: b.Base, Max: b.Max}.Next(consecutive)
		seen := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			d := b.Next(consecutive)
			if d < pure || d > pure+pure/2 {
				t.Fatalf("Next(%d) = %s outside [%s, %s]", consecutive, d, pure, pure+pure/2)
			}
			seen[d] = true
		}
		if len(seen) < 2 {
			t.Fatalf("Next(%d): 200 samples, no jitter variance", consecutive)
		}
	}
}

// fakeClock drives Breaker cooldowns without sleeping.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time          { return c.at }
func (c *fakeClock) advance(d time.Duration) { c.at = c.at.Add(d) }

func TestBreakerTransitions(t *testing.T) {
	clk := &fakeClock{at: time.Unix(0, 0)}
	b := &Breaker{Limit: 3, Cooldown: 5 * time.Second, Now: clk.now}

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker not closed")
	}
	// Two failures: still closed, streak counted.
	for i := 1; i <= 2; i++ {
		if opened := b.Failure(); opened {
			t.Fatalf("failure %d opened the breaker early", i)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker refused after %d failures", i)
		}
	}
	if b.Consecutive() != 2 {
		t.Fatalf("consecutive = %d, want 2", b.Consecutive())
	}
	// A success heals the streak entirely.
	b.Success()
	if b.Consecutive() != 0 || b.State() != BreakerClosed {
		t.Fatal("success did not reset the breaker")
	}
	// Limit consecutive failures open it — exactly on the Limit-th.
	if b.Failure() || b.Failure() {
		t.Fatal("opened before the limit")
	}
	if !b.Failure() {
		t.Fatal("limit-th failure did not report opening")
	}
	if b.Allow() || b.State() != BreakerOpen {
		t.Fatal("open breaker allowed a dispatch")
	}
	// Cooldown not yet elapsed: still open.
	clk.advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker allowed before the cooldown")
	}
	// Cooldown elapsed: half-open, one probe allowed.
	clk.advance(2 * time.Second)
	if !b.Allow() || b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	// Failed probe: reopens immediately (no Limit-sized grace), and
	// counts as a fresh degradation episode.
	if !b.Failure() {
		t.Fatal("failed half-open probe did not report reopening")
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed a dispatch")
	}
	// Next cooldown, successful probe: closed and healed.
	clk.advance(6 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed || b.Consecutive() != 0 {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestBreakerTerminalWithoutCooldown(t *testing.T) {
	// Cooldown <= 0 is the PR 5 subprocess-slot contract: once open,
	// open for the rest of the run.
	b := &Breaker{Limit: 2}
	b.Failure()
	if !b.Failure() {
		t.Fatal("second failure did not open")
	}
	clk := time.Now().Add(time.Hour)
	b.Now = func() time.Time { return clk }
	if b.Allow() || b.State() != BreakerOpen {
		t.Fatal("terminal breaker reopened after an hour")
	}
	// Further failures do not report new episodes.
	if b.Failure() {
		t.Fatal("already-open breaker reported opening again")
	}
}

func TestBreakerNeverOpensWithoutLimit(t *testing.T) {
	b := &Breaker{}
	for i := 0; i < 100; i++ {
		if b.Failure() {
			t.Fatal("limitless breaker opened")
		}
	}
	if !b.Allow() {
		t.Fatal("limitless breaker refused")
	}
}
