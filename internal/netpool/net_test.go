package netpool

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"cfaopc/internal/procpool"
	"cfaopc/internal/quarantine"
)

// echoRunner is the fake task executor behind every test server: one
// beat, optionally one partial, then a reply echoing the tile index.
func echoRunner() procpool.Runner {
	return func(_ context.Context, t *procpool.Task, sink procpool.Sink) procpool.Reply {
		index := t.Bundle.Tile.Index
		sink.Beat(index, 1, 0.25)
		if t.PartialEvery > 0 {
			sink.Partial(index, procpool.PartialState{Iter: 1, Params: []float64{1, 2}})
		}
		return procpool.Reply{Index: index, Path: "primary"}
	}
}

func task(index int) *procpool.Task {
	return &procpool.Task{Bundle: quarantine.Bundle{Tile: quarantine.Tile{Index: index}}}
}

// startServer runs srv on a fresh loopback listener; cleanup closes the
// listener and verifies Serve returned cleanly.
func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ln.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v on listener close", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("Serve did not return after listener close")
		}
	})
	return ln.Addr().String()
}

func awaitConn(t *testing.T, c *Conn, k procpool.EventKind) procpool.Event {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev := <-c.Events():
			if ev.Kind == k {
				return ev
			}
			if ev.Kind == procpool.EvExit {
				t.Fatalf("link died (err %v) while waiting for event kind %d", ev.Err, k)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for event kind %d", k)
		}
	}
}

func TestDialServeRoundTrip(t *testing.T) {
	addr := startServer(t, &Server{Runner: echoRunner})
	c, err := Dialer{Fingerprint: "cfg-A"}.Connect(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Kill()

	hello := awaitConn(t, c, procpool.EvHello)
	if hello.Hello.Version != procpool.ProtocolVersion {
		t.Fatalf("hello version = %d", hello.Hello.Version)
	}
	if hello.Hello.Fingerprint != "cfg-A" {
		t.Fatalf("hello fingerprint = %q, want echo of cfg-A", hello.Hello.Fingerprint)
	}
	if err := c.Send(task(11)); err != nil {
		t.Fatal(err)
	}
	if beat := awaitConn(t, c, procpool.EvBeat); beat.Beat.Index != 11 {
		t.Fatalf("beat index = %d", beat.Beat.Index)
	}
	if reply := awaitConn(t, c, procpool.EvReply); reply.Reply.Index != 11 || reply.Reply.Path != "primary" {
		t.Fatalf("reply = %+v", reply.Reply)
	}
	// A second task on the same session: the loop must survive.
	if err := c.Send(task(12)); err != nil {
		t.Fatal(err)
	}
	if reply := awaitConn(t, c, procpool.EvReply); reply.Reply.Index != 12 {
		t.Fatalf("second reply index = %d", reply.Reply.Index)
	}
	// Graceful close: the worker loop gets its EOF and the link winds
	// down with a clean exit.
	c.Close()
	if ev := <-c.Events(); ev.Kind != procpool.EvExit || ev.Err != io.EOF {
		t.Fatalf("after close: event %v err %v, want clean EvExit", ev.Kind, ev.Err)
	}
}

func TestPartialFramesForwarded(t *testing.T) {
	addr := startServer(t, &Server{Runner: echoRunner})
	c, err := Dialer{}.Connect(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Kill()
	awaitConn(t, c, procpool.EvHello)
	want := task(5)
	want.PartialEvery = 1
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	if p := awaitConn(t, c, procpool.EvPartial); p.Partial.Index != 5 || len(p.Partial.State.Params) != 2 {
		t.Fatalf("partial = %+v", p.Partial)
	}
	awaitConn(t, c, procpool.EvReply)
}

func TestHandshakePin(t *testing.T) {
	addr := startServer(t, &Server{Pin: "cfg-A", Runner: echoRunner})
	// The matching coordinator connects and works.
	c, err := Dialer{Fingerprint: "cfg-A"}.Connect(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	awaitConn(t, c, procpool.EvHello)
	c.Kill()
	// A coordinator with a different run config is refused at the
	// handshake — config skew never reaches a task.
	if _, err := (Dialer{Fingerprint: "cfg-B"}).Connect(context.Background(), addr); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	} else if !strings.Contains(err.Error(), "refused") {
		t.Fatalf("mismatch error = %v, want a worker refusal", err)
	}
	// No fingerprint at all is also a mismatch against a pinned worker.
	if _, err := (Dialer{}).Connect(context.Background(), addr); err == nil {
		t.Fatal("empty fingerprint accepted by pinned worker")
	}
}

func TestHandshakeVersionSkew(t *testing.T) {
	addr := startServer(t, &Server{Runner: echoRunner})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	payload, err := procpool.EncodeMessage(&procpool.Message{Hello: &procpool.Hello{
		Version: procpool.ProtocolVersion + 1, PID: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := procpool.WriteFrame(nc, payload); err != nil {
		t.Fatal(err)
	}
	answer, err := procpool.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := procpool.DecodeMessage(answer)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hello == nil || m.Hello.Reject == "" || !strings.Contains(m.Hello.Reject, "skew") {
		t.Fatalf("answer = %+v, want a version-skew reject", m)
	}
	// The reject is terminal: the worker closes the connection.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := procpool.ReadFrame(nc); err == nil {
		t.Fatal("worker kept the connection open after a reject")
	}
}

func TestHandshakeRejectsNonHelloFirstFrame(t *testing.T) {
	addr := startServer(t, &Server{Runner: echoRunner})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	payload, err := procpool.EncodeMessage(&procpool.Message{Ping: &procpool.Ping{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := procpool.WriteFrame(nc, payload); err != nil {
		t.Fatal(err)
	}
	answer, err := procpool.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := procpool.DecodeMessage(answer); err != nil || m.Hello == nil || m.Hello.Reject == "" {
		t.Fatalf("answer = %+v err %v, want a reject", m, err)
	}
}

func TestServerHandshakeDeadline(t *testing.T) {
	// A peer that connects and says nothing (port scanner, wedged
	// coordinator) is cut loose within the handshake deadline instead
	// of pinning a session goroutine.
	addr := startServer(t, &Server{Handshake: 200 * time.Millisecond, Runner: echoRunner})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("silent connection was answered")
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("silent connection held for %s", since)
	}
}

func TestConnectDeadlineOnSilentServer(t *testing.T) {
	// A listener that accepts and never answers the Hello: Connect must
	// fail within its handshake deadline, not hang the slot.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold it open, say nothing
		}
	}()
	start := time.Now()
	_, err = Dialer{Handshake: 200 * time.Millisecond}.Connect(context.Background(), ln.Addr().String())
	if err == nil {
		t.Fatal("silent server accepted")
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("Connect took %s against a silent server", since)
	}
}

func TestConnectRefusedPort(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := (Dialer{Handshake: 2 * time.Second}).Connect(context.Background(), addr); err == nil {
		t.Fatal("Connect to a dead port succeeded")
	}
}

func TestKillTearsDownSession(t *testing.T) {
	addr := startServer(t, &Server{Runner: echoRunner})
	c, err := Dialer{}.Connect(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	awaitConn(t, c, procpool.EvHello)
	c.Kill()
	// After Kill, sends fail promptly (the link is gone) — poll like
	// the procpool equivalent, since the close races the write.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.Send(task(1)); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Send kept succeeding after Kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Idempotent, and Close after Kill must not hang.
	c.Kill()
	c.Close()
}

func TestConnSurfacesServerDeath(t *testing.T) {
	// The server host dies mid-session (listener and session torn
	// down): the coordinator sees a terminal EvExit, not a hang.
	srv := &Server{Runner: echoRunner}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := Dialer{}.Connect(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Kill()
	awaitConn(t, c, procpool.EvHello)
	ln.Close()
	// Closing the listener alone leaves the session; kill it by
	// sending a frame the worker loop treats as fatal garbage.
	nc := c.nc
	nc.Close() // sever from the client side of the TCP pair
	ev := <-c.Events()
	if ev.Kind != procpool.EvExit || ev.Err == nil {
		t.Fatalf("event = %v err %v, want EvExit with error", ev.Kind, ev.Err)
	}
}

func TestProxyFaults(t *testing.T) {
	addr := startServer(t, &Server{Runner: echoRunner})
	// Each case dials the worker through a freshly scripted proxy and
	// asserts the coordinator-visible failure shape.
	t.Run("refuse", func(t *testing.T) {
		p, err := NewProxy(addr, ConnScript{Fault: FaultRefuse})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if _, err := (Dialer{Handshake: 2 * time.Second}).Connect(context.Background(), p.Addr()); err == nil {
			t.Fatal("refused connection handshook")
		}
		// The script list is per-connection: the next attempt heals.
		c, err := Dialer{}.Connect(context.Background(), p.Addr())
		if err != nil {
			t.Fatalf("second connection through proxy: %v", err)
		}
		defer c.Kill()
		awaitConn(t, c, procpool.EvHello)
		if got := p.Accepted(); got != 2 {
			t.Fatalf("proxy accepted %d connections, want 2", got)
		}
	})
	t.Run("cut", func(t *testing.T) {
		// Frame 1 server→client is the handshake answer; cutting after
		// it means the link dies on the first in-flight task.
		p, err := NewProxy(addr, ConnScript{Fault: FaultCut, AfterFrames: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := Dialer{}.Connect(context.Background(), p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Kill()
		awaitConn(t, c, procpool.EvHello)
		if err := c.Send(task(3)); err != nil {
			t.Fatal(err)
		}
		ev := awaitConn(t, c, procpool.EvExit)
		if ev.Err == nil {
			t.Fatal("cut link exited with nil error")
		}
	})
	t.Run("trunc", func(t *testing.T) {
		p, err := NewProxy(addr, ConnScript{Fault: FaultTrunc, AfterFrames: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := Dialer{}.Connect(context.Background(), p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Kill()
		awaitConn(t, c, procpool.EvHello)
		if err := c.Send(task(3)); err != nil {
			t.Fatal(err)
		}
		ev := awaitConn(t, c, procpool.EvExit)
		if !errors.Is(ev.Err, procpool.ErrTornFrame) {
			t.Fatalf("truncated frame exit err = %v, want ErrTornFrame", ev.Err)
		}
	})
	t.Run("garble", func(t *testing.T) {
		p, err := NewProxy(addr, ConnScript{Fault: FaultGarble, AfterFrames: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := Dialer{}.Connect(context.Background(), p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Kill()
		awaitConn(t, c, procpool.EvHello)
		if err := c.Send(task(3)); err != nil {
			t.Fatal(err)
		}
		ev := awaitConn(t, c, procpool.EvExit)
		if !errors.Is(ev.Err, procpool.ErrFrameCRC) {
			t.Fatalf("garbled frame exit err = %v, want ErrFrameCRC", ev.Err)
		}
	})
	t.Run("stall", func(t *testing.T) {
		p, err := NewProxy(addr, ConnScript{Fault: FaultStall, AfterFrames: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := Dialer{}.Connect(context.Background(), p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Kill()
		awaitConn(t, c, procpool.EvHello)
		if err := c.Send(task(3)); err != nil {
			t.Fatal(err)
		}
		// The link is open but nothing flows: no event arrives. This is
		// exactly the case only a silence watchdog (the flow's) can
		// detect; here we just assert the stall is real.
		select {
		case ev := <-c.Events():
			t.Fatalf("stalled link delivered %v", ev.Kind)
		case <-time.After(500 * time.Millisecond):
		}
	})
	t.Run("delay", func(t *testing.T) {
		p, err := NewProxy(addr, ConnScript{Fault: FaultDelay, AfterFrames: 1, Delay: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := Dialer{}.Connect(context.Background(), p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Kill()
		awaitConn(t, c, procpool.EvHello)
		if err := c.Send(task(3)); err != nil {
			t.Fatal(err)
		}
		// Latency, not failure: the reply still lands.
		if reply := awaitConn(t, c, procpool.EvReply); reply.Reply.Index != 3 {
			t.Fatalf("reply index = %d", reply.Reply.Index)
		}
	})
	t.Run("after-partials", func(t *testing.T) {
		// The mid-tile trigger: forward until one Partial snapshot has
		// crossed, then cut — the deterministic "host died after the
		// journal saw progress" scenario the flow tests build on.
		p, err := NewProxy(addr, ConnScript{Fault: FaultCut, AfterPartials: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := Dialer{}.Connect(context.Background(), p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Kill()
		awaitConn(t, c, procpool.EvHello)
		want := task(4)
		want.PartialEvery = 1
		if err := c.Send(want); err != nil {
			t.Fatal(err)
		}
		sawPartial := false
		for {
			select {
			case ev := <-c.Events():
				switch ev.Kind {
				case procpool.EvPartial:
					sawPartial = true
				case procpool.EvExit:
					if !sawPartial {
						t.Fatal("link cut before any partial crossed")
					}
					return
				case procpool.EvReply:
					t.Fatal("reply crossed a link scripted to cut after the partial")
				}
			case <-time.After(30 * time.Second):
				t.Fatal("timed out waiting for the scripted cut")
			}
		}
	})
}
