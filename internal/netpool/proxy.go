package netpool

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cfaopc/internal/procpool"
)

// FaultKind enumerates the link failures the chaos Proxy injects — the
// network analog of flow.InjectFaults' per-attempt fault script.
type FaultKind int

const (
	// FaultNone forwards faithfully (the explicit no-op script).
	FaultNone FaultKind = iota
	// FaultRefuse closes the connection immediately on accept — the
	// observable shape of a dead or partitioned host.
	FaultRefuse
	// FaultCut forwards until the trigger, then drops the connection —
	// a link failure or host death mid-tile.
	FaultCut
	// FaultTrunc forwards until the trigger, then ships half a frame
	// and drops the connection — a torn frame at the coordinator.
	FaultTrunc
	// FaultGarble forwards until the trigger, then flips one payload
	// byte — the CRC guard turns it into a poisoned-link detection.
	FaultGarble
	// FaultStall forwards until the trigger, then stops forwarding
	// while holding the connection open — a wedged remote; only the
	// silence watchdog can see it.
	FaultStall
	// FaultDelay adds a fixed pause before every worker→coordinator
	// frame from the trigger on — latency without failure.
	FaultDelay
)

// ConnScript is the fault schedule for one proxied connection. Faults
// fire on the worker→coordinator stream (the direction carrying
// replies, beats, and partials) once the trigger is reached: after
// AfterFrames forwarded frames, or — when AfterPartials > 0 — after
// that many Partial frames have been forwarded (the deterministic way
// to cut a link "mid-tile, after the journal saw a snapshot").
type ConnScript struct {
	Fault         FaultKind
	AfterFrames   int
	AfterPartials int
	Delay         time.Duration // FaultDelay's per-frame pause
}

// Proxy is a deterministic network fault injector: a TCP forwarder in
// front of a real worker host that applies a per-connection fault
// script, in accept order. Connections beyond the script list forward
// faithfully, so "fail twice, then heal" is the natural encoding.
// Because the scripts key on connection ordinals and frame counts —
// not on timing — a chaos run is reproducible.
type Proxy struct {
	ln      net.Listener
	target  string
	scripts []ConnScript

	mu       sync.Mutex
	accepted int

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and forwards each accepted
// connection to target under its script.
func NewProxy(target string, scripts ...ConnScript) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netpool: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, scripts: scripts, closed: make(chan struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's dial address — what the coordinator's RemoteHosts
// entry points at.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted reports how many connections the proxy has seen — the next
// connection gets script index Accepted().
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// Close stops accepting, tears down in-flight forwards, and waits for
// them to finish.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.ln.Close()
	})
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		n := p.accepted
		p.accepted++
		p.mu.Unlock()
		script := ConnScript{}
		if n < len(p.scripts) {
			script = p.scripts[n]
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.forward(client, script)
		}()
	}
}

// forward runs one proxied connection to completion under its script.
func (p *Proxy) forward(client net.Conn, script ConnScript) {
	defer client.Close()
	if script.Fault == FaultRefuse {
		return // accept, say nothing, hang up: a dead host
	}
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer server.Close()

	// Tear both sides down on proxy Close so a stalled connection does
	// not outlive the test.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-p.closed:
			client.Close()
			server.Close()
		case <-stop:
		}
	}()

	// Coordinator→worker: forwarded faithfully (the scripts model a
	// lossy return path; task frames either arrive or the cut kills
	// both directions anyway). Half-close propagates so the worker's
	// task loop sees its EOF on graceful coordinator shutdown.
	go func() {
		io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		} else {
			server.Close()
		}
	}()

	p.pump(client, server, script)
}

// pump forwards worker→coordinator frames, firing the script's fault at
// its trigger.
func (p *Proxy) pump(client, server net.Conn, script ConnScript) {
	frames, partials := 0, 0
	triggered := func() bool {
		if script.AfterPartials > 0 {
			return partials >= script.AfterPartials
		}
		return frames >= script.AfterFrames
	}
	for {
		header, payload, err := readRawFrame(server)
		if err != nil {
			return // worker closed or died: propagate by closing (deferred)
		}
		if script.Fault != FaultNone && triggered() {
			switch script.Fault {
			case FaultCut:
				return
			case FaultTrunc:
				client.Write(header)
				client.Write(payload[:len(payload)/2])
				return
			case FaultGarble:
				payload[len(payload)/2] ^= 0x40
				client.Write(header)
				client.Write(payload)
				return
			case FaultStall:
				// Hold both connections open, forward nothing: only a
				// silence watchdog can tell this from a slow tile.
				<-p.closed
				return
			case FaultDelay:
				select {
				case <-time.After(script.Delay):
				case <-p.closed:
					return
				}
			}
		}
		if _, err := client.Write(header); err != nil {
			return
		}
		if _, err := client.Write(payload); err != nil {
			return
		}
		frames++
		if isPartialFrame(payload) {
			partials++
		}
	}
}

// readRawFrame reads one length-prefixed frame (8-byte header +
// payload) without validating the CRC — the proxy forwards bytes, it
// does not speak the protocol, except to count frame boundaries.
func readRawFrame(r io.Reader) (header, payload []byte, err error) {
	header = make([]byte, 8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, nil, err
	}
	ln := binary.BigEndian.Uint32(header[0:4])
	if int(ln) > procpool.MaxFrameBytes {
		return nil, nil, fmt.Errorf("netpool: proxy saw oversized frame (%d bytes)", ln)
	}
	payload = make([]byte, ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, err
	}
	return header, payload, nil
}

// isPartialFrame reports whether a forwarded payload is a Partial
// snapshot frame — the AfterPartials trigger's counter.
func isPartialFrame(payload []byte) bool {
	m, err := procpool.DecodeMessage(payload)
	return err == nil && m.Partial != nil
}
