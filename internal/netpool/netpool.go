package netpool

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"cfaopc/internal/procpool"
)

// DefaultHandshake bounds the dial + Hello exchange when the caller
// does not set a deadline of its own.
const DefaultHandshake = 5 * time.Second

// Dialer opens coordinator-side connections to listening tile workers.
// The zero value dials plain TCP with the default handshake deadline
// and no fingerprint.
type Dialer struct {
	// Fingerprint is the run's config fingerprint, sent in the opening
	// Hello. A worker started with a fingerprint pin refuses a
	// coordinator whose fingerprint differs (config skew fails the
	// handshake, not the run).
	Fingerprint string
	// Handshake bounds the whole connect: dial, Hello out, Hello back.
	// Zero means DefaultHandshake.
	Handshake time.Duration
	// Dial overrides the transport (tests route through the chaos
	// proxy or in-memory pipes here). Nil dials TCP.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

func (d Dialer) handshake() time.Duration {
	if d.Handshake > 0 {
		return d.Handshake
	}
	return DefaultHandshake
}

// Connect dials addr and runs the bidirectional handshake: the
// coordinator's Hello (version + fingerprint) goes first, the worker
// answers with its own Hello (echoing the accepted fingerprint) or a
// Reject. Any skew — protocol version, fingerprint pin — and any
// silence past the handshake deadline fail here, before a single task
// is risked on the link.
func (d Dialer) Connect(ctx context.Context, addr string) (*Conn, error) {
	deadline := time.Now().Add(d.handshake())
	dctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	dial := d.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var nd net.Dialer
			return nd.DialContext(ctx, "tcp", addr)
		}
	}
	nc, err := dial(dctx, addr)
	if err != nil {
		return nil, fmt.Errorf("netpool: dial %s: %w", addr, err)
	}
	nc.SetDeadline(deadline)
	hello, err := shake(nc, d.Fingerprint)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("netpool: handshake with %s: %w", addr, err)
	}
	nc.SetDeadline(time.Time{})
	c := &Conn{
		nc:     nc,
		hello:  hello,
		events: make(chan procpool.Event, 64),
		done:   make(chan struct{}),
		dead:   make(chan struct{}),
	}
	go c.read()
	return c, nil
}

// shake performs the client half of the handshake on an
// already-deadlined conn and returns the worker's Hello.
func shake(nc net.Conn, fingerprint string) (*procpool.Hello, error) {
	out, err := procpool.EncodeMessage(&procpool.Message{Hello: &procpool.Hello{
		Version: procpool.ProtocolVersion, PID: os.Getpid(), Fingerprint: fingerprint,
	}})
	if err != nil {
		return nil, err
	}
	if err := procpool.WriteFrame(nc, out); err != nil {
		return nil, err
	}
	payload, err := procpool.ReadFrame(nc)
	if err != nil {
		return nil, err
	}
	m, err := procpool.DecodeMessage(payload)
	if err != nil {
		return nil, err
	}
	switch {
	case m.Hello == nil:
		return nil, fmt.Errorf("first frame is not a hello")
	case m.Hello.Reject != "":
		return nil, fmt.Errorf("worker refused: %s", m.Hello.Reject)
	case m.Hello.Version != procpool.ProtocolVersion:
		return nil, fmt.Errorf("worker speaks protocol v%d, coordinator v%d", m.Hello.Version, procpool.ProtocolVersion)
	}
	return m.Hello, nil
}

// Conn is one coordinator→worker TCP session after a successful
// handshake. It mirrors procpool.Worker's surface — tasks in via Send,
// everything out (including link death) via the Events stream — so the
// flow's supervisor slot drives subprocess pipes and remote links
// through one interface. The first event is always the worker's
// EvHello, replayed from the handshake.
type Conn struct {
	nc    net.Conn
	hello *procpool.Hello

	events chan procpool.Event
	done   chan struct{} // closed by Kill/Close: emit drops, no more delivery
	dead   chan struct{} // closed when the reader goroutine exits

	wmu       sync.Mutex
	killOnce  sync.Once
	closeOnce sync.Once
}

// Events is the session's output stream. It is never closed; EvExit is
// the last event delivered.
func (c *Conn) Events() <-chan procpool.Event { return c.events }

// Send frames one task to the worker.
func (c *Conn) Send(t *procpool.Task) error {
	payload, err := procpool.EncodeMessage(&procpool.Message{Task: t})
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return procpool.WriteFrame(c.nc, payload)
}

// Kill tears the link down immediately and stops event delivery — the
// remote analog of SIGKILLing a subprocess worker (the worker itself
// survives and serves its next coordinator).
func (c *Conn) Kill() {
	c.killOnce.Do(func() {
		close(c.done)
		c.nc.Close()
	})
}

// Close shuts the session down gracefully: half-closing the write side
// gives the worker loop its EOF, and the reader drains until the worker
// closes its end (bounded; then the link is torn down).
func (c *Conn) Close() {
	c.closeOnce.Do(func() {
		type closeWriter interface{ CloseWrite() error }
		if cw, ok := c.nc.(closeWriter); ok {
			c.wmu.Lock()
			cw.CloseWrite()
			c.wmu.Unlock()
			select {
			case <-c.dead:
			case <-time.After(2 * time.Second):
			}
		}
		c.Kill()
	})
}

// read decodes frames into events until the link breaks, then delivers
// the terminal EvExit — the same event grammar procpool.Worker emits,
// so one supervisor loop serves both transports.
func (c *Conn) read() {
	defer close(c.dead)
	// Replay the handshake as the first event: the flow's slot waits
	// for EvHello after connecting, uniformly across transports.
	c.emit(procpool.Event{Kind: procpool.EvHello, Hello: c.hello})
	var exitErr error
	for {
		payload, err := procpool.ReadFrame(c.nc)
		if err != nil {
			exitErr = err // io.EOF when the worker closed cleanly
			break
		}
		m, err := procpool.DecodeMessage(payload)
		if err != nil {
			exitErr = err
			break
		}
		switch {
		case m.Ping != nil:
			c.emit(procpool.Event{Kind: procpool.EvPing})
			continue
		case m.Beat != nil:
			c.emit(procpool.Event{Kind: procpool.EvBeat, Beat: m.Beat})
			continue
		case m.Partial != nil:
			c.emit(procpool.Event{Kind: procpool.EvPartial, Partial: m.Partial})
			continue
		case m.Reply != nil:
			c.emit(procpool.Event{Kind: procpool.EvReply, Reply: m.Reply})
			continue
		default:
			exitErr = fmt.Errorf("netpool: unexpected frame from worker")
		}
		break
	}
	c.nc.Close()
	c.emit(procpool.Event{Kind: procpool.EvExit, Err: exitErr})
}

// emit delivers ev unless the coordinator has abandoned this link.
func (c *Conn) emit(ev procpool.Event) {
	select {
	case c.events <- ev:
	case <-c.done:
	}
}
