package netpool

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"cfaopc/internal/procpool"
)

// Server turns a listener into a tile-worker host: each accepted
// connection is handshaken (version + optional fingerprint pin, under a
// deadline) and then served with procpool.ServeTasks — the same task
// loop a pipe worker runs, one session per coordinator connection.
type Server struct {
	// Pin, when non-empty, is the only config fingerprint this worker
	// accepts: a coordinator whose Hello carries anything else is
	// rejected at the handshake. Empty accepts any coordinator.
	Pin string
	// Handshake bounds the wait for the coordinator's Hello on a fresh
	// connection — a port-scanner or wedged peer is cut loose instead of
	// holding a session goroutine forever. Zero means DefaultHandshake.
	Handshake time.Duration
	// Runner builds the task executor for one session. Called once per
	// accepted connection, so sessions never share mutable state.
	Runner func() procpool.Runner
}

func (s *Server) handshake() time.Duration {
	if s.Handshake > 0 {
		return s.Handshake
	}
	return DefaultHandshake
}

// Serve accepts connections until the listener closes, serving each in
// its own goroutine. It returns nil when ln was closed (the normal
// shutdown path) and the accept error otherwise; it does not return
// until every in-flight session has finished.
func (s *Server) Serve(ln net.Listener) error {
	var sessions sync.WaitGroup
	defer sessions.Wait()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("netpool: accept: %w", err)
		}
		sessions.Add(1)
		go func() {
			defer sessions.Done()
			s.ServeConn(nc)
		}()
	}
}

// ServeConn runs one coordinator session to completion: handshake,
// then tasks until EOF. The connection is always closed on return. The
// returned error is diagnostic (the coordinator side decides policy);
// a clean EOF after the handshake returns nil.
func (s *Server) ServeConn(nc net.Conn) error {
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(s.handshake()))
	hello, err := s.accept(nc)
	if err != nil {
		return err
	}
	_ = hello
	nc.SetDeadline(time.Time{})
	return procpool.ServeTasks(nc, nc, s.Runner())
}

// accept reads and validates the coordinator's Hello and answers it —
// with an echo of the accepted fingerprint, or with a Reject (which is
// also the error returned) when the coordinator's version or config
// disagrees with this worker.
func (s *Server) accept(nc net.Conn) (*procpool.Hello, error) {
	payload, err := procpool.ReadFrame(nc)
	if err != nil {
		return nil, fmt.Errorf("netpool: read hello: %w", err)
	}
	m, err := procpool.DecodeMessage(payload)
	if err != nil {
		return nil, fmt.Errorf("netpool: decode hello: %w", err)
	}
	if m.Hello == nil {
		return nil, s.reject(nc, "first frame is not a hello")
	}
	if m.Hello.Version != procpool.ProtocolVersion {
		return nil, s.reject(nc, fmt.Sprintf("protocol skew: coordinator v%d, worker v%d", m.Hello.Version, procpool.ProtocolVersion))
	}
	if s.Pin != "" && m.Hello.Fingerprint != s.Pin {
		return nil, s.reject(nc, "config fingerprint mismatch: coordinator and worker were built for different runs")
	}
	answer, err := procpool.EncodeMessage(&procpool.Message{Hello: &procpool.Hello{
		Version: procpool.ProtocolVersion, PID: os.Getpid(), Fingerprint: m.Hello.Fingerprint,
	}})
	if err != nil {
		return nil, err
	}
	if err := procpool.WriteFrame(nc, answer); err != nil {
		return nil, fmt.Errorf("netpool: answer hello: %w", err)
	}
	return m.Hello, nil
}

// reject sends a terminal Reject hello (best-effort) and returns the
// reason as an error.
func (s *Server) reject(nc net.Conn, reason string) error {
	if payload, err := procpool.EncodeMessage(&procpool.Message{Hello: &procpool.Hello{
		Version: procpool.ProtocolVersion, PID: os.Getpid(), Reject: reason,
	}}); err == nil {
		procpool.WriteFrame(nc, payload)
	}
	return fmt.Errorf("netpool: handshake rejected: %s", reason)
}
