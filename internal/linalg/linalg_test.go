package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSymmetric(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64()*2 - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestSymEigDiagonal(t *testing.T) {
	m := NewDense(3, 3)
	m.Set(0, 0, 1)
	m.Set(1, 1, 5)
	m.Set(2, 2, 3)
	vals, vecs := SymEig(m)
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// First eigenvector should be ±e1 (the λ=5 axis).
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-10 {
		t.Fatalf("top eigenvector = column %v", []float64{vecs.At(0, 0), vecs.At(1, 0), vecs.At(2, 0)})
	}
}

func TestSymEig2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewDense(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	vals, _ := SymEig(m)
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
}

func eigResidual(a *Dense, vals []float64, vecs *Dense) float64 {
	n := a.Rows
	worst := 0.0
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			av := 0.0
			for j := 0; j < n; j++ {
				av += a.At(i, j) * vecs.At(j, k)
			}
			r := math.Abs(av - vals[k]*vecs.At(i, k))
			if r > worst {
				worst = r
			}
		}
	}
	return worst
}

func TestSymEigRandomResidual(t *testing.T) {
	for _, n := range []int{2, 5, 10, 25} {
		a := randSymmetric(n, int64(n))
		vals, vecs := SymEig(a)
		if r := eigResidual(a, vals, vecs); r > 1e-9 {
			t.Errorf("n=%d: residual %g", n, r)
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Errorf("n=%d: eigenvalues not sorted: %v", n, vals)
			}
		}
		// Columns orthonormal.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dot := 0.0
				for r := 0; r < n; r++ {
					dot += vecs.At(r, i) * vecs.At(r, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Errorf("n=%d: vecs not orthonormal at (%d,%d): %v", n, i, j, dot)
				}
			}
		}
	}
}

// Property: trace equals sum of eigenvalues.
func TestSymEigTrace(t *testing.T) {
	f := func(seed int64) bool {
		a := randSymmetric(8, seed)
		vals, _ := SymEig(a)
		tr, sum := 0.0, 0.0
		for i := 0; i < 8; i++ {
			tr += a.At(i, i)
			sum += vals[i]
		}
		return math.Abs(tr-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-square matrix")
		}
	}()
	SymEig(NewDense(2, 3))
}

func randHermitian(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	h := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		h[i*n+i] = complex(rng.Float64()*2-1, 0)
		for j := i + 1; j < n; j++ {
			v := complex(rng.Float64()*2-1, rng.Float64()*2-1)
			h[i*n+j] = v
			h[j*n+i] = cmplx.Conj(v)
		}
	}
	return h
}

func hermResidual(h []complex128, n int, vals []float64, vecs []complex128) float64 {
	worst := 0.0
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			var av complex128
			for j := 0; j < n; j++ {
				av += h[i*n+j] * vecs[j*n+k]
			}
			if r := cmplx.Abs(av - complex(vals[k], 0)*vecs[i*n+k]); r > worst {
				worst = r
			}
		}
	}
	return worst
}

func TestHermEigResidualAndOrthogonality(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		h := randHermitian(n, int64(n)+100)
		vals, vecs := HermEig(h, n)
		if r := hermResidual(h, n, vals, vecs); r > 1e-8 {
			t.Errorf("n=%d: residual %g", n, r)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var dot complex128
				for r := 0; r < n; r++ {
					dot += cmplx.Conj(vecs[r*n+i]) * vecs[r*n+j]
				}
				want := complex(0, 0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(dot-want) > 1e-8 {
					t.Errorf("n=%d: eigenvectors not orthonormal at (%d,%d): %v", n, i, j, dot)
				}
			}
		}
	}
}

func TestHermEigDegenerate(t *testing.T) {
	// Identity has a fully degenerate spectrum; the extraction must still
	// return n orthonormal eigenvectors with eigenvalue 1.
	n := 5
	h := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		h[i*n+i] = 1
	}
	vals, vecs := HermEig(h, n)
	for i, v := range vals {
		if math.Abs(v-1) > 1e-10 {
			t.Fatalf("vals[%d] = %v, want 1", i, v)
		}
	}
	if r := hermResidual(h, n, vals, vecs); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestHermEigRankOne(t *testing.T) {
	// h = u·u† has one eigenvalue ‖u‖² and the rest zero.
	n := 4
	u := []complex128{1 + 1i, 2, 0, -1i}
	normSq := 0.0
	h := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		normSq += real(u[i])*real(u[i]) + imag(u[i])*imag(u[i])
		for j := 0; j < n; j++ {
			h[i*n+j] = u[i] * cmplx.Conj(u[j])
		}
	}
	vals, _ := HermEig(h, n)
	if math.Abs(vals[0]-normSq) > 1e-9 {
		t.Fatalf("top eigenvalue %v, want %v", vals[0], normSq)
	}
	for _, v := range vals[1:] {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("trailing eigenvalue %v, want 0", v)
		}
	}
}

// Property: Hermitian trace equals eigenvalue sum.
func TestHermEigTrace(t *testing.T) {
	f := func(seed int64) bool {
		n := 6
		h := randHermitian(n, seed)
		vals, _ := HermEig(h, n)
		tr, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			tr += real(h[i*n+i])
			sum += vals[i]
		}
		return math.Abs(tr-sum) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
