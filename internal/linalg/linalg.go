// Package linalg provides the small dense linear-algebra kernel the optics
// package needs: a cyclic Jacobi eigensolver for real symmetric matrices
// and a Hermitian wrapper built on the standard real embedding. The
// matrices involved (Gram matrices of the partially-coherent source) are a
// few hundred rows, where Jacobi's simplicity and unconditional stability
// beat fancier O(n³) methods.
package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Dense is a dense row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SymEig computes the eigendecomposition of a real symmetric matrix using
// cyclic Jacobi rotations. It returns eigenvalues sorted in descending
// order and the matrix whose columns are the corresponding orthonormal
// eigenvectors. The input is not modified. Symmetry is assumed, not
// checked; only the upper triangle is consulted through the symmetrized
// working copy.
func SymEig(a *Dense) ([]float64, *Dense) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: SymEig needs a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	w := a.Clone()
	// Symmetrize to guard against tiny asymmetries from accumulation.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.5 * (w.At(i, j) + w.At(j, i))
			w.Set(i, j, s)
			w.Set(j, i, s)
		}
	}
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-26*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e18 {
					t = 1 / (2 * theta)
				} else {
					t = 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
					if theta < 0 {
						t = -t
					}
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				for k := 0; k < n; k++ {
					akp := w.At(k, p)
					akq := w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := w.At(p, k)
					aqk := w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })

	sortedVals := make([]float64, n)
	vecs := NewDense(n, n)
	for col, idx := range order {
		sortedVals[col] = vals[idx]
		for row := 0; row < n; row++ {
			vecs.Set(row, col, v.At(row, idx))
		}
	}
	return sortedVals, vecs
}

// HermEig computes the eigendecomposition of an n×n complex Hermitian
// matrix given in row-major order. It returns eigenvalues in descending
// order and orthonormal eigenvectors as columns of an n×n complex matrix
// (row-major, vecs[row*n+col]).
//
// It uses the standard real embedding S = [[Re(H), -Im(H)], [Im(H),
// Re(H)]], whose spectrum is that of H with every eigenvalue doubled; the
// duplicates are collapsed by taking every other sorted eigenpair.
func HermEig(h []complex128, n int) ([]float64, []complex128) {
	if len(h) != n*n {
		panic(fmt.Sprintf("linalg: HermEig matrix length %d does not match n=%d", len(h), n))
	}
	s := NewDense(2*n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			re, im := real(h[i*n+j]), imag(h[i*n+j])
			s.Set(i, j, re)
			s.Set(i+n, j+n, re)
			s.Set(i, j+n, -im)
			s.Set(i+n, j, im)
		}
	}
	vals, vecs := SymEig(s)

	// Each complex eigenvector v of H appears in the embedding as the real
	// 2D span of [Re v; Im v] and [Re(iv); Im(iv)], so its eigenvalue shows
	// up twice (degenerate eigenvalues of H even more often). Walk the
	// sorted columns, convert each to a complex candidate, and keep it only
	// if it is complex-linearly independent of the vectors already accepted
	// (Gram–Schmidt residual test). This stays correct for degenerate
	// spectra where naive every-other-column picking can return dependent
	// vectors.
	outVals := make([]float64, 0, n)
	accepted := make([][]complex128, 0, n)
	for col := 0; col < 2*n && len(accepted) < n; col++ {
		cand := make([]complex128, n)
		for row := 0; row < n; row++ {
			cand[row] = complex(vecs.At(row, col), vecs.At(row+n, col))
		}
		for _, u := range accepted {
			var proj complex128
			for i := range u {
				proj += complex(real(u[i]), -imag(u[i])) * cand[i]
			}
			for i := range cand {
				cand[i] -= proj * u[i]
			}
		}
		norm := 0.0
		for _, c := range cand {
			norm += real(c)*real(c) + imag(c)*imag(c)
		}
		if norm < 0.25 { // dependent on an already-accepted vector
			continue
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for i := range cand {
			cand[i] *= inv
		}
		accepted = append(accepted, cand)
		outVals = append(outVals, vals[col])
	}
	if len(accepted) != n {
		panic("linalg: HermEig failed to extract a full eigenbasis")
	}
	outVecs := make([]complex128, n*n)
	for k, v := range accepted {
		for row := 0; row < n; row++ {
			outVecs[row*n+k] = v[row]
		}
	}
	return outVals, outVecs
}
