package fracture

import (
	"math/rand"
	"testing"

	"cfaopc/internal/geom"
)

func TestCompactRemovesSwallowedShot(t *testing.T) {
	shots := []geom.Circle{
		{X: 20, Y: 20, R: 10},
		{X: 21, Y: 20, R: 3}, // entirely inside the big one
	}
	out := CompactShots(64, 64, shots)
	if len(out) != 1 {
		t.Fatalf("compacted to %d shots, want 1", len(out))
	}
	if out[0].R != 10 {
		t.Fatalf("kept the wrong shot: %+v", out[0])
	}
	if !UnionEquals(64, 64, shots, out) {
		t.Fatal("compaction changed the union")
	}
}

func TestCompactKeepsNecessaryShots(t *testing.T) {
	shots := []geom.Circle{
		{X: 15, Y: 20, R: 6},
		{X: 25, Y: 20, R: 6}, // overlapping but both contribute area
	}
	out := CompactShots(64, 64, shots)
	if len(out) != 2 {
		t.Fatalf("compacted to %d shots, want 2", len(out))
	}
}

func TestCompactEmptyAndSingle(t *testing.T) {
	if out := CompactShots(32, 32, nil); len(out) != 0 {
		t.Fatal("nil input")
	}
	one := []geom.Circle{{X: 5, Y: 5, R: 2}}
	out := CompactShots(32, 32, one)
	if len(out) != 1 {
		t.Fatal("single shot removed")
	}
	// Must be a copy.
	out[0].X = 99
	if one[0].X != 5 {
		t.Fatal("compaction aliases input")
	}
}

// Property: compaction never changes the union raster and never grows the
// shot list.
func TestCompactPreservesUnionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(25) + 2
		shots := make([]geom.Circle, n)
		for i := range shots {
			shots[i] = geom.Circle{
				X: rng.Float64()*40 + 10,
				Y: rng.Float64()*40 + 10,
				R: rng.Float64()*6 + 2,
			}
		}
		out := CompactShots(64, 64, shots)
		if len(out) > len(shots) {
			t.Fatalf("trial %d: compaction grew the list", trial)
		}
		if !UnionEquals(64, 64, shots, out) {
			t.Fatalf("trial %d: union changed", trial)
		}
	}
}

func TestCompactNestedCluster(t *testing.T) {
	// A chain of big circles with small ones sprinkled inside them: every
	// small circle is swallowed, the chain survives.
	var shots []geom.Circle
	for i := 0; i < 4; i++ {
		shots = append(shots, geom.Circle{X: 20 + float64(12*i), Y: 40, R: 10})
	}
	for i := 0; i < 6; i++ {
		shots = append(shots, geom.Circle{X: 22 + float64(6*i), Y: 41, R: 2})
	}
	out := CompactShots(96, 96, shots)
	if len(out) != 4 {
		t.Fatalf("compacted to %d shots, want the 4 big ones", len(out))
	}
	for _, c := range out {
		if c.R != 10 {
			t.Fatalf("kept a swallowed shot: %+v", c)
		}
	}
	if !UnionEquals(96, 96, shots, out) {
		t.Fatal("union changed")
	}
}

func TestCoverageHistogram(t *testing.T) {
	shots := []geom.Circle{
		{X: 10, Y: 10, R: 4},
		{X: 13, Y: 10, R: 4},
	}
	hist := CoverageHistogram(32, 32, shots)
	if len(hist) < 2 {
		t.Fatalf("hist = %v, want overlap bin", hist)
	}
	if hist[0] == 0 || hist[1] == 0 {
		t.Fatalf("hist = %v, want both single and double coverage", hist)
	}
	total := 0
	for _, v := range hist {
		total += v
	}
	union := int(geom.RasterizeCircles(32, 32, shots).Sum())
	if total != union {
		t.Fatalf("hist total %d != union %d", total, union)
	}
}
