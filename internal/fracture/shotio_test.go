package fracture

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cfaopc/internal/geom"
)

func TestShotsCSVRoundTrip(t *testing.T) {
	shots := []geom.Circle{
		{X: 10, Y: 20, R: 3},
		{X: 100.5, Y: 0, R: 19},
	}
	var buf bytes.Buffer
	if err := WriteShotsCSV(&buf, shots, 4); err != nil {
		t.Fatal(err)
	}
	back, err := ReadShotsCSV(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost shots: %d", len(back))
	}
	for i := range shots {
		if math.Abs(back[i].X-shots[i].X) > 0.05 || math.Abs(back[i].R-shots[i].R) > 0.05 {
			t.Fatalf("shot %d drifted: %+v vs %+v", i, back[i], shots[i])
		}
	}
}

func TestReadShotsCSVErrors(t *testing.T) {
	if _, err := ReadShotsCSV(strings.NewReader("1,2,3\n"), 0); err == nil {
		t.Error("zero dx accepted")
	}
	if _, err := ReadShotsCSV(strings.NewReader("a,b,c\n"), 4); err == nil {
		t.Error("garbage row accepted")
	}
	if _, err := ReadShotsCSV(strings.NewReader("10,10,-5\n"), 4); err == nil {
		t.Error("negative radius accepted")
	}
	// Header-only and empty input are fine.
	got, err := ReadShotsCSV(strings.NewReader("x_nm,y_nm,r_nm\n"), 4)
	if err != nil || len(got) != 0 {
		t.Errorf("header-only input: %v, %d shots", err, len(got))
	}
}

func TestRectShotsCSVRoundTrip(t *testing.T) {
	rects := []geom.Rect{{X: 5, Y: 6, W: 7, H: 8}, {X: 0, Y: 0, W: 100, H: 1}}
	var buf bytes.Buffer
	if err := WriteRectShotsCSV(&buf, rects, 2); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRectShotsCSV(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip lost rects: %d", len(back))
	}
	for i := range rects {
		if back[i] != rects[i] {
			t.Fatalf("rect %d drifted: %+v vs %+v", i, back[i], rects[i])
		}
	}
}

func TestReadRectShotsCSVErrors(t *testing.T) {
	if _, err := ReadRectShotsCSV(strings.NewReader("1,2,3,4\n"), 0); err == nil {
		t.Error("zero dx accepted")
	}
	if _, err := ReadRectShotsCSV(strings.NewReader("1,2,0,4\n"), 2); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := ReadRectShotsCSV(strings.NewReader("x,y\n1,2\n"), 2); err == nil {
		t.Error("short row accepted")
	}
}
