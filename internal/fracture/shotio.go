package fracture

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"cfaopc/internal/geom"
)

// WriteShotsCSV emits a circular shot list as "x_nm,y_nm,r_nm" rows — the
// interchange format a circular e-beam writer's data path would ingest.
// Shots are given in pixels and scaled by dxNM.
func WriteShotsCSV(w io.Writer, shots []geom.Circle, dxNM float64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "x_nm,y_nm,r_nm"); err != nil {
		return err
	}
	for _, s := range shots {
		if _, err := fmt.Fprintf(bw, "%.1f,%.1f,%.1f\n", s.X*dxNM, s.Y*dxNM, s.R*dxNM); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadShotsCSV parses the format written by WriteShotsCSV, returning shots
// in pixels of a grid with dxNM nanometers per pixel.
func ReadShotsCSV(r io.Reader, dxNM float64) ([]geom.Circle, error) {
	if dxNM <= 0 {
		return nil, fmt.Errorf("fracture: invalid pixel size %g", dxNM)
	}
	sc := bufio.NewScanner(r)
	var shots []geom.Circle
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "x_nm,y_nm,r_nm" {
			continue
		}
		var x, y, rad float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(line, ",", " "), "%g %g %g", &x, &y, &rad); err != nil {
			return nil, fmt.Errorf("fracture: shots line %d: %v", lineNo, err)
		}
		if rad <= 0 {
			return nil, fmt.Errorf("fracture: shots line %d: non-positive radius", lineNo)
		}
		shots = append(shots, geom.Circle{X: x / dxNM, Y: y / dxNM, R: rad / dxNM})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return shots, nil
}
