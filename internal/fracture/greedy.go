package fracture

import (
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
)

// GreedyCircleConfig parameterizes the set-cover fracturer.
type GreedyCircleConfig struct {
	RMin, RMax     float64 // radius bounds per shot (pixels)
	CoverThreshold float64 // per-circle cover-rate floor (like Algorithm 1's I)
	// MaxShots bounds the shot list; zero means unlimited (stop when no
	// legal circle adds coverage).
	MaxShots int
}

// GreedyCircles fractures a mask by greedy weighted set cover: repeatedly
// place the circle that covers the most not-yet-covered mask pixels,
// subject to the radius bounds and the cover-rate constraint (the circle
// may not spill more than 1-CoverThreshold of its area outside the mask).
// Candidate centers are the mask pixels; the candidate radius at a center
// is the largest legal one (greedy prefers big shots).
//
// This is an alternative to CircleRule's skeleton sampling: slower
// (O(shots · mask area)) but independent of thinning artifacts, and
// near-optimal in covered-area-per-shot by the classical 1-1/e set-cover
// guarantee. It serves as a shot-count reference point for both CircleRule
// and CircleOpt.
func GreedyCircles(mask *grid.Real, cfg GreedyCircleConfig) []geom.Circle {
	if cfg.RMin <= 0 || cfg.RMax < cfg.RMin || cfg.CoverThreshold <= 0 || cfg.CoverThreshold > 1 {
		panic("fracture: invalid greedy config")
	}
	w, h := mask.W, mask.H
	covered := grid.NewReal(w, h)

	// Largest legal radius per center, from the distance transform of the
	// background: a circle of radius r at p keeps cover-rate ≈ 1 while
	// r ≲ dist(p, background); the cover-rate check then fine-tunes.
	inv := grid.NewReal(w, h)
	for i, v := range mask.Data {
		if v <= 0.5 {
			inv.Data[i] = 1
		}
	}
	edt := geom.DistanceTransform(inv)

	// legalRadius grows the radius from the EDT estimate while the
	// cover-rate constraint holds.
	legalRadius := func(x, y int) float64 {
		r := edt.Data[y*w+x] - 0.5
		if r < cfg.RMin {
			r = cfg.RMin
		}
		if r > cfg.RMax {
			r = cfg.RMax
		}
		// Expand in half-pixel steps while legal, like selectRadius.
		for r+0.5 <= cfg.RMax {
			c := geom.Circle{X: float64(x), Y: float64(y), R: r + 0.5}
			if geom.CoverRate(c, mask) < cfg.CoverThreshold {
				break
			}
			r += 0.5
		}
		if geom.CoverRate(geom.Circle{X: float64(x), Y: float64(y), R: r}, mask) < cfg.CoverThreshold {
			return 0 // even the minimum radius spills too much
		}
		return r
	}

	gain := func(c geom.Circle) int {
		r2 := c.R * c.R
		g := 0
		x0, x1 := int(c.X-c.R-1), int(c.X+c.R+1)
		y0, y1 := int(c.Y-c.R-1), int(c.Y+c.R+1)
		for y := y0; y <= y1; y++ {
			if y < 0 || y >= h {
				continue
			}
			dy := float64(y) - c.Y
			for x := x0; x <= x1; x++ {
				if x < 0 || x >= w {
					continue
				}
				dx := float64(x) - c.X
				if dx*dx+dy*dy <= r2 && mask.Data[y*w+x] > 0.5 && covered.Data[y*w+x] <= 0.5 {
					g++
				}
			}
		}
		return g
	}

	// The legal radius depends only on the mask, not on coverage, so it is
	// computed once per candidate center.
	radii := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if mask.Data[y*w+x] > 0.5 {
				radii[y*w+x] = legalRadius(x, y)
			}
		}
	}

	var shots []geom.Circle
	for cfg.MaxShots == 0 || len(shots) < cfg.MaxShots {
		bestGain := 0
		var best geom.Circle
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				r := radii[y*w+x]
				if r <= 0 || covered.Data[y*w+x] > 0.5 {
					continue
				}
				c := geom.Circle{X: float64(x), Y: float64(y), R: r}
				if g := gain(c); g > bestGain {
					bestGain = g
					best = c
				}
			}
		}
		if bestGain == 0 {
			break
		}
		shots = append(shots, best)
		paintCircle(covered, best)
	}
	return shots
}
