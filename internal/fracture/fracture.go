// Package fracture converts optimized masks into writer shot lists: the
// traditional VSB path (Manhattanization followed by minimum rectangle
// partition) and the paper's CircleRule (Algorithm 1), which tessellates
// curvilinear shapes with overlapping variable-radius circles for the
// circular e-beam writer.
package fracture

import (
	"fmt"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
)

// Manhattanize snaps a (curvilinear) binary mask to a coarser rectilinear
// grid of blockPx×blockPx pixel blocks by majority vote, the mask data
// preparation step that precedes VSB fracturing. blockPx = 1 returns a
// binarized copy. Non-manifold corners are removed afterwards so the
// result is always partitionable.
func Manhattanize(m *grid.Real, blockPx int) *grid.Real {
	if blockPx < 1 {
		panic(fmt.Sprintf("fracture: invalid block size %d", blockPx))
	}
	out := m.Binarize(0.5)
	if blockPx > 1 {
		for by := 0; by < m.H; by += blockPx {
			for bx := 0; bx < m.W; bx += blockPx {
				cnt, tot := 0, 0
				for y := by; y < by+blockPx && y < m.H; y++ {
					for x := bx; x < bx+blockPx && x < m.W; x++ {
						tot++
						if m.Data[y*m.W+x] > 0.5 {
							cnt++
						}
					}
				}
				v := 0.0
				if 2*cnt >= tot {
					v = 1
				}
				for y := by; y < by+blockPx && y < m.H; y++ {
					for x := bx; x < bx+blockPx && x < m.W; x++ {
						out.Data[y*m.W+x] = v
					}
				}
			}
		}
	}
	geom.RemoveCheckerboards(out)
	return out
}

// RectShots Manhattanizes the mask on a blockPx grid and fractures it into
// the minimum set of axis-aligned rectangles — the VSB shot list the paper
// compares against (Figure 1a).
func RectShots(m *grid.Real, blockPx int) []geom.Rect {
	return geom.PartitionRects(Manhattanize(m, blockPx))
}

// CircleRuleConfig parameterizes Algorithm 1. All lengths are in pixels of
// the mask grid.
type CircleRuleConfig struct {
	SampleDist     int     // m: skeleton steps between consecutive circles
	RMin, RMax     float64 // radius bounds per shot
	CoverThreshold float64 // I: stop growing when |C∩A|/|C| drops below
	// DisableRepair turns off the post-skeleton coverage-repair pass,
	// leaving exactly the circles Algorithm 1's pseudocode places. Used by
	// the ablation benches; wide regions then stay under-covered.
	DisableRepair bool
}

// DefaultCircleRuleConfig returns the paper's settings (m = 32 nm, R ∈
// [12, 76] nm, I = 0.9) converted to pixels for the given resolution.
func DefaultCircleRuleConfig(dxNM float64) CircleRuleConfig {
	return CircleRuleConfig{
		SampleDist:     maxInt(1, int(32/dxNM+0.5)),
		RMin:           12 / dxNM,
		RMax:           76 / dxNM,
		CoverThreshold: 0.9,
	}
}

func (c CircleRuleConfig) validate() {
	if c.SampleDist < 1 || c.RMin <= 0 || c.RMax < c.RMin || c.CoverThreshold <= 0 || c.CoverThreshold > 1 {
		panic(fmt.Sprintf("fracture: invalid CircleRule config %+v", c))
	}
}

// CircleRule fractures a binary mask into overlapping circles following
// Algorithm 1: split the mask into 8-connected regions, skeletonize each,
// DFS-walk the skeleton sampling a center every SampleDist steps, and grow
// each circle's radius from RMin until the cover rate |C∩A|/|C| drops
// below CoverThreshold (taking RMax when it never drops — the interior
// case the paper's pseudocode leaves implicit, without which fat regions
// would not be covered).
//
// The DFS start point is the first skeleton pixel in scan order rather
// than a random one, making the fracturing deterministic.
func CircleRule(mask *grid.Real, cfg CircleRuleConfig) []geom.Circle {
	cfg.validate()
	var shots []geom.Circle
	labels := geom.Components(mask, true)
	for id := 1; id <= labels.N; id++ {
		region := labels.Region(id)
		skel := geom.Skeleton(region)
		pts := geom.SkeletonPoints(skel)
		if len(pts) == 0 {
			continue
		}
		regionShots := walkSkeleton(skel, region, pts[0], cfg)
		if !cfg.DisableRepair {
			regionShots = repairCoverage(region, regionShots, cfg)
		}
		shots = append(shots, regionShots...)
	}
	return shots
}

// repairCoverage adds circles for mask areas the skeleton walk left bare.
// Zhang–Suen thinning collapses wide blobs (anything broader than 2·RMax,
// like the 320 nm block of case 10) toward a point, so skeleton sampling
// alone under-covers them. Greedily place a circle at the deepest
// uncovered pixel — radius chosen by the same cover-rate rule as Algorithm
// 1 — until no uncovered pocket can fit a legal RMin circle.
func repairCoverage(region *grid.Real, shots []geom.Circle, cfg CircleRuleConfig) []geom.Circle {
	covered := geom.RasterizeCircles(region.W, region.H, shots)
	for guard := 0; guard < 4096; guard++ {
		uncovered := grid.NewReal(region.W, region.H)
		anyUncovered := false
		for i := range region.Data {
			if region.Data[i] > 0.5 && covered.Data[i] <= 0.5 {
				uncovered.Data[i] = 1
				anyUncovered = true
			}
		}
		if !anyUncovered {
			break
		}
		// Depth of each uncovered pixel = distance to the nearest pixel
		// that is covered or outside the mask.
		complement := grid.NewReal(region.W, region.H)
		for i := range complement.Data {
			if uncovered.Data[i] <= 0.5 {
				complement.Data[i] = 1
			}
		}
		depth := geom.DistanceTransform(complement)
		best, bestIdx := 0.0, -1
		for i, v := range depth.Data {
			if uncovered.Data[i] > 0.5 && v > best {
				best = v
				bestIdx = i
			}
		}
		if bestIdx < 0 || best < cfg.RMin {
			break // remaining slivers cannot host a legal circle
		}
		p := geom.Pt{X: bestIdx % region.W, Y: bestIdx / region.W}
		c, ok := selectRadius(p, region, cfg)
		if !ok {
			break
		}
		shots = append(shots, c)
		paintCircle(covered, c)
	}
	return shots
}

// paintCircle incrementally adds one circle to a coverage raster.
func paintCircle(m *grid.Real, c geom.Circle) {
	r2 := c.R * c.R
	x0, x1 := int(c.X-c.R-1), int(c.X+c.R+1)
	y0, y1 := int(c.Y-c.R-1), int(c.Y+c.R+1)
	for y := y0; y <= y1; y++ {
		if y < 0 || y >= m.H {
			continue
		}
		dy := float64(y) - c.Y
		for x := x0; x <= x1; x++ {
			if x < 0 || x >= m.W {
				continue
			}
			dx := float64(x) - c.X
			if dx*dx+dy*dy <= r2 {
				m.Data[y*m.W+x] = 1
			}
		}
	}
}

// walkSkeleton runs the DFS sampling (Algorithm 1 lines 9–23) over one
// region's skeleton.
func walkSkeleton(skel, region *grid.Real, start geom.Pt, cfg CircleRuleConfig) []geom.Circle {
	w, h := skel.W, skel.H
	visited := make([]bool, w*h)
	type item struct {
		p   geom.Pt
		cnt int
	}
	stack := []item{{start, 0}}
	var shots []geom.Circle
	neigh := [8][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := it.p.Y*w + it.p.X
		if visited[idx] {
			continue
		}
		visited[idx] = true
		for _, d := range neigh {
			nx, ny := it.p.X+d[0], it.p.Y+d[1]
			if nx < 0 || nx >= w || ny < 0 || ny >= h {
				continue
			}
			ni := ny*w + nx
			if skel.Data[ni] > 0.5 && !visited[ni] {
				stack = append(stack, item{geom.Pt{X: nx, Y: ny}, it.cnt + 1})
			}
		}
		if it.cnt%cfg.SampleDist == 0 {
			if c, ok := selectRadius(it.p, region, cfg); ok {
				shots = append(shots, c)
			}
		}
	}
	return shots
}

// selectRadius implements the circle radius selection (lines 19–23): grow
// r in half-pixel steps from RMin (the paper grows in 1 nm steps at 1
// nm/px; half-pixel steps keep a comparable granularity relative to the
// feature size on coarser grids); emit the first circle whose cover rate
// drops below the threshold, or an RMax circle if cover never drops.
func selectRadius(p geom.Pt, region *grid.Real, cfg CircleRuleConfig) (geom.Circle, bool) {
	prev := cfg.RMin
	for r := cfg.RMin; ; r += 0.5 {
		if r > cfg.RMax {
			r = cfg.RMax
		}
		c := geom.Circle{X: float64(p.X), Y: float64(p.Y), R: r}
		if geom.CoverRate(c, region) < cfg.CoverThreshold {
			// The paper emits the first circle past the threshold; at 1
			// nm/px that overshoots the mask boundary by ≤1 nm, but at
			// coarser grids the overshoot bloats the union (many
			// overlapping spills), so emit the last compliant radius
			// instead — the same circle in the paper's resolution limit.
			c.R = prev
			return c, true
		}
		if r == cfg.RMax {
			return c, true // interior point: cover never dropped
		}
		prev = r
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
