package fracture

import (
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
)

func greedyCfg() GreedyCircleConfig {
	return GreedyCircleConfig{RMin: 2, RMax: 12, CoverThreshold: 0.9}
}

func TestGreedyCirclesDiskIsOneShot(t *testing.T) {
	m := grid.NewReal(48, 48)
	disk(m, 24, 24, 8)
	shots := GreedyCircles(m, greedyCfg())
	if len(shots) == 0 {
		t.Fatal("no shots")
	}
	// The first (largest-gain) shot should nearly cover the whole disk.
	first := geom.RasterizeCircles(48, 48, shots[:1])
	inter := 0
	for i := range m.Data {
		if m.Data[i] > 0.5 && first.Data[i] > 0.5 {
			inter++
		}
	}
	if float64(inter)/m.Sum() < 0.7 {
		t.Fatalf("first greedy shot covers only %.2f of the disk", float64(inter)/m.Sum())
	}
}

func TestGreedyCirclesCoverage(t *testing.T) {
	m := grid.NewReal(64, 64)
	for y := 12; y < 52; y++ {
		for x := 24; x < 40; x++ {
			m.Set(x, y, 1)
		}
	}
	shots := GreedyCircles(m, greedyCfg())
	rec := geom.RasterizeCircles(64, 64, shots)
	covered := 0
	for i := range m.Data {
		if m.Data[i] > 0.5 && rec.Data[i] > 0.5 {
			covered++
		}
	}
	if frac := float64(covered) / m.Sum(); frac < 0.85 {
		t.Fatalf("greedy covers only %.2f of the bar", frac)
	}
	for _, c := range shots {
		if c.R < 2-1e-9 || c.R > 12+1e-9 {
			t.Fatalf("radius %v out of bounds", c.R)
		}
	}
}

func TestGreedyFewerShotsThanDenseCircleRule(t *testing.T) {
	// Greedy's big-shot preference should not lose badly to a densely
	// sampled CircleRule on the same shape.
	m := grid.NewReal(64, 64)
	for y := 10; y < 54; y++ {
		for x := 26; x < 38; x++ {
			m.Set(x, y, 1)
		}
	}
	greedy := GreedyCircles(m, greedyCfg())
	dense := CircleRule(m, CircleRuleConfig{SampleDist: 1, RMin: 2, RMax: 12, CoverThreshold: 0.9})
	if len(greedy) > len(dense) {
		t.Fatalf("greedy (%d) worse than 1px-sampled CircleRule (%d)", len(greedy), len(dense))
	}
}

func TestGreedyMaxShots(t *testing.T) {
	m := grid.NewReal(64, 64)
	for y := 10; y < 54; y++ {
		for x := 20; x < 44; x++ {
			m.Set(x, y, 1)
		}
	}
	shots := GreedyCircles(m, GreedyCircleConfig{RMin: 2, RMax: 8, CoverThreshold: 0.9, MaxShots: 3})
	if len(shots) != 3 {
		t.Fatalf("MaxShots ignored: %d shots", len(shots))
	}
}

func TestGreedyEmptyMask(t *testing.T) {
	if shots := GreedyCircles(grid.NewReal(32, 32), greedyCfg()); len(shots) != 0 {
		t.Fatalf("empty mask produced %d shots", len(shots))
	}
}

func TestGreedyPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GreedyCircles(grid.NewReal(8, 8), GreedyCircleConfig{RMin: 5, RMax: 2, CoverThreshold: 0.9})
}
