package fracture

import (
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
)

// disk paints a filled circle for test masks.
func disk(m *grid.Real, cx, cy int, r float64) {
	r2 := r * r
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			dx, dy := float64(x-cx), float64(y-cy)
			if dx*dx+dy*dy <= r2 {
				m.Set(x, y, 1)
			}
		}
	}
}

func TestManhattanizeIdentityAtBlockOne(t *testing.T) {
	m := grid.NewReal(16, 16)
	disk(m, 8, 8, 5)
	out := Manhattanize(m, 1)
	// Identity up to checkerboard cleanup, which for a disk changes nothing.
	if out.SqDiff(m.Binarize(0.5)) != 0 {
		t.Fatal("block=1 Manhattanize is not the identity")
	}
}

func TestManhattanizeMajority(t *testing.T) {
	m := grid.NewReal(4, 4)
	// Top-left 2×2 block: 3 of 4 filled → block filled.
	m.Set(0, 0, 1)
	m.Set(1, 0, 1)
	m.Set(0, 1, 1)
	// Bottom-right block: 1 of 4 filled → block empty.
	m.Set(3, 3, 1)
	out := Manhattanize(m, 2)
	if out.At(1, 1) != 1 {
		t.Fatal("majority block not filled")
	}
	if out.At(3, 3) != 0 || out.At(2, 2) != 0 {
		t.Fatal("minority block not cleared")
	}
}

func TestManhattanizePanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Manhattanize(grid.NewReal(4, 4), 0)
}

func TestRectShotsOnRectangleIsOne(t *testing.T) {
	m := grid.NewReal(32, 32)
	for y := 8; y < 24; y++ {
		for x := 8; x < 16; x++ {
			m.Set(x, y, 1)
		}
	}
	shots := RectShots(m, 1)
	if len(shots) != 1 {
		t.Fatalf("rectangle fractured into %d shots", len(shots))
	}
}

func TestRectShotsCurvilinearCostsMore(t *testing.T) {
	// Figure 1's premise: a circle needs many rectangles but one circular
	// shot.
	m := grid.NewReal(64, 64)
	disk(m, 32, 32, 14)
	rects := RectShots(m, 1)
	if len(rects) < 8 {
		t.Fatalf("disk fractured into only %d rects; staircase expected", len(rects))
	}
	cfg := CircleRuleConfig{SampleDist: 8, RMin: 2, RMax: 20, CoverThreshold: 0.9}
	circles := CircleRule(m, cfg)
	if len(circles) == 0 {
		t.Fatal("CircleRule produced no shots")
	}
	if len(circles) >= len(rects) {
		t.Fatalf("circular fracturing (%d) not cheaper than rect (%d)", len(circles), len(rects))
	}
}

func TestCircleRuleCoversMask(t *testing.T) {
	m := grid.NewReal(64, 64)
	disk(m, 32, 32, 12)
	cfg := CircleRuleConfig{SampleDist: 4, RMin: 2, RMax: 16, CoverThreshold: 0.9}
	circles := CircleRule(m, cfg)
	rec := geom.RasterizeCircles(64, 64, circles)
	inter, union, maskArea := 0, 0, 0
	for i := range m.Data {
		a := m.Data[i] > 0.5
		b := rec.Data[i] > 0.5
		if a {
			maskArea++
		}
		if a && b {
			inter++
		}
		if a || b {
			union++
		}
	}
	if iou := float64(inter) / float64(union); iou < 0.75 {
		t.Fatalf("circle reconstruction IoU %.2f too low", iou)
	}
	if cov := float64(inter) / float64(maskArea); cov < 0.8 {
		t.Fatalf("circle reconstruction covers only %.2f of the mask", cov)
	}
}

func TestCircleRuleRespectsRadiusBounds(t *testing.T) {
	m := grid.NewReal(64, 64)
	disk(m, 20, 20, 10)
	disk(m, 45, 45, 4)
	cfg := CircleRuleConfig{SampleDist: 4, RMin: 3, RMax: 8, CoverThreshold: 0.9}
	for _, c := range CircleRule(m, cfg) {
		if c.R < cfg.RMin-1e-9 || c.R > cfg.RMax+1e-9 {
			t.Fatalf("shot radius %v outside [%v, %v]", c.R, cfg.RMin, cfg.RMax)
		}
	}
}

func TestCircleRuleEmptyMask(t *testing.T) {
	cfg := CircleRuleConfig{SampleDist: 4, RMin: 2, RMax: 8, CoverThreshold: 0.9}
	if got := CircleRule(grid.NewReal(32, 32), cfg); len(got) != 0 {
		t.Fatalf("empty mask produced %d shots", len(got))
	}
}

func TestCircleRulePerRegion(t *testing.T) {
	// Two disjoint disks must each receive at least one shot.
	m := grid.NewReal(64, 64)
	disk(m, 16, 16, 7)
	disk(m, 48, 48, 7)
	cfg := CircleRuleConfig{SampleDist: 8, RMin: 2, RMax: 12, CoverThreshold: 0.9}
	circles := CircleRule(m, cfg)
	left, right := 0, 0
	for _, c := range circles {
		if c.X < 32 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Fatalf("shots not distributed over regions: left=%d right=%d", left, right)
	}
}

func TestCircleRuleSampleDistanceMonotonicity(t *testing.T) {
	// Larger sample distance must not increase the shot count (Figure 7a).
	m := grid.NewReal(96, 96)
	for y := 20; y < 76; y++ {
		for x := 40; x < 56; x++ {
			m.Set(x, y, 1)
		}
	}
	prev := 1 << 30
	for _, sd := range []int{2, 4, 8, 16} {
		cfg := CircleRuleConfig{SampleDist: sd, RMin: 3, RMax: 12, CoverThreshold: 0.9}
		n := len(CircleRule(m, cfg))
		if n > prev {
			t.Fatalf("shot count grew with sample distance: %d → %d at sd=%d", prev, n, sd)
		}
		prev = n
	}
}

func TestDefaultCircleRuleConfigScales(t *testing.T) {
	c1 := DefaultCircleRuleConfig(1)
	if c1.SampleDist != 32 || c1.RMin != 12 || c1.RMax != 76 {
		t.Fatalf("dx=1 config %+v", c1)
	}
	c4 := DefaultCircleRuleConfig(4)
	if c4.SampleDist != 8 || c4.RMin != 3 || c4.RMax != 19 {
		t.Fatalf("dx=4 config %+v", c4)
	}
}

func TestCircleRuleDeterministic(t *testing.T) {
	m := grid.NewReal(64, 64)
	disk(m, 32, 32, 12)
	cfg := CircleRuleConfig{SampleDist: 4, RMin: 2, RMax: 16, CoverThreshold: 0.9}
	a := CircleRule(m, cfg)
	b := CircleRule(m, cfg)
	if len(a) != len(b) {
		t.Fatal("CircleRule not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CircleRule shot order not deterministic")
		}
	}
}
