package fracture

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"cfaopc/internal/geom"
)

// WriteRectShotsCSV emits a VSB rectangle shot list as
// "x_nm,y_nm,w_nm,h_nm" rows, the rectangular counterpart of
// WriteShotsCSV. Rects are in pixels and scaled by dxNM.
func WriteRectShotsCSV(w io.Writer, rects []geom.Rect, dxNM float64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "x_nm,y_nm,w_nm,h_nm"); err != nil {
		return err
	}
	for _, r := range rects {
		if _, err := fmt.Fprintf(bw, "%.1f,%.1f,%.1f,%.1f\n",
			float64(r.X)*dxNM, float64(r.Y)*dxNM,
			float64(r.W)*dxNM, float64(r.H)*dxNM); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRectShotsCSV parses the format written by WriteRectShotsCSV back
// into pixel rects.
func ReadRectShotsCSV(r io.Reader, dxNM float64) ([]geom.Rect, error) {
	if dxNM <= 0 {
		return nil, fmt.Errorf("fracture: invalid pixel size %g", dxNM)
	}
	sc := bufio.NewScanner(r)
	var rects []geom.Rect
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line == "x_nm,y_nm,w_nm,h_nm" {
			continue
		}
		var x, y, w, h float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(line, ",", " "), "%g %g %g %g", &x, &y, &w, &h); err != nil {
			return nil, fmt.Errorf("fracture: rect shots line %d: %v", lineNo, err)
		}
		if w <= 0 || h <= 0 {
			return nil, fmt.Errorf("fracture: rect shots line %d: non-positive size", lineNo)
		}
		rects = append(rects, geom.Rect{
			X: int(x/dxNM + 0.5), Y: int(y/dxNM + 0.5),
			W: int(w/dxNM + 0.5), H: int(h/dxNM + 0.5),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rects, nil
}
