package fracture

import (
	"math"

	"cfaopc/internal/geom"
)

// TravelLength returns the total beam travel of a shot sequence: the sum
// of center-to-center distances in writing order (pixels). Stage settling
// between flashes is a real component of mask write time, so shot lists
// should be ordered before hand-off to the writer.
func TravelLength(shots []geom.Circle) float64 {
	total := 0.0
	for i := 1; i < len(shots); i++ {
		total += math.Hypot(shots[i].X-shots[i-1].X, shots[i].Y-shots[i-1].Y)
	}
	return total
}

// OrderShots returns the shots reordered to reduce beam travel: a
// nearest-neighbour construction from the first shot, followed by a
// bounded 2-opt improvement pass (classic open-path TSP heuristics; exact
// ordering is immaterial as long as travel shrinks, which the tests
// assert). The input slice is not modified.
func OrderShots(shots []geom.Circle) []geom.Circle {
	n := len(shots)
	if n <= 2 {
		return append([]geom.Circle(nil), shots...)
	}
	dist := func(a, b geom.Circle) float64 {
		return math.Hypot(a.X-b.X, a.Y-b.Y)
	}

	// Nearest-neighbour chain.
	used := make([]bool, n)
	order := make([]int, 0, n)
	cur := 0
	used[0] = true
	order = append(order, 0)
	for len(order) < n {
		best := -1
		bestD := math.Inf(1)
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			if d := dist(shots[cur], shots[j]); d < bestD {
				bestD = d
				best = j
			}
		}
		used[best] = true
		order = append(order, best)
		cur = best
	}

	// Bounded 2-opt: reverse segments while it helps, a few sweeps.
	for sweep := 0; sweep < 4; sweep++ {
		improved := false
		for i := 0; i+2 < n; i++ {
			for j := i + 2; j < n; j++ {
				a, b := shots[order[i]], shots[order[i+1]]
				c := shots[order[j]]
				before := dist(a, b)
				var after float64
				if j+1 < n {
					d := shots[order[j+1]]
					before += dist(c, d)
					after = dist(a, c) + dist(b, d)
				} else {
					after = dist(a, c) // open path: last edge disappears
				}
				if after+1e-12 < before {
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						order[lo], order[hi] = order[hi], order[lo]
					}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}

	out := make([]geom.Circle, n)
	for i, idx := range order {
		out[i] = shots[idx]
	}
	return out
}
