package fracture

import (
	"sort"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
)

// CompactShots removes circles that are redundant: shots whose covered
// mask pixels are already covered by the union of the remaining shots.
// Candidates are examined smallest-radius first (small skeleton circles
// are the usual redundancy, swallowed by their larger neighbours), and a
// shot is dropped only when removal does not uncover a single pixel of
// the union the input shot list produces on a w×h grid.
//
// The result prints identically to the input — the union raster is
// unchanged — so compaction is a pure shot-count (write time) win, the
// circular-writer analogue of VSB shot merging in mask data prep.
func CompactShots(w, h int, shots []geom.Circle) []geom.Circle {
	if len(shots) <= 1 {
		return append([]geom.Circle(nil), shots...)
	}
	// Coverage counts: how many shots cover each pixel of the union.
	counts := make([]int32, w*h)
	paint := func(c geom.Circle, delta int32) {
		r2 := c.R * c.R
		x0, x1 := int(c.X-c.R-1), int(c.X+c.R+1)
		y0, y1 := int(c.Y-c.R-1), int(c.Y+c.R+1)
		for y := y0; y <= y1; y++ {
			if y < 0 || y >= h {
				continue
			}
			dy := float64(y) - c.Y
			for x := x0; x <= x1; x++ {
				if x < 0 || x >= w {
					continue
				}
				dx := float64(x) - c.X
				if dx*dx+dy*dy <= r2 {
					counts[y*w+x] += delta
				}
			}
		}
	}
	for _, c := range shots {
		paint(c, 1)
	}

	// soleOwner reports whether the shot covers any pixel no other shot
	// covers.
	soleOwner := func(c geom.Circle) bool {
		r2 := c.R * c.R
		x0, x1 := int(c.X-c.R-1), int(c.X+c.R+1)
		y0, y1 := int(c.Y-c.R-1), int(c.Y+c.R+1)
		for y := y0; y <= y1; y++ {
			if y < 0 || y >= h {
				continue
			}
			dy := float64(y) - c.Y
			for x := x0; x <= x1; x++ {
				if x < 0 || x >= w {
					continue
				}
				dx := float64(x) - c.X
				if dx*dx+dy*dy <= r2 && counts[y*w+x] == 1 {
					return true
				}
			}
		}
		return false
	}

	order := make([]int, len(shots))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return shots[order[a]].R < shots[order[b]].R })

	removed := make([]bool, len(shots))
	for _, i := range order {
		if !soleOwner(shots[i]) {
			removed[i] = true
			paint(shots[i], -1)
		}
	}
	var out []geom.Circle
	for i, c := range shots {
		if !removed[i] {
			out = append(out, c)
		}
	}
	return out
}

// UnionEquals reports whether two shot lists rasterize to the same union
// on a w×h grid — the invariant CompactShots preserves.
func UnionEquals(w, h int, a, b []geom.Circle) bool {
	ra := geom.RasterizeCircles(w, h, a)
	rb := geom.RasterizeCircles(w, h, b)
	return ra.SqDiff(rb) == 0
}

// CoverageHistogram returns how many union pixels are covered by exactly
// 1, 2, 3… shots (index 0 = covered once). Useful for analyzing overlap
// cost, which the circular writer tolerates but which still costs dose.
func CoverageHistogram(w, h int, shots []geom.Circle) []int {
	counts := grid.NewReal(w, h)
	for _, c := range shots {
		r2 := c.R * c.R
		x0, x1 := int(c.X-c.R-1), int(c.X+c.R+1)
		y0, y1 := int(c.Y-c.R-1), int(c.Y+c.R+1)
		for y := y0; y <= y1; y++ {
			if y < 0 || y >= h {
				continue
			}
			dy := float64(y) - c.Y
			for x := x0; x <= x1; x++ {
				if x < 0 || x >= w {
					continue
				}
				dx := float64(x) - c.X
				if dx*dx+dy*dy <= r2 {
					counts.Data[y*w+x]++
				}
			}
		}
	}
	var hist []int
	for _, v := range counts.Data {
		n := int(v)
		if n == 0 {
			continue
		}
		for len(hist) < n {
			hist = append(hist, 0)
		}
		hist[n-1]++
	}
	return hist
}
