package fracture

import (
	"math/rand"
	"sort"
	"testing"

	"cfaopc/internal/geom"
)

func TestTravelLength(t *testing.T) {
	shots := []geom.Circle{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 3, Y: 10}}
	if got := TravelLength(shots); got != 5+6 {
		t.Fatalf("travel = %v, want 11", got)
	}
	if TravelLength(nil) != 0 || TravelLength(shots[:1]) != 0 {
		t.Fatal("degenerate travel not zero")
	}
}

func TestOrderShotsReducesTravel(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(60) + 10
		shots := make([]geom.Circle, n)
		for i := range shots {
			shots[i] = geom.Circle{X: rng.Float64() * 500, Y: rng.Float64() * 500, R: 5}
		}
		// Shuffle guarantees a poor initial order with high probability.
		before := TravelLength(shots)
		ordered := OrderShots(shots)
		after := TravelLength(ordered)
		if after > before {
			t.Fatalf("trial %d: ordering increased travel %v → %v", trial, before, after)
		}
		// Permutation check: same multiset of shots.
		key := func(c geom.Circle) [3]float64 { return [3]float64{c.X, c.Y, c.R} }
		a := make([][3]float64, n)
		b := make([][3]float64, n)
		for i := range shots {
			a[i] = key(shots[i])
			b[i] = key(ordered[i])
		}
		sort.Slice(a, func(i, j int) bool { return less3(a[i], a[j]) })
		sort.Slice(b, func(i, j int) bool { return less3(b[i], b[j]) })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: ordering changed the shot multiset", trial)
			}
		}
	}
}

func less3(a, b [3]float64) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestOrderShotsLineCase(t *testing.T) {
	// Shots on a line presented in scrambled order: optimal order is the
	// sorted line; the heuristic must get within 1.5× of it.
	shots := []geom.Circle{
		{X: 50, Y: 0}, {X: 10, Y: 0}, {X: 40, Y: 0}, {X: 0, Y: 0}, {X: 30, Y: 0}, {X: 20, Y: 0},
	}
	ordered := OrderShots(shots)
	if got := TravelLength(ordered); got > 75 { // optimal 50
		t.Fatalf("line travel %v, want ≤ 75", got)
	}
}

func TestOrderShotsDoesNotModifyInput(t *testing.T) {
	shots := []geom.Circle{{X: 9, Y: 9}, {X: 0, Y: 0}, {X: 5, Y: 5}}
	OrderShots(shots)
	if shots[0].X != 9 || shots[1].X != 0 {
		t.Fatal("input slice reordered")
	}
}
