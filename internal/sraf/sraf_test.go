package sraf

import (
	"testing"

	"cfaopc/internal/layout"
)

func isolated() *layout.Layout {
	return &layout.Layout{
		Name:   "iso",
		TileNM: 2048,
		Rects:  []layout.Rect{{X: 900, Y: 700, W: 80, H: 600}},
	}
}

func TestInsertIsolatedBarGetsSideBars(t *testing.T) {
	// A narrow bar only gets the two long-edge assists: its 80 nm end
	// edges cannot host a MinLen bar.
	l := isolated()
	bars := Insert(l, DefaultRules())
	if len(bars) != 2 {
		t.Fatalf("isolated narrow bar got %d bars, want 2", len(bars))
	}
	// The augmented layout must still validate: no overlaps, in bounds.
	if err := WithSRAFs(l, DefaultRules()).Validate(); err != nil {
		t.Fatalf("augmented layout invalid: %v", err)
	}
}

func TestInsertIsolatedBlockGetsFourBars(t *testing.T) {
	// A wide block has four long edges and receives all four assists.
	l := &layout.Layout{
		Name:   "block",
		TileNM: 2048,
		Rects:  []layout.Rect{{X: 800, Y: 800, W: 400, H: 400}},
	}
	bars := Insert(l, DefaultRules())
	if len(bars) != 4 {
		t.Fatalf("isolated block got %d bars, want 4", len(bars))
	}
	if err := WithSRAFs(l, DefaultRules()).Validate(); err != nil {
		t.Fatalf("augmented layout invalid: %v", err)
	}
}

func TestInsertBarGeometry(t *testing.T) {
	l := isolated()
	r := DefaultRules()
	bars := Insert(l, r)
	target := l.Rects[0]
	for _, b := range bars {
		length := b.W
		width := b.H
		if b.H > b.W {
			length, width = b.H, b.W
		}
		if width != int(r.Width) {
			t.Fatalf("bar width %d, want %d", width, int(r.Width))
		}
		if float64(length) < r.MinLen {
			t.Fatalf("bar length %d below minimum", length)
		}
		// Offset check for the vertical bars.
		if b.H > b.W {
			gapLeft := target.X - (b.X + b.W)
			gapRight := b.X - (target.X + target.W)
			if gapLeft != int(r.Offset) && gapRight != int(r.Offset) {
				t.Fatalf("vertical bar offset %d/%d, want %d", gapLeft, gapRight, int(r.Offset))
			}
		}
	}
}

func TestInsertRespectsNeighbours(t *testing.T) {
	// Two bars 150 nm apart: no SRAF fits between them (needs
	// offset+width+spacing ≈ 170), so the facing edges get no bars.
	l := &layout.Layout{
		Name:   "pair",
		TileNM: 2048,
		Rects: []layout.Rect{
			{X: 800, Y: 700, W: 80, H: 600},
			{X: 1030, Y: 700, W: 80, H: 600}, // 150 nm gap
		},
	}
	bars := Insert(l, DefaultRules())
	for _, b := range bars {
		// No bar may sit in the gap region.
		if b.X >= 880 && b.X+b.W <= 1030 {
			t.Fatalf("bar %+v placed in the forbidden gap", b)
		}
	}
	if err := WithSRAFs(l, DefaultRules()).Validate(); err != nil {
		t.Fatalf("augmented layout invalid: %v", err)
	}
}

func TestInsertShortFeatureNoBars(t *testing.T) {
	// A feature whose edges are shorter than MinLen + pull gets nothing.
	l := &layout.Layout{
		Name:   "dot",
		TileNM: 2048,
		Rects:  []layout.Rect{{X: 1000, Y: 1000, W: 60, H: 60}},
	}
	if bars := Insert(l, DefaultRules()); len(bars) != 0 {
		t.Fatalf("tiny feature got %d bars", len(bars))
	}
}

func TestInsertNearTileEdgeClipped(t *testing.T) {
	// A feature close to the tile border: the outside bar would leave the
	// tile and must be dropped.
	l := &layout.Layout{
		Name:   "edge",
		TileNM: 2048,
		Rects:  []layout.Rect{{X: 30, Y: 700, W: 80, H: 600}},
	}
	bars := Insert(l, DefaultRules())
	for _, b := range bars {
		if b.X < 0 || b.X+b.W > 2048 || b.Y < 0 || b.Y+b.H > 2048 {
			t.Fatalf("bar %+v outside the tile", b)
		}
	}
}

func TestSuiteWithSRAFsValidates(t *testing.T) {
	for _, l := range layout.GenerateSuite() {
		aug := WithSRAFs(l, DefaultRules())
		if err := aug.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if len(aug.Rects) < len(l.Rects) {
			t.Fatalf("%s: lost rects", l.Name)
		}
	}
}
