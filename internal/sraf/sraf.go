// Package sraf implements rule-based sub-resolution assist feature
// insertion — the classical scattering-bar OPC step that predates ILT and
// still seeds many production flows. Bars are placed parallel to target
// edges at a fixed offset; they are too narrow to print themselves but
// steepen the aerial image of the main feature, widening its process
// window. The ILT engines accept the result as an initialization
// (BackgroundBias only nucleates SRAFs where gradients discover them;
// rule-based bars give isolated edges their assist features immediately).
package sraf

import (
	"cfaopc/internal/layout"
)

// Rules parameterizes scattering-bar placement (all nm).
type Rules struct {
	Offset  float64 // edge-to-bar-edge distance (typ. 80–100)
	Width   float64 // bar width, below the printing threshold (typ. 25–35)
	MinLen  float64 // bars shorter than this are dropped
	Spacing float64 // minimum clearance between a bar and any other shape
	EndPull float64 // bar ends retract this much from the feature corners
}

// DefaultRules returns placement rules tuned for the 32 nm-node suite
// under the package's ArF immersion condition.
func DefaultRules() Rules {
	return Rules{Offset: 90, Width: 28, MinLen: 120, Spacing: 50, EndPull: 20}
}

// Insert computes scattering bars for every outer edge of the layout's
// rectangles. Bars that would violate spacing against any target
// rectangle or an already-accepted bar are trimmed out entirely (no
// partial bars — writers prefer fewer, cleaner assists).
func Insert(l *layout.Layout, r Rules) []layout.Rect {
	var bars []layout.Rect
	overlapsAny := func(c layout.Rect, others []layout.Rect, clearance int) bool {
		for _, o := range others {
			if c.X < o.X+o.W+clearance && o.X < c.X+c.W+clearance &&
				c.Y < o.Y+o.H+clearance && o.Y < c.Y+c.H+clearance {
				return true
			}
		}
		return false
	}
	inTile := func(c layout.Rect) bool {
		return c.X >= 0 && c.Y >= 0 && c.X+c.W <= l.TileNM && c.Y+c.H <= l.TileNM
	}
	offset := int(r.Offset)
	width := int(r.Width)
	pull := int(r.EndPull)
	spacing := int(r.Spacing)

	for _, t := range l.Rects {
		candidates := []layout.Rect{
			// Left bar.
			{X: t.X - offset - width, Y: t.Y + pull, W: width, H: t.H - 2*pull},
			// Right bar.
			{X: t.X + t.W + offset, Y: t.Y + pull, W: width, H: t.H - 2*pull},
			// Top bar.
			{X: t.X + pull, Y: t.Y - offset - width, W: t.W - 2*pull, H: width},
			// Bottom bar.
			{X: t.X + pull, Y: t.Y + t.H + offset, W: t.W - 2*pull, H: width},
		}
		for _, c := range candidates {
			if c.W <= 0 || c.H <= 0 {
				continue
			}
			if length := maxInt(c.W, c.H); float64(length) < r.MinLen {
				continue
			}
			if !inTile(c) {
				continue
			}
			if overlapsAny(c, l.Rects, spacing) {
				continue
			}
			if overlapsAny(c, bars, spacing) {
				continue
			}
			bars = append(bars, c)
		}
	}
	return bars
}

// WithSRAFs returns a copy of the layout with the bars appended — the
// seeding layout handed to an ILT engine's initialization. The returned
// layout still validates (bars never overlap targets or each other).
func WithSRAFs(l *layout.Layout, r Rules) *layout.Layout {
	out := &layout.Layout{Name: l.Name + "+sraf", TileNM: l.TileNM}
	out.Rects = append(out.Rects, l.Rects...)
	out.Rects = append(out.Rects, Insert(l, r)...)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
