package core

import (
	"math"
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

func testCfg() Config {
	c := DefaultConfig(8) // 8 nm/px
	c.Iterations = 30
	return c
}

func TestRenderBasics(t *testing.T) {
	cfg := testCfg()
	p := &Params{X: []float64{16}, Y: []float64{16}, R: []float64{5}, Q: []float64{1}}
	d := Render(p, cfg, 32, 32, true)
	if v := d.M.At(16, 16); v < 0.99 {
		t.Fatalf("center activation %v, want ≈1", v)
	}
	if v := d.M.At(16, 16+4); v < 0.9 {
		t.Fatalf("inside activation %v, want ≈1", v)
	}
	if v := d.M.At(0, 0); v != 0 {
		t.Fatalf("far-away activation %v, want 0", v)
	}
	if d.argmax[16*32+16] != 1 {
		t.Fatal("argmax not recorded")
	}
	// Window transition: just outside the radius the activation is low.
	if v := d.M.At(16, 16+7); v > 0.1 {
		t.Fatalf("outside activation %v, want ≈0", v)
	}
}

func TestRenderMaxComposition(t *testing.T) {
	cfg := testCfg()
	p := &Params{
		X: []float64{10, 14},
		Y: []float64{16, 16},
		R: []float64{4, 4},
		Q: []float64{0.6, 1.0},
	}
	d := Render(p, cfg, 32, 32, true)
	// In the overlap, the larger q wins.
	if am := d.argmax[16*32+13]; am != 2 {
		t.Fatalf("argmax in overlap = %d, want 2", am)
	}
	// Deep inside circle 1 only, activation ≈ q1.
	if v := d.M.At(7, 16); math.Abs(v-0.6) > 0.05 {
		t.Fatalf("activation %v, want ≈0.6", v)
	}
}

func TestRenderQuantizes(t *testing.T) {
	cfg := testCfg()
	p := &Params{X: []float64{10.4}, Y: []float64{9.7}, R: []float64{3.2}, Q: []float64{1}}
	d := Render(p, cfg, 32, 32, true)
	if d.qx[0] != 10 || d.qy[0] != 10 || d.qr[0] != 3 {
		t.Fatalf("quantized to (%v,%v,%v)", d.qx[0], d.qy[0], d.qr[0])
	}
	// Radius clipped into [RMin, RMax] even after rounding.
	p.R[0] = 100
	d = Render(p, cfg, 32, 32, true)
	if d.qr[0] > cfg.RMax || d.qr[0] != math.Round(d.qr[0]) {
		t.Fatalf("radius not clipped to integer within bounds: %v (RMax %v)", d.qr[0], cfg.RMax)
	}
}

func TestNegativeQNeverPaints(t *testing.T) {
	cfg := testCfg()
	p := &Params{X: []float64{16}, Y: []float64{16}, R: []float64{5}, Q: []float64{-0.5}}
	d := Render(p, cfg, 32, 32, true)
	for i, v := range d.M.Data {
		if v != 0 {
			t.Fatalf("negative-q circle painted %v at %d", v, i)
		}
	}
}

// Finite-difference check of the circle-window gradients (Eq. 12–14) with
// quantization disabled so the loss is smooth in the parameters.
func TestBackwardMatchesFiniteDifference(t *testing.T) {
	cfg := testCfg()
	cfg.Alpha = 2 // gentler window → larger support, better conditioning
	w, h := 40, 40
	p := &Params{
		X: []float64{14.3, 24.9},
		Y: []float64{20.1, 21.7},
		R: []float64{4.6, 5.2},
		Q: []float64{0.9, 0.7},
	}
	// Random linear loss L = Σ w ⊙ M̄.
	rng := rand.New(rand.NewSource(8))
	wts := grid.NewReal(w, h)
	for i := range wts.Data {
		wts.Data[i] = rng.Float64()*2 - 1
	}
	loss := func(p *Params) float64 {
		d := Render(p, cfg, w, h, false)
		return d.M.Dot(wts)
	}
	d := Render(p, cfg, w, h, false)
	g := Backward(p, cfg, d, wts)

	check := func(name string, arr []float64, ga []float64) {
		const eps = 1e-6
		for i := range arr {
			orig := arr[i]
			arr[i] = orig + eps
			lp := loss(p)
			arr[i] = orig - eps
			lm := loss(p)
			arr[i] = orig
			num := (lp - lm) / (2 * eps)
			scale := math.Max(math.Abs(num), math.Abs(ga[i]))
			if scale < 1e-10 {
				continue
			}
			if math.Abs(num-ga[i]) > 2e-3*scale+1e-8 {
				t.Errorf("%s[%d]: analytic %g vs numeric %g", name, i, ga[i], num)
			}
		}
	}
	check("x", p.X, g.X)
	check("y", p.Y, g.Y)
	check("r", p.R, g.R)
	check("q", p.Q, g.Q)
}

func TestBackwardSTEGating(t *testing.T) {
	cfg := testCfg()
	// Radius raw value far above RMax: its gradient must be gated to 0.
	p := &Params{X: []float64{16}, Y: []float64{16}, R: []float64{cfg.RMax + 5}, Q: []float64{1}}
	d := Render(p, cfg, 32, 32, true)
	dLdM := grid.NewReal(32, 32)
	dLdM.Fill(1)
	g := Backward(p, cfg, d, dLdM)
	if g.R[0] != 0 {
		t.Fatalf("out-of-bounds radius still received gradient %v", g.R[0])
	}
	// q gradient flows regardless (no STE on q).
	if g.Q[0] == 0 {
		t.Fatal("q received no gradient")
	}
}

func TestActiveShots(t *testing.T) {
	cfg := testCfg()
	p := &Params{
		X: []float64{10.2, 20.6},
		Y: []float64{10.4, 20.1},
		R: []float64{3.4, 4.6},
		Q: []float64{0.9, 0.2},
	}
	shots := p.ActiveShots(cfg, 32, 32)
	if len(shots) != 1 {
		t.Fatalf("%d active shots, want 1", len(shots))
	}
	s := shots[0]
	if s.X != 10 || s.Y != 10 || s.R != 3 {
		t.Fatalf("shot = %+v", s)
	}
}

func circleOptSetup(t testing.TB) (*litho.Simulator, *grid.Real) {
	t.Helper()
	cfg := optics.Default()
	cfg.TileNM = 512
	cfg.NumKernels = 8
	sim, err := litho.New(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	sim.KOpt = 4
	target := grid.NewReal(64, 64)
	for y := 14; y < 50; y++ {
		for x := 24; x < 34; x++ { // 80 nm bar at 8 nm/px
			target.Set(x, y, 1)
		}
	}
	return sim, target
}

func TestCircleOptEndToEnd(t *testing.T) {
	sim, target := circleOptSetup(t)
	e := &CircleOpt{Cfg: testCfg(), InitIterations: 8}
	res := e.Optimize(sim, target)
	if len(res.Shots) == 0 {
		t.Fatal("no shots produced")
	}
	for _, s := range res.Shots {
		if s.R < e.Cfg.RMin-1e-9 || s.R > e.Cfg.RMax+1e-9 {
			t.Fatalf("shot radius %v outside bounds", s.R)
		}
		if s.X != math.Round(s.X) || s.Y != math.Round(s.Y) || s.R != math.Round(s.R) {
			t.Fatalf("shot not quantized: %+v", s)
		}
	}
	for i, v := range res.Mask.Data {
		if v != 0 && v != 1 {
			t.Fatalf("mask not binary at %d: %v", i, v)
		}
	}
	// The print must beat an empty mask by a wide margin.
	r := sim.Simulate(res.Mask)
	diff := 0
	for i := range target.Data {
		if (r.ZNom.Data[i] > 0.5) != (target.Data[i] > 0.5) {
			diff++
		}
	}
	if diff > int(target.Sum())/2 {
		t.Fatalf("printed image misses most of the target: %d differing px", diff)
	}
	// Loss should drop over the run.
	first, last := res.LossHistory[0], res.LossHistory[len(res.LossHistory)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestCircleOptSparsityReducesShots(t *testing.T) {
	sim, target := circleOptSetup(t)
	noReg := testCfg()
	noReg.Gamma = 0
	withReg := testCfg()
	withReg.Gamma = 3
	a := (&CircleOpt{Cfg: noReg, InitIterations: 8}).Optimize(sim, target)
	b := (&CircleOpt{Cfg: withReg, InitIterations: 8}).Optimize(sim, target)
	// The Lasso term shrinks the total activation mass; on tiny cases the
	// discrete shot count can tie, so assert on Σ|q| directly.
	sumAbs := func(qs []float64) float64 {
		s := 0.0
		for _, q := range qs {
			s += math.Abs(q)
		}
		return s
	}
	if sumAbs(b.Params.Q) >= sumAbs(a.Params.Q) {
		t.Fatalf("sparsity regularizer did not shrink Σ|q|: %v vs %v",
			sumAbs(b.Params.Q), sumAbs(a.Params.Q))
	}
}

func TestCircleOptEmptyTarget(t *testing.T) {
	sim, _ := circleOptSetup(t)
	empty := grid.NewReal(64, 64)
	res := (&CircleOpt{Cfg: testCfg(), InitIterations: 3}).Optimize(sim, empty)
	if res.Mask == nil {
		t.Fatal("nil mask for empty target")
	}
	if got := int(res.Mask.Sum()); got > 50 {
		t.Fatalf("empty target grew a mask of %d px", got)
	}
}

func TestCircleOptDeterministic(t *testing.T) {
	sim, target := circleOptSetup(t)
	cfgA := testCfg()
	cfgA.Iterations = 10
	a := (&CircleOpt{Cfg: cfgA, InitIterations: 5}).Optimize(sim, target)
	b := (&CircleOpt{Cfg: cfgA, InitIterations: 5}).Optimize(sim, target)
	if len(a.Shots) != len(b.Shots) {
		t.Fatal("CircleOpt not deterministic")
	}
	for i := range a.Shots {
		if a.Shots[i] != b.Shots[i] {
			t.Fatal("shot lists differ between runs")
		}
	}
}

func TestParamsClone(t *testing.T) {
	p := &Params{X: []float64{1}, Y: []float64{2}, R: []float64{3}, Q: []float64{4}}
	c := p.Clone()
	c.X[0] = 99
	if p.X[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
	if p.Len() != 1 {
		t.Fatal("Len wrong")
	}
}
