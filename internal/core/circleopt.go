// Package core implements the paper's primary contribution: CircleOpt, the
// two-stage optimization-based method for circular fracturing-aware OPC
// (Section 4).
//
// Stage 1 runs a few pixel-level MOSAIC ILT steps to rough out mask shapes
// and SRAFs. Stage 2 reparameterizes the rough mask into sparse circles
// (x_i, y_i, r_i, q_i) via Algorithm 1, renders them to a dense mask
// through the differentiable circle-to-pixel transform
//
//	M̄(x,y) = max_i q_i · σ(α·(r'_i − ‖(x,y) − (x'_i, y'_i)‖))     (Eq. 10–11)
//
// with straight-through estimators quantizing x, y, r (Eq. 7–9), and
// optimizes all 4n circle parameters by Adam against the lithography loss
// L2 + PVB + γ·Σ|q_i| using the hand-derived gradients of Eq. 12–14. The
// final mask is the union of all circles with q_i > 0.5, which satisfies
// the circular fracturing constraint by construction: every circle is one
// shot.
package core

import (
	"fmt"
	"math"

	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/ilt"
	"cfaopc/internal/litho"
	"cfaopc/internal/opt"
)

// Params is the sparse circular representation: parallel arrays of circle
// centers, radii (pixels, continuous during optimization) and activations.
type Params struct {
	X, Y, R, Q []float64
}

// Len returns the number of circles.
func (p *Params) Len() int { return len(p.X) }

// Clone returns a deep copy.
func (p *Params) Clone() *Params {
	c := &Params{
		X: append([]float64(nil), p.X...),
		Y: append([]float64(nil), p.Y...),
		R: append([]float64(nil), p.R...),
		Q: append([]float64(nil), p.Q...),
	}
	return c
}

// ActiveShots returns the quantized circles whose activation exceeds the
// threshold — the final shot list (one circle = one writer shot).
func (p *Params) ActiveShots(cfg Config, w, h int) []geom.Circle {
	var shots []geom.Circle
	for i := range p.X {
		if p.Q[i] > cfg.QThreshold {
			shots = append(shots, geom.Circle{
				X: opt.STERound(p.X[i], 0, float64(w-1)),
				Y: opt.STERound(p.Y[i], 0, float64(h-1)),
				R: quantRadius(p.R[i], cfg.RMin, cfg.RMax),
			})
		}
	}
	return shots
}

// quantRadius quantizes a radius to the integer pixel lattice while
// keeping it inside [rMin, rMax] even when the bounds are fractional (the
// paper's bounds are integers at 1 nm/px; at coarser grids Round(Clip(x))
// alone could overshoot rMax by up to half a pixel and violate MRC).
func quantRadius(r, rMin, rMax float64) float64 {
	q := opt.STERound(r, rMin, rMax)
	if q < rMin {
		q = math.Ceil(rMin)
	}
	if q > rMax {
		q = math.Floor(rMax)
	}
	if q < 1 {
		q = 1
	}
	return q
}

// Config holds the CircleOpt hyper-parameters. Lengths are in pixels of
// the simulation grid.
type Config struct {
	Alpha      float64 // window steepness (paper: 8 at 1 nm/px — a ~1 px transition band, so kept in pixel units)
	Gamma      float64 // sparsity regularizer weight (paper: 3)
	LR         float64 // Adam step size (paper: 0.1)
	Iterations int     // stage-2 circle-level steps
	QThreshold float64 // activation cutoff for the final mask (paper: 0.5)
	RMin, RMax float64 // radius bounds in px
	Margin     int     // gradient window margin beyond each circle's radius
	WL2, WPVB  float64 // litho loss weights
	// DisableSTE renders from the continuous parameters during
	// optimization (quantizing only the final shot list) instead of
	// passing x, y, r through the straight-through estimator each forward
	// pass. Used by the ablation benches to measure what STE buys.
	DisableSTE bool
}

// DefaultConfig returns the paper's hyper-parameters converted to a grid
// with dxNM nanometers per pixel. The sparsity weight γ competes against
// litho-loss gradients whose scale shrinks on coarser grids, so the
// paper's γ=3 at 1 nm/px is rescaled as γ=3/dx — calibrated empirically at
// 4 nm/px to reproduce the paper's ~10% Table-3 shot reduction at minor
// quality cost, and exact at the paper's own resolution.
func DefaultConfig(dxNM float64) Config {
	return Config{
		Alpha:      8,
		Gamma:      3 / dxNM,
		LR:         0.1,
		Iterations: 60,
		QThreshold: 0.5,
		RMin:       12 / dxNM,
		RMax:       76 / dxNM,
		Margin:     3,
		WL2:        1,
		WPVB:       1,
	}
}

func (c Config) validate() {
	if c.Alpha <= 0 || c.LR <= 0 || c.Iterations <= 0 || c.RMin <= 0 ||
		c.RMax < c.RMin || c.QThreshold <= 0 || c.Margin < 0 {
		panic(fmt.Sprintf("core: invalid config %+v", c))
	}
}

// Dense is the rendered dense mask plus the argmax bookkeeping the
// backward pass routes gradients through.
type Dense struct {
	M      *grid.Real
	argmax []int32 // 1-based winning circle per pixel; 0 = background
	// quantized parameter values used in the forward pass
	qx, qy, qr []float64
}

// Render executes the differentiable circle-to-pixel transform. With
// quantize true (the real pipeline), x, y, r pass through the
// straight-through estimator before rendering; tests disable it to allow
// finite-difference checks of the window gradients.
func Render(p *Params, cfg Config, w, h int, quantize bool) *Dense {
	cfg.validate()
	d := &Dense{
		M:      grid.NewReal(w, h),
		argmax: make([]int32, w*h),
		qx:     make([]float64, p.Len()),
		qy:     make([]float64, p.Len()),
		qr:     make([]float64, p.Len()),
	}
	for i := 0; i < p.Len(); i++ {
		if quantize {
			d.qx[i] = opt.STERound(p.X[i], 0, float64(w-1))
			d.qy[i] = opt.STERound(p.Y[i], 0, float64(h-1))
			d.qr[i] = quantRadius(p.R[i], cfg.RMin, cfg.RMax)
		} else {
			d.qx[i] = p.X[i]
			d.qy[i] = p.Y[i]
			d.qr[i] = p.R[i]
		}
		cx, cy, cr, q := d.qx[i], d.qy[i], d.qr[i], p.Q[i]
		ext := cr + float64(cfg.Margin)
		x0, x1 := int(cx-ext), int(cx+ext)+1
		y0, y1 := int(cy-ext), int(cy+ext)+1
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 >= w {
			x1 = w - 1
		}
		if y1 >= h {
			y1 = h - 1
		}
		for y := y0; y <= y1; y++ {
			dy := float64(y) - cy
			for x := x0; x <= x1; x++ {
				dx := float64(x) - cx
				dist := math.Sqrt(dx*dx + dy*dy)
				v := q * litho.Sigmoid(cfg.Alpha*(cr-dist))
				idx := y*w + x
				if v > d.M.Data[idx] {
					d.M.Data[idx] = v
					d.argmax[idx] = int32(i + 1)
				}
			}
		}
	}
	return d
}

// Grads holds ∂L/∂(x, y, r, q) for every circle.
type Grads struct {
	X, Y, R, Q []float64
}

// Backward routes a dense-mask gradient dLdM back to the circle
// parameters via the argmax bookkeeping and Equations (12)–(14). The
// straight-through estimators contribute their indicator factors
// (Equation (9)) on the raw parameter values.
func Backward(p *Params, cfg Config, d *Dense, dLdM *grid.Real) *Grads {
	w := d.M.W
	g := &Grads{
		X: make([]float64, p.Len()),
		Y: make([]float64, p.Len()),
		R: make([]float64, p.Len()),
		Q: make([]float64, p.Len()),
	}
	for idx, am := range d.argmax {
		if am == 0 {
			continue
		}
		gv := dLdM.Data[idx]
		if gv == 0 {
			continue
		}
		i := int(am - 1)
		x, y := float64(idx%w), float64(idx/w)
		dx := x - d.qx[i]
		dy := y - d.qy[i]
		dist := math.Sqrt(dx*dx + dy*dy)
		f := litho.Sigmoid(cfg.Alpha * (d.qr[i] - dist))
		hfn := f * (1 - f)
		q := p.Q[i]

		// ∂M̄/∂q_i = f (Eq. 14).
		g.Q[i] += gv * f
		// ∂M̄/∂r_i = α·q·h (Eq. 13), gated by the STE indicator on r.
		g.R[i] += gv * cfg.Alpha * q * hfn * opt.STEGrad(p.R[i], cfg.RMin, cfg.RMax)
		// ∂M̄/∂x_i = α·q·h·(x−x'_i)/dist (Eq. 12), gated on x ∈ [0, W].
		if dist > 1e-9 {
			common := gv * cfg.Alpha * q * hfn / dist
			g.X[i] += common * dx * opt.STEGrad(p.X[i], 0, float64(d.M.W-1))
			g.Y[i] += common * dy * opt.STEGrad(p.Y[i], 0, float64(d.M.H-1))
		}
	}
	return g
}

// Result summarizes one CircleOpt run.
type Result struct {
	Mask   *grid.Real    // final binary mask (union of active shots)
	Shots  []geom.Circle // the shot list
	Params *Params       // final continuous parameters
	// Loss history (total differentiable loss per iteration), useful for
	// convergence diagnostics and the ablation benches.
	LossHistory []float64
}

// CircleOpt is the optimization-based CFAOPC method.
type CircleOpt struct {
	Cfg Config
	// InitIterations controls the stage-1 MOSAIC warm-up (paper: "only a
	// few steps"); default 12.
	InitIterations int
	// RuleCfg fractures the stage-1 mask into the initial circles; zero
	// value means the paper defaults at the simulator's resolution.
	RuleCfg fracture.CircleRuleConfig
}

// Name identifies the method in reports.
func (e *CircleOpt) Name() string { return "CircleOpt" }

// Optimize runs the full two-stage pipeline on target.
func (e *CircleOpt) Optimize(sim *litho.Simulator, target *grid.Real) *Result {
	e.Cfg.validate()
	initIters := e.InitIterations
	if initIters <= 0 {
		initIters = 12
	}

	// Stage 1: pixel-level initialization (Section 4.1) — simplest MOSAIC,
	// L2 + PVB loss, shifted-sigmoid binarization, a few steps only.
	mosaicCfg := ilt.DefaultConfig()
	mosaicCfg.Iterations = initIters
	mosaicCfg.WL2 = e.Cfg.WL2
	mosaicCfg.WPVB = e.Cfg.WPVB
	rough := (&ilt.Mosaic{Cfg: mosaicCfg}).Optimize(sim, target)

	// Sparse circular reparameterization (Section 4.2) via Algorithm 1.
	ruleCfg := e.RuleCfg
	if ruleCfg.SampleDist == 0 {
		ruleCfg = fracture.DefaultCircleRuleConfig(sim.DX)
	}
	// Clamp rule radii into the optimizer's own bounds.
	if ruleCfg.RMin < e.Cfg.RMin {
		ruleCfg.RMin = e.Cfg.RMin
	}
	if ruleCfg.RMax > e.Cfg.RMax {
		ruleCfg.RMax = e.Cfg.RMax
	}
	seeds := fracture.CircleRule(rough, ruleCfg)
	if len(seeds) == 0 {
		// Degenerate stage 1 (e.g. empty target): fall back to seeding the
		// target directly so stage 2 still has parameters to optimize.
		seeds = fracture.CircleRule(target, ruleCfg)
	}
	return e.OptimizeFromShots(sim, target, seeds)
}

// OptimizeFromShots runs stage 2 (the circle-level ILT) from an explicit
// seed shot list, skipping the pixel-level initialization. This is the
// warm-restart entry point: re-optimizing an edited layout, refining a
// CircleRule fracturing, or resuming a tiled flow's window from its
// previous shots.
func (e *CircleOpt) OptimizeFromShots(sim *litho.Simulator, target *grid.Real, seeds []geom.Circle) *Result {
	e.Cfg.validate()
	p := &Params{}
	for _, c := range seeds {
		p.X = append(p.X, c.X)
		p.Y = append(p.Y, c.Y)
		p.R = append(p.R, c.R)
		p.Q = append(p.Q, 1) // q_i initialized to 1 for all circles
	}
	res := &Result{Params: p}
	if p.Len() == 0 {
		res.Mask = grid.NewReal(sim.N, sim.N)
		return res
	}

	// Stage 2: pixel-to-circle optimization.
	n := p.Len()
	flat := make([]float64, 4*n)
	gradFlat := make([]float64, 4*n)
	pack := func() {
		copy(flat[0:n], p.X)
		copy(flat[n:2*n], p.Y)
		copy(flat[2*n:3*n], p.R)
		copy(flat[3*n:4*n], p.Q)
	}
	unpack := func() {
		copy(p.X, flat[0:n])
		copy(p.Y, flat[n:2*n])
		copy(p.R, flat[2*n:3*n])
		copy(p.Q, flat[3*n:4*n])
	}
	pack()
	adam := opt.NewAdam(4*n, e.Cfg.LR)

	// Warm resume: a flow checkpoint may carry a mid-tile snapshot of
	// this exact parameter vector plus the Adam moments. Restoring both
	// makes the remaining iterations replay the uninterrupted trajectory
	// bit-for-bit (seeds are deterministic, so the vector shape matches
	// unless the config changed — in which case the snapshot is ignored).
	startIt := 0
	if snap, ok := opt.ResumeFrom(sim.Ctx); ok &&
		len(snap.Params) == 4*n && len(snap.OptM) == 4*n && len(snap.OptV) == 4*n &&
		snap.Iter > 0 && snap.Iter <= e.Cfg.Iterations {
		copy(flat, snap.Params)
		unpack()
		adam.SetState(snap.OptT, snap.OptM, snap.OptV)
		startIt = snap.Iter
	}
	sink, every := opt.SnapshotsFrom(sim.Ctx)

	for it := startIt; it < e.Cfg.Iterations; it++ {
		dense := Render(p, e.Cfg, sim.N, sim.N, !e.Cfg.DisableSTE)
		lg := sim.LossGrad(dense.M, target, e.Cfg.WL2, e.Cfg.WPVB)
		g := Backward(p, e.Cfg, dense, lg.GradM)

		// Sparsity regularizer L_s = Σ|q_i| (Eq. 17).
		sparsity := 0.0
		for i := 0; i < n; i++ {
			sparsity += math.Abs(p.Q[i])
			g.Q[i] += e.Cfg.Gamma * sign(p.Q[i])
		}
		res.LossHistory = append(res.LossHistory, lg.Loss+e.Cfg.Gamma*sparsity)

		copy(gradFlat[0:n], g.X)
		copy(gradFlat[n:2*n], g.Y)
		copy(gradFlat[2*n:3*n], g.R)
		copy(gradFlat[3*n:4*n], g.Q)
		adam.Step(flat, gradFlat)
		unpack()
		loss := lg.Loss + e.Cfg.Gamma*sparsity
		opt.Beat(sim.Ctx, it, loss)
		if sink != nil && (it+1)%every == 0 && it+1 < e.Cfg.Iterations {
			t, m, v := adam.State()
			sink(opt.Snapshot{
				Iter: it + 1, Loss: loss,
				Params: append([]float64(nil), flat...),
				OptT:   t, OptM: m, OptV: v,
			})
		}
	}

	res.Shots = p.ActiveShots(e.Cfg, sim.N, sim.N)
	res.Mask = geom.RasterizeCircles(sim.N, sim.N, res.Shots)
	return res
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}
