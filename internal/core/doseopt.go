package core

import (
	"math"

	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/ilt"
	"cfaopc/internal/litho"
	"cfaopc/internal/opt"
)

// DoseOpt is an extension of CircleOpt for dose-modulated circular
// writing: the e-beam writer of [7] can vary the dose per flash, so each
// shot carries a learnable dose d_i instead of a binary activation. The
// accumulated exposure is physically additive,
//
//	E(x,y) = Σ_i d_i · σ(α(r'_i − ‖(x,y)−(x'_i,y'_i)‖)),
//
// and the written mask is the mask-resist response M̄ = σ(β(E − E_th)).
// Because exposure sums instead of max-composing, gradients flow to every
// overlapping shot simultaneously (no argmax routing), and overlapping
// low-dose shots can jointly form mask regions that single full-dose
// circles cannot — a strictly larger design space than CircleOpt's.
type DoseOpt struct {
	Cfg Config
	// DoseMin/DoseMax bound each shot's dose (defaults 0.3 / 1.5); a shot
	// whose dose falls below DoseKeep (default 0.25) is dropped from the
	// final list.
	DoseMin, DoseMax, DoseKeep float64
	// Beta is the mask-resist response steepness (default 6).
	Beta float64
	// InitIterations runs the stage-1 MOSAIC warm-up (default 12).
	InitIterations int
	RuleCfg        fracture.CircleRuleConfig
}

// DoseShot is one dose-modulated flash.
type DoseShot struct {
	geom.Circle
	Dose float64
}

// DoseResult summarizes a DoseOpt run.
type DoseResult struct {
	Mask        *grid.Real
	Shots       []DoseShot
	LossHistory []float64
}

const doseExposureThreshold = 0.5 // mask resist threshold on accumulated dose

func (e *DoseOpt) defaults() (dMin, dMax, dKeep, beta float64, initIters int) {
	dMin, dMax, dKeep, beta = e.DoseMin, e.DoseMax, e.DoseKeep, e.Beta
	if dMax == 0 {
		dMax = 1.5
	}
	if dMin == 0 {
		dMin = 0.3
	}
	if dKeep == 0 {
		dKeep = 0.25
	}
	if beta == 0 {
		beta = 6
	}
	initIters = e.InitIterations
	if initIters <= 0 {
		initIters = 12
	}
	return
}

// renderExposure accumulates E and maps it through the resist response.
// It returns the smooth mask, the raw exposure, and the per-pixel resist
// slope dM̄/dE for the backward pass.
func renderExposure(p *Params, dose []float64, cfg Config, beta float64, w, h int) (m, exposure, slope *grid.Real) {
	exposure = grid.NewReal(w, h)
	for i := 0; i < p.Len(); i++ {
		cx := opt.STERound(p.X[i], 0, float64(w-1))
		cy := opt.STERound(p.Y[i], 0, float64(h-1))
		cr := quantRadius(p.R[i], cfg.RMin, cfg.RMax)
		d := dose[i]
		ext := cr + float64(cfg.Margin)
		x0, x1 := int(cx-ext), int(cx+ext)+1
		y0, y1 := int(cy-ext), int(cy+ext)+1
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 >= w {
			x1 = w - 1
		}
		if y1 >= h {
			y1 = h - 1
		}
		for y := y0; y <= y1; y++ {
			dy := float64(y) - cy
			for x := x0; x <= x1; x++ {
				dx := float64(x) - cx
				dist := math.Sqrt(dx*dx + dy*dy)
				exposure.Data[y*w+x] += d * litho.Sigmoid(cfg.Alpha*(cr-dist))
			}
		}
	}
	m = grid.NewReal(w, h)
	slope = grid.NewReal(w, h)
	for i, ev := range exposure.Data {
		mv := litho.Sigmoid(beta * (ev - doseExposureThreshold))
		m.Data[i] = mv
		slope.Data[i] = beta * mv * (1 - mv)
	}
	return m, exposure, slope
}

// doseBackward accumulates ∂L/∂(x, y, r, d) for every shot given the
// dense-mask gradient dLdM and the resist slope dM̄/dE. Exposure is
// additive, so every shot integrates gradient over its whole window — no
// argmax routing as in CircleOpt. Outputs are zeroed first.
func doseBackward(p *Params, dose []float64, cfg Config, dLdM, slope *grid.Real, w, h int, gx, gy, gr, gd []float64) {
	for i := range gx {
		gx[i], gy[i], gr[i], gd[i] = 0, 0, 0, 0
	}
	for i := 0; i < p.Len(); i++ {
		cx := opt.STERound(p.X[i], 0, float64(w-1))
		cy := opt.STERound(p.Y[i], 0, float64(h-1))
		cr := quantRadius(p.R[i], cfg.RMin, cfg.RMax)
		d := dose[i]
		ext := cr + float64(cfg.Margin)
		x0, x1 := int(cx-ext), int(cx+ext)+1
		y0, y1 := int(cy-ext), int(cy+ext)+1
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 >= w {
			x1 = w - 1
		}
		if y1 >= h {
			y1 = h - 1
		}
		steX := opt.STEGrad(p.X[i], 0, float64(w-1))
		steY := opt.STEGrad(p.Y[i], 0, float64(h-1))
		steR := opt.STEGrad(p.R[i], cfg.RMin, cfg.RMax)
		for y := y0; y <= y1; y++ {
			dy := float64(y) - cy
			for x := x0; x <= x1; x++ {
				idx := y*w + x
				gvE := dLdM.Data[idx] * slope.Data[idx] // dL/dE at this pixel
				if gvE == 0 {
					continue
				}
				dx := float64(x) - cx
				dist := math.Sqrt(dx*dx + dy*dy)
				f := litho.Sigmoid(cfg.Alpha * (cr - dist))
				hfn := f * (1 - f)
				gd[i] += gvE * f
				gr[i] += gvE * cfg.Alpha * d * hfn * steR
				if dist > 1e-9 {
					common := gvE * cfg.Alpha * d * hfn / dist
					gx[i] += common * dx * steX
					gy[i] += common * dy * steY
				}
			}
		}
	}
}

// Name identifies the method in reports.
func (e *DoseOpt) Name() string { return "DoseOpt" }

// Optimize runs the dose-modulated two-stage pipeline.
func (e *DoseOpt) Optimize(sim *litho.Simulator, target *grid.Real) *DoseResult {
	e.Cfg.validate()
	dMin, dMax, dKeep, beta, initIters := e.defaults()

	mosaicCfg := ilt.DefaultConfig()
	mosaicCfg.Iterations = initIters
	mosaicCfg.WL2 = e.Cfg.WL2
	mosaicCfg.WPVB = e.Cfg.WPVB
	rough := (&ilt.Mosaic{Cfg: mosaicCfg}).Optimize(sim, target)

	ruleCfg := e.RuleCfg
	if ruleCfg.SampleDist == 0 {
		ruleCfg = fracture.DefaultCircleRuleConfig(sim.DX)
	}
	if ruleCfg.RMin < e.Cfg.RMin {
		ruleCfg.RMin = e.Cfg.RMin
	}
	if ruleCfg.RMax > e.Cfg.RMax {
		ruleCfg.RMax = e.Cfg.RMax
	}
	seeds := fracture.CircleRule(rough, ruleCfg)
	if len(seeds) == 0 {
		seeds = fracture.CircleRule(target, ruleCfg)
	}
	res := &DoseResult{}
	if len(seeds) == 0 {
		res.Mask = grid.NewReal(sim.N, sim.N)
		return res
	}
	p := &Params{}
	dose := make([]float64, 0, len(seeds))
	for _, c := range seeds {
		p.X = append(p.X, c.X)
		p.Y = append(p.Y, c.Y)
		p.R = append(p.R, c.R)
		p.Q = append(p.Q, 1) // unused by DoseOpt; kept for Params reuse
		dose = append(dose, 1)
	}

	n := p.Len()
	w, h := sim.N, sim.N
	flat := make([]float64, 4*n)
	gradFlat := make([]float64, 4*n)
	copy(flat[0:n], p.X)
	copy(flat[n:2*n], p.Y)
	copy(flat[2*n:3*n], p.R)
	copy(flat[3*n:4*n], dose)
	adam := opt.NewAdam(4*n, e.Cfg.LR)

	for it := 0; it < e.Cfg.Iterations; it++ {
		m, _, slope := renderExposure(p, dose, e.Cfg, beta, w, h)
		lg := sim.LossGrad(m, target, e.Cfg.WL2, e.Cfg.WPVB)

		gx := gradFlat[0:n]
		gy := gradFlat[n : 2*n]
		gr := gradFlat[2*n : 3*n]
		gd := gradFlat[3*n : 4*n]
		doseBackward(p, dose, e.Cfg, lg.GradM, slope, w, h, gx, gy, gr, gd)
		sparsity := 0.0
		for i := 0; i < n; i++ {
			sparsity += math.Abs(dose[i])
			gd[i] += e.Cfg.Gamma * sign(dose[i])
		}
		res.LossHistory = append(res.LossHistory, lg.Loss+e.Cfg.Gamma*sparsity)

		copy(flat[0:n], p.X)
		copy(flat[n:2*n], p.Y)
		copy(flat[2*n:3*n], p.R)
		copy(flat[3*n:4*n], dose)
		adam.Step(flat, gradFlat)
		copy(p.X, flat[0:n])
		copy(p.Y, flat[n:2*n])
		copy(p.R, flat[2*n:3*n])
		copy(dose, flat[3*n:4*n])
		for i := range dose {
			dose[i] = opt.Clip(dose[i], 0, dMax)
		}
		opt.Beat(sim.Ctx, it, lg.Loss+e.Cfg.Gamma*sparsity)
	}

	// Final shot list: quantized geometry, doses clipped into the writer's
	// band; shots below the keep threshold are dropped.
	kept := &Params{}
	var keptDose []float64
	for i := 0; i < n; i++ {
		if dose[i] < dKeep {
			continue
		}
		d := opt.Clip(dose[i], dMin, dMax)
		cx := opt.STERound(p.X[i], 0, float64(w-1))
		cy := opt.STERound(p.Y[i], 0, float64(h-1))
		cr := quantRadius(p.R[i], e.Cfg.RMin, e.Cfg.RMax)
		res.Shots = append(res.Shots, DoseShot{
			Circle: geom.Circle{X: cx, Y: cy, R: cr},
			Dose:   d,
		})
		kept.X = append(kept.X, cx)
		kept.Y = append(kept.Y, cy)
		kept.R = append(kept.R, cr)
		kept.Q = append(kept.Q, 1)
		keptDose = append(keptDose, d)
	}
	// The manufactured mask is the region where accumulated dose clears
	// the mask-resist threshold.
	res.Mask = grid.NewReal(w, h)
	if kept.Len() > 0 {
		_, exposure, _ := renderExposure(kept, keptDose, e.Cfg, beta, w, h)
		for i, ev := range exposure.Data {
			if ev > doseExposureThreshold {
				res.Mask.Data[i] = 1
			}
		}
	}
	return res
}
