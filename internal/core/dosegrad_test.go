package core

import (
	"math"
	"math/rand"
	"testing"

	"cfaopc/internal/grid"
)

// doseLoss evaluates L = Σ w ⊙ M̄ for the exposure render, the linear
// probe used to finite-difference the DoseOpt backward pass.
func doseLoss(p *Params, dose []float64, cfg Config, beta float64, wts *grid.Real) float64 {
	m, _, _ := renderExposure(p, dose, cfg, beta, wts.W, wts.H)
	return m.Dot(wts)
}

// Dose is the one DoseOpt parameter that is not quantized, so its
// gradient can be verified exactly by finite differences.
func TestDoseGradientMatchesFiniteDifference(t *testing.T) {
	cfg := testCfg()
	cfg.Alpha = 2
	const beta = 6.0
	w, h := 40, 40
	p := &Params{
		X: []float64{15, 24},
		Y: []float64{20, 22},
		R: []float64{5, 6},
		Q: []float64{1, 1},
	}
	dose := []float64{0.8, 0.6}
	rng := rand.New(rand.NewSource(17))
	wts := grid.NewReal(w, h)
	for i := range wts.Data {
		wts.Data[i] = rng.Float64()*2 - 1
	}

	m, _, slope := renderExposure(p, dose, cfg, beta, w, h)
	_ = m
	gx := make([]float64, 2)
	gy := make([]float64, 2)
	gr := make([]float64, 2)
	gd := make([]float64, 2)
	doseBackward(p, dose, cfg, wts, slope, w, h, gx, gy, gr, gd)

	const eps = 1e-6
	for i := range dose {
		orig := dose[i]
		dose[i] = orig + eps
		lp := doseLoss(p, dose, cfg, beta, wts)
		dose[i] = orig - eps
		lm := doseLoss(p, dose, cfg, beta, wts)
		dose[i] = orig
		num := (lp - lm) / (2 * eps)
		scale := math.Max(math.Abs(num), math.Abs(gd[i]))
		if scale < 1e-12 {
			continue
		}
		if math.Abs(num-gd[i]) > 2e-3*scale {
			t.Errorf("dose[%d]: analytic %g vs numeric %g", i, gd[i], num)
		}
	}
}

// The geometric gradients pass through STE quantization, so they cannot be
// finite-differenced directly; verify their direction instead: weight mass
// placed to the right of a circle must pull x rightward (more exposure
// there lowers the linear loss when weights are negative → gradient sign).
func TestDoseGeometricGradientDirection(t *testing.T) {
	cfg := testCfg()
	cfg.Alpha = 2
	const beta = 6.0
	w, h := 32, 32
	p := &Params{X: []float64{16}, Y: []float64{16}, R: []float64{5}, Q: []float64{1}}
	dose := []float64{1}

	// dL/dM̄ negative on the right half (mask wanted there).
	dLdM := grid.NewReal(w, h)
	for y := 0; y < h; y++ {
		for x := 17; x < w; x++ {
			dLdM.Set(x, y, -1)
		}
	}
	_, _, slope := renderExposure(p, dose, cfg, beta, w, h)
	gx := make([]float64, 1)
	gy := make([]float64, 1)
	gr := make([]float64, 1)
	gd := make([]float64, 1)
	doseBackward(p, dose, cfg, dLdM, slope, w, h, gx, gy, gr, gd)
	// Gradient descent moves x by −g; to move right, gx must be negative.
	if gx[0] >= 0 {
		t.Fatalf("x gradient %v should be negative (pull right)", gx[0])
	}
	// Wanting more mask everywhere also wants a larger radius and dose.
	if gr[0] >= 0 || gd[0] >= 0 {
		t.Fatalf("radius/dose gradients %v, %v should be negative", gr[0], gd[0])
	}
	// Vertical symmetry → essentially no y pull (the render window is one
	// pixel generous on the high side, so cancellation is approximate).
	if math.Abs(gy[0]) > 0.01*math.Abs(gx[0]) {
		t.Fatalf("y gradient %v should vanish by symmetry (gx %v)", gy[0], gx[0])
	}
}

func TestDoseBackwardUsesResistSlope(t *testing.T) {
	// With slope zeroed (saturated resist), no gradient flows.
	cfg := testCfg()
	w, h := 32, 32
	p := &Params{X: []float64{16}, Y: []float64{16}, R: []float64{5}, Q: []float64{1}}
	dose := []float64{1}
	dLdM := grid.NewReal(w, h)
	dLdM.Fill(1)
	zeroSlope := grid.NewReal(w, h)
	gx := make([]float64, 1)
	gy := make([]float64, 1)
	gr := make([]float64, 1)
	gd := make([]float64, 1)
	doseBackward(p, dose, cfg, dLdM, zeroSlope, w, h, gx, gy, gr, gd)
	if gx[0] != 0 || gy[0] != 0 || gr[0] != 0 || gd[0] != 0 {
		t.Fatal("gradient flowed through zero resist slope")
	}
}
