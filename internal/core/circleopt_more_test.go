package core

import (
	"testing"

	"cfaopc/internal/fracture"
	"cfaopc/internal/grid"
)

func TestLossHistoryLength(t *testing.T) {
	sim, target := circleOptSetup(t)
	cfg := testCfg()
	cfg.Iterations = 7
	res := (&CircleOpt{Cfg: cfg, InitIterations: 4}).Optimize(sim, target)
	if len(res.LossHistory) != 7 {
		t.Fatalf("loss history %d entries, want 7", len(res.LossHistory))
	}
}

func TestRuleConfigClampedToOptimizerBounds(t *testing.T) {
	sim, target := circleOptSetup(t)
	cfg := testCfg() // RMin 1.5 px, RMax 9.5 px at 8 nm/px
	rule := fracture.DefaultCircleRuleConfig(sim.DX)
	rule.RMin = 0.5 // below optimizer bound
	rule.RMax = 50  // above optimizer bound
	cfg.Iterations = 5
	res := (&CircleOpt{Cfg: cfg, InitIterations: 4, RuleCfg: rule}).Optimize(sim, target)
	for _, s := range res.Shots {
		if s.R < cfg.RMin-1e-9 || s.R > cfg.RMax+1e-9 {
			t.Fatalf("seed escaping optimizer radius bounds: %+v", s)
		}
	}
}

func TestActiveShotsThresholdBoundary(t *testing.T) {
	cfg := testCfg()
	p := &Params{
		X: []float64{5, 10},
		Y: []float64{5, 10},
		R: []float64{3, 3},
		Q: []float64{cfg.QThreshold, cfg.QThreshold + 1e-9},
	}
	shots := p.ActiveShots(cfg, 32, 32)
	// Strictly-greater semantics: q == threshold is dropped.
	if len(shots) != 1 {
		t.Fatalf("%d shots at threshold boundary, want 1", len(shots))
	}
}

func TestRenderMarginCoversTransitionBand(t *testing.T) {
	cfg := testCfg()
	cfg.Alpha = 2 // wide transition
	cfg.Margin = 0
	p := &Params{X: []float64{16}, Y: []float64{16}, R: []float64{4}, Q: []float64{1}}
	d0 := Render(p, cfg, 32, 32, true)
	cfg.Margin = 6
	d6 := Render(p, cfg, 32, 32, true)
	// A larger margin must capture more of the sigmoid tail.
	if d6.M.Sum() <= d0.M.Sum() {
		t.Fatalf("margin did not extend the rendered window: %v vs %v", d6.M.Sum(), d0.M.Sum())
	}
}

func TestBackwardZeroGradientIsZero(t *testing.T) {
	cfg := testCfg()
	p := &Params{X: []float64{16}, Y: []float64{16}, R: []float64{4}, Q: []float64{1}}
	d := Render(p, cfg, 32, 32, true)
	g := Backward(p, cfg, d, grid.NewReal(32, 32))
	if g.X[0] != 0 || g.Y[0] != 0 || g.R[0] != 0 || g.Q[0] != 0 {
		t.Fatal("zero upstream gradient produced nonzero parameter gradients")
	}
}

func TestConfigValidatePanicsOnBadBounds(t *testing.T) {
	bad := testCfg()
	bad.RMax = bad.RMin - 1
	defer func() {
		if recover() == nil {
			t.Error("expected panic for RMax < RMin")
		}
	}()
	Render(&Params{}, bad, 8, 8, true)
}

func TestOptimizeFromShotsWarmRestart(t *testing.T) {
	sim, target := circleOptSetup(t)
	cfg := testCfg()
	cfg.Iterations = 10
	e := &CircleOpt{Cfg: cfg, InitIterations: 5}
	first := e.Optimize(sim, target)
	if len(first.Shots) == 0 {
		t.Fatal("no shots in first run")
	}
	// Warm restart from the first run's shots must work and not regress
	// the loss (the seeds are already optimized).
	second := e.OptimizeFromShots(sim, target, first.Shots)
	if len(second.Shots) == 0 {
		t.Fatal("warm restart lost all shots")
	}
	f1 := first.LossHistory[len(first.LossHistory)-1]
	f2 := second.LossHistory[len(second.LossHistory)-1]
	if f2 > 1.5*f1 {
		t.Fatalf("warm restart regressed loss: %v → %v", f1, f2)
	}
}

func TestOptimizeFromShotsEmptySeeds(t *testing.T) {
	sim, _ := circleOptSetup(t)
	cfg := testCfg()
	cfg.Iterations = 3
	res := (&CircleOpt{Cfg: cfg}).OptimizeFromShots(sim, grid.NewReal(64, 64), nil)
	if res.Mask == nil || res.Mask.Sum() != 0 {
		t.Fatal("empty seeds should produce an empty mask")
	}
}
