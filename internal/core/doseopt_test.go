package core

import (
	"math"
	"testing"

	"cfaopc/internal/grid"
)

func TestRenderExposureAdditive(t *testing.T) {
	cfg := testCfg()
	p := &Params{
		X: []float64{16, 16},
		Y: []float64{16, 16},
		R: []float64{5, 5},
		Q: []float64{1, 1},
	}
	// Two coincident half-dose shots accumulate to full exposure.
	_, expo, _ := renderExposure(p, []float64{0.5, 0.5}, cfg, 6, 32, 32)
	if v := expo.At(16, 16); math.Abs(v-1.0) > 0.05 {
		t.Fatalf("stacked exposure %v, want ≈1", v)
	}
	m, _, _ := renderExposure(p, []float64{0.5, 0.5}, cfg, 6, 32, 32)
	if m.At(16, 16) < 0.9 {
		t.Fatalf("stacked half-dose shots do not clear the resist: %v", m.At(16, 16))
	}
	// One half-dose shot alone stays below threshold.
	single := &Params{X: []float64{16}, Y: []float64{16}, R: []float64{5}, Q: []float64{1}}
	m1, _, _ := renderExposure(single, []float64{0.4}, cfg, 6, 32, 32)
	if m1.At(16, 16) > 0.4 {
		t.Fatalf("single low-dose shot printed: %v", m1.At(16, 16))
	}
}

func TestDoseOptEndToEnd(t *testing.T) {
	sim, target := circleOptSetup(t)
	cfg := testCfg()
	e := &DoseOpt{Cfg: cfg, InitIterations: 8}
	res := e.Optimize(sim, target)
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
	for _, s := range res.Shots {
		if s.Dose < 0.3-1e-9 || s.Dose > 1.5+1e-9 {
			t.Fatalf("dose %v outside writer band", s.Dose)
		}
		if s.R != math.Round(s.R) || s.X != math.Round(s.X) || s.Y != math.Round(s.Y) {
			t.Fatalf("shot not quantized: %+v", s)
		}
	}
	// Loss decreases.
	first, last := res.LossHistory[0], res.LossHistory[len(res.LossHistory)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
	// The print must resemble the target.
	r := sim.Simulate(res.Mask)
	diff := 0
	for i := range target.Data {
		if (r.ZNom.Data[i] > 0.5) != (target.Data[i] > 0.5) {
			diff++
		}
	}
	if diff > int(target.Sum()) {
		t.Fatalf("printed image far from target: %d differing px", diff)
	}
}

func TestDoseOptEmptyTarget(t *testing.T) {
	sim, _ := circleOptSetup(t)
	cfg := testCfg()
	cfg.Iterations = 5
	res := (&DoseOpt{Cfg: cfg, InitIterations: 3}).Optimize(sim, grid.NewReal(64, 64))
	if res.Mask == nil {
		t.Fatal("nil mask")
	}
}

func TestDoseOptComparableToCircleOpt(t *testing.T) {
	// The dose extension must not be dramatically worse than CircleOpt on
	// the same budget (it has a strictly larger design space).
	sim, target := circleOptSetup(t)
	cfg := testCfg()
	co := (&CircleOpt{Cfg: cfg, InitIterations: 8}).Optimize(sim, target)
	do := (&DoseOpt{Cfg: cfg, InitIterations: 8}).Optimize(sim, target)

	l2 := func(mask *grid.Real) float64 {
		r := sim.Simulate(mask)
		n := 0.0
		for i := range target.Data {
			if (r.ZNom.Data[i] > 0.5) != (target.Data[i] > 0.5) {
				n++
			}
		}
		return n
	}
	a, b := l2(co.Mask), l2(do.Mask)
	if b > 2*a+20 {
		t.Fatalf("DoseOpt print L2 %v far worse than CircleOpt %v", b, a)
	}
}
