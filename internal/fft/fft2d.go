package fft

import "cfaopc/internal/grid"

// Forward2D computes the in-place 2D forward DFT of g (rows first, then
// columns).
func Forward2D(g *grid.Complex) { transform2D(g, true) }

// Inverse2D computes the in-place 2D inverse DFT of g, scaled by 1/(W·H).
func Inverse2D(g *grid.Complex) { transform2D(g, false) }

func transform2D(g *grid.Complex, forward bool) {
	rowPlan := cachedPlan(g.W)
	colPlan := cachedPlan(g.H)
	for y := 0; y < g.H; y++ {
		row := g.Data[y*g.W : (y+1)*g.W]
		if forward {
			rowPlan.Forward(row)
		} else {
			rowPlan.Inverse(row)
		}
	}
	col := make([]complex128, g.H)
	for x := 0; x < g.W; x++ {
		for y := 0; y < g.H; y++ {
			col[y] = g.Data[y*g.W+x]
		}
		if forward {
			colPlan.Forward(col)
		} else {
			colPlan.Inverse(col)
		}
		for y := 0; y < g.H; y++ {
			g.Data[y*g.W+x] = col[y]
		}
	}
}

// Convolve returns the circular convolution of two equal-size complex grids
// computed via the frequency domain. Inputs are not modified.
func Convolve(a, b *grid.Complex) *grid.Complex {
	fa := a.Clone()
	fb := b.Clone()
	Forward2D(fa)
	Forward2D(fb)
	fa.MulPointwise(fb)
	Inverse2D(fa)
	return fa
}
