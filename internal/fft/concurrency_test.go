package fft

import (
	"math/cmplx"
	"sync"
	"testing"
)

// Cached plans must be safe to share across goroutines: the radix-2 and
// Bluestein states are read-only after construction, and each Forward call
// operates on caller-owned buffers.
func TestConcurrentTransforms(t *testing.T) {
	const n = 96 // Bluestein path (not a power of two)
	ref := randomSignal(n, 99)
	want := append([]complex128(nil), ref...)
	Forward(want)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				x := append([]complex128(nil), ref...)
				Forward(x)
				for i := range x {
					if cmplx.Abs(x[i]-want[i]) > 1e-9 {
						errs <- "concurrent transform diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestConcurrentPlanCreation(t *testing.T) {
	// Hammer the plan cache with many sizes at once.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, size := range []int{17 + g, 33 + g, 64, 100 + g} {
				x := randomSignal(size, int64(size))
				Forward(x)
				Inverse(x)
			}
		}()
	}
	wg.Wait()
}
