package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"cfaopc/internal/grid"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	// Mix of power-of-two and Bluestein lengths.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 35, 64, 100, 128} {
		x := randomSignal(n, int64(n))
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		Forward(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %g vs naive DFT", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 6, 8, 15, 32, 33, 128, 200} {
		x := randomSignal(n, int64(100+n))
		y := append([]complex128(nil), x...)
		Forward(y)
		Inverse(y)
		if e := maxErr(x, y); e > 1e-10*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, e)
		}
	}
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	p := NewPlan(8)
	if p.Len() != 8 {
		t.Fatalf("Len = %d", p.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Forward with wrong length did not panic")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestNewPlanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPlan(0) did not panic")
		}
	}()
	NewPlan(0)
}

func TestImpulseTransform(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse DFT[%d] = %v, want 1", i, v)
		}
	}
}

// Property: linearity — FFT(a·x + b·y) == a·FFT(x) + b·FFT(y).
func TestLinearity(t *testing.T) {
	f := func(seed int64) bool {
		n := 48 // Bluestein path
		rng := rand.New(rand.NewSource(seed))
		a := complex(rng.Float64(), rng.Float64())
		b := complex(rng.Float64(), rng.Float64())
		x := randomSignal(n, seed+1)
		y := randomSignal(n, seed+2)
		lhs := make([]complex128, n)
		for i := range lhs {
			lhs[i] = a*x[i] + b*y[i]
		}
		Forward(lhs)
		Forward(x)
		Forward(y)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(a*x[i]+b*y[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval — Σ|x|² == (1/N)·Σ|X|².
func TestParseval(t *testing.T) {
	f := func(seed int64) bool {
		n := 64
		x := randomSignal(n, seed)
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		Forward(x)
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-9*timeE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: time shift ↔ frequency phase ramp.
func TestShiftTheorem(t *testing.T) {
	n := 32
	x := randomSignal(n, 7)
	shifted := make([]complex128, n)
	const s = 5
	for i := range shifted {
		shifted[i] = x[(i+s)%n]
	}
	Forward(x)
	Forward(shifted)
	for k := 0; k < n; k++ {
		phase := cmplx.Exp(complex(0, 2*math.Pi*float64(k*s)/float64(n)))
		if cmplx.Abs(shifted[k]-x[k]*phase) > 1e-9 {
			t.Fatalf("shift theorem violated at k=%d", k)
		}
	}
}

func TestForward2DMatchesNaive(t *testing.T) {
	w, h := 4, 3
	g := grid.NewComplex(w, h)
	rng := rand.New(rand.NewSource(3))
	for i := range g.Data {
		g.Data[i] = complex(rng.Float64(), rng.Float64())
	}
	want := grid.NewComplex(w, h)
	for ky := 0; ky < h; ky++ {
		for kx := 0; kx < w; kx++ {
			var s complex128
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					ang := -2 * math.Pi * (float64(kx*x)/float64(w) + float64(ky*y)/float64(h))
					s += g.At(x, y) * cmplx.Exp(complex(0, ang))
				}
			}
			want.Set(kx, ky, s)
		}
	}
	got := g.Clone()
	Forward2D(got)
	for i := range want.Data {
		if cmplx.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("2D DFT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func Test2DRoundTrip(t *testing.T) {
	g := grid.NewComplex(16, 8)
	rng := rand.New(rand.NewSource(11))
	for i := range g.Data {
		g.Data[i] = complex(rng.Float64(), rng.Float64())
	}
	orig := g.Clone()
	Forward2D(g)
	Inverse2D(g)
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig.Data[i]) > 1e-10 {
			t.Fatalf("2D roundtrip error at %d", i)
		}
	}
}

func TestConvolveDeltaIsIdentity(t *testing.T) {
	n := 8
	a := grid.NewComplex(n, n)
	rng := rand.New(rand.NewSource(5))
	for i := range a.Data {
		a.Data[i] = complex(rng.Float64(), 0)
	}
	delta := grid.NewComplex(n, n)
	delta.Set(0, 0, 1)
	c := Convolve(a, delta)
	for i := range a.Data {
		if cmplx.Abs(c.Data[i]-a.Data[i]) > 1e-10 {
			t.Fatalf("delta convolution not identity at %d", i)
		}
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	n := 6
	a := grid.NewComplex(n, n)
	b := grid.NewComplex(n, n)
	rng := rand.New(rand.NewSource(9))
	for i := range a.Data {
		a.Data[i] = complex(rng.Float64(), rng.Float64())
		b.Data[i] = complex(rng.Float64(), rng.Float64())
	}
	want := grid.NewComplex(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			var s complex128
			for v := 0; v < n; v++ {
				for u := 0; u < n; u++ {
					s += a.At(u, v) * b.At(((x-u)%n+n)%n, ((y-v)%n+n)%n)
				}
			}
			want.Set(x, y, s)
		}
	}
	got := Convolve(a, b)
	for i := range want.Data {
		if cmplx.Abs(got.Data[i]-want.Data[i]) > 1e-8 {
			t.Fatalf("convolution mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func BenchmarkFFT2D512(b *testing.B) {
	g := grid.NewComplex(512, 512)
	for i := range g.Data {
		g.Data[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward2D(g)
	}
}
