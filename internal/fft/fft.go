// Package fft implements one- and two-dimensional discrete Fourier
// transforms over complex128 slices: an iterative radix-2 Cooley–Tukey
// kernel for power-of-two lengths and Bluestein's chirp-z algorithm for
// every other length. It exists so the lithography simulator can evaluate
// Hopkins convolutions as frequency-domain products without external
// dependencies.
//
// Transforms use the engineering convention: Forward applies
// X[k] = Σ x[n]·exp(-2πi·kn/N) with no scaling, Inverse applies the
// conjugate kernel scaled by 1/N, so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan caches the twiddle factors and scratch state for transforms of a
// fixed length. Plans are safe for concurrent use after creation only if
// each goroutine uses its own scratch; the package-level helpers serialize
// through a cache, so typical callers never touch Plan directly.
type Plan struct {
	n        int
	pow2     bool
	twiddles []complex128 // forward twiddles for radix-2, length n/2
	// Bluestein state (nil for power-of-two sizes).
	bluM    int          // convolution length, power of two ≥ 2n-1
	bluW    []complex128 // chirp exp(-iπ k²/n), length n
	bluFB   []complex128 // precomputed FFT of the chirp filter, length bluM
	bluPlan *Plan        // radix-2 plan of length bluM
}

// NewPlan builds a transform plan for length n.
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	p := &Plan{n: n, pow2: n&(n-1) == 0}
	if p.pow2 {
		p.twiddles = make([]complex128, n/2)
		for k := range p.twiddles {
			ang := -2 * math.Pi * float64(k) / float64(n)
			p.twiddles[k] = complex(math.Cos(ang), math.Sin(ang))
		}
		return p
	}
	// Bluestein setup: x[k]·w[k] convolved with conj(w) gives the DFT.
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.bluM = m
	p.bluPlan = NewPlan(m)
	p.bluW = make([]complex128, n)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		// Use k² mod 2n to avoid float blowup for large k.
		ang := -math.Pi * float64((k*k)%(2*n)) / float64(n)
		w := complex(math.Cos(ang), math.Sin(ang))
		p.bluW[k] = w
		cw := complex(real(w), -imag(w))
		b[k] = cw
		if k > 0 {
			b[m-k] = cw
		}
	}
	p.bluPlan.forward(b)
	p.bluFB = b
	return p
}

// Len returns the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// Forward computes the in-place forward DFT of x, which must have length
// Len().
func (p *Plan) Forward(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: length %d does not match plan %d", len(x), p.n))
	}
	p.forward(x)
}

// Inverse computes the in-place inverse DFT of x (scaled by 1/N).
func (p *Plan) Inverse(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: length %d does not match plan %d", len(x), p.n))
	}
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	p.forward(x)
	inv := 1 / float64(p.n)
	for i, v := range x {
		x[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

func (p *Plan) forward(x []complex128) {
	if p.pow2 {
		p.radix2(x)
		return
	}
	p.bluestein(x)
}

// radix2 is an iterative decimation-in-time Cooley–Tukey transform.
func (p *Plan) radix2(x []complex128) {
	n := p.n
	if n == 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				t := x[k+half] * p.twiddles[tw]
				x[k+half] = x[k] - t
				x[k] += t
				tw += step
			}
		}
	}
}

// bluestein evaluates an arbitrary-length DFT as a chirp-z convolution.
func (p *Plan) bluestein(x []complex128) {
	n, m := p.n, p.bluM
	a := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.bluW[k]
	}
	p.bluPlan.forward(a)
	for i := range a {
		a[i] *= p.bluFB[i]
	}
	p.bluPlan.Inverse(a)
	for k := 0; k < n; k++ {
		x[k] = a[k] * p.bluW[k]
	}
}

var (
	planMu    sync.Mutex
	planCache = map[int]*Plan{}
)

func cachedPlan(n int) *Plan {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p
	}
	p := NewPlan(n)
	planCache[n] = p
	return p
}

// Forward computes the in-place forward DFT of x using a cached plan.
func Forward(x []complex128) { cachedPlan(len(x)).Forward(x) }

// Inverse computes the in-place inverse DFT of x using a cached plan.
func Inverse(x []complex128) { cachedPlan(len(x)).Inverse(x) }
