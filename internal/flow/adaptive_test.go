package flow

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/layout"
	"cfaopc/internal/quarantine"
	"cfaopc/internal/wcache"
)

// adaptiveLayout is crafted to exercise every classification the plan
// makes on a 256-grid / 32-core / 12-halo tiling (8×8 cells, 4 nm/px):
// a dense block over cell (1,1) splits, a 2×2-px speck in cell (5,5)
// makes its 2×2 block a non-empty merge, and the untouched blocks merge
// as provably-empty skips.
func adaptiveLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "adaptive",
		TileNM: 1024,
		Rects: []layout.Rect{
			{X: 112, Y: 112, W: 160, H: 160}, // floods cell (1,1)'s window: splits
			{X: 700, Y: 700, W: 8, H: 8},     // speck in cell (5,5): sparse merge
		},
	}
}

func adaptiveConfig() Config {
	cfg := cacheConfig() // 32-core rule-engine tiling
	// Halo 12, not 8: the split sub-window is then 40 px (160 nm), which
	// the default optics can build kernels for — 32 px (128 nm) lands on
	// a pupil-sampling null and litho.New rejects it.
	cfg.HaloPx = 12
	cfg.AdaptiveTiles = true
	return cfg
}

// TestPlanTilesUniform pins the uniform plan to the historical row-major
// CorePx grid: indices, origins, and uniform core/window edges.
func TestPlanTilesUniform(t *testing.T) {
	cfg := testConfig() // 256 grid, 128 core, 32 halo → 2×2
	ix := layout.NewWindowIndex(bigLayout(), cfg.GridN)
	p := planTiles(cfg, ix)
	want := []tileJob{
		{index: 0, cx: 0, cy: 0, core: 128, window: 192},
		{index: 1, cx: 128, cy: 0, core: 128, window: 192},
		{index: 2, cx: 0, cy: 128, core: 128, window: 192},
		{index: 3, cx: 128, cy: 128, core: 128, window: 192},
	}
	if !reflect.DeepEqual(p.jobs, want) {
		t.Fatalf("uniform plan = %+v, want %+v", p.jobs, want)
	}
	if p.merged != 0 || p.split != 0 || p.skipped != 0 {
		t.Fatalf("uniform plan recorded adaptive activity: %+v", p)
	}
	if !reflect.DeepEqual(p.perRow, []int{2, 2}) || len(p.sizes) != 1 || p.sizes[0] != 192 {
		t.Fatalf("uniform plan bookkeeping: perRow=%v sizes=%v", p.perRow, p.sizes)
	}
}

// TestAdaptivePlanClassifiesAndPartitions drives the adaptive planner
// over the crafted layout: the plan is deterministic, classifies every
// region as designed, stays sorted in journal order, and its cores
// partition the grid — every pixel owned by exactly one tile, the
// invariant stitching correctness rests on.
func TestAdaptivePlanClassifiesAndPartitions(t *testing.T) {
	cfg := adaptiveConfig()
	ix := layout.NewWindowIndex(adaptiveLayout(), cfg.GridN)
	p := planTiles(cfg, ix)
	p2 := planTiles(cfg, ix)
	if !reflect.DeepEqual(p.jobs, p2.jobs) {
		t.Fatal("adaptive plan is not deterministic")
	}
	if p.merged == 0 || p.split == 0 || p.skipped == 0 {
		t.Fatalf("plan classified merged=%d split=%d skipped=%d; the crafted layout should hit all three", p.merged, p.split, p.skipped)
	}
	var mergedLive, skips int
	for _, j := range p.jobs {
		if j.core == 2*cfg.CorePx && !j.skip {
			mergedLive++
		}
		if j.skip {
			skips++
		}
	}
	if mergedLive == 0 {
		t.Fatal("no live (non-skip) merged tile; the speck block should merge without skipping")
	}
	if skips != p.skipped {
		t.Fatalf("%d skip jobs vs %d counted", skips, p.skipped)
	}

	for i, j := range p.jobs {
		if j.index != i {
			t.Fatalf("job %d carries index %d; indices must be journal keys in sorted order", i, j.index)
		}
		if i > 0 {
			prev := p.jobs[i-1]
			if j.cy < prev.cy || (j.cy == prev.cy && j.cx <= prev.cx) {
				t.Fatalf("jobs not sorted by (cy, cx): %+v after %+v", j, prev)
			}
		}
		if j.window != j.core+2*cfg.HaloPx {
			t.Fatalf("job %d window %d != core %d + 2·halo", i, j.window, j.core)
		}
	}

	owners := make([]int, cfg.GridN*cfg.GridN)
	for _, j := range p.jobs {
		for y := j.cy; y < j.cy+j.core && y < cfg.GridN; y++ {
			for x := j.cx; x < j.cx+j.core && x < cfg.GridN; x++ {
				owners[y*cfg.GridN+x]++
			}
		}
	}
	for i, n := range owners {
		if n != 1 {
			t.Fatalf("pixel (%d,%d) owned by %d cores, want exactly 1", i%cfg.GridN, i/cfg.GridN, n)
		}
	}

	// Skip tiles are provably empty: their windows hold no occupancy.
	for _, j := range p.jobs {
		if j.skip {
			if occ := ix.Occupancy(j.cx-cfg.HaloPx, j.cy-cfg.HaloPx, j.window, j.window); occ != 0 {
				t.Fatalf("skip tile at (%d,%d) has occupancy %d", j.cx, j.cy, occ)
			}
		}
	}
}

// TestAdaptiveThresholdValidation rejects out-of-range adaptive knobs.
func TestAdaptiveThresholdValidation(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.AdaptiveMergeMax = 1.5
	if _, err := Run(adaptiveLayout(), cfg); err == nil {
		t.Error("merge threshold > 1 accepted")
	}
	cfg = adaptiveConfig()
	cfg.AdaptiveSplitMin = -0.1
	if _, err := Run(adaptiveLayout(), cfg); err == nil {
		t.Error("negative split threshold accepted")
	}
}

// TestAdaptiveRunDeterminismAndStreaming is the adaptive analogue of
// the core determinism contract: serial, parallel, and proc-mode
// adaptive runs produce byte-identical shots and stats, streamed bands
// reassemble to exactly the dense mask even with merged tiles spanning
// two band rows, and skip tiles contribute nothing without ever
// rasterizing.
func TestAdaptiveRunDeterminismAndStreaming(t *testing.T) {
	l := adaptiveLayout()
	mk := func(w MaskWriter) Config {
		cfg := adaptiveConfig()
		cfg.MaskWriter = w
		return cfg
	}

	refColl := NewMaskCollector(testConfig().GridN)
	refCfg := mk(refColl)
	refCfg.TileWorkers = 1
	ref, err := Run(l, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Shots) == 0 {
		t.Fatal("no shots")
	}
	if ref.Merged == 0 || ref.Split == 0 || ref.Skipped == 0 {
		t.Fatalf("run summary merged=%d split=%d skipped=%d", ref.Merged, ref.Split, ref.Skipped)
	}
	if ref.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("adaptive streamed bands differ from the dense mask")
	}
	for _, st := range ref.TileStats {
		if st.Core == 0 || st.Window == 0 {
			t.Fatalf("stat %d missing geometry: %+v", st.Index, st)
		}
		skip := st.RasterWall == 0 && !st.Occupied && st.Attempts == 0
		if st.Shots != 0 && skip {
			t.Fatalf("skip tile %d produced shots", st.Index)
		}
	}

	parColl := NewMaskCollector(testConfig().GridN)
	parCfg := mk(parColl)
	parCfg.TileWorkers = 8
	par, err := Run(l, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, par, ref)
	if parColl.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("parallel adaptive bands differ from serial")
	}

	procColl := NewMaskCollector(testConfig().GridN)
	procCfg := mk(procColl)
	procCfg.Fallback = ruleFallback()
	procCfg.Engines = quarantine.EngineMeta{Primary: "rule", Fallback: "rule"}
	procCfg.ProcWorkers = 4
	procCfg.WorkerCmd = testWorkerCmd(t)
	proc, err := Run(l, procCfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, proc, ref)
	if procColl.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("proc adaptive bands differ from serial")
	}
}

// TestAdaptiveCacheCompose runs the tentpole pair together on the
// repeated-cell array: adaptive planning plus the dedup cache, still
// byte-identical to the adaptive uncached run, with the dense cells
// deduplicating across the array.
func TestAdaptiveCacheCompose(t *testing.T) {
	l := arrayLayout()
	cfg := adaptiveConfig()
	cfg.TileWorkers = 1
	ref, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg = adaptiveConfig()
	cfg.TileWorkers = 1
	cfg.Cache = mustCache(t, wcache.Config{})
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Fatal("adaptive cached run recorded no hits over a repeated-cell array")
	}
	sameResult(t, res, ref)
}

// TestAdaptiveCheckpointBinding: the adaptive knobs are part of the
// journal fingerprint, so a uniform-mode journal cannot silently resume
// an adaptive run (the tile indices mean different windows).
func TestAdaptiveCheckpointBinding(t *testing.T) {
	l := adaptiveLayout()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := adaptiveConfig()
	cfg.AdaptiveTiles = false
	cfg.CheckpointPath = ckpt
	if _, err := Run(l, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.AdaptiveTiles = true
	if _, err := Run(l, cfg); !errors.Is(err, checkpoint.ErrHeaderMismatch) {
		t.Fatalf("err = %v, want ErrHeaderMismatch", err)
	}
	cfg.AdaptiveTiles = false
	cfg.AdaptiveSplitMin = 0.5 // threshold change alone rebinds too
	if _, err := Run(l, cfg); !errors.Is(err, checkpoint.ErrHeaderMismatch) {
		t.Fatalf("threshold-changed err = %v, want ErrHeaderMismatch", err)
	}
}
