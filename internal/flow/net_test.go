package flow

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cfaopc/internal/netpool"
	"cfaopc/internal/procpool"
	"cfaopc/internal/quarantine"
)

// netListenEnv carries the listen address into a re-exec'd TCP host.
// The worker env var is set alongside it, so flow.Fault.Kill scripts
// (which key on procpool.InWorker) can SIGKILL a whole host mid-tile.
const netListenEnv = "CFAOPC_TEST_NET_HOST"

// runNetHost is the child-side TCP host: listen, announce the bound
// address on stdout for the parent to scrape, and serve handshaken
// coordinator sessions with the test engine registry until killed.
func runNetHost(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "net host: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	srv := &netpool.Server{Runner: testRunner}
	if err := srv.Serve(ln); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// testHost supervises one re-exec'd loopback host process. With respawn
// enabled it relaunches the process on the same address whenever it
// dies — the "operator restarts the crashed shard" role the coordinator's
// reconnect loop is built against.
type testHost struct {
	t       *testing.T
	addr    string
	respawn bool

	mu   sync.Mutex
	cmd  *exec.Cmd
	stop bool
}

func startHost(t *testing.T, respawn bool) *testHost {
	t.Helper()
	h := &testHost{t: t, respawn: respawn}
	addr, err := h.spawn("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.addr = addr
	if respawn {
		go h.respawnLoop()
	}
	t.Cleanup(h.Close)
	return h
}

// spawn launches the host process on addr and scrapes the bound address
// from its LISTEN line.
func (h *testHost) spawn(addr string) (string, error) {
	self, err := os.Executable()
	if err != nil {
		return "", err
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), procpool.WorkerEnv+"=1", netListenEnv+"="+addr)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", err
	}
	if err := cmd.Start(); err != nil {
		return "", err
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if bound, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
			go io.Copy(io.Discard, out)
			h.mu.Lock()
			h.cmd = cmd
			h.mu.Unlock()
			return bound, nil
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	return "", fmt.Errorf("host on %s exited before announcing its address", addr)
}

// respawnLoop relaunches the host on its pinned address every time the
// process dies (e.g. a scripted Fault.Kill), until Close.
func (h *testHost) respawnLoop() {
	for {
		h.mu.Lock()
		cmd, stop := h.cmd, h.stop
		h.mu.Unlock()
		if stop || cmd == nil {
			return
		}
		cmd.Wait()
		for {
			h.mu.Lock()
			stop = h.stop
			h.mu.Unlock()
			if stop {
				return
			}
			if _, err := h.spawn(h.addr); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func (h *testHost) Close() {
	h.mu.Lock()
	h.stop = true
	cmd := h.cmd
	h.cmd = nil
	h.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		if !h.respawn {
			cmd.Wait() // the respawn loop owns Wait otherwise
		}
	}
}

// deadAddr returns a loopback address nothing listens on: dials get
// connection-refused — the observable shape of a partitioned host.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// netConfig is the shared remote-mode config: cheap deterministic rule
// engine on both rungs, fast reconnect backoff so link-failure loops
// resolve in test time.
func netConfig(t *testing.T, hosts ...string) Config {
	t.Helper()
	cfg := testConfig()
	cfg.Optimize = ruleFallback()
	cfg.Fallback = ruleFallback()
	cfg.Engines = quarantine.EngineMeta{Primary: "rule", Fallback: "rule"}
	cfg.RemoteHosts = hosts
	cfg.RemoteBackoff = 10 * time.Millisecond
	return cfg
}

func TestNetValidation(t *testing.T) {
	l := bigLayout()
	cfg := netConfig(t, "127.0.0.1:1")
	cfg.ProcWorkers = 1
	cfg.WorkerCmd = testWorkerCmd(t)
	if _, err := Run(l, cfg); err == nil {
		t.Error("RemoteHosts together with ProcWorkers accepted")
	}
	cfg = netConfig(t, "127.0.0.1:1")
	cfg.Engines = quarantine.EngineMeta{}
	if _, err := Run(l, cfg); err == nil {
		t.Error("RemoteHosts without engine metadata accepted")
	}
}

// TestNetAcceptance is the issue's acceptance scenario: three loopback
// hosts, two of them SIGKILLed mid-tile by fault scripts (and restarted
// by their supervisor, so the coordinator's reconnect recovers), the
// third a partitioned address that circuit-breaks its slot into the
// local ladder. The run completes, the degradations are recorded, and
// shots, stats and streamed bands are byte-identical to the serial
// in-process reference. A second leg interrupts the run mid-tile
// (drain + checkpoint) and resumes it, again byte-identically.
func TestNetAcceptance(t *testing.T) {
	l := quadLayout()
	hostA := startHost(t, true)
	hostB := startHost(t, true)
	plan := FaultPlan{
		1: {{Kill: 1}}, // killed on the first dispatch, clean on reconnect
		2: {{Kill: 1}}, // same, on another tile
	}
	mk := func(w MaskWriter) Config {
		cfg := netConfig(t, hostA.addr, hostB.addr, deadAddr(t))
		// Generous limit and backoff: a killed host needs time to be
		// restarted before its slot's reconnect budget runs out.
		cfg.RemoteCrashLimit = 6
		cfg.RemoteBackoff = 25 * time.Millisecond
		cfg.Faults = plan
		cfg.MaskWriter = w
		return cfg
	}

	refColl := NewMaskCollector(testConfig().GridN)
	ref, err := Run(l, serialRef(mk(refColl)))
	if err != nil {
		t.Fatal(err)
	}
	if ref.RemoteCrashes != 0 || ref.RemoteBroken != 0 {
		t.Fatalf("serial reference recorded remote activity: %+v", ref)
	}

	netColl := NewMaskCollector(testConfig().GridN)
	res, err := Run(l, mk(netColl))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Fatalf("Completed = %d, want 4", res.Completed)
	}
	// The partitioned slot alone burns RemoteCrashLimit dials before its
	// breaker opens; the scripted kills add more when their tiles land on
	// a live host. Exact counts depend on which slot drew which tile, so
	// the assertions are floors.
	if res.RemoteBroken < 1 {
		t.Errorf("RemoteBroken = %d, want >= 1 (partitioned slot)", res.RemoteBroken)
	}
	if res.RemoteCrashes < 6 {
		t.Errorf("RemoteCrashes = %d, want >= RemoteCrashLimit", res.RemoteCrashes)
	}
	sameResult(t, res, ref)
	if netColl.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("remote run's streamed bands differ from the serial reference's")
	}

	// Interrupt + resume: every tile is slow enough that the drain fires
	// while the first wave is in flight (tile 4 never dispatches), the
	// journal holds what finished, and the resumed run replays to
	// byte-identical output.
	slow := Fault{Sleep: 200 * time.Millisecond}
	plan2 := FaultPlan{0: {slow}, 1: {slow}, 2: {slow}, 3: {slow}}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	mk2 := func(w MaskWriter) Config {
		cfg := mk(w)
		cfg.Faults = plan2
		cfg.CheckpointPath = ckpt
		return cfg
	}
	ref2Coll := NewMaskCollector(testConfig().GridN)
	ref2cfg := serialRef(mk2(ref2Coll))
	ref2cfg.CheckpointPath = ""
	ref2, err := Run(l, ref2cfg)
	if err != nil {
		t.Fatal(err)
	}

	drain := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(drain)
	}()
	cfg := mk2(NewMaskCollector(testConfig().GridN))
	cfg.Drain = drain
	dres, err := RunContext(context.Background(), l, cfg)
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("drained run err = %v, want ErrDrained", err)
	}
	if dres == nil || dres.Completed == 0 || dres.Completed == dres.Tiles {
		t.Fatalf("drained run completed %d of %d tiles; the drain landed outside the run", dres.Completed, dres.Tiles)
	}

	resColl := NewMaskCollector(testConfig().GridN)
	res2, err := Run(l, mk2(resColl))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != dres.Completed {
		t.Fatalf("resumed %d tiles, want the %d the drained run checkpointed", res2.Resumed, dres.Completed)
	}
	sameResult(t, res2, ref2)
	if resColl.Mask.SqDiff(ref2Coll.Mask) != 0 {
		t.Fatal("resumed run's streamed bands differ from the reference's")
	}
}

// TestNetMatrix is the CI net-matrix entry point: the fault kind and
// host count come from the environment (one cell per CI job), or every
// cell runs when the variables are unset. Each cell fronts every live
// host with a chaos proxy whose first connection suffers the scripted
// fault and whose later connections heal — except partition, where the
// hosts are plain unreachable addresses (which also covers the
// zero-reachable-hosts guarantee).
func TestNetMatrix(t *testing.T) {
	kinds := []string{"drop", "garble", "stall", "partition"}
	if v := os.Getenv("FLOW_NET_FAULT"); v != "" && v != "all" {
		kinds = []string{v}
	}
	counts := []int{1, 3}
	if v := os.Getenv("FLOW_NET_HOSTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("FLOW_NET_HOSTS = %q", v)
		}
		counts = []int{n}
	}
	l := quadLayout()
	// Network faults never touch the in-process reference, so one serial
	// run anchors every cell.
	ref, err := Run(l, serialRef(netConfig(t)))
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range kinds {
		for _, n := range counts {
			t.Run(fmt.Sprintf("%s/hosts=%d", kind, n), func(t *testing.T) {
				var hosts []string
				for i := 0; i < n; i++ {
					if kind == "partition" {
						hosts = append(hosts, deadAddr(t))
						continue
					}
					h := startHost(t, false)
					var script netpool.ConnScript
					switch kind {
					case "drop":
						script = netpool.ConnScript{Fault: netpool.FaultCut, AfterFrames: 2}
					case "garble":
						script = netpool.ConnScript{Fault: netpool.FaultGarble, AfterFrames: 2}
					case "stall":
						script = netpool.ConnScript{Fault: netpool.FaultStall, AfterFrames: 2}
					default:
						t.Fatalf("unknown fault kind %q", kind)
					}
					p, err := netpool.NewProxy(h.addr, script)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(p.Close)
					hosts = append(hosts, p.Addr())
				}
				cfg := netConfig(t, hosts...)
				cfg.RemoteCrashLimit = 3
				if kind == "stall" {
					cfg.RemoteSilence = 250 * time.Millisecond
				}
				res, err := Run(l, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Completed != res.Tiles {
					t.Fatalf("completed %d of %d tiles", res.Completed, res.Tiles)
				}
				if kind == "partition" {
					if res.RemoteBroken < 1 {
						t.Errorf("RemoteBroken = %d, want >= 1", res.RemoteBroken)
					}
					for _, st := range res.TileStats {
						if st.Host != "" {
							t.Errorf("tile %d claims host %q with no host reachable", st.Index, st.Host)
						}
					}
				}
				if res.RemoteCrashes < 1 {
					t.Errorf("RemoteCrashes = %d: the %s fault never bit", res.RemoteCrashes, kind)
				}
				sameResult(t, res, ref)
			})
		}
	}
}

// TestNetPartialRedispatch cuts the link right after the first Partial
// snapshot crosses it: the redispatch must consult the journaled
// partial and warm-start (fewer remaining iterations than the cold
// reference ran) while replaying the exact trajectory — byte-identical
// shots.
func TestNetPartialRedispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full CircleOpt runs: partial records only exist there")
	}
	l := bigLayout()
	host := startHost(t, false)
	p, err := netpool.NewProxy(host.addr, netpool.ConnScript{Fault: netpool.FaultCut, AfterPartials: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	mkCfg := func(hosts ...string) Config {
		cfg := netConfig(t, hosts...)
		cfg.Optimize = circleOptimizer(8)
		cfg.Fallback = nil
		cfg.Engines = quarantine.EngineMeta{Primary: "circle", Iters: 8}
		cfg.PartialEvery = 2
		cfg.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
		return cfg
	}
	ref, err := Run(l, serialRef(mkCfg()))
	if err != nil {
		t.Fatal(err)
	}

	res, err := Run(l, mkCfg(p.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteCrashes != 1 {
		t.Fatalf("RemoteCrashes = %d, want exactly the scripted cut", res.RemoteCrashes)
	}
	st := res.TileStats[0]
	if st.Host != p.Addr() || st.ProcCrashes != 1 {
		t.Fatalf("tile 0 stat after redispatch: %+v", st)
	}
	if st.Iters >= ref.TileStats[0].Iters {
		t.Fatalf("tile 0 iters %d not reduced by warm start (reference %d)",
			st.Iters, ref.TileStats[0].Iters)
	}
	res.TileStats[0].Iters = ref.TileStats[0].Iters
	sameResult(t, res, ref)
}

// TestNetZeroHostsDegradesLocal pins the bottom of the degradation
// ladder: with every configured host unreachable, every slot breaks to
// the shared in-process simulator and the run still completes,
// byte-identical to the serial reference.
func TestNetZeroHostsDegradesLocal(t *testing.T) {
	l := bigLayout()
	cfg := netConfig(t, deadAddr(t), deadAddr(t))
	cfg.RemoteCrashLimit = 2
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Tiles {
		t.Fatalf("completed %d of %d tiles", res.Completed, res.Tiles)
	}
	for _, st := range res.TileStats {
		if st.Host != "" || st.Proc {
			t.Errorf("tile %d claims remote/proc provenance: %+v", st.Index, st)
		}
	}
	ref, err := Run(l, serialRef(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, ref)
}
