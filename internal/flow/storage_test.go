package flow

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/iox"
	"cfaopc/internal/wcache"
)

// storageConfig is the cheap deterministic config the storage-fault and
// crash-consistency harnesses run: rule-engine tiles over quadLayout so
// dozens of full runs cost seconds, not minutes. GridN 128 / CorePx 64
// puts one occupied feature in each of the four windows.
func storageConfig() Config {
	cfg := testConfig()
	cfg.GridN = 128
	cfg.CorePx = 64
	cfg.HaloPx = 16
	cfg.KOpt = 3
	cfg.Optimize = ruleFallback()
	cfg.KeepMask = false
	cfg.TileWorkers = 1 // deterministic journal op order for the recorder
	return cfg
}

// TestCheckpointAppendFailureDegrades: mid-run ENOSPC on the checkpoint
// journal degrades the run to un-resumable-but-correct — identical
// shots, CheckpointDegraded set — instead of failing it. StrictStorage
// restores fail-fast.
func TestCheckpointAppendFailureDegrades(t *testing.T) {
	l := quadLayout()
	ref, err := Run(l, storageConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := storageConfig()
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "flow.ckpt")
	// Admit the journal birth (magic + header ≈ tens of bytes) and the
	// first tile record, then run dry.
	cfg.FS = iox.NewFaultFS(nil, iox.Plan{WriteBudget: 600})
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatalf("checkpoint ENOSPC must degrade, not fail: %v", err)
	}
	if !res.CheckpointDegraded || res.CheckpointErr == "" {
		t.Fatalf("degradation not reported: %+v", res)
	}
	if !reflect.DeepEqual(res.Shots, ref.Shots) {
		t.Fatal("degraded run's shots differ from reference")
	}
	// The torn journal must still open cleanly for the next run: every
	// record before the fault replays, the torn tail is dropped.
	res2, err := Run(l, mustCkptConfig(t, cfg.CheckpointPath))
	if err != nil {
		t.Fatalf("resume after degraded run: %v", err)
	}
	if !reflect.DeepEqual(res2.Shots, ref.Shots) {
		t.Fatal("resume after degraded run diverged")
	}

	strict := storageConfig()
	strict.CheckpointPath = filepath.Join(t.TempDir(), "flow.ckpt")
	strict.FS = iox.NewFaultFS(nil, iox.Plan{WriteBudget: 600})
	strict.StrictStorage = true
	if _, err := Run(l, strict); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("StrictStorage: err = %v, want checkpoint failure", err)
	}
}

func mustCkptConfig(t *testing.T, path string) Config {
	t.Helper()
	cfg := storageConfig()
	cfg.CheckpointPath = path
	return cfg
}

// TestStorageDegradeNeverFailsRun is the acceptance criterion verbatim:
// injected ENOSPC/EIO on the wcache disk tier or the quarantine dir
// never fails a run, and the shots stay byte-identical to a fault-free
// reference.
func TestStorageDegradeNeverFailsRun(t *testing.T) {
	l := quadLayout()
	ref, err := Run(l, storageConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []string{"enospc", "eio-sync"} {
		t.Run("wcache-"+kind, func(t *testing.T) {
			plan, err := iox.PlanForKind(kind)
			if err != nil {
				t.Fatal(err)
			}
			plan.WriteBudget = minBudget(plan.WriteBudget, 64)
			if plan.FailSyncAt > 0 {
				plan.FailSyncAt = 1
			}
			dir := filepath.Join(t.TempDir(), "cache")
			plan.PathSubstr = dir
			ff := iox.NewFaultFS(nil, plan)
			cache, err := wcache.New(wcache.Config{Dir: dir, FS: ff})
			if err != nil {
				t.Fatal(err)
			}
			cfg := storageConfig()
			cfg.Cache = cache
			res, err := Run(l, cfg)
			if err != nil {
				t.Fatalf("wcache %s fault failed the run: %v", kind, err)
			}
			if !reflect.DeepEqual(res.Shots, ref.Shots) {
				t.Fatalf("wcache %s fault changed the shots", kind)
			}
			st := cache.Stats()
			if st.DiskErrs == 0 || st.LastDiskErr == "" {
				t.Fatalf("fault did not register in cache stats: %+v", st)
			}
		})
		t.Run("quarantine-"+kind, func(t *testing.T) {
			plan, err := iox.PlanForKind(kind)
			if err != nil {
				t.Fatal(err)
			}
			plan.WriteBudget = minBudget(plan.WriteBudget, 64)
			if plan.FailSyncAt > 0 {
				plan.FailSyncAt = 1
			}
			qdir := filepath.Join(t.TempDir(), "quarantine")
			plan.PathSubstr = qdir
			cfg := storageConfig()
			cfg.Optimize = ruleFallback()
			cfg.Fallback = nil
			cfg.QuarantineDir = qdir
			cfg.Faults = FaultPlan{0: {{Panic: true}}}
			cfg.FS = iox.NewFaultFS(nil, plan)
			res, err := Run(l, cfg)
			if err != nil {
				t.Fatalf("quarantine %s fault failed the run: %v", kind, err)
			}
			if res.Empty != 1 {
				t.Fatalf("want the faulted tile empty, got %d", res.Empty)
			}
			if res.QuarantineDropped == 0 {
				t.Fatalf("bundle loss not counted: %+v", res)
			}
		})
	}
}

func minBudget(a, b int64) int64 {
	if a == 0 || b < a {
		return b
	}
	return a
}

// TestCrashConsistency is the flow half of the tentpole harness: record
// every filesystem mutation of a checkpointed run, then for EVERY
// write-op prefix (plus a torn variant of each journal write)
// materialize the crash state into a scratch dir and resume from it.
// Recovery must always be a clean run with byte-identical shots, or an
// explicit typed error — never corruption, never divergence.
func TestCrashConsistency(t *testing.T) {
	l := quadLayout()
	ref, err := Run(l, storageConfig())
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	rec := iox.NewRecorder(nil, root)
	cfg := storageConfig()
	cfg.FS = rec
	cfg.CheckpointPath = filepath.Join(root, "flow.ckpt")
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Shots, ref.Shots) {
		t.Fatal("recorded run diverged from reference")
	}
	ops := rec.Ops()
	if len(ops) < 6 { // create + magic + header + ≥4 tile records expected
		t.Fatalf("recorder captured only %d ops", len(ops))
	}

	resumeFrom := func(t *testing.T, dir string) {
		t.Helper()
		cfg := storageConfig()
		cfg.CheckpointPath = filepath.Join(dir, "flow.ckpt")
		res, err := Run(l, cfg)
		if err != nil {
			// A crash prefix may leave any valid-or-torn journal state;
			// the only acceptable failures are the typed ones recovery
			// is documented to return.
			if errors.Is(err, checkpoint.ErrHeaderMismatch) ||
				strings.Contains(err.Error(), "not a journal") ||
				strings.Contains(err.Error(), "corrupt checkpoint record") {
				return
			}
			t.Fatalf("untyped recovery failure: %v", err)
		}
		if !reflect.DeepEqual(res.Shots, ref.Shots) {
			t.Fatal("recovered run's shots diverged from reference")
		}
		if res.Resumed+res.Completed < res.Tiles {
			t.Fatalf("recovered run incomplete: %+v", res)
		}
	}

	stride := 1
	if testing.Short() {
		stride = 2
	}
	for n := 0; n <= len(ops); n += stride {
		n := n
		t.Run(fmt.Sprintf("prefix-%02d", n), func(t *testing.T) {
			dir := t.TempDir()
			if err := iox.Materialize(dir, ops, n); err != nil {
				t.Fatal(err)
			}
			resumeFrom(t, dir)
		})
	}
	// Torn variants: the crash hit mid-write, leaving half the payload.
	for _, n := range iox.WriteBoundaries(ops) {
		if ops[n-1].Kind != iox.OpWrite || len(ops[n-1].Data) < 2 {
			continue
		}
		n := n
		t.Run(fmt.Sprintf("torn-%02d", n), func(t *testing.T) {
			dir := t.TempDir()
			if err := iox.MaterializeTorn(dir, ops, n, len(ops[n-1].Data)/2); err != nil {
				t.Fatal(err)
			}
			resumeFrom(t, dir)
		})
	}

	// Sanity: the final materialized journal byte-equals the live one.
	finalDir := t.TempDir()
	if err := iox.Materialize(finalDir, ops, len(ops)); err != nil {
		t.Fatal(err)
	}
	live, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := os.ReadFile(filepath.Join(finalDir, "flow.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(live) != string(replayed) {
		t.Fatal("materialized journal differs from the live file")
	}
}
