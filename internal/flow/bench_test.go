package flow

import (
	"testing"

	"cfaopc/internal/layout"
	"cfaopc/internal/optics"
)

// benchFlowConfig sizes a 1024² chip in 8×8 tiles of 128-px cores with a
// cheap deterministic rule optimizer, so the benchmark measures the
// flow's own memory behavior, not CircleOpt's.
func benchFlowConfig(l *layout.Layout, gridN int, keepMask bool) Config {
	return Config{
		GridN:    gridN,
		CorePx:   128,
		HaloPx:   32,
		Optics:   optics.Default(),
		KOpt:     2,
		Optimize: fixedRuleOptimizer(float64(l.TileNM) / float64(gridN)),
		KeepMask: keepMask,
	}
}

// runFlowBenchmark reports allocations plus the flow's own peak-resident
// estimate per tile, the figure that must scale with the window size (and
// not GridN²) on the streaming path.
func runFlowBenchmark(b *testing.B, keepMask bool) {
	const gridN = 1024
	l := layout.GenerateRandom(7, layout.RandomConfig{Features: 16, MarginNM: 128})
	cfg := benchFlowConfig(l, gridN, keepMask)
	// Warm the kernel cache outside the timed region.
	if _, err := Run(l, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var peak int64
	tiles := 1
	for i := 0; i < b.N; i++ {
		res, err := Run(l, cfg)
		if err != nil {
			b.Fatal(err)
		}
		peak = res.PeakBytes
		tiles = res.Tiles
	}
	b.ReportMetric(float64(peak)/float64(tiles), "peak-bytes/tile")
	b.ReportMetric(float64(peak), "peak-bytes")
}

// BenchmarkFlowRunStreaming is the memory-bounded path: shot list only,
// no dense grid anywhere. Compare its peak-bytes metric against
// BenchmarkFlowRunFullMask — the gap is the GridN² term streaming drops.
func BenchmarkFlowRunStreaming(b *testing.B) { runFlowBenchmark(b, false) }

// BenchmarkFlowRunFullMask opts back into the dense stitched mask, the
// pre-streaming behavior.
func BenchmarkFlowRunFullMask(b *testing.B) { runFlowBenchmark(b, true) }
