package flow

import (
	"testing"

	"cfaopc/internal/core"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// circleOptimizer adapts core.CircleOpt to the flow Optimizer signature.
func circleOptimizer(iters int) Optimizer {
	return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		cfg := core.DefaultConfig(sim.DX)
		cfg.Iterations = iters
		res := (&core.CircleOpt{Cfg: cfg, InitIterations: 5}).Optimize(sim, target)
		return res.Mask, res.Shots
	}
}

// bigLayout builds a 1024 nm layout with features in two distant corners,
// so a 2×2 tiling puts work in separate windows.
func bigLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "big",
		TileNM: 1024,
		Rects: []layout.Rect{
			{X: 180, Y: 150, W: 72, H: 260},
			{X: 640, Y: 600, W: 80, H: 240},
		},
	}
}

func testConfig() Config {
	o := optics.Default()
	return Config{
		GridN:    256, // 4 nm/px over 1024 nm
		CorePx:   128,
		HaloPx:   32, // 128 nm context
		Optics:   o,
		KOpt:     4,
		Optimize: circleOptimizer(8),
	}
}

func TestRunValidation(t *testing.T) {
	l := bigLayout()
	bad := testConfig()
	bad.GridN = 0
	if _, err := Run(l, bad); err == nil {
		t.Error("zero grid accepted")
	}
	bad = testConfig()
	bad.Optimize = nil
	if _, err := Run(l, bad); err == nil {
		t.Error("nil optimizer accepted")
	}
	bad = testConfig()
	bad.CorePx = 300
	bad.HaloPx = 100 // window 500 > grid 256
	if _, err := Run(l, bad); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestRunStitchesTiles(t *testing.T) {
	l := bigLayout()
	cfg := testConfig()
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles != 4 {
		t.Fatalf("tiles = %d, want 4", res.Tiles)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
	// Shots must appear near both features (top-left and bottom-right).
	nearTL, nearBR := 0, 0
	for _, s := range res.Shots {
		if s.X < 128 && s.Y < 128 {
			nearTL++
		}
		if s.X >= 128 && s.Y >= 128 {
			nearBR++
		}
	}
	if nearTL == 0 || nearBR == 0 {
		t.Fatalf("shots not distributed: TL=%d BR=%d", nearTL, nearBR)
	}
	// No shot far from any target feature (> 200 nm).
	target := l.Rasterize(cfg.GridN)
	d := geom.DistanceTransform(target)
	dxNM := float64(l.TileNM) / float64(cfg.GridN)
	for _, s := range res.Shots {
		px, py := int(s.X), int(s.Y)
		if px < 0 || px >= cfg.GridN || py < 0 || py >= cfg.GridN {
			t.Fatalf("shot outside grid: %+v", s)
		}
		if d.At(px, py)*dxNM > 200 {
			t.Fatalf("stray shot %v nm from any feature", d.At(px, py)*dxNM)
		}
	}
	// The stitched mask prints both features.
	oCfg := cfg.Optics
	oCfg.TileNM = float64(l.TileNM)
	fullSim, err := litho.New(oCfg, cfg.GridN)
	if err != nil {
		t.Fatal(err)
	}
	print := fullSim.Simulate(res.Mask)
	covered := 0
	total := 0
	for i := range target.Data {
		if target.Data[i] > 0.5 {
			total++
			if print.ZNom.Data[i] > 0.5 {
				covered++
			}
		}
	}
	if float64(covered)/float64(total) < 0.6 {
		t.Fatalf("stitched print covers only %d/%d of the target", covered, total)
	}
}

func TestRunEmptyLayout(t *testing.T) {
	l := &layout.Layout{Name: "empty", TileNM: 1024}
	res, err := Run(l, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shots) != 0 {
		t.Fatalf("empty layout produced %d shots", len(res.Shots))
	}
	if res.Tiles != 4 {
		t.Fatalf("tiles = %d", res.Tiles)
	}
}

func TestCoreOwnershipNoDuplicates(t *testing.T) {
	// A feature placed exactly on a tile seam must not produce duplicated
	// shots: each shot center is owned by exactly one core.
	l := &layout.Layout{
		Name:   "seam",
		TileNM: 1024,
		Rects:  []layout.Rect{{X: 460, Y: 400, W: 100, H: 200}}, // spans x=512 seam
	}
	res, err := Run(l, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
	seen := map[[3]int]int{}
	for _, s := range res.Shots {
		k := [3]int{int(s.X), int(s.Y), int(s.R)}
		seen[k]++
		if seen[k] > 1 {
			t.Fatalf("duplicated shot %v", k)
		}
	}
}
