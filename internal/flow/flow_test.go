package flow

import (
	"testing"

	"cfaopc/internal/core"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// circleOptimizer adapts core.CircleOpt to the flow Optimizer signature.
func circleOptimizer(iters int) Optimizer {
	return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		cfg := core.DefaultConfig(sim.DX)
		cfg.Iterations = iters
		res := (&core.CircleOpt{Cfg: cfg, InitIterations: 5}).Optimize(sim, target)
		return res.Mask, res.Shots
	}
}

// bigLayout builds a 1024 nm layout with features in two distant corners,
// so a 2×2 tiling puts work in separate windows.
func bigLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "big",
		TileNM: 1024,
		Rects: []layout.Rect{
			{X: 180, Y: 150, W: 72, H: 260},
			{X: 640, Y: 600, W: 80, H: 240},
		},
	}
}

func testConfig() Config {
	o := optics.Default()
	return Config{
		GridN:    256, // 4 nm/px over 1024 nm
		CorePx:   128,
		HaloPx:   32, // 128 nm context
		Optics:   o,
		KOpt:     4,
		Optimize: circleOptimizer(8),
		KeepMask: true, // most tests inspect the dense stitched mask
	}
}

func TestRunValidation(t *testing.T) {
	l := bigLayout()
	bad := testConfig()
	bad.GridN = 0
	if _, err := Run(l, bad); err == nil {
		t.Error("zero grid accepted")
	}
	bad = testConfig()
	bad.Optimize = nil
	if _, err := Run(l, bad); err == nil {
		t.Error("nil optimizer accepted")
	}
	bad = testConfig()
	bad.CorePx = 300
	bad.HaloPx = 100 // window 500 > grid 256
	if _, err := Run(l, bad); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestRunStitchesTiles(t *testing.T) {
	l := bigLayout()
	cfg := testConfig()
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles != 4 {
		t.Fatalf("tiles = %d, want 4", res.Tiles)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
	// Shots must appear near both features (top-left and bottom-right).
	nearTL, nearBR := 0, 0
	for _, s := range res.Shots {
		if s.X < 128 && s.Y < 128 {
			nearTL++
		}
		if s.X >= 128 && s.Y >= 128 {
			nearBR++
		}
	}
	if nearTL == 0 || nearBR == 0 {
		t.Fatalf("shots not distributed: TL=%d BR=%d", nearTL, nearBR)
	}
	// No shot far from any target feature (> 200 nm).
	target := l.Rasterize(cfg.GridN)
	d := geom.DistanceTransform(target)
	dxNM := float64(l.TileNM) / float64(cfg.GridN)
	for _, s := range res.Shots {
		px, py := int(s.X), int(s.Y)
		if px < 0 || px >= cfg.GridN || py < 0 || py >= cfg.GridN {
			t.Fatalf("shot outside grid: %+v", s)
		}
		if d.At(px, py)*dxNM > 200 {
			t.Fatalf("stray shot %v nm from any feature", d.At(px, py)*dxNM)
		}
	}
	// The stitched mask prints both features.
	oCfg := cfg.Optics
	oCfg.TileNM = float64(l.TileNM)
	fullSim, err := litho.New(oCfg, cfg.GridN)
	if err != nil {
		t.Fatal(err)
	}
	print := fullSim.Simulate(res.Mask)
	covered := 0
	total := 0
	for i := range target.Data {
		if target.Data[i] > 0.5 {
			total++
			if print.ZNom.Data[i] > 0.5 {
				covered++
			}
		}
	}
	if float64(covered)/float64(total) < 0.6 {
		t.Fatalf("stitched print covers only %d/%d of the target", covered, total)
	}
}

func TestRunEmptyLayout(t *testing.T) {
	l := &layout.Layout{Name: "empty", TileNM: 1024}
	res, err := Run(l, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shots) != 0 {
		t.Fatalf("empty layout produced %d shots", len(res.Shots))
	}
	if res.Tiles != 4 {
		t.Fatalf("tiles = %d", res.Tiles)
	}
	if len(res.TileStats) != 4 {
		t.Fatalf("tile stats = %d, want 4", len(res.TileStats))
	}
	for i, ts := range res.TileStats {
		if ts.Index != i {
			t.Fatalf("tile stat %d has index %d", i, ts.Index)
		}
		if ts.Occupied || ts.Shots != 0 {
			t.Fatalf("empty layout tile %d: occupied=%v shots=%d", i, ts.Occupied, ts.Shots)
		}
	}
}

// TestRunUnevenCore covers cores that do not divide the grid evenly: the
// border row/column gets a partial core but every pixel is still owned by
// exactly one tile.
func TestRunUnevenCore(t *testing.T) {
	l := bigLayout()
	cfg := testConfig()
	cfg.CorePx = 96 // 256/96 → 3 tiles per axis, last core partial
	cfg.HaloPx = 16 // window 128 ≤ grid 256
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles != 9 {
		t.Fatalf("tiles = %d, want 9", res.Tiles)
	}
	if len(res.TileStats) != 9 {
		t.Fatalf("tile stats = %d, want 9", len(res.TileStats))
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
	seen := map[[3]int]int{}
	for _, s := range res.Shots {
		if s.X < 0 || s.X >= float64(cfg.GridN) || s.Y < 0 || s.Y >= float64(cfg.GridN) {
			t.Fatalf("shot outside grid: %+v", s)
		}
		k := [3]int{int(s.X * 16), int(s.Y * 16), int(s.R * 16)}
		seen[k]++
		if seen[k] > 1 {
			t.Fatalf("duplicated shot %v", k)
		}
	}
	// Stats shot counts must sum to the stitched list.
	sum := 0
	for _, ts := range res.TileStats {
		sum += ts.Shots
	}
	if sum != len(res.Shots) {
		t.Fatalf("tile stat shots sum %d != %d stitched shots", sum, len(res.Shots))
	}
}

// TestDeterministicAcrossTileWorkers is the concurrency contract: any
// tile-worker count produces byte-identical shot lists and masks.
func TestDeterministicAcrossTileWorkers(t *testing.T) {
	l := layout.GenerateRandom(42, layout.RandomConfig{TileNM: 1024, Features: 6, MarginNM: 128})
	cfg := testConfig()
	cfg.CorePx = 64 // 16 windows over the 256 grid
	iters, workerCounts := 6, []int{8, -1}
	if testing.Short() {
		iters, workerCounts = 4, []int{8}
	}
	cfg.Optimize = circleOptimizer(iters)

	cfg.TileWorkers = 1
	serial, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Shots) == 0 {
		t.Fatal("serial run produced no shots")
	}
	for _, tw := range workerCounts {
		cfg.TileWorkers = tw
		par, err := Run(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Shots) != len(serial.Shots) {
			t.Fatalf("tile-workers=%d: %d shots vs %d serial", tw, len(par.Shots), len(serial.Shots))
		}
		for i := range par.Shots {
			if par.Shots[i] != serial.Shots[i] {
				t.Fatalf("tile-workers=%d: shot %d differs: %+v vs %+v", tw, i, par.Shots[i], serial.Shots[i])
			}
		}
		if serial.Mask.SqDiff(par.Mask) != 0 {
			t.Fatalf("tile-workers=%d: stitched mask differs from serial", tw)
		}
		if len(par.TileStats) != len(serial.TileStats) {
			t.Fatalf("tile-workers=%d: %d stats vs %d", tw, len(par.TileStats), len(serial.TileStats))
		}
		for i := range par.TileStats {
			p, s := par.TileStats[i], serial.TileStats[i]
			if p.Index != s.Index || p.CX != s.CX || p.CY != s.CY ||
				p.Occupied != s.Occupied || p.Shots != s.Shots {
				t.Fatalf("tile-workers=%d: stat %d differs: %+v vs %+v", tw, i, p, s)
			}
		}
	}
}

// TestExtractWindow is the table-driven border-case suite for the window
// extraction helper.
func TestExtractWindow(t *testing.T) {
	// An 8×8 full grid with a known occupied pixel at (2, 3) and (7, 7).
	full := grid.NewReal(8, 8)
	full.Set(2, 3, 1)
	full.Set(7, 7, 1)
	empty := grid.NewReal(8, 8)

	cases := []struct {
		name         string
		full         *grid.Real
		ox, oy, win  int
		wantOccupied bool
		wantSet      [][2]int // window-local coordinates expected to be 1
	}{
		{
			name: "interior window",
			full: full, ox: 1, oy: 2, win: 4,
			wantOccupied: true,
			wantSet:      [][2]int{{1, 1}}, // (2,3) - (1,2)
		},
		{
			name: "negative origin halo window",
			full: full, ox: -2, oy: -1, win: 6,
			wantOccupied: true,
			wantSet:      [][2]int{{4, 4}}, // (2,3) - (-2,-1)
		},
		{
			name: "window equals grid",
			full: full, ox: 0, oy: 0, win: 8,
			wantOccupied: true,
			wantSet:      [][2]int{{2, 3}, {7, 7}},
		},
		{
			name: "window overhangs bottom-right",
			full: full, ox: 5, oy: 5, win: 6,
			wantOccupied: true,
			wantSet:      [][2]int{{2, 2}}, // (7,7) - (5,5)
		},
		{
			name: "fully outside grid",
			full: full, ox: -10, oy: -10, win: 4,
			wantOccupied: false,
		},
		{
			name: "all-empty layout",
			full: empty, ox: 0, oy: 0, win: 8,
			wantOccupied: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target, occ := extractWindow(tc.full, tc.ox, tc.oy, tc.win)
			if occ != tc.wantOccupied {
				t.Fatalf("occupied = %v, want %v", occ, tc.wantOccupied)
			}
			if target.W != tc.win || target.H != tc.win {
				t.Fatalf("window %dx%d, want %d", target.W, target.H, tc.win)
			}
			want := map[[2]int]bool{}
			for _, p := range tc.wantSet {
				want[p] = true
			}
			for y := 0; y < tc.win; y++ {
				for x := 0; x < tc.win; x++ {
					v := target.At(x, y)
					if want[[2]int{x, y}] {
						if v != 1 {
							t.Fatalf("pixel (%d,%d) = %v, want 1", x, y, v)
						}
					} else if v != 0 {
						t.Fatalf("pixel (%d,%d) = %v, want 0", x, y, v)
					}
				}
			}
		})
	}
}

// TestOwnedShots pins the ownership rule at the core boundary.
func TestOwnedShots(t *testing.T) {
	// Window origin (-4, -4), core [0,8)×[0,8).
	shots := []geom.Circle{
		{X: 4, Y: 4, R: 1},    // → (0,0): owned (inclusive lower edge)
		{X: 12, Y: 4, R: 1},   // → (8,0): not owned (exclusive upper edge)
		{X: 11.9, Y: 5, R: 2}, // → (7.9,1): owned
		{X: 3, Y: 3, R: 1},    // → (-1,-1): not owned
	}
	kept := ownedShots(shots, -4, -4, 0, 0, 8)
	if len(kept) != 2 {
		t.Fatalf("kept %d shots, want 2: %+v", len(kept), kept)
	}
	if kept[0] != (geom.Circle{X: 0, Y: 0, R: 1}) {
		t.Fatalf("first kept shot %+v", kept[0])
	}
	if kept[1].X != 7.9 || kept[1].Y != 1 || kept[1].R != 2 {
		t.Fatalf("second kept shot %+v", kept[1])
	}
}

func TestCoreOwnershipNoDuplicates(t *testing.T) {
	// A feature placed exactly on a tile seam must not produce duplicated
	// shots: each shot center is owned by exactly one core.
	l := &layout.Layout{
		Name:   "seam",
		TileNM: 1024,
		Rects:  []layout.Rect{{X: 460, Y: 400, W: 100, H: 200}}, // spans x=512 seam
	}
	res, err := Run(l, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
	seen := map[[3]int]int{}
	for _, s := range res.Shots {
		k := [3]int{int(s.X), int(s.Y), int(s.R)}
		seen[k]++
		if seen[k] > 1 {
			t.Fatalf("duplicated shot %v", k)
		}
	}
}
