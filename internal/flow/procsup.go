package flow

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"cfaopc/internal/grid"
	"cfaopc/internal/netpool"
	"cfaopc/internal/opt"
	"cfaopc/internal/procpool"
)

// maxProcBackoff caps the exponential respawn/reconnect delay so a
// long crash loop stays responsive enough to reach the circuit breaker
// quickly.
const maxProcBackoff = 2 * time.Second

// wlink is the supervisor's view of one worker transport: tasks in via
// Send, everything out — including death — via the Events stream.
// procpool.Worker (a subprocess on stdin/stdout pipes) and netpool.Conn
// (a TCP session to a listening host) both satisfy it, which is what
// lets one slot loop supervise both: respawn and reconnect are the same
// move, and the silence watchdog covers a wedged process and a dead
// link alike.
type wlink interface {
	Send(*procpool.Task) error
	Events() <-chan procpool.Event
	Kill()
	Close()
}

// procSlot is one supervised worker slot: a lane of the proc- or
// remote-mode pool that owns at most one worker link at a time. The
// slot — not the process or the connection — is the unit of
// scheduling: a tile stays pinned to its slot across worker crashes,
// respawns and reconnects, and when the slot's breaker opens it
// degrades to the shared in-process simulator, so the run always
// completes no matter how hostile the worker binary or the network is.
type procSlot struct {
	env *runEnv
	id  int
	// host is "" for a subprocess slot and the remote address for a TCP
	// slot; it feeds TileStat.Host/Proc provenance.
	host string

	// connect establishes a fresh link: spawn a subprocess, or dial and
	// handshake a remote host.
	connect func(ctx context.Context) (wlink, error)
	silence time.Duration   // watchdog bound on inter-frame gaps
	backoff netpool.Backoff // reconnect/respawn delay schedule
	// breaker is the slot's circuit breaker. Subprocess slots run it
	// terminal (no cooldown — a broken slot stays in-process for the
	// rest of the run, the PR 5 contract); remote slots give it a
	// cooldown so a partitioned host is probed again and can heal.
	breaker netpool.Breaker
	crashes *atomic.Int64 // run-wide failed-dispatch total for this transport
	broken  *atomic.Int64 // run-wide breaker-open episodes for this transport

	w wlink

	// resume is the freshest snapshot observed for the in-flight tile
	// (from the journal at first dispatch, then from Partial frames), so
	// a redispatch warm-starts instead of recomputing — and, because the
	// optimizer state rides along, replays the exact same trajectory,
	// even when the replacement worker is a different host.
	resume *procpool.PartialState
}

// run is the slot loop shared by both transports: consume tiles from
// jobCh and complete each through dispatch → reconnect → circuit-break,
// mirroring the in-process worker loop's contract (complete is called
// exactly once per received tile unless the run is canceled).
func (s *procSlot) run(ctx context.Context, jobCh <-chan tileJob, complete func(tileJob, tileOut)) {
	defer s.shutdown()
	for j := range jobCh {
		if ctx.Err() != nil {
			continue // drain without work so the feeder never blocks
		}
		complete(j, s.runTileProc(ctx, j))
	}
}

// runProcSlot is the subprocess-transport slot: spawn via WorkerCmd,
// terminal breaker, the exact PR 5 semantics.
func (env *runEnv) runProcSlot(ctx context.Context, id int, jobCh <-chan tileJob, complete func(tileJob, tileOut)) {
	cfg := env.cfg
	s := &procSlot{
		env: env,
		id:  id,
		connect: func(context.Context) (wlink, error) {
			w, err := procpool.StartHello(cfg.WorkerCmd(), cfg.procSilence())
			if err != nil {
				return nil, err
			}
			return w, nil
		},
		silence: cfg.procSilence(),
		backoff: netpool.Backoff{
			Base: cfg.procBackoff(), Max: maxProcBackoff,
			Rng: rand.New(rand.NewSource(int64(id) + 1)), // per-slot seed: deterministic tests
		},
		breaker: netpool.Breaker{Limit: cfg.procCrashLimit()},
		crashes: &env.procCrashes,
		broken:  &env.procBroken,
	}
	s.run(ctx, jobCh, complete)
}

// runTileProc drives one tile to completion through the slot's link:
// rasterize supervisor-side, dispatch until a reply lands or the
// breaker opens, then fall back to the shared in-process degradation
// ladder. Every failed dispatch is counted on the tile and the run.
func (s *procSlot) runTileProc(ctx context.Context, j tileJob) tileOut {
	env := s.env
	cfg := env.cfg
	start := time.Now()
	out := tileOut{stat: TileStat{Index: j.index, CX: j.cx, CY: j.cy, Core: j.core, Window: j.window}}
	defer func() { out.stat.Wall = time.Since(start) }()
	if j.skip {
		return out
	}
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	target, occupied := env.ix.Window(ox, oy, j.window, j.window)
	out.stat.Occupied = occupied
	out.stat.RasterWall = time.Since(start)
	if !occupied {
		return out
	}
	if env.tryCache(j, target, &out) {
		return out
	}

	// Seed the resume state from the journal replay (if the tile was
	// half-finished when the previous run died).
	s.resume = nil
	if p, ok := env.partials[j.index]; ok {
		s.resume = &procpool.PartialState{
			Attempt: p.Attempt, Iter: p.Iter, Loss: p.Loss,
			Params: p.Params, OptT: p.OptT, OptM: p.OptM, OptV: p.OptV,
		}
	}

	dispatch := 0
	for ctx.Err() == nil && s.breaker.Allow() {
		reply, ok := s.dispatch(ctx, j, target, dispatch)
		if ok {
			s.breaker.Success()
			out.stat.ProcCrashes = dispatch
			out.stat.Proc = s.host == ""
			out.stat.Host = s.host
			env.applyReply(j, target, reply, &out)
			env.storeCache(j, &out)
			return out
		}
		dispatch++
		s.crashes.Add(1)
		if s.breaker.Failure() {
			// The breaker opened: a new degradation episode. Terminal
			// for subprocess slots; remote slots re-probe after the
			// cooldown, but this tile (and every tile drawn while the
			// breaker is open) completes locally.
			s.killWorker()
			s.broken.Add(1)
		}
	}
	out.stat.ProcCrashes = dispatch
	if ctx.Err() != nil {
		return out
	}
	// Breaker open: the shared in-process simulator finishes the tile.
	// fbMu serializes slots on it; the output is identical to what a
	// healthy worker would have produced, because both run the same
	// ladder on the same target.
	env.fbMu.Lock()
	defer env.fbMu.Unlock()
	env.ladder(ctx, env.fbSims[j.window], j, target, &out)
	env.storeCache(j, &out)
	return out
}

// dispatch hands the tile to the slot's link — establishing or
// re-establishing one as needed — and awaits its reply. ok is false
// when the dispatch failed (connect error, worker death, link drop,
// silence kill, protocol garbage, or a worker-reported task error) and
// the tile must be redispatched or degraded.
func (s *procSlot) dispatch(ctx context.Context, j tileJob, target *grid.Real, dispatchN int) (*procpool.Reply, bool) {
	w, err := s.ensureWorker(ctx)
	if err != nil || w == nil {
		return nil, false
	}
	if err := w.Send(s.env.buildTask(j, target, dispatchN, s.resume)); err != nil {
		s.killWorker()
		return nil, false
	}
	return s.await(ctx, w, j)
}

// buildTask encodes one window as a procpool task. The quarantine
// bundle schema doubles as the wire protocol — the payload is exactly
// what a repro bundle holds, minus the attempt history a not-yet-run
// tile does not have — plus the redispatch counter (which process-fatal
// fault scripts key on) and the freshest snapshot to warm-start from.
func (env *runEnv) buildTask(j tileJob, target *grid.Real, dispatch int, resume *procpool.PartialState) *procpool.Task {
	cfg := env.cfg
	t := &procpool.Task{
		Bundle:   *env.buildBundle(j, target, nil),
		Dispatch: dispatch,
		Workers:  cfg.Workers,
		Resume:   resume,
	}
	if env.journal != nil {
		t.PartialEvery = cfg.PartialEvery
	}
	return t
}

// await consumes link events until a reply for j arrives, the link
// dies, or it goes silent past the slot's silence bound. Any frame —
// ping, beat, partial — counts as liveness; Partial frames are
// additionally journaled and retained for redispatch, exactly like an
// in-process snapshot, so a host that dies mid-tile hands its progress
// to the replacement.
func (s *procSlot) await(ctx context.Context, w wlink, j tileJob) (*procpool.Reply, bool) {
	env := s.env
	timer := time.NewTimer(s.silence)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			s.killWorker()
			return nil, false
		case <-timer.C:
			// Alive but mute beyond even its ping loop: a wedged process
			// or a stalled link. Kill and let the dispatch counter decide
			// reconnect vs breaker.
			s.killWorker()
			return nil, false
		case ev := <-w.Events():
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(s.silence)
			switch ev.Kind {
			case procpool.EvExit:
				s.w = nil
				return nil, false
			case procpool.EvPartial:
				if ev.Partial.Index == j.index {
					st := ev.Partial.State
					s.resume = &st
					if env.journal != nil && env.cfg.PartialEvery > 0 {
						env.appendPartial(j.index, st.Attempt, opt.Snapshot{
							Iter: st.Iter, Loss: st.Loss, Params: st.Params,
							OptT: st.OptT, OptM: st.OptM, OptV: st.OptV,
						})
					}
				}
			case procpool.EvBeat:
				// Forwarded optimizer heartbeat: liveness (the timer reset
				// above), and — when someone subscribed — progress, so the
				// event stream looks the same in every dispatch mode.
				if env.onBeat != nil && ev.Beat.Index == j.index {
					env.onBeat(ev.Beat.Index, ev.Beat.Iter, ev.Beat.Loss)
				}
			case procpool.EvReply:
				if ev.Reply.Index != j.index {
					// Protocol confusion (a stale reply for some other
					// tile): this link cannot be trusted with the tile.
					s.killWorker()
					return nil, false
				}
				if ev.Reply.Err != "" {
					// The worker is healthy but the task failed
					// deterministically (bad payload, engine setup).
					// Count it like a crash so the breaker bounds the
					// retries and the tile still completes in-process.
					return nil, false
				}
				return ev.Reply, true
			}
			// EvHello / EvPing: liveness only.
		}
	}
}

// applyReply folds a worker's reply into the tile's output, applying
// the same ownership filter, stat bookkeeping and quarantine policy as
// the in-process ladder — the supervisor stays the single authority on
// what enters the stitched result.
func (env *runEnv) applyReply(j tileJob, target *grid.Real, r *procpool.Reply, out *tileOut) {
	cfg := env.cfg
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	var outcomes []AttemptOutcome
	for _, o := range r.Outcomes {
		outcomes = append(outcomes, AttemptOutcome{
			Attempt: o.Attempt, Engine: o.Engine, Err: o.Err,
			Iters: o.Iters, LastLoss: o.LastLoss, Stalled: o.Stalled,
		})
	}
	out.stat.Path = r.Path
	applyOutcomes(&out.stat, outcomes)
	switch r.Path {
	case PathPrimary, PathFallback:
		out.raw = r.Shots
		out.shots = ownedShots(r.Shots, ox, oy, j.cx, j.cy, j.core)
		out.stat.Shots = len(out.shots)
	case PathEmpty:
		env.saveQuarantine(j, target, outcomes, &out.stat)
	}
}

// ensureWorker returns the slot's live link, establishing one — after
// the failure-count-proportional backoff — when needed, and waiting for
// its Hello so a peer that is not a tile worker fails the dispatch
// instead of wedging it.
func (s *procSlot) ensureWorker(ctx context.Context) (wlink, error) {
	if s.w != nil {
		return s.w, nil
	}
	if !s.backoffWait(ctx) {
		return nil, ctx.Err()
	}
	w, err := s.connect(ctx)
	if err != nil {
		// A connect failure (missing binary, fork limits, dead or
		// partitioned host) is a failed dispatch, not a run failure: the
		// breaker degrades the slot and the run completes.
		return nil, err
	}
	timer := time.NewTimer(s.silence)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			w.Kill()
			return nil, ctx.Err()
		case <-timer.C:
			w.Kill()
			return nil, fmt.Errorf("flow: worker sent no hello")
		case ev := <-w.Events():
			switch ev.Kind {
			case procpool.EvHello:
				s.w = w
				return w, nil
			case procpool.EvExit:
				return nil, fmt.Errorf("flow: worker died before hello: %v", ev.Err)
			}
		}
	}
}

// backoffWait sleeps the exponential retry delay for the current
// consecutive-failure count (none after a clean dispatch), with jitter
// so a crash-looping fleet does not retry in lockstep. It reports
// false when ctx was canceled during the wait.
func (s *procSlot) backoffWait(ctx context.Context) bool {
	d := s.backoff.Next(s.breaker.Consecutive())
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// killWorker discards the slot's link immediately (SIGKILL / TCP
// reset-equivalent close).
func (s *procSlot) killWorker() {
	if s.w != nil {
		s.w.Kill()
		s.w = nil
	}
}

// shutdown ends the slot: a healthy link gets a graceful close (EOF →
// clean worker exit), anything else is already gone.
func (s *procSlot) shutdown() {
	if s.w != nil {
		s.w.Close()
		s.w = nil
	}
}
