package flow

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cfaopc/internal/grid"
	"cfaopc/internal/opt"
	"cfaopc/internal/procpool"
)

// maxProcBackoff caps the exponential respawn delay so a long crash
// loop stays responsive enough to reach the circuit breaker quickly.
const maxProcBackoff = 2 * time.Second

// procSlot is one supervised worker slot: a lane of the proc-mode pool
// that owns at most one worker subprocess at a time. The slot — not the
// process — is the unit of scheduling: a tile stays pinned to its slot
// across worker crashes and respawns, and when the slot circuit-breaks
// it degrades to the shared in-process simulator, so the run always
// completes no matter how hostile the worker binary is.
type procSlot struct {
	env *runEnv
	id  int

	w           *procpool.Worker
	consecutive int  // consecutive failed dispatches across tiles
	broken      bool // circuit breaker tripped: in-process from here on

	// resume is the freshest snapshot observed for the in-flight tile
	// (from the journal at first dispatch, then from Partial frames), so
	// a redispatch warm-starts instead of recomputing — and, because the
	// optimizer state rides along, replays the exact same trajectory.
	resume *procpool.PartialState

	rng *rand.Rand // jitter; seeded per slot for determinism of tests
}

// runProcSlot is the proc-mode worker loop: one goroutine per slot,
// consuming tiles from jobCh and completing each through dispatch →
// respawn → circuit-break, mirroring the in-process worker loop's
// contract (complete is called exactly once per received tile unless
// the run is canceled).
func (env *runEnv) runProcSlot(ctx context.Context, id int, jobCh <-chan tileJob, complete func(tileJob, tileOut)) {
	s := &procSlot{env: env, id: id, rng: rand.New(rand.NewSource(int64(id) + 1))}
	defer s.shutdown()
	for j := range jobCh {
		if ctx.Err() != nil {
			continue // drain without work so the feeder never blocks
		}
		complete(j, s.runTileProc(ctx, j))
	}
}

// runTileProc drives one tile to completion through the slot's worker:
// rasterize supervisor-side, dispatch until a reply lands or the
// breaker trips, then (broken) fall back to the shared in-process
// degradation ladder. Every failed dispatch is counted on the tile and
// the run.
func (s *procSlot) runTileProc(ctx context.Context, j tileJob) tileOut {
	env := s.env
	cfg := env.cfg
	start := time.Now()
	out := tileOut{stat: TileStat{Index: j.index, CX: j.cx, CY: j.cy, Core: j.core, Window: j.window}}
	defer func() { out.stat.Wall = time.Since(start) }()
	if j.skip {
		return out
	}
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	target, occupied := env.ix.Window(ox, oy, j.window, j.window)
	out.stat.Occupied = occupied
	out.stat.RasterWall = time.Since(start)
	if !occupied {
		return out
	}
	if env.tryCache(j, target, &out) {
		return out
	}

	// Seed the resume state from the journal replay (if the tile was
	// half-finished when the previous run died).
	s.resume = nil
	if p, ok := env.partials[j.index]; ok {
		s.resume = &procpool.PartialState{
			Attempt: p.Attempt, Iter: p.Iter, Loss: p.Loss,
			Params: p.Params, OptT: p.OptT, OptM: p.OptM, OptV: p.OptV,
		}
	}

	dispatch := 0
	for !s.broken && ctx.Err() == nil {
		reply, ok := s.dispatch(ctx, j, target, dispatch)
		if ok {
			s.consecutive = 0
			out.stat.ProcCrashes = dispatch
			out.stat.Proc = true
			env.applyReply(j, target, reply, &out)
			env.storeCache(j, &out)
			return out
		}
		dispatch++
		env.procCrashes.Add(1)
		s.consecutive++
		if s.consecutive >= cfg.procCrashLimit() {
			s.breakSlot()
		}
	}
	out.stat.ProcCrashes = dispatch
	if ctx.Err() != nil {
		return out
	}
	// Circuit-broken: the shared in-process simulator finishes the tile
	// (and every later tile this slot draws). fbMu serializes slots on
	// it; the output is identical to what a healthy worker would have
	// produced, because both run the same ladder on the same target.
	env.fbMu.Lock()
	defer env.fbMu.Unlock()
	env.ladder(ctx, env.fbSims[j.window], j, target, &out)
	env.storeCache(j, &out)
	return out
}

// dispatch hands the tile to the slot's worker — spawning or respawning
// one as needed — and awaits its reply. ok is false when the dispatch
// failed (spawn error, worker death, silence kill, protocol garbage, or
// a worker-reported task error) and the tile must be redispatched or
// degraded.
func (s *procSlot) dispatch(ctx context.Context, j tileJob, target *grid.Real, dispatchN int) (*procpool.Reply, bool) {
	w, err := s.ensureWorker(ctx)
	if err != nil || w == nil {
		return nil, false
	}
	if err := w.Send(s.env.buildTask(j, target, dispatchN, s.resume)); err != nil {
		s.killWorker()
		return nil, false
	}
	return s.await(ctx, w, j)
}

// buildTask encodes one window as a procpool task. The quarantine
// bundle schema doubles as the wire protocol — the payload is exactly
// what a repro bundle holds, minus the attempt history a not-yet-run
// tile does not have — plus the redispatch counter (which process-fatal
// fault scripts key on) and the freshest snapshot to warm-start from.
func (env *runEnv) buildTask(j tileJob, target *grid.Real, dispatch int, resume *procpool.PartialState) *procpool.Task {
	cfg := env.cfg
	t := &procpool.Task{
		Bundle:   *env.buildBundle(j, target, nil),
		Dispatch: dispatch,
		Workers:  cfg.Workers,
		Resume:   resume,
	}
	if env.journal != nil {
		t.PartialEvery = cfg.PartialEvery
	}
	return t
}

// await consumes worker events until a reply for j arrives, the worker
// dies, or it goes silent past ProcSilence. Any frame — ping, beat,
// partial — counts as liveness; Partial frames are additionally
// journaled and retained for redispatch, exactly like an in-process
// snapshot.
func (s *procSlot) await(ctx context.Context, w *procpool.Worker, j tileJob) (*procpool.Reply, bool) {
	env := s.env
	silence := env.cfg.procSilence()
	timer := time.NewTimer(silence)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			s.killWorker()
			return nil, false
		case <-timer.C:
			// Alive but mute beyond even its ping loop: wedged. Kill and
			// let the dispatch counter decide respawn vs breaker.
			s.killWorker()
			return nil, false
		case ev := <-w.Events():
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(silence)
			switch ev.Kind {
			case procpool.EvExit:
				s.w = nil
				return nil, false
			case procpool.EvPartial:
				if ev.Partial.Index == j.index {
					st := ev.Partial.State
					s.resume = &st
					if env.journal != nil && env.cfg.PartialEvery > 0 {
						env.appendPartial(j.index, st.Attempt, opt.Snapshot{
							Iter: st.Iter, Loss: st.Loss, Params: st.Params,
							OptT: st.OptT, OptM: st.OptM, OptV: st.OptV,
						})
					}
				}
			case procpool.EvReply:
				if ev.Reply.Index != j.index {
					// Protocol confusion (a stale reply for some other
					// tile): this worker cannot be trusted with the tile.
					s.killWorker()
					return nil, false
				}
				if ev.Reply.Err != "" {
					// The worker is healthy but the task failed
					// deterministically (bad payload, engine setup).
					// Count it like a crash so the breaker bounds the
					// retries and the tile still completes in-process.
					return nil, false
				}
				return ev.Reply, true
			}
			// EvHello / EvPing / EvBeat: liveness only.
		}
	}
}

// applyReply folds a worker's reply into the tile's output, applying
// the same ownership filter, stat bookkeeping and quarantine policy as
// the in-process ladder — the supervisor stays the single authority on
// what enters the stitched result.
func (env *runEnv) applyReply(j tileJob, target *grid.Real, r *procpool.Reply, out *tileOut) {
	cfg := env.cfg
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	var outcomes []AttemptOutcome
	for _, o := range r.Outcomes {
		outcomes = append(outcomes, AttemptOutcome{
			Attempt: o.Attempt, Engine: o.Engine, Err: o.Err,
			Iters: o.Iters, LastLoss: o.LastLoss, Stalled: o.Stalled,
		})
	}
	out.stat.Path = r.Path
	applyOutcomes(&out.stat, outcomes)
	switch r.Path {
	case PathPrimary, PathFallback:
		out.raw = r.Shots
		out.shots = ownedShots(r.Shots, ox, oy, j.cx, j.cy, j.core)
		out.stat.Shots = len(out.shots)
	case PathEmpty:
		env.saveQuarantine(j, target, outcomes, &out.stat)
	}
}

// ensureWorker returns the slot's live worker, spawning one — after the
// crash-count-proportional backoff — when needed, and waiting for its
// Hello handshake so a binary that is not a tile worker fails the
// dispatch instead of wedging it.
func (s *procSlot) ensureWorker(ctx context.Context) (*procpool.Worker, error) {
	if s.w != nil {
		return s.w, nil
	}
	if !s.backoffWait(ctx) {
		return nil, ctx.Err()
	}
	w, err := procpool.Start(s.env.cfg.WorkerCmd())
	if err != nil {
		// A spawn failure (missing binary, fork limits) is a failed
		// dispatch, not a run failure: the breaker degrades the slot to
		// in-process and the run completes.
		return nil, err
	}
	timer := time.NewTimer(s.env.cfg.procSilence())
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			w.Kill()
			return nil, ctx.Err()
		case <-timer.C:
			w.Kill()
			return nil, fmt.Errorf("flow: worker pid %d sent no hello", w.PID())
		case ev := <-w.Events():
			switch ev.Kind {
			case procpool.EvHello:
				s.w = w
				return w, nil
			case procpool.EvExit:
				return nil, fmt.Errorf("flow: worker died before hello: %v", ev.Err)
			}
		}
	}
}

// backoffWait sleeps the exponential respawn delay for the current
// consecutive-failure count (none after a clean dispatch), with jitter
// so a crash-looping fleet does not respawn in lockstep. It reports
// false when ctx was canceled during the wait.
func (s *procSlot) backoffWait(ctx context.Context) bool {
	if s.consecutive == 0 {
		return true
	}
	d := s.env.cfg.procBackoff() << uint(s.consecutive-1)
	if d > maxProcBackoff {
		d = maxProcBackoff
	}
	d += time.Duration(s.rng.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// breakSlot trips the circuit breaker: the slot abandons worker
// subprocesses for good and every tile it draws from here on runs on
// the shared in-process simulator.
func (s *procSlot) breakSlot() {
	if s.broken {
		return
	}
	s.broken = true
	s.killWorker()
	s.env.procBroken.Add(1)
}

// killWorker discards the slot's worker immediately (SIGKILL).
func (s *procSlot) killWorker() {
	if s.w != nil {
		s.w.Kill()
		s.w = nil
	}
}

// shutdown ends the slot: a healthy worker gets a graceful close
// (stdin EOF → clean exit), anything else is already gone.
func (s *procSlot) shutdown() {
	if s.w != nil {
		s.w.Close()
		s.w = nil
	}
}
