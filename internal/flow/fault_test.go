package flow

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
)

// ruleFallback is the graceful-degradation engine used by the fault
// tests: no optimization at all, just rule-based circle fracturing of
// the rasterized target. Cheap, deterministic, and hard to break.
func ruleFallback() Optimizer {
	return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		shots := fracture.CircleRule(target, fracture.DefaultCircleRuleConfig(sim.DX))
		return geom.RasterizeCircles(target.W, target.H, shots), shots
	}
}

// quadLayout puts one feature in each 2×2 tile of the 1024 nm chip, so
// every window of the default 128-core tiling is occupied.
func quadLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "quad",
		TileNM: 1024,
		Rects: []layout.Rect{
			{X: 150, Y: 160, W: 80, H: 220},
			{X: 660, Y: 150, W: 80, H: 220},
			{X: 150, Y: 650, W: 220, H: 80},
			{X: 660, Y: 660, W: 80, H: 220},
		},
	}
}

// faultConfig picks the primary engine for the fault tests. The
// isolation, degradation and resume contracts are engine-independent,
// so short mode (raced in CI, and slow under the detector) uses the
// cheap rule engine while full runs keep real CircleOpt tiles.
func faultConfig() Config {
	cfg := testConfig()
	if testing.Short() {
		cfg.Optimize = ruleFallback()
	} else {
		cfg.Optimize = circleOptimizer(4)
	}
	return cfg
}

func TestTileWorkerCount(t *testing.T) {
	cases := []struct {
		w, jobs, want int
	}{
		{0, 5, 1},                            // zero → serial
		{1, 5, 1},                            // explicit serial
		{3, 5, 3},                            // plain
		{8, 3, 3},                            // capped by job count
		{-1, 1, 1},                           // all cores, one job
		{-1, 1 << 20, runtime.GOMAXPROCS(0)}, // all cores, many jobs
		{4, 0, 0},                            // no jobs → no workers
		{-7, 2, min(2, runtime.GOMAXPROCS(0))},
	}
	for _, tc := range cases {
		if got := tileWorkerCount(tc.w, tc.jobs); got != tc.want {
			t.Errorf("tileWorkerCount(%d, %d) = %d, want %d", tc.w, tc.jobs, got, tc.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, bigLayout(), testConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
}

// TestRunContextCancelMidRun blocks every tile inside an injected stall,
// cancels, and demands a prompt ctx.Err() return with no leaked worker
// goroutines (the -race CI job runs this).
func TestRunContextCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := faultConfig()
	cfg.TileWorkers = 4
	cfg.Optimize = InjectFaults(cfg.Optimize, FaultPlan{
		0: {{Sleep: time.Minute}},
		1: {{Sleep: time.Minute}},
		2: {{Sleep: time.Minute}},
		3: {{Sleep: time.Minute}},
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, quadLayout(), cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("cancellation took %s", wall)
	}
	// Workers must wind down; poll briefly for the goroutine count to
	// return to its pre-run level (other test goroutines may wobble it).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before run, %d after cancellation", before, runtime.NumGoroutine())
}

// TestTileTimeoutRetries stalls attempt 0 of one tile past the per-tile
// deadline; the retry runs clean and the run records the recovery.
func TestTileTimeoutRetries(t *testing.T) {
	cfg := faultConfig()
	// The primary engine here is the cheap rule-based one, so only the
	// injected stall — not honest optimization work — can trip the
	// deadline, keeping the test robust on slow machines.
	cfg.TileTimeout = 500 * time.Millisecond
	cfg.TileRetries = 1
	cfg.Optimize = InjectFaults(ruleFallback(), FaultPlan{
		0: {{Sleep: time.Minute}},
	})
	res, err := Run(bigLayout(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.TileStats[0]
	if st.Attempts != 2 || st.Path != PathPrimary {
		t.Fatalf("tile 0 stat: %+v", st)
	}
	if !strings.Contains(st.Failure, "deadline") {
		t.Fatalf("tile 0 failure = %q, want deadline", st.Failure)
	}
	if res.Retried != 1 || res.Fallbacks != 0 || res.Empty != 0 {
		t.Fatalf("summary: %+v", res)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
}

// TestPanicRetryNaNFallbackEmpty walks all three degradation stages in
// one run: tile 0 panics once then succeeds, tile 1 emits NaNs until the
// fallback saves it, tile 3 fails every engine and degrades to empty —
// and the run still finishes.
func TestPanicRetryNaNFallbackEmpty(t *testing.T) {
	cfg := faultConfig()
	cfg.TileRetries = 1
	cfg.Fallback = InjectFaults(ruleFallback(), FaultPlan{
		3: {{}, {}, {Panic: true}}, // fallback attempt (attempt index 2) panics too
	})
	cfg.Optimize = InjectFaults(cfg.Optimize, FaultPlan{
		0: {{Panic: true}},
		1: {{NaN: true}, {NaN: true}},
		3: {{NaN: true}, {Panic: true}},
	})
	res, err := Run(quadLayout(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		idx      int
		attempts int
		path     string
		failure  string
	}{
		{0, 2, PathPrimary, "panic"},
		{1, 3, PathFallback, "NaN"},
		{2, 1, PathPrimary, ""},
		{3, 3, PathEmpty, "panic"},
	}
	for _, c := range checks {
		st := res.TileStats[c.idx]
		if st.Attempts != c.attempts || st.Path != c.path {
			t.Fatalf("tile %d stat: %+v, want %d attempts path %s", c.idx, st, c.attempts, c.path)
		}
		if c.failure == "" && st.Failure != "" {
			t.Fatalf("tile %d unexpected failure %q", c.idx, st.Failure)
		}
		if c.failure != "" && !strings.Contains(st.Failure, c.failure) {
			t.Fatalf("tile %d failure %q, want %q", c.idx, st.Failure, c.failure)
		}
	}
	if res.Retried != 1 || res.Fallbacks != 1 || res.Empty != 1 {
		t.Fatalf("summary: retried %d fallbacks %d empty %d", res.Retried, res.Fallbacks, res.Empty)
	}
	// The empty tile contributes nothing; its quadrant has no shots.
	for _, s := range res.Shots {
		if s.X >= 128 && s.Y >= 128 {
			t.Fatalf("empty-degraded tile produced shot %+v", s)
		}
	}
	if st := res.TileStats[3]; st.Shots != 0 {
		t.Fatalf("empty tile reports %d shots", st.Shots)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots from surviving tiles")
	}
}

// TestBadRadiusValidation rejects out-of-bound radii when the bounds are
// configured and retries into a clean attempt.
func TestBadRadiusValidation(t *testing.T) {
	cfg := faultConfig()
	cfg.TileRetries = 1
	cfg.RMinPx = 1
	cfg.RMaxPx = 40
	cfg.Optimize = InjectFaults(cfg.Optimize, FaultPlan{
		0: {{BadRadius: true}},
	})
	res, err := Run(bigLayout(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.TileStats[0]
	if st.Attempts != 2 || st.Path != PathPrimary || !strings.Contains(st.Failure, "radius") {
		t.Fatalf("tile 0 stat: %+v", st)
	}
}

// sameResult demands byte-identical shot lists and masks plus equal tile
// stats modulo wall time and the resume marker.
func sameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Shots) != len(want.Shots) {
		t.Fatalf("%d shots vs %d", len(got.Shots), len(want.Shots))
	}
	for i := range got.Shots {
		if got.Shots[i] != want.Shots[i] {
			t.Fatalf("shot %d differs: %+v vs %+v", i, got.Shots[i], want.Shots[i])
		}
	}
	if got.Mask.SqDiff(want.Mask) != 0 {
		t.Fatal("masks differ")
	}
	if len(got.TileStats) != len(want.TileStats) {
		t.Fatalf("%d stats vs %d", len(got.TileStats), len(want.TileStats))
	}
	for i := range got.TileStats {
		g, w := got.TileStats[i], want.TileStats[i]
		g.Wall, w.Wall = 0, 0
		g.RasterWall, w.RasterWall = 0, 0
		g.Resumed, w.Resumed = false, false
		g.Proc, w.Proc = false, false
		g.ProcCrashes, w.ProcCrashes = 0, 0
		g.Host, w.Host = "", ""
		// A cache hit inherits its twin's attempt record, so everything
		// except the hit markers must already match; the markers themselves
		// are mode-dependent, like Proc.
		g.CacheHit, w.CacheHit = false, false
		g.CacheKey, w.CacheKey = "", ""
		if g != w {
			t.Fatalf("stat %d differs: %+v vs %+v", i, g, w)
		}
	}
	if got.Retried != want.Retried || got.Fallbacks != want.Fallbacks || got.Empty != want.Empty {
		t.Fatalf("summary differs: %+v vs %+v", got, want)
	}
}

// TestFaultDeterminismAndResume is the acceptance contract: a run that
// suffers deterministic faults, is canceled mid-chip, checkpoints, and
// resumes (through a torn journal tail) produces byte-identical output
// to the same faulted run executed uninterrupted.
func TestFaultDeterminismAndResume(t *testing.T) {
	l := quadLayout()
	plan := FaultPlan{
		1: {{Panic: true}},              // recovers on retry
		3: {{NaN: true}, {Panic: true}}, // exhausts retries, lands on fallback
	}
	mkCfg := func(w MaskWriter) Config {
		cfg := faultConfig()
		cfg.TileRetries = 1
		cfg.TileWorkers = 1 // serial: the cancel point below is deterministic
		cfg.Fallback = ruleFallback()
		cfg.Optimize = InjectFaults(cfg.Optimize, plan)
		cfg.MaskWriter = w // every run also streams bands, resumed or not
		return cfg
	}

	// Reference: uninterrupted faulted run, no checkpoint.
	refColl := NewMaskCollector(testConfig().GridN)
	ref, err := Run(l, mkCfg(refColl))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Retried != 1 || ref.Fallbacks != 1 {
		t.Fatalf("reference summary: %+v", ref)
	}
	if ref.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("reference streamed bands differ from the dense mask")
	}
	if ref.PeakBytes <= 0 {
		t.Fatalf("reference PeakBytes = %d", ref.PeakBytes)
	}

	// Interrupted run: cancel the moment tile 2 starts optimizing, so
	// tiles 0 and 1 are journaled and tiles 2, 3 are not.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := mkCfg(NewMaskCollector(testConfig().GridN))
	cfg.CheckpointPath = ckpt
	inner := cfg.Optimize
	cfg.Optimize = func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		if info, ok := TileInfoFrom(sim.Ctx); ok && info.Index == 2 {
			cancel()
			<-sim.Ctx.Done()
			return grid.NewReal(target.W, target.H), nil
		}
		return inner(sim, target)
	}
	if _, err := RunContext(ctx, l, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}

	// Simulate a torn final append before resuming.
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 200, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume with the plain faulted optimizer. The resumed run streams its
	// own complete band sequence (replayed tiles feed the assembler like
	// computed ones), byte-identical to the uninterrupted run's.
	resColl := NewMaskCollector(testConfig().GridN)
	cfg = mkCfg(resColl)
	cfg.CheckpointPath = ckpt
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 2 {
		t.Fatalf("resumed %d tiles, want 2", res.Resumed)
	}
	for i, st := range res.TileStats {
		if want := i < 2; st.Resumed != want {
			t.Fatalf("tile %d resumed = %v", i, st.Resumed)
		}
	}
	sameResult(t, res, ref)
	if resColl.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("resumed run's streamed bands differ from the uninterrupted run's")
	}

	// A third run replays everything and recomputes nothing — including a
	// full band sequence built purely from the journal.
	replayColl := NewMaskCollector(testConfig().GridN)
	cfg = mkCfg(replayColl)
	cfg.CheckpointPath = ckpt
	res2, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 4 {
		t.Fatalf("full replay resumed %d tiles, want 4", res2.Resumed)
	}
	sameResult(t, res2, ref)
	if replayColl.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("replayed run's streamed bands differ from the uninterrupted run's")
	}
}

// TestCheckpointConfigMismatch refuses to resume a journal written for a
// different tiling.
func TestCheckpointConfigMismatch(t *testing.T) {
	l := bigLayout()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := faultConfig()
	cfg.Optimize = ruleFallback() // journal binding is what's under test, keep tiles cheap
	cfg.CheckpointPath = ckpt
	if _, err := Run(l, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.CorePx = 64 // different tiling, same journal
	if _, err := Run(l, cfg); !errors.Is(err, checkpoint.ErrHeaderMismatch) {
		t.Fatalf("err = %v, want ErrHeaderMismatch", err)
	}
}
