// Window dedup cache integration: the glue between the tiled flow and
// internal/wcache. The flow computes each eligible tile's canonical
// content key (config fingerprint + window raster + window-local owning
// spans + core geometry), answers hits by translating the cached
// window-local shots into place, and stores every freshly computed
// window for its twins. The cache changes wall time, never bytes: a
// cached run's shots, bands, and checkpoint journal are byte-identical
// to an uncached one, which is what TestCacheDeterminism pins.

package flow

import (
	"cfaopc/internal/grid"
	"cfaopc/internal/wcache"
)

// cacheEligible reports whether tile j may interact with the cache at
// all. Tiles carrying an injected fault script are excluded in both
// directions: serving one from a twin would skip its scripted failure,
// and storing one would leak a fault-shaped result to clean twins.
func (env *runEnv) cacheEligible(j tileJob) bool {
	return env.cfg.Cache != nil && !j.skip && len(env.rawFaults[j.index]) == 0
}

// windowKey builds tile j's canonical cache key over the rasterized
// target. The prefix is the run's config fingerprint — the same
// machinery that binds checkpoint journals, minus the layout terms, so
// identical windows collide across layouts and across runs.
func (env *runEnv) windowKey(j tileJob, target *grid.Real) wcache.Key {
	ox := j.cx - env.cfg.HaloPx
	oy := j.cy - env.cfg.HaloPx
	ls := env.ix.WindowSpans(ox, oy, j.window, j.window)
	spans := make([]wcache.Span, len(ls))
	for i, s := range ls {
		spans[i] = wcache.Span(s)
	}
	return wcache.WindowKey(env.keyPrefix, wcache.WindowDesc{
		W: target.W, H: target.H, Raster: target.Data, Spans: spans,
		CoreX: env.cfg.HaloPx, CoreY: env.cfg.HaloPx, CoreW: j.core, CoreH: j.core,
	})
}

// tryCache attempts to serve tile j from the cache. It returns true
// when the tile is fully answered: the cached window-local shots are
// translated to full-grid coordinates and ownership-filtered exactly
// like a fresh optimization's would be, and the stat inherits the
// twin's attempt record (path, attempts, iters, loss) so run-level
// counters stay self-consistent. On a miss (or an eligibility bypass)
// the computed key is left on the stat so the eventual result can be
// stored. A tile with a pending partial-resume snapshot is never served
// from cache — its contract is to replay the journaled trajectory.
func (env *runEnv) tryCache(j tileJob, target *grid.Real, out *tileOut) bool {
	if !env.cacheEligible(j) {
		return false
	}
	key := env.windowKey(j, target)
	out.stat.CacheKey = string(key)
	if _, resuming := env.partials[j.index]; resuming {
		env.cacheMisses.Add(1)
		return false
	}
	e, ok := env.cfg.Cache.Get(key)
	if !ok {
		env.cacheMisses.Add(1)
		return false
	}
	env.cacheHits.Add(1)
	ox := j.cx - env.cfg.HaloPx
	oy := j.cy - env.cfg.HaloPx
	out.shots = ownedShots(e.Shots, ox, oy, j.cx, j.cy, j.core)
	out.stat.CacheHit = true
	out.stat.Path = e.Path
	out.stat.Attempts = e.Attempts
	out.stat.Iters = e.Iters
	out.stat.LastLoss = e.LastLoss
	out.stat.Shots = len(out.shots)
	return true
}

// storeCache publishes a freshly computed tile for its twins: the raw
// window-local shot list (pre-ownership-filter, so twins with any core
// placement can re-filter) plus the attempt record. Only real results
// go in — PathEmpty is never cached, so a degraded tile can't infect a
// twin — and only tiles whose key was computed by tryCache (faulted and
// skip tiles never got one).
func (env *runEnv) storeCache(j tileJob, out *tileOut) {
	if env.cfg.Cache == nil || out.stat.CacheKey == "" || out.stat.CacheHit {
		return
	}
	if out.stat.Path != PathPrimary && out.stat.Path != PathFallback {
		return
	}
	env.cfg.Cache.Put(wcache.Key(out.stat.CacheKey), &wcache.Entry{
		Shots:    out.raw,
		Path:     out.stat.Path,
		Attempts: out.stat.Attempts,
		Iters:    out.stat.Iters,
		LastLoss: out.stat.LastLoss,
	})
}
