package flow

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"cfaopc/internal/wcache"
)

// TestFaultMatrix runs the full degradation machinery under one fault
// kind and worker count, both selectable from the environment so CI can
// fan the matrix out across jobs (kind × workers, each under -race):
//
//	FLOW_FAULT_KIND=sleep|panic|nan|badradius|stall|all (default all)
//	FLOW_TILE_WORKERS=N (default runs 1 and 4)
//	FLOW_CACHE=off|mem|disk|all (default off)
//
// Uncached (the default): every occupied tile suffers the fault on
// attempt 0 and recovers on the retry; the run must finish on the
// primary path for all tiles, and two identical runs must produce
// identical shot lists regardless of worker count. With a cache mode
// set, only tiles 0 and 2 are faulted (and must bypass the cache in
// both directions), both runs share one cache, and the rerun must
// serve the clean tiles from it — still byte-identically.
func TestFaultMatrix(t *testing.T) {
	kinds := []string{"sleep", "panic", "nan", "badradius", "stall"}
	if k := os.Getenv("FLOW_FAULT_KIND"); k != "" && k != "all" {
		kinds = []string{k}
	}
	workerCounts := []int{1, 4}
	if w := os.Getenv("FLOW_TILE_WORKERS"); w != "" {
		n, err := strconv.Atoi(w)
		if err != nil {
			t.Fatalf("FLOW_TILE_WORKERS=%q: %v", w, err)
		}
		workerCounts = []int{n}
	}
	cacheModes := []string{"off"}
	switch v := os.Getenv("FLOW_CACHE"); v {
	case "", "off":
	case "all":
		cacheModes = []string{"off", "mem", "disk"}
	case "mem", "disk":
		cacheModes = []string{v}
	default:
		t.Fatalf("FLOW_CACHE = %q", v)
	}
	for _, kind := range kinds {
		for _, workers := range workerCounts {
			for _, mode := range cacheModes {
				t.Run(fmt.Sprintf("%s/workers=%d/cache=%s", kind, workers, mode), func(t *testing.T) {
					runFaultMatrixCase(t, kind, workers, mode)
				})
			}
		}
	}
}

func runFaultMatrixCase(t *testing.T, kind string, workers int, cacheMode string) {
	mkCfg := func() Config {
		cfg := faultConfig()
		cfg.Optimize = ruleFallback() // the fault paths, not the engine, are under test
		cfg.Fallback = ruleFallback()
		cfg.TileWorkers = workers
		cfg.TileRetries = 1
		var f Fault
		switch kind {
		case "sleep":
			// The wall deadline must comfortably fit the healthy retry
			// attempt even under -race on a loaded box.
			f = Fault{Sleep: time.Minute}
			cfg.TileTimeout = 2 * time.Second
		case "panic":
			f = Fault{Panic: true}
		case "nan":
			f = Fault{NaN: true}
		case "badradius":
			f = Fault{BadRadius: true}
			cfg.RMinPx = 1
			cfg.RMaxPx = 40
		case "stall":
			// Generous deadline: the healthy retry runs a non-beating
			// rule engine, so its whole attempt must finish within the
			// stall window even under -race.
			f = Fault{Stall: true}
			cfg.StallTimeout = time.Second
		default:
			t.Fatalf("unknown fault kind %q", kind)
		}
		cfg.Faults = FaultPlan{0: {f}, 1: {f}, 2: {f}, 3: {f}}
		return cfg
	}

	// Cached variants fault only tiles 0 and 2 — faulted tiles must
	// bypass the cache in both directions, the clean tiles 1 and 3 are
	// stored on the first run, and both runs share one cache so the
	// rerun serves them as hits. Disk mode exercises the gob tier.
	faulted := map[int]bool{0: true, 1: true, 2: true, 3: true}
	var cache *wcache.Cache
	if cacheMode != "off" {
		faulted = map[int]bool{0: true, 2: true}
		wc := wcache.Config{}
		if cacheMode == "disk" {
			wc.Dir = t.TempDir()
		}
		var err error
		if cache, err = wcache.New(wc); err != nil {
			t.Fatal(err)
		}
	}

	run := func() *Result {
		t.Helper()
		cfg := mkCfg()
		if cache != nil {
			cfg.Cache = cache
			cfg.Faults = FaultPlan{0: cfg.Faults[0], 2: cfg.Faults[2]}
		}
		res, err := Run(quadLayout(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Retried != len(faulted) || res.Fallbacks != 0 || res.Empty != 0 {
		t.Fatalf("summary: %+v", res)
	}
	for i, st := range res.TileStats {
		if !faulted[i] {
			if st.Attempts != 1 || st.Path != PathPrimary || st.CacheKey == "" {
				t.Fatalf("clean tile %d stat: %+v", i, st)
			}
			continue
		}
		if st.Attempts != 2 || st.Path != PathPrimary || st.Failure == "" {
			t.Fatalf("tile %d stat: %+v", i, st)
		}
		if st.CacheKey != "" || st.CacheHit {
			t.Fatalf("faulted tile %d touched the cache: %+v", i, st)
		}
		if kind == "stall" && !st.Stalled {
			t.Fatalf("tile %d not marked stalled: %+v", i, st)
		}
	}
	if kind == "stall" && res.Stalled != len(faulted) {
		t.Fatalf("res.Stalled = %d, want %d", res.Stalled, len(faulted))
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}

	// Determinism across reruns at this worker count.
	res2 := run()
	if cache != nil {
		// Tiles 1 and 3 are window-identical twins, so the serial cold
		// run serves tile 3 from tile 1's entry while tiles 0 and 2
		// fault right next to it. Parallel cold runs may compute both
		// twins concurrently before either is stored.
		if res.CacheHits+res.CacheMisses != 2 || res.CacheMisses < 1 {
			t.Fatalf("cold cached run hits=%d misses=%d, want 2 lookups with ≥1 miss", res.CacheHits, res.CacheMisses)
		}
		if workers == 1 && res.CacheHits != 1 {
			t.Fatalf("serial cold run hits=%d, want the twin tile served", res.CacheHits)
		}
		if res2.CacheHits != 2 || res2.CacheMisses != 0 {
			t.Fatalf("warm cached run hits=%d misses=%d, want 2/0", res2.CacheHits, res2.CacheMisses)
		}
	}
	if len(res2.Shots) != len(res.Shots) {
		t.Fatalf("rerun shot count %d != %d", len(res2.Shots), len(res.Shots))
	}
	for i := range res.Shots {
		if res.Shots[i] != res2.Shots[i] {
			t.Fatalf("shot %d differs across reruns: %+v vs %+v", i, res.Shots[i], res2.Shots[i])
		}
	}
}
