package flow

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestFaultMatrix runs the full degradation machinery under one fault
// kind and worker count, both selectable from the environment so CI can
// fan the matrix out across jobs (kind × workers, each under -race):
//
//	FLOW_FAULT_KIND=sleep|panic|nan|badradius|stall|all (default all)
//	FLOW_TILE_WORKERS=N (default runs 1 and 4)
//
// Every occupied tile suffers the fault on attempt 0 and recovers on
// the retry; the run must finish on the primary path for all tiles, and
// two identical runs must produce identical shot lists regardless of
// worker count.
func TestFaultMatrix(t *testing.T) {
	kinds := []string{"sleep", "panic", "nan", "badradius", "stall"}
	if k := os.Getenv("FLOW_FAULT_KIND"); k != "" && k != "all" {
		kinds = []string{k}
	}
	workerCounts := []int{1, 4}
	if w := os.Getenv("FLOW_TILE_WORKERS"); w != "" {
		n, err := strconv.Atoi(w)
		if err != nil {
			t.Fatalf("FLOW_TILE_WORKERS=%q: %v", w, err)
		}
		workerCounts = []int{n}
	}
	for _, kind := range kinds {
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("%s/workers=%d", kind, workers), func(t *testing.T) {
				runFaultMatrixCase(t, kind, workers)
			})
		}
	}
}

func runFaultMatrixCase(t *testing.T, kind string, workers int) {
	mkCfg := func() Config {
		cfg := faultConfig()
		cfg.Optimize = ruleFallback() // the fault paths, not the engine, are under test
		cfg.Fallback = ruleFallback()
		cfg.TileWorkers = workers
		cfg.TileRetries = 1
		var f Fault
		switch kind {
		case "sleep":
			// The wall deadline must comfortably fit the healthy retry
			// attempt even under -race on a loaded box.
			f = Fault{Sleep: time.Minute}
			cfg.TileTimeout = 2 * time.Second
		case "panic":
			f = Fault{Panic: true}
		case "nan":
			f = Fault{NaN: true}
		case "badradius":
			f = Fault{BadRadius: true}
			cfg.RMinPx = 1
			cfg.RMaxPx = 40
		case "stall":
			// Generous deadline: the healthy retry runs a non-beating
			// rule engine, so its whole attempt must finish within the
			// stall window even under -race.
			f = Fault{Stall: true}
			cfg.StallTimeout = time.Second
		default:
			t.Fatalf("unknown fault kind %q", kind)
		}
		cfg.Faults = FaultPlan{0: {f}, 1: {f}, 2: {f}, 3: {f}}
		return cfg
	}

	run := func() *Result {
		t.Helper()
		res, err := Run(quadLayout(), mkCfg())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Retried != 4 || res.Fallbacks != 0 || res.Empty != 0 {
		t.Fatalf("summary: %+v", res)
	}
	for i, st := range res.TileStats {
		if st.Attempts != 2 || st.Path != PathPrimary || st.Failure == "" {
			t.Fatalf("tile %d stat: %+v", i, st)
		}
		if kind == "stall" && !st.Stalled {
			t.Fatalf("tile %d not marked stalled: %+v", i, st)
		}
	}
	if kind == "stall" && res.Stalled != 4 {
		t.Fatalf("res.Stalled = %d, want 4", res.Stalled)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}

	// Determinism across reruns at this worker count.
	res2 := run()
	if len(res2.Shots) != len(res.Shots) {
		t.Fatalf("rerun shot count %d != %d", len(res2.Shots), len(res.Shots))
	}
	for i := range res.Shots {
		if res.Shots[i] != res2.Shots[i] {
			t.Fatalf("shot %d differs across reruns: %+v vs %+v", i, res.Shots[i], res2.Shots[i])
		}
	}
}
