package flow

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/procpool"
	"cfaopc/internal/quarantine"
)

// TestMain doubles as the tile-worker binary: when the supervisor
// re-executes this test executable with the worker env set, it serves
// tasks instead of running tests. The runner resolves the test-only
// engine names the proc tests put into Engines metadata.
func TestMain(m *testing.M) {
	if procpool.InWorker() {
		if addr := os.Getenv(netListenEnv); addr != "" {
			// Spawned as a loopback TCP host for the net tests.
			runNetHost(addr)
		}
		if err := procpool.Serve(os.Stdin, os.Stdout, testRunner()); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testRunner is the worker-side task executor the re-exec branches
// serve (pipe and TCP alike): the proc tests' miniature of the engine
// registry, with a per-session simulator cache.
func testRunner() procpool.Runner {
	var cache SimCache
	return func(ctx context.Context, task *procpool.Task, sink procpool.Sink) procpool.Reply {
		b := &task.Bundle
		reply := procpool.Reply{Index: b.Tile.Index}
		primary, ok := testEngine(b.Engines.Primary, b.Engines.Iters)
		if !ok {
			reply.Err = "unknown test engine " + b.Engines.Primary
			return reply
		}
		fallback, _ := testEngine(b.Engines.Fallback, b.Engines.Iters)
		sim, err := cache.For(task)
		if err != nil {
			reply.Err = err.Error()
			return reply
		}
		return ServeTask(ctx, sim, task, primary, fallback, sink)
	}
}

// testEngine maps the engine names the proc tests use ("rule",
// "circle") onto the package's test optimizers — a miniature of the
// registry lookup cmd binaries do via internal/engine.
func testEngine(name string, iters int) (Optimizer, bool) {
	switch name {
	case "rule":
		return ruleFallback(), true
	case "circle":
		if iters <= 0 {
			iters = 8
		}
		return circleOptimizer(iters), true
	}
	return nil, false
}

// testWorkerCmd re-executes this test binary as the worker subprocess.
func testWorkerCmd(t *testing.T) func() *exec.Cmd {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func() *exec.Cmd {
		cmd := exec.Command(self)
		cmd.Stderr = os.Stderr
		return cmd
	}
}

// procConfig is the shared proc-mode config: cheap deterministic rule
// engine on both rungs, fast respawn backoff so crash loops resolve in
// test time.
func procConfig(t *testing.T) Config {
	cfg := testConfig()
	cfg.Optimize = ruleFallback()
	cfg.Fallback = ruleFallback()
	cfg.Engines = quarantine.EngineMeta{Primary: "rule", Fallback: "rule"}
	cfg.ProcWorkers = 1
	cfg.WorkerCmd = testWorkerCmd(t)
	cfg.ProcBackoff = 5 * time.Millisecond
	return cfg
}

// serialRef strips proc and remote mode off a config, yielding the
// in-process serial run every proc/net test compares against
// (Fault.Kill is a no-op in-process, so the same fault plan drives
// both runs).
func serialRef(cfg Config) Config {
	cfg.ProcWorkers = 0
	cfg.WorkerCmd = nil
	cfg.RemoteHosts = nil
	cfg.TileWorkers = 1
	return cfg
}

func TestProcValidation(t *testing.T) {
	l := bigLayout()
	cfg := procConfig(t)
	cfg.ProcWorkers = -1
	if _, err := Run(l, cfg); err == nil {
		t.Error("negative ProcWorkers accepted")
	}
	cfg = procConfig(t)
	cfg.WorkerCmd = nil
	if _, err := Run(l, cfg); err == nil {
		t.Error("ProcWorkers without WorkerCmd accepted")
	}
	cfg = procConfig(t)
	cfg.Engines = quarantine.EngineMeta{}
	if _, err := Run(l, cfg); err == nil {
		t.Error("ProcWorkers without engine metadata accepted")
	}
}

// TestProcAcceptance is the issue's acceptance scenario: four proc
// workers, two tiles SIGKILLed mid-tile (recover on respawn), one tile
// crash-looping its slot into the circuit breaker — the run completes,
// the degradations are recorded, and shots, stats and streamed bands
// are byte-identical to the serial in-process reference.
func TestProcAcceptance(t *testing.T) {
	l := quadLayout()
	plan := FaultPlan{
		1: {{Kill: 1}},       // killed on the first dispatch, clean on respawn
		2: {{Kill: 1}},       // same, on another tile
		3: {{Kill: 1 << 30}}, // crash-loops until the breaker trips
	}
	mk := func(w MaskWriter) Config {
		cfg := procConfig(t)
		cfg.ProcWorkers = 4
		cfg.ProcCrashLimit = 3
		cfg.Faults = plan
		cfg.MaskWriter = w
		return cfg
	}

	refColl := NewMaskCollector(testConfig().GridN)
	ref, err := Run(l, serialRef(mk(refColl)))
	if err != nil {
		t.Fatal(err)
	}
	if ref.ProcCrashes != 0 || ref.Broken != 0 {
		t.Fatalf("serial reference recorded proc activity: %+v", ref)
	}

	procColl := NewMaskCollector(testConfig().GridN)
	res, err := Run(l, mk(procColl))
	if err != nil {
		t.Fatal(err)
	}
	// Tiles 1 and 2: one failed dispatch each. Tile 3: exactly
	// ProcCrashLimit failures, then the breaker. The counts are exact
	// because a slot handles one tile at a time and the consecutive
	// counter resets on every success.
	if res.ProcCrashes != 5 {
		t.Fatalf("ProcCrashes = %d, want 5", res.ProcCrashes)
	}
	if res.Broken != 1 {
		t.Fatalf("Broken = %d, want 1", res.Broken)
	}
	if res.Completed != 4 {
		t.Fatalf("Completed = %d, want 4", res.Completed)
	}
	for idx, want := range map[int]struct {
		proc    bool
		crashes int
	}{
		0: {true, 0},
		1: {true, 1},
		2: {true, 1},
		3: {false, 3}, // circuit-broken: finished in-process
	} {
		st := res.TileStats[idx]
		if st.Proc != want.proc || st.ProcCrashes != want.crashes {
			t.Fatalf("tile %d: proc=%v crashes=%d, want proc=%v crashes=%d",
				idx, st.Proc, st.ProcCrashes, want.proc, want.crashes)
		}
		if st.Path != PathPrimary {
			t.Fatalf("tile %d path = %q", idx, st.Path)
		}
	}
	sameResult(t, res, ref)
	if procColl.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("proc run's streamed bands differ from the serial reference's")
	}
}

// TestCrashMatrix is the CI crash-matrix entry point: the fault kind
// and worker count come from the environment (one cell per CI job), or
// every cell runs when the variables are unset.
func TestCrashMatrix(t *testing.T) {
	kinds := []string{"kill", "crashloop"}
	if v := os.Getenv("FLOW_PROC_FAULT"); v != "" && v != "all" {
		kinds = []string{v}
	}
	counts := []int{1, 4}
	if v := os.Getenv("FLOW_PROC_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("FLOW_PROC_WORKERS = %q", v)
		}
		counts = []int{n}
	}
	l := quadLayout()
	for _, kind := range kinds {
		for _, workers := range counts {
			t.Run(fmt.Sprintf("%s/procworkers=%d", kind, workers), func(t *testing.T) {
				var plan FaultPlan
				crashLimit := 3
				wantCrashes, wantBroken := 0, 0
				switch kind {
				case "kill":
					// Every tile loses its worker once mid-tile; every
					// respawn recovers.
					plan = FaultPlan{0: {{Kill: 1}}, 1: {{Kill: 1}}, 2: {{Kill: 1}}, 3: {{Kill: 1}}}
					wantCrashes = 4
				case "crashloop":
					// One tile kills every worker it ever gets until its
					// slot circuit-breaks to in-process execution.
					plan = FaultPlan{1: {{Kill: 1 << 30}}}
					crashLimit = 2
					wantCrashes, wantBroken = 2, 1
				default:
					t.Fatalf("unknown fault kind %q", kind)
				}
				mk := func() Config {
					cfg := procConfig(t)
					cfg.ProcWorkers = workers
					cfg.ProcCrashLimit = crashLimit
					cfg.Faults = plan
					return cfg
				}
				ref, err := Run(l, serialRef(mk()))
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(l, mk())
				if err != nil {
					t.Fatal(err)
				}
				if res.ProcCrashes != wantCrashes || res.Broken != wantBroken {
					t.Fatalf("crashes=%d broken=%d, want %d/%d",
						res.ProcCrashes, res.Broken, wantCrashes, wantBroken)
				}
				sameResult(t, res, ref)
			})
		}
	}
}

// TestWorkerSoftErrorBreaksToFallback covers the non-crash failure
// lane: a worker that stays alive but reports a deterministic task
// error (here: engine metadata it cannot resolve) counts toward the
// breaker exactly like a crash, and the tile completes in-process.
func TestWorkerSoftErrorBreaksToFallback(t *testing.T) {
	l := bigLayout() // two occupied tiles of four
	cfg := procConfig(t)
	cfg.Engines.Primary = "bogus" // the worker-side registry rejects it
	cfg.ProcCrashLimit = 2
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcCrashes != 2 || res.Broken != 1 {
		t.Fatalf("crashes=%d broken=%d, want 2/1", res.ProcCrashes, res.Broken)
	}
	for _, st := range res.TileStats {
		if st.Proc {
			t.Fatalf("tile %d claims a proc result after circuit break", st.Index)
		}
	}
	ref, err := Run(l, serialRef(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, ref)
}

// TestWorkerSpawnFailureBreaks: a WorkerCmd that cannot even start
// (missing binary) is a failed dispatch, not a run failure — the
// breaker degrades the slot and the run completes in-process.
func TestWorkerSpawnFailureBreaks(t *testing.T) {
	l := bigLayout()
	cfg := procConfig(t)
	cfg.ProcCrashLimit = 2
	missing := filepath.Join(t.TempDir(), "no-such-worker")
	cfg.WorkerCmd = func() *exec.Cmd { return exec.Command(missing) }
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcCrashes != 2 || res.Broken != 1 {
		t.Fatalf("crashes=%d broken=%d, want 2/1", res.ProcCrashes, res.Broken)
	}
	ref, err := Run(l, serialRef(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, ref)
}

// TestNonWorkerBinarySilenceBreaks: a binary that starts but never
// speaks the protocol (no Hello) is killed after ProcSilence and
// counted as a failed dispatch, so a misconfigured -worker-bin degrades
// instead of wedging the run.
func TestNonWorkerBinarySilenceBreaks(t *testing.T) {
	l := bigLayout()
	cfg := procConfig(t)
	cfg.ProcCrashLimit = 2
	cfg.ProcSilence = 150 * time.Millisecond
	cfg.WorkerCmd = func() *exec.Cmd { return exec.Command("sleep", "60") }
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcCrashes != 2 || res.Broken != 1 {
		t.Fatalf("crashes=%d broken=%d, want 2/1", res.ProcCrashes, res.Broken)
	}
	ref, err := Run(l, serialRef(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, ref)
}

// TestDrainInProcess: the graceful-drain channel stops dispatch after
// the in-flight tile, the run returns ErrDrained with a truthful
// partial result, and a resume completes it byte-identically.
func TestDrainInProcess(t *testing.T) {
	testDrain(t, false)
}

// TestProcDrainResume is the same drain contract in proc mode, with a
// worker crash thrown in before the drain point: crash, respawn,
// drain, checkpoint, resume — stitched output still byte-identical to
// the uninterrupted serial reference.
func TestProcDrainResume(t *testing.T) {
	testDrain(t, true)
}

func testDrain(t *testing.T, proc bool) {
	l := quadLayout()
	// Tile 0 is slow enough that the drain fires while it is in flight;
	// in proc mode it additionally loses its first worker mid-tile.
	script := Fault{Sleep: 500 * time.Millisecond}
	if proc {
		script.Kill = 1
	}
	plan := FaultPlan{0: {script}}
	mk := func(w MaskWriter) Config {
		cfg := procConfig(t)
		if !proc {
			cfg.ProcWorkers = 0
			cfg.WorkerCmd = nil
			cfg.TileWorkers = 1
		}
		cfg.Faults = plan
		cfg.MaskWriter = w
		return cfg
	}

	refColl := NewMaskCollector(testConfig().GridN)
	ref, err := Run(l, serialRef(mk(refColl)))
	if err != nil {
		t.Fatal(err)
	}

	// Drained run: with one worker and an unbuffered job channel, the
	// feeder is still holding tile 1 when the drain closes, so exactly
	// the in-flight tile completes.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	drain := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(drain)
	}()
	cfg := mk(NewMaskCollector(testConfig().GridN))
	cfg.CheckpointPath = ckpt
	cfg.Drain = drain
	res, err := RunContext(context.Background(), l, cfg)
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("drained run err = %v, want ErrDrained", err)
	}
	if res == nil {
		t.Fatal("drained run returned no result")
	}
	if res.Completed != 1 {
		t.Fatalf("drained run completed %d tiles, want 1", res.Completed)
	}
	if res.Mask != nil {
		t.Fatal("drained run produced a stitched mask")
	}
	if st := res.TileStats[0]; st.Path != PathPrimary {
		t.Fatalf("in-flight tile stat after drain: %+v", st)
	}
	if st := res.TileStats[1]; st.Path != "" || st.Attempts != 0 {
		t.Fatalf("undispatched tile has activity: %+v", st)
	}
	if proc && res.ProcCrashes != 1 {
		t.Fatalf("drained run ProcCrashes = %d, want 1", res.ProcCrashes)
	}

	// Resume: tile 0 replays from the journal, the rest compute, and
	// the full band stream re-emits.
	resColl := NewMaskCollector(testConfig().GridN)
	cfg = mk(resColl)
	cfg.CheckpointPath = ckpt
	res2, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 1 {
		t.Fatalf("resumed %d tiles, want 1", res2.Resumed)
	}
	sameResult(t, res2, ref)
	if resColl.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("resumed run's streamed bands differ from the reference's")
	}
}

// recSink records the beat/partial stream a ServeTask emits.
type recSink struct {
	beats    int
	partials []procpool.PartialState
}

func (s *recSink) Beat(index, iter int, loss float64) { s.beats++ }
func (s *recSink) Partial(index int, p procpool.PartialState) {
	s.partials = append(s.partials, p)
}

// TestServeTaskHooks drives the worker-side entry point in-process: a
// hand-built task (the same shape buildTask wires) must stream beats
// and snapshots through the sink, and re-serving the task warm-started
// from a mid-run snapshot must replay to identical shots — the
// property crash-redispatch determinism rests on.
func TestServeTaskHooks(t *testing.T) {
	l := bigLayout()
	base := testConfig()
	window := base.CorePx + 2*base.HaloPx
	dx := float64(l.TileNM) / float64(base.GridN)
	oCfg := base.Optics
	oCfg.TileNM = float64(window) * dx
	ix := layout.NewWindowIndex(l, base.GridN)
	target, occupied := ix.Window(-base.HaloPx, -base.HaloPx, window, window)
	if !occupied {
		t.Fatal("tile 0 of bigLayout should be occupied")
	}
	sim, err := litho.New(oCfg, window)
	if err != nil {
		t.Fatal(err)
	}
	sim.KOpt = base.KOpt

	mkTask := func() *procpool.Task {
		return &procpool.Task{
			Bundle: quarantine.Bundle{
				FormatVersion: quarantine.FormatVersion,
				GridN:         base.GridN,
				CorePx:        base.CorePx,
				HaloPx:        base.HaloPx,
				KOpt:          base.KOpt,
				Optics:        oCfg,
				Engines:       quarantine.EngineMeta{Primary: "circle", Iters: 8},
				Tile: quarantine.Tile{
					Index: 0, CX: 0, CY: 0,
					OriginX: -base.HaloPx, OriginY: -base.HaloPx, WindowPx: window,
				},
				TargetW: window,
				TargetH: window,
				Target:  append([]float64(nil), target.Data...),
			},
			PartialEvery: 2,
		}
	}

	sink := &recSink{}
	reply := ServeTask(context.Background(), sim, mkTask(), circleOptimizer(8), nil, sink)
	if reply.Err != "" {
		t.Fatalf("reply error: %s", reply.Err)
	}
	if reply.Path != PathPrimary || len(reply.Shots) == 0 {
		t.Fatalf("reply path %q with %d shots", reply.Path, len(reply.Shots))
	}
	if sink.beats == 0 {
		t.Fatal("no heartbeats streamed")
	}
	if len(sink.partials) == 0 {
		t.Fatal("no partial snapshots streamed despite PartialEvery")
	}

	// Warm-start from a mid-run snapshot: the remaining trajectory must
	// be the recorded one, so the final shots are identical.
	resume := sink.partials[0]
	task := mkTask()
	task.Resume = &resume
	reply2 := ServeTask(context.Background(), sim, task, circleOptimizer(8), nil, &recSink{})
	if reply2.Err != "" {
		t.Fatalf("resumed reply error: %s", reply2.Err)
	}
	if len(reply2.Shots) != len(reply.Shots) {
		t.Fatalf("resumed reply has %d shots, cold run %d", len(reply2.Shots), len(reply.Shots))
	}
	for i := range reply.Shots {
		if reply.Shots[i] != reply2.Shots[i] {
			t.Fatalf("shot %d diverged after snapshot resume: %+v vs %+v",
				i, reply.Shots[i], reply2.Shots[i])
		}
	}

	// A task-grade bundle failing validation is a soft error, not a panic.
	bad := mkTask()
	bad.Bundle.Target = nil
	if r := ServeTask(context.Background(), sim, bad, circleOptimizer(8), nil, nil); r.Err == "" {
		t.Fatal("invalid task accepted")
	}
}

// TestProcPartialResume exercises partial snapshots across the process
// boundary in both directions: a journaled snapshot warm-starts the
// worker's first dispatch (resume after a mid-optimization interrupt),
// and the worker's own Partial frames are journaled by the supervisor
// during the run. Output must match the cold serial reference — the
// exact-trajectory property redispatch determinism rests on.
func TestProcPartialResume(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full CircleOpt runs: partial records only exist there")
	}
	l := bigLayout()
	mkCfg := func() Config {
		cfg := procConfig(t)
		cfg.Optimize = circleOptimizer(8)
		cfg.Fallback = nil
		cfg.Engines = quarantine.EngineMeta{Primary: "circle", Iters: 8}
		cfg.PartialEvery = 2
		return cfg
	}
	ref, err := Run(l, serialRef(mkCfg()))
	if err != nil {
		t.Fatal(err)
	}

	// Capture a genuine mid-optimization snapshot of tile 0 by serving
	// its window in-process with a recording sink.
	base := testConfig()
	window := base.CorePx + 2*base.HaloPx
	oCfg := base.Optics
	oCfg.TileNM = float64(window) * float64(l.TileNM) / float64(base.GridN)
	ix := layout.NewWindowIndex(l, base.GridN)
	target, _ := ix.Window(-base.HaloPx, -base.HaloPx, window, window)
	sim, err := litho.New(oCfg, window)
	if err != nil {
		t.Fatal(err)
	}
	sim.KOpt = base.KOpt
	sink := &recSink{}
	reply := ServeTask(context.Background(), sim, &procpool.Task{
		Bundle: quarantine.Bundle{
			FormatVersion: quarantine.FormatVersion,
			GridN:         base.GridN, CorePx: base.CorePx, HaloPx: base.HaloPx, KOpt: base.KOpt,
			Optics:  oCfg,
			Engines: quarantine.EngineMeta{Primary: "circle", Iters: 8},
			Tile: quarantine.Tile{
				Index: 0, CX: 0, CY: 0,
				OriginX: -base.HaloPx, OriginY: -base.HaloPx, WindowPx: window,
			},
			TargetW: window, TargetH: window,
			Target: append([]float64(nil), target.Data...),
		},
		PartialEvery: 2,
	}, circleOptimizer(8), nil, sink)
	if reply.Err != "" || len(sink.partials) == 0 {
		t.Fatalf("snapshot capture failed: err %q, %d partials", reply.Err, len(sink.partials))
	}
	snap := sink.partials[0]

	// Journal that snapshot as the interrupted run would have, then
	// resume in proc mode: tile 0's first dispatch warm-starts from it.
	cfg := mkCfg()
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
	j, _, err := checkpoint.Open(cfg.CheckpointPath, fingerprint(l, cfg))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := encodeRecord(journalRecord{Partial: &partialRecord{
		Index: 0, Attempt: snap.Attempt, Iter: snap.Iter, Loss: snap.Loss,
		Params: snap.Params, OptT: snap.OptT, OptM: snap.OptM, OptV: snap.OptV,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(buf); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcCrashes != 0 || res.Broken != 0 {
		t.Fatalf("healthy resume recorded crashes: %+v", res)
	}
	for _, st := range res.TileStats {
		if st.Occupied && !st.Proc {
			t.Fatalf("tile %d not served by a worker", st.Index)
		}
	}
	// The warm-started tile skipped the iterations the snapshot already
	// held, so its heartbeat count is legitimately lower; everything
	// else — shots, mask, loss — must be byte-identical.
	if res.TileStats[0].Iters >= ref.TileStats[0].Iters {
		t.Fatalf("tile 0 iters %d not reduced by warm start (reference %d)",
			res.TileStats[0].Iters, ref.TileStats[0].Iters)
	}
	res.TileStats[0].Iters = ref.TileStats[0].Iters
	sameResult(t, res, ref)

	// The workers' own Partial frames must have been journaled: the
	// finished journal holds tile records plus streamed snapshots.
	j2, payloads, err := checkpoint.Open(cfg.CheckpointPath, fingerprint(l, cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	tiles, partials := 0, 0
	for _, p := range payloads {
		rec, err := decodeRecord(p)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Tile != nil {
			tiles++
		} else {
			partials++
		}
	}
	if tiles != 4 {
		t.Fatalf("journal holds %d tile records, want 4", tiles)
	}
	if partials <= 1 {
		t.Fatalf("journal holds %d partial records; worker snapshots were not journaled", partials)
	}
}

// TestProcKnobDefaults pins the proc-mode tuning defaults and their
// overrides.
func TestProcKnobDefaults(t *testing.T) {
	var zero Config
	if got := zero.procCrashLimit(); got != 3 {
		t.Errorf("default crash limit = %d", got)
	}
	if got := zero.procSilence(); got != 10*time.Second {
		t.Errorf("default silence = %s", got)
	}
	if got := zero.procBackoff(); got != 50*time.Millisecond {
		t.Errorf("default backoff = %s", got)
	}
	set := Config{ProcCrashLimit: 7, ProcSilence: time.Second, ProcBackoff: time.Millisecond}
	if set.procCrashLimit() != 7 || set.procSilence() != time.Second || set.procBackoff() != time.Millisecond {
		t.Error("overrides not honored")
	}
	if _, ok := TileInfoFrom(context.Background()); ok {
		t.Error("TileInfoFrom invented info on a bare context")
	}
}

// TestQuarantineRetentionInFlow: with a bundle budget configured, a run
// that quarantines two tiles keeps only the newest bundle pair.
func TestQuarantineRetentionInFlow(t *testing.T) {
	l := bigLayout() // tiles 0 and 3 occupied
	cfg := testConfig()
	cfg.TileWorkers = 1 // serial: tile 3's bundle is written after tile 0's
	cfg.Optimize = InjectFaults(ruleFallback(), FaultPlan{
		0: {{NaN: true}},
		3: {{NaN: true}},
	})
	qdir := filepath.Join(t.TempDir(), "quarantine")
	cfg.QuarantineDir = qdir
	cfg.QuarantineMaxBundles = 1
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty != 2 || res.Quarantined != 2 {
		t.Fatalf("empty=%d quarantined=%d, want 2/2", res.Empty, res.Quarantined)
	}
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 || !strings.HasPrefix(names[0], "tile0003") || !strings.HasPrefix(names[1], "tile0003") {
		t.Fatalf("retained files = %v, want only the newest tile's pair", names)
	}
	// The survivor is still a loadable bundle.
	if _, err := quarantine.Load(filepath.Join(qdir, "tile0003.qrb")); err != nil {
		t.Fatal(err)
	}
}

// TestCompactKeepsTrailingPartial is the regression the issue calls
// out: a journal whose last records are partial snapshots for a tile
// that never completed must keep exactly the freshest snapshot through
// compaction, so a resume after compacting warm-starts identically.
func TestCompactKeepsTrailingPartial(t *testing.T) {
	l := bigLayout()
	cfg := testConfig()
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")

	j, _, err := checkpoint.Open(cfg.CheckpointPath, fingerprint(l, cfg))
	if err != nil {
		t.Fatal(err)
	}
	appendRec := func(rec journalRecord) {
		t.Helper()
		buf, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(buf); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(journalRecord{Tile: &tileRecord{Stat: TileStat{Index: 0, Occupied: true, Path: PathPrimary}}})
	appendRec(journalRecord{Partial: &partialRecord{Index: 1, Iter: 10, Loss: 3, Params: []float64{1, 2, 3}}})
	appendRec(journalRecord{Partial: &partialRecord{Index: 1, Iter: 20, Loss: 2, Params: []float64{4, 5, 6}}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	stats, err := CompactCheckpoint(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != 2 || stats.Dropped != 1 {
		t.Fatalf("compact stats = %+v, want 2 kept / 1 dropped", stats)
	}

	j2, payloads, err := checkpoint.Open(cfg.CheckpointPath, fingerprint(l, cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(payloads) != 2 {
		t.Fatalf("%d records after compaction, want 2", len(payloads))
	}
	rec0, err := decodeRecord(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if rec0.Tile == nil || rec0.Tile.Stat.Index != 0 {
		t.Fatalf("first surviving record = %+v, want tile 0", rec0)
	}
	rec1, err := decodeRecord(payloads[1])
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Partial == nil || rec1.Partial.Index != 1 || rec1.Partial.Iter != 20 {
		t.Fatalf("second surviving record = %+v, want tile 1's freshest partial", rec1)
	}

	// Compacting without a checkpoint path is a caller error.
	cfg.CheckpointPath = ""
	if _, err := CompactCheckpoint(l, cfg); err == nil {
		t.Fatal("compaction without a checkpoint path accepted")
	}
}
