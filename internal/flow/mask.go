// Streamed mask assembly: instead of re-rasterizing the stitched shot
// list onto a second O(GridN²) dense grid, the flow can emit the mask as
// horizontal row bands — one band per tile row, rasterized from only the
// shots that can reach it — as the contributing tile rows complete. Peak
// mask memory is one band (GridN × CorePx), not GridN².
package flow

import (
	"fmt"
	"sync"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
)

// MaskWriter receives the stitched mask as horizontal bands. Bands
// arrive in top-to-bottom order, each global row exactly once: band k
// covers full-grid rows [y0, y0+band.H) with band.W == Config.GridN.
// Calls are serialized by the flow. When Config.RMaxPx bounds shot radii
// the bands stream out while later tile rows are still optimizing;
// without a radius bound every band is emitted after the last tile
// finishes (a later shot of unknown radius could otherwise reach back
// into an already-emitted band). A failed or canceled run may have
// written a prefix of the bands; a rerun restarts from the first band.
type MaskWriter interface {
	WriteBand(y0 int, band *grid.Real) error
}

// MaskCollector is a MaskWriter that reassembles the streamed bands into
// a dense full-grid mask — the bridge for callers that want the banded
// pipeline and a final dense grid, and the reference the equivalence
// tests compare against Result.Mask.
type MaskCollector struct {
	Mask *grid.Real
}

// NewMaskCollector collects bands of an n×n mask.
func NewMaskCollector(n int) *MaskCollector {
	return &MaskCollector{Mask: grid.NewReal(n, n)}
}

// WriteBand copies the band into the dense mask.
func (c *MaskCollector) WriteBand(y0 int, band *grid.Real) error {
	if band.W != c.Mask.W || y0 < 0 || y0+band.H > c.Mask.H {
		return fmt.Errorf("flow: band rows [%d, %d) outside %dx%d mask", y0, y0+band.H, c.Mask.W, c.Mask.H)
	}
	copy(c.Mask.Data[y0*c.Mask.W:(y0+band.H)*c.Mask.W], band.Data)
	return nil
}

// bandAssembler turns per-tile completions (in any order — workers race,
// resumed tiles replay up front) into ordered band emissions. It buffers
// only the owned shots per tile row plus one rasterized band at a time.
type bandAssembler struct {
	mu        sync.Mutex
	gridN     int
	corePx    int
	rows      int
	reachRows int // tile-row reach of one shot; -1 = unbounded, emit at finish
	w         MaskWriter

	rowShots [][]geom.Circle // owned shots per tile row, full-grid coords
	rowLeft  []int           // tiles not yet completed per row
	next     int             // next tile row (band) to emit
	err      error           // first writer error, surfaced by finish
}

// newBandAssembler sizes the assembler for a band grid of uniform
// corePx-high rows; perRow[r] counts the planned tiles whose core
// intersects band row r (a merged adaptive tile counts toward every row
// it spans). When rMaxPx > 0 a shot can reach at most a bounded number
// of band rows, so bands stream as soon as their neighborhood of rows
// completes; otherwise emission waits for finish.
func newBandAssembler(gridN, corePx int, perRow []int, rMaxPx float64, w MaskWriter) *bandAssembler {
	rows := len(perRow)
	a := &bandAssembler{
		gridN:     gridN,
		corePx:    corePx,
		rows:      rows,
		reachRows: -1,
		w:         w,
		rowShots:  make([][]geom.Circle, rows),
		rowLeft:   append([]int(nil), perRow...),
	}
	if rMaxPx > 0 {
		// A shot of radius R centered in band row r' can only touch rows
		// within int(R/corePx)+2 band rows of r' (one row of slack for the
		// partial border row and the rasterizer's +1 bounding margin).
		a.reachRows = int(rMaxPx/float64(corePx)) + 2
	}
	return a
}

// tileDone records one completed tile's owned shots and emits every band
// whose contributing rows are now all complete. The tile's core spans
// band rows [r0, r1]; its shots are bucketed by center row (band
// rasterization is a union, so within-row order is irrelevant).
func (a *bandAssembler) tileDone(r0, r1 int, shots []geom.Circle) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return
	}
	for _, s := range shots {
		row := int(s.Y) / a.corePx
		if row < 0 {
			row = 0
		}
		if row > a.rows-1 {
			row = a.rows - 1
		}
		a.rowShots[row] = append(a.rowShots[row], s)
	}
	for r := r0; r <= r1; r++ {
		a.rowLeft[r]--
	}
	a.advance(false)
}

// advance emits bands from the front while their reach neighborhood is
// complete; with final set (every tile done) it drains to the end.
func (a *bandAssembler) advance(final bool) {
	for a.next < a.rows && a.err == nil {
		r := a.next
		if !final {
			if a.reachRows < 0 {
				return
			}
			lo, hi := r-a.reachRows, r+a.reachRows
			if lo < 0 {
				lo = 0
			}
			if hi > a.rows-1 {
				hi = a.rows - 1
			}
			for rr := lo; rr <= hi; rr++ {
				if a.rowLeft[rr] > 0 {
					return
				}
			}
		}
		a.err = a.emit(r)
		a.next++
	}
}

// emit rasterizes band r from the shots of every row that can reach it
// and hands it to the writer.
func (a *bandAssembler) emit(r int) error {
	y0 := r * a.corePx
	h := a.corePx
	if y0+h > a.gridN {
		h = a.gridN - y0
	}
	lo, hi := 0, a.rows-1
	if a.reachRows >= 0 {
		if lo = r - a.reachRows; lo < 0 {
			lo = 0
		}
		if hi = r + a.reachRows; hi > a.rows-1 {
			hi = a.rows - 1
		}
	}
	var cand []geom.Circle
	for rr := lo; rr <= hi; rr++ {
		cand = append(cand, a.rowShots[rr]...)
	}
	return a.w.WriteBand(y0, geom.RasterizeCirclesBand(a.gridN, h, y0, cand))
}

// finish drains the remaining bands (every tile has completed by the
// time the flow calls it) and returns the first writer error, if any.
func (a *bandAssembler) finish() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err == nil {
		a.advance(true)
	}
	return a.err
}
