// Live progress events: the subscriber hook that turns a run's internal
// telemetry — optimizer heartbeats (opt.Beat), tile completions with
// their full TileStat (cache hits, degradation path, provenance), and
// journal-replayed tiles on resume — into a stream an external observer
// can broadcast. internal/server fans this stream out to SSE clients;
// the flow itself only guarantees the callback order within one tile
// (beats before its completion) and that every planned tile eventually
// emits exactly one EventTile per run (replayed tiles emit theirs during
// journal replay, before any worker starts).
package flow

// EventKind discriminates flow progress events.
type EventKind string

const (
	// EventBeat is one optimizer heartbeat: Tile, Iter and Loss are set.
	// Beats from worker subprocesses and remote hosts are forwarded
	// across the wire by the supervisor, so the stream looks the same in
	// every dispatch mode (liveness frames permitting — a dead link
	// drops its tail, never the completion).
	EventBeat EventKind = "beat"
	// EventTile is one tile completion: Tile and Stat are set. Resumed
	// tiles (replayed from the checkpoint journal) emit it with
	// Stat.Resumed true; cache-served tiles with Stat.CacheHit true.
	EventTile EventKind = "tile"
)

// Event is one observation from a running flow.
type Event struct {
	Kind EventKind
	Tile int     // plan index
	Iter int     // EventBeat: optimizer iteration within the attempt
	Loss float64 // EventBeat: loss at that iteration
	// Stat is the completed tile's record (EventTile only). It is a
	// snapshot owned by the receiver; the flow does not mutate it after
	// the call.
	Stat *TileStat
}

// EventSink observes a run's progress stream. It is called from worker
// goroutines concurrently and synchronously, so it must be fast and
// must never block — a slow downstream consumer has to buffer or drop
// on its own side of the boundary (internal/server's hub does
// drop-oldest per subscriber). Errors cannot be returned: events are
// observability, not control flow, and a broken subscriber must not be
// able to fail a run.
type EventSink func(Event)

// emitTile publishes one tile completion to the configured sink.
func (env *runEnv) emitTile(index int, stat TileStat) {
	if env.events != nil {
		env.events(Event{Kind: EventTile, Tile: index, Stat: &stat})
	}
}
