package flow

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
	"cfaopc/internal/opt"
	"cfaopc/internal/quarantine"
)

// TestStallWatchdogKillsWedgedSparesSlow is the liveness acceptance
// test: a tile whose optimizer wedges (no heartbeats) dies at
// StallTimeout, long before the wall deadline would fire, while an
// equally slow tile that heartbeats runs to completion.
func TestStallWatchdogKillsWedgedSparesSlow(t *testing.T) {
	cfg := faultConfig()
	cfg.Optimize = ruleFallback()
	cfg.Fallback = ruleFallback()
	cfg.TileRetries = 0
	cfg.TileTimeout = 60 * time.Second // the wall deadline this test must beat
	// 10× margin between beat period and stall deadline: under -race on
	// a loaded single-CPU box a beat can easily slip a whole period.
	cfg.StallTimeout = 500 * time.Millisecond
	cfg.Faults = FaultPlan{
		// bigLayout occupies tiles 0 and 3 of the 2×2 tiling.
		0: {{Stall: true}},                                                     // wedged: no heartbeats, ever
		3: {{Sleep: 900 * time.Millisecond, BeatEvery: 50 * time.Millisecond}}, // slow but alive
	}
	start := time.Now()
	res, err := Run(bigLayout(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 20*time.Second {
		t.Fatalf("run took %s; the watchdog should kill the wedge in ~%s", wall, cfg.StallTimeout)
	}

	wedged := res.TileStats[0]
	if !wedged.Stalled || wedged.Path != PathFallback {
		t.Fatalf("wedged tile stat: %+v, want stalled + fallback", wedged)
	}
	if !strings.Contains(wedged.Failure, "stalled") || !strings.Contains(wedged.Failure, "attempt 0 (primary)") {
		t.Fatalf("wedged tile failure = %q", wedged.Failure)
	}
	if wedged.Wall > 10*time.Second {
		t.Fatalf("wedged tile took %s, want ≪ TileTimeout %s", wedged.Wall, cfg.TileTimeout)
	}

	slow := res.TileStats[3]
	if slow.Stalled || slow.Path != PathPrimary || slow.Attempts != 1 {
		t.Fatalf("heartbeating tile stat: %+v, want untouched primary", slow)
	}
	if slow.Iters == 0 {
		t.Fatal("heartbeating tile recorded no heartbeats")
	}
	if res.Stalled != 1 {
		t.Fatalf("res.Stalled = %d, want 1", res.Stalled)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
}

// TestStallConfigValidation rejects the incoherent timeout combination
// up front.
func TestStallConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Optimize = ruleFallback()
	cfg.TileTimeout = time.Second
	cfg.StallTimeout = 2 * time.Second
	if _, err := Run(bigLayout(), cfg); err == nil || !strings.Contains(err.Error(), "stall timeout") {
		t.Fatalf("err = %v, want stall-vs-tile timeout rejection", err)
	}
	cfg = testConfig()
	cfg.Optimize = ruleFallback()
	cfg.PartialEvery = -1
	if _, err := Run(bigLayout(), cfg); err == nil {
		t.Fatal("negative PartialEvery accepted")
	}
}

// TestJoinFailures pins the attempt-indexed failure format and its cap.
func TestJoinFailures(t *testing.T) {
	got := joinFailures([]AttemptOutcome{
		{Attempt: 0, Engine: "primary", Err: "panic: boom"},
		{Attempt: 1, Engine: "primary", Err: ""},
		{Attempt: 2, Engine: "fallback", Err: "invalid output: mask has NaN/Inf pixels"},
	})
	want := "attempt 0 (primary): panic: boom; attempt 2 (fallback): invalid output: mask has NaN/Inf pixels"
	if got != want {
		t.Fatalf("joined = %q, want %q", got, want)
	}
	if joinFailures(nil) != "" {
		t.Fatal("no failures should join to empty")
	}
	long := make([]AttemptOutcome, 64)
	for i := range long {
		long[i] = AttemptOutcome{Attempt: i, Engine: "primary", Err: strings.Repeat("x", 100)}
	}
	capped := joinFailures(long)
	if len(capped) > maxFailureBytes+64 || !strings.HasSuffix(capped, "…[truncated]") {
		t.Fatalf("cap failed: %d bytes, tail %q", len(capped), capped[len(capped)-20:])
	}
}

// TestQuarantineBundleRoundTrip is the forensics acceptance test: a tile
// that exhausts every engine writes a self-contained bundle, and
// ReplayWindow on nothing but that bundle reproduces the recorded
// attempt sequence exactly.
func TestQuarantineBundleRoundTrip(t *testing.T) {
	qdir := filepath.Join(t.TempDir(), "quarantine")
	l := quadLayout()
	cfg := faultConfig()
	cfg.Optimize = ruleFallback()
	cfg.Fallback = ruleFallback()
	cfg.TileRetries = 1
	cfg.QuarantineDir = qdir
	cfg.Engines = quarantine.EngineMeta{Primary: "circlerule", Fallback: "circlerule", Iters: 8, Gamma: 3, SampleNM: 32}
	cfg.Faults = FaultPlan{
		3: {{NaN: true}, {Panic: true}, {BadRadius: true}}, // exhausts primary ×2 + fallback
	}
	cfg.RMinPx = 1
	cfg.RMaxPx = 40

	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty != 1 || res.Quarantined != 1 {
		t.Fatalf("summary: empty %d quarantined %d", res.Empty, res.Quarantined)
	}
	st := res.TileStats[3]
	if st.Bundle == "" || st.Path != PathEmpty {
		t.Fatalf("quarantined tile stat: %+v", st)
	}
	for i, ts := range res.TileStats {
		if i != 3 && ts.Bundle != "" {
			t.Fatalf("healthy tile %d has a bundle: %q", i, ts.Bundle)
		}
	}
	if _, err := os.Stat(strings.TrimSuffix(st.Bundle, ".qrb") + ".json"); err != nil {
		t.Fatalf("missing JSON sidecar: %v", err)
	}

	b, err := quarantine.Load(st.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if b.Tile.Index != 3 || b.Tile.WindowPx != cfg.CorePx+2*cfg.HaloPx {
		t.Fatalf("bundle tile: %+v", b.Tile)
	}
	if len(b.Attempts) != 3 || b.Attempts[2].Engine != "fallback" {
		t.Fatalf("bundle attempts: %+v", b.Attempts)
	}
	if len(b.Faults) != 3 || !b.Faults[1].Panic {
		t.Fatalf("bundle fault script: %+v", b.Faults)
	}
	if b.Engines.Primary != "circlerule" {
		t.Fatalf("bundle engines: %+v", b.Engines)
	}
	if len(b.Rects) == 0 || b.LayoutName != "quad" {
		t.Fatalf("bundle geometry: %d rects, layout %q", len(b.Rects), b.LayoutName)
	}
	// The captured raster must be occupied — it is the failing input.
	occ := 0
	for _, v := range b.Target {
		if v > 0.5 {
			occ++
		}
	}
	if occ == 0 {
		t.Fatal("bundle target raster is empty")
	}

	// Replay from the bundle alone: same attempt-by-attempt failures.
	sim, err := litho.New(b.Optics, b.Tile.WindowPx)
	if err != nil {
		t.Fatal(err)
	}
	sim.KOpt = b.KOpt
	rcfg := Config{
		GridN: b.GridN, CorePx: b.CorePx, HaloPx: b.HaloPx, KOpt: b.KOpt,
		Optimize: ruleFallback(), Fallback: ruleFallback(),
		TileRetries: b.TileRetries, TileTimeout: b.TileTimeout, StallTimeout: b.StallTimeout,
		RMinPx: b.RMinPx, RMaxPx: b.RMaxPx,
	}
	script := make([]Fault, len(b.Faults))
	for i, f := range b.Faults {
		script[i] = Fault{Sleep: f.Sleep, BeatEvery: f.BeatEvery, Stall: f.Stall, Panic: f.Panic, NaN: f.NaN, BadRadius: f.BadRadius}
	}
	rcfg.Faults = FaultPlan{b.Tile.Index: script}
	target := &grid.Real{W: b.TargetW, H: b.TargetH, Data: append([]float64(nil), b.Target...)}
	_, rstat, routcomes := ReplayWindow(context.Background(), sim, rcfg, b.Tile.Index, b.Tile.CX, b.Tile.CY, target)
	if rstat.Path != PathEmpty || len(routcomes) != len(b.Attempts) {
		t.Fatalf("replay stat: %+v (%d outcomes)", rstat, len(routcomes))
	}
	for i, oc := range routcomes {
		if oc.Err != b.Attempts[i].Err || oc.Engine != b.Attempts[i].Engine {
			t.Fatalf("attempt %d diverged: replayed (%s) %q, recorded (%s) %q",
				i, oc.Engine, oc.Err, b.Attempts[i].Engine, b.Attempts[i].Err)
		}
	}
	if rstat.Failure != st.Failure {
		t.Fatalf("replayed failure %q != recorded %q", rstat.Failure, st.Failure)
	}
}

// TestQuarantineWriteFailureDegrades: a quarantine directory that cannot
// be created loses that tile's forensics — counted in
// Result.QuarantineDropped — but never the tile or the run. StrictStorage
// restores the old fail-fast policy for callers that prefer it.
func TestQuarantineWriteFailureDegrades(t *testing.T) {
	mkCfg := func() Config {
		blocker := filepath.Join(t.TempDir(), "not-a-dir")
		if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := faultConfig()
		cfg.Optimize = ruleFallback()
		cfg.Fallback = nil
		cfg.TileRetries = 0
		cfg.QuarantineDir = filepath.Join(blocker, "sub") // MkdirAll must fail
		cfg.Faults = FaultPlan{0: {{Panic: true}}}
		return cfg
	}

	res, err := Run(bigLayout(), mkCfg())
	if err != nil {
		t.Fatalf("quarantine write failure must not fail the run: %v", err)
	}
	if res.Empty != 1 || res.QuarantineDropped != 1 {
		t.Fatalf("want 1 empty tile with 1 dropped bundle, got empty=%d dropped=%d", res.Empty, res.QuarantineDropped)
	}
	if res.TileStats[0].Bundle != "" {
		t.Fatalf("dropped bundle must not be recorded as saved: %q", res.TileStats[0].Bundle)
	}

	strict := mkCfg()
	strict.StrictStorage = true
	if _, err := Run(bigLayout(), strict); err == nil || !strings.Contains(err.Error(), "quarantine") {
		t.Fatalf("err = %v, want quarantine write failure under StrictStorage", err)
	}
}

// TestPartialResumeAndCompaction is the mid-tile checkpoint acceptance
// test: a run killed inside a long CircleOpt tile resumes from its last
// journaled snapshot (skipping the already-done iterations) and still
// produces bit-identical shots; compacting the journal first changes
// nothing but the journal's size.
func TestPartialResumeAndCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("needs full CircleOpt runs: partial records only exist there")
	}
	l := quadLayout()
	mkCfg := func() Config {
		cfg := testConfig() // real CircleOpt tiles: partials only exist there
		cfg.TileWorkers = 1 // serial: the kill point below is deterministic
		cfg.PartialEvery = 2
		return cfg
	}

	// Reference: uninterrupted run (no checkpoint).
	refCfg := mkCfg()
	refCfg.PartialEvery = 0
	ref, err := Run(l, refCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel mid-optimization of tile 3 — after its
	// iteration-4 snapshot hit the journal, before the tile completes.
	// The progress wrapper sees Mosaic's 5 init beats then CircleOpt's
	// stage-2 beats; call 10 is stage-2 iteration 4.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := mkCfg()
	cfg.CheckpointPath = ckpt
	inner := cfg.Optimize
	cfg.Optimize = func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		if info, ok := TileInfoFrom(sim.Ctx); ok && info.Index == 3 {
			beats := 0
			fwd := opt.ProgressFrom(sim.Ctx)
			sim.Ctx = opt.WithProgress(sim.Ctx, func(iter int, loss float64, at time.Time) {
				if fwd != nil {
					fwd(iter, loss, at)
				}
				beats++
				if beats == 10 {
					cancel()
				}
			})
		}
		return inner(sim, target)
	}
	if _, err := RunContext(ctx, l, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}

	resume := func(t *testing.T, path string) *Result {
		t.Helper()
		cfg := mkCfg()
		cfg.CheckpointPath = path
		res, err := Run(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resumed != 3 {
			t.Fatalf("resumed %d completed tiles, want 3", res.Resumed)
		}
		// The partial snapshot must have skipped stage-2 iterations:
		// fewer heartbeats than the uninterrupted tile recorded.
		if got, want := res.TileStats[3].Iters, ref.TileStats[3].Iters; got >= want || got == 0 {
			t.Fatalf("resumed tile heartbeats = %d, want within (0, %d): partial not applied", got, want)
		}
		return res
	}
	samePayload := func(t *testing.T, got *Result) {
		t.Helper()
		if len(got.Shots) != len(ref.Shots) {
			t.Fatalf("%d shots vs %d", len(got.Shots), len(ref.Shots))
		}
		for i := range got.Shots {
			if got.Shots[i] != ref.Shots[i] {
				t.Fatalf("shot %d differs: %+v vs %+v", i, got.Shots[i], ref.Shots[i])
			}
		}
		if got.Mask.SqDiff(ref.Mask) != 0 {
			t.Fatal("masks differ")
		}
		if got.TileStats[3].LastLoss != ref.TileStats[3].LastLoss {
			t.Fatalf("final loss diverged: %g vs %g", got.TileStats[3].LastLoss, ref.TileStats[3].LastLoss)
		}
	}

	// Resume from the raw journal (completed tiles + partial snapshots).
	rawCopy := filepath.Join(t.TempDir(), "raw.ckpt")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rawCopy, data, 0o644); err != nil {
		t.Fatal(err)
	}
	samePayload(t, resume(t, rawCopy))

	// Compact, then resume: byte-identical payload, smaller journal.
	before, _ := os.Stat(ckpt)
	stats, err := CompactCheckpoint(l, func() Config { c := mkCfg(); c.CheckpointPath = ckpt; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 || stats.BytesAfter >= before.Size() {
		t.Fatalf("compaction dropped nothing: %+v (was %d bytes)", stats, before.Size())
	}
	samePayload(t, resume(t, ckpt))
}
