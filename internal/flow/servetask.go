package flow

import (
	"context"
	"fmt"

	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
	"cfaopc/internal/opt"
	"cfaopc/internal/procpool"
)

// taskConfig reconstructs the window-level flow Config a task's bundle
// encodes: the same knobs a live run would have applied to this tile,
// with the caller-resolved optimizer chain plugged in.
func taskConfig(t *procpool.Task, primary, fallback Optimizer) Config {
	b := &t.Bundle
	cfg := Config{
		GridN:        b.GridN,
		CorePx:       b.CorePx,
		HaloPx:       b.HaloPx,
		KOpt:         b.KOpt,
		Workers:      t.Workers,
		Optimize:     primary,
		Fallback:     fallback,
		TileRetries:  b.TileRetries,
		TileTimeout:  b.TileTimeout,
		StallTimeout: b.StallTimeout,
		RMinPx:       b.RMinPx,
		RMaxPx:       b.RMaxPx,
		Engines:      b.Engines,
		PartialEvery: t.PartialEvery,
	}
	if len(b.Faults) > 0 {
		script := make([]Fault, 0, len(b.Faults))
		for _, f := range b.Faults {
			script = append(script, Fault{
				Sleep: f.Sleep, BeatEvery: f.BeatEvery, Stall: f.Stall,
				Panic: f.Panic, NaN: f.NaN, BadRadius: f.BadRadius, Kill: f.Kill,
			})
		}
		cfg.Faults = FaultPlan{b.Tile.Index: script}
	}
	return cfg
}

// ServeTask executes one dispatched tile inside a worker process: it
// rebuilds the window Config from the task's bundle, runs the full
// degradation ladder via RunWindow with heartbeats and snapshots
// streaming to sink, and packages the window-local result as the reply
// frame. The caller resolves the optimizer chain from Bundle.Engines
// (the flow cannot — engine construction lives above this package) and
// owns the simulator, which it should cache across tasks since every
// window in a run shares one imaging condition.
func ServeTask(ctx context.Context, sim *litho.Simulator, t *procpool.Task,
	primary, fallback Optimizer, sink procpool.Sink) procpool.Reply {
	b := &t.Bundle
	reply := procpool.Reply{Index: b.Tile.Index}
	if err := b.ValidateTask(); err != nil {
		reply.Err = err.Error()
		return reply
	}
	cfg := taskConfig(t, primary, fallback)
	target := &grid.Real{W: b.TargetW, H: b.TargetH, Data: b.Target}
	hooks := WindowHooks{Dispatch: t.Dispatch}
	if sink != nil {
		index := b.Tile.Index
		hooks.OnBeat = func(iter int, loss float64) { sink.Beat(index, iter, loss) }
		if t.PartialEvery > 0 {
			hooks.OnPartial = func(attempt int, s opt.Snapshot) {
				sink.Partial(index, procpool.PartialState{
					Attempt: attempt, Iter: s.Iter, Loss: s.Loss,
					Params: s.Params, OptT: s.OptT, OptM: s.OptM, OptV: s.OptV,
				})
			}
		}
	}
	if r := t.Resume; r != nil {
		hooks.Resume = &opt.Snapshot{
			Iter: r.Iter, Loss: r.Loss, Params: r.Params,
			OptT: r.OptT, OptM: r.OptM, OptV: r.OptV,
		}
		hooks.ResumeAttempt = r.Attempt
	}
	shots, stat, outcomes := RunWindow(ctx, sim, cfg, b.Tile.Index, b.Tile.CX, b.Tile.CY, target, hooks)
	if stat.Path == "" {
		// Only a canceled context abandons a ladder; a worker's context
		// is never canceled mid-task, so this is strictly defensive.
		reply.Err = "task canceled mid-ladder"
		return reply
	}
	reply.Shots = shots
	reply.Path = stat.Path
	for _, o := range outcomes {
		reply.Outcomes = append(reply.Outcomes, procpool.Outcome{
			Attempt: o.Attempt, Engine: o.Engine, Err: o.Err,
			Iters: o.Iters, LastLoss: o.LastLoss, Stalled: o.Stalled,
		})
	}
	return reply
}

// simKey identifies the simulator a task needs; tasks from one run all
// share it, so a worker caches a single simulator across tasks.
type simKey struct {
	optics   string
	windowPx int
	kOpt     int
	workers  int
}

// SimCache builds and reuses the window simulator across tasks served
// by one worker process. Kernel setup is the expensive part of a
// respawn; caching it means a healthy worker pays it once.
type SimCache struct {
	key simKey
	sim *litho.Simulator
}

// For returns a simulator matching the task's imaging condition,
// building one only when the condition changed (in practice: once).
func (c *SimCache) For(t *procpool.Task) (*litho.Simulator, error) {
	b := &t.Bundle
	key := simKey{
		optics:   fmt.Sprintf("%+v", b.Optics),
		windowPx: b.Tile.WindowPx,
		kOpt:     b.KOpt,
		workers:  t.Workers,
	}
	if c.sim != nil && c.key == key {
		return c.sim, nil
	}
	sim, err := litho.New(b.Optics, b.Tile.WindowPx)
	if err != nil {
		return nil, err
	}
	sim.KOpt = b.KOpt
	sim.Workers = t.Workers
	c.sim, c.key = sim, key
	return sim, nil
}
