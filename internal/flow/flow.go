// Package flow scales CFAOPC beyond a single simulation tile: it cuts a
// large layout into overlapping windows, optimizes each window
// independently (optics are shift-invariant, so one kernel set serves
// every window), and stitches the per-window shot lists back together,
// keeping only shots whose centers fall in each window's core region.
// This is the standard halo-and-stitch deployment of tile-based ILT on
// full-chip layouts.
//
// Windows are independent, so Run distributes them over a bounded pool of
// tile workers (Config.TileWorkers), each owning a private
// litho.Simulator. Kernel sets are shared read-only through the optics
// cache, so per-worker simulator construction is cheap. Per-tile results
// are collected into a slice indexed by row-major tile order and reduced
// in that order, so the stitched shot list and mask are bit-identical at
// any worker count — the same determinism contract litho.Simulator.Workers
// documents for per-kernel parallelism.
package flow

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// Optimizer produces a mask and shot list for one window target.
type Optimizer func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle)

// Config controls the tiling.
type Config struct {
	// GridN is the pixel count across the full layout.
	GridN int
	// CorePx is the core (owned) region edge of each window; shots whose
	// centers fall here are kept.
	CorePx int
	// HaloPx is the optical context margin added on every side of a core;
	// it should exceed the optical interaction range (~λ/NA ≈ 143 nm).
	HaloPx int
	// Optics is the imaging condition; TileNM is overridden per window.
	Optics optics.Config
	// KOpt truncates kernels during per-window optimization.
	KOpt int
	// Workers sets the per-window litho parallelism (see litho.Simulator).
	Workers int
	// TileWorkers bounds the windows optimized concurrently. Zero or one
	// runs serially; negative uses GOMAXPROCS. Each worker owns a private
	// simulator and results are reduced in row-major tile order, so the
	// output is bit-identical at any worker count (assuming Optimize is
	// deterministic for a given simulator and target).
	TileWorkers int
	// Optimize runs on each window (e.g. a core.CircleOpt wrapper). It
	// must be safe to call concurrently on distinct simulators.
	Optimize Optimizer
}

// TileStat records what one window contributed to the stitched result.
type TileStat struct {
	Index    int           // row-major window index
	CX, CY   int           // core origin in full-grid pixels
	Occupied bool          // window held target geometry and was optimized
	Shots    int           // core-owned shots kept from this window
	Wall     time.Duration // wall time spent on this window
}

// Result is the stitched output.
type Result struct {
	Mask      *grid.Real    // full-grid mask re-rasterized from the shots
	Shots     []geom.Circle // full-grid shot list
	Tiles     int           // number of windows optimized
	TileStats []TileStat    // per-window records in row-major order
}

// tileWorkerCount resolves the effective tile parallelism.
func tileWorkerCount(w, jobs int) int {
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// extractWindow copies the window×window region at origin (ox, oy) out of
// the full rasterized layout into a fresh target grid, reporting whether
// any pixel is occupied. The origin may be negative and the window may
// extend past the grid at the borders; out-of-grid pixels stay empty.
func extractWindow(full *grid.Real, ox, oy, window int) (*grid.Real, bool) {
	target := grid.NewReal(window, window)
	occupied := false
	for y := 0; y < window; y++ {
		fy := oy + y
		if fy < 0 || fy >= full.H {
			continue
		}
		for x := 0; x < window; x++ {
			fx := ox + x
			if fx < 0 || fx >= full.W {
				continue
			}
			v := full.Data[fy*full.W+fx]
			target.Data[y*window+x] = v
			if v > 0.5 {
				occupied = true
			}
		}
	}
	return target, occupied
}

// ownedShots translates window-local shots to full-grid coordinates and
// keeps those whose centers fall in the core [cx, cx+corePx) × [cy,
// cy+corePx) — the ownership rule that makes seam shots unique.
func ownedShots(shots []geom.Circle, ox, oy, cx, cy, corePx int) []geom.Circle {
	var kept []geom.Circle
	for _, s := range shots {
		gx := s.X + float64(ox)
		gy := s.Y + float64(oy)
		if gx < float64(cx) || gx >= float64(cx+corePx) ||
			gy < float64(cy) || gy >= float64(cy+corePx) {
			continue
		}
		kept = append(kept, geom.Circle{X: gx, Y: gy, R: s.R})
	}
	return kept
}

// tileJob identifies one window by its row-major index and core origin.
type tileJob struct {
	index  int
	cx, cy int
}

// tileOut is one window's contribution before the ordered reduce.
type tileOut struct {
	shots []geom.Circle
	stat  TileStat
}

// runTile extracts, optimizes and filters one window.
func runTile(sim *litho.Simulator, full *grid.Real, cfg Config, j tileJob, window int) tileOut {
	start := time.Now()
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	target, occupied := extractWindow(full, ox, oy, window)
	out := tileOut{stat: TileStat{Index: j.index, CX: j.cx, CY: j.cy, Occupied: occupied}}
	if occupied {
		_, shots := cfg.Optimize(sim, target)
		out.shots = ownedShots(shots, ox, oy, j.cx, j.cy, cfg.CorePx)
		out.stat.Shots = len(out.shots)
	}
	out.stat.Wall = time.Since(start)
	return out
}

// Run tiles the layout and optimizes every window.
func Run(l *layout.Layout, cfg Config) (*Result, error) {
	switch {
	case cfg.GridN <= 0:
		return nil, fmt.Errorf("flow: invalid grid %d", cfg.GridN)
	case cfg.CorePx <= 0 || cfg.HaloPx < 0:
		return nil, fmt.Errorf("flow: invalid core %d / halo %d", cfg.CorePx, cfg.HaloPx)
	case cfg.Optimize == nil:
		return nil, fmt.Errorf("flow: no optimizer")
	}
	window := cfg.CorePx + 2*cfg.HaloPx
	if window > cfg.GridN {
		return nil, fmt.Errorf("flow: window %d exceeds grid %d", window, cfg.GridN)
	}
	dx := float64(l.TileNM) / float64(cfg.GridN)

	// Every window has the same physical size, so every worker simulator
	// binds the same (cached) kernel sets.
	oCfg := cfg.Optics
	oCfg.TileNM = float64(window) * dx

	var jobs []tileJob
	for cy := 0; cy < cfg.GridN; cy += cfg.CorePx {
		for cx := 0; cx < cfg.GridN; cx += cfg.CorePx {
			jobs = append(jobs, tileJob{index: len(jobs), cx: cx, cy: cy})
		}
	}
	workers := tileWorkerCount(cfg.TileWorkers, len(jobs))

	// Per-worker simulators are built serially up front so a kernel error
	// surfaces before any goroutine starts.
	sims := make([]*litho.Simulator, workers)
	for i := range sims {
		sim, err := litho.New(oCfg, window)
		if err != nil {
			return nil, err
		}
		sim.KOpt = cfg.KOpt
		sim.Workers = cfg.Workers
		sims[i] = sim
	}

	full := l.Rasterize(cfg.GridN)
	outs := make([]tileOut, len(jobs))
	jobCh := make(chan tileJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sim *litho.Simulator) {
			defer wg.Done()
			for j := range jobCh {
				outs[j.index] = runTile(sim, full, cfg, j, window)
			}
		}(sims[w])
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()

	// Ordered reduce: row-major tile order regardless of completion order.
	res := &Result{Tiles: len(jobs), TileStats: make([]TileStat, 0, len(jobs))}
	for i := range outs {
		res.Shots = append(res.Shots, outs[i].shots...)
		res.TileStats = append(res.TileStats, outs[i].stat)
	}
	res.Mask = geom.RasterizeCircles(cfg.GridN, cfg.GridN, res.Shots)
	return res, nil
}
